// Extension E: multi-message degradation (the predecessor-attack family the
// paper cites as [23], Wright et al. NDSS 2002). A sender who keeps talking
// to the same receiver under fresh per-message rerouting is identified
// exponentially fast; a Crowds-style static path does not degrade. This puts
// the paper's single-message anonymity degree in its operational context.

#include <benchmark/benchmark.h>

#include "bench/bench_common.hpp"
#include "src/anonymity/monte_carlo.hpp"
#include "src/anonymity/multi_message.hpp"

namespace {

using namespace anonpath;

constexpr system_params sys{60, 3};
const std::vector<node_id> compromised{7, 23, 44};

void emit(std::ostream& os) {
  const auto d = path_length_distribution::uniform(1, 10);
  os << "# extE: posterior entropy vs messages sent by the same sender "
        "(N=60, C=3, U(1,10), 400 trials)\n";
  mc_config cfg;
  cfg.threads = 0;  // all cores; shard count fixed => machine-independent
  cfg.shards = 32;
  const auto single =
      estimate_anonymity_degree(sys, compromised, d, 8000, 5, cfg);
  os << "# single-message H* (MC, all events incl. compromised senders) = "
     << single.degree << " +/- " << single.ci95() << " bits\n";
  for (const bool reroute : {true, false}) {
    const auto curve =
        simulate_degradation(sys, compromised, d, 16, 400, reroute, 97);
    os << "# series: " << (reroute ? "reroute-per-message" : "static-path")
       << "\n";
    os << "k,entropy_bits,ci95,identified_fraction\n";
    for (const auto& p : curve) {
      os << p.messages << "," << p.mean_entropy_bits << ","
         << 1.96 * p.std_error << "," << p.identified_fraction << "\n";
    }
  }
  os << "\n";
}

void BM_DegradationSixteenMessages(benchmark::State& state) {
  const auto d = path_length_distribution::uniform(1, 10);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        simulate_degradation(sys, compromised, d, 16, 20, true, seed++));
  }
}
BENCHMARK(BM_DegradationSixteenMessages);

void BM_CombinePosteriors(benchmark::State& state) {
  std::vector<std::vector<double>> ps(
      static_cast<std::size_t>(state.range(0)),
      std::vector<double>(100, 0.01));
  for (auto _ : state) {
    benchmark::DoNotOptimize(combine_posteriors(ps));
  }
}
BENCHMARK(BM_CombinePosteriors)->Arg(4)->Arg(64);

}  // namespace

int main(int argc, char** argv) {
  return anonpath::bench::figure_main(argc, argv, emit);
}
