// Extension E: anonymity degradation, in two operational directions the
// paper's single-message analysis brackets.
//
// 1. Static degradation, on the simulator: a scenario campaign sweeps the
//    compromised-set size against the link drop rate and reports how the
//    adversary's realized posterior entropy, the identified fraction, and
//    delivery decay as the infrastructure degrades. (This table used to be
//    a single hand-seeded run per point; the campaign engine gives every
//    cell replicated runs and confidence intervals.)
// 2. Dynamic degradation, across messages: the predecessor-attack family
//    the paper cites as [23] (Wright et al., NDSS 2002) — a sender who
//    keeps talking to the same receiver under fresh per-message rerouting
//    is identified exponentially fast; a Crowds-style static path is not.

#include <benchmark/benchmark.h>

#include "bench/bench_common.hpp"
#include "src/anonymity/multi_message.hpp"
#include "src/sim/campaign.hpp"

namespace {

using namespace anonpath;

void emit(std::ostream& os) {
  // Part 1: campaign over C x drop at N=60, U(1,10), onion transport.
  sim::campaign_grid grid;
  grid.node_counts = {60};
  grid.compromised_counts = {1, 3, 6, 12, 24};
  grid.lengths = {path_length_distribution::uniform(1, 10)};
  grid.drop_probabilities = {0.0, 0.02, 0.10};
  grid.arrival_rates = {100.0};
  grid.message_count = 600;
  sim::campaign_config cfg;
  cfg.replicas = 4;
  cfg.master_seed = 97;
  cfg.threads = 0;  // results are thread-count invariant
  const auto result = sim::run_campaign(grid, cfg);

  os << "# extE part 1: static degradation on the simulator "
        "(N=60, U(1,10), 600 msgs x 4 replicas per cell)\n";
  os << "c,drop,delivered_fraction,entropy_bits,entropy_ci95,"
        "identified_fraction\n";
  for (const auto& cell : result.cells) {
    os << cell.scene.compromised_count << "," << cell.scene.drop_probability
       << "," << cell.delivered_fraction.mean() << ","
       << cell.entropy_bits.mean() << "," << cell.entropy_bits.ci_half_width()
       << "," << cell.identified_fraction.mean() << "\n";
  }
  os << "\n";

  // Part 2: the cross-message predecessor attack.
  const system_params sys{60, 3};
  const std::vector<node_id> compromised{7, 23, 44};
  const auto d = path_length_distribution::uniform(1, 10);
  os << "# extE part 2: posterior entropy vs messages sent by the same "
        "sender (N=60, C=3, U(1,10), 400 trials)\n";
  for (const bool reroute : {true, false}) {
    const auto curve =
        simulate_degradation(sys, compromised, d, 16, 400, reroute, 97);
    os << "# series: " << (reroute ? "reroute-per-message" : "static-path")
       << "\n";
    os << "k,entropy_bits,ci95,identified_fraction\n";
    for (const auto& p : curve) {
      os << p.messages << "," << p.mean_entropy_bits << ","
         << 1.96 * p.std_error << "," << p.identified_fraction << "\n";
    }
  }
  os << "\n";
}

void BM_DegradationCampaign(benchmark::State& state) {
  sim::campaign_grid grid;
  grid.node_counts = {60};
  grid.compromised_counts = {1, 6, 24};
  grid.lengths = {path_length_distribution::uniform(1, 10)};
  grid.drop_probabilities = {0.0, 0.10};
  grid.message_count = 150;
  sim::campaign_config cfg;
  cfg.replicas = 2;
  cfg.threads = static_cast<unsigned>(state.range(0));
  const auto cells =
      static_cast<std::int64_t>(sim::expand_grid(grid).size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::run_campaign(grid, cfg));
    ++cfg.master_seed;
  }
  state.SetItemsProcessed(state.iterations() * cells * cfg.replicas);
}
BENCHMARK(BM_DegradationCampaign)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_DegradationSixteenMessages(benchmark::State& state) {
  const system_params sys{60, 3};
  const std::vector<node_id> compromised{7, 23, 44};
  const auto d = path_length_distribution::uniform(1, 10);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        simulate_degradation(sys, compromised, d, 16, 20, true, seed++));
  }
}
BENCHMARK(BM_DegradationSixteenMessages);

void BM_CombinePosteriors(benchmark::State& state) {
  std::vector<std::vector<double>> ps(
      static_cast<std::size_t>(state.range(0)),
      std::vector<double>(100, 0.01));
  for (auto _ : state) {
    benchmark::DoNotOptimize(combine_posteriors(ps));
  }
}
BENCHMARK(BM_CombinePosteriors)->Arg(4)->Arg(64);

}  // namespace

int main(int argc, char** argv) {
  return anonpath::bench::figure_main(argc, argv, emit);
}
