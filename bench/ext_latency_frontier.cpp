// Extension D: the anonymity-vs-latency frontier measured on the
// discrete-event simulator — the engineering tradeoff behind the paper's
// "overheads within tolerable limits" remark (Sec. 2). Each strategy is run
// through the full onion pipeline; latency is measured end-to-end, anonymity
// by the adversary's realized posterior entropy.

#include <benchmark/benchmark.h>

#include "bench/bench_common.hpp"
#include "src/anonymity/optimizer.hpp"
#include "src/sim/simulator.hpp"

namespace {

using namespace anonpath;

sim::sim_config base_config() {
  sim::sim_config cfg;
  cfg.sys = {100, 1};
  cfg.compromised = {13};
  cfg.message_count = 1500;
  cfg.arrival_rate = 200.0;
  cfg.seed = 2002;
  return cfg;
}

void emit(std::ostream& os) {
  os << "# extD: anonymity vs end-to-end latency on the simulator "
        "(N=100, C=1, onion transport, 1500 msgs)\n";
  os << "strategy,mean_len,latency_ms,H*_empirical,ci95\n";
  std::vector<path_length_distribution> strategies{
      path_length_distribution::fixed(1),
      path_length_distribution::fixed(3),
      path_length_distribution::fixed(5),
      path_length_distribution::fixed(10),
      path_length_distribution::fixed(25),
      path_length_distribution::fixed(51),
      path_length_distribution::uniform(0, 10),
      path_length_distribution::geometric(0.75, 1, 99),
      optimize_for_mean(system_params{100, 1}, 5.0, 99).distribution,
  };
  for (const auto& lengths : strategies) {
    auto cfg = base_config();
    cfg.lengths = lengths;
    const auto r = sim::run_simulation(cfg);
    os << lengths.label() << "," << lengths.mean() << ","
       << r.end_to_end_latency.mean() * 1000.0 << ","
       << r.empirical_entropy_bits << ","
       << 1.96 * r.empirical_entropy_stderr << "\n";
  }
  os << "\n";
}

void BM_SimulationThroughput(benchmark::State& state) {
  auto cfg = base_config();
  cfg.message_count = static_cast<std::uint32_t>(state.range(0));
  cfg.lengths = path_length_distribution::fixed(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::run_simulation(cfg));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulationThroughput)->Arg(200)->Arg(1000);

}  // namespace

int main(int argc, char** argv) {
  return anonpath::bench::figure_main(argc, argv, emit);
}
