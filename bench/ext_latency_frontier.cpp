// Extension D: the anonymity-vs-latency frontier measured on the
// discrete-event simulator — the engineering tradeoff behind the paper's
// "overheads within tolerable limits" remark (Sec. 2). Each strategy is a
// cell of one scenario campaign: the campaign engine fans the replicas out
// over all cores with deterministic per-run seeding, and the cross-replica
// spread gives every frontier point a real confidence interval (the
// hand-rolled loop this bench replaced ran each strategy once, serially).

#include <benchmark/benchmark.h>

#include "bench/bench_common.hpp"
#include "src/anonymity/optimizer.hpp"
#include "src/sim/campaign.hpp"

namespace {

using namespace anonpath;

sim::campaign_grid frontier_grid() {
  sim::campaign_grid grid;
  grid.node_counts = {100};
  grid.compromised_counts = {1};
  grid.lengths = {
      path_length_distribution::fixed(1),
      path_length_distribution::fixed(3),
      path_length_distribution::fixed(5),
      path_length_distribution::fixed(10),
      path_length_distribution::fixed(25),
      path_length_distribution::fixed(51),
      path_length_distribution::uniform(0, 10),
      path_length_distribution::geometric(0.75, 1, 99),
      optimize_for_mean(system_params{100, 1}, 5.0, 99).distribution,
  };
  grid.arrival_rates = {200.0};
  grid.message_count = 800;
  return grid;
}

void emit(std::ostream& os) {
  sim::campaign_config cfg;
  cfg.replicas = 4;
  cfg.master_seed = 2002;
  cfg.threads = 0;  // all cores; results identical for any thread count
  const auto result = sim::run_campaign(frontier_grid(), cfg);

  os << "# extD: anonymity vs end-to-end latency on the simulator "
        "(N=100, C=1, onion transport, 800 msgs x 4 replicas per cell)\n";
  os << "strategy,mean_len,latency_ms,latency_ci95,H*_empirical,ci95\n";
  for (const auto& cell : result.cells) {
    os << cell.scene.lengths.label() << "," << cell.scene.lengths.mean()
       << "," << cell.latency_seconds.mean() * 1000.0 << ","
       << cell.latency_seconds.ci_half_width() * 1000.0 << ","
       << cell.entropy_bits.mean() << "," << cell.entropy_bits.ci_half_width()
       << "\n";
  }
  os << "\n";
}

void BM_SimulationThroughput(benchmark::State& state) {
  sim::sim_config cfg;
  cfg.sys = {100, 1};
  cfg.compromised = {13};
  cfg.arrival_rate = 200.0;
  cfg.seed = 2002;
  cfg.message_count = static_cast<std::uint32_t>(state.range(0));
  cfg.lengths = path_length_distribution::fixed(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::run_simulation(cfg));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulationThroughput)->Arg(200)->Arg(1000);

void BM_FrontierCampaign(benchmark::State& state) {
  // Whole-frontier wall clock vs worker threads (replicas fan out too).
  auto grid = frontier_grid();
  grid.message_count = 200;
  sim::campaign_config cfg;
  cfg.replicas = 4;
  cfg.threads = static_cast<unsigned>(state.range(0));
  const auto cells =
      static_cast<std::int64_t>(sim::expand_grid(grid).size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::run_campaign(grid, cfg));
    ++cfg.master_seed;
  }
  state.SetItemsProcessed(state.iterations() * cells * cfg.replicas);
}
BENCHMARK(BM_FrontierCampaign)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  return anonpath::bench::figure_main(argc, argv, emit);
}
