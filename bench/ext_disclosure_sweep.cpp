// Extension (beyond the paper's single-message analysis): the longitudinal
// disclosure frontier. The paper's optimal length strategy bounds what one
// observation leaks; a persistent sender leaks through *round membership*
// no matter how good the per-message strategy is. This sweep maps
// rounds-to-identification against background volume (the threshold-mix
// batch size): more background per round means more cover per observation,
// so identification should take monotonically more rounds as the batch
// grows — the longitudinal analogue of the paper's entropy-vs-length
// frontier.

#include <benchmark/benchmark.h>

#include <optional>

#include "bench/bench_common.hpp"
#include "src/attack/disclosure.hpp"
#include "src/attack/sda.hpp"
#include "src/workload/cooccurrence.hpp"
#include "src/workload/population.hpp"

namespace {

using namespace anonpath;

constexpr std::uint32_t users = 5000;
constexpr std::uint32_t receivers = 400;
constexpr std::uint32_t max_rounds = 4000;

workload::population_config sweep_config(std::uint32_t round_size,
                                         std::uint64_t seed) {
  workload::population_config cfg;
  cfg.seed = seed;
  cfg.user_count = users;
  cfg.receiver_count = receivers;
  cfg.round_count = max_rounds;
  cfg.persistent_pairs = 1;
  cfg.round_size = round_size;
  return cfg;
}

void emit(std::ostream& os) {
  os << "# ext_disclosure: rounds to identification vs background volume "
        "(U="
     << users << ", P=" << receivers << " receivers, <= " << max_rounds
     << " rounds)\n";
  // The set-theoretic attack calibrates at mass > 0.99; the statistical
  // estimator's posterior spreads residual noise mass over the whole
  // population, so its operating point is a lower mass threshold.
  os << "# thresholds: intersection/bayes 0.99, sda 0.5\n";
  os << "round_size,intersection_rounds,sda_rounds,bayes_rounds\n";
  for (const std::uint32_t b : {4u, 8u, 16u, 32u, 64u}) {
    const workload::population pop(sweep_config(b, 97));
    os << b;
    for (const attack::attack_kind kind :
         {attack::attack_kind::intersection, attack::attack_kind::sda,
          attack::attack_kind::sequential_bayes}) {
      const double threshold = kind == attack::attack_kind::sda ? 0.5 : 0.99;
      auto engine = attack::make_attack(kind, receivers);
      const auto result =
          attack::run_workload_attack(pop, 0, *engine, threshold, 1);
      if (result.identified_round)
        os << "," << *result.identified_round;
      else
        os << ",>" << max_rounds;
    }
    os << "\n";
  }
  os << "\n";
}

void BM_RoundGeneration(benchmark::State& state) {
  const workload::population pop(
      sweep_config(static_cast<std::uint32_t>(state.range(0)), 7));
  std::uint32_t r = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pop.round(r));
    r = (r + 1) % max_rounds;
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RoundGeneration)->Arg(16)->Arg(128);

void BM_CooccurrenceAccumulate(benchmark::State& state) {
  // The population-scale counting path, swept over worker threads;
  // bit-identical results across the axis by construction.
  const workload::population pop(sweep_config(16, 7));
  workload::cooccurrence_config cfg;
  cfg.threads = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(workload::accumulate_cooccurrence(pop, cfg));
  }
  state.SetItemsProcessed(state.iterations() * max_rounds);
}
BENCHMARK(BM_CooccurrenceAccumulate)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_SdaFromCounts(benchmark::State& state) {
  // Scoring alone: counts accumulated once, estimator re-run per iteration.
  const workload::population pop(sweep_config(16, 7));
  const auto totals = workload::accumulate_cooccurrence(pop, {});
  for (auto _ : state) {
    const auto sda = attack::sda_attack::from_counts(totals, 0, receivers);
    benchmark::DoNotOptimize(sda.posterior());
  }
}
BENCHMARK(BM_SdaFromCounts);

}  // namespace

int main(int argc, char** argv) {
  return anonpath::bench::figure_main(argc, argv, emit);
}
