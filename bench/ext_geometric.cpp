// Extension B: the Crowds / Onion-Routing-II coin-flip (geometric) strategy
// — the paper's Theorem 2 family — compared at equal mean against fixed,
// uniform, and the optimum. Answers "is the Crowds coin a good length
// distribution?" quantitatively.

#include <benchmark/benchmark.h>

#include "bench/bench_common.hpp"
#include "src/anonymity/closed_forms.hpp"
#include "src/anonymity/optimizer.hpp"

namespace {

using namespace anonpath;

constexpr system_params sys{100, 1};

void emit(std::ostream& os) {
  os << "# extB: geometric (Crowds pf coin) vs fixed vs best-uniform vs "
        "optimal at equal mean (N=100, C=1)\n";
  os << "mean,pf,Geom,F,bestU,Opt\n";
  for (double mean : {2.0, 3.0, 4.0, 5.0, 8.0, 12.0, 20.0, 30.0}) {
    const double pf = 1.0 - 1.0 / mean;  // geometric mean = 1/(1-pf)
    const auto geom = path_length_distribution::geometric(pf, 1, 99);
    const double h_geom = anonymity_degree(sys, geom);
    const double h_fixed =
        theorem1_fixed_length(100, static_cast<path_length>(mean));
    const double h_best_u = best_uniform_for_mean(sys, mean, 99).degree;
    const double h_opt = optimize_for_mean(sys, mean, 99).degree;
    os << mean << "," << pf << "," << h_geom << "," << h_fixed << ","
       << h_best_u << "," << h_opt << "\n";
  }
  os << "# Theorem-2 closed form at pf=0.75: "
     << theorem2_geometric(100, 0.75) << "\n\n";
}

void BM_Theorem2ClosedForm(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(theorem2_geometric(100, 0.75));
  }
}
BENCHMARK(BM_Theorem2ClosedForm);

void BM_GeometricViaPmf(benchmark::State& state) {
  const auto d = path_length_distribution::geometric(0.75, 1, 99);
  for (auto _ : state) {
    benchmark::DoNotOptimize(anonymity_degree(sys, d));
  }
}
BENCHMARK(BM_GeometricViaPmf);

}  // namespace

int main(int argc, char** argv) {
  return anonpath::bench::figure_main(argc, argv, emit);
}
