#!/usr/bin/env python3
"""Tolerance-aware perf-regression gate over google-benchmark JSON.

    perf_diff.py BASELINE.json CURRENT.json [--tolerance X] [--quiet]

Compares a fresh BENCH_perf.json run against the committed
bench/BENCH_baseline.json and exits nonzero when any benchmark regressed.

Raw wall/CPU times are machine-dependent: the baseline was recorded on one
box, CI runs on another, and a uniformly 2x-slower runner is not a
regression. The gate therefore normalizes by the geometric mean of the
per-benchmark time ratios across every benchmark the two files share: a
uniform machine-speed difference moves every ratio equally and cancels,
while a genuine regression in one hot loop sticks out of the normalized
ratio. A benchmark is flagged when

    (current_i / baseline_i) / geomean_j(current_j / baseline_j) > tolerance

The default tolerance (3.0) is deliberately loose — CI runs the benches at
--benchmark_min_time=0.01 where individual timings are noisy — but far
below the 10x synthetic slowdown the CI self-test injects and the kind of
accidental O(n) -> O(n^2) regress the gate exists to catch.

A benchmark present in the baseline but missing from the current run also
fails the gate: silently dropping a benchmark is how a regression hides.
New benchmarks (in current, not baseline) are reported but pass — they
enter the gate when the baseline is next refreshed (see README
"Distributed campaigns & the perf gate" for the update procedure).
"""

import argparse
import json
import math
import sys


def load_benchmarks(path):
    """(name -> time in ns, name -> memo_hit_rate) for iteration entries.

    memo_hit_rate is an optional user counter some benchmarks attach
    (an extra numeric key on the entry); it is informational only and
    never part of the gate math.
    """
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        sys.stderr.write(f"perf_diff: cannot read '{path}': {e}\n")
        sys.exit(2)
    unit_ns = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}
    out = {}
    hit_rates = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type", "iteration") != "iteration":
            continue  # mean/median/stddev aggregates would double-count
        name = b.get("name")
        t = b.get("real_time")
        unit = b.get("time_unit", "ns")
        if name is None or t is None or unit not in unit_ns or t <= 0:
            continue
        out[name] = t * unit_ns[unit]
        rate = b.get("memo_hit_rate")
        if isinstance(rate, (int, float)):
            hit_rates[name] = float(rate)
    if not out:
        sys.stderr.write(f"perf_diff: no benchmark entries in '{path}'\n")
        sys.exit(2)
    return out, hit_rates


def main():
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--tolerance", type=float, default=3.0,
                    help="max normalized slowdown ratio (default 3.0)")
    ap.add_argument("--quiet", action="store_true",
                    help="print only failures")
    args = ap.parse_args()
    if args.tolerance <= 1.0:
        sys.stderr.write("perf_diff: --tolerance must be > 1.0\n")
        sys.exit(2)

    base, base_rates = load_benchmarks(args.baseline)
    cur, cur_rates = load_benchmarks(args.current)

    missing = sorted(set(base) - set(cur))
    new = sorted(set(cur) - set(base))
    shared = sorted(set(base) & set(cur))
    if not shared:
        sys.stderr.write("perf_diff: baseline and current share no "
                         "benchmarks\n")
        sys.exit(2)

    ratios = {name: cur[name] / base[name] for name in shared}
    speed = math.exp(sum(math.log(r) for r in ratios.values()) / len(ratios))

    failures = []
    rows = []
    for name in shared:
        norm = ratios[name] / speed
        flagged = norm > args.tolerance
        if flagged:
            failures.append(name)
        rows.append((name, base[name], cur[name], ratios[name], norm,
                     flagged))

    if not args.quiet:
        print(f"machine-speed factor (geomean current/baseline): "
              f"{speed:.3f}")
        print(f"{'benchmark':48s} {'base':>12s} {'current':>12s} "
              f"{'ratio':>8s} {'norm':>8s}")
        for name, b, c, r, n, flagged in rows:
            mark = " REGRESSED" if flagged else ""
            print(f"{name:48s} {b:12.0f} {c:12.0f} {r:8.2f} {n:8.2f}{mark}")
        for name in new:
            print(f"{name:48s} {'-':>12s} {cur[name]:12.0f}        "
                  f"(new, not gated)")
        # Memo hit-rate deltas: informational telemetry carried as user
        # counters, shown only when both artifacts have them for a
        # benchmark. Never affects the gate's exit status.
        rated = sorted(set(base_rates) & set(cur_rates))
        if rated:
            print(f"{'memo hit rate':48s} {'base':>12s} {'current':>12s} "
                  f"{'delta':>8s}")
            for name in rated:
                delta = cur_rates[name] - base_rates[name]
                print(f"{name:48s} {base_rates[name]:12.4f} "
                      f"{cur_rates[name]:12.4f} {delta:+8.4f}")

    ok = True
    if failures:
        ok = False
        sys.stderr.write(
            f"perf_diff: {len(failures)} benchmark(s) regressed beyond "
            f"{args.tolerance:.2f}x (normalized):\n")
        for name in failures:
            sys.stderr.write(
                f"  {name}: {ratios[name]:.2f}x raw, "
                f"{ratios[name] / speed:.2f}x normalized\n")
    if missing:
        ok = False
        sys.stderr.write(
            f"perf_diff: {len(missing)} baseline benchmark(s) missing from "
            "the current run (a dropped benchmark hides regressions):\n")
        for name in missing:
            sys.stderr.write(f"  {name}\n")
    if not ok:
        sys.stderr.write("perf_diff: FAIL — if this change is an accepted "
                         "trade-off, refresh bench/BENCH_baseline.json per "
                         "the README procedure\n")
        sys.exit(1)
    if not args.quiet:
        print(f"perf_diff: OK ({len(shared)} benchmarks within "
              f"{args.tolerance:.2f}x)")


if __name__ == "__main__":
    main()
