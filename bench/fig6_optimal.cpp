// Reproduces paper Figure 6: the mean-constrained optimal path-length
// distribution against F(L) and U(2, 2L-2), N=100, C=1, L = 1..50.
//
// Paper claims reproduced: the optimized distribution dominates both
// comparison families at every mean; the gain is largest at short means and
// the optimum keeps a small mass on short lengths at large means (the paper
// observed U(0, 2l) is near-optimal there).

#include <benchmark/benchmark.h>

#include "bench/bench_common.hpp"
#include "src/anonymity/optimizer.hpp"
#include "src/repro/figures.hpp"

namespace {

constexpr anonpath::system_params sys{100, 1};

void emit(std::ostream& os) {
  anonpath::repro::print_figure(anonpath::repro::fig6(sys, 50), os);

  // Supplementary: the optimal signatures themselves, so readers can see
  // *what* the optimizer chose (p0/p1/p2/tail) at each mean.
  os << "# fig6-signatures: optimal (p0,p1,p2,mean) per mean target\n";
  os << "mean,p0,p1,p2,degree\n";
  for (anonpath::path_length mean : {1u, 2u, 3u, 5u, 10u, 20u, 30u, 40u, 50u}) {
    const auto r = anonpath::optimize_for_mean(sys, mean, 99);
    os << mean << "," << r.signature.p0 << "," << r.signature.p1 << ","
       << r.signature.p2 << "," << r.degree << "\n";
  }
  os << "\n";
}

void BM_OptimizeForMean(benchmark::State& state) {
  const double mean = static_cast<double>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(anonpath::optimize_for_mean(sys, mean, 99));
  }
}
BENCHMARK(BM_OptimizeForMean)->Arg(2)->Arg(10)->Arg(40);

void BM_BestUniformForMean(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(anonpath::best_uniform_for_mean(sys, 20.0, 99));
  }
}
BENCHMARK(BM_BestUniformForMean);

}  // namespace

int main(int argc, char** argv) {
  return anonpath::bench::figure_main(argc, argv, emit);
}
