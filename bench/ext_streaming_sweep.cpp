// Extension (beyond the paper's single-message analysis): the streaming
// online-inference frontier. Offline disclosure post-processing holds dense
// per-receiver state — O(population) per tracked pair — which is exactly
// what breaks first at 1e6..1e7 receivers. The sketch backend (count-min
// counts plus a weighted bottom-k candidate reservoir) makes the online
// session's memory independent of the population while the posterior stays
// conformance-pinned to the exact engine. This sweep maps that trade-off:
// engine memory and posterior agreement as the receiver population grows
// with the observation stream held fixed.

#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench/bench_common.hpp"
#include "src/attack/disclosure.hpp"
#include "src/attack/online.hpp"
#include "src/attack/sda.hpp"
#include "src/attack/sketch_sda.hpp"
#include "src/workload/population.hpp"
#include "src/workload/streaming.hpp"

namespace {

using namespace anonpath;

constexpr std::uint32_t sweep_rounds = 4000;
constexpr std::uint32_t sweep_round_size = 8;

workload::population_config sweep_config(std::uint32_t receivers,
                                         std::uint64_t seed) {
  workload::population_config cfg;
  cfg.seed = seed;
  cfg.user_count = receivers;
  cfg.receiver_count = receivers;
  cfg.round_count = sweep_rounds;
  cfg.persistent_pairs = 1;
  cfg.round_size = sweep_round_size;
  return cfg;
}

void emit(std::ostream& os) {
  os << "# ext_streaming: online sda engine memory & posterior agreement vs "
        "receiver population (R="
     << sweep_rounds << " rounds, B=" << sweep_round_size
     << " msgs/round, exact vs count-min+bottom-k sketch)\n";
  os << "receivers,exact_bytes,sketch_bytes,memory_ratio,top_match,"
        "exact_entropy_bits,sketch_entropy_bits\n";
  for (const std::uint32_t receivers : {1000u, 10000u, 100000u, 1000000u}) {
    const workload::population pop(sweep_config(receivers, 97));
    workload::cooccurrence_config ccfg;
    ccfg.threads = 0;  // all cores
    const workload::streaming_accumulator exact_acc =
        workload::accumulate_streaming(pop, 0, sweep_rounds, {}, ccfg);
    workload::streaming_config scfg;
    scfg.backend = workload::stream_backend::sketch;
    const workload::streaming_accumulator sketch_acc =
        workload::accumulate_streaming(pop, 0, sweep_rounds, scfg, ccfg);
    const attack::sda_attack exact =
        attack::sda_attack::from_counts(exact_acc.totals(), 0, receivers);
    const attack::sketch_sda_attack sketched =
        attack::sketch_sda_attack::from_accumulator(sketch_acc, 0, receivers);
    const std::vector<double> pe = exact.posterior();
    const std::vector<double> ps = sketched.posterior();
    const auto te = std::max_element(pe.begin(), pe.end()) - pe.begin();
    const auto ts = std::max_element(ps.begin(), ps.end()) - ps.begin();
    os << receivers << ',' << exact.memory_bytes() << ','
       << sketched.memory_bytes() << ','
       << static_cast<double>(exact.memory_bytes()) /
              static_cast<double>(sketched.memory_bytes())
       << ',' << (te == ts ? 1 : 0) << ','
       << attack::summarize_posterior(pe, sweep_rounds, 0.99).entropy_bits
       << ','
       << attack::summarize_posterior(ps, sweep_rounds, 0.99).entropy_bits
       << "\n";
  }
  os << "\n";
}

void BM_StreamingAccumulate(benchmark::State& state) {
  // The sharded streaming driver at population scale, exact vs sketch state
  // over the worker-thread axis; bit-identical results across the axis by
  // construction (merge in ascending shard order).
  const workload::population pop(sweep_config(100000, 7));
  workload::streaming_config scfg;
  scfg.backend = state.range(1) != 0 ? workload::stream_backend::sketch
                                     : workload::stream_backend::exact;
  workload::cooccurrence_config ccfg;
  ccfg.threads = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        workload::accumulate_streaming(pop, 0, sweep_rounds, scfg, ccfg));
  }
  state.SetItemsProcessed(state.iterations() * sweep_rounds);
}
BENCHMARK(BM_StreamingAccumulate)
    ->Args({1, 0})->Args({8, 0})->Args({1, 1})->Args({8, 1})
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_OnlineSessionSnapshot(benchmark::State& state) {
  // Cost of a mid-stream posterior query (the thing offline post-processing
  // cannot do at all): one full posterior + summary at the current position.
  const std::uint32_t receivers = 100000;
  const workload::population pop(sweep_config(receivers, 7));
  attack::online_config ocfg;
  ocfg.backend = state.range(0) != 0 ? workload::stream_backend::sketch
                                     : workload::stream_backend::exact;
  ocfg.stride = sweep_rounds;  // no trajectory sampling inside the loop
  attack::online_attack online(receivers, ocfg);
  const node_id target = pop.pairs().front().sender;
  for (std::uint32_t r = 0; r < 512; ++r) {
    const workload::round_batch batch = pop.round(r);
    attack::round_observation obs;
    obs.target_present =
        std::find(batch.senders.begin(), batch.senders.end(), target) !=
        batch.senders.end();
    obs.receivers = batch.receivers;
    online.ingest(obs);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(online.snapshot());
  }
}
BENCHMARK(BM_OnlineSessionSnapshot)->Arg(0)->Arg(1);

}  // namespace

int main(int argc, char** argv) {
  return anonpath::bench::figure_main(argc, argv, emit);
}
