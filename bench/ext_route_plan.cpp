// Extension: route planning at scale. The emitted series maps how planned
// (k-shortest-path) routing trades anonymity against path cost on a mid-
// size graph — as k grows, the sender's route distribution spreads from
// the deterministic shortest path toward the walk's diffusion, and the
// empirical H* climbs toward the walk-model ceiling. The timing section
// covers the new large-graph hot paths: CSR construction and full
// Dijkstra up to a million nodes, Yen per-pair planning, and the planner's
// per-route draw.

#include <benchmark/benchmark.h>

#include <limits>

#include "bench/bench_common.hpp"
#include "src/net/route_plan.hpp"
#include "src/net/topology.hpp"
#include "src/sim/simulator.hpp"
#include "src/stats/rng.hpp"

namespace {

using namespace anonpath;

constexpr std::uint32_t node_count = 24;
constexpr std::uint32_t compromised = 2;

sim::sim_report kpaths_point(std::uint32_t k) {
  sim::sim_config cfg;
  cfg.sys = {node_count, compromised};
  cfg.compromised = spread_compromised(node_count, compromised);
  cfg.lengths = path_length_distribution::uniform(1, 6);
  cfg.message_count = 400;
  cfg.seed = 42;
  cfg.topology.kind = net::topology_kind::random_regular;
  cfg.topology.degree = 4;
  if (k > 0) {
    cfg.routing.kind = net::route_select::kpaths;
    cfg.routing.k = k;
  }
  return sim::run_simulation(cfg);
}

void emit(std::ostream& os) {
  os << "# ext_route_plan: planned-route anonymity vs k (N=" << node_count
     << ", C=" << compromised << ", regular(4), 400 msgs per point)\n";
  const auto walk = kpaths_point(0);
  os << "# walk-model reference: H* = " << walk.empirical_entropy_bits
     << " bits, mean hops " << walk.realized_hops.mean() << "\n";
  os << "k,entropy_bits,mean_hops,identified_fraction\n";
  for (std::uint32_t k : {1u, 2u, 4u, 8u, 16u}) {
    const auto r = kpaths_point(k);
    os << k << "," << r.empirical_entropy_bits << ","
       << r.realized_hops.mean() << "," << r.identified_fraction << "\n";
  }
  os << "\n";
}

net::topology_config regular_config(std::uint32_t degree) {
  net::topology_config cfg;
  cfg.kind = net::topology_kind::random_regular;
  cfg.degree = degree;
  cfg.graph_seed = 17;
  return cfg;
}

// Args are {node_count, degree}. The d >= 3 generator's swap-mixing pass
// is deliberately pinned (graphs are golden-tested per seed) and costs
// 20*N*d hash-set swaps, so the million-node points ride the O(N) random-
// cycle generator (d = 2) and the richer degree is timed at 1e5.
void BM_CsrConstruction(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto cfg = regular_config(static_cast<std::uint32_t>(state.range(1)));
  for (auto _ : state) {
    const net::topology topo = net::topology::make_csr(n, cfg);
    benchmark::DoNotOptimize(topo.edge_count());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_CsrConstruction)
    ->Args({10000, 4})
    ->Args({100000, 4})
    ->Args({1000000, 2})
    ->Unit(benchmark::kMillisecond);

void BM_DijkstraFullTree(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const net::topology topo = net::topology::make_csr(
      n, regular_config(static_cast<std::uint32_t>(state.range(1))));
  node_id source = 0;
  for (auto _ : state) {
    const auto tree = net::dijkstra(topo, source);
    benchmark::DoNotOptimize(tree.dist[n - 1]);
    source = (source + 1) % n;
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_DijkstraFullTree)
    ->Args({10000, 4})
    ->Args({100000, 4})
    ->Args({1000000, 2})
    ->Unit(benchmark::kMillisecond);

void BM_YenKShortest(benchmark::State& state) {
  const auto k = static_cast<std::uint32_t>(state.range(0));
  const net::topology topo = net::topology::make_csr(10000, regular_config(4));
  stats::rng gen(3);
  for (auto _ : state) {
    const auto s = static_cast<node_id>(gen.next_below(10000));
    auto t = static_cast<node_id>(gen.next_below(9999));
    if (t >= s) ++t;
    benchmark::DoNotOptimize(net::k_shortest_paths(topo, s, t, k));
  }
  state.SetItemsProcessed(state.iterations() * k);
}
BENCHMARK(BM_YenKShortest)->Arg(1)->Arg(4)->Arg(16);

void BM_PlannerSampleRoute(benchmark::State& state) {
  // Steady-state draw cost once the pair cache is warm: the per-message
  // price a kpaths simulation pays.
  const net::topology topo = net::topology::make(200, regular_config(4));
  net::routing_config cfg;
  cfg.kind = net::route_select::kpaths;
  cfg.k = 4;
  net::route_planner planner(topo, cfg);
  stats::rng gen = stats::rng::stream(9, 1);
  route r;
  for (auto _ : state) {
    const auto sender = static_cast<node_id>(gen.next_below(200));
    r = planner.sample_route(sender, gen);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PlannerSampleRoute);

}  // namespace

int main(int argc, char** argv) {
  return anonpath::bench::figure_main(argc, argv, emit);
}
