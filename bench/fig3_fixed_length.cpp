// Reproduces paper Figure 3 (a) and (b): anonymity degree versus fixed path
// length, N = 100 nodes, C = 1 compromised node. Prints both panels' series,
// then times the analytic engine.
//
// Paper anchors: H*_F(1) = H*_F(2) ~ 6.4824; H*_F(4) ~ 6.502; peak 6.5384 at
// l = 51; decreasing beyond (long-path effect).

#include <benchmark/benchmark.h>

#include "bench/bench_common.hpp"
#include "src/anonymity/analytic.hpp"
#include "src/anonymity/length_distribution.hpp"
#include "src/repro/figures.hpp"

namespace {

constexpr anonpath::system_params sys{100, 1};

void emit(std::ostream& os) {
  anonpath::repro::print_figure(anonpath::repro::fig3a(sys), os);
  anonpath::repro::print_figure(anonpath::repro::fig3b(sys), os);
}

void BM_AnalyticFixedLength(benchmark::State& state) {
  const auto d = anonpath::path_length_distribution::fixed(
      static_cast<anonpath::path_length>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(anonpath::anonymity_degree(sys, d));
  }
}
BENCHMARK(BM_AnalyticFixedLength)->Arg(1)->Arg(51)->Arg(99);

void BM_FullFigure3Sweep(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(anonpath::repro::fig3a(sys));
  }
}
BENCHMARK(BM_FullFigure3Sweep);

}  // namespace

int main(int argc, char** argv) {
  return anonpath::bench::figure_main(argc, argv, emit);
}
