#pragma once

// Shared main() for reproduction benches: first print the paper figure's
// data series (the reproduction deliverable), then run the registered
// google-benchmark timings. Define ANONPATH_BENCH_EMIT as a function
// `void emit()` before including, or use the macro below.

#include <benchmark/benchmark.h>

#include <iostream>

namespace anonpath::bench {

/// Runs `emit` (series printing) followed by google-benchmark's own driver.
/// Returns the process exit code.
template <typename EmitFn>
int figure_main(int argc, char** argv, EmitFn&& emit) {
  emit(std::cout);
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}

}  // namespace anonpath::bench
