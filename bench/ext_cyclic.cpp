// Extension F: simple vs. complicated paths (paper Sec. 3.2 taxonomy).
// Crowds and Onion Routing II allow cycles; Freedom forbids them. This bench
// quantifies what cycles are worth, exactly, on a small system where both
// models can be enumerated exhaustively.

#include <benchmark/benchmark.h>

#include "bench/bench_common.hpp"
#include "src/anonymity/brute_force.hpp"
#include "src/anonymity/cyclic.hpp"

namespace {

using namespace anonpath;

constexpr system_params sys{8, 1};
const std::vector<node_id> compromised{3};

void emit(std::ostream& os) {
  os << "# extF: simple vs complicated (cycle-allowing) paths, exact "
        "enumeration (N=8, C=1)\n";
  os << "l,simple,cyclic,cyclic_gain\n";
  for (path_length l = 0; l <= 6; ++l) {
    const auto d = path_length_distribution::fixed(l);
    const brute_force_analyzer simple(sys, compromised, d);
    const cyclic_brute_force_analyzer cyclic(sys, compromised, d);
    os << l << "," << simple.anonymity_degree() << ","
       << cyclic.anonymity_degree() << ","
       << (cyclic.anonymity_degree() - simple.anonymity_degree()) << "\n";
  }
  // Variable-length comparison: the Crowds-style geometric coin.
  const auto geo = path_length_distribution::geometric(0.6, 1, 6);
  const brute_force_analyzer simple_geo(sys, compromised, geo);
  const cyclic_brute_force_analyzer cyclic_geo(sys, compromised, geo);
  os << "# geometric(pf=0.6): simple=" << simple_geo.anonymity_degree()
     << " cyclic=" << cyclic_geo.anonymity_degree() << "\n\n";
}

void BM_CyclicEnumeration(benchmark::State& state) {
  const auto d = path_length_distribution::fixed(
      static_cast<path_length>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cyclic_brute_force_analyzer(sys, compromised, d).anonymity_degree());
  }
}
BENCHMARK(BM_CyclicEnumeration)->Arg(3)->Arg(5);

void BM_SimpleEnumeration(benchmark::State& state) {
  const auto d = path_length_distribution::fixed(
      static_cast<path_length>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        brute_force_analyzer(sys, compromised, d).anonymity_degree());
  }
}
BENCHMARK(BM_SimpleEnumeration)->Arg(3)->Arg(5);

}  // namespace

int main(int argc, char** argv) {
  return anonpath::bench::figure_main(argc, argv, emit);
}
