// Extension (beyond the paper's full-coalition threat model): the
// entropy-vs-coverage-fraction frontier. The paper fixes the adversary at
// "C specific nodes plus the receiver, all reporting"; the
// partial_coverage model instead corrupts each relay independently with
// probability f (Ando–Lysyanskaya–Upfal's fractional setting). Sweeping f
// from 0 to 1 maps how fast sender anonymity collapses as coverage grows —
// the empirical H* must fall monotonically as f -> 1, from ~log2(N-1) at
// f=0 (receiver-only adversary) down to the full-coalition floor.
//
// The timing section also times capture/replay: the trace pipeline is what
// lets one captured run be re-scored under many engines, so its overhead
// relative to an inline run is the number that justifies it.

#include <benchmark/benchmark.h>

#include "bench/bench_common.hpp"
#include "src/sim/simulator.hpp"
#include "src/sim/trace.hpp"
#include "src/stats/rng.hpp"
#include "src/stats/summary.hpp"

namespace {

using namespace anonpath;
using namespace anonpath::sim;

constexpr std::uint32_t node_count = 60;
constexpr std::uint32_t messages = 400;
constexpr std::uint32_t replicas = 6;

sim_config sweep_config(double coverage, bool receiver, std::uint64_t seed) {
  sim_config cfg;
  cfg.sys = {node_count, 1};
  cfg.compromised = {0};  // superseded by the coverage draw
  cfg.lengths = path_length_distribution::uniform(1, 8);
  cfg.message_count = messages;
  cfg.seed = seed;
  cfg.adversary.kind = adversary_kind::partial_coverage;
  cfg.adversary.coverage_fraction = coverage;
  cfg.adversary.receiver_compromised = receiver;
  return cfg;
}

void emit(std::ostream& os) {
  os << "# ext_adversary: empirical H* vs relay coverage fraction f (N="
     << node_count << ", U(1,8), " << replicas << " x " << messages
     << " msgs per point)\n";
  for (const bool receiver : {true, false}) {
    os << "# series: receiver " << (receiver ? "compromised" : "honest")
       << "\n";
    os << "f,entropy_bits,stderr\n";
    for (const double f : {0.0, 0.05, 0.1, 0.2, 0.3, 0.45, 0.6, 0.8, 1.0}) {
      // Replicate over seeds so each point averages several coverage draws;
      // the per-replica seed comes from a deterministic stream, so the
      // emitted series are machine-independent.
      stats::running_summary acc;
      for (std::uint32_t rep = 0; rep < replicas; ++rep) {
        const std::uint64_t seed =
            stats::rng::stream(42, rep * 1000 + static_cast<std::uint64_t>(
                                                    f * 100.0))
                .next_u64();
        const auto report = run_simulation(sweep_config(f, receiver, seed));
        if (report.empirical_entropy_bits == report.empirical_entropy_bits)
          acc.add(report.empirical_entropy_bits);
      }
      os << f << ",";
      if (acc.count() > 0) {
        os << acc.mean() << "," << (acc.count() > 1 ? acc.std_error() : 0.0);
      } else {
        os << "nan,nan";  // f=0 with an honest receiver observes nothing
      }
      os << "\n";
    }
  }
  os << "\n";
}

void BM_PartialCoverageRun(benchmark::State& state) {
  const double f = static_cast<double>(state.range(0)) / 100.0;
  std::uint64_t seed = 5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_simulation(sweep_config(f, true, seed++)));
  }
  state.SetItemsProcessed(state.iterations() * messages);
}
BENCHMARK(BM_PartialCoverageRun)->Arg(10)->Arg(30)->Arg(60);

void BM_CaptureTrace(benchmark::State& state) {
  std::uint64_t seed = 5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(capture_trace(sweep_config(0.3, true, seed++)));
  }
  state.SetItemsProcessed(state.iterations() * messages);
}
BENCHMARK(BM_CaptureTrace);

void BM_ReplayTrace(benchmark::State& state) {
  // Inference cost alone: the event-driven half ran once, outside the loop.
  const sim_trace trace = capture_trace(sweep_config(0.3, true, 5));
  for (auto _ : state) {
    benchmark::DoNotOptimize(replay_trace(trace));
  }
  state.SetItemsProcessed(state.iterations() * messages);
}
BENCHMARK(BM_ReplayTrace);

}  // namespace

int main(int argc, char** argv) {
  return anonpath::bench::figure_main(argc, argv, emit);
}
