// Reproduces paper Figure 5 (a)-(d): anonymity degree versus the variance of
// the path length at constant mean — F(L) against U(a, 2L-a), N=100, C=1.
//
// Paper claims reproduced: panels (a)-(c) (lower bound >= 3) overlay the
// fixed-length curve *exactly* — the moment-sufficiency reduction; panel (d)
// shows variance only matters when mass reaches lengths 0..2, where
// variable-length strategies beat fixed (paper formula (18) / headline).

#include <benchmark/benchmark.h>

#include "bench/bench_common.hpp"
#include "src/anonymity/analytic.hpp"
#include "src/repro/figures.hpp"

namespace {

constexpr anonpath::system_params sys{100, 1};

void emit(std::ostream& os) {
  for (char panel : {'a', 'b', 'c', 'd'}) {
    anonpath::repro::print_figure(anonpath::repro::fig5(sys, panel), os);
  }
}

void BM_OverlayCheck(benchmark::State& state) {
  // Times the equal-mean comparison F(25) vs U(10, 40).
  const auto fixed = anonpath::path_length_distribution::fixed(25);
  const auto uni = anonpath::path_length_distribution::uniform(10, 40);
  for (auto _ : state) {
    benchmark::DoNotOptimize(anonpath::anonymity_degree(sys, fixed));
    benchmark::DoNotOptimize(anonpath::anonymity_degree(sys, uni));
  }
}
BENCHMARK(BM_OverlayCheck);

void BM_Figure5AllPanels(benchmark::State& state) {
  for (auto _ : state) {
    for (char panel : {'a', 'b', 'c', 'd'})
      benchmark::DoNotOptimize(anonpath::repro::fig5(sys, panel));
  }
}
BENCHMARK(BM_Figure5AllPanels);

}  // namespace

int main(int argc, char** argv) {
  return anonpath::bench::figure_main(argc, argv, emit);
}
