// Extension (beyond the paper's clique assumption): the entropy-vs-degree
// frontier. The paper's Sec. 3.1 model lets every node forward to every
// other node; real mix networks route over restricted graphs, and
// restricting the graph hands the adversary structure — fewer consistent
// paths per observation. Sweeping ring connectivity k from nearest-neighbor
// up to the clique maps how sender anonymity grows with graph degree and
// converges, from below, to the complete-graph ceiling (the walk model's
// exact H* on the clique). A tiered (Tor-like) and a trust-weighted series
// sit alongside for the same node budget.
//
// The timing section covers the two topology hot paths: walk-route
// sampling and the restricted-path posterior engine inside a full
// simulation run.

#include <benchmark/benchmark.h>

#include "bench/bench_common.hpp"
#include "src/anonymity/path_sampler.hpp"
#include "src/net/topology.hpp"
#include "src/net/topology_mc.hpp"
#include "src/sim/simulator.hpp"
#include "src/stats/rng.hpp"

namespace {

using namespace anonpath;

constexpr std::uint32_t node_count = 24;
constexpr std::uint32_t compromised = 2;
constexpr std::uint64_t samples = 30000;

path_length_distribution lengths() {
  return path_length_distribution::uniform(1, 6);
}

net::topology_mc_estimate sweep_point(const net::topology_config& cfg) {
  return net::estimate_topology_degree(
      {node_count, compromised}, spread_compromised(node_count, compromised),
      lengths(), cfg, samples, /*seed=*/42, /*threads=*/0);
}

void emit(std::ostream& os) {
  os << "# ext_topology: walk-model H* vs graph degree (N=" << node_count
     << ", C=" << compromised << ", U(1,6), " << samples
     << " samples per point)\n";
  const auto ceiling = sweep_point(net::topology_config{});
  os << "# clique ceiling: H* = " << ceiling.degree << " +/- "
     << ceiling.ci95() << " bits (degree " << node_count - 1 << ")\n";
  os << "# series: ring(k), k = 1.." << (node_count - 1) / 2 << "\n";
  os << "degree,entropy_bits,ci95\n";
  for (std::uint32_t k = 1; 2 * k <= node_count - 1; ++k) {
    net::topology_config cfg;
    cfg.kind = net::topology_kind::ring;
    cfg.ring_k = k;
    const auto est = sweep_point(cfg);
    os << 2 * k << "," << est.degree << "," << est.ci95() << "\n";
  }
  os << node_count - 1 << "," << ceiling.degree << "," << ceiling.ci95()
     << "\n";

  os << "# series: alternatives at the same node budget\n";
  os << "topology,entropy_bits,ci95\n";
  for (const auto tiers : {2u, 3u, 4u}) {
    net::topology_config cfg;
    cfg.kind = net::topology_kind::tiered;
    cfg.tiers = tiers;
    const auto est = sweep_point(cfg);
    os << cfg.label() << "," << est.degree << "," << est.ci95() << "\n";
  }
  for (const double decay : {0.2, 0.5, 0.8}) {
    net::topology_config cfg;
    cfg.kind = net::topology_kind::trust_weighted;
    cfg.trust_decay = decay;
    const auto est = sweep_point(cfg);
    os << cfg.label() << "," << est.degree << "," << est.ci95() << "\n";
  }
  os << "\n";
}

void BM_TopologyRouteSample(benchmark::State& state) {
  const net::topology topo =
      net::topology::ring(node_count, static_cast<std::uint32_t>(state.range(0)));
  const auto d = lengths();
  stats::rng gen(7);
  route r;
  for (auto _ : state) {
    const auto sender = static_cast<node_id>(gen.next_below(node_count));
    sample_topology_route_into(topo, sender, d.sample(gen), gen, r);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TopologyRouteSample)->Arg(1)->Arg(4)->Arg(11);

void BM_TopologySimulationRun(benchmark::State& state) {
  sim::sim_config cfg;
  cfg.sys = {node_count, compromised};
  cfg.compromised = spread_compromised(node_count, compromised);
  cfg.lengths = lengths();
  cfg.message_count = 200;
  cfg.topology.kind = net::topology_kind::tiered;
  cfg.topology.tiers = 3;
  std::uint64_t seed = 5;
  for (auto _ : state) {
    cfg.seed = seed++;
    benchmark::DoNotOptimize(sim::run_simulation(cfg));
  }
  state.SetItemsProcessed(state.iterations() * cfg.message_count);
}
BENCHMARK(BM_TopologySimulationRun);

void BM_TopologyMonteCarlo(benchmark::State& state) {
  net::topology_config cfg;
  cfg.kind = net::topology_kind::ring;
  cfg.ring_k = 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::estimate_topology_degree(
        {node_count, compromised},
        spread_compromised(node_count, compromised), lengths(), cfg, 5000,
        11, 1));
  }
  state.SetItemsProcessed(state.iterations() * 5000);
}
BENCHMARK(BM_TopologyMonteCarlo);

}  // namespace

int main(int argc, char** argv) {
  return anonpath::bench::figure_main(argc, argv, emit);
}
