// Performance benchmarks for every engine in the library: the analytic
// closed form, the general posterior, Monte-Carlo sampling, the optimizer,
// the onion crypto, and the discrete-event fabric.
//
//   bench_perf_engines --json[=FILE]   machine-readable results (defaults
//                                      to BENCH_perf.json) — the CI perf
//                                      trajectory artifact. All other flags
//                                      pass through to google-benchmark.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "src/anonymity/analytic.hpp"
#include "src/anonymity/brute_force.hpp"
#include "src/anonymity/monte_carlo.hpp"
#include "src/anonymity/optimizer.hpp"
#include "src/anonymity/path_sampler.hpp"
#include "src/anonymity/posterior.hpp"
#include "src/attack/sda.hpp"
#include "src/attack/sequential_bayes.hpp"
#include "src/attack/sketch_sda.hpp"
#include "src/crypto/onion.hpp"
#include "src/sim/campaign.hpp"
#include "src/sim/event_queue.hpp"
#include "src/stats/rng.hpp"

namespace {

using namespace anonpath;

constexpr system_params sys{100, 1};

void BM_AnalyticDegreeFromMoments(benchmark::State& state) {
  const moment_signature sig{0.01, 0.05, 0.1, 12.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(anonymity_degree_from_moments(sys, sig));
  }
}
BENCHMARK(BM_AnalyticDegreeFromMoments);

void BM_AnalyticDegreeFromPmf(benchmark::State& state) {
  const auto d = path_length_distribution::uniform(
      0, static_cast<path_length>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(anonymity_degree(sys, d));
  }
}
BENCHMARK(BM_AnalyticDegreeFromPmf)->Arg(10)->Arg(99);

void BM_PosteriorSingleObservation(benchmark::State& state) {
  const auto c = static_cast<std::uint32_t>(state.range(0));
  std::vector<node_id> comp;
  for (std::uint32_t i = 0; i < c; ++i) comp.push_back(i * 7 % 100);
  const system_params s{100, c};
  const auto d = path_length_distribution::uniform(1, 20);
  const posterior_engine engine(s, comp, d);
  std::vector<bool> flags(100, false);
  for (auto x : comp) flags[x] = true;
  stats::rng gen(5);
  const route r = sample_route(100, d, path_model::simple, gen);
  const auto obs = observe(r, flags);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.sender_posterior(obs));
  }
  // Memo effectiveness rides along as a user counter (an extra JSON key on
  // this benchmark's entries): perf_diff.py prints baseline-vs-current
  // hit-rate deltas when both artifacts carry it. Not part of the gate.
  const auto evals = static_cast<double>(engine.likelihood_evaluations());
  state.counters["memo_hit_rate"] =
      evals == 0.0 ? 0.0 : static_cast<double>(engine.memo_hits()) / evals;
}
BENCHMARK(BM_PosteriorSingleObservation)->Arg(1)->Arg(4)->Arg(16);

void BM_BruteForceSmallSystem(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto d = path_length_distribution::uniform(0, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        brute_force_analyzer(system_params{n, 1}, {0}, d).anonymity_degree());
  }
}
BENCHMARK(BM_BruteForceSmallSystem)->Arg(5)->Arg(7);

void BM_MonteCarloThousandSamples(benchmark::State& state) {
  const auto d = path_length_distribution::uniform(1, 10);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        estimate_anonymity_degree(sys, {13}, d, 1000, seed++));
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_MonteCarloThousandSamples);

void BM_MonteCarloThousandSamplesNoDedup(benchmark::State& state) {
  // The per-sample scoring path: isolates what observation dedup buys.
  const auto d = path_length_distribution::uniform(1, 10);
  mc_config cfg;
  cfg.dedup = false;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        estimate_anonymity_degree(sys, {13}, d, 1000, seed++, cfg));
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_MonteCarloThousandSamplesNoDedup);

void BM_MonteCarloParallel(benchmark::State& state) {
  // Thread-scaling sweep at a fixed shard count: estimates are bit-identical
  // across the thread axis by construction (see mc_config), so this measures
  // pure throughput.
  const system_params big{100, 8};
  const std::vector<node_id> comp{3, 13, 29, 41, 55, 67, 78, 91};
  const auto d = path_length_distribution::uniform(1, 10);
  mc_config cfg;
  cfg.threads = static_cast<unsigned>(state.range(0));
  cfg.shards = 64;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        estimate_anonymity_degree(big, comp, d, 20000, seed++, cfg));
  }
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_MonteCarloParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_OptimizerGridRefine(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        optimize_for_mean(sys, 10.0, 99, static_cast<int>(state.range(0))));
  }
}
BENCHMARK(BM_OptimizerGridRefine)->Arg(16)->Arg(48);

void BM_OnionWrapPeel(benchmark::State& state) {
  const crypto::key_registry keys(1, 100);
  stats::rng gen(2);
  const auto l = static_cast<path_length>(state.range(0));
  const route r = sample_simple_route(100, 0, l, gen);
  std::vector<std::byte> payload(256, std::byte{0x42});
  for (auto _ : state) {
    auto env = crypto::wrap_onion(r, payload, keys, 9);
    for (node_id hop : r.hops) {
      auto peeled = crypto::peel_onion(hop, env, keys, 9);
      env = std::move(peeled.inner);
    }
    benchmark::DoNotOptimize(crypto::open_at_receiver(env, keys, 9));
  }
  state.SetItemsProcessed(state.iterations() * (l + 1));
}
BENCHMARK(BM_OnionWrapPeel)->Arg(3)->Arg(10)->Arg(51);

void BM_CampaignThroughput(benchmark::State& state) {
  // End-to-end scenario-campaign fan-out: 8 cells x 4 replicas of full
  // simulator runs (workload -> onion relays -> adversary -> exact
  // inference), swept over worker threads. Aggregation is thread-count
  // invariant, so this is a pure wall-clock scaling measurement.
  sim::campaign_grid grid;
  grid.node_counts = {40, 80};
  grid.compromised_counts = {1, 4};
  grid.lengths = {path_length_distribution::fixed(3),
                  path_length_distribution::uniform(1, 8)};
  grid.drop_probabilities = {0.0};
  grid.message_count = 150;
  sim::campaign_config cfg;
  cfg.replicas = 4;
  cfg.threads = static_cast<unsigned>(state.range(0));
  const auto cells =
      static_cast<std::int64_t>(sim::expand_grid(grid).size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::run_campaign(grid, cfg));
    ++cfg.master_seed;  // fresh draws each iteration, still deterministic
  }
  state.SetItemsProcessed(state.iterations() * cells * cfg.replicas *
                          grid.message_count);
}
BENCHMARK(BM_CampaignThroughput)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_SequentialBayesRounds(benchmark::State& state) {
  // The longitudinal-attack hot loop under the perf gate: a full
  // sequential-Bayes pass over pre-generated rounds (soft-weight evidence,
  // 10k-receiver population, O(deliveries) sparse updates with member
  // scratch — no per-round allocations). Arg is deliveries per round.
  const std::uint32_t receivers = 10000;
  const auto m = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t round_count = 512;
  std::vector<attack::round_observation> rounds(round_count);
  stats::rng gen(11);
  for (std::size_t i = 0; i < round_count; ++i) {
    attack::round_observation& round = rounds[i];
    round.target_present = i % 4 != 3;  // 3:1 target vs pure-background mix
    round.receivers.reserve(m);
    for (std::size_t j = 0; j < m; ++j)
      round.receivers.push_back(static_cast<node_id>(
          gen.next_u64() % receivers));
    if (round.target_present) {
      round.receivers[0] = 17;  // the true partner stays in every round
      round.target_weight.assign(m, 0.5 / static_cast<double>(m));
      round.target_weight[0] = 0.4;  // soft per-message posterior evidence
    }
  }
  for (auto _ : state) {
    attack::sequential_bayes_attack atk(receivers);
    for (const auto& round : rounds) atk.observe_round(round);
    benchmark::DoNotOptimize(atk.posterior());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * round_count * m));
}
BENCHMARK(BM_SequentialBayesRounds)->Arg(16)->Arg(128);

/// Shared round stream for the streaming-ingest benches: 512 pre-generated
/// rounds, `m` deliveries each, 3:1 target vs pure-background mix, the true
/// partner in every target round. Crisp membership (the mix rounds are the
/// evidence) — this is the per-round cost an online session pays.
std::vector<attack::round_observation> streaming_rounds(
    std::uint32_t receivers, std::size_t m) {
  constexpr std::size_t round_count = 512;
  std::vector<attack::round_observation> rounds(round_count);
  stats::rng gen(11);
  for (std::size_t i = 0; i < round_count; ++i) {
    attack::round_observation& round = rounds[i];
    round.target_present = i % 4 != 3;
    round.receivers.reserve(m);
    for (std::size_t j = 0; j < m; ++j)
      round.receivers.push_back(
          static_cast<node_id>(gen.next_u64() % receivers));
    if (round.target_present) round.receivers[0] = 17;
  }
  return rounds;
}

void BM_StreamingSdaIngestExact(benchmark::State& state) {
  // The exact online-inference hot loop: dense per-receiver counters, an
  // O(deliveries) update per round. Arg is deliveries per round.
  const std::uint32_t receivers = 10000;
  const auto rounds =
      streaming_rounds(receivers, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    attack::sda_attack atk(receivers);
    for (const auto& round : rounds) atk.observe_round(round);
    benchmark::DoNotOptimize(atk.posterior());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(
      state.iterations() * rounds.size() * state.range(0)));
}
BENCHMARK(BM_StreamingSdaIngestExact)->Arg(16)->Arg(128);

void BM_StreamingSdaIngestSketch(benchmark::State& state) {
  // The sketch-backed counterpart: count-min updates plus the weighted
  // bottom-k reservoir, memory independent of the receiver population.
  // Same stream as the exact bench so the two rows read as one trade-off.
  const std::uint32_t receivers = 10000;
  const auto rounds =
      streaming_rounds(receivers, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    attack::sketch_sda_attack atk(receivers);
    for (const auto& round : rounds) atk.observe_round(round);
    benchmark::DoNotOptimize(atk.posterior());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(
      state.iterations() * rounds.size() * state.range(0)));
}
BENCHMARK(BM_StreamingSdaIngestSketch)->Arg(16)->Arg(128);

void BM_EventQueueScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::event_queue q;
    for (int i = 0; i < 1000; ++i)
      q.schedule_at(static_cast<double>(i % 97), [] {});
    q.run_until_empty();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

void BM_SimpleRouteSampling(benchmark::State& state) {
  stats::rng gen(3);
  const auto d = path_length_distribution::uniform(1, 50);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sample_route(100, d, path_model::simple, gen));
  }
}
BENCHMARK(BM_SimpleRouteSampling);

}  // namespace

int main(int argc, char** argv) {
  // Translate --json[=FILE] into google-benchmark's out-file flags before
  // Initialize() consumes the command line; everything else passes through.
  std::vector<std::string> args;
  std::string json_path;
  args.reserve(static_cast<std::size_t>(argc) + 2);
  args.emplace_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" || arg.rfind("--json=", 0) == 0) {
      const std::string path =
          arg == "--json" ? std::string("BENCH_perf.json") : arg.substr(7);
      if (path.empty()) {
        // benchmark silently disables file output on an empty name; a
        // script checking only the exit status would then trust a
        // missing/stale artifact.
        std::fprintf(stderr, "error: --json= requires a file name\n");
        return 1;
      }
      json_path = path;
      args.emplace_back("--benchmark_out=" + path);
      args.emplace_back("--benchmark_out_format=json");
    } else {
      args.emplace_back(arg);
    }
  }
  std::vector<char*> argv2;
  argv2.reserve(args.size());
  for (std::string& a : args) argv2.push_back(a.data());
  int argc2 = static_cast<int>(argv2.size());
  ::benchmark::Initialize(&argc2, argv2.data());
  if (::benchmark::ReportUnrecognizedArguments(argc2, argv2.data())) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  if (!json_path.empty()) {
    // google-benchmark does not surface out-file write failures in its
    // exit status: an unwritable path, a full disk, or ENOSPC at flush
    // leaves a missing/empty/stale artifact behind a "successful" run —
    // exactly what a perf gate must never be fed. Verify the artifact
    // actually landed: it must open and start with a JSON object.
    std::FILE* f = std::fopen(json_path.c_str(), "rb");
    int first = EOF;
    if (f != nullptr) {
      do {
        first = std::fgetc(f);
      } while (first == ' ' || first == '\n' || first == '\r' ||
               first == '\t');
      std::fclose(f);
    }
    if (first != '{') {
      std::fprintf(stderr,
                   "error: benchmark JSON was not written to '%s' "
                   "(unwritable path or disk full?)\n",
                   json_path.c_str());
      return 1;
    }
  }
  return 0;
}
