// Reproduces paper Figure 4 (a)-(d): anonymity degree versus the expectation
// of the path length at constant variance — U(A, A+L) families, N=100, C=1.
//
// Paper claims reproduced: (a) small A: rising, larger A wins at equal L;
// (b) intermediate A: interior extremum; (c) A >= 51: strictly falling
// (long-path effect); (d) U(0,L) starts terrible (direct sends) but ends
// best at large L.

#include <benchmark/benchmark.h>

#include "bench/bench_common.hpp"
#include "src/anonymity/analytic.hpp"
#include "src/repro/figures.hpp"

namespace {

constexpr anonpath::system_params sys{100, 1};

void emit(std::ostream& os) {
  for (char panel : {'a', 'b', 'c', 'd'}) {
    anonpath::repro::print_figure(anonpath::repro::fig4(sys, panel), os);
  }
}

void BM_UniformDegree(benchmark::State& state) {
  const auto d = anonpath::path_length_distribution::uniform(
      static_cast<anonpath::path_length>(state.range(0)),
      static_cast<anonpath::path_length>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(anonpath::anonymity_degree(sys, d));
  }
}
BENCHMARK(BM_UniformDegree)->Args({0, 10})->Args({4, 54})->Args({51, 99});

void BM_Figure4AllPanels(benchmark::State& state) {
  for (auto _ : state) {
    for (char panel : {'a', 'b', 'c', 'd'})
      benchmark::DoNotOptimize(anonpath::repro::fig4(sys, panel));
  }
}
BENCHMARK(BM_Figure4AllPanels);

}  // namespace

int main(int argc, char** argv) {
  return anonpath::bench::figure_main(argc, argv, emit);
}
