// Extension (beyond the paper's loss-free fabric): the reliability-vs-
// anonymity frontier of retransmission-with-backoff. The paper's analysis
// assumes every message reaches R; on a lossy wire a sender must either
// accept loss or retransmit — and every retransmission re-walks a fresh
// path, handing the coalition another independent observation of the same
// message to fuse into its posterior. Sweeping the retry budget at a fixed
// drop probability maps that trade: delivered fraction must climb
// monotonically with the budget while the adversary's mean per-message
// uncertainty must not grow.
//
// Entropy is measured over ALL submitted messages, the way the adversary
// experiences the whole batch: a scored message contributes its posterior
// entropy, an unobserved one the prior log2(N - C) bits. Restricting to
// scored messages only would show the opposite slope — retries push
// weakly-observed messages into the scored set and its mean can rise even
// as total uncertainty falls (a selection effect, not an anonymity gain).

#include <benchmark/benchmark.h>

#include <cmath>

#include "bench/bench_common.hpp"
#include "src/sim/simulator.hpp"
#include "src/stats/rng.hpp"
#include "src/stats/summary.hpp"

namespace {

using namespace anonpath;
using namespace anonpath::sim;

constexpr std::uint32_t node_count = 40;
constexpr std::uint32_t compromised = 4;
constexpr std::uint32_t messages = 400;
constexpr std::uint32_t replicas = 6;
constexpr double drop = 0.25;

sim_config frontier_config(std::uint32_t budget, std::uint64_t seed) {
  sim_config cfg;
  cfg.sys = {node_count, compromised};
  cfg.compromised = spread_compromised(node_count, compromised);
  cfg.lengths = path_length_distribution::uniform(1, 6);
  cfg.message_count = messages;
  cfg.arrival_rate = 100.0;
  cfg.seed = seed;
  cfg.faults.drop_probability = drop;
  cfg.retry.max_retries = budget;
  cfg.retry.timeout = 0.3;
  return cfg;
}

void emit(std::ostream& os) {
  os << "# ext_retry: reliability-vs-anonymity frontier at drop " << drop
     << " (N=" << node_count << ", C=" << compromised << ", U(1,6), "
     << replicas << " x " << messages << " msgs per point)\n";
  os << "# entropy is per-message over ALL submissions; unobserved messages"
        " count the prior log2(N-C)\n";
  os << "retries,delivered_fraction,delivered_stderr,entropy_bits,"
        "entropy_stderr,retransmits_per_msg\n";
  const double prior =
      std::log2(static_cast<double>(node_count - compromised));
  for (const std::uint32_t budget : {0u, 1u, 2u, 3u, 4u, 6u}) {
    stats::running_summary delivered, entropy, retransmits;
    for (std::uint32_t rep = 0; rep < replicas; ++rep) {
      const std::uint64_t seed =
          stats::rng::stream(7, budget * 100 + rep).next_u64();
      sim_config cfg = frontier_config(budget, seed);
      cfg.collect_posteriors = true;
      const auto r = run_simulation(cfg);
      delivered.add(static_cast<double>(r.delivered) /
                    static_cast<double>(r.submitted));
      double bits = prior * static_cast<double>(messages - r.posteriors.size());
      for (const auto& post : r.posteriors)
        for (double p : post)
          if (p > 0.0) bits -= p * std::log2(p);
      entropy.add(bits / static_cast<double>(messages));
      retransmits.add(static_cast<double>(r.retransmissions) /
                      static_cast<double>(r.submitted));
    }
    os << budget << "," << delivered.mean() << "," << delivered.std_error()
       << "," << entropy.mean() << "," << entropy.std_error() << ","
       << retransmits.mean() << "\n";
  }
  os << "\n";
}

void BM_RetryRun(benchmark::State& state) {
  const auto budget = static_cast<std::uint32_t>(state.range(0));
  std::uint64_t seed = 5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_simulation(frontier_config(budget, seed++)));
  }
  state.SetItemsProcessed(state.iterations() * messages);
}
BENCHMARK(BM_RetryRun)->Arg(0)->Arg(2)->Arg(4);

}  // namespace

int main(int argc, char** argv) {
  return anonpath::bench::figure_main(argc, argv, emit);
}
