// Extension C: the paper's Sec. 2 survey made quantitative — every deployed
// strategy (Anonymizer, LPWA, Freedom, Onion Routing I/II, Crowds, Hordes,
// PipeNet) scored on the same N=100, C=1 system, against the optimal
// distribution at the same mean cost. This is the paper's concluding point:
// "several existing anonymous communication systems are not using the best
// path selection strategy".

#include <benchmark/benchmark.h>

#include <cmath>
#include <iomanip>

#include "bench/bench_common.hpp"
#include "src/anonymity/optimizer.hpp"
#include "src/anonymity/strategy.hpp"

namespace {

using namespace anonpath;

constexpr system_params sys{100, 1};

void emit(std::ostream& os) {
  os << "# extC: deployed-protocol ranking (N=100, C=1)\n";
  os << "protocol,mean_len,H*,optimal_at_same_mean,headroom_bits\n";
  os << std::setprecision(6);
  for (const auto& p : protocols::survey(99)) {
    const double h = anonymity_degree(sys, p.lengths);
    const double mean = p.lengths.mean();
    // Optimal benchmark at the same (rounded to 0.5) mean rerouting cost.
    const double target = std::min(99.0, std::round(mean * 2.0) / 2.0);
    const double h_opt = optimize_for_mean(sys, target, 99).degree;
    os << p.name << "," << mean << "," << h << "," << h_opt << ","
       << (h_opt - h) << "\n";
  }
  os << "# ceiling log2(N) = " << max_anonymity_degree(sys) << "\n\n";
}

void BM_SurveyScoring(benchmark::State& state) {
  const auto all = protocols::survey(99);
  for (auto _ : state) {
    for (const auto& p : all)
      benchmark::DoNotOptimize(anonymity_degree(sys, p.lengths));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(all.size()));
}
BENCHMARK(BM_SurveyScoring);

}  // namespace

int main(int argc, char** argv) {
  return anonpath::bench::figure_main(argc, argv, emit);
}
