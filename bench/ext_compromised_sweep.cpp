// Extension A (beyond the paper's C=1 evaluation): anonymity degree versus
// the number of compromised nodes, estimated with the general posterior
// engine via Monte Carlo. The paper's model (Sec. 4) covers arbitrary C but
// its figures only show C=1; this bench maps the degradation curve and
// reproduces the C=1 endpoints against the closed form.

#include <benchmark/benchmark.h>

#include "bench/bench_common.hpp"
#include "src/anonymity/analytic.hpp"
#include "src/anonymity/monte_carlo.hpp"

namespace {

using namespace anonpath;

constexpr std::uint32_t node_count = 100;
constexpr std::uint64_t samples = 4000;

std::vector<node_id> spread_compromised(std::uint32_t c) {
  return anonpath::spread_compromised(node_count, c);
}

void emit(std::ostream& os) {
  // All cores, fixed shard count: the emitted series are identical on any
  // machine regardless of its thread count (mc_config determinism contract).
  mc_config cfg;
  cfg.threads = 0;
  cfg.shards = 32;
  os << "# extA: anonymity degree vs number of compromised nodes (N=100)\n";
  os << "# MC with exact per-observation posteriors, " << samples
     << " samples, 95% CI half-width in last column\n";
  for (const auto& lengths : {path_length_distribution::fixed(5),
                              path_length_distribution::uniform(1, 10),
                              path_length_distribution::fixed(51)}) {
    os << "# series: " << lengths.label() << "\n";
    os << "C," << lengths.label() << ",ci95\n";
    for (std::uint32_t c : {1u, 2u, 4u, 8u, 16u, 32u}) {
      const system_params sys{node_count, c};
      const auto est = estimate_anonymity_degree(
          sys, spread_compromised(c), lengths, samples, 1000 + c, cfg);
      os << c << "," << est.degree << "," << est.ci95() << "\n";
    }
  }
  // C=1 anchor: MC must straddle the closed form.
  const system_params sys1{node_count, 1};
  os << "# anchor: closed-form C=1 F(5) = "
     << anonymity_degree(sys1, path_length_distribution::fixed(5)) << "\n\n";
}

void BM_PosteriorMonteCarloSample(benchmark::State& state) {
  const auto c = static_cast<std::uint32_t>(state.range(0));
  const system_params sys{node_count, c};
  const auto lengths = path_length_distribution::uniform(1, 10);
  std::uint64_t seed = 7;
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimate_anonymity_degree(
        sys, spread_compromised(c), lengths, 100, seed++));
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_PosteriorMonteCarloSample)->Arg(1)->Arg(8)->Arg(32);

void BM_PosteriorMonteCarloParallel(benchmark::State& state) {
  // The same sweep workload on all cores via the batched engine.
  const auto c = static_cast<std::uint32_t>(state.range(0));
  const system_params sys{node_count, c};
  const auto lengths = path_length_distribution::uniform(1, 10);
  mc_config cfg;
  cfg.threads = 0;
  cfg.shards = 32;
  std::uint64_t seed = 7;
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimate_anonymity_degree(
        sys, spread_compromised(c), lengths, samples, seed++, cfg));
  }
  state.SetItemsProcessed(state.iterations() * samples);
}
BENCHMARK(BM_PosteriorMonteCarloParallel)->Arg(1)->Arg(8)->Arg(32)
    ->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  return anonpath::bench::figure_main(argc, argv, emit);
}
