// anonpath — command-line front end to the library.
//
//   anonpath degree   --n 100 --dist F:5            score a strategy
//   anonpath degree   --n 100 --dist U:2,14 --breakdown
//   anonpath estimate --n 100 --c 8 --dist U:1,10 --samples 100000 --threads 0
//   anonpath optimize --n 100 --mean 5              optimal distribution
//   anonpath simulate --n 60 --c 2 --dist U:2,14 --messages 2000
//   anonpath simulate --n 60 --c 2 --adversary partial:0.3:honest
//   anonpath simulate --n 60 --c 2 --topology tiered:3 --churn 0.5:0.5
//   anonpath estimate --n 40 --c 3 --topology ring:4 --samples 50000
//   anonpath campaign --n 30,60 --c 1,4 --dist F:3 --dist U:1,8 \
//                     --drop 0,0.05 --replicas 8 --threads 0   scenario sweep
//   anonpath campaign --n 24 --c 2 --topology complete,ring:2,tiered:3 \
//                     --churn 0,0.5:0.5                 topology/churn axes
//   anonpath simulate --n 60 --c 2 --topology regular:4 --routing kpaths:4
//   anonpath plan     --n 1000000 --topology regular:2 --csr --routes 100
//   anonpath capture  --n 60 --c 2 --dist U:2,14 --out run.trace
//   anonpath replay   --in run.trace                re-score a captured run
//   anonpath attack   --users 100000 --rounds 10000 --round-size 12 \
//                     --attack sda --threads 8      longitudinal disclosure
//   anonpath simulate --n 60 --c 2 --population 20 --rounds 50 --attack bayes
//   anonpath campaign --n 30 --c 2 --population 0,20 --rounds 0,50 \
//                     --attack none,sda             session axes
//   anonpath figures  --n 100                       dump all paper figures
//
// Distribution syntax: F:l | U:a,b | G:pf,min,max (geometric) | P:lambda,max.
// Adversary syntax: full | partial:<f>[:honest] | timing (the coverage
// fraction f in [0,1]; ":honest" leaves the receiver uncompromised).
// Topology syntax: complete | ring:<k> | regular:<d>[:<seed>] | tiered:<t>
// | trust:<decay>; out-of-range parameters (for the given --n) are a hard
// error, never a silent fallback to the clique.
// Routing syntax: walk (default) | kpaths[:<k>] — planned k-shortest-path
// routing (Dijkstra/Yen); requires onion mode and a non-timing adversary.
// Churn syntax: 0 (static) | <down_rate>[:<mean_downtime>] (seconds).
// Retry syntax: <max>[:<timeout>[:<backoff>[:<max_timeout>]]] (0 = off).
// Mix-failure syntax: <count>[:<horizon>[:<mean_duration>]] (0 = off).
// Crash syntax: <node>:<start>:<duration> (repeatable; applies to every
// cell of a campaign, so a node outside some cell's N fails that cell
// into its error column instead of killing the sweep).
// Popularity-law syntax: uniform | zipf:<s> (s > 0).
// Attack syntax: none | intersection | sda | bayes (sequential_bayes).
// Stream-backend syntax: exact | sketch (sketched sda accumulator state:
// count-min counts plus a bottom-k candidate reservoir; sda cells only).
// Campaign axes (--n, --c, --drop, --rate, --mode, --adversary,
// --topology, --routing, --churn, --population, --rounds, --attack) take
// comma-separated lists and --dist may repeat; the campaign runs their
// cartesian product. Out-of-range or unknown values exit loudly (status 2),
// never silently fall back.

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include <chrono>
#include <thread>

#include "src/anonymity/analytic.hpp"
#include "src/anonymity/monte_carlo.hpp"
#include "src/anonymity/optimizer.hpp"
#include "src/anonymity/path_sampler.hpp"
#include "src/attack/disclosure.hpp"
#include "src/attack/online.hpp"
#include "src/attack/sda.hpp"
#include "src/attack/sketch_sda.hpp"
#include "src/net/churn.hpp"
#include "src/net/route_plan.hpp"
#include "src/net/topology.hpp"
#include "src/net/topology_mc.hpp"
#include "src/obs/jsonl.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/progress.hpp"
#include "src/obs/span.hpp"
#include "src/repro/figures.hpp"
#include "src/sim/campaign.hpp"
#include "src/sim/checkpoint.hpp"
#include "src/sim/simulator.hpp"
#include "src/sim/trace.hpp"
#include "src/stats/error.hpp"
#include "src/workload/cooccurrence.hpp"
#include "src/workload/population.hpp"
#include "src/workload/streaming.hpp"

namespace {

using namespace anonpath;

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg != nullptr) std::fprintf(stderr, "error: %s\n\n", msg);
  std::fprintf(
      stderr,
      "usage: anonpath "
      "<degree|estimate|optimize|simulate|campaign|merge|capture|replay"
      "|attack|plan|figures> [options]\n"
      "  common:   --n <nodes>      (default 100)\n"
      "            --c <compromised> (default 1)\n"
      "            --dist F:l | U:a,b | G:pf,min,max | P:lambda,max\n"
      "            --adversary full | partial:<f>[:honest] | timing\n"
      "            --topology complete | ring:<k> | regular:<d>[:<seed>]\n"
      "                       | tiered:<t> | trust:<decay>\n"
      "            --routing walk | kpaths[:<k>]  planned k-shortest-path\n"
      "                      routing (simulate/capture/campaign/plan)\n"
      "            --churn 0 | <down_rate>[:<mean_downtime>]\n"
      "            --retry <max>[:<timeout>[:<backoff>[:<max_timeout>]]]\n"
      "            --mix-failures <count>[:<horizon>[:<mean_duration>]]\n"
      "            --crash <node>:<start>:<duration>  (repeatable)\n"
      "  degree:   [--breakdown]\n"
      "  estimate: [--samples k] [--seed s] [--threads t (0=all cores)]\n"
      "            [--shards k] [--no-dedup]   Monte-Carlo H* for any C\n"
      "            (a restricted --topology uses the walk-model engine)\n"
      "  optimize: --mean <target expected length>\n"
      "  simulate: [--messages k] [--seed s] [--drop p] [--threshold x]\n"
      "            [--population P --rounds R --attack a] session mode\n"
      "            [--stream exact|sketch]  sda accumulator backend\n"
      "  campaign: scenario-grid sweep on the simulator; CSV to stdout.\n"
      "            axes (comma lists): --n --c --drop --rate --adversary\n"
      "            --topology --routing --churn --mix-failures --retry\n"
      "            --population\n"
      "            --rounds --attack --stream; --mode onion,crowds; --dist\n"
      "            may repeat (one spec each)\n"
      "            [--replicas r (default 8)] [--messages k (default 500)]\n"
      "            [--seed s] [--threads t (0=all cores)] [--via-trace]\n"
      "            [--receiver-law uniform|zipf:<s>]\n"
      "            [--checkpoint file [--resume]]  crash-resumable journal\n"
      "            [--shard i/n]  run only cells with index = i mod n\n"
      "            (requires --checkpoint; combine shards with 'merge')\n"
      "  merge:    combine completed shard journals into the unsharded\n"
      "            result: the campaign's grid/config flags (they rebuild\n"
      "            the scope fingerprint) + --input file (repeatable, one\n"
      "            per shard) [--checkpoint file  also write the merged\n"
      "            journal]; CSV to stdout, bit-identical to an unsharded\n"
      "            run\n"
      "  attack:   longitudinal disclosure on a population workload (no\n"
      "            rerouting sim): --attack intersection|sda|bayes plus\n"
      "            [--users U] [--population P (default U)] [--rounds R]\n"
      "            [--pairs M] [--round-size B] [--send-rate p]\n"
      "            [--sender-law L] [--receiver-law L] [--threshold x]\n"
      "            [--seed s] [--every k] [--threads t (sda cross-check)]\n"
      "            [--stream exact|sketch  online conformance report]\n"
      "            trajectory CSV to stdout, summary to stderr\n"
      "  capture:  simulate flags + [--out file (default stdout)]; writes\n"
      "            the adversary's event trace instead of scoring it\n"
      "  replay:   --in file; re-scores a captured trace offline (same\n"
      "            output as simulate, no event-driven re-run)\n"
      "  plan:     graph construction & route-planning diagnostics at scale\n"
      "            (CSR storage, Dijkstra, Yen k-shortest paths): [--csr]\n"
      "            [--components] [--source u] [--routes r (default 100)]\n"
      "            [--routing kpaths[:<k>]] [--seed s]\n"
      "  figures:  (dumps fig3a/3b/4/5/6 series as CSV)\n"
      "  obs:      --metrics <file> (or --metrics=<file>)  write a JSONL\n"
      "            metrics snapshot; --progress  '# progress:' heartbeat\n"
      "            with ETA on stderr. Both apply to simulate, campaign,\n"
      "            attack, plan and merge only; merge --metrics reads each\n"
      "            --input FILE's FILE.metrics sibling and writes their\n"
      "            merged snapshot\n");
  std::exit(2);
}

path_length_distribution parse_dist(const std::string& spec) {
  const auto colon = spec.find(':');
  if (colon == std::string::npos) usage("bad --dist (missing ':')");
  const std::string kind = spec.substr(0, colon);
  const std::string args = spec.substr(colon + 1);
  auto split = [&args]() {
    std::vector<double> out;
    std::size_t pos = 0;
    while (pos <= args.size()) {
      const auto comma = args.find(',', pos);
      const std::string tok =
          args.substr(pos, comma == std::string::npos ? comma : comma - pos);
      if (tok.empty()) usage("bad --dist arguments");
      out.push_back(std::strtod(tok.c_str(), nullptr));
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
    return out;
  };
  const auto v = split();
  if (kind == "F" && v.size() == 1)
    return path_length_distribution::fixed(static_cast<path_length>(v[0]));
  if (kind == "U" && v.size() == 2)
    return path_length_distribution::uniform(static_cast<path_length>(v[0]),
                                             static_cast<path_length>(v[1]));
  if (kind == "G" && v.size() == 3)
    return path_length_distribution::geometric(
        v[0], static_cast<path_length>(v[1]), static_cast<path_length>(v[2]));
  if (kind == "P" && v.size() == 2)
    return path_length_distribution::poisson(v[0],
                                             static_cast<path_length>(v[1]));
  usage("unrecognized --dist form");
}

struct options {
  std::string command;
  std::uint32_t n = 100;
  std::uint32_t c = 1;
  std::optional<path_length_distribution> dist;
  double mean = 5.0;
  std::uint32_t messages = 2000;
  bool messages_set = false;
  std::uint64_t seed = 1;
  double drop = 0.0;
  bool breakdown = false;
  std::uint64_t samples = 100000;
  unsigned threads = 0;
  std::uint64_t shards = 0;
  bool dedup = true;
  // Campaign axes: every --n/--c/--drop/--rate value seen (comma lists),
  // every --dist spec, every --mode. Scalar commands read the fields above,
  // which track the first value of each list.
  std::vector<std::uint32_t> n_list;
  std::vector<std::uint32_t> c_list;
  std::vector<path_length_distribution> dist_list;
  std::vector<double> drop_list;
  std::vector<double> rate_list;
  std::vector<routing_mode> mode_list;
  std::vector<sim::adversary_config> adversary_list;
  std::vector<net::topology_config> topology_list;
  std::vector<net::routing_config> routing_list;
  std::vector<net::churn_config> churn_list;
  std::vector<sim::mix_failure_config> mixfail_list;
  std::vector<sim::retry_policy> retry_list;
  std::vector<net::outage> crash_list;
  std::string checkpoint_path;   ///< campaign: journal file ("" = off)
  bool resume = false;           ///< campaign: adopt the journal's prefix
  std::uint32_t shard_index = 0; ///< campaign: this process's shard
  std::uint32_t shard_count = 1; ///< campaign: total shards (--shard i/n)
  bool shard_set = false;
  std::vector<std::string> input_paths;  ///< merge: shard journals
  std::uint32_t replicas = 8;
  bool replicas_set = false;
  double threshold = 0.99;
  bool via_trace = false;
  std::string out_path;  ///< capture: trace destination ("" = stdout)
  std::string in_path;   ///< replay: trace source
  // Session / longitudinal-attack surface.
  std::vector<std::uint32_t> population_list;
  std::vector<std::uint32_t> rounds_list;
  std::vector<attack::attack_kind> attack_list;
  std::vector<workload::stream_backend> stream_list;
  std::uint32_t users = 1000;         ///< attack: sender population
  std::uint32_t pairs = 1;            ///< attack: persistent pairs
  std::uint32_t round_size = 32;      ///< attack: threshold batch size
  double send_rate = 1.0;             ///< attack: per-round pair send prob.
  bool workload_flag_set = false;     ///< any of the four above (or --every)
  workload::popularity_law sender_law{};
  bool sender_law_set = false;
  workload::popularity_law receiver_law{};
  bool receiver_law_set = false;
  std::uint32_t every = 0;            ///< attack: trajectory stride (0=auto)
  // Route-planning diagnostics surface (the 'plan' command).
  bool plan_csr = false;              ///< plan: CSR storage mode
  bool plan_components = false;       ///< plan: run connected components
  std::uint32_t plan_source = 0;      ///< plan: Dijkstra source node
  std::uint32_t plan_routes = 100;    ///< plan: routes to extract/plan
  bool plan_flag_set = false;         ///< any of the four above
  // Observability surface (src/obs). Off by default: no registry, no
  // tracer, no heartbeat — default runs stay byte-identical.
  std::string metrics_path;  ///< --metrics: JSONL snapshot file ("" = off)
  bool progress = false;     ///< --progress: stderr heartbeat with ETA
};

sim::adversary_config parse_adversary(const std::string& spec) {
  sim::adversary_config cfg;
  if (spec == "full") return cfg;
  if (spec == "timing") {
    cfg.kind = sim::adversary_kind::timing_correlator;
    return cfg;
  }
  if (spec.rfind("partial", 0) == 0) {
    cfg.kind = sim::adversary_kind::partial_coverage;
    if (spec.size() == 7) return cfg;  // bare "partial": f = 1
    if (spec[7] != ':') usage("bad --adversary (want partial:<f>[:honest])");
    const auto honest = spec.find(":honest");
    const std::string f = spec.substr(8, honest == std::string::npos
                                             ? honest
                                             : honest - 8);
    char* end = nullptr;
    cfg.coverage_fraction = std::strtod(f.c_str(), &end);
    if (end == f.c_str() || *end != '\0' || !cfg.valid())
      usage("bad --adversary coverage fraction");
    cfg.receiver_compromised = honest == std::string::npos;
    return cfg;
  }
  usage("--adversary values are full|partial:<f>[:honest]|timing");
}

std::vector<std::string> split_on(const std::string& s, char delim);

net::topology_config parse_topology(const std::string& spec) {
  net::topology_config cfg;
  const auto colon = spec.find(':');
  const std::string kind = spec.substr(0, colon);
  std::vector<std::string> args;
  if (colon != std::string::npos)
    args = split_on(spec.substr(colon + 1), ':');
  auto as_u32 = [](const std::string& tok) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(tok.c_str(), &end, 10);
    if (tok.empty() || tok[0] == '-' || end == tok.c_str() || *end != '\0' ||
        v > 0xFFFFFFFFull)
      usage("bad --topology parameter (want an unsigned integer)");
    return static_cast<std::uint32_t>(v);
  };
  if (kind == "complete" && args.empty()) return cfg;
  if (kind == "ring" && args.size() == 1) {
    cfg.kind = net::topology_kind::ring;
    cfg.ring_k = as_u32(args[0]);
    if (cfg.ring_k < 1) usage("--topology ring:<k> needs k >= 1");
    return cfg;
  }
  if (kind == "regular" && (args.size() == 1 || args.size() == 2)) {
    cfg.kind = net::topology_kind::random_regular;
    cfg.degree = as_u32(args[0]);
    if (args.size() == 2) {
      // The wiring seed is a full 64-bit value (matches graph_seed and the
      // trace format), unlike the 32-bit structural parameters.
      char* end = nullptr;
      const std::string& tok = args[1];
      errno = 0;
      cfg.graph_seed = std::strtoull(tok.c_str(), &end, 10);
      if (tok.empty() || tok[0] == '-' || end == tok.c_str() ||
          *end != '\0' || errno == ERANGE)
        usage("bad --topology regular seed (want a 64-bit unsigned integer)");
    }
    if (cfg.degree < 2) usage("--topology regular:<d> needs d >= 2");
    return cfg;
  }
  if (kind == "tiered" && args.size() == 1) {
    cfg.kind = net::topology_kind::tiered;
    cfg.tiers = as_u32(args[0]);
    if (cfg.tiers < 2) usage("--topology tiered:<t> needs t >= 2");
    return cfg;
  }
  if (kind == "trust" && args.size() == 1) {
    cfg.kind = net::topology_kind::trust_weighted;
    char* end = nullptr;
    cfg.trust_decay = std::strtod(args[0].c_str(), &end);
    if (end == args[0].c_str() || *end != '\0' || cfg.trust_decay <= 0.0 ||
        cfg.trust_decay > 1.0)
      usage("--topology trust:<decay> needs decay in (0, 1]");
    return cfg;
  }
  usage(
      "--topology values are "
      "complete|ring:<k>|regular:<d>[:<seed>]|tiered:<t>|trust:<decay>");
}

workload::popularity_law parse_law(const std::string& spec) {
  workload::popularity_law law;
  if (spec == "uniform") return law;
  if (spec.rfind("zipf:", 0) == 0) {
    law.kind = workload::popularity_kind::zipf;
    const std::string s = spec.substr(5);
    char* end = nullptr;
    law.exponent = std::strtod(s.c_str(), &end);
    if (end == s.c_str() || *end != '\0' || !law.valid())
      usage("bad popularity law (want zipf:<s> with s > 0)");
    return law;
  }
  usage("popularity-law values are uniform|zipf:<s>");
}

attack::attack_kind parse_attack(const std::string& spec) {
  const auto kind = attack::parse_attack_kind(spec);
  if (!kind) usage("--attack values are none|intersection|sda|bayes");
  return *kind;
}

net::churn_config parse_churn(const std::string& spec) {
  net::churn_config cfg;
  const auto colon = spec.find(':');
  const std::string rate = spec.substr(0, colon);
  char* end = nullptr;
  cfg.down_rate = std::strtod(rate.c_str(), &end);
  if (end == rate.c_str() || *end != '\0' || cfg.down_rate < 0.0)
    usage("bad --churn (want 0 or <down_rate>[:<mean_downtime>])");
  if (colon != std::string::npos) {
    const std::string mean = spec.substr(colon + 1);
    cfg.mean_downtime = std::strtod(mean.c_str(), &end);
    if (end == mean.c_str() || *end != '\0' || cfg.mean_downtime <= 0.0)
      usage("--churn mean downtime must be > 0");
  }
  if (!cfg.valid()) usage("--churn parameters out of range");
  return cfg;
}

double parse_double_or_die(const std::string& tok, const char* what) {
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(tok.c_str(), &end);
  // Finite only: overflow ("1e999" -> HUGE_VAL with ERANGE) and explicit
  // inf/nan spellings are never meaningful values for these flags.
  if (tok.empty() || end == tok.c_str() || *end != '\0' || errno == ERANGE ||
      !std::isfinite(v))
    usage((std::string("bad ") + what + " (want a finite number)").c_str());
  return v;
}

std::uint32_t parse_u32_or_die(const std::string& tok, const char* what) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(tok.c_str(), &end, 10);
  if (tok.empty() || tok[0] == '-' || end == tok.c_str() || *end != '\0' ||
      v > 0xFFFFFFFFull)
    usage((std::string("bad ") + what +
           " (want an unsigned 32-bit integer)").c_str());
  return static_cast<std::uint32_t>(v);
}

std::uint64_t parse_u64_or_die(const std::string& tok, const char* what) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(tok.c_str(), &end, 10);
  if (tok.empty() || tok[0] == '-' || end == tok.c_str() || *end != '\0' ||
      errno == ERANGE)
    usage((std::string("bad ") + what +
           " (want an unsigned 64-bit integer)").c_str());
  return static_cast<std::uint64_t>(v);
}

/// "--shard i/n": i in [0, n), n >= 1. Everything else exits loudly.
void parse_shard(const std::string& spec, options& opt) {
  const auto slash = spec.find('/');
  if (slash == std::string::npos || slash == 0 || slash + 1 >= spec.size())
    usage("bad --shard (want i/n, e.g. --shard 0/4)");
  opt.shard_index = parse_u32_or_die(spec.substr(0, slash), "--shard index");
  opt.shard_count = parse_u32_or_die(spec.substr(slash + 1), "--shard count");
  if (opt.shard_count == 0 || opt.shard_index >= opt.shard_count)
    usage("--shard index must be in [0, count) with count >= 1");
  opt.shard_set = true;
}

net::routing_config parse_routing(const std::string& spec) {
  net::routing_config cfg;
  if (spec == "walk") return cfg;
  if (spec == "kpaths" || spec.rfind("kpaths:", 0) == 0) {
    cfg.kind = net::route_select::kpaths;
    if (spec.size() > 6)
      cfg.k = parse_u32_or_die(spec.substr(7), "--routing kpaths k");
    if (!cfg.valid()) usage("--routing kpaths:<k> needs k in [1, 64]");
    return cfg;
  }
  usage("--routing values are walk|kpaths[:<k>]");
}

sim::retry_policy parse_retry(const std::string& spec) {
  sim::retry_policy p;
  const auto args = split_on(spec, ':');
  if (args.empty() || args.size() > 4)
    usage("bad --retry (want <max>[:<timeout>[:<backoff>[:<max_timeout>]]])");
  p.max_retries = parse_u32_or_die(args[0], "--retry max");
  if (args.size() > 1) p.timeout = parse_double_or_die(args[1], "--retry timeout");
  if (args.size() > 2) p.backoff = parse_double_or_die(args[2], "--retry backoff");
  if (args.size() > 3)
    p.max_timeout = parse_double_or_die(args[3], "--retry max_timeout");
  else if (p.max_timeout < p.timeout)
    p.max_timeout = p.timeout;  // an explicit long timeout caps itself
  if (!p.valid())
    usage("--retry parameters out of range (timeout > 0, backoff >= 1, "
          "max_timeout >= timeout)");
  return p;
}

sim::mix_failure_config parse_mixfail(const std::string& spec) {
  sim::mix_failure_config mf;
  const auto args = split_on(spec, ':');
  if (args.empty() || args.size() > 3)
    usage("bad --mix-failures (want <count>[:<horizon>[:<mean_duration>]])");
  mf.count = parse_u32_or_die(args[0], "--mix-failures count");
  if (args.size() > 1)
    mf.horizon = parse_double_or_die(args[1], "--mix-failures horizon");
  if (args.size() > 2)
    mf.mean_duration = parse_double_or_die(args[2], "--mix-failures mean");
  if (!mf.valid())
    usage("--mix-failures parameters out of range (horizon >= 0, "
          "mean_duration > 0)");
  return mf;
}

net::outage parse_crash(const std::string& spec) {
  const auto args = split_on(spec, ':');
  if (args.size() != 3) usage("bad --crash (want <node>:<start>:<duration>)");
  net::outage o;
  o.node = parse_u32_or_die(args[0], "--crash node");
  o.start = parse_double_or_die(args[1], "--crash start");
  o.duration = parse_double_or_die(args[2], "--crash duration");
  if (!o.valid())
    usage("--crash parameters out of range (start >= 0, duration > 0, "
          "both finite)");
  return o;
}

std::vector<std::string> split_on(const std::string& s, char delim) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const auto at = s.find(delim, pos);
    const std::string tok =
        s.substr(pos, at == std::string::npos ? at : at - pos);
    if (tok.empty()) usage("empty element in delimited list");
    out.push_back(tok);
    if (at == std::string::npos) break;
    pos = at + 1;
  }
  return out;
}

std::vector<std::string> split_commas(const std::string& s) {
  return split_on(s, ',');
}

std::vector<double> parse_double_list(const char* spec) {
  std::vector<double> out;
  for (const std::string& tok : split_commas(spec)) {
    char* end = nullptr;
    out.push_back(std::strtod(tok.c_str(), &end));
    if (end == tok.c_str() || *end != '\0')
      usage("expected a number in comma list");
  }
  return out;
}

std::vector<std::uint32_t> parse_u32_list(const char* spec) {
  std::vector<std::uint32_t> out;
  for (const std::string& tok : split_commas(spec)) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(tok.c_str(), &end, 10);
    if (tok[0] == '-' || end == tok.c_str() || *end != '\0' ||
        v > 0xFFFFFFFFull)
      usage("expected a 32-bit unsigned integer in comma list");
    out.push_back(static_cast<std::uint32_t>(v));
  }
  return out;
}

options parse(int argc, char** argv) {
  if (argc < 2) usage();
  options opt;
  opt.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage("missing value for flag");
      return argv[++i];
    };
    if (flag == "--n") {
      opt.n_list = parse_u32_list(next());
      opt.n = opt.n_list.front();
    }
    else if (flag == "--c") {
      opt.c_list = parse_u32_list(next());
      opt.c = opt.c_list.front();
    }
    else if (flag == "--dist") {
      opt.dist = parse_dist(next());
      opt.dist_list.push_back(*opt.dist);
    }
    // The scalar numeric flags all go through the checked end-pointer
    // parsers: "--messages foo" or "--threads 4x" must exit loudly, never
    // silently become 0 (the historical atoi behavior) or 4.
    else if (flag == "--mean") opt.mean = parse_double_or_die(next(), "--mean");
    else if (flag == "--messages") {
      opt.messages = parse_u32_or_die(next(), "--messages");
      if (opt.messages == 0) usage("--messages must be > 0");
      opt.messages_set = true;
    }
    else if (flag == "--seed") opt.seed = parse_u64_or_die(next(), "--seed");
    else if (flag == "--drop") {
      opt.drop_list = parse_double_list(next());
      opt.drop = opt.drop_list.front();
    }
    else if (flag == "--rate") opt.rate_list = parse_double_list(next());
    else if (flag == "--mode") {
      for (const std::string& tok : split_commas(next())) {
        if (tok == "onion" || tok == "source_routed")
          opt.mode_list.push_back(routing_mode::source_routed);
        else if (tok == "crowds" || tok == "hop_by_hop")
          opt.mode_list.push_back(routing_mode::hop_by_hop);
        else usage("--mode values are onion|crowds");
      }
    }
    else if (flag == "--adversary") {
      for (const std::string& tok : split_commas(next()))
        opt.adversary_list.push_back(parse_adversary(tok));
    }
    else if (flag == "--topology") {
      for (const std::string& tok : split_commas(next()))
        opt.topology_list.push_back(parse_topology(tok));
    }
    else if (flag == "--churn") {
      for (const std::string& tok : split_commas(next()))
        opt.churn_list.push_back(parse_churn(tok));
    }
    else if (flag == "--retry") {
      for (const std::string& tok : split_commas(next()))
        opt.retry_list.push_back(parse_retry(tok));
    }
    else if (flag == "--mix-failures") {
      for (const std::string& tok : split_commas(next()))
        opt.mixfail_list.push_back(parse_mixfail(tok));
    }
    else if (flag == "--crash") {
      for (const std::string& tok : split_commas(next()))
        opt.crash_list.push_back(parse_crash(tok));
    }
    else if (flag == "--checkpoint") opt.checkpoint_path = next();
    else if (flag == "--resume") opt.resume = true;
    else if (flag == "--shard") parse_shard(next(), opt);
    else if (flag == "--input") opt.input_paths.emplace_back(next());
    else if (flag == "--population")
      opt.population_list = parse_u32_list(next());
    else if (flag == "--rounds") opt.rounds_list = parse_u32_list(next());
    else if (flag == "--attack") {
      for (const std::string& tok : split_commas(next()))
        opt.attack_list.push_back(parse_attack(tok));
    }
    else if (flag == "--stream") {
      for (const std::string& tok : split_commas(next())) {
        const auto backend = workload::parse_stream_backend(tok);
        if (!backend) usage("--stream values are exact|sketch");
        opt.stream_list.push_back(*backend);
      }
    }
    else if (flag == "--users") {
      const auto v = parse_u32_list(next());
      if (v.size() != 1 || v[0] < 2) usage("--users wants one value >= 2");
      opt.users = v[0];
      opt.workload_flag_set = true;
    }
    else if (flag == "--pairs") {
      const auto v = parse_u32_list(next());
      if (v.size() != 1 || v[0] < 1) usage("--pairs wants one value >= 1");
      opt.pairs = v[0];
      opt.workload_flag_set = true;
    }
    else if (flag == "--round-size") {
      const auto v = parse_u32_list(next());
      if (v.size() != 1 || v[0] < 1) usage("--round-size wants one value >= 1");
      opt.round_size = v[0];
      opt.workload_flag_set = true;
    }
    else if (flag == "--send-rate") {
      char* end = nullptr;
      const char* v = next();
      opt.send_rate = std::strtod(v, &end);
      if (end == v || *end != '\0' || opt.send_rate < 0.0 ||
          opt.send_rate > 1.0)
        usage("--send-rate must be in [0, 1]");
      opt.workload_flag_set = true;
    }
    else if (flag == "--sender-law") {
      opt.sender_law = parse_law(next());
      opt.sender_law_set = true;
    }
    else if (flag == "--receiver-law") {
      opt.receiver_law = parse_law(next());
      opt.receiver_law_set = true;
    }
    else if (flag == "--every") {
      const auto v = parse_u32_list(next());
      if (v.size() != 1 || v[0] < 1) usage("--every wants one value >= 1");
      opt.every = v[0];
      opt.workload_flag_set = true;
    }
    else if (flag == "--threshold") {
      char* end = nullptr;
      const char* v = next();
      opt.threshold = std::strtod(v, &end);
      if (end == v || *end != '\0') usage("--threshold must be a number");
    }
    else if (flag == "--via-trace") opt.via_trace = true;
    else if (flag == "--out") opt.out_path = next();
    else if (flag == "--in") opt.in_path = next();
    else if (flag == "--replicas") {
      opt.replicas = parse_u32_or_die(next(), "--replicas");
      if (opt.replicas == 0) usage("--replicas must be > 0");
      opt.replicas_set = true;
    }
    else if (flag == "--breakdown") opt.breakdown = true;
    else if (flag == "--samples") {
      opt.samples = parse_u64_or_die(next(), "--samples");
      if (opt.samples == 0) usage("--samples must be > 0");
    }
    else if (flag == "--threads")
      opt.threads = parse_u32_or_die(next(), "--threads");
    else if (flag == "--shards")
      opt.shards = parse_u64_or_die(next(), "--shards");
    else if (flag == "--no-dedup") opt.dedup = false;
    else if (flag == "--routing") {
      for (const std::string& tok : split_commas(next()))
        opt.routing_list.push_back(parse_routing(tok));
    }
    else if (flag == "--csr") {
      opt.plan_csr = true;
      opt.plan_flag_set = true;
    }
    else if (flag == "--components") {
      opt.plan_components = true;
      opt.plan_flag_set = true;
    }
    else if (flag == "--source") {
      opt.plan_source = parse_u32_or_die(next(), "--source");
      opt.plan_flag_set = true;
    }
    else if (flag == "--routes") {
      opt.plan_routes = parse_u32_or_die(next(), "--routes");
      if (opt.plan_routes == 0) usage("--routes must be > 0");
      opt.plan_flag_set = true;
    }
    else if (flag == "--metrics") {
      opt.metrics_path = next();
      if (opt.metrics_path.empty()) usage("--metrics wants a file path");
    }
    else if (flag.rfind("--metrics=", 0) == 0) {
      opt.metrics_path = flag.substr(std::strlen("--metrics="));
      if (opt.metrics_path.empty()) usage("--metrics wants a file path");
    }
    else if (flag == "--progress") opt.progress = true;
    else usage(("unknown flag " + flag).c_str());
  }
  return opt;
}

/// The closed-form analytic commands are clique-only; accepting a
/// restricted graph (or churn) and silently reporting clique numbers is
/// exactly the fallback the topology surface promises never to do.
void reject_topology_flags(const options& opt, const char* command) {
  if (!opt.topology_list.empty() &&
      opt.topology_list.front().kind != net::topology_kind::complete)
    usage((std::string("--topology does not apply to '") + command +
           "' (clique-only closed forms); use estimate/simulate/campaign")
              .c_str());
  if (!opt.churn_list.empty() && opt.churn_list.front().enabled())
    usage((std::string("--churn does not apply to '") + command +
           "'; use simulate/capture/campaign")
              .c_str());
  if (!opt.routing_list.empty())
    usage((std::string("--routing does not apply to '") + command +
           "'; use simulate/capture/campaign/plan")
              .c_str());
}

/// The graph-diagnostics surface belongs to 'plan'; anywhere else these
/// flags would be silently ignored — the fallback this CLI promises never
/// to do.
void reject_plan_flags(const options& opt, const char* command) {
  if (opt.plan_flag_set)
    usage((std::string("--csr/--components/--source/--routes do not apply "
                       "to '") +
           command + "'; they drive the 'plan' command")
              .c_str());
}

/// Commands with no longitudinal surface must reject the session/attack
/// flags loudly, mirroring reject_topology_flags — silently dropping a
/// sweep axis is exactly the fallback this CLI promises never to do.
void reject_session_flags(const options& opt, const char* command) {
  if (!opt.population_list.empty() || !opt.rounds_list.empty() ||
      !opt.attack_list.empty())
    usage((std::string("--population/--rounds/--attack do not apply to '") +
           command + "'; use simulate/capture/campaign or the 'attack' "
                     "command")
              .c_str());
  if (!opt.stream_list.empty())
    usage((std::string("--stream does not apply to '") + command +
           "'; it selects the disclosure accumulator backend on "
           "simulate/capture/campaign/attack")
              .c_str());
  if (opt.sender_law_set)
    usage((std::string("--sender-law does not apply to '") + command +
           "'; only the 'attack' workload draws senders from a law")
              .c_str());
  if (opt.receiver_law_set)
    usage((std::string("--receiver-law does not apply to '") + command +
           "'; use simulate/capture/campaign or the 'attack' command")
              .c_str());
  if (opt.workload_flag_set)
    usage((std::string("--users/--pairs/--round-size/--send-rate/--every do "
                       "not apply to '") +
           command + "'; they configure the 'attack' workload")
              .c_str());
}

/// The fault/recovery surface belongs to the simulator (and the campaign's
/// journal); any other command accepting these flags would silently ignore
/// them — the fallback this CLI promises never to do.
void reject_fault_flags(const options& opt, const char* command) {
  if (!opt.retry_list.empty() || !opt.mixfail_list.empty() ||
      !opt.crash_list.empty())
    usage((std::string("--retry/--mix-failures/--crash do not apply to '") +
           command + "'; use simulate/capture/campaign")
              .c_str());
  if (!opt.checkpoint_path.empty() || opt.resume)
    usage((std::string("--checkpoint/--resume do not apply to '") + command +
           "'; only 'campaign' and 'merge' touch journals")
              .c_str());
  if (opt.shard_set)
    usage((std::string("--shard does not apply to '") + command +
           "'; only 'campaign' splits its grid into shards")
              .c_str());
  if (!opt.input_paths.empty())
    usage((std::string("--input does not apply to '") + command +
           "'; it names the shard journals 'merge' combines")
              .c_str());
}

/// The observability surface instruments the long-running commands
/// (simulate/campaign/attack/plan/merge); anywhere else --metrics would
/// write an empty snapshot and --progress would stay silent — accepting
/// them there is exactly the silent drop this CLI promises never to do.
void reject_obs_flags(const options& opt, const char* command) {
  if (!opt.metrics_path.empty() || opt.progress)
    usage((std::string("--metrics/--progress do not apply to '") + command +
           "'; they instrument simulate/campaign/attack/plan/merge")
              .c_str());
}

/// Folds one run's deterministic report telemetry into the registry under
/// the catalogued metric names (README "Observability") — the same names
/// run_campaign records per replica, so a one-cell campaign and a simulate
/// of that cell agree.
void harvest_report(obs::metrics_registry& reg, const sim::sim_report& r) {
  reg.add_counter("sim.events_executed", r.events_executed);
  reg.add_counter("sim.messages_submitted", r.submitted);
  reg.add_counter("sim.messages_delivered", r.delivered);
  reg.add_counter("sim.messages_dropped", r.wire_dropped);
  reg.add_counter("sim.messages_stranded", r.wire_stranded + r.wire_crashed);
  reg.add_counter("sim.retransmissions", r.retransmissions);
  reg.add_counter("attack.memo_hits", r.memo_hits);
  reg.add_counter("attack.memo_misses", r.memo_misses);
}

int cmd_degree(const options& opt) {
  reject_topology_flags(opt, "degree");
  reject_session_flags(opt, "degree");
  reject_fault_flags(opt, "degree");
  reject_plan_flags(opt, "degree");
  reject_obs_flags(opt, "degree");
  const system_params sys{opt.n, 1};
  const auto d = opt.dist.value_or(path_length_distribution::fixed(3));
  const double h = anonymity_degree(sys, d);
  std::printf("strategy %s on N=%u, C=1: H* = %.6f bits (ceiling %.6f)\n",
              d.label().c_str(), opt.n, h, max_anonymity_degree(sys));
  if (opt.breakdown) {
    const auto b = anonymity_breakdown(sys, d);
    std::printf("  event class            probability   H(X|e) bits\n");
    std::printf("  sender compromised     %11.6f   %11.6f\n",
                b.p_sender_compromised, 0.0);
    std::printf("  c absent               %11.6f   %11.6f\n", b.p_absent,
                b.h_absent);
    std::printf("  c last hop             %11.6f   %11.6f\n", b.p_last,
                b.h_last);
    std::printf("  c penultimate          %11.6f   %11.6f\n", b.p_penultimate,
                b.h_penultimate);
    std::printf("  c mid-path             %11.6f   %11.6f\n", b.p_mid, b.h_mid);
  }
  return 0;
}

int cmd_estimate(const options& opt) {
  reject_session_flags(opt, "estimate");
  reject_fault_flags(opt, "estimate");
  reject_plan_flags(opt, "estimate");
  reject_obs_flags(opt, "estimate");
  if (!opt.churn_list.empty() && opt.churn_list.front().enabled())
    usage("--churn does not apply to 'estimate'; use simulate/capture/campaign");
  if (!opt.routing_list.empty())
    usage("--routing does not apply to 'estimate' (walk-model engine only); "
          "use simulate/capture/campaign/plan");
  const system_params sys{opt.n, opt.c};
  const auto d = opt.dist.value_or(path_length_distribution::uniform(1, 10));
  const std::vector<node_id> compromised = spread_compromised(opt.n, opt.c);
  if (!opt.topology_list.empty() &&
      opt.topology_list.front().kind != net::topology_kind::complete) {
    // Restricted graph: walk-model Monte Carlo on the topology engine.
    const net::topology_config& topo = opt.topology_list.front();
    if (!topo.valid_for(opt.n))
      usage("--topology parameters out of range for --n");
    const auto t0 = std::chrono::steady_clock::now();
    const auto est = net::estimate_topology_degree(
        sys, compromised, d, topo, opt.samples, opt.seed, opt.threads,
        opt.shards);
    const auto t1 = std::chrono::steady_clock::now();
    const double secs =
        std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0)
            .count();
    std::printf("MC walk-model estimate for %s on N=%u, C=%u, topology %s:\n",
                d.label().c_str(), opt.n, opt.c, topo.label().c_str());
    std::printf("  H* = %.6f +/- %.6f bits (95%% CI)\n", est.degree,
                est.ci95());
    std::printf("  samples:       %llu in %llu shards (seed %llu)\n",
                static_cast<unsigned long long>(est.samples),
                static_cast<unsigned long long>(est.shards),
                static_cast<unsigned long long>(opt.seed));
    std::printf("  throughput:    %.0f samples/s (%.3f s)\n",
                static_cast<double>(est.samples) / secs, secs);
    return 0;
  }
  mc_config cfg;
  cfg.threads = opt.threads;
  cfg.shards = opt.shards;
  cfg.dedup = opt.dedup;
  const auto t0 = std::chrono::steady_clock::now();
  const auto est = estimate_anonymity_degree(sys, compromised, d, opt.samples,
                                             opt.seed, cfg);
  const auto t1 = std::chrono::steady_clock::now();
  const double secs =
      std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0)
          .count();
  std::printf("MC estimate for %s on N=%u, C=%u:\n", d.label().c_str(), opt.n,
              opt.c);
  std::printf("  H* = %.6f +/- %.6f bits (95%% CI)\n", est.degree, est.ci95());
  std::printf("  samples:       %llu in %llu shards (seed %llu)\n",
              static_cast<unsigned long long>(est.samples),
              static_cast<unsigned long long>(est.shards),
              static_cast<unsigned long long>(opt.seed));
  std::printf("  distinct obs:  %llu (%.1f%% dedup)\n",
              static_cast<unsigned long long>(est.distinct_observations),
              100.0 * (1.0 - static_cast<double>(est.distinct_observations) /
                                 static_cast<double>(est.samples)));
  std::printf("  throughput:    %.0f samples/s (%.3f s)\n",
              static_cast<double>(est.samples) / secs, secs);
  return 0;
}

int cmd_optimize(const options& opt) {
  reject_topology_flags(opt, "optimize");
  reject_session_flags(opt, "optimize");
  reject_fault_flags(opt, "optimize");
  reject_plan_flags(opt, "optimize");
  reject_obs_flags(opt, "optimize");
  const system_params sys{opt.n, 1};
  const auto cap = static_cast<path_length>(opt.n - 1);
  const auto r = optimize_for_mean(sys, opt.mean, cap);
  std::printf("optimal distribution for N=%u, E[L]=%.2f: H* = %.6f bits\n",
              opt.n, opt.mean, r.degree);
  const auto& pmf = r.distribution.dense_pmf();
  for (path_length l = 0; l < pmf.size(); ++l)
    if (pmf[l] > 1e-9) std::printf("  Pr[L=%3u] = %.6f\n", l, pmf[l]);
  return 0;
}

sim::sim_config simulate_config(const options& opt) {
  if (opt.sender_law_set)
    usage("--sender-law only applies to the 'attack' command (simulator "
          "senders are the N nodes, drawn uniformly)");
  if (opt.workload_flag_set)
    usage("--users/--pairs/--round-size/--send-rate/--every configure the "
          "'attack' workload; simulator sessions batch --messages into "
          "--rounds");
  reject_plan_flags(opt, "simulate/capture");
  sim::sim_config cfg;
  cfg.sys = {opt.n, opt.c};
  cfg.compromised = spread_compromised(opt.n, opt.c);
  cfg.lengths = opt.dist.value_or(path_length_distribution::uniform(1, 8));
  if (!opt.mode_list.empty()) {
    if (opt.mode_list.size() > 1)
      usage("simulate/capture take a single --mode (the comma-list axis "
            "belongs to 'campaign')");
    cfg.mode = opt.mode_list.front();
  }
  if (!opt.checkpoint_path.empty() || opt.resume || opt.shard_set ||
      !opt.input_paths.empty())
    usage("--checkpoint/--resume/--shard/--input do not apply to "
          "simulate/capture; they drive 'campaign' and 'merge'");
  cfg.message_count = opt.messages;
  cfg.seed = opt.seed;
  if (!(opt.drop >= 0.0 && opt.drop < 1.0))
    usage("--drop must be in [0, 1)");
  cfg.faults.drop_probability = opt.drop;
  // Single scalars, like --mode: a comma list here would silently run only
  // its first value (the axes belong to 'campaign').
  if (opt.retry_list.size() > 1 || opt.mixfail_list.size() > 1)
    usage("simulate/capture take single --retry/--mix-failures values "
          "(comma-list axes belong to 'campaign')");
  if (!opt.retry_list.empty()) cfg.retry = opt.retry_list.front();
  if (!opt.mixfail_list.empty())
    cfg.faults.mix_failures = opt.mixfail_list.front();
  for (const net::outage& o : opt.crash_list)
    if (o.node >= opt.n)
      usage("--crash node out of range for --n");
  cfg.faults.outages = opt.crash_list;
  cfg.identified_threshold = opt.threshold;
  if (!opt.adversary_list.empty()) cfg.adversary = opt.adversary_list.front();
  if (!opt.topology_list.empty()) {
    cfg.topology = opt.topology_list.front();
    if (!cfg.topology.valid_for(opt.n))
      usage("--topology parameters out of range for --n");
    if (cfg.topology.kind != net::topology_kind::complete &&
        cfg.adversary.kind == sim::adversary_kind::timing_correlator)
      usage("--adversary timing is not supported on a restricted --topology");
  }
  if (!opt.churn_list.empty()) cfg.faults.churn = opt.churn_list.front();
  if (opt.routing_list.size() > 1)
    usage("simulate/capture take a single --routing (the comma-list axis "
          "belongs to 'campaign')");
  if (!opt.routing_list.empty()) {
    cfg.routing = opt.routing_list.front();
    if (cfg.routing.planned()) {
      if (cfg.mode != routing_mode::source_routed)
        usage("--routing kpaths requires onion (source-routed) mode; crowds "
              "forwarding has no planned-path analogue");
      if (cfg.adversary.kind == sim::adversary_kind::timing_correlator)
        usage("--adversary timing is not supported with --routing kpaths");
    }
  }
  // Single scalars here; a comma list would otherwise run only its first
  // value — a silent drop (the axes belong to 'campaign').
  if (opt.population_list.size() > 1 || opt.rounds_list.size() > 1 ||
      opt.attack_list.size() > 1 || opt.stream_list.size() > 1)
    usage("simulate/capture take single values for "
          "--population/--rounds/--attack/--stream (comma-list axes belong "
          "to 'campaign')");
  const std::uint32_t population =
      opt.population_list.empty() ? 0 : opt.population_list.front();
  const std::uint32_t rounds =
      opt.rounds_list.empty() ? 0 : opt.rounds_list.front();
  if ((population == 0) != (rounds == 0))
    usage("session mode wants both --population and --rounds (or neither)");
  if (rounds > 0) {
    if (cfg.mode != routing_mode::source_routed)
      usage("session mode (--population/--rounds) requires onion routing; "
            "crowds mode has no per-message inference to fuse");
    cfg.session.rounds = rounds;
    cfg.session.receiver_count = population;
    cfg.session.partner = sim::canonical_partner(population);
    cfg.session.receiver_law = opt.receiver_law;
    if (!opt.attack_list.empty()) cfg.session.attack = opt.attack_list.front();
    if (!opt.stream_list.empty()) {
      cfg.session.stream = opt.stream_list.front();
      if (cfg.session.stream != workload::stream_backend::exact &&
          cfg.session.attack != attack::attack_kind::sda)
        usage("--stream sketch requires --attack sda (the sketch backend "
              "exists for the counting attack only)");
    }
    // Honest under the run's *effective* corruption (partial_coverage
    // draws its own set from the seed, superseding the configured list).
    cfg.session.target_sender = sim::lowest_honest_node(
        sim::effective_compromised(cfg.adversary, opt.n, cfg.compromised,
                                   cfg.seed));
    if (!cfg.session.valid_for(opt.n, cfg.message_count))
      usage("session parameters out of range (need --population >= 2 and "
            "--rounds <= --messages)");
  } else {
    if (!opt.attack_list.empty() &&
        opt.attack_list.front() != attack::attack_kind::none)
      usage("--attack on 'simulate' needs --population and --rounds");
    if (opt.receiver_law_set)
      usage("--receiver-law on 'simulate'/'capture' needs --population and "
            "--rounds (it is the session destination law)");
    if (!opt.stream_list.empty())
      usage("--stream on 'simulate'/'capture' needs --population and "
            "--rounds (it selects the session attack's accumulator "
            "backend)");
  }
  return cfg;
}

void print_sim_report(const sim::sim_config& cfg, const sim::sim_report& r) {
  std::printf(
      "simulated %llu msgs on N=%u, C=%u, %s, adversary %s, topology %s, %s\n",
      static_cast<unsigned long long>(r.submitted), cfg.sys.node_count,
      cfg.sys.compromised_count, cfg.lengths.label().c_str(),
      cfg.adversary.label().c_str(), cfg.topology.label().c_str(),
      cfg.faults.label().c_str());
  std::printf("  delivered:           %llu (%.1f%%)\n",
              static_cast<unsigned long long>(r.delivered),
              100.0 * static_cast<double>(r.delivered) /
                  static_cast<double>(r.submitted));
  std::printf("  mean latency:        %.1f ms\n",
              r.end_to_end_latency.mean() * 1000.0);
  std::printf("  mean hops:           %.2f\n", r.realized_hops.mean());
  std::printf("  empirical H*:        %.4f +/- %.4f bits\n",
              r.empirical_entropy_bits, 1.96 * r.empirical_entropy_stderr);
  std::printf("  identified fraction: %.2f%% (threshold %g)\n",
              100.0 * r.identified_fraction, cfg.identified_threshold);
  if (cfg.retry.enabled())
    std::printf("  retransmissions:     %llu (%s, %.3f per msg)\n",
                static_cast<unsigned long long>(r.retransmissions),
                cfg.retry.label().c_str(),
                static_cast<double>(r.retransmissions) /
                    static_cast<double>(r.submitted));
  if (r.session) {
    const sim::session_report& s = *r.session;
    std::printf("  session %s: target %u sent %llu msgs over %u rounds\n",
                cfg.session.label().c_str(), cfg.session.target_sender,
                static_cast<unsigned long long>(s.target_messages), s.rounds);
    std::printf("    attack posterior:  H = %.4f bits, top receiver %u "
                "(mass %.4f, %s)\n",
                s.entropy_bits, s.top_receiver, s.top_mass,
                s.correct ? "correct" : "wrong");
    if (s.identified && s.identified_round > 0)
      std::printf("    identified at round %u\n", s.identified_round);
    else
      std::printf("    not identified within %u rounds\n", s.rounds);
  }
}

int cmd_simulate(const options& opt) {
  sim::sim_config cfg = simulate_config(opt);
  obs::tracer tracer;
  if (!opt.metrics_path.empty()) cfg.tracer = &tracer;
  obs::progress_meter progress("simulate", 1, opt.progress);
  progress.advance(0);
  const auto r = sim::run_simulation(cfg);
  progress.advance(1);
  print_sim_report(cfg, r);
  if (!opt.metrics_path.empty()) {
    obs::metrics_registry reg;
    harvest_report(reg, r);
    obs::write_metrics_file(opt.metrics_path, reg.snapshot(), tracer.spans());
  }
  return 0;
}

int cmd_capture(const options& opt) {
  reject_obs_flags(opt, "capture");
  const sim::sim_config cfg = simulate_config(opt);
  const sim::sim_trace trace = sim::capture_trace(cfg);
  if (opt.out_path.empty()) {
    sim::write_trace(trace, std::cout);
  } else {
    std::ofstream out(opt.out_path, std::ios::binary);
    if (!out.good()) usage("cannot open --out file for writing");
    sim::write_trace(trace, out);
    // Flush before checking: an ENOSPC trace often fails only when the
    // buffer drains, which the destructor would have swallowed.
    out.flush();
    if (!out.good())
      throw parse_error(parse_error_kind::io, "trace",
                        "write to '" + opt.out_path +
                            "' failed (disk full or I/O error)");
  }
  std::fprintf(stderr, "# captured %zu adversary events, %zu messages\n",
               trace.events.size(), trace.truths.size());
  return 0;
}

int cmd_replay(const options& opt) {
  // Replay's run (session and fault plan included) is defined entirely by
  // the trace.
  reject_session_flags(opt, "replay");
  reject_fault_flags(opt, "replay");
  reject_plan_flags(opt, "replay");
  reject_obs_flags(opt, "replay");
  if (!opt.routing_list.empty())
    usage("--routing does not apply to 'replay' (the trace defines the "
          "run's routing)");
  if (opt.in_path.empty()) usage("replay requires --in <trace file>");
  std::ifstream in(opt.in_path, std::ios::binary);
  if (!in.good()) usage("cannot open --in file");
  const sim::sim_trace trace = sim::read_trace(in);
  const auto r = sim::replay_trace(trace);
  print_sim_report(trace.config, r);
  return 0;
}

/// Builds and validates the scenario grid shared by 'campaign' (which runs
/// it, whole or as one shard) and 'merge' (which must reconstruct the
/// IDENTICAL grid — same flags, same validation — to recompute the scope
/// fingerprint the shard journals are checked against).
sim::campaign_grid build_campaign_grid(const options& opt,
                                       const char* command) {
  if (opt.sender_law_set)
    usage("--sender-law only applies to the 'attack' command (simulator "
          "senders are the N nodes, drawn uniformly)");
  if (opt.receiver_law_set && opt.population_list.empty() &&
      opt.rounds_list.empty())
    usage((std::string("--receiver-law on '") + command +
           "' needs session axes (--population/--rounds); it is the "
           "session destination law")
              .c_str());
  if (opt.workload_flag_set)
    usage("--users/--pairs/--round-size/--send-rate/--every configure the "
          "'attack' workload; campaign sessions batch --messages into "
          "--rounds");
  reject_plan_flags(opt, command);
  // Session axes must be swept together: a --population axis with no
  // --rounds axis (or vice versa) would make every session cell incoherent
  // and silently filter the sweep the user asked for down to its
  // session-less cells.
  const auto has_nonzero = [](const std::vector<std::uint32_t>& v) {
    for (std::uint32_t x : v)
      if (x != 0) return true;
    return false;
  };
  const bool wants_population = has_nonzero(opt.population_list);
  const bool wants_rounds = has_nonzero(opt.rounds_list);
  if (wants_population != wants_rounds)
    usage("session axes come in pairs: sweep --population and --rounds "
          "together (zeros in either list mean 'session off' cells)");
  const bool wants_attack = [&opt] {
    for (attack::attack_kind k : opt.attack_list)
      if (k != attack::attack_kind::none) return true;
    return false;
  }();
  if (wants_attack && !wants_rounds)
    usage("--attack on 'campaign' needs the session axes "
          "(--population/--rounds)");
  // A sketch backend only pairs with sda cells; demanding the sda axis up
  // front beats silently filtering every sketch cell out as infeasible.
  const bool wants_sketch = [&opt] {
    for (workload::stream_backend s : opt.stream_list)
      if (s != workload::stream_backend::exact) return true;
    return false;
  }();
  if (wants_sketch) {
    bool has_sda = false;
    for (attack::attack_kind k : opt.attack_list)
      if (k == attack::attack_kind::sda) has_sda = true;
    if (!has_sda)
      usage("--stream sketch on 'campaign' needs sda on the --attack axis "
            "(the sketch backend exists for the counting attack only)");
  }
  sim::campaign_grid grid;
  if (!opt.n_list.empty()) grid.node_counts = opt.n_list;
  if (!opt.c_list.empty()) grid.compromised_counts = opt.c_list;
  if (!opt.dist_list.empty()) grid.lengths = opt.dist_list;
  if (!opt.mode_list.empty()) grid.modes = opt.mode_list;
  if (!opt.drop_list.empty()) grid.drop_probabilities = opt.drop_list;
  if (!opt.rate_list.empty()) grid.arrival_rates = opt.rate_list;
  if (!opt.adversary_list.empty()) grid.adversaries = opt.adversary_list;
  if (!opt.topology_list.empty()) grid.topologies = opt.topology_list;
  if (!opt.routing_list.empty()) grid.routings = opt.routing_list;
  if (!opt.churn_list.empty()) grid.churns = opt.churn_list;
  if (!opt.mixfail_list.empty()) grid.mix_failures = opt.mixfail_list;
  if (!opt.retry_list.empty()) grid.retries = opt.retry_list;
  grid.fault_outages = opt.crash_list;
  if (!opt.population_list.empty()) grid.populations = opt.population_list;
  if (!opt.rounds_list.empty()) grid.session_rounds = opt.rounds_list;
  if (!opt.attack_list.empty()) grid.attacks = opt.attack_list;
  if (!opt.stream_list.empty()) grid.streams = opt.stream_list;
  grid.session_receiver_law = opt.receiver_law;
  grid.message_count = opt.messages_set ? opt.messages : 500;
  grid.identified_threshold = opt.threshold;
  // Out-of-range axis values are a hard error at parse time, not a silent
  // feasibility filter: a sweep must never quietly shrink.
  for (double d : grid.drop_probabilities)
    if (!(d >= 0.0 && d < 1.0)) usage("--drop values must be in [0, 1)");
  for (double r : grid.arrival_rates)
    if (!(r > 0.0)) usage("--rate values must be > 0");
  for (std::uint32_t p : grid.populations)
    if (p == 1)
      usage("--population values must be 0 (session off) or >= 2");
  for (std::uint32_t r : grid.session_rounds)
    if (r > grid.message_count)
      usage("--rounds values must be <= --messages (at least one message "
            "per mix round)");

  // Surface an empty grid as a usage error here; run_campaign's internal
  // precondition is not a user-facing message. The usual cause is a
  // --topology whose parameters fit none of the --n values (or a
  // timing-adversary x restricted-topology product).
  if (sim::expand_grid(grid).empty())
    usage("campaign grid has no feasible cells (check --topology/--churn "
          "parameters against --n, --adversary timing with restricted "
          "topologies or --routing kpaths, --routing kpaths with crowds "
          "mode, and --population/--rounds/--attack coherence: both "
          "axes on or both off, rounds <= messages, onion mode)");
  return grid;
}

/// Execution config shared by 'campaign' and 'merge'; every field below is
/// part of the scope fingerprint or the seed derivation, so the two
/// commands MUST build it identically.
sim::campaign_config build_campaign_config(const options& opt) {
  sim::campaign_config cfg;
  cfg.replicas = opt.replicas;
  cfg.master_seed = opt.seed;
  cfg.threads = opt.threads;
  cfg.via_trace = opt.via_trace;
  cfg.checkpoint_path = opt.checkpoint_path;
  cfg.resume = opt.resume;
  return cfg;
}

int cmd_campaign(const options& opt) {
  if (!opt.input_paths.empty())
    usage("--input belongs to 'merge'; 'campaign' writes one journal via "
          "--checkpoint");
  const sim::campaign_grid grid = build_campaign_grid(opt, "campaign");
  sim::campaign_config cfg = build_campaign_config(opt);
  if (opt.resume && opt.checkpoint_path.empty())
    usage("--resume requires --checkpoint <file>");
  if (opt.shard_set) {
    // The journal is a shard's only durable output (its CSV covers just
    // its own cells); running one without a checkpoint would leave
    // nothing for 'merge' to combine.
    if (opt.checkpoint_path.empty())
      usage("--shard requires --checkpoint <file> (the shard journal is "
            "what 'merge' combines)");
    cfg.shard_index = opt.shard_index;
    cfg.shard_count = opt.shard_count;
    const std::uint64_t cells = sim::expand_grid(grid).size();
    if (opt.shard_count > cells)
      usage("--shard count exceeds the grid's feasible cell count (some "
            "shards would own zero cells)");
  }

  // Observability: the registry and meter live here, at the process
  // boundary; run_campaign sees only non-owning pointers (null = off).
  // The meter is sized to this shard's local cell count, which is a pure
  // function of the grid and the shard split.
  obs::metrics_registry registry;
  if (!opt.metrics_path.empty()) cfg.metrics = &registry;
  const std::uint64_t grid_cells = sim::expand_grid(grid).size();
  std::uint64_t local_cells = 0;
  for (std::uint64_t a = cfg.shard_index; a < grid_cells;
       a += cfg.shard_count)
    ++local_cells;
  obs::progress_meter progress("campaign cells", local_cells, opt.progress);
  if (opt.progress) cfg.progress = &progress;

  const auto t0 = std::chrono::steady_clock::now();
  const auto result = sim::run_campaign(grid, cfg);
  const auto t1 = std::chrono::steady_clock::now();
  // The snapshot is written before the CSV so a sharded campaign's
  // journal + metrics pair stays consistent even if stdout later fails;
  // the write itself is checked (parse_error{io} exits nonzero).
  if (!opt.metrics_path.empty())
    obs::write_metrics_file(opt.metrics_path, registry.snapshot(), {});
  const double secs =
      std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0)
          .count();

  // Pure CSV on stdout (diffable across runs and thread counts); the run
  // synopsis goes to stderr.
  sim::write_csv(result, std::cout);
  if (cfg.shard_count > 1)
    std::fprintf(stderr, "# shard %u/%u: %llu of the grid's cells\n",
                 cfg.shard_index, cfg.shard_count,
                 static_cast<unsigned long long>(result.cells.size()));
  std::fprintf(stderr,
               "# campaign: %llu cells (%llu infeasible skipped) x %u "
               "replicas = %llu runs, %llu msgs, %.3f s\n",
               static_cast<unsigned long long>(result.cells.size()),
               static_cast<unsigned long long>(result.skipped_cells),
               cfg.replicas, static_cast<unsigned long long>(result.runs),
               static_cast<unsigned long long>(result.runs *
                                               grid.message_count),
               secs);
  std::uint64_t errored = 0;
  for (const sim::campaign_cell& cell : result.cells)
    if (!cell.error.empty()) ++errored;
  if (errored > 0)
    std::fprintf(stderr,
                 "# warning: %llu cell(s) failed; see the CSV error column\n",
                 static_cast<unsigned long long>(errored));
  return 0;
}

int cmd_merge(const options& opt) {
  if (opt.input_paths.empty())
    usage("merge requires at least one --input <shard checkpoint>");
  if (opt.shard_set)
    usage("--shard does not apply to 'merge' (the journals declare their "
          "own shard identities)");
  if (opt.resume) usage("--resume does not apply to 'merge'");
  if (opt.via_trace)
    usage("--via-trace does not apply to 'merge' (nothing is re-run; it "
          "only affects the scope fingerprint of the original campaign)");
  // The grid/config flags must repeat the sharded runs' flags exactly:
  // the scope fingerprint recomputed here is what authenticates the
  // shard journals as belonging to this campaign.
  const sim::campaign_grid grid = build_campaign_grid(opt, "merge");
  const sim::campaign_config cfg = build_campaign_config(opt);
  obs::progress_meter progress("merge shards", opt.input_paths.size(),
                               opt.progress);
  progress.advance(0);
  const auto result = sim::merge_campaign(grid, cfg, opt.input_paths);
  progress.advance(opt.input_paths.size());

  // Shard metrics ride next to the shard journals: each --input FILE is
  // expected to carry a FILE.metrics sibling (the shard's campaign run
  // with --metrics FILE.metrics). Counters and histogram bins sum, so the
  // merged snapshot's stable metrics equal an unsharded run's; a missing
  // or corrupt sibling is a loud parse_error, never a silent skip.
  if (!opt.metrics_path.empty()) {
    obs::metrics_snapshot merged;
    for (const std::string& in : opt.input_paths)
      merged = obs::merge_snapshots(
          merged, obs::read_metrics_file(in + ".metrics").metrics);
    obs::write_metrics_file(opt.metrics_path, merged, {});
  }

  // With --checkpoint, also emit the merged result as an UNSHARDED
  // journal — byte-identical to the one a single-process run would have
  // left behind, and resumable/auditable as such.
  if (!opt.checkpoint_path.empty()) {
    std::ofstream out(opt.checkpoint_path, std::ios::out | std::ios::trunc);
    if (!out)
      throw parse_error(parse_error_kind::io, "checkpoint",
                        "cannot open '" + opt.checkpoint_path +
                            "' for writing");
    sim::write_checkpoint_header(out, sim::campaign_scope(grid, cfg));
    for (std::uint64_t i = 0; i < result.cells.size(); ++i)
      sim::append_checkpoint_cell(out, i, result.cells[i]);
    out.flush();
    if (!out)
      throw parse_error(parse_error_kind::io, "checkpoint",
                        "write to '" + opt.checkpoint_path +
                            "' failed (disk full or I/O error)");
  }

  sim::write_csv(result, std::cout);
  std::fprintf(stderr,
               "# merge: %llu cells (%llu infeasible skipped) from %zu "
               "shard journal(s)\n",
               static_cast<unsigned long long>(result.cells.size()),
               static_cast<unsigned long long>(result.skipped_cells),
               opt.input_paths.size());
  return 0;
}

int cmd_attack(const options& opt) {
  reject_topology_flags(opt, "attack");
  reject_fault_flags(opt, "attack");
  reject_plan_flags(opt, "attack");
  // Axes are a campaign concept; here every flag is a single scalar, and a
  // comma list would otherwise run only its first value — a silent drop.
  if (opt.attack_list.size() > 1 || opt.population_list.size() > 1 ||
      opt.rounds_list.size() > 1 || opt.stream_list.size() > 1)
    usage("'attack' takes single values for "
          "--attack/--population/--rounds/--stream (comma-list axes belong "
          "to 'campaign')");
  // Simulator-only flags have no meaning on the pure workload path; run
  // the attack through 'simulate'/'campaign' sessions to combine them.
  if (!opt.drop_list.empty() || opt.messages_set || !opt.dist_list.empty() ||
      !opt.adversary_list.empty() || !opt.mode_list.empty() ||
      !opt.rate_list.empty() || opt.via_trace || opt.replicas_set)
    usage("--drop/--messages/--dist/--adversary/--mode/--rate/--via-trace/"
          "--replicas do not apply to 'attack'; use simulate/campaign "
          "session mode to combine the rerouting simulator with a "
          "longitudinal attack");
  if (!opt.n_list.empty() || !opt.c_list.empty())
    usage("--n/--c do not apply to 'attack' (no rerouting network here); "
          "the workload population is --users/--population");
  if (opt.attack_list.empty() ||
      opt.attack_list.front() == attack::attack_kind::none)
    usage("attack requires --attack intersection|sda|bayes");
  const attack::attack_kind kind = opt.attack_list.front();
  // --stream asks for the online conformance report (exact: the
  // online==offline identity; sketch: the sketched engine plus its bound
  // and memory cross-checks), which only the counting attack defines.
  const bool stream_set = !opt.stream_list.empty();
  const workload::stream_backend stream =
      stream_set ? opt.stream_list.front() : workload::stream_backend::exact;
  if (stream_set && kind != attack::attack_kind::sda)
    usage("--stream on 'attack' requires --attack sda (the accumulator "
          "backends exist for the counting attack)");

  workload::population_config cfg;
  cfg.seed = opt.seed;
  cfg.user_count = opt.users;
  // Defaulting happens only when the flag is absent; an explicit
  // --population 0 is out of range and exits loudly below.
  cfg.receiver_count =
      opt.population_list.empty() ? opt.users : opt.population_list.front();
  cfg.round_count = opt.rounds_list.empty() ? 200 : opt.rounds_list.front();
  cfg.persistent_pairs = opt.pairs;
  cfg.persistent_rate = opt.send_rate;
  cfg.round_size = opt.round_size;
  cfg.sender_law = opt.sender_law;
  cfg.receiver_law = opt.receiver_law;
  if (cfg.receiver_count < 2) usage("--population must be >= 2");
  if (cfg.round_count < 1) usage("--rounds must be >= 1");
  if (!cfg.valid()) usage("attack workload parameters out of range "
                          "(--pairs <= --users?)");
  if (opt.threshold <= 0.0 || opt.threshold >= 1.0)
    usage("--threshold must be in (0, 1)");

  const workload::population pop(cfg);
  // Sub-unit send rates make round membership noisy (a coincidental
  // background send marks a partnerless round); give the Bayes engine the
  // principled noise estimate so one such round cannot irreversibly
  // annihilate the true partner, and the configured receiver law as its
  // exact background — at --send-rate 1 there are no background rounds to
  // learn it from, and a skewed unlearned background misreads popularity
  // as partnership. Only Bayes consumes either; skip for the other kinds.
  attack::sequential_bayes_config bayes;
  if (kind == attack::attack_kind::sequential_bayes) {
    bayes.membership_noise = attack::estimated_membership_noise(pop, 0);
    bayes.background_pmf =
        workload::popularity_pmf(cfg.receiver_law, cfg.receiver_count);
  }
  if (kind == attack::attack_kind::sda && opt.send_rate >= 1.0 &&
      cfg.receiver_law.kind != workload::popularity_kind::uniform)
    std::fprintf(stderr,
                 "# note: --send-rate 1 leaves sda no background rounds; its "
                 "background estimate stays uniform, which misranks popular "
                 "receivers under %s — lower --send-rate for a calibrated "
                 "subtraction\n",
                 cfg.receiver_law.label().c_str());
  auto engine = attack::make_attack(kind, cfg.receiver_count, bayes);
  const std::uint32_t stride =
      opt.every != 0 ? opt.every : std::max(1u, cfg.round_count / 100);

  obs::metrics_registry reg;
  obs::tracer tracer;
  obs::tracer* const tp = opt.metrics_path.empty() ? nullptr : &tracer;
  obs::progress_meter progress("attack rounds", cfg.round_count,
                               opt.progress);
  progress.advance(0);
  const auto t0 = std::chrono::steady_clock::now();
  const attack::attack_result result = [&] {
    obs::span run_span(tp, "attack.run");
    return attack::run_workload_attack(pop, 0, *engine, opt.threshold,
                                       stride);
  }();
  const auto t1 = std::chrono::steady_clock::now();
  progress.advance(cfg.round_count);
  if (tp != nullptr) {
    reg.add_counter("attack.rounds_ingested", cfg.round_count);
    reg.add_counter("attack.trajectory_points", result.trajectory.size());
  }
  const double secs =
      std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0)
          .count();

  // Trajectory CSV on stdout; run synopsis on stderr (diffable, like
  // campaign).
  std::printf("round,entropy_bits,top_mass,top_receiver,identified\n");
  for (const attack::trajectory_point& pt : result.trajectory)
    std::printf("%u,%.9g,%.9g,%u,%d\n", pt.round, pt.entropy_bits,
                pt.top_mass, pt.top_receiver, pt.identified ? 1 : 0);

  const workload::persistent_pair truth = pop.pairs().front();
  std::fprintf(stderr, "# attack %s on %s (seed %llu): %.3f s\n",
               attack::attack_kind_label(kind), cfg.label().c_str(),
               static_cast<unsigned long long>(cfg.seed), secs);
  std::fprintf(stderr, "# target pair 0: sender %u -> receiver %u\n",
               truth.sender, truth.receiver);
  if (result.identified_round)
    std::fprintf(stderr,
                 "# identified at round %u: receiver %u (mass %.4f, %s)\n",
                 *result.identified_round, result.top_receiver,
                 result.top_mass,
                 result.top_receiver == truth.receiver ? "correct" : "WRONG");
  else
    std::fprintf(stderr,
                 "# not identified within %u rounds (top receiver %u, mass "
                 "%.4f, H = %.4f bits)\n",
                 result.rounds, result.top_receiver, result.top_mass,
                 result.entropy_bits);

  if (kind == attack::attack_kind::sda && (opt.threads != 1 || stream_set)) {
    // The sharded population-scale path must reproduce the streaming counts
    // bit for bit; a mismatch is a determinism bug, reported loudly.
    workload::cooccurrence_config ccfg;
    ccfg.threads = opt.threads;
    const workload::streaming_accumulator exact_acc =
        workload::accumulate_streaming(pop, 0, cfg.round_count,
                                       workload::streaming_config{}, ccfg);
    const workload::cooccurrence_result totals = exact_acc.totals();
    if (tp != nullptr) {
      reg.add_counter("stream.rounds_accumulated", totals.rounds);
      reg.set_gauge("stream.exact_memory_bytes",
                    static_cast<double>(exact_acc.memory_bytes()));
    }
    const attack::sda_attack parallel_sda =
        attack::sda_attack::from_counts(totals, 0, cfg.receiver_count);
    if (parallel_sda.posterior() != result.final_posterior) {
      std::fprintf(stderr,
                   "# ERROR: sharded accumulator diverged from streaming "
                   "counts\n");
      return 1;
    }
    std::fprintf(stderr,
                 "# accumulator cross-check (%u threads over %llu rounds): "
                 "identical\n",
                 opt.threads != 0 ? opt.threads
                                  : std::thread::hardware_concurrency(),
                 static_cast<unsigned long long>(totals.rounds));
    if (stream_set)
      std::fprintf(stderr,
                   "# online==offline: final posterior bit-identical "
                   "(exact backend)\n");

    if (stream == workload::stream_backend::sketch) {
      // Online sketched session over the same round stream.
      attack::online_config ocfg;
      ocfg.kind = kind;
      ocfg.backend = workload::stream_backend::sketch;
      ocfg.identified_threshold = opt.threshold;
      ocfg.stride = stride;
      attack::online_attack online(cfg.receiver_count, ocfg);
      {
        obs::span ingest_span(tp, "attack.ingest");
        attack::round_observation round_obs;
        const node_id target_sender = pop.pairs().front().sender;
        for (std::uint32_t r = 0; r < cfg.round_count; ++r) {
          const workload::round_batch batch = pop.round(r);
          round_obs.target_present =
              std::find(batch.senders.begin(), batch.senders.end(),
                        target_sender) != batch.senders.end();
          round_obs.receivers = batch.receivers;
          online.ingest(round_obs);
        }
      }
      const attack::attack_result sres = online.result();

      // The sharded sketch accumulation must reproduce online ingestion
      // bit for bit — same contract as the exact path above.
      workload::streaming_config scfg;
      scfg.backend = workload::stream_backend::sketch;
      const workload::streaming_accumulator sketch_acc =
          workload::accumulate_streaming(pop, 0, cfg.round_count, scfg,
                                         ccfg);
      const attack::sketch_sda_attack sharded =
          attack::sketch_sda_attack::from_accumulator(sketch_acc, 0,
                                                      cfg.receiver_count);
      if (sharded.posterior() != sres.final_posterior) {
        std::fprintf(stderr,
                     "# ERROR: sharded sketch accumulator diverged from "
                     "online ingestion\n");
        return 1;
      }
      const auto& online_sketch =
          static_cast<const attack::sketch_sda_attack&>(online.engine());
      if (tp != nullptr) {
        reg.set_gauge("stream.memory_bytes",
                      static_cast<double>(online.memory_bytes()));
        reg.set_gauge("stream.sketch_occupied_cells",
                      static_cast<double>(online_sketch.occupied_cells()));
        reg.set_gauge("stream.candidates_retained",
                      static_cast<double>(online_sketch.candidates().size()));
        // Ingest-order-dependent telemetry: recorded only on this
        // single-threaded online path, never compared across thread counts.
        reg.add_counter("stream.reservoir_evictions",
                        online_sketch.reservoir_evictions());
      }

      // Count-min conformance against the exact counts: estimates never
      // undercount (worst-case), and each key overcounts past the bound
      // with probability at most 2^-depth — so across all keys, allow
      // twice that expected violation count before calling it a bug.
      std::uint64_t max_over = 0, over_bound = 0;
      bool under = false;
      for (const auto& [receiver, count] : totals.global_receiver_counts) {
        const std::uint64_t est = online_sketch.estimate_global(receiver);
        if (est < count) { under = true; continue; }
        max_over = std::max(max_over, est - count);
        if (est - count > online_sketch.error_bound()) ++over_bound;
      }
      const std::size_t keys = totals.global_receiver_counts.size();
      const double allowance =
          2.0 * std::ldexp(static_cast<double>(keys),
                           -static_cast<int>(online_sketch.params().depth)) +
          1.0;
      if (under || static_cast<double>(over_bound) > allowance) {
        std::fprintf(stderr,
                     "# ERROR: sketch estimates violate the count-min "
                     "bound (%llu/%zu keys over bound %llu, allowance "
                     "%.0f%s)\n",
                     static_cast<unsigned long long>(over_bound), keys,
                     static_cast<unsigned long long>(
                         online_sketch.error_bound()),
                     allowance, under ? ", undercount seen" : "");
        return 1;
      }
      std::fprintf(stderr,
                   "# sketch bound check: %llu/%zu keys over the per-key "
                   "bound %llu (allowance %.0f), max overestimate %llu, "
                   "no undercounts\n",
                   static_cast<unsigned long long>(over_bound), keys,
                   static_cast<unsigned long long>(
                       online_sketch.error_bound()),
                   allowance, static_cast<unsigned long long>(max_over));

      std::fprintf(stderr,
                   "# sketch posterior (%s, %zu candidates%s): top receiver "
                   "%u (%s exact), H = %.4f bits\n",
                   online_sketch.params().label().c_str(),
                   online_sketch.candidates().size(),
                   online_sketch.candidates_saturated() ? ", saturated" : "",
                   sres.top_receiver,
                   sres.top_receiver == result.top_receiver
                       ? "matches" : "DIFFERS from",
                   sres.entropy_bits);
      std::fprintf(stderr,
                   "# memory: sketch engine %zu bytes, exact accumulator "
                   "%zu bytes (exact/sketch ratio %.2f)\n",
                   online.memory_bytes(), exact_acc.memory_bytes(),
                   static_cast<double>(exact_acc.memory_bytes()) /
                       static_cast<double>(online.memory_bytes()));
    }
  }
  if (tp != nullptr)
    obs::write_metrics_file(opt.metrics_path, reg.snapshot(), tracer.spans());
  return 0;
}

/// Graph-scale diagnostics: builds the topology (CSR or adjacency-vector
/// storage), runs one full Dijkstra tree, extracts --routes shortest routes
/// to seeded random targets, and — when --routing kpaths is given — plans
/// the same number of k-shortest-path routes through net::route_planner.
/// This is the CI smoke for million-node CSR construction and route
/// planning; all timings go to stdout so regressions are visible in logs.
int cmd_plan(const options& opt) {
  reject_session_flags(opt, "plan");
  reject_fault_flags(opt, "plan");
  if (!opt.churn_list.empty() && opt.churn_list.front().enabled())
    usage("--churn does not apply to 'plan' (static graph diagnostics)");
  if (opt.routing_list.size() > 1)
    usage("'plan' takes a single --routing value");
  if (opt.n < 2) usage("plan needs --n >= 2");
  if (opt.plan_source >= opt.n) usage("--source out of range for --n");
  net::topology_config topo_cfg;
  if (!opt.topology_list.empty()) topo_cfg = opt.topology_list.front();
  if (!topo_cfg.valid_for(opt.n))
    usage("--topology parameters out of range for --n");
  // Planning work counters are pure functions of the graph and the query
  // sequence, so they land in the snapshot as stable metrics.
  net::plan_counters counters;
  obs::metrics_registry reg;
  obs::progress_meter progress("plan routes", opt.plan_routes, opt.progress);
  const auto elapsed = [](std::chrono::steady_clock::time_point a,
                          std::chrono::steady_clock::time_point b) {
    return std::chrono::duration_cast<std::chrono::duration<double>>(b - a)
        .count();
  };

  const auto t0 = std::chrono::steady_clock::now();
  const net::topology topo = opt.plan_csr
                                 ? net::topology::make_csr(opt.n, topo_cfg)
                                 : net::topology::make(opt.n, topo_cfg);
  const auto t1 = std::chrono::steady_clock::now();
  std::printf("built %s: N=%u, %llu edges, %s storage, %.3f s\n",
              topo_cfg.label().c_str(), opt.n,
              static_cast<unsigned long long>(topo.edge_count()),
              opt.plan_csr ? "csr" : "adjacency", elapsed(t0, t1));

  if (opt.plan_components) {
    const auto tc0 = std::chrono::steady_clock::now();
    const std::vector<std::uint32_t> comp = net::connected_components(topo);
    const auto tc1 = std::chrono::steady_clock::now();
    // Labels are 0-based in first-discovery order, so the count is one past
    // the largest label.
    std::uint32_t count = 0;
    for (std::uint32_t label : comp) count = std::max(count, label + 1);
    std::printf("components: %u, %.3f s\n", count, elapsed(tc0, tc1));
  }

  const auto t2 = std::chrono::steady_clock::now();
  const net::shortest_path_tree tree =
      net::dijkstra(topo, opt.plan_source, &counters);
  const auto t3 = std::chrono::steady_clock::now();
  std::uint64_t reachable = 0;
  double eccentricity = 0.0;
  for (double d : tree.dist)
    if (d < std::numeric_limits<double>::infinity()) {
      ++reachable;
      eccentricity = std::max(eccentricity, d);
    }
  std::printf("dijkstra from %u: %llu reachable, eccentricity cost %.6g, "
              "%.3f s\n",
              opt.plan_source, static_cast<unsigned long long>(reachable),
              eccentricity, elapsed(t2, t3));

  // Shortest routes to seeded random targets: O(path length) parent-chain
  // walks off the one tree, the way a source-routed sender would plan.
  stats::rng gen(opt.seed);
  const auto t4 = std::chrono::steady_clock::now();
  std::uint64_t hop_total = 0;
  progress.advance(0);
  for (std::uint32_t i = 0; i < opt.plan_routes; ++i) {
    auto target = static_cast<node_id>(gen.next_below(opt.n - 1));
    if (target >= opt.plan_source) ++target;
    for (node_id v = target;
         v != opt.plan_source && v != net::no_vertex; v = tree.parent[v])
      ++hop_total;
    progress.advance(i + 1);
  }
  const auto t5 = std::chrono::steady_clock::now();
  std::printf("%u shortest routes: mean hops %.2f, %.3f s\n", opt.plan_routes,
              static_cast<double>(hop_total) /
                  static_cast<double>(opt.plan_routes),
              elapsed(t4, t5));

  if (!opt.routing_list.empty() && opt.routing_list.front().planned()) {
    net::route_planner planner(topo, opt.routing_list.front());
    const auto t6 = std::chrono::steady_clock::now();
    std::uint64_t planned_hops = 0;
    for (std::uint32_t i = 0; i < opt.plan_routes; ++i) {
      const auto sender = static_cast<node_id>(gen.next_below(opt.n));
      const route r = sample_planned_route(planner, sender, gen);
      planned_hops += r.hops.size();
    }
    const auto t7 = std::chrono::steady_clock::now();
    std::printf("%u %s routes: mean hops %.2f, %.3f s\n", opt.plan_routes,
                planner.config().label().c_str(),
                static_cast<double>(planned_hops) /
                    static_cast<double>(opt.plan_routes),
                elapsed(t6, t7));
    const net::plan_counters& yen = planner.counters();
    counters.dijkstra_runs += yen.dijkstra_runs;
    counters.nodes_settled += yen.nodes_settled;
    counters.edges_scanned += yen.edges_scanned;
    counters.yen_spur_searches += yen.yen_spur_searches;
  }
  if (!opt.metrics_path.empty()) {
    reg.add_counter("plan.dijkstra_runs", counters.dijkstra_runs);
    reg.add_counter("plan.nodes_settled", counters.nodes_settled);
    reg.add_counter("plan.edges_scanned", counters.edges_scanned);
    reg.add_counter("plan.yen_spur_searches", counters.yen_spur_searches);
    obs::write_metrics_file(opt.metrics_path, reg.snapshot(), {});
  }
  return 0;
}

int cmd_figures(const options& opt) {
  reject_topology_flags(opt, "figures");
  reject_session_flags(opt, "figures");
  reject_fault_flags(opt, "figures");
  reject_plan_flags(opt, "figures");
  reject_obs_flags(opt, "figures");
  const system_params sys{opt.n, 1};
  repro::print_figure(repro::fig3a(sys), std::cout);
  repro::print_figure(repro::fig3b(sys), std::cout);
  for (char p : {'a', 'b', 'c', 'd'}) {
    repro::print_figure(repro::fig4(sys, p), std::cout);
    repro::print_figure(repro::fig5(sys, p), std::cout);
  }
  const auto fig6_span =
      std::min<path_length>(50, static_cast<path_length>(opt.n - 1));
  repro::print_figure(repro::fig6(sys, fig6_span), std::cout);
  return 0;
}

int run_command(const options& opt) {
  if (opt.command == "degree") return cmd_degree(opt);
  if (opt.command == "estimate") return cmd_estimate(opt);
  if (opt.command == "optimize") return cmd_optimize(opt);
  if (opt.command == "simulate") return cmd_simulate(opt);
  if (opt.command == "campaign") return cmd_campaign(opt);
  if (opt.command == "merge") return cmd_merge(opt);
  if (opt.command == "capture") return cmd_capture(opt);
  if (opt.command == "replay") return cmd_replay(opt);
  if (opt.command == "attack") return cmd_attack(opt);
  if (opt.command == "plan") return cmd_plan(opt);
  if (opt.command == "figures") return cmd_figures(opt);
  usage("unknown command");
}

}  // namespace

int main(int argc, char** argv) {
#ifdef SIGPIPE
  // A reader that closes the pipe must surface as a checked write failure
  // (EPIPE -> bad stream state below), not kill the process mid-output
  // with no diagnostic and no exit code of ours.
  std::signal(SIGPIPE, SIG_IGN);
#endif
  const options opt = parse(argc, argv);
  int rc;
  try {
    rc = run_command(opt);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  // Every command streams its primary output (CSV, traces, figures)
  // through std::cout or C stdout. Both are buffered: a full disk or a
  // closed pipe often only shows up at the final flush, after the command
  // already "succeeded". Verify delivery before claiming success — a
  // truncated CSV that exits 0 is a silently dropped result.
  std::cout.flush();
  const bool cout_ok = std::cout.good();
  const bool stdout_ok = std::fflush(stdout) == 0 && std::ferror(stdout) == 0;
  if (rc == 0 && !(cout_ok && stdout_ok)) {
    std::fprintf(stderr,
                 "error: writing output to stdout failed "
                 "(disk full or closed pipe?)\n");
    return 1;
  }
  return rc;
}
