#include "src/crypto/prng_cipher.hpp"

#include "src/stats/rng.hpp"

namespace anonpath::crypto {

void prng_cipher::apply(std::span<std::byte> data, std::uint64_t nonce) const noexcept {
  std::uint64_t state = key_ ^ (nonce * 0x9e3779b97f4a7c15ULL);
  std::size_t i = 0;
  while (i < data.size()) {
    const std::uint64_t ks = stats::splitmix64(state);
    for (int b = 0; b < 8 && i < data.size(); ++b, ++i) {
      data[i] ^= static_cast<std::byte>((ks >> (8 * b)) & 0xFF);
    }
  }
}

std::vector<std::byte> prng_cipher::transform(std::span<const std::byte> data,
                                              std::uint64_t nonce) const {
  std::vector<std::byte> out(data.begin(), data.end());
  apply(out, nonce);
  return out;
}

}  // namespace anonpath::crypto
