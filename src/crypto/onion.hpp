#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/anonymity/types.hpp"

namespace anonpath::crypto {

/// Per-node long-term keys for the toy onion construction. Keys are derived
/// deterministically from a master seed (a real deployment would provision
/// them; the simulation only needs them consistent between wrap and peel).
class key_registry {
 public:
  explicit key_registry(std::uint64_t master_seed, std::uint32_t node_count);

  /// Key of a node; `receiver_node` has a key too (the receiver unwraps the
  /// innermost layer).
  [[nodiscard]] std::uint64_t key_of(node_id node) const;

  [[nodiscard]] std::uint32_t node_count() const noexcept { return count_; }

 private:
  std::uint64_t master_;
  std::uint32_t count_;
};

/// A layered onion message as carried on the wire between two hops.
struct onion_envelope {
  std::vector<std::byte> data;

  friend bool operator==(const onion_envelope&, const onion_envelope&) = default;
};

/// Result of removing one layer at a node.
struct peel_result {
  node_id next = 0;        ///< where to forward (receiver_node at the exit)
  onion_envelope inner;    ///< the payload for the next hop
};

/// Wraps `payload` for source-routed delivery along `r`: the innermost layer
/// is keyed to the receiver, and one layer is added (inside-out) for each
/// intermediate node so that node i learns only its successor. `nonce`
/// must be unique per message (the message id).
[[nodiscard]] onion_envelope wrap_onion(const route& r,
                                        std::vector<std::byte> payload,
                                        const key_registry& keys,
                                        std::uint64_t nonce);

/// Removes the layer addressed to `self`, revealing the next hop and the
/// inner envelope. Throws std::invalid_argument on malformed envelopes.
[[nodiscard]] peel_result peel_onion(node_id self, const onion_envelope& env,
                                     const key_registry& keys,
                                     std::uint64_t nonce);

/// Unwraps the final (receiver) layer and returns the plaintext payload.
/// Throws std::invalid_argument if the envelope is not receiver-terminal.
[[nodiscard]] std::vector<std::byte> open_at_receiver(const onion_envelope& env,
                                                      const key_registry& keys,
                                                      std::uint64_t nonce);

}  // namespace anonpath::crypto
