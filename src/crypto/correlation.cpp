#include "src/crypto/correlation.hpp"

namespace anonpath::crypto {

bool payloads_correlate(std::span<const std::byte> a,
                        std::span<const std::byte> b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i] != b[i]) return false;
  return true;
}

double payload_similarity(std::span<const std::byte> a,
                          std::span<const std::byte> b) noexcept {
  if (a.size() != b.size() || a.empty()) return 0.0;
  std::size_t same = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i] == b[i]) ++same;
  return static_cast<double>(same) / static_cast<double>(a.size());
}

double timing_correlation(double t_send, double t_recv, double lo,
                          double hi) noexcept {
  if (!(t_recv > t_send) || hi < lo) return 0.0;
  const double dt = t_recv - t_send;
  // Tolerance keeps boundary delays correlating when the window is
  // degenerate (zero jitter) or dt sits on an edge after rounding.
  const double tol = 1e-9 * (1.0 + hi);
  if (dt < lo - tol || dt > hi + tol) return 0.0;
  const double half = (hi - lo) / 2.0 + tol;
  const double mid = (lo + hi) / 2.0;
  const double score = 1.0 - (dt > mid ? dt - mid : mid - dt) / half;
  return score > 0.0 ? score : 0.0;
}

}  // namespace anonpath::crypto
