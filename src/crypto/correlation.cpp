#include "src/crypto/correlation.hpp"

namespace anonpath::crypto {

bool payloads_correlate(std::span<const std::byte> a,
                        std::span<const std::byte> b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i] != b[i]) return false;
  return true;
}

double payload_similarity(std::span<const std::byte> a,
                          std::span<const std::byte> b) noexcept {
  if (a.size() != b.size() || a.empty()) return 0.0;
  std::size_t same = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i] == b[i]) ++same;
  return static_cast<double>(same) / static_cast<double>(a.size());
}

}  // namespace anonpath::crypto
