#include "src/crypto/onion.hpp"

#include <cstring>
#include <stdexcept>

#include "src/crypto/prng_cipher.hpp"
#include "src/stats/contract.hpp"
#include "src/stats/rng.hpp"

namespace anonpath::crypto {

namespace {

/// Sentinel "next hop" inside the receiver's own layer: end of route.
constexpr node_id terminal_marker = 0xFFFFFFFEu;

void put_u32(std::vector<std::byte>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFF));
}

std::uint32_t get_u32(const std::vector<std::byte>& in) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(std::to_integer<std::uint8_t>(in[i])) << (8 * i);
  return v;
}

}  // namespace

key_registry::key_registry(std::uint64_t master_seed, std::uint32_t node_count)
    : master_(master_seed), count_(node_count) {}

std::uint64_t key_registry::key_of(node_id node) const {
  ANONPATH_EXPECTS(node < count_ || node == receiver_node);
  std::uint64_t s = master_ ^ (static_cast<std::uint64_t>(node) + 1) * 0xd1b54a32d192ed03ULL;
  return stats::splitmix64(s);
}

onion_envelope wrap_onion(const route& r, std::vector<std::byte> payload,
                          const key_registry& keys, std::uint64_t nonce) {
  // Innermost layer: encrypted to the receiver, carrying the terminal marker.
  std::vector<std::byte> current;
  put_u32(current, terminal_marker);
  current.insert(current.end(), payload.begin(), payload.end());
  prng_cipher(keys.key_of(receiver_node)).apply(current, nonce);

  // Wrap outward: the layer handed to hop i tells it hop i+1 (or R).
  for (std::size_t i = r.hops.size(); i-- > 0;) {
    const node_id self = r.hops[i];
    const node_id next = (i + 1 < r.hops.size()) ? r.hops[i + 1] : receiver_node;
    std::vector<std::byte> layer;
    layer.reserve(current.size() + 4);
    put_u32(layer, next);
    layer.insert(layer.end(), current.begin(), current.end());
    prng_cipher(keys.key_of(self)).apply(layer, nonce);
    current = std::move(layer);
  }
  return onion_envelope{std::move(current)};
}

peel_result peel_onion(node_id self, const onion_envelope& env,
                       const key_registry& keys, std::uint64_t nonce) {
  if (env.data.size() < 4)
    throw std::invalid_argument("onion: envelope too short");
  std::vector<std::byte> clear = env.data;
  prng_cipher(keys.key_of(self)).apply(clear, nonce);
  const std::uint32_t next = get_u32(clear);
  if (next == terminal_marker)
    throw std::invalid_argument("onion: receiver layer peeled at a relay");
  peel_result out;
  out.next = next;
  out.inner.data.assign(clear.begin() + 4, clear.end());
  return out;
}

std::vector<std::byte> open_at_receiver(const onion_envelope& env,
                                        const key_registry& keys,
                                        std::uint64_t nonce) {
  if (env.data.size() < 4)
    throw std::invalid_argument("onion: envelope too short");
  std::vector<std::byte> clear = env.data;
  prng_cipher(keys.key_of(receiver_node)).apply(clear, nonce);
  if (get_u32(clear) != terminal_marker)
    throw std::invalid_argument("onion: not a receiver-terminal envelope");
  return {clear.begin() + 4, clear.end()};
}

}  // namespace anonpath::crypto
