#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace anonpath::crypto {

/// Toy symmetric stream cipher: a SplitMix64 keystream XORed over the
/// payload, keyed by (key, nonce).
///
/// NOT cryptographically secure — it is a *simulation substrate* standing in
/// for the layered encryption of Chaum mixes / onion routing (DESIGN.md,
/// substitutions table). What the reproduction needs from it is exactly what
/// it provides: each re-encryption changes every byte of the ciphertext, so
/// an observer cannot correlate a message across hops by payload bytes
/// (the property the paper's worst-case adversary is *granted* anyway).
class prng_cipher {
 public:
  explicit prng_cipher(std::uint64_t key) noexcept : key_(key) {}

  /// XOR-encrypts `data` in place under (key, nonce). Involutory:
  /// applying it twice with the same nonce restores the plaintext.
  void apply(std::span<std::byte> data, std::uint64_t nonce) const noexcept;

  /// Convenience: returns a transformed copy.
  [[nodiscard]] std::vector<std::byte> transform(std::span<const std::byte> data,
                                                 std::uint64_t nonce) const;

  [[nodiscard]] std::uint64_t key() const noexcept { return key_; }

 private:
  std::uint64_t key_;
};

}  // namespace anonpath::crypto
