#pragma once

#include <cstddef>
#include <span>

namespace anonpath::crypto {

/// Payload-byte correlation as available to the paper's adversary
/// (Sec. 4, third worst-case assumption): two wire captures are "the same
/// message" when their bytes match. True for plaintext systems like Crowds;
/// defeated by per-hop re-encryption (onion layers) — the library's tests
/// demonstrate both, and the adversary harness is therefore *granted*
/// message identities, per the paper's worst-case model.
[[nodiscard]] bool payloads_correlate(std::span<const std::byte> a,
                                      std::span<const std::byte> b) noexcept;

/// Hamming-style similarity in [0,1]: fraction of positions with equal
/// bytes (0 when lengths differ). Used to show onion layers push observed
/// similarity to chance level.
[[nodiscard]] double payload_similarity(std::span<const std::byte> a,
                                        std::span<const std::byte> b) noexcept;

/// Timing correlation as available to a low-latency traffic adversary
/// (Zheng's rudimentary model): the score in [0, 1] that a capture at
/// `t_recv` is the *same message* as an earlier capture at `t_send`, given
/// that one forwarding step takes a delay in [lo, hi]. Peaks at the window
/// midpoint and falls off linearly to 0 at the edges, so "closest to the
/// expected latency" maximizes the score; exactly 0 outside the window
/// (padded by a relative epsilon so exact-boundary delays — jitter-free
/// links — still correlate). Preconditions: none; lo > hi or t_recv <=
/// t_send simply score 0.
[[nodiscard]] double timing_correlation(double t_send, double t_recv,
                                        double lo, double hi) noexcept;

}  // namespace anonpath::crypto
