#pragma once

#include <cstddef>
#include <span>

namespace anonpath::crypto {

/// Payload-byte correlation as available to the paper's adversary
/// (Sec. 4, third worst-case assumption): two wire captures are "the same
/// message" when their bytes match. True for plaintext systems like Crowds;
/// defeated by per-hop re-encryption (onion layers) — the library's tests
/// demonstrate both, and the adversary harness is therefore *granted*
/// message identities, per the paper's worst-case model.
[[nodiscard]] bool payloads_correlate(std::span<const std::byte> a,
                                      std::span<const std::byte> b) noexcept;

/// Hamming-style similarity in [0,1]: fraction of positions with equal
/// bytes (0 when lengths differ). Used to show onion layers push observed
/// similarity to chance level.
[[nodiscard]] double payload_similarity(std::span<const std::byte> a,
                                        std::span<const std::byte> b) noexcept;

}  // namespace anonpath::crypto
