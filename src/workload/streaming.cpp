#include "src/workload/streaming.hpp"

#include <algorithm>

#include "src/stats/contract.hpp"
#include "src/stats/thread_pool.hpp"

namespace anonpath::workload {

const char* stream_backend_label(stream_backend backend) noexcept {
  switch (backend) {
    case stream_backend::exact: return "exact";
    case stream_backend::sketch: return "sketch";
  }
  return "unknown";
}

std::optional<stream_backend> parse_stream_backend(const std::string& label) {
  if (label == "exact") return stream_backend::exact;
  if (label == "sketch") return stream_backend::sketch;
  return std::nullopt;
}

streaming_accumulator::streaming_accumulator(std::vector<node_id> pair_senders,
                                             streaming_config cfg)
    : cfg_(cfg), pair_senders_(std::move(pair_senders)) {
  ANONPATH_EXPECTS(cfg_.valid());
  pair_of_sender_.reserve(pair_senders_.size());
  for (std::uint32_t p = 0; p < pair_senders_.size(); ++p)
    pair_of_sender_.emplace_back(pair_senders_[p], p);
  std::sort(pair_of_sender_.begin(), pair_of_sender_.end());
  if (cfg_.backend == stream_backend::exact) {
    exact_pairs_.resize(pair_senders_.size());
  } else {
    global_sketch_.emplace(cfg_.sketch.depth, cfg_.sketch.width,
                           cfg_.sketch.salt);
    sketch_pairs_.reserve(pair_senders_.size());
    for (std::size_t p = 0; p < pair_senders_.size(); ++p)
      sketch_pairs_.push_back(sketch_pair{
          0, 0,
          count_min_sketch(cfg_.sketch.depth, cfg_.sketch.width,
                           cfg_.sketch.salt),
          bottom_k_sample(cfg_.sketch.candidates, cfg_.sketch.salt)});
  }
}

void streaming_accumulator::ingest(const round_batch& batch) {
  ++rounds_;
  messages_ += batch.senders.size();
  if (cfg_.backend == stream_backend::exact) {
    for (node_id v : batch.receivers) ++global_[v];
  } else {
    for (node_id v : batch.receivers) global_sketch_->add(v);
  }
  present_.clear();
  for (node_id s : batch.senders) {
    const auto it =
        std::lower_bound(pair_of_sender_.begin(), pair_of_sender_.end(),
                         std::make_pair(s, std::uint32_t{0}));
    if (it != pair_of_sender_.end() && it->first == s)
      present_.push_back(it->second);
  }
  std::sort(present_.begin(), present_.end());
  present_.erase(std::unique(present_.begin(), present_.end()),
                 present_.end());
  for (std::uint32_t p : present_) {
    if (cfg_.backend == stream_backend::exact) {
      exact_pair& ep = exact_pairs_[p];
      ++ep.target_rounds;
      ep.target_messages += batch.senders.size();
      for (node_id v : batch.receivers) ++ep.receivers[v];
    } else {
      sketch_pair& sp = sketch_pairs_[p];
      ++sp.target_rounds;
      sp.target_messages += batch.senders.size();
      for (std::size_t j = 0; j < batch.receivers.size(); ++j) {
        sp.target.add(batch.receivers[j]);
        sp.candidates.offer(
            batch.receivers[j],
            occurrence_priority(cfg_.sketch.salt, batch.round, j));
      }
    }
  }
}

void streaming_accumulator::merge(const streaming_accumulator& other) {
  ANONPATH_EXPECTS(cfg_ == other.cfg_ &&
                   pair_senders_ == other.pair_senders_);
  rounds_ += other.rounds_;
  messages_ += other.messages_;
  if (cfg_.backend == stream_backend::exact) {
    for (const auto& [v, c] : other.global_) global_[v] += c;
    for (std::size_t p = 0; p < exact_pairs_.size(); ++p) {
      exact_pairs_[p].target_rounds += other.exact_pairs_[p].target_rounds;
      exact_pairs_[p].target_messages +=
          other.exact_pairs_[p].target_messages;
      for (const auto& [v, c] : other.exact_pairs_[p].receivers)
        exact_pairs_[p].receivers[v] += c;
    }
  } else {
    global_sketch_->merge(*other.global_sketch_);
    for (std::size_t p = 0; p < sketch_pairs_.size(); ++p) {
      sketch_pairs_[p].target_rounds += other.sketch_pairs_[p].target_rounds;
      sketch_pairs_[p].target_messages +=
          other.sketch_pairs_[p].target_messages;
      sketch_pairs_[p].target.merge(other.sketch_pairs_[p].target);
      sketch_pairs_[p].candidates.merge(other.sketch_pairs_[p].candidates);
    }
  }
}

std::uint64_t streaming_accumulator::target_rounds(std::uint32_t pair) const {
  ANONPATH_EXPECTS(pair < pair_senders_.size());
  return cfg_.backend == stream_backend::exact
             ? exact_pairs_[pair].target_rounds
             : sketch_pairs_[pair].target_rounds;
}

std::uint64_t streaming_accumulator::target_messages(
    std::uint32_t pair) const {
  ANONPATH_EXPECTS(pair < pair_senders_.size());
  return cfg_.backend == stream_backend::exact
             ? exact_pairs_[pair].target_messages
             : sketch_pairs_[pair].target_messages;
}

cooccurrence_result streaming_accumulator::totals() const {
  ANONPATH_EXPECTS(cfg_.backend == stream_backend::exact);
  cooccurrence_result out;
  out.rounds = rounds_;
  out.messages = messages_;
  out.global_receiver_counts.assign(global_.begin(), global_.end());
  out.per_pair.resize(exact_pairs_.size());
  for (std::size_t p = 0; p < exact_pairs_.size(); ++p) {
    out.per_pair[p].target_rounds = exact_pairs_[p].target_rounds;
    out.per_pair[p].target_messages = exact_pairs_[p].target_messages;
    out.per_pair[p].target_receiver_counts.assign(
        exact_pairs_[p].receivers.begin(), exact_pairs_[p].receivers.end());
  }
  return out;
}

std::uint64_t streaming_accumulator::estimate_global(node_id receiver) const {
  ANONPATH_EXPECTS(cfg_.backend == stream_backend::sketch);
  return global_sketch_->estimate(receiver);
}

std::uint64_t streaming_accumulator::estimate_target(std::uint32_t pair,
                                                     node_id receiver) const {
  ANONPATH_EXPECTS(cfg_.backend == stream_backend::sketch);
  ANONPATH_EXPECTS(pair < pair_senders_.size());
  return sketch_pairs_[pair].target.estimate(receiver);
}

std::vector<node_id> streaming_accumulator::candidate_receivers(
    std::uint32_t pair) const {
  ANONPATH_EXPECTS(cfg_.backend == stream_backend::sketch);
  ANONPATH_EXPECTS(pair < pair_senders_.size());
  std::vector<node_id> out;
  for (std::uint64_t key : sketch_pairs_[pair].candidates.keys())
    out.push_back(static_cast<node_id>(key));
  return out;
}

bool streaming_accumulator::candidates_saturated(std::uint32_t pair) const {
  ANONPATH_EXPECTS(cfg_.backend == stream_backend::sketch);
  ANONPATH_EXPECTS(pair < pair_senders_.size());
  return sketch_pairs_[pair].candidates.saturated();
}

std::uint64_t streaming_accumulator::global_error_bound() const {
  ANONPATH_EXPECTS(cfg_.backend == stream_backend::sketch);
  return global_sketch_->error_bound();
}

std::uint64_t streaming_accumulator::target_error_bound(
    std::uint32_t pair) const {
  ANONPATH_EXPECTS(cfg_.backend == stream_backend::sketch);
  ANONPATH_EXPECTS(pair < pair_senders_.size());
  return sketch_pairs_[pair].target.error_bound();
}

const count_min_sketch& streaming_accumulator::global_sketch() const {
  ANONPATH_EXPECTS(cfg_.backend == stream_backend::sketch);
  return *global_sketch_;
}

const count_min_sketch& streaming_accumulator::target_sketch(
    std::uint32_t pair) const {
  ANONPATH_EXPECTS(cfg_.backend == stream_backend::sketch);
  ANONPATH_EXPECTS(pair < pair_senders_.size());
  return sketch_pairs_[pair].target;
}

const bottom_k_sample& streaming_accumulator::candidate_sample(
    std::uint32_t pair) const {
  ANONPATH_EXPECTS(cfg_.backend == stream_backend::sketch);
  ANONPATH_EXPECTS(pair < pair_senders_.size());
  return sketch_pairs_[pair].candidates;
}

std::size_t streaming_accumulator::memory_bytes() const {
  // Map nodes: payload plus red-black bookkeeping (parent/children/color).
  constexpr std::size_t node_overhead =
      sizeof(std::pair<node_id, std::uint64_t>) + 4 * sizeof(void*);
  std::size_t bytes = sizeof(*this) +
                      pair_of_sender_.capacity() *
                          sizeof(std::pair<node_id, std::uint32_t>);
  if (cfg_.backend == stream_backend::exact) {
    bytes += global_.size() * node_overhead;
    for (const exact_pair& ep : exact_pairs_)
      bytes += sizeof(ep) + ep.receivers.size() * node_overhead;
  } else {
    bytes += global_sketch_->memory_bytes();
    for (const sketch_pair& sp : sketch_pairs_)
      bytes += sp.target.memory_bytes() + sp.candidates.memory_bytes();
  }
  return bytes;
}

streaming_accumulator accumulate_streaming(const population& pop,
                                           std::uint32_t lo, std::uint32_t hi,
                                           const streaming_config& scfg,
                                           const cooccurrence_config& ccfg) {
  ANONPATH_EXPECTS(lo <= hi && hi <= pop.config().round_count);
  std::vector<node_id> senders;
  senders.reserve(pop.pairs().size());
  for (const persistent_pair& p : pop.pairs()) senders.push_back(p.sender);
  streaming_accumulator out(senders, scfg);
  const std::uint32_t span = hi - lo;
  if (span == 0) return out;  // empty ranges are first-class, not an error
  const std::uint32_t shards =
      ccfg.shard_count != 0 ? std::min(ccfg.shard_count, span)
                            : std::min<std::uint32_t>(span, 256);
  std::vector<streaming_accumulator> locals(shards, out);
  stats::parallel_for(ccfg.threads, shards, [&](std::uint64_t shard,
                                                unsigned) {
    const std::uint32_t s_lo =
        lo + static_cast<std::uint32_t>(shard * span / shards);
    const std::uint32_t s_hi =
        lo + static_cast<std::uint32_t>((shard + 1) * span / shards);
    for (std::uint32_t r = s_lo; r < s_hi; ++r)
      locals[shard].ingest(pop.round(r));
  });
  // Fixed-order reduction on this thread: ascending shard index.
  for (const streaming_accumulator& local : locals) out.merge(local);
  return out;
}

}  // namespace anonpath::workload
