#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace anonpath::workload {

/// Sketch-backend shape shared by the streaming accumulator and the
/// sketch-backed attacks. Memory per sketch is depth*width counters, so the
/// footprint is independent of the receiver population — the sublinear
/// half of the streaming contract. All hashing is salted SplitMix64, so a
/// given (params, input multiset) pair produces bit-identical sketches on
/// every platform, thread count, and ingest order.
struct sketch_params {
  std::uint32_t depth = 4;         ///< count-min rows (error prob ~ 2^-depth)
  std::uint32_t width = 4096;      ///< counters per row (error ~ 2N/width)
  std::uint32_t candidates = 512;  ///< bottom-k distinct-receiver sample size
  std::uint64_t salt = 0x1d0dca11ab1e5eedULL;  ///< hash-family seed

  [[nodiscard]] bool valid() const noexcept {
    return depth >= 1 && depth <= 16 && width >= 2 && candidates >= 1;
  }

  /// Compact label, e.g. "d4w4096k512" — stable for CSV/CLI surfaces.
  [[nodiscard]] std::string label() const;

  friend bool operator==(const sketch_params&, const sketch_params&) = default;
};

/// Count-min sketch (Cormode–Muthukrishnan) over 64-bit keys: `depth` rows
/// of `width` counters, each row hashing with an independent salted
/// function. Point estimates never underestimate the true count; the
/// overestimate for any fixed key exceeds 2*total()/width with probability
/// at most 2^-depth (Markov per row, rows independent). Merging commutes
/// and is cellwise, so sharded ingestion is bit-identical to sequential.
class count_min_sketch {
 public:
  /// Preconditions: depth in [1, 16]; width >= 2.
  count_min_sketch(std::uint32_t depth, std::uint32_t width,
                   std::uint64_t salt);

  /// Adds `delta` occurrences of `key`.
  void add(std::uint64_t key, std::uint64_t delta = 1);

  /// Point estimate: min over rows. Always >= the true count of `key`.
  [[nodiscard]] std::uint64_t estimate(std::uint64_t key) const;

  /// Total weight added (the N of the error bound).
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  /// Deterministic per-key overestimate bound: 2*total()/width, exceeded
  /// with probability <= 2^-depth. Callers conformance-pin estimates
  /// against exact counts with this.
  [[nodiscard]] std::uint64_t error_bound() const noexcept {
    return 2 * total_ / width_;
  }

  /// Cellwise sum. Precondition: identical depth, width, and salt.
  void merge(const count_min_sketch& other);

  [[nodiscard]] std::uint32_t depth() const noexcept { return depth_; }
  [[nodiscard]] std::uint32_t width() const noexcept { return width_; }
  [[nodiscard]] std::uint64_t salt() const noexcept { return salt_; }

  /// Non-zero counter cells (of depth()*width() total) — the occupancy
  /// gauge the obs layer reports. A pure function of the ingested key
  /// multiset, so it is order- and shard-invariant. O(depth*width).
  [[nodiscard]] std::uint64_t occupied_cells() const noexcept;
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return cells_.capacity() * sizeof(std::uint64_t) + sizeof(*this);
  }

  friend bool operator==(const count_min_sketch&,
                         const count_min_sketch&) = default;

 private:
  std::uint32_t depth_;
  std::uint32_t width_;
  std::uint64_t salt_;
  std::uint64_t total_ = 0;
  std::vector<std::uint64_t> cells_;  // depth_ * width_, row-major
};

/// Bottom-k (KMV) sample of *distinct* keys: keeps the k keys with the
/// smallest salted hash priority. Because the priority is a pure function
/// of (salt, key), the retained set depends only on the set of distinct
/// keys offered — not on offer order, multiplicity, or how the stream was
/// sharded — so merges are deterministic and shard-invariant. Serves as
/// the candidate-receiver reservoir of the sketch backend: the count-min
/// sketch answers "how often", this answers "which keys to even ask about".
class bottom_k_sample {
 public:
  /// Preconditions: k >= 1.
  bottom_k_sample(std::uint32_t k, std::uint64_t salt);

  /// Offers `key` with priority = sketch_hash(salt, key): a uniform sample
  /// of distinct keys.
  void offer(std::uint64_t key);

  /// Offers `key` with an explicit priority; a key's effective priority is
  /// the MINIMUM over all its offers. Feeding one per-occurrence priority
  /// (hashed from stream-intrinsic coordinates such as (round, slot)) makes
  /// this a weighted distinct sample: a key offered c times survives like
  /// the minimum of c uniforms, so heavy hitters are retained first — while
  /// staying a pure function of the offered (key, priority) multiset, hence
  /// order- and shard-invariant.
  void offer(std::uint64_t key, std::uint64_t priority);

  /// Union of retained sets, re-trimmed to k. Precondition: same k, salt.
  void merge(const bottom_k_sample& other);

  /// Retained keys, ascending by key (not by priority).
  [[nodiscard]] std::vector<std::uint64_t> keys() const;

  /// True once more than k distinct keys have been offered — the sample is
  /// then a proper (uniform, by hash order) subset of the distinct keys.
  [[nodiscard]] bool saturated() const noexcept { return saturated_; }

  [[nodiscard]] std::uint32_t k() const noexcept { return k_; }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] std::size_t memory_bytes() const noexcept;

  /// Entries displaced from the reservoir so far (merge sums both sides'
  /// counts plus any displacements the merge itself causes). Telemetry of
  /// work done: it depends on offer order — unlike the retained set, which
  /// stays order- and shard-invariant — so it feeds the obs layer, never a
  /// correctness contract.
  [[nodiscard]] std::uint64_t evictions() const noexcept { return evictions_; }

 private:
  std::uint32_t k_;
  std::uint64_t salt_;
  bool saturated_ = false;
  std::uint64_t evictions_ = 0;
  std::set<std::pair<std::uint64_t, std::uint64_t>> entries_;  // (prio, key)
  std::map<std::uint64_t, std::uint64_t> prio_of_;  // key -> retained prio
};

/// The salted hash both sketches are built on: SplitMix64 over a mix of
/// (salt, row, key). Exposed so tests can pin collision structure.
[[nodiscard]] std::uint64_t sketch_hash(std::uint64_t salt, std::uint64_t row,
                                        std::uint64_t key) noexcept;

/// The candidate-reservoir priority for message slot `slot` of round
/// `round`: a pure function of stream-intrinsic coordinates, so every
/// ingestion path (online observer, sharded accumulator) draws the same
/// priority for the same delivery and the weighted bottom-k sample stays
/// order- and shard-invariant.
[[nodiscard]] std::uint64_t occurrence_priority(std::uint64_t salt,
                                                std::uint64_t round,
                                                std::uint64_t slot) noexcept;

}  // namespace anonpath::workload
