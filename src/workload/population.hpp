#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/anonymity/types.hpp"
#include "src/stats/discrete_sampler.hpp"

namespace anonpath::workload {

/// Population-scale traffic modelling: the longitudinal threat surface the
/// per-message analysis cannot see. A handful of *persistent* (sender ->
/// receiver) pairs re-communicate across mix rounds, embedded in background
/// traffic drawn from configurable popularity laws; what one round leaks is
/// bounded by the paper's per-message strategy, but *set membership across
/// rounds* erodes anonymity round by round (Ando-Lysyanskaya-Upfal; the
/// statistical disclosure literature). src/attack consumes these rounds.

/// How background senders/receivers are distributed over the population.
enum class popularity_kind : std::uint8_t { uniform, zipf };

struct popularity_law {
  popularity_kind kind = popularity_kind::uniform;
  /// zipf only: weight of rank i is (i+1)^-exponent; must be > 0.
  double exponent = 1.0;

  [[nodiscard]] bool valid() const noexcept {
    return kind == popularity_kind::uniform || exponent > 0.0;
  }

  /// "uniform" or "zipf(1.2)" — stable label for CSV/CLI surfaces.
  [[nodiscard]] std::string label() const;

  friend bool operator==(const popularity_law&,
                         const popularity_law&) = default;
};

/// The law's pmf over `count` categories (rank order; no shuffling — user
/// ids double as popularity ranks). Preconditions: law.valid(), count >= 1.
[[nodiscard]] std::vector<double> popularity_pmf(const popularity_law& law,
                                                 std::uint32_t count);

/// When a mix round fires: `threshold` batches exactly round_size messages
/// per round; `timed` collects a Poisson(arrival_rate * round_interval)
/// count of background messages per interval.
enum class round_mode : std::uint8_t { threshold, timed };

/// A seeded population traffic model: M persistent pairs plus background.
struct population_config {
  std::uint64_t seed = 1;
  std::uint32_t user_count = 1000;      ///< sender population size
  std::uint32_t receiver_count = 1000;  ///< receiver population size
  std::uint32_t round_count = 100;      ///< mix rounds to model
  std::uint32_t persistent_pairs = 1;   ///< M tracked (sender, receiver) pairs
  double persistent_rate = 1.0;         ///< per-round send prob. of each pair
  round_mode mode = round_mode::threshold;
  std::uint32_t round_size = 32;        ///< threshold: messages per round
  double arrival_rate = 32.0;           ///< timed: background msgs/second
  double round_interval = 1.0;          ///< timed: seconds per round
  popularity_law sender_law{};          ///< background sender popularity
  popularity_law receiver_law{};        ///< background receiver popularity

  /// round_count == 0 is valid: a population with no rounds to model (the
  /// streaming accumulator treats empty streams as first-class; CLI
  /// surfaces keep their own rounds >= 1 policy).
  [[nodiscard]] bool valid() const noexcept {
    return user_count >= 1 && receiver_count >= 1 &&
           persistent_pairs <= user_count && persistent_rate >= 0.0 &&
           persistent_rate <= 1.0 && sender_law.valid() &&
           receiver_law.valid() &&
           (mode == round_mode::threshold
                ? round_size >= 1
                : arrival_rate >= 0.0 && round_interval > 0.0);
  }

  /// Compact label, e.g. "U=1000,R=100,M=1,thr=32,recv=zipf(1.2)".
  [[nodiscard]] std::string label() const;
};

/// One tracked long-term communication relationship.
struct persistent_pair {
  node_id sender = 0;
  node_id receiver = 0;

  friend bool operator==(const persistent_pair&,
                         const persistent_pair&) = default;
};

/// One mix round, as the batching mix fires it. The adversary's view is the
/// sender multiset and the receiver multiset (membership, never the
/// per-message bijection); `active_pairs` is evaluator-only ground truth.
struct round_batch {
  std::uint32_t round = 0;
  /// Parallel per-message arrays: message i goes senders[i] -> receivers[i].
  /// The first active_pairs.size() messages are the persistent emissions, in
  /// ascending pair order; the rest are background.
  std::vector<node_id> senders;
  std::vector<node_id> receivers;
  /// Indices (into population::pairs()) of the pairs that emitted this
  /// round, ascending. Ground truth for evaluation — not adversary-visible.
  std::vector<std::uint32_t> active_pairs;
};

/// The generator: builds the pair placement and popularity tables once, then
/// materializes any round on demand. round(i) is a pure function of
/// (config.seed, i) via a dedicated stats::rng::stream per round, so rounds
/// can be generated in any order, on any thread, with no shared mutable
/// state — the property the sharded co-occurrence accumulator and every
/// determinism guarantee in this subsystem rest on. Scales to 1e5 users x
/// 1e4 rounds: per-round cost is O(messages * log-free alias draws) and no
/// cross-round state is ever materialized.
class population {
 public:
  /// Precondition: cfg.valid(). Persistent senders are a uniform distinct
  /// sample of the user population; persistent receivers draw from the
  /// receiver law (both on setup-only rng streams).
  explicit population(population_config cfg);

  [[nodiscard]] const population_config& config() const noexcept {
    return cfg_;
  }
  [[nodiscard]] const std::vector<persistent_pair>& pairs() const noexcept {
    return pairs_;
  }

  /// Materializes round `index`. Thread-safe (const, no mutable state) and
  /// deterministic: depends only on (config.seed, index).
  /// Precondition: index < config().round_count.
  [[nodiscard]] round_batch round(std::uint32_t index) const;

 private:
  population_config cfg_;
  std::vector<persistent_pair> pairs_;
  /// Alias tables for non-uniform laws; disengaged for uniform (a plain
  /// next_below draw is cheaper and needs no table).
  std::optional<stats::discrete_sampler> sender_sampler_;
  std::optional<stats::discrete_sampler> receiver_sampler_;
};

}  // namespace anonpath::workload
