#include "src/workload/population.hpp"

#include <cmath>
#include <cstdio>

#include "src/stats/contract.hpp"
#include "src/stats/kahan.hpp"
#include "src/stats/rng.hpp"

namespace anonpath::workload {

namespace {

/// Stream-index salts keeping setup draws disjoint from per-round draws:
/// rounds use indices 0 .. round_count-1 (round_count < 2^32), setup
/// streams live in the high half of the 64-bit index space.
constexpr std::uint64_t pair_sender_stream = 0xFFFFFFFF00000001ULL;
constexpr std::uint64_t pair_receiver_stream = 0xFFFFFFFF00000002ULL;

/// Poisson draw by counting unit-rate exponential arrivals until their sum
/// passes lambda — the log-space form of Knuth's product-of-uniforms, which
/// underflows to a hard ~745 cap once exp(-lambda) rounds to zero. This
/// form is exact for any lambda; O(lambda) per call, fine for per-round
/// batch sizes (the timed mix collects at most a few thousand messages per
/// interval).
std::uint32_t poisson_draw(double lambda, stats::rng& gen) {
  if (lambda <= 0.0) return 0;
  std::uint32_t k = 0;
  double sum = 0.0;
  for (;;) {
    sum += -std::log(std::max(gen.next_double(), 1e-300));
    if (sum >= lambda) return k;
    ++k;
  }
}

}  // namespace

std::string popularity_law::label() const {
  if (kind == popularity_kind::uniform) return "uniform";
  char buf[32];
  std::snprintf(buf, sizeof buf, "zipf(%g)", exponent);
  return buf;
}

std::vector<double> popularity_pmf(const popularity_law& law,
                                   std::uint32_t count) {
  ANONPATH_EXPECTS(law.valid());
  ANONPATH_EXPECTS(count >= 1);
  std::vector<double> pmf(count);
  if (law.kind == popularity_kind::uniform) {
    const double p = 1.0 / static_cast<double>(count);
    for (double& x : pmf) x = p;
    return pmf;
  }
  stats::kahan_sum z;
  for (std::uint32_t i = 0; i < count; ++i) {
    pmf[i] = std::pow(static_cast<double>(i) + 1.0, -law.exponent);
    z.add(pmf[i]);
  }
  for (double& x : pmf) x /= z.value();
  return pmf;
}

std::string population_config::label() const {
  char buf[160];
  if (mode == round_mode::threshold) {
    std::snprintf(buf, sizeof buf, "U=%u,P=%u,R=%u,M=%u,thr=%u,recv=%s",
                  user_count, receiver_count, round_count, persistent_pairs,
                  round_size, receiver_law.label().c_str());
  } else {
    std::snprintf(buf, sizeof buf, "U=%u,P=%u,R=%u,M=%u,timed=%g*%g,recv=%s",
                  user_count, receiver_count, round_count, persistent_pairs,
                  arrival_rate, round_interval, receiver_law.label().c_str());
  }
  return buf;
}

population::population(population_config cfg) : cfg_(cfg) {
  ANONPATH_EXPECTS(cfg_.valid());
  if (cfg_.sender_law.kind != popularity_kind::uniform)
    sender_sampler_.emplace(popularity_pmf(cfg_.sender_law, cfg_.user_count));
  if (cfg_.receiver_law.kind != popularity_kind::uniform)
    receiver_sampler_.emplace(
        popularity_pmf(cfg_.receiver_law, cfg_.receiver_count));

  // Persistent placement on setup-only streams: distinct senders (one
  // long-term relationship per tracked user), receivers from the background
  // law (a popular receiver can also be somebody's long-term partner, which
  // is exactly the hard case for background subtraction).
  stats::rng sender_gen = stats::rng::stream(cfg_.seed, pair_sender_stream);
  stats::rng receiver_gen =
      stats::rng::stream(cfg_.seed, pair_receiver_stream);
  const auto senders =
      sender_gen.sample_distinct(cfg_.user_count, cfg_.persistent_pairs, {});
  pairs_.reserve(cfg_.persistent_pairs);
  for (std::uint32_t i = 0; i < cfg_.persistent_pairs; ++i) {
    persistent_pair p;
    p.sender = senders[i];
    p.receiver = receiver_sampler_
                     ? static_cast<node_id>(
                           receiver_sampler_->sample(receiver_gen))
                     : static_cast<node_id>(
                           receiver_gen.next_below(cfg_.receiver_count));
    pairs_.push_back(p);
  }
}

round_batch population::round(std::uint32_t index) const {
  ANONPATH_EXPECTS(index < cfg_.round_count);
  stats::rng gen = stats::rng::stream(cfg_.seed, index);
  round_batch b;
  b.round = index;

  // Persistent emissions first (ascending pair order — the documented
  // ground-truth prefix).
  for (std::uint32_t p = 0; p < pairs_.size(); ++p) {
    if (!gen.next_bernoulli(cfg_.persistent_rate)) continue;
    b.active_pairs.push_back(p);
    b.senders.push_back(pairs_[p].sender);
    b.receivers.push_back(pairs_[p].receiver);
  }

  // Background fill: to the threshold (a threshold mix fires *at* its batch
  // size, so persistent emissions displace background), or the timed
  // interval's Poisson count.
  const std::uint32_t emitted = static_cast<std::uint32_t>(b.senders.size());
  const std::uint32_t background =
      cfg_.mode == round_mode::threshold
          ? (cfg_.round_size > emitted ? cfg_.round_size - emitted : 0)
          : poisson_draw(cfg_.arrival_rate * cfg_.round_interval, gen);
  b.senders.reserve(emitted + background);
  b.receivers.reserve(emitted + background);
  for (std::uint32_t i = 0; i < background; ++i) {
    b.senders.push_back(
        sender_sampler_
            ? static_cast<node_id>(sender_sampler_->sample(gen))
            : static_cast<node_id>(gen.next_below(cfg_.user_count)));
    b.receivers.push_back(
        receiver_sampler_
            ? static_cast<node_id>(receiver_sampler_->sample(gen))
            : static_cast<node_id>(gen.next_below(cfg_.receiver_count)));
  }
  return b;
}

}  // namespace anonpath::workload
