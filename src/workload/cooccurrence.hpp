#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "src/workload/population.hpp"

namespace anonpath::workload {

/// Sharded, thread-invariant streaming co-occurrence accumulation: the
/// counting half of every disclosure attack, runnable at population scale
/// (1e5 users x 1e4 rounds) without ever materializing the round stream.
/// Rounds are partitioned into `shard_count` contiguous shards (a fixed
/// count, independent of the thread count); shards fan out over a
/// stats::thread_pool, each accumulating sparse per-shard counts from
/// population::round(i) (itself a pure function of (seed, i) via
/// rng::stream), and are merged on the calling thread in ascending shard
/// order. Counts are integers and generation is per-round seeded, so the
/// result is bit-identical for every thread count — the same contract as
/// mc_config and campaign_config.
struct cooccurrence_config {
  unsigned threads = 1;          ///< worker threads; 0 = hardware concurrency
  std::uint32_t shard_count = 0; ///< round shards; 0 = min(round_count, 256)
};

/// Sparse (receiver, count) rows, ascending by receiver id.
using receiver_counts = std::vector<std::pair<node_id, std::uint64_t>>;

/// Longitudinal counts for one tracked pair. "Target rounds" are the rounds
/// whose *sender multiset* contains the pair's sender — the adversary's
/// membership view of a batching mix (it sees who submitted into a round,
/// never the bijection), so a coincidental background message from the same
/// user also marks the round.
struct pair_counts {
  std::uint64_t target_rounds = 0;
  std::uint64_t target_messages = 0;  ///< total messages in target rounds
  receiver_counts target_receiver_counts;

  friend bool operator==(const pair_counts&, const pair_counts&) = default;
};

/// The full accumulation: global receiver frequencies (every round) plus
/// per-pair target-round counts. Background counts for pair p are exact
/// differences: background_messages = messages - target_messages, and
/// per-receiver background = receiver_counts - target_receiver_counts.
struct cooccurrence_result {
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;
  receiver_counts global_receiver_counts;
  std::vector<pair_counts> per_pair;  ///< one per population::pairs() entry

  friend bool operator==(const cooccurrence_result&,
                         const cooccurrence_result&) = default;
};

/// Streams every round of `pop` through the sharded accumulator. See
/// cooccurrence_config for the determinism contract. A zero-round
/// population yields an empty (per_pair-sized) result. Implemented on the
/// exact streaming_accumulator backend (src/workload/streaming.hpp).
[[nodiscard]] cooccurrence_result accumulate_cooccurrence(
    const population& pop, const cooccurrence_config& cfg = {});

}  // namespace anonpath::workload
