#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/workload/cooccurrence.hpp"
#include "src/workload/population.hpp"
#include "src/workload/sketch.hpp"

namespace anonpath::workload {

/// Which state the streaming accumulator keeps per ingested round.
///   * exact  — sparse per-receiver maps; totals() is bit-identical to
///              accumulate_cooccurrence over the same rounds.
///   * sketch — count-min counts plus a weighted bottom-k candidate
///              reservoir per pair; memory is O(depth*width + candidates),
///              independent of the receiver population, with per-key error
///              bounds conformance-pinned to the exact backend.
enum class stream_backend : std::uint8_t { exact, sketch };

/// Stable short label ("exact", "sketch").
[[nodiscard]] const char* stream_backend_label(stream_backend backend) noexcept;

/// Parses a label; nullopt on unknown input.
[[nodiscard]] std::optional<stream_backend> parse_stream_backend(
    const std::string& label);

struct streaming_config {
  stream_backend backend = stream_backend::exact;
  sketch_params sketch{};  ///< sketch backend only

  [[nodiscard]] bool valid() const noexcept { return sketch.valid(); }

  friend bool operator==(const streaming_config&,
                         const streaming_config&) = default;
};

/// Online co-occurrence accumulation: ingests mix rounds one at a time, in
/// any order, with empty and partial streams first-class (zero rounds is an
/// empty accumulation, not an error). Accumulators over disjoint round
/// ranges merge into exactly the state sequential ingestion of the union
/// would have produced — integer counts, commutative sketch cells, and
/// min-priority reservoirs make the merge order-free — so the sharded
/// driver below is bit-identical to a single-threaded pass for every
/// thread/shard split, the same contract as accumulate_cooccurrence.
class streaming_accumulator {
 public:
  /// `pair_senders[i]` is the persistent sender of tracked pair i (the
  /// population::pairs() order). Senders are distinct by construction.
  /// Precondition: cfg.valid().
  explicit streaming_accumulator(std::vector<node_id> pair_senders,
                                 streaming_config cfg = {});

  /// Ingests one round. Membership rule matches accumulate_cooccurrence:
  /// a round is a target round for pair p iff p's sender appears in the
  /// round's sender multiset.
  void ingest(const round_batch& batch);

  /// Folds another accumulator (over a disjoint round range) into this one.
  /// Precondition: identical pair_senders and config.
  void merge(const streaming_accumulator& other);

  [[nodiscard]] const streaming_config& config() const noexcept {
    return cfg_;
  }
  [[nodiscard]] const std::vector<node_id>& pair_senders() const noexcept {
    return pair_senders_;
  }
  [[nodiscard]] std::uint64_t rounds() const noexcept { return rounds_; }
  [[nodiscard]] std::uint64_t messages() const noexcept { return messages_; }
  [[nodiscard]] std::uint64_t target_rounds(std::uint32_t pair) const;
  [[nodiscard]] std::uint64_t target_messages(std::uint32_t pair) const;

  /// Exact backend only: the accumulated counts, bit-identical to
  /// accumulate_cooccurrence over the same rounds (which is now implemented
  /// on top of this type). Precondition: exact backend.
  [[nodiscard]] cooccurrence_result totals() const;

  /// Sketch backend only: count-min point estimates (never underestimate;
  /// overestimate bounded by *_error_bound with probability >= 1 - 2^-depth)
  /// and the per-pair candidate-receiver reservoir (weighted by target-round
  /// frequency; `candidates_saturated` reports whether it truncated).
  [[nodiscard]] std::uint64_t estimate_global(node_id receiver) const;
  [[nodiscard]] std::uint64_t estimate_target(std::uint32_t pair,
                                              node_id receiver) const;
  [[nodiscard]] std::vector<node_id> candidate_receivers(
      std::uint32_t pair) const;
  [[nodiscard]] bool candidates_saturated(std::uint32_t pair) const;
  [[nodiscard]] std::uint64_t global_error_bound() const;
  [[nodiscard]] std::uint64_t target_error_bound(std::uint32_t pair) const;

  /// Sketch backend only: the raw structures, so sketch-backed attacks can
  /// seed themselves with bit-identical state (sketch_sda_attack::
  /// from_accumulator).
  [[nodiscard]] const count_min_sketch& global_sketch() const;
  [[nodiscard]] const count_min_sketch& target_sketch(
      std::uint32_t pair) const;
  [[nodiscard]] const bottom_k_sample& candidate_sample(
      std::uint32_t pair) const;

  /// Resident state, both backends: exact grows with distinct receivers
  /// seen; sketch is constant in the receiver population.
  [[nodiscard]] std::size_t memory_bytes() const;

 private:
  struct exact_pair {
    std::uint64_t target_rounds = 0;
    std::uint64_t target_messages = 0;
    std::map<node_id, std::uint64_t> receivers;
  };
  struct sketch_pair {
    std::uint64_t target_rounds = 0;
    std::uint64_t target_messages = 0;
    count_min_sketch target;
    bottom_k_sample candidates;
  };

  streaming_config cfg_;
  std::vector<node_id> pair_senders_;
  /// (sender, pair index), ascending by sender — the membership scan table.
  std::vector<std::pair<node_id, std::uint32_t>> pair_of_sender_;
  std::uint64_t rounds_ = 0;
  std::uint64_t messages_ = 0;
  // Exact backend state.
  std::map<node_id, std::uint64_t> global_;
  std::vector<exact_pair> exact_pairs_;
  // Sketch backend state.
  std::optional<count_min_sketch> global_sketch_;
  std::vector<sketch_pair> sketch_pairs_;
  std::vector<std::uint32_t> present_;  // scratch: pairs present this round
};

/// Sharded parallel driver: streams rounds [lo, hi) of `pop` through
/// per-shard accumulators (contiguous ranges, fanned out over a
/// stats::thread_pool) and merges them in ascending shard order.
/// Bit-identical for every thread and shard count, and to sequential
/// ingestion. Empty ranges (lo == hi, including zero-round populations)
/// return an empty accumulator. Preconditions: lo <= hi <= round_count;
/// scfg.valid().
[[nodiscard]] streaming_accumulator accumulate_streaming(
    const population& pop, std::uint32_t lo, std::uint32_t hi,
    const streaming_config& scfg = {}, const cooccurrence_config& ccfg = {});

}  // namespace anonpath::workload
