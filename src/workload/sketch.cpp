#include "src/workload/sketch.hpp"

#include <algorithm>

#include "src/stats/contract.hpp"
#include "src/stats/rng.hpp"

namespace anonpath::workload {

std::uint64_t sketch_hash(std::uint64_t salt, std::uint64_t row,
                          std::uint64_t key) noexcept {
  // Distinct golden-ratio multiples decorrelate the three inputs before the
  // SplitMix64 finalizer; the +1 keeps row 0 from degenerating to salt^key.
  std::uint64_t state = salt ^ (0x9e3779b97f4a7c15ULL * (row + 1)) ^
                        (key * 0xbf58476d1ce4e5b9ULL);
  return stats::splitmix64(state);
}

std::uint64_t occurrence_priority(std::uint64_t salt, std::uint64_t round,
                                  std::uint64_t slot) noexcept {
  return sketch_hash(salt ^ 0x0cca51a11ca11edULL, round, slot);
}

std::string sketch_params::label() const {
  return "d" + std::to_string(depth) + "w" + std::to_string(width) + "k" +
         std::to_string(candidates);
}

count_min_sketch::count_min_sketch(std::uint32_t depth, std::uint32_t width,
                                   std::uint64_t salt)
    : depth_(depth), width_(width), salt_(salt) {
  ANONPATH_EXPECTS(depth >= 1 && depth <= 16);
  ANONPATH_EXPECTS(width >= 2);
  cells_.assign(static_cast<std::size_t>(depth_) * width_, 0);
}

void count_min_sketch::add(std::uint64_t key, std::uint64_t delta) {
  for (std::uint32_t row = 0; row < depth_; ++row) {
    const std::uint64_t h = sketch_hash(salt_, row, key) % width_;
    cells_[static_cast<std::size_t>(row) * width_ + h] += delta;
  }
  total_ += delta;
}

std::uint64_t count_min_sketch::estimate(std::uint64_t key) const {
  std::uint64_t best = ~std::uint64_t{0};
  for (std::uint32_t row = 0; row < depth_; ++row) {
    const std::uint64_t h = sketch_hash(salt_, row, key) % width_;
    best = std::min(best, cells_[static_cast<std::size_t>(row) * width_ + h]);
  }
  return best;
}

std::uint64_t count_min_sketch::occupied_cells() const noexcept {
  std::uint64_t occupied = 0;
  for (std::uint64_t cell : cells_)
    if (cell != 0) ++occupied;
  return occupied;
}

void count_min_sketch::merge(const count_min_sketch& other) {
  ANONPATH_EXPECTS(depth_ == other.depth_ && width_ == other.width_ &&
                   salt_ == other.salt_);
  for (std::size_t i = 0; i < cells_.size(); ++i) cells_[i] += other.cells_[i];
  total_ += other.total_;
}

bottom_k_sample::bottom_k_sample(std::uint32_t k, std::uint64_t salt)
    : k_(k), salt_(salt) {
  ANONPATH_EXPECTS(k >= 1);
}

void bottom_k_sample::offer(std::uint64_t key) {
  offer(key, sketch_hash(salt_, 0x5eed, key));
}

void bottom_k_sample::offer(std::uint64_t key, std::uint64_t priority) {
  const auto it = prio_of_.find(key);
  if (it != prio_of_.end()) {
    if (priority >= it->second) return;  // not an improvement
    entries_.erase({it->second, key});
    it->second = priority;
    entries_.emplace(priority, key);
    return;
  }
  prio_of_.emplace(key, priority);
  entries_.emplace(priority, key);
  if (entries_.size() > k_) {
    const auto worst = std::prev(entries_.end());
    prio_of_.erase(worst->second);
    entries_.erase(worst);
    saturated_ = true;
    ++evictions_;
  }
}

void bottom_k_sample::merge(const bottom_k_sample& other) {
  ANONPATH_EXPECTS(k_ == other.k_ && salt_ == other.salt_);
  evictions_ += other.evictions_;  // then re-offering below may add more
  for (const auto& [prio, key] : other.entries_) offer(key, prio);
  saturated_ = saturated_ || other.saturated_;
}

std::vector<std::uint64_t> bottom_k_sample::keys() const {
  std::vector<std::uint64_t> out;
  out.reserve(entries_.size());
  for (const auto& [prio, key] : entries_) out.push_back(key);
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t bottom_k_sample::memory_bytes() const noexcept {
  // Two red-black nodes per entry: pair payload + parent/child pointers.
  return entries_.size() *
             2 * (sizeof(std::pair<std::uint64_t, std::uint64_t>) +
              4 * sizeof(void*)) +
         sizeof(*this);
}

}  // namespace anonpath::workload
