#include "src/workload/cooccurrence.hpp"

#include "src/workload/streaming.hpp"

namespace anonpath::workload {

cooccurrence_result accumulate_cooccurrence(const population& pop,
                                            const cooccurrence_config& cfg) {
  // The offline accumulation is the exact-backend streaming accumulation of
  // every round — one implementation, one determinism contract. Zero-round
  // populations yield an empty (per_pair-sized) result, not an error: the
  // streaming path needs empty and partial ranges to be first-class.
  return accumulate_streaming(pop, 0, pop.config().round_count,
                              streaming_config{}, cfg)
      .totals();
}

}  // namespace anonpath::workload
