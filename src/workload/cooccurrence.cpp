#include "src/workload/cooccurrence.hpp"

#include <algorithm>
#include <map>

#include "src/stats/contract.hpp"
#include "src/stats/thread_pool.hpp"

namespace anonpath::workload {

namespace {

/// Per-shard scratch: ordered sparse maps so the shard-order merge below is
/// deterministic by construction (integer adds would commute anyway; the
/// fixed merge order keeps the contract auditable rather than incidental).
struct shard_counts {
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;
  std::map<node_id, std::uint64_t> global;
  struct pair_shard {
    std::uint64_t target_rounds = 0;
    std::uint64_t target_messages = 0;
    std::map<node_id, std::uint64_t> receivers;
  };
  std::vector<pair_shard> per_pair;
};

void merge_into(receiver_counts& out,
                const std::map<node_id, std::uint64_t>& shard) {
  // Both sides ascend by receiver id: one linear merge pass.
  receiver_counts merged;
  merged.reserve(out.size() + shard.size());
  auto a = out.begin();
  auto b = shard.begin();
  while (a != out.end() || b != shard.end()) {
    if (b == shard.end() || (a != out.end() && a->first < b->first)) {
      merged.push_back(*a++);
    } else if (a == out.end() || b->first < a->first) {
      merged.push_back(*b++);
    } else {
      merged.emplace_back(a->first, a->second + b->second);
      ++a;
      ++b;
    }
  }
  out = std::move(merged);
}

}  // namespace

cooccurrence_result accumulate_cooccurrence(const population& pop,
                                            const cooccurrence_config& cfg) {
  const population_config& pc = pop.config();
  const std::uint32_t shards =
      cfg.shard_count != 0 ? std::min(cfg.shard_count, pc.round_count)
                           : std::min<std::uint32_t>(pc.round_count, 256);
  ANONPATH_EXPECTS(shards >= 1);

  // Sorted persistent-sender list for the membership scan: a message's
  // sender marks round-membership for the pair that owns that sender
  // (senders are distinct across pairs by construction).
  std::vector<std::pair<node_id, std::uint32_t>> pair_of_sender;
  pair_of_sender.reserve(pop.pairs().size());
  for (std::uint32_t p = 0; p < pop.pairs().size(); ++p)
    pair_of_sender.emplace_back(pop.pairs()[p].sender, p);
  std::sort(pair_of_sender.begin(), pair_of_sender.end());

  std::vector<shard_counts> locals(shards);
  stats::parallel_for(
      cfg.threads, shards, [&](std::uint64_t shard, unsigned) {
        shard_counts& local = locals[shard];
        local.per_pair.resize(pop.pairs().size());
        const std::uint32_t lo = static_cast<std::uint32_t>(
            shard * pc.round_count / shards);
        const std::uint32_t hi = static_cast<std::uint32_t>(
            (shard + 1) * pc.round_count / shards);
        std::vector<std::uint32_t> present;  // pairs present this round
        for (std::uint32_t r = lo; r < hi; ++r) {
          const round_batch b = pop.round(r);
          ++local.rounds;
          local.messages += b.senders.size();
          for (node_id v : b.receivers) ++local.global[v];
          present.clear();
          for (node_id s : b.senders) {
            const auto it = std::lower_bound(
                pair_of_sender.begin(), pair_of_sender.end(),
                std::make_pair(s, std::uint32_t{0}));
            if (it != pair_of_sender.end() && it->first == s)
              present.push_back(it->second);
          }
          std::sort(present.begin(), present.end());
          present.erase(std::unique(present.begin(), present.end()),
                        present.end());
          for (std::uint32_t p : present) {
            auto& ps = local.per_pair[p];
            ++ps.target_rounds;
            ps.target_messages += b.senders.size();
            for (node_id v : b.receivers) ++ps.receivers[v];
          }
        }
      });

  // Fixed-order reduction on this thread: ascending shard index.
  cooccurrence_result out;
  out.per_pair.resize(pop.pairs().size());
  for (const shard_counts& local : locals) {
    out.rounds += local.rounds;
    out.messages += local.messages;
    merge_into(out.global_receiver_counts, local.global);
    for (std::size_t p = 0; p < out.per_pair.size(); ++p) {
      out.per_pair[p].target_rounds += local.per_pair[p].target_rounds;
      out.per_pair[p].target_messages += local.per_pair[p].target_messages;
      merge_into(out.per_pair[p].target_receiver_counts,
                 local.per_pair[p].receivers);
    }
  }
  return out;
}

}  // namespace anonpath::workload
