#include "src/repro/figures.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <stdexcept>

#include "src/anonymity/analytic.hpp"
#include "src/anonymity/length_distribution.hpp"
#include "src/anonymity/optimizer.hpp"
#include "src/stats/contract.hpp"

namespace anonpath::repro {

namespace {

labeled_series fixed_length_series(const system_params& sys, path_length lo,
                                   path_length hi) {
  labeled_series s;
  s.label = "F(l)";
  for (path_length l = lo; l <= hi; ++l) {
    s.points.push_back({static_cast<double>(l),
                        anonymity_degree(sys, path_length_distribution::fixed(l))});
  }
  return s;
}

/// U(a, a+width) curve as a function of the width (Figure 4 x-axis).
labeled_series uniform_width_series(const system_params& sys, path_length a,
                                    path_length max_width) {
  labeled_series s;
  s.label = "U(" + std::to_string(a) + "," + std::to_string(a) + "+L)";
  const path_length cap = sys.node_count - 1;  // simple paths: b <= N-1
  for (path_length w = 0; w <= max_width && a + w <= cap; ++w) {
    s.points.push_back(
        {static_cast<double>(w),
         anonymity_degree(sys, path_length_distribution::uniform(
                                   a, static_cast<path_length>(a + w)))});
  }
  return s;
}

/// U(a, 2L-a) curve as a function of the mean L (Figure 5 x-axis).
labeled_series uniform_mean_series(const system_params& sys, path_length a,
                                   path_length max_mean) {
  labeled_series s;
  s.label = "U(" + std::to_string(a) + ",2L-" + std::to_string(a) + ")";
  const path_length cap = sys.node_count - 1;
  for (path_length mean = a; mean <= max_mean; ++mean) {
    const long long b = 2LL * mean - a;
    if (b > static_cast<long long>(cap)) break;
    s.points.push_back(
        {static_cast<double>(mean),
         anonymity_degree(sys, path_length_distribution::uniform(
                                   a, static_cast<path_length>(b)))});
  }
  return s;
}

}  // namespace

figure fig3a(const system_params& sys) {
  figure f;
  f.id = "fig3a";
  f.title = "Anonymity Degree vs Path Length (fixed-length strategy)";
  f.series.push_back(fixed_length_series(sys, 0, sys.node_count - 1));
  return f;
}

figure fig3b(const system_params& sys) {
  figure f;
  f.id = "fig3b";
  f.title = "Anonymity Degree vs Path Length, short-path region";
  f.series.push_back(fixed_length_series(sys, 1, 4));
  return f;
}

figure fig4(const system_params& sys, char panel) {
  figure f;
  f.title = "Anonymity Degree vs Expectation of Path Length (equal variance)";
  switch (panel) {
    case 'a':
      f.id = "fig4a";
      for (path_length a : {4u, 6u, 10u})
        f.series.push_back(uniform_width_series(sys, a, 100));
      break;
    case 'b':
      f.id = "fig4b";
      for (path_length a : {25u, 40u})
        f.series.push_back(uniform_width_series(sys, a, 80));
      break;
    case 'c':
      f.id = "fig4c";
      for (path_length a : {51u, 60u, 70u})
        f.series.push_back(uniform_width_series(sys, a, 50));
      break;
    case 'd':
      f.id = "fig4d";
      for (path_length a : {0u, 1u, 6u})
        f.series.push_back(uniform_width_series(sys, a, 100));
      break;
    default:
      throw std::invalid_argument("fig4: panel must be a..d");
  }
  return f;
}

figure fig5(const system_params& sys, char panel) {
  figure f;
  f.title = "Anonymity Degree vs Variance of Path Length (equal mean)";
  const auto add_uniforms = [&](std::initializer_list<unsigned> lowers,
                                path_length max_mean) {
    // Simple paths cap at N-1 intermediates; clip the published x-range for
    // smaller systems.
    max_mean = std::min(max_mean, static_cast<path_length>(sys.node_count - 1));
    f.series.push_back(fixed_length_series(sys, 0, max_mean));
    for (unsigned a : lowers)
      f.series.push_back(uniform_mean_series(sys, a, max_mean));
  };
  switch (panel) {
    case 'a':
      f.id = "fig5a";
      add_uniforms({4u, 6u, 10u}, 50);
      break;
    case 'b':
      f.id = "fig5b";
      add_uniforms({25u, 40u}, 62);
      break;
    case 'c':
      f.id = "fig5c";
      add_uniforms({51u, 70u}, 75);
      break;
    case 'd':
      f.id = "fig5d";
      add_uniforms({1u, 2u, 6u}, 50);
      break;
    default:
      throw std::invalid_argument("fig5: panel must be a..d");
  }
  return f;
}

figure fig6(const system_params& sys, path_length max_mean) {
  ANONPATH_EXPECTS(max_mean <= sys.node_count - 1);
  figure f;
  f.id = "fig6";
  f.title = "Anonymity Degree vs Optimal Path Length Distribution";
  f.series.push_back(fixed_length_series(sys, 1, max_mean));

  labeled_series u22;
  u22.label = "U(2,2L-2)";
  for (path_length mean = 2; mean <= max_mean; ++mean) {
    const long long b = 2LL * mean - 2;
    if (b > static_cast<long long>(sys.node_count - 1)) break;
    u22.points.push_back(
        {static_cast<double>(mean),
         anonymity_degree(sys, path_length_distribution::uniform(
                                   2, static_cast<path_length>(b)))});
  }
  f.series.push_back(std::move(u22));

  labeled_series opt;
  opt.label = "Optimization";
  const auto cap = static_cast<path_length>(sys.node_count - 1);
  for (path_length mean = 1; mean <= max_mean; ++mean) {
    const auto r = optimize_for_mean(sys, static_cast<double>(mean), cap);
    opt.points.push_back({static_cast<double>(mean), r.degree});
  }
  f.series.push_back(std::move(opt));
  return f;
}

void print_figure(const figure& f, std::ostream& os) {
  os << "# " << f.id << ": " << f.title << "\n";
  for (const auto& s : f.series) {
    os << "# series: " << s.label << "\n";
    os << "x," << s.label << "\n";
    for (const auto& p : s.points) os << p.x << "," << p.y << "\n";
  }
  os << "\n";
}

series_point series_max(const labeled_series& s) {
  ANONPATH_EXPECTS(!s.points.empty());
  return *std::max_element(
      s.points.begin(), s.points.end(),
      [](const series_point& a, const series_point& b) { return a.y < b.y; });
}

double series_value_at(const labeled_series& s, double x) {
  for (const auto& p : s.points) {
    if (std::fabs(p.x - x) < 1e-9) return p.y;
  }
  throw std::out_of_range("series_value_at: x not sampled in series " + s.label);
}

}  // namespace anonpath::repro
