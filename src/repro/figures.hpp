#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "src/anonymity/types.hpp"

namespace anonpath::repro {

/// One (x, y) sample of a published curve.
struct series_point {
  double x = 0.0;
  double y = 0.0;
};

/// One named curve of a figure.
struct labeled_series {
  std::string label;
  std::vector<series_point> points;
};

/// A full figure: id ("fig3a"), caption, and its curves. All reproduction
/// benches print these; figure tests assert the paper's claims on them.
struct figure {
  std::string id;
  std::string title;
  std::vector<labeled_series> series;
};

/// Figure 3(a): anonymity degree vs fixed path length l in [0, N-1]
/// (paper: N=100, C=1; peak at l=51, long-path effect beyond).
[[nodiscard]] figure fig3a(const system_params& sys);

/// Figure 3(b): magnified short-path region l in [1, 4] (short-path effect:
/// F(1) == F(2) > F(3), F(4) above all of them).
[[nodiscard]] figure fig3b(const system_params& sys);

/// Figure 4 panels (a)-(d): H* vs interval width L for U(A, A+L) families
/// with equal variance at equal L. `panel` in {'a','b','c','d'}.
[[nodiscard]] figure fig4(const system_params& sys, char panel);

/// Figure 5 panels (a)-(d): H* vs mean L at equal mean, varying variance:
/// F(L) against U(a, 2L-a). `panel` in {'a','b','c','d'}.
[[nodiscard]] figure fig5(const system_params& sys, char panel);

/// Figure 6: F(L), U(2, 2L-2) and the mean-constrained optimum, L in
/// [1, max_mean].
[[nodiscard]] figure fig6(const system_params& sys, path_length max_mean);

/// Prints a figure as commented CSV blocks (one block per series), the
/// format every reproduction bench emits.
void print_figure(const figure& f, std::ostream& os);

/// Convenience: the largest y in a series (tests use this for peak checks).
[[nodiscard]] series_point series_max(const labeled_series& s);

/// Linear interpolation lookup of y at x (exact match expected for integer
/// grids; throws std::out_of_range when x is outside the series).
[[nodiscard]] double series_value_at(const labeled_series& s, double x);

}  // namespace anonpath::repro
