#include "src/sim/campaign.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>

#include "src/sim/checkpoint.hpp"
#include "src/sim/trace.hpp"
#include "src/stats/contract.hpp"
#include "src/stats/error.hpp"
#include "src/stats/rng.hpp"
#include "src/stats/thread_pool.hpp"

namespace anonpath::sim {

namespace {

/// A cell is runnable iff run_simulation's preconditions hold for it:
/// beyond the clique rules, the topology parameters must fit N and a
/// restricted graph cannot face the timing correlator (no exact
/// restricted-path likelihood for gapped observations).
bool feasible(const campaign_grid& grid, std::uint32_t n, std::uint32_t c,
              const path_length_distribution& lengths, routing_mode mode,
              const adversary_config& adv, const net::topology_config& topo,
              const net::routing_config& routing,
              const net::churn_config& churn, const mix_failure_config& mf,
              const retry_policy& retry, std::uint32_t population,
              std::uint32_t rounds, attack::attack_kind atk,
              workload::stream_backend stream) {
  const system_params sys{n, c};
  // Session coordinates must be coherent: population and rounds are both
  // off or both on, attacks need rounds, enabled sessions need a population
  // of at least two, at least one message per round, and source routing
  // (run_core's own precondition).
  const bool session_ok =
      (population == 0) == (rounds == 0) &&
      (atk == attack::attack_kind::none || rounds > 0) &&
      (rounds == 0 ||
       (population >= 2 && rounds <= grid.message_count &&
        mode == routing_mode::source_routed)) &&
      // Sketch-backed state exists for the counting attack only.
      (stream == workload::stream_backend::exact ||
       atk == attack::attack_kind::sda);
  // Planned (kpaths) routing mirrors run_core's preconditions: whole-path
  // planning only exists for source routing, and its observations have no
  // gapped (timing-correlator) likelihood.
  const bool routing_ok =
      routing.valid() &&
      (!routing.planned() ||
       (mode == routing_mode::source_routed &&
        adv.kind != adversary_kind::timing_correlator));
  return sys.valid() && c < n && lengths.max_length() <= n - 1 &&
         grid.message_count > 0 && adv.valid() && topo.valid_for(n) &&
         routing_ok && churn.valid() && mf.valid() && retry.valid() &&
         session_ok &&
         (topo.kind == net::topology_kind::complete ||
          adv.kind != adversary_kind::timing_correlator);
}

const char* mode_label(routing_mode mode) {
  return mode == routing_mode::source_routed ? "source_routed" : "hop_by_hop";
}

/// Fixed-width numeric rendering so CSV comparisons are byte-exact and
/// independent of any ostream state the caller set up.
void put_number(std::ostream& os, double x) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", x);
  os << buf;
}

/// mean,stderr pair; "nan,nan" when the summary never received a sample
/// (the inference columns of hop-by-hop cells).
void put_summary(std::ostream& os, const stats::running_summary& s,
                 double scale = 1.0) {
  if (s.count() == 0) {
    os << "nan,nan";
    return;
  }
  put_number(os, s.mean() * scale);
  os << ',';
  put_number(os, s.std_error() * scale);
}

/// CSV-quotes free-form text (error messages may contain commas/quotes).
void put_quoted(std::ostream& os, const std::string& text) {
  os << '"';
  for (char c : text) {
    if (c == '"') os << '"';
    os << c;
  }
  os << '"';
}

/// Folds one cell's replica runs into its aggregate, in replica order
/// (bit-identical for any thread count). Errored replicas contribute
/// nothing to the summaries; the first one stamps the cell's error.
campaign_cell reduce_cell(const scenario& s, std::uint32_t replicas,
                          const sim_report* reports,
                          const std::string* errors) {
  campaign_cell agg;
  agg.scene = s;
  agg.replicas = replicas;
  for (std::uint32_t rep = 0; rep < replicas; ++rep) {
    if (!errors[rep].empty()) {
      if (agg.error.empty()) agg.error = errors[rep];
      continue;
    }
    const sim_report& r = reports[rep];
    agg.submitted += r.submitted;
    agg.delivered += r.delivered;
    agg.delivered_fraction.add(static_cast<double>(r.delivered) /
                               static_cast<double>(r.submitted));
    if (r.end_to_end_latency.count() > 0)
      agg.latency_seconds.add(r.end_to_end_latency.mean());
    if (r.realized_hops.count() > 0) agg.hops.add(r.realized_hops.mean());
    if (s.mode == routing_mode::source_routed &&
        !std::isnan(r.empirical_entropy_bits)) {
      agg.entropy_bits.add(r.empirical_entropy_bits);
      agg.identified_fraction.add(r.identified_fraction);
      agg.top1_accuracy.add(r.top1_accuracy);
    }
    if (r.session) {
      agg.attack_entropy_bits.add(r.session->entropy_bits);
      agg.attack_identified.add(r.session->identified ? 1.0 : 0.0);
      // Only replicas that END identified contribute: a transient
      // threshold crossing a later inconsistent round revoked would
      // otherwise make this column disagree with attack_identified.
      if (r.session->identified && r.session->identified_round > 0)
        agg.rounds_to_identify.add(
            static_cast<double>(r.session->identified_round));
    }
    if (s.retry.enabled())
      agg.retransmit_rate.add(static_cast<double>(r.retransmissions) /
                              static_cast<double>(r.submitted));
  }
  return agg;
}

}  // namespace

std::vector<scenario> expand_grid(const campaign_grid& grid) {
  std::vector<scenario> out;
  for (std::uint32_t n : grid.node_counts)
    for (std::uint32_t c : grid.compromised_counts)
      for (const auto& lengths : grid.lengths)
        for (routing_mode mode : grid.modes)
          for (double drop : grid.drop_probabilities)
            for (double rate : grid.arrival_rates)
              for (const adversary_config& adv : grid.adversaries)
                for (const net::topology_config& topo : grid.topologies)
                  for (const net::routing_config& routing : grid.routings)
                    for (const net::churn_config& churn : grid.churns)
                      for (const mix_failure_config& mf : grid.mix_failures)
                        for (const retry_policy& retry : grid.retries)
                          for (std::uint32_t population : grid.populations)
                            for (std::uint32_t rounds : grid.session_rounds)
                              for (attack::attack_kind atk : grid.attacks)
                                for (workload::stream_backend stream :
                                     grid.streams) {
                                  if (!feasible(grid, n, c, lengths, mode,
                                                adv, topo, routing, churn,
                                                mf, retry, population,
                                                rounds, atk, stream))
                                    continue;
                                  out.push_back(scenario{
                                      n, c, lengths, mode, drop, rate, adv,
                                      topo, routing, churn, mf, retry,
                                      population, rounds, atk, stream});
                                }
  return out;
}

sim_config scenario_config(const scenario& s, const campaign_grid& grid,
                           std::uint64_t seed) {
  sim_config cfg;
  cfg.sys = {s.node_count, s.compromised_count};
  cfg.compromised = spread_compromised(s.node_count, s.compromised_count);
  cfg.lengths = s.lengths;
  cfg.mode = s.mode;
  cfg.forward_prob = grid.forward_prob;
  cfg.message_count = grid.message_count;
  cfg.arrival_rate = s.arrival_rate;
  cfg.latency = grid.latency;
  cfg.faults.drop_probability = s.drop_probability;
  cfg.faults.churn = s.churn;
  cfg.faults.outages = grid.fault_outages;
  cfg.faults.mix_failures = s.mix_failure;
  cfg.retry = s.retry;
  cfg.adversary = s.adversary;
  cfg.topology = s.topology;
  cfg.routing = s.routing;
  cfg.identified_threshold = grid.identified_threshold;
  if (s.rounds > 0) {
    cfg.session.rounds = s.rounds;
    cfg.session.receiver_count = s.population;
    cfg.session.receiver_law = grid.session_receiver_law;
    cfg.session.attack = s.attack;
    cfg.session.stream = s.stream;
    cfg.session.partner = canonical_partner(s.population);
    // The effective flags, not the configured list: a partial_coverage
    // adversary supersedes cfg.compromised with a seeded draw, and the
    // target must be honest under what the run actually corrupts.
    cfg.session.target_sender = lowest_honest_node(effective_compromised(
        cfg.adversary, s.node_count, cfg.compromised, seed));
  }
  cfg.seed = seed;
  return cfg;
}

namespace {

/// Every journal write/flush funnels through here: a stream gone bad
/// (ENOSPC, EIO, a yanked volume) must surface as a structured failure,
/// never as a "successful" campaign with silently missing cells.
void check_journal(const std::ofstream& journal, const std::string& path) {
  if (!journal)
    throw parse_error(parse_error_kind::io, "checkpoint",
                      "write to '" + path +
                          "' failed (disk full or I/O error)");
}

}  // namespace

campaign_result run_campaign(const campaign_grid& grid,
                             const campaign_config& config) {
  ANONPATH_EXPECTS(config.replicas >= 1);
  ANONPATH_EXPECTS(!config.resume || !config.checkpoint_path.empty());
  ANONPATH_EXPECTS(config.shard_count >= 1 &&
                   config.shard_index < config.shard_count);
  ANONPATH_EXPECTS(config.shard_count == 1 || !config.checkpoint_path.empty());
  const std::vector<scenario> scenarios = expand_grid(grid);
  ANONPATH_EXPECTS(!scenarios.empty());
  const std::uint64_t cell_total = scenarios.size();

  // This shard's slice of the grid: local cell l holds absolute index
  // shard_index + l * shard_count. The unsharded run is the trivial
  // 1-shard split, where local and absolute coincide.
  std::vector<std::uint64_t> local_to_abs;
  for (std::uint64_t a = config.shard_index; a < cell_total;
       a += config.shard_count)
    local_to_abs.push_back(a);
  const std::uint64_t local_total = local_to_abs.size();

  campaign_result result;
  result.requested_cells = grid.cell_count();
  result.skipped_cells = result.requested_cells - cell_total;
  result.runs = local_total * config.replicas;

  // Checkpoint plumbing: on resume, adopt the journal's completed-cell
  // prefix; either way rewrite the file (header + adopted prefix) so any
  // kill-point tail is truncated before new records append. Every write
  // is checked — see check_journal.
  std::ofstream journal;
  if (!config.checkpoint_path.empty()) {
    const std::uint64_t scope = campaign_scope(grid, config);
    if (config.resume) {
      std::ifstream in(config.checkpoint_path);
      if (in)
        result.cells = read_checkpoint(in, scope, local_total,
                                       config.shard_index, config.shard_count);
    }
    journal.open(config.checkpoint_path,
                 std::ios::out | std::ios::trunc);
    if (!journal)
      throw parse_error(parse_error_kind::io, "checkpoint",
                        "cannot open '" + config.checkpoint_path +
                            "' for writing");
    write_checkpoint_header(journal, scope, config.shard_index,
                            config.shard_count);
    for (std::uint64_t l = 0; l < result.cells.size(); ++l)
      append_checkpoint_cell(journal, local_to_abs[l], result.cells[l]);
    journal.flush();
    check_journal(journal, config.checkpoint_path);
  }
  // Restored records carry default scenes; rebind them from the grid.
  for (std::uint64_t l = 0; l < result.cells.size(); ++l)
    result.cells[l].scene = scenarios[local_to_abs[l]];

  const std::uint64_t first_cell = result.cells.size();
  const std::uint64_t pending_cells = local_total - first_cell;
  const std::uint64_t pending_runs = pending_cells * config.replicas;
  result.cells.reserve(local_total);

  // Fan out: every (cell, replica) run is self-contained — its seed comes
  // from a deterministic per-ABSOLUTE-run rng stream (so resumed or
  // sharded campaigns rerun nothing differently: abs_run depends only on
  // the cell's place in the full grid) and its report lands in its own
  // slot. A replica that throws becomes an error string instead of a dead
  // process. Completed cells flush to the journal in cell order as their
  // replicas finish, under the lock, so the reduction stays bit-identical
  // for any thread count while a kill loses only in-flight cells. A
  // journal write failure throws out of the worker; parallel_for rethrows
  // it on the calling thread and the campaign exits nonzero.
  std::vector<sim_report> reports(pending_runs);
  std::vector<std::string> errors(pending_runs);
  std::vector<std::uint32_t> completed(pending_cells, 0);
  std::vector<double> cell_us(pending_cells, 0.0);
  std::uint64_t flushed = first_cell;
  std::mutex mu;
  if (config.metrics != nullptr) {
    // One slab per parallel_for worker (resolve_thread_count semantics:
    // 0 means hardware concurrency, itself floored at one worker).
    const unsigned hw = std::thread::hardware_concurrency();
    config.metrics->ensure_shards(
        config.threads != 0 ? config.threads : (hw == 0 ? 1u : hw));
  }
  // Progress counts LOCAL cells (restored prefix included, shown as
  // already complete), so the caller sizes the meter from the grid alone.
  if (config.progress != nullptr) config.progress->advance(first_cell);
  stats::parallel_for(
      config.threads, pending_runs, [&](std::uint64_t run, unsigned worker) {
        const std::uint64_t local_cell = first_cell + run / config.replicas;
        const std::uint64_t abs_cell = local_to_abs[local_cell];
        const std::uint64_t abs_run =
            abs_cell * config.replicas + run % config.replicas;
        const scenario& s = scenarios[abs_cell];
        const std::uint64_t seed =
            stats::rng::stream(config.master_seed, abs_run).next_u64();
        const auto run_started = std::chrono::steady_clock::now();
        try {
          const sim_config cfg = scenario_config(s, grid, seed);
          reports[run] = config.via_trace ? replay_trace(capture_trace(cfg))
                                          : run_simulation(cfg);
        } catch (const std::exception& e) {
          errors[run] = *e.what() ? e.what() : "unknown error";
        } catch (...) {
          errors[run] = "unknown error";
        }
        const double run_us = std::chrono::duration<double, std::micro>(
                                  std::chrono::steady_clock::now() -
                                  run_started)
                                  .count();
        // Slab writes are per-worker and lock-free; only the flush loop and
        // the per-cell duration accumulator need the mutex. Every counter
        // harvested here is a deterministic function of the run's seed, so
        // the merged snapshot is identical for any thread count or shard
        // split; the *_us histograms are wall-clock and excluded from
        // stable comparisons by the timing-suffix convention.
        if (config.metrics != nullptr) {
          obs::metrics_registry& m = *config.metrics;
          m.add_counter(worker, "campaign.runs_completed", 1);
          if (errors[run].empty()) {
            const sim_report& r = reports[run];
            m.add_counter(worker, "sim.events_executed", r.events_executed);
            m.add_counter(worker, "sim.messages_submitted", r.submitted);
            m.add_counter(worker, "sim.messages_delivered", r.delivered);
            m.add_counter(worker, "sim.messages_dropped", r.wire_dropped);
            m.add_counter(worker, "sim.messages_stranded",
                          r.wire_stranded + r.wire_crashed);
            m.add_counter(worker, "sim.retransmissions", r.retransmissions);
            m.add_counter(worker, "attack.memo_hits", r.memo_hits);
            m.add_counter(worker, "attack.memo_misses", r.memo_misses);
          } else {
            m.add_counter(worker, "campaign.runs_errored", 1);
          }
          m.observe(worker, "campaign.run_us",
                    static_cast<std::uint64_t>(run_us));
        }
        std::lock_guard<std::mutex> lock(mu);
        cell_us[run / config.replicas] += run_us;
        if (++completed[run / config.replicas] < config.replicas) return;
        while (flushed < local_total &&
               completed[flushed - first_cell] == config.replicas) {
          const std::uint64_t base = (flushed - first_cell) * config.replicas;
          result.cells.push_back(reduce_cell(scenarios[local_to_abs[flushed]],
                                             config.replicas, &reports[base],
                                             &errors[base]));
          if (journal.is_open()) {
            append_checkpoint_cell(journal, local_to_abs[flushed],
                                   result.cells.back());
            journal.flush();
            check_journal(journal, config.checkpoint_path);
          }
          if (config.metrics != nullptr) {
            config.metrics->add_counter(worker, "campaign.cells_completed", 1);
            config.metrics->observe(
                worker, "campaign.cell_us",
                static_cast<std::uint64_t>(cell_us[flushed - first_cell]));
          }
          if (config.progress != nullptr)
            config.progress->advance(flushed + 1);
          ++flushed;
        }
      });
  return result;
}

void write_csv(const campaign_result& result, std::ostream& os) {
  // Session columns only when the campaign actually swept sessions: a
  // deterministic function of the result, so pre-session grids keep their
  // historical byte-identical rendering (pinned by the topology golden).
  // The fault and error columns follow the same rule.
  bool sessions = false, faults = false, routed = false, errored = false;
  bool streamed = false;
  for (const campaign_cell& cell : result.cells) {
    if (cell.scene.population > 0) sessions = true;
    if (cell.scene.stream != workload::stream_backend::exact) streamed = true;
    if (cell.scene.mix_failure.enabled() || cell.scene.retry.enabled())
      faults = true;
    if (cell.scene.routing.planned()) routed = true;
    if (!cell.error.empty()) errored = true;
  }
  os << "n,c,dist,mode,drop,rate,replicas,messages,adversary,topology,churn,"
        "delivered_fraction,delivered_stderr,"
        "latency_ms,latency_ms_stderr,hops,hops_stderr,"
        "entropy_bits,entropy_stderr,identified_fraction,identified_stderr,"
        "top1_accuracy,top1_stderr";
  if (routed) os << ",routing";
  if (faults)
    os << ",mix_failures,retry,retransmit_rate,retransmit_stderr";
  if (sessions) {
    os << ",population,rounds,attack";
    if (streamed) os << ",stream";
    os << ",attack_entropy_bits,"
          "attack_entropy_stderr,attack_identified,attack_identified_stderr,"
          "rounds_to_identify,rounds_to_identify_stderr";
  }
  if (errored) os << ",error";
  os << '\n';
  for (const campaign_cell& cell : result.cells) {
    const scenario& s = cell.scene;
    os << s.node_count << ',' << s.compromised_count << ",\""
       << s.lengths.label() << "\"," << mode_label(s.mode) << ',';
    put_number(os, s.drop_probability);
    os << ',';
    put_number(os, s.arrival_rate);
    os << ',' << cell.replicas << ',' << cell.submitted << ','
       << s.adversary.label() << ',' << s.topology.label() << ','
       << s.churn.label() << ',';
    put_summary(os, cell.delivered_fraction);
    os << ',';
    put_summary(os, cell.latency_seconds, 1000.0);
    os << ',';
    put_summary(os, cell.hops);
    os << ',';
    put_summary(os, cell.entropy_bits);
    os << ',';
    put_summary(os, cell.identified_fraction);
    os << ',';
    put_summary(os, cell.top1_accuracy);
    if (routed) os << ',' << s.routing.label();
    if (faults) {
      os << ','
         << (s.mix_failure.enabled() ? s.mix_failure.label() : "none") << ','
         << (s.retry.enabled() ? s.retry.label() : "none") << ',';
      put_summary(os, cell.retransmit_rate);
    }
    if (sessions) {
      os << ',' << s.population << ',' << s.rounds << ','
         << attack::attack_kind_label(s.attack);
      if (streamed) os << ',' << workload::stream_backend_label(s.stream);
      os << ',';
      put_summary(os, cell.attack_entropy_bits);
      os << ',';
      put_summary(os, cell.attack_identified);
      os << ',';
      put_summary(os, cell.rounds_to_identify);
    }
    if (errored) {
      os << ',';
      put_quoted(os, cell.error);
    }
    os << '\n';
  }
}

}  // namespace anonpath::sim
