#include "src/sim/receiver.hpp"

namespace anonpath::sim {

receiver_endpoint::receiver_endpoint(network& net,
                                     const crypto::key_registry& keys,
                                     adversary_model* monitor)
    : net_(net), keys_(keys), monitor_(monitor) {}

void receiver_endpoint::on_message(node_id from, wire_message msg) {
  delivery d;
  d.predecessor = from;
  d.at = net_.queue().now();
  d.payload = msg.kind == transport_kind::onion
                  ? crypto::open_at_receiver(msg.envelope, keys_, msg.id)
                  : msg.payload;
  if (monitor_ != nullptr) monitor_->note_receipt(msg.id, d.at, from);
  deliveries_.emplace(msg.id, std::move(d));
}

}  // namespace anonpath::sim
