#pragma once

#include <cstdint>
#include <vector>

#include "src/anonymity/types.hpp"
#include "src/crypto/onion.hpp"

namespace anonpath::sim {

/// How a message is being routed through the network.
enum class transport_kind {
  onion,   ///< source-routed; relays peel layers (Onion Routing / Freedom)
  crowds,  ///< hop-by-hop; relays flip the forwarding coin (Crowds / OR-II)
};

/// A message as it appears on one wire between two parties.
///
/// `id` is the correlation handle the paper's worst-case adversary is
/// assumed to possess (Sec. 4: compromised nodes can tell that two captures
/// are the same message). Honest parties never use it for routing.
struct wire_message {
  std::uint64_t id = 0;
  transport_kind kind = transport_kind::onion;

  /// Onion transport: the layered envelope for the next hop.
  crypto::onion_envelope envelope;

  /// Crowds transport: plaintext payload plus the coin parameter relays use.
  std::vector<std::byte> payload;
  double forward_prob = 0.0;
};

}  // namespace anonpath::sim
