#include "src/sim/latency.hpp"

#include "src/stats/contract.hpp"

namespace anonpath::sim {

latency_model::latency_model(latency_params params, stats::rng gen)
    : params_(params), gen_(gen) {
  ANONPATH_EXPECTS(params_.valid());
}

sim_time latency_model::link_delay() {
  return params_.base + params_.jitter * gen_.next_double();
}

}  // namespace anonpath::sim
