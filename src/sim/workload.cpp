#include "src/sim/workload.hpp"

#include <cmath>

#include "src/stats/contract.hpp"

namespace anonpath::sim {

std::vector<arrival> poisson_workload(std::uint32_t node_count, double rate,
                                      std::uint32_t count, stats::rng& gen) {
  ANONPATH_EXPECTS(rate > 0.0);
  ANONPATH_EXPECTS(count > 0);
  ANONPATH_EXPECTS(node_count >= 1);
  std::vector<arrival> out;
  out.reserve(count);
  sim_time t = 0.0;
  for (std::uint32_t i = 0; i < count; ++i) {
    // Exponential inter-arrival via inverse CDF; guard against log(0).
    const double u = std::max(gen.next_double(), 1e-300);
    t += -std::log(u) / rate;
    arrival a;
    a.at = t;
    a.sender = static_cast<node_id>(gen.next_below(node_count));
    a.msg_id = i + 1;  // ids start at 1; 0 reserved as "unset"
    out.push_back(a);
  }
  return out;
}

}  // namespace anonpath::sim
