#pragma once

#include "src/sim/event_queue.hpp"
#include "src/stats/rng.hpp"

namespace anonpath::sim {

/// Link-latency model for the clique transport: every hop costs a base
/// propagation delay plus uniform jitter, and every relay adds a processing
/// (store-and-forward / mix batching) delay. Times in seconds.
struct latency_params {
  double base = 0.020;        ///< per-link propagation floor
  double jitter = 0.010;      ///< uniform extra in [0, jitter)
  double processing = 0.005;  ///< per-relay handling cost

  [[nodiscard]] bool valid() const noexcept {
    return base >= 0.0 && jitter >= 0.0 && processing >= 0.0;
  }
};

/// Samples per-hop link delays.
class latency_model {
 public:
  /// Preconditions: params.valid().
  latency_model(latency_params params, stats::rng gen);

  /// One link traversal delay (base + jitter draw).
  [[nodiscard]] sim_time link_delay();

  /// Relay processing delay (deterministic).
  [[nodiscard]] sim_time processing_delay() const noexcept {
    return params_.processing;
  }

  [[nodiscard]] const latency_params& params() const noexcept { return params_; }

 private:
  latency_params params_;
  stats::rng gen_;
};

}  // namespace anonpath::sim
