#include "src/sim/adversary.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "src/crypto/correlation.hpp"
#include "src/stats/contract.hpp"
#include "src/stats/rng.hpp"

namespace anonpath::sim {

const char* adversary_kind_label(adversary_kind kind) noexcept {
  switch (kind) {
    case adversary_kind::full_coalition: return "full_coalition";
    case adversary_kind::partial_coverage: return "partial_coverage";
    case adversary_kind::timing_correlator: return "timing_correlator";
  }
  return "unknown";
}

std::string adversary_config::label() const {
  if (kind == adversary_kind::partial_coverage) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "partial(f=%g%s)", coverage_fraction,
                  receiver_compromised ? "" : ";honest_r");
    return buf;
  }
  return adversary_kind_label(kind);
}

// ---- base -------------------------------------------------------------------

adversary_model::adversary_model(std::vector<bool> compromised)
    : compromised_(std::move(compromised)) {
  ANONPATH_EXPECTS(!compromised_.empty());
}

std::vector<node_id> adversary_model::compromised_ids() const {
  std::vector<node_id> out;
  for (node_id i = 0; i < compromised_.size(); ++i)
    if (compromised_[i]) out.push_back(i);
  return out;
}

// ---- full coalition ---------------------------------------------------------

full_coalition_model::full_coalition_model(std::vector<bool> compromised)
    : adversary_model(std::move(compromised)) {}

void full_coalition_model::note_origin(std::uint64_t msg, node_id sender) {
  ANONPATH_EXPECTS(sender < compromised_.size() && compromised_[sender]);
  log_[msg].origin = sender;
}

void full_coalition_model::note_relay(std::uint64_t msg, sim_time at,
                                      node_id reporter, node_id predecessor,
                                      node_id successor) {
  ANONPATH_EXPECTS(reporter < compromised_.size() && compromised_[reporter]);
  log_[msg].captures.push_back(capture{at, {reporter, predecessor, successor}});
}

void full_coalition_model::note_receipt(std::uint64_t msg, sim_time /*at*/,
                                        node_id predecessor) {
  log_[msg].receiver_predecessor = predecessor;
}

bool full_coalition_model::complete(std::uint64_t msg) const {
  const auto it = log_.find(msg);
  return it != log_.end() && it->second.receiver_predecessor.has_value();
}

observation full_coalition_model::assemble(std::uint64_t msg) const {
  const auto it = log_.find(msg);
  if (it == log_.end() || !it->second.receiver_predecessor)
    throw std::out_of_range("adversary: message not (fully) observed");
  const auto& pm = it->second;

  observation obs;
  obs.origin = pm.origin;
  std::vector<capture> sorted = pm.captures;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const capture& a, const capture& b) { return a.at < b.at; });
  obs.reports.reserve(sorted.size());
  for (const auto& c : sorted) obs.reports.push_back(c.report);
  obs.receiver_predecessor = *pm.receiver_predecessor;
  return obs;
}

std::vector<std::uint64_t> full_coalition_model::observed_messages() const {
  std::vector<std::uint64_t> out;
  out.reserve(log_.size());
  for (const auto& [id, pm] : log_)
    if (pm.receiver_predecessor) out.push_back(id);
  return out;
}

// ---- partial coverage -------------------------------------------------------

partial_coverage_model::partial_coverage_model(std::vector<bool> compromised,
                                               bool receiver_compromised)
    : full_coalition_model(std::move(compromised)),
      receiver_compromised_(receiver_compromised) {}

void partial_coverage_model::note_receipt(std::uint64_t msg, sim_time at,
                                          node_id predecessor) {
  // An honest receiver leaks nothing; the hook still fires because the
  // endpoint cannot know which threat model it lives under.
  if (receiver_compromised_)
    full_coalition_model::note_receipt(msg, at, predecessor);
}

bool partial_coverage_model::complete(std::uint64_t msg) const {
  if (receiver_compromised_) return full_coalition_model::complete(msg);
  const auto it = log_.find(msg);
  return it != log_.end() &&
         (it->second.origin.has_value() || !it->second.captures.empty());
}

observation partial_coverage_model::assemble(std::uint64_t msg) const {
  if (receiver_compromised_) return full_coalition_model::assemble(msg);
  const auto it = log_.find(msg);
  if (it == log_.end() ||
      (!it->second.origin && it->second.captures.empty()))
    throw std::out_of_range("adversary: message not observed");
  const auto& pm = it->second;

  observation obs;
  obs.origin = pm.origin;
  std::vector<capture> sorted = pm.captures;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const capture& a, const capture& b) { return a.at < b.at; });
  obs.reports.reserve(sorted.size());
  for (const auto& c : sorted) obs.reports.push_back(c.report);
  obs.receiver_observed = false;
  return obs;
}

std::vector<std::uint64_t> partial_coverage_model::observed_messages() const {
  if (receiver_compromised_) return full_coalition_model::observed_messages();
  std::vector<std::uint64_t> out;
  out.reserve(log_.size());
  for (const auto& [id, pm] : log_)
    if (pm.origin || !pm.captures.empty()) out.push_back(id);
  return out;
}

// ---- timing correlator ------------------------------------------------------

timing_correlator_model::timing_correlator_model(std::vector<bool> compromised,
                                                 latency_params link)
    : adversary_model(std::move(compromised)), link_(link) {
  ANONPATH_EXPECTS(link_.valid());
}

void timing_correlator_model::note_origin(std::uint64_t /*msg*/,
                                          node_id /*sender*/) {
  // An origination event cannot be tied to any delivery without the
  // correlation handle; the correlator discards it.
}

void timing_correlator_model::note_relay(std::uint64_t /*msg*/, sim_time at,
                                         node_id reporter, node_id predecessor,
                                         node_id successor) {
  ANONPATH_EXPECTS(reporter < compromised_.size() && compromised_[reporter]);
  ANONPATH_EXPECTS(!linked_);  // collection must precede analysis
  captures_.push_back(capture{at, reporter, predecessor, successor});
}

void timing_correlator_model::note_receipt(std::uint64_t msg, sim_time at,
                                           node_id predecessor) {
  ANONPATH_EXPECTS(!linked_);
  receipts_.push_back(receipt{at, predecessor, msg});
}

void timing_correlator_model::link() const {
  if (linked_) return;
  linked_ = true;

  // One forwarding step = relay processing + one link traversal.
  const double lo = link_.processing + link_.base;
  const double hi = lo + link_.jitter;

  std::vector<bool> used(captures_.size(), false);

  // Deliveries in time order (receipt order IS time order — the event queue
  // is causal — but sort defensively with the id as a deterministic tie
  // break so replayed logs behave identically).
  std::vector<std::size_t> order(receipts_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     if (receipts_[a].at != receipts_[b].at)
                       return receipts_[a].at < receipts_[b].at;
                     return receipts_[a].msg < receipts_[b].msg;
                   });

  std::vector<bool> in_chain(compromised_.size(), false);
  for (const std::size_t ri : order) {
    const receipt& r = receipts_[ri];
    std::vector<std::size_t> chain;  // backwards: delivery-adjacent first

    // Seed: the capture whose reporter handed the message to R.
    std::fill(in_chain.begin(), in_chain.end(), false);
    node_id want_reporter = r.predecessor;
    node_id want_successor = receiver_node;
    sim_time later_at = r.at;
    for (;;) {
      double best_score = 0.0;
      std::size_t best = captures_.size();
      for (std::size_t ci = 0; ci < captures_.size(); ++ci) {
        if (used[ci]) continue;
        const capture& c = captures_[ci];
        if (c.reporter != want_reporter || c.successor != want_successor)
          continue;
        // A chain mixing messages could revisit a node; no simple path
        // does, so the correlator refuses such a link outright.
        if (in_chain[c.reporter] ||
            (c.predecessor < in_chain.size() && in_chain[c.predecessor]))
          continue;
        const double score =
            crypto::timing_correlation(c.at, later_at, lo, hi);
        if (score > best_score) {
          best_score = score;
          best = ci;
        }
      }
      if (best == captures_.size()) break;
      used[best] = true;
      chain.push_back(best);
      const capture& c = captures_[best];
      in_chain[c.reporter] = true;
      want_reporter = c.predecessor;
      want_successor = c.reporter;
      later_at = c.at;
      if (want_reporter >= compromised_.size() ||
          !compromised_[want_reporter])
        break;  // the next hop back is honest: nothing more to link
    }

    observation obs;
    obs.gapped = true;
    obs.receiver_predecessor = r.predecessor;
    obs.reports.reserve(chain.size());
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      const capture& c = captures_[*it];
      obs.reports.push_back(hop_report{c.reporter, c.predecessor, c.successor});
    }
    assembled_.emplace(r.msg, std::move(obs));
  }
}

bool timing_correlator_model::complete(std::uint64_t msg) const {
  link();
  return assembled_.count(msg) != 0;
}

observation timing_correlator_model::assemble(std::uint64_t msg) const {
  link();
  const auto it = assembled_.find(msg);
  if (it == assembled_.end())
    throw std::out_of_range("adversary: delivery not observed");
  return it->second;
}

std::vector<std::uint64_t> timing_correlator_model::observed_messages() const {
  link();
  std::vector<std::uint64_t> out;
  out.reserve(assembled_.size());
  for (const auto& [id, obs] : assembled_) out.push_back(id);
  return out;
}

// ---- configuration plumbing -------------------------------------------------

std::vector<bool> effective_compromised(const adversary_config& config,
                                        std::uint32_t node_count,
                                        const std::vector<node_id>& configured,
                                        std::uint64_t seed) {
  ANONPATH_EXPECTS(config.valid());
  ANONPATH_EXPECTS(node_count >= 1);
  std::vector<bool> flags(node_count, false);
  if (config.kind == adversary_kind::partial_coverage) {
    // A dedicated stream keyed off the seed: the draw is reproducible and
    // consumes nothing from the simulator's own generator chain.
    stats::rng gen = stats::rng::stream(seed, 0xadbe5a11u);
    for (node_id i = 0; i < node_count; ++i)
      flags[i] = gen.next_bernoulli(config.coverage_fraction);
    return flags;
  }
  for (node_id c : configured) {
    ANONPATH_EXPECTS(c < node_count);
    flags[c] = true;
  }
  return flags;
}

std::unique_ptr<adversary_model> make_adversary_model(
    const adversary_config& config, std::vector<bool> compromised,
    const latency_params& link) {
  ANONPATH_EXPECTS(config.valid());
  switch (config.kind) {
    case adversary_kind::full_coalition:
      return std::make_unique<full_coalition_model>(std::move(compromised));
    case adversary_kind::partial_coverage:
      return std::make_unique<partial_coverage_model>(
          std::move(compromised), config.receiver_compromised);
    case adversary_kind::timing_correlator:
      return std::make_unique<timing_correlator_model>(std::move(compromised),
                                                       link);
  }
  throw std::invalid_argument("unknown adversary kind");
}

}  // namespace anonpath::sim
