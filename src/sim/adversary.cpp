#include "src/sim/adversary.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/stats/contract.hpp"

namespace anonpath::sim {

adversary_monitor::adversary_monitor(std::vector<bool> compromised)
    : compromised_(std::move(compromised)) {
  ANONPATH_EXPECTS(!compromised_.empty());
}

void adversary_monitor::note_origin(std::uint64_t msg, node_id sender) {
  ANONPATH_EXPECTS(sender < compromised_.size() && compromised_[sender]);
  log_[msg].origin = sender;
}

void adversary_monitor::note_relay(std::uint64_t msg, sim_time at,
                                   node_id reporter, node_id predecessor,
                                   node_id successor) {
  ANONPATH_EXPECTS(reporter < compromised_.size() && compromised_[reporter]);
  log_[msg].captures.push_back(capture{at, {reporter, predecessor, successor}});
}

void adversary_monitor::note_receipt(std::uint64_t msg, sim_time /*at*/,
                                     node_id predecessor) {
  log_[msg].receiver_predecessor = predecessor;
}

bool adversary_monitor::complete(std::uint64_t msg) const {
  const auto it = log_.find(msg);
  return it != log_.end() && it->second.receiver_predecessor.has_value();
}

observation adversary_monitor::assemble(std::uint64_t msg) const {
  const auto it = log_.find(msg);
  if (it == log_.end() || !it->second.receiver_predecessor)
    throw std::out_of_range("adversary: message not (fully) observed");
  const auto& pm = it->second;

  observation obs;
  obs.origin = pm.origin;
  std::vector<capture> sorted = pm.captures;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const capture& a, const capture& b) { return a.at < b.at; });
  obs.reports.reserve(sorted.size());
  for (const auto& c : sorted) obs.reports.push_back(c.report);
  obs.receiver_predecessor = *pm.receiver_predecessor;
  return obs;
}

std::vector<std::uint64_t> adversary_monitor::delivered_messages() const {
  std::vector<std::uint64_t> out;
  out.reserve(log_.size());
  for (const auto& [id, pm] : log_)
    if (pm.receiver_predecessor) out.push_back(id);
  return out;
}

}  // namespace anonpath::sim
