#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "src/anonymity/types.hpp"
#include "src/sim/event_queue.hpp"
#include "src/sim/latency.hpp"
#include "src/sim/message.hpp"

namespace anonpath::sim {

/// Interface of anything that can accept a message from the wire.
class message_sink {
 public:
  virtual ~message_sink() = default;
  /// `from` is the transport-level immediate sender (what a real node's
  /// network stack would see). Exactly the paper's observability model.
  virtual void on_message(node_id from, wire_message msg) = 0;
};

/// Ground-truth record of one message's journey, kept by the network fabric
/// (the "physics" of the simulation — never visible to the adversary).
struct message_trace {
  node_id origin = 0;
  std::vector<node_id> visited;   ///< nodes traversed after the origin
  sim_time sent_at = 0.0;
  sim_time delivered_at = 0.0;
  bool delivered = false;
};

/// The clique transport of paper Sec. 3.1: every host can reach every other
/// host directly; a hop costs a sampled link latency. Supports lossy links
/// (failure injection): each transmission is dropped independently with
/// `drop_probability`, in which case the message journey simply ends —
/// exactly how a best-effort datagram network fails. Also the keeper of
/// ground-truth traces for validation.
class network {
 public:
  /// Preconditions: node_count >= 2, params.valid(),
  /// 0 <= drop_probability < 1.
  network(std::uint32_t node_count, latency_params params, std::uint64_t seed,
          double drop_probability = 0.0);

  /// Registers the sink for a relay node (exactly once per id).
  void register_node(node_id id, message_sink& sink);

  /// Registers the receiver endpoint R.
  void register_receiver(message_sink& sink);

  /// Starts a message journey at `origin` (records the trace start).
  void originate(node_id origin, sim_time at, std::uint64_t msg_id);

  /// Transmits `msg` from `from` to `to` (`receiver_node` for R) after a
  /// sampled link delay. Preconditions: parties registered.
  void send(node_id from, node_id to, wire_message msg);

  [[nodiscard]] event_queue& queue() noexcept { return queue_; }
  [[nodiscard]] std::uint32_t node_count() const noexcept { return node_count_; }

  /// Ground truth for tests/metrics.
  [[nodiscard]] const std::map<std::uint64_t, message_trace>& traces() const noexcept {
    return traces_;
  }

  /// Transmissions lost to failure injection so far.
  [[nodiscard]] std::uint64_t dropped_count() const noexcept { return dropped_; }

 private:
  std::uint32_t node_count_;
  event_queue queue_;
  latency_model latency_;
  double drop_probability_;
  stats::rng drop_rng_;
  std::uint64_t dropped_ = 0;
  std::vector<message_sink*> sinks_;
  message_sink* receiver_sink_ = nullptr;
  std::map<std::uint64_t, message_trace> traces_;
};

}  // namespace anonpath::sim
