#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "src/anonymity/types.hpp"
#include "src/net/churn.hpp"
#include "src/net/outage.hpp"
#include "src/net/topology.hpp"
#include "src/sim/event_queue.hpp"
#include "src/sim/fault_plan.hpp"
#include "src/sim/latency.hpp"
#include "src/sim/message.hpp"

namespace anonpath::sim {

/// Interface of anything that can accept a message from the wire.
class message_sink {
 public:
  virtual ~message_sink() = default;
  /// `from` is the transport-level immediate sender (what a real node's
  /// network stack would see). Exactly the paper's observability model.
  virtual void on_message(node_id from, wire_message msg) = 0;
};

/// Ground-truth record of one message's journey, kept by the network fabric
/// (the "physics" of the simulation — never visible to the adversary).
struct message_trace {
  node_id origin = 0;
  std::vector<node_id> visited;   ///< nodes traversed after the origin
  sim_time sent_at = 0.0;
  sim_time delivered_at = 0.0;
  bool delivered = false;
};

/// The transport fabric. By default the clique of paper Sec. 3.1: every
/// host can reach every other host directly; a hop costs a sampled link
/// latency. A non-null `topology` restricts the wire to that graph — the
/// fabric then *asserts* every transmission follows an edge, so a routing
/// layer that ignores the graph fails fast instead of silently teleporting.
/// Implements the full sim::fault_plan (failure injection): each
/// transmission is dropped independently with the plan's drop probability,
/// in which case the message journey simply ends — exactly how a
/// best-effort datagram network fails. The plan's churn model additionally
/// takes relays down and up mid-run (net::churn_model), and its crash
/// schedule (explicit outages plus seeded mix-failure episodes) takes
/// specific nodes down on a deterministic timetable; a transmission whose
/// destination is down at send time strands there, and the receiver R
/// never fails. Also the keeper of ground-truth traces for validation.
class network {
 public:
  /// Preconditions: node_count >= 2, params.valid(),
  /// faults.valid_for(node_count); `topology`, when non-null, must outlive
  /// the network and have node_count() == node_count; `fault_horizon` > 0
  /// when the plan draws auto-horizon mix failures. A default (inert)
  /// fault plan draws nothing from any generator, so fault-free runs stay
  /// bit-identical to the pre-fault fabric.
  network(std::uint32_t node_count, latency_params params, std::uint64_t seed,
          const fault_plan& faults = {},
          const net::topology* topology = nullptr,
          double fault_horizon = 0.0);

  /// Registers the sink for a relay node (exactly once per id).
  void register_node(node_id id, message_sink& sink);

  /// Registers the receiver endpoint R.
  void register_receiver(message_sink& sink);

  /// Starts a message journey at `origin` (records the trace start).
  void originate(node_id origin, sim_time at, std::uint64_t msg_id);

  /// Transmits `msg` from `from` to `to` (`receiver_node` for R) after a
  /// sampled link delay. Preconditions (each asserted, a violation throws
  /// contract_violation): `from` is a registered node id, `to` is a
  /// registered node id or `receiver_node` with the receiver registered,
  /// and — when the fabric carries a topology — (from, to) is a graph
  /// edge. Unregistered endpoints are a programming error, never a silent
  /// no-op or a crash on a null sink.
  void send(node_id from, node_id to, wire_message msg);

  [[nodiscard]] event_queue& queue() noexcept { return queue_; }
  [[nodiscard]] std::uint32_t node_count() const noexcept { return node_count_; }

  /// Ground truth for tests/metrics.
  [[nodiscard]] const std::map<std::uint64_t, message_trace>& traces() const noexcept {
    return traces_;
  }

  /// Transmissions lost to failure injection so far.
  [[nodiscard]] std::uint64_t dropped_count() const noexcept { return dropped_; }

  /// Transmissions that stranded at a churned-down destination so far.
  [[nodiscard]] std::uint64_t stranded_count() const noexcept {
    return stranded_;
  }

  /// Transmissions that stranded at a crash-scheduled (outage/mix-failure)
  /// destination so far.
  [[nodiscard]] std::uint64_t crashed_count() const noexcept {
    return crashed_;
  }

  /// The availability model (for diagnostics; disabled by default).
  [[nodiscard]] const net::churn_model& churn() const noexcept { return churn_; }

  /// The realized crash/repair timetable (for diagnostics and tests).
  [[nodiscard]] const net::outage_schedule& outages() const noexcept {
    return outages_;
  }

 private:
  std::uint32_t node_count_;
  event_queue queue_;
  latency_model latency_;
  double drop_probability_;
  stats::rng drop_rng_;
  const net::topology* topology_;
  net::churn_model churn_;
  net::outage_schedule outages_;
  std::uint64_t dropped_ = 0;
  std::uint64_t stranded_ = 0;
  std::uint64_t crashed_ = 0;
  std::vector<message_sink*> sinks_;
  message_sink* receiver_sink_ = nullptr;
  std::map<std::uint64_t, message_trace> traces_;
};

}  // namespace anonpath::sim
