#pragma once

#include <vector>

#include "src/crypto/onion.hpp"
#include "src/sim/adversary.hpp"
#include "src/sim/network.hpp"
#include "src/stats/rng.hpp"

namespace anonpath::sim {

/// A Chaum mix (paper Sec. 2): "a store-and-forward device that accepts a
/// number of fixed-length messages from different sources, performs a
/// cryptographic transformation, and outputs them in an order not
/// predictable from the order of inputs."
///
/// Mechanically an onion relay that *batches*: incoming messages are held
/// until `batch_size` have accumulated or `flush_interval` elapses since the
/// first held message, then forwarded in a random permutation. Batching
/// decorrelates input/output *timing*; note the paper's worst-case adversary
/// is granted message correlation regardless (Sec. 4), so batching here
/// affects latency, not the posterior — which the tests assert explicitly.
class mix_relay final : public message_sink {
 public:
  /// Preconditions: batch_size >= 1, flush_interval >= 0.
  mix_relay(node_id self, network& net, const crypto::key_registry& keys,
            std::uint32_t batch_size, sim_time flush_interval,
            bool compromised, adversary_monitor* monitor, stats::rng gen);

  void on_message(node_id from, wire_message msg) override;

  [[nodiscard]] node_id id() const noexcept { return self_; }
  [[nodiscard]] std::size_t held() const noexcept { return pool_.size(); }
  [[nodiscard]] std::uint64_t flushed_batches() const noexcept {
    return batches_;
  }

 private:
  struct pending {
    node_id next;
    wire_message msg;
  };

  void flush();

  node_id self_;
  network& net_;
  const crypto::key_registry& keys_;
  std::uint32_t batch_size_;
  sim_time flush_interval_;
  bool compromised_;
  adversary_monitor* monitor_;
  stats::rng gen_;
  std::vector<pending> pool_;
  std::uint64_t timer_epoch_ = 0;  ///< invalidates stale flush timers
  std::uint64_t batches_ = 0;
};

}  // namespace anonpath::sim
