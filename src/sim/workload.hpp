#pragma once

#include <cstdint>
#include <vector>

#include "src/anonymity/types.hpp"
#include "src/sim/event_queue.hpp"
#include "src/stats/rng.hpp"

namespace anonpath::sim {

/// One planned message submission.
struct arrival {
  sim_time at = 0.0;
  node_id sender = 0;
  std::uint64_t msg_id = 0;
};

/// Poisson-process traffic: exponential inter-arrival times at `rate`
/// messages/second, senders uniform over the N nodes (the paper's uniform
/// sender prior made operational).
///
/// Preconditions: rate > 0, count > 0, node_count >= 1.
[[nodiscard]] std::vector<arrival> poisson_workload(std::uint32_t node_count,
                                                    double rate,
                                                    std::uint32_t count,
                                                    stats::rng& gen);

}  // namespace anonpath::sim
