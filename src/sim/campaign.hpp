#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/anonymity/length_distribution.hpp"
#include "src/anonymity/strategy.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/progress.hpp"
#include "src/sim/simulator.hpp"
#include "src/stats/summary.hpp"

namespace anonpath::sim {

/// A declarative scenario grid for the discrete-event simulator: the
/// cartesian product of every axis below, each cell run `replicas` times
/// with independent seeds. This is the fan-out layer the parameter-space
/// sweeps (latency frontiers, degradation studies, future churn/dynamic
/// compromise scenarios) plug into instead of hand-rolled loops over
/// `run_simulation`.
///
/// Axes with several values multiply; axes left at their one-element
/// defaults stay fixed. Infeasible combinations (C >= N, or a length
/// distribution whose support cannot fit a simple path in an N-node
/// system) are skipped during expansion, deterministically — the same
/// grid always yields the same cell list in the same order.
struct campaign_grid {
  std::vector<std::uint32_t> node_counts{100};        ///< N axis
  std::vector<std::uint32_t> compromised_counts{1};   ///< C axis (spread_compromised placement)
  std::vector<path_length_distribution> lengths{
      path_length_distribution::fixed(3)};            ///< strategy axis
  std::vector<routing_mode> modes{routing_mode::source_routed};
  std::vector<double> drop_probabilities{0.0};        ///< per-link loss axis
  std::vector<double> arrival_rates{50.0};            ///< Poisson msgs/s axis
  std::vector<adversary_config> adversaries{
      adversary_config{}};                            ///< threat-model axis
  std::vector<net::topology_config> topologies{
      net::topology_config{}};                        ///< graph axis
  /// Route-selection axis (net::routing_config): the default (walk) keeps
  /// every historical cell byte-identical; kpaths cells route over planned
  /// Dijkstra/Yen paths and require source_routed mode with a non-timing
  /// adversary (infeasible combinations are skipped like any other).
  std::vector<net::routing_config> routings{net::routing_config{}};
  std::vector<net::churn_config> churns{
      net::churn_config{}};                           ///< availability axis
  /// Fault axes (src/sim/fault_plan.hpp). `mix_failures` sweeps seeded
  /// crash/repair episode schedules; `retries` sweeps the sender-side
  /// retransmission policy — the reliability-vs-anonymity knob. Defaults
  /// (disabled) keep both off and the cell order/CSV bytes unchanged.
  std::vector<mix_failure_config> mix_failures{mix_failure_config{}};
  std::vector<retry_policy> retries{retry_policy{}};
  /// Longitudinal session axes (src/sim/session.hpp). `populations` is the
  /// pseudonymous receiver population, `session_rounds` the mix-round
  /// count, `attacks` the disclosure engine. The defaults (0 / 0 / none)
  /// keep sessions off; a cell is feasible only when population and rounds
  /// are both zero or both set (and any non-none attack has rounds).
  std::vector<std::uint32_t> populations{0};
  std::vector<std::uint32_t> session_rounds{0};
  std::vector<attack::attack_kind> attacks{attack::attack_kind::none};
  /// Engine state backend for session attacks (src/workload/streaming.hpp):
  /// exact counts or sublinear-memory sketches. Non-exact backends are
  /// feasible only for sda cells; the default keeps every historical cell
  /// and CSV byte identical.
  std::vector<workload::stream_backend> streams{
      workload::stream_backend::exact};

  // Shared (non-swept) per-run settings.
  std::uint32_t message_count = 1000;
  double forward_prob = 0.75;                         ///< crowds-mode coin
  latency_params latency{};
  double identified_threshold = 0.99;                 ///< sim_report scoring
  /// Background destination law for session cells (target pair excluded).
  workload::popularity_law session_receiver_law{};
  /// Explicit crash/repair intervals applied to EVERY cell (not swept).
  /// Nodes are not bounds-checked against the N axis here: a plan naming a
  /// node outside some cell's [0, N) fails that cell at run time and is
  /// reported through its error column, leaving the rest of the campaign
  /// intact.
  std::vector<net::outage> fault_outages{};

  /// Cells in the full cartesian product, before feasibility filtering.
  [[nodiscard]] std::uint64_t cell_count() const noexcept {
    return static_cast<std::uint64_t>(node_counts.size()) *
           compromised_counts.size() * lengths.size() * modes.size() *
           drop_probabilities.size() * arrival_rates.size() *
           adversaries.size() * topologies.size() * routings.size() *
           churns.size() *
           mix_failures.size() * retries.size() * populations.size() *
           session_rounds.size() * attacks.size() * streams.size();
  }
};

/// Execution knobs for a campaign.
///
/// Determinism contract (mirrors mc_config): for a fixed (grid, replicas,
/// master_seed) the aggregated result — every cell summary, bit for bit,
/// and the CSV rendering byte for byte — is identical for EVERY value of
/// `threads`. Each (cell, replica) run derives its simulator seed from
/// `stats::rng::stream(master_seed, run_index)` where run_index depends
/// only on the grid order, runs into its own report slot, and slots are
/// reduced in run order on the calling thread.
struct campaign_config {
  std::uint32_t replicas = 8;     ///< independent runs per cell (>= 1)
  std::uint64_t master_seed = 1;
  unsigned threads = 1;           ///< worker threads; 0 = hardware concurrency
  /// Run every (cell, replica) through the trace pipeline —
  /// replay_trace(capture_trace(cfg)) — instead of inline run_simulation.
  /// Identical results by the trace subsystem's contract; exercised by the
  /// conformance tests and useful when the captured traces are also wanted.
  bool via_trace = false;
  /// When non-empty, run_campaign journals every completed cell to this
  /// file (src/sim/checkpoint.hpp format) as the campaign progresses:
  /// header first, then one record per cell, flushed in cell order, so a
  /// killed process loses at most the cells still in flight.
  std::string checkpoint_path{};
  /// With `checkpoint_path` set: load the checkpoint's completed-cell
  /// prefix (scope-verified against this exact grid/config) and run only
  /// the remaining cells. The final result — and its CSV — is bit-identical
  /// to an uninterrupted run at any thread count, because per-run seeds
  /// derive from absolute run indices. A missing or empty checkpoint file
  /// degrades to a fresh start; a corrupt one throws anonpath::parse_error.
  bool resume = false;
  /// Distributed split: run only the cells whose absolute grid index is
  /// congruent to shard_index mod shard_count (the CLI's `--shard i/n`).
  /// Every shard derives its seeds from ABSOLUTE run indices and journals
  /// absolute cell indices under a `shard i n` header line, so the shards'
  /// checkpoints — produced on any mix of machines and thread counts —
  /// merge_campaign() back into output bit-identical to an unsharded run.
  /// Shard identity is deliberately NOT part of campaign_scope: all shards
  /// of one campaign share a scope, which is how the merge validates they
  /// belong together. Defaults (0 of 1) are the unsharded run, journal
  /// bytes unchanged. Sharded runs require a checkpoint_path (the journal
  /// IS the shard's output hand-off).
  std::uint32_t shard_index = 0;
  std::uint32_t shard_count = 1;
  /// Optional observability hooks (src/obs): non-owning, default off, and
  /// deliberately NOT part of campaign_scope — telemetry never changes
  /// what a campaign computes, its rng streams, or which checkpoints
  /// match. With `metrics` set, every completed run records its
  /// deterministic sim_report counters into the registry (thread-sharded
  /// by worker id; run_campaign sizes the shards before fanning out) plus
  /// wall-clock run/cell duration histograms (campaign.run_us,
  /// campaign.cell_us) and a campaign.cells_completed counter. With
  /// `progress` set, cell flushes drive its stderr heartbeat (one line at
  /// start, rate-limited updates, a guaranteed final line) counted over
  /// this shard's local cells — a resumed campaign's restored prefix shows
  /// as already complete, while metrics cover only the cells actually
  /// executed.
  obs::metrics_registry* metrics = nullptr;
  obs::progress_meter* progress = nullptr;
};

/// The coordinates of one feasible grid cell. Default-constructed scenarios
/// are placeholders (checkpoint records restore metric state first and are
/// rebound to their grid cell afterwards), not runnable configurations.
struct scenario {
  std::uint32_t node_count = 0;
  std::uint32_t compromised_count = 0;
  path_length_distribution lengths = path_length_distribution::fixed(0);
  routing_mode mode = routing_mode::source_routed;
  double drop_probability = 0.0;
  double arrival_rate = 0.0;
  adversary_config adversary{};
  net::topology_config topology{};
  net::routing_config routing{};
  net::churn_config churn{};
  mix_failure_config mix_failure{};
  retry_policy retry{};
  std::uint32_t population = 0;     ///< session receiver population (0 = off)
  std::uint32_t rounds = 0;         ///< session mix rounds (0 = off)
  attack::attack_kind attack = attack::attack_kind::none;
  workload::stream_backend stream = workload::stream_backend::exact;
};

/// Cross-replica aggregates of one cell. Each replica contributes one
/// scalar per metric (its run-level mean), so `mean()` is the
/// across-replica mean and `std_error()`/`ci_half_width()` quantify
/// replica-to-replica spread. The three inference metrics stay empty
/// (count() == 0) for hop-by-hop cells, where the exact posterior engine
/// does not apply.
struct campaign_cell {
  scenario scene;
  std::uint32_t replicas = 0;
  std::uint64_t submitted = 0;                  ///< total over replicas
  std::uint64_t delivered = 0;                  ///< total over replicas
  stats::running_summary delivered_fraction;    ///< per-replica delivered/submitted
  stats::running_summary latency_seconds;       ///< per-replica mean end-to-end latency
  stats::running_summary hops;                  ///< per-replica mean realized hops
  stats::running_summary entropy_bits;          ///< per-replica empirical H*
  stats::running_summary identified_fraction;
  stats::running_summary top1_accuracy;
  /// Longitudinal metrics; empty (count() == 0) for session-less cells.
  stats::running_summary attack_entropy_bits;   ///< final posterior entropy
  stats::running_summary attack_identified;     ///< 0/1 per replica
  /// First identifying round, over the replicas that identified at all.
  stats::running_summary rounds_to_identify;
  /// Retransmissions per submitted message; empty for retry-less cells.
  stats::running_summary retransmit_rate;
  /// Empty for healthy cells. A replica that throws (e.g. a fault plan
  /// naming a node outside this cell's N) contributes nothing to the
  /// summaries; the first failing replica's message lands here and the
  /// campaign carries on — one bad cell never kills the process.
  std::string error;
};

/// A completed campaign: one aggregated cell per feasible grid point, in
/// deterministic grid order (node_counts outermost, then compromised
/// counts, lengths, modes, drop probabilities, arrival rates, adversaries,
/// topologies, routings, churns, mix failures, retries, populations,
/// session rounds, attacks, stream backends innermost).
struct campaign_result {
  std::vector<campaign_cell> cells;
  std::uint64_t requested_cells = 0;   ///< full cartesian product size
  std::uint64_t skipped_cells = 0;     ///< infeasible combinations dropped
  std::uint64_t runs = 0;              ///< feasible cells * replicas
};

/// Expands the grid into its feasible scenarios, in the deterministic
/// order documented on campaign_result. Exposed separately so tests and
/// callers can enumerate cells without running anything.
[[nodiscard]] std::vector<scenario> expand_grid(const campaign_grid& grid);

/// The sim_config a scenario runs under (shared settings from the grid,
/// compromised set via spread_compromised, the given seed).
[[nodiscard]] sim_config scenario_config(const scenario& s,
                                         const campaign_grid& grid,
                                         std::uint64_t seed);

/// Runs the whole campaign — or, with shard_count > 1, this config's
/// shard of it: expands the grid, fans every (cell, replica) run out over
/// a stats::thread_pool, and reduces the reports into per-cell summaries
/// in run order. See campaign_config for the thread-count invariance
/// guarantee and the checkpoint/resume/shard behaviour; per-replica
/// failures are isolated into campaign_cell::error. A sharded result
/// holds only the shard's cells (in absolute grid order); its
/// requested/skipped counts stay grid-global while `runs` counts what the
/// shard executed. Every journal write is verified: a failed write or
/// flush (disk full, I/O error) throws anonpath::parse_error{io} instead
/// of silently dropping cells. Preconditions: replicas >= 1, at least one
/// feasible cell, shard_index < shard_count, resume only with a
/// checkpoint path, and shard_count > 1 only with a checkpoint path.
[[nodiscard]] campaign_result run_campaign(const campaign_grid& grid,
                                           const campaign_config& config);

/// Renders a campaign as one CSV table (header + one row per cell).
/// Inference columns are "nan" for hop-by-hop cells; the strategy label is
/// double-quoted because it may contain commas. The rendering is
/// deterministic: byte-identical output for byte-identical results, which
/// is how the determinism tests and the CI smoke check compare runs. The
/// session columns (population, rounds, attack and their metrics) appear
/// only when some cell enables a session, so session-less campaigns render
/// byte-identically to their pre-session output. Likewise the fault columns
/// (mix_failures, retry, retransmit_rate) appear only when some cell sweeps
/// them, the `routing` column only when some cell plans routes, and the
/// trailing quoted `error` column only when some cell failed.
void write_csv(const campaign_result& result, std::ostream& os);

}  // namespace anonpath::sim
