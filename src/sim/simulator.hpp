#pragma once

#include <cstdint>
#include <vector>

#include "src/anonymity/length_distribution.hpp"
#include "src/anonymity/strategy.hpp"
#include "src/anonymity/types.hpp"
#include "src/sim/latency.hpp"
#include "src/stats/summary.hpp"

namespace anonpath::sim {

/// Everything needed to run one end-to-end experiment on the simulated
/// rerouting network.
struct sim_config {
  system_params sys{100, 1};
  std::vector<node_id> compromised{0};
  path_length_distribution lengths = path_length_distribution::fixed(3);
  routing_mode mode = routing_mode::source_routed;
  double forward_prob = 0.75;     ///< hop-by-hop coin (crowds mode only)
  std::uint32_t message_count = 1000;
  double arrival_rate = 50.0;     ///< messages per second (Poisson)
  latency_params latency{};
  double drop_probability = 0.0;  ///< per-link loss (failure injection)
  std::uint64_t seed = 1;
  /// Keep every delivered message's exact sender posterior in the report
  /// (source-routed runs only). Off by default — the vectors are N doubles
  /// per message; the property tests and post-hoc analyses turn it on.
  bool collect_posteriors = false;
};

/// Results of a simulation run.
struct sim_report {
  std::uint64_t submitted = 0;
  std::uint64_t delivered = 0;
  stats::running_summary end_to_end_latency;  ///< seconds
  stats::running_summary realized_hops;       ///< intermediate nodes traversed

  /// Mean posterior entropy of the adversary across delivered messages —
  /// the empirical counterpart of H*(S). Only computed for source-routed
  /// (simple-path) runs, where the exact inference engine applies; NaN for
  /// hop-by-hop runs and for runs where no message was ever delivered
  /// (the adversary observed nothing, so the metric is absent, not zero —
  /// likewise the identified/top1 fractions below).
  double empirical_entropy_bits = 0.0;
  /// Standard error of that mean.
  double empirical_entropy_stderr = 0.0;
  /// Fraction of messages whose posterior puts > 99% on one node.
  double identified_fraction = 0.0;
  /// Fraction where the top-posterior node is the true sender (among
  /// identified messages this should be ~1; overall it measures leakage).
  double top1_accuracy = 0.0;
  /// One exact posterior (size N) per scored delivered message, in scoring
  /// order. Only filled when sim_config::collect_posteriors is set on a
  /// source-routed run; empty otherwise.
  std::vector<std::vector<double>> posteriors;
};

/// Builds the network, relays, receiver, adversary and workload from the
/// config, runs to completion, and post-processes the adversary's log with
/// the exact posterior engine. Deterministic under the seed.
[[nodiscard]] sim_report run_simulation(const sim_config& config);

}  // namespace anonpath::sim
