#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "src/anonymity/length_distribution.hpp"
#include "src/anonymity/strategy.hpp"
#include "src/anonymity/types.hpp"
#include "src/net/route_plan.hpp"
#include "src/net/topology.hpp"
#include "src/obs/span.hpp"
#include "src/sim/adversary.hpp"
#include "src/sim/fault_plan.hpp"
#include "src/sim/latency.hpp"
#include "src/sim/session.hpp"
#include "src/stats/summary.hpp"

namespace anonpath::sim {

/// Everything needed to run one end-to-end experiment on the simulated
/// rerouting network.
struct sim_config {
  system_params sys{100, 1};
  std::vector<node_id> compromised{0};
  path_length_distribution lengths = path_length_distribution::fixed(3);
  routing_mode mode = routing_mode::source_routed;
  double forward_prob = 0.75;     ///< hop-by-hop coin (crowds mode only)
  std::uint32_t message_count = 1000;
  double arrival_rate = 50.0;     ///< messages per second (Poisson)
  latency_params latency{};
  std::uint64_t seed = 1;
  /// The threat model this run faces. The default (full coalition over the
  /// `compromised` list, receiver compromised) is the paper's Sec. 4
  /// adversary and reproduces pre-refactor behavior bit for bit. For
  /// partial_coverage the `compromised` list is superseded by a seeded
  /// Bernoulli(coverage_fraction) draw — see effective_compromised().
  adversary_config adversary{};
  /// A message counts as "identified" when its posterior puts strictly more
  /// than this mass on one node (paper-style 0.99 by default).
  double identified_threshold = 0.99;
  /// Keep every delivered message's exact sender posterior in the report
  /// (source-routed runs only). Off by default — the vectors are N doubles
  /// per message; the property tests and post-hoc analyses turn it on.
  bool collect_posteriors = false;
  /// The rerouting graph the run lives on. The default (`complete`) is the
  /// paper's clique and reproduces pre-topology behavior bit for bit: the
  /// historical simple-path sampler, engines, and rng draw sequences are
  /// used unchanged. Any other kind routes messages as weighted walks on
  /// the graph and scores observations with the restricted-path
  /// topology_posterior_engine. Restricted graphs do not support the
  /// timing_correlator adversary (its gapped observations have no exact
  /// graph likelihood yet); run_core rejects that combination.
  net::topology_config topology{};
  /// The run's unified fault model (sim::fault_plan): per-link loss,
  /// stochastic churn, explicit crash/repair intervals, and seeded
  /// mix-failure episodes. The inert default draws from no generator and
  /// reproduces the fault-free network bit for bit; enabled, transmissions
  /// are dropped on the wire or strand at dead hops (undelivered).
  fault_plan faults{};
  /// Sender-side recovery (sim::retry_policy): timed-out messages are
  /// re-injected over fresh routes with capped exponential backoff. Every
  /// retransmission is a *new* adversary observation of the same sender;
  /// scoring fuses the per-attempt posteriors, so enabling retries trades
  /// anonymity for delivery. Disabled by default (no timers, no extra
  /// draws): retry-free runs stay byte-identical.
  retry_policy retry{};
  /// Round-batched session mode (src/sim/session.hpp): pseudonymous
  /// destinations over mix rounds plus an optional longitudinal disclosure
  /// attack scored per round. Disabled (the default) is byte-identical to
  /// pre-session behavior; enabled requires source_routed mode.
  session_config session{};
  /// Route selection model (net::routing_config). The default (`walk`) is
  /// byte-identical to pre-routing behavior: source-routed messages sample
  /// simple paths (clique) or weighted walks (restricted graphs) exactly as
  /// before, drawing from the historical rng streams. `kpaths` switches to
  /// planned routing — each message picks a uniform exit and one of its k
  /// best Dijkstra/Yen paths (cost-weighted), drawn from dedicated
  /// order-free rng streams so walk-mode draw sequences are untouched.
  /// Planned runs are scored with the approximate posterior
  /// (net::approx_topology_posterior) under a diffuse uniform(1, N-1)
  /// length prior. Requires source_routed mode and a non-timing adversary.
  net::routing_config routing{};
  /// Optional span collector (non-owning; default off). When set,
  /// run_simulation records a "sim.run" span with "sim.run_core" /
  /// "sim.score" / "attack.ingest" children on the calling thread. Never
  /// touches results, rng streams, or outputs — a null tracer is
  /// byte-identical to pre-obs behavior — and single-threaded like the
  /// tracer itself, so campaign workers leave it null.
  obs::tracer* tracer = nullptr;
};

/// Results of a simulation run.
struct sim_report {
  std::uint64_t submitted = 0;
  std::uint64_t delivered = 0;
  /// Extra attempts injected by the retry policy (0 when disabled).
  std::uint64_t retransmissions = 0;
  stats::running_summary end_to_end_latency;  ///< seconds
  stats::running_summary realized_hops;       ///< intermediate nodes traversed
  /// Delivered-message count per realized hop count (index = hops); sized
  /// to the largest observed value. The goodness-of-fit test layer checks
  /// this histogram against the configured path_length_distribution.
  std::vector<std::uint64_t> hop_histogram;

  /// Mean posterior entropy of the adversary across scored messages — the
  /// empirical counterpart of H*(S). Only computed for source-routed
  /// (simple-path) runs, where the exact inference engine applies; NaN for
  /// hop-by-hop runs and for runs where the adversary observed nothing
  /// (the metric is absent, not zero — likewise the identified/top1
  /// fractions below).
  double empirical_entropy_bits = 0.0;
  /// Standard error of that mean.
  double empirical_entropy_stderr = 0.0;
  /// Fraction of messages whose posterior puts > identified_threshold mass
  /// on one node.
  double identified_fraction = 0.0;
  /// Fraction where the top-posterior node is the true sender (among
  /// identified messages this should be ~1; overall it measures leakage).
  double top1_accuracy = 0.0;
  /// One exact posterior (size N) per scored message, in scoring order.
  /// Only filled when sim_config::collect_posteriors is set on a
  /// source-routed run; empty otherwise.
  std::vector<std::vector<double>> posteriors;
  /// Longitudinal attack results; engaged only when the config enables a
  /// session with an attack kind other than none.
  std::optional<session_report> session;

  /// Always-on run telemetry for the obs metrics layer (src/obs): plain
  /// counters the run maintains anyway, deterministic under the seed.
  /// events_executed counts every discrete event the run's queue fired;
  /// the wire_* fields split undelivered transmissions by cause (failure
  /// injection, churned-down destination, crash-scheduled destination);
  /// memo_hits/memo_misses mirror the exact posterior engine's layout
  /// memo when this run was scored by it (0 under the topology/approx
  /// engines, which have no layout memo).
  std::uint64_t events_executed = 0;
  std::uint64_t wire_dropped = 0;
  std::uint64_t wire_stranded = 0;
  std::uint64_t wire_crashed = 0;
  std::uint64_t memo_hits = 0;
  std::uint64_t memo_misses = 0;
};

/// Builds the network, relays, receiver, adversary and workload from the
/// config, runs to completion, and post-processes the adversary's log with
/// the exact posterior engine. Deterministic under the seed.
[[nodiscard]] sim_report run_simulation(const sim_config& config);

/// An offline inference engine for replay scoring: maps an assembled
/// observation to a sender posterior over all N nodes. The default used by
/// run_simulation and replay_trace is posterior_engine::sender_posterior.
using posterior_fn = std::function<std::vector<double>(const observation&)>;

/// Ground-truth summary of one message's journey, as scoring consumes it
/// (and as sim::trace persists it — identity of intermediate hops is
/// deliberately absent; it is neither scored nor adversary-visible).
struct message_outcome {
  node_id origin = 0;
  sim_time sent_at = 0.0;
  sim_time delivered_at = 0.0;
  bool delivered = false;
  std::uint32_t hops = 0;  ///< intermediate nodes traversed

  friend bool operator==(const message_outcome&,
                         const message_outcome&) = default;
};

namespace detail {

/// The event-driven half of run_simulation: builds the network, runs the
/// workload to completion, and returns the adversary model (post-run state)
/// plus per-message ground truth. When `event_log` is non-null every
/// adversary-visible event is also appended to it in arrival order — the
/// tap sim::trace captures through. Shared plumbing for run_simulation and
/// capture_trace; not a stable public surface.
struct core_result {
  std::unique_ptr<adversary_model> model;
  std::map<std::uint64_t, message_outcome> outcomes;
  /// The graph the run routed on; engaged for restricted topologies and
  /// for planned (kpaths) runs — which materialize even the clique — so
  /// scoring can reuse it instead of rebuilding (random_regular
  /// construction runs a whole swap-chain randomization).
  std::optional<net::topology> topology;
  /// Retry attempt id -> original message id, one entry per retransmission
  /// (empty when the retry policy is disabled). Attempt ids continue past
  /// message_count, so original ids keep their dense 1..message_count range
  /// and every pre-retry consumer is unaffected.
  std::map<std::uint64_t, std::uint64_t> attempt_parent;
  /// Event/fabric telemetry harvested from the run (see sim_report);
  /// run_simulation copies these onto the report it returns.
  std::uint64_t events_executed = 0;
  std::uint64_t wire_dropped = 0;
  std::uint64_t wire_stranded = 0;
  std::uint64_t wire_crashed = 0;
};
[[nodiscard]] core_result run_core(const sim_config& config,
                                   std::vector<adversary_event>* event_log);

/// The inference half: walks the model's observed messages, scores each
/// with `engine` (the exact posterior engine for the run's effective
/// compromised set when null; the restricted-path engine for restricted
/// topologies), and aggregates the sim_report. `graph`, when non-null,
/// supplies the already-built topology of a restricted run (it is copied,
/// not retained); when null a restricted config rebuilds it from scratch
/// (the trace-replay path). Unexplainable observations (possible only
/// under the timing correlator or fuzzed logs) are skipped, not scored as
/// zero. `attempt_parent`, when non-null, maps retry attempt ids to their
/// original message: observations of the same original are scored as one
/// message whose posterior is the normalized product of the per-attempt
/// posteriors (independent evidence about the same sender) — the anonymity
/// cost of retransmission.
[[nodiscard]] sim_report score_run(
    const sim_config& config, const adversary_model& model,
    const std::map<std::uint64_t, message_outcome>& outcomes,
    const posterior_fn* engine, const net::topology* graph = nullptr,
    const std::map<std::uint64_t, std::uint64_t>* attempt_parent = nullptr);

}  // namespace detail

}  // namespace anonpath::sim
