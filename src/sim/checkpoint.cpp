#include "src/sim/checkpoint.hpp"

#include <bit>
#include <cinttypes>
#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "src/stats/error.hpp"

namespace anonpath::sim {

namespace {

constexpr char magic[] = "anonpath-checkpoint";

/// Doubles travel as IEEE-754 bit patterns, exactly as in trace v1: bit
/// round-trips and deterministic rendering are what make a resumed CSV
/// byte-identical to an uninterrupted one.
void put_double(std::ostream& os, double x) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016" PRIx64,
                std::bit_cast<std::uint64_t>(x));
  os << buf;
}

void put_summary(std::ostream& os, const stats::running_summary& s) {
  os << ' ' << s.count() << ' ';
  put_double(os, s.mean());
  os << ' ';
  put_double(os, s.m2());
  os << ' ';
  put_double(os, s.min());
  os << ' ';
  put_double(os, s.max());
}

[[noreturn]] void bad(parse_error_kind kind, const std::string& what) {
  throw parse_error(kind, "checkpoint", what);
}

/// Parses a 16-digit lowercase hex token into raw bits; false on any
/// deviation (a record failing here is either the kill point or corruption
/// — the caller decides which by position).
bool parse_hex64(const std::string& tok, std::uint64_t& out) {
  if (tok.size() != 16) return false;
  std::uint64_t bits = 0;
  for (char c : tok) {
    int digit;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
    else return false;
    bits = (bits << 4) | static_cast<std::uint64_t>(digit);
  }
  out = bits;
  return true;
}

bool parse_u64(const std::string& tok, std::uint64_t& out) {
  if (tok.empty() || tok[0] < '0' || tok[0] > '9') return false;
  try {
    std::size_t used = 0;
    out = std::stoull(tok, &used);
    return used == tok.size();
  } catch (const std::exception&) {
    return false;
  }
}

bool parse_summary(std::istringstream& ss, stats::running_summary& out) {
  std::string tok;
  std::uint64_t n = 0;
  if (!(ss >> tok) || !parse_u64(tok, n)) return false;
  std::uint64_t raw[4];
  for (std::uint64_t& r : raw)
    if (!(ss >> tok) || !parse_hex64(tok, r)) return false;
  out = stats::running_summary::restore(
      n, std::bit_cast<double>(raw[0]), std::bit_cast<double>(raw[1]),
      std::bit_cast<double>(raw[2]), std::bit_cast<double>(raw[3]));
  return true;
}

/// FNV-1a, the canonical 64-bit offset/prime pair.
std::uint64_t fnv1a(const std::string& bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

void scope_double(std::ostream& os, double x) {
  os << ' ';
  put_double(os, x);
}

}  // namespace

std::uint64_t campaign_scope(const campaign_grid& grid,
                             const campaign_config& config) {
  // Canonical serialization of every input that shapes the cell list or a
  // run's seed. Field order is fixed; doubles are bit patterns; every axis
  // element is fully expanded (labels alone could collide).
  std::ostringstream ss;
  ss << "grid-v1 n";
  for (std::uint32_t n : grid.node_counts) ss << ' ' << n;
  ss << " c";
  for (std::uint32_t c : grid.compromised_counts) ss << ' ' << c;
  ss << " dist";
  for (const auto& d : grid.lengths) {
    ss << " [" << d.label();
    for (double p : d.dense_pmf()) scope_double(ss, p);
    ss << ']';
  }
  ss << " mode";
  for (routing_mode m : grid.modes)
    ss << ' ' << (m == routing_mode::source_routed ? "s" : "h");
  ss << " drop";
  for (double d : grid.drop_probabilities) scope_double(ss, d);
  ss << " rate";
  for (double r : grid.arrival_rates) scope_double(ss, r);
  ss << " adv";
  for (const adversary_config& a : grid.adversaries) {
    ss << ' ' << static_cast<int>(a.kind);
    scope_double(ss, a.coverage_fraction);
    ss << ' ' << (a.receiver_compromised ? 1 : 0);
  }
  ss << " topo";
  for (const net::topology_config& t : grid.topologies) {
    ss << ' ' << static_cast<int>(t.kind) << ' ' << t.ring_k << ' '
       << t.degree << ' ' << t.graph_seed << ' ' << t.tiers;
    scope_double(ss, t.trust_decay);
  }
  ss << " routing";
  for (const net::routing_config& r : grid.routings)
    ss << ' ' << static_cast<int>(r.kind) << ' ' << r.k;
  ss << " churn";
  for (const net::churn_config& ch : grid.churns) {
    scope_double(ss, ch.down_rate);
    scope_double(ss, ch.mean_downtime);
  }
  ss << " mixfail";
  for (const mix_failure_config& mf : grid.mix_failures) {
    ss << ' ' << mf.count;
    scope_double(ss, mf.horizon);
    scope_double(ss, mf.mean_duration);
  }
  ss << " retry";
  for (const retry_policy& r : grid.retries) {
    ss << ' ' << r.max_retries;
    scope_double(ss, r.timeout);
    scope_double(ss, r.backoff);
    scope_double(ss, r.max_timeout);
  }
  ss << " pop";
  for (std::uint32_t p : grid.populations) ss << ' ' << p;
  ss << " rounds";
  for (std::uint32_t r : grid.session_rounds) ss << ' ' << r;
  ss << " attack";
  for (attack::attack_kind a : grid.attacks) ss << ' ' << static_cast<int>(a);
  ss << " outages";
  for (const net::outage& o : grid.fault_outages) {
    ss << ' ' << o.node;
    scope_double(ss, o.start);
    scope_double(ss, o.duration);
  }
  ss << " shared " << grid.message_count;
  scope_double(ss, grid.forward_prob);
  scope_double(ss, grid.latency.base);
  scope_double(ss, grid.latency.jitter);
  scope_double(ss, grid.latency.processing);
  scope_double(ss, grid.identified_threshold);
  ss << ' ' << static_cast<int>(grid.session_receiver_law.kind);
  scope_double(ss, grid.session_receiver_law.exponent);
  ss << " run " << config.replicas << ' ' << config.master_seed << ' '
     << (config.via_trace ? 1 : 0);
  return fnv1a(ss.str());
}

void write_checkpoint_header(std::ostream& os, std::uint64_t scope) {
  os << magic << " v" << checkpoint_file::format_version << '\n';
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, scope);
  os << "scope " << buf << '\n';
}

void append_checkpoint_cell(std::ostream& os, std::uint64_t index,
                            const campaign_cell& cell) {
  os << "cell " << index << ' ' << cell.replicas << ' ' << cell.submitted
     << ' ' << cell.delivered;
  put_summary(os, cell.delivered_fraction);
  put_summary(os, cell.latency_seconds);
  put_summary(os, cell.hops);
  put_summary(os, cell.entropy_bits);
  put_summary(os, cell.identified_fraction);
  put_summary(os, cell.top1_accuracy);
  put_summary(os, cell.attack_entropy_bits);
  put_summary(os, cell.attack_identified);
  put_summary(os, cell.rounds_to_identify);
  put_summary(os, cell.retransmit_rate);
  if (cell.error.empty()) {
    os << " 0";
  } else {
    // The error text is the line's tail: free-form except for newlines,
    // which would breach the one-record-per-line frame.
    std::string msg = cell.error;
    for (char& ch : msg)
      if (ch == '\n' || ch == '\r') ch = ' ';
    os << " 1 " << msg;
  }
  os << '\n';
}

std::vector<campaign_cell> read_checkpoint(std::istream& is,
                                           std::uint64_t scope,
                                           std::uint64_t max_cells) {
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(is, line)) lines.push_back(line);
  // Empty file: the writer was killed before the header flushed. Zero
  // progress, not corruption.
  if (lines.empty()) return {};

  {
    std::istringstream head(lines[0]);
    std::string tok, version;
    if (!(head >> tok) || tok != magic)
      bad(parse_error_kind::mismatch,
          "not an anonpath checkpoint (bad magic)");
    const std::string want =
        "v" + std::to_string(checkpoint_file::format_version);
    if (!(head >> version)) {
      // Header line cut mid-write: kill point before any progress.
      return {};
    }
    if (version != want)
      bad(parse_error_kind::version_mismatch,
          "format version mismatch: file has '" + version +
              "', this build reads '" + want + "'");
  }
  if (lines.size() < 2) return {};
  {
    std::istringstream head(lines[1]);
    std::string tok, hex;
    std::uint64_t file_scope = 0;
    if (!(head >> tok) || tok != "scope" || !(head >> hex) ||
        !parse_hex64(hex, file_scope)) {
      if (lines.size() == 2) return {};  // scope line is the kill point
      bad(parse_error_kind::malformed, "malformed scope line");
    }
    if (file_scope != scope)
      bad(parse_error_kind::mismatch,
          "checkpoint belongs to a different campaign (scope mismatch)");
  }

  std::vector<campaign_cell> cells;
  for (std::size_t i = 2; i < lines.size(); ++i) {
    const bool final_record = i + 1 == lines.size();
    campaign_cell cell;
    std::istringstream ss(lines[i]);
    std::string tok;
    std::uint64_t index = 0, replicas = 0, errflag = 0;
    // More records than the grid has cells is a foreign or stale journal —
    // loud even on the final line, where a torn record would be forgiven.
    if (cells.size() >= max_cells)
      bad(parse_error_kind::mismatch,
          "checkpoint has more cell records than the campaign grid");
    const bool ok =
        (ss >> tok) && tok == "cell" && (ss >> tok) && parse_u64(tok, index) &&
        index == cells.size() && (ss >> tok) &&
        parse_u64(tok, replicas) && replicas <= 0xFFFFFFFFull && (ss >> tok) &&
        parse_u64(tok, cell.submitted) && (ss >> tok) &&
        parse_u64(tok, cell.delivered) &&
        parse_summary(ss, cell.delivered_fraction) &&
        parse_summary(ss, cell.latency_seconds) && parse_summary(ss, cell.hops) &&
        parse_summary(ss, cell.entropy_bits) &&
        parse_summary(ss, cell.identified_fraction) &&
        parse_summary(ss, cell.top1_accuracy) &&
        parse_summary(ss, cell.attack_entropy_bits) &&
        parse_summary(ss, cell.attack_identified) &&
        parse_summary(ss, cell.rounds_to_identify) &&
        parse_summary(ss, cell.retransmit_rate) && (ss >> tok) &&
        parse_u64(tok, errflag) && errflag <= 1;
    if (!ok) {
      // The one legal irregularity: a final record the killed writer never
      // finished. Anything earlier is corruption and must be loud.
      if (final_record) break;
      bad(parse_error_kind::malformed,
          "malformed cell record at index " + std::to_string(cells.size()));
    }
    cell.replicas = static_cast<std::uint32_t>(replicas);
    if (errflag == 1) {
      std::getline(ss, cell.error);
      if (!cell.error.empty() && cell.error.front() == ' ')
        cell.error.erase(cell.error.begin());
      if (cell.error.empty()) {
        if (final_record) break;
        bad(parse_error_kind::malformed, "error record with empty message");
      }
    }
    cells.push_back(std::move(cell));
  }
  return cells;
}

}  // namespace anonpath::sim
