#include "src/sim/checkpoint.hpp"

#include <bit>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>
#include <utility>

#include "src/stats/contract.hpp"
#include "src/stats/error.hpp"

namespace anonpath::sim {

namespace {

constexpr char magic[] = "anonpath-checkpoint";

/// Doubles travel as IEEE-754 bit patterns, exactly as in trace v1: bit
/// round-trips and deterministic rendering are what make a resumed CSV
/// byte-identical to an uninterrupted one.
void put_double(std::ostream& os, double x) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016" PRIx64,
                std::bit_cast<std::uint64_t>(x));
  os << buf;
}

void put_summary(std::ostream& os, const stats::running_summary& s) {
  os << ' ' << s.count() << ' ';
  put_double(os, s.mean());
  os << ' ';
  put_double(os, s.m2());
  os << ' ';
  put_double(os, s.min());
  os << ' ';
  put_double(os, s.max());
}

[[noreturn]] void bad(parse_error_kind kind, const std::string& what) {
  throw parse_error(kind, "checkpoint", what);
}

/// Parses a 16-digit lowercase hex token into raw bits; false on any
/// deviation (a record failing here is either the kill point or corruption
/// — the caller decides which by position).
bool parse_hex64(const std::string& tok, std::uint64_t& out) {
  if (tok.size() != 16) return false;
  std::uint64_t bits = 0;
  for (char c : tok) {
    int digit;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
    else return false;
    bits = (bits << 4) | static_cast<std::uint64_t>(digit);
  }
  out = bits;
  return true;
}

bool parse_u64(const std::string& tok, std::uint64_t& out) {
  if (tok.empty() || tok[0] < '0' || tok[0] > '9') return false;
  try {
    std::size_t used = 0;
    out = std::stoull(tok, &used);
    return used == tok.size();
  } catch (const std::exception&) {
    return false;
  }
}

bool parse_summary(std::istringstream& ss, stats::running_summary& out) {
  std::string tok;
  std::uint64_t n = 0;
  if (!(ss >> tok) || !parse_u64(tok, n)) return false;
  std::uint64_t raw[4];
  for (std::uint64_t& r : raw)
    if (!(ss >> tok) || !parse_hex64(tok, r)) return false;
  out = stats::running_summary::restore(
      n, std::bit_cast<double>(raw[0]), std::bit_cast<double>(raw[1]),
      std::bit_cast<double>(raw[2]), std::bit_cast<double>(raw[3]));
  return true;
}

/// Parses one `cell` record line against the index the caller expects
/// next; false on any deviation. The caller decides by position whether a
/// failure is the kill point (final line) or corruption.
bool parse_cell_record(const std::string& line, std::uint64_t expected_index,
                       campaign_cell& cell) {
  std::istringstream ss(line);
  std::string tok;
  std::uint64_t index = 0, replicas = 0, errflag = 0;
  const bool ok =
      (ss >> tok) && tok == "cell" && (ss >> tok) && parse_u64(tok, index) &&
      index == expected_index && (ss >> tok) && parse_u64(tok, replicas) &&
      replicas <= 0xFFFFFFFFull && (ss >> tok) &&
      parse_u64(tok, cell.submitted) && (ss >> tok) &&
      parse_u64(tok, cell.delivered) &&
      parse_summary(ss, cell.delivered_fraction) &&
      parse_summary(ss, cell.latency_seconds) && parse_summary(ss, cell.hops) &&
      parse_summary(ss, cell.entropy_bits) &&
      parse_summary(ss, cell.identified_fraction) &&
      parse_summary(ss, cell.top1_accuracy) &&
      parse_summary(ss, cell.attack_entropy_bits) &&
      parse_summary(ss, cell.attack_identified) &&
      parse_summary(ss, cell.rounds_to_identify) &&
      parse_summary(ss, cell.retransmit_rate) && (ss >> tok) &&
      parse_u64(tok, errflag) && errflag <= 1;
  if (!ok) return false;
  cell.replicas = static_cast<std::uint32_t>(replicas);
  if (errflag == 1) {
    std::getline(ss, cell.error);
    if (!cell.error.empty() && cell.error.front() == ' ')
      cell.error.erase(cell.error.begin());
    if (cell.error.empty()) return false;
  }
  return true;
}

/// Validates the magic/version line (lines[0]). Returns false when the
/// header is an acceptable kill point (cut mid-write with nothing after
/// it); throws on a wrong magic or version.
bool parse_magic_line(const std::string& line) {
  std::istringstream head(line);
  std::string tok, version;
  if (!(head >> tok) || tok != magic)
    bad(parse_error_kind::mismatch, "not an anonpath checkpoint (bad magic)");
  const std::string want =
      "v" + std::to_string(checkpoint_file::format_version);
  if (!(head >> version)) return false;
  if (version != want)
    bad(parse_error_kind::version_mismatch,
        "format version mismatch: file has '" + version +
            "', this build reads '" + want + "'");
  return true;
}

/// Parses `scope <16-hex>` into out; false on any deviation.
bool parse_scope_line(const std::string& line, std::uint64_t& out) {
  std::istringstream head(line);
  std::string tok, hex;
  return (head >> tok) && tok == "scope" && (head >> hex) &&
         parse_hex64(hex, out);
}

/// Parses `shard <i> <n>` into (index, count); false on any deviation.
bool parse_shard_line(const std::string& line, std::uint64_t& index,
                      std::uint64_t& count) {
  std::istringstream head(line);
  std::string tok, a, b;
  return (head >> tok) && tok == "shard" && (head >> a) &&
         parse_u64(a, index) && (head >> b) && parse_u64(b, count);
}

bool looks_like_shard_line(const std::string& line) {
  return line.rfind("shard ", 0) == 0;
}

/// FNV-1a, the canonical 64-bit offset/prime pair.
std::uint64_t fnv1a(const std::string& bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

void scope_double(std::ostream& os, double x) {
  os << ' ';
  put_double(os, x);
}

}  // namespace

std::uint64_t campaign_scope(const campaign_grid& grid,
                             const campaign_config& config) {
  // Canonical serialization of every input that shapes the cell list or a
  // run's seed. Field order is fixed; doubles are bit patterns; every axis
  // element is fully expanded (labels alone could collide).
  std::ostringstream ss;
  ss << "grid-v1 n";
  for (std::uint32_t n : grid.node_counts) ss << ' ' << n;
  ss << " c";
  for (std::uint32_t c : grid.compromised_counts) ss << ' ' << c;
  ss << " dist";
  for (const auto& d : grid.lengths) {
    ss << " [" << d.label();
    for (double p : d.dense_pmf()) scope_double(ss, p);
    ss << ']';
  }
  ss << " mode";
  for (routing_mode m : grid.modes)
    ss << ' ' << (m == routing_mode::source_routed ? "s" : "h");
  ss << " drop";
  for (double d : grid.drop_probabilities) scope_double(ss, d);
  ss << " rate";
  for (double r : grid.arrival_rates) scope_double(ss, r);
  ss << " adv";
  for (const adversary_config& a : grid.adversaries) {
    ss << ' ' << static_cast<int>(a.kind);
    scope_double(ss, a.coverage_fraction);
    ss << ' ' << (a.receiver_compromised ? 1 : 0);
  }
  ss << " topo";
  for (const net::topology_config& t : grid.topologies) {
    ss << ' ' << static_cast<int>(t.kind) << ' ' << t.ring_k << ' '
       << t.degree << ' ' << t.graph_seed << ' ' << t.tiers;
    scope_double(ss, t.trust_decay);
  }
  ss << " routing";
  for (const net::routing_config& r : grid.routings)
    ss << ' ' << static_cast<int>(r.kind) << ' ' << r.k;
  ss << " churn";
  for (const net::churn_config& ch : grid.churns) {
    scope_double(ss, ch.down_rate);
    scope_double(ss, ch.mean_downtime);
  }
  ss << " mixfail";
  for (const mix_failure_config& mf : grid.mix_failures) {
    ss << ' ' << mf.count;
    scope_double(ss, mf.horizon);
    scope_double(ss, mf.mean_duration);
  }
  ss << " retry";
  for (const retry_policy& r : grid.retries) {
    ss << ' ' << r.max_retries;
    scope_double(ss, r.timeout);
    scope_double(ss, r.backoff);
    scope_double(ss, r.max_timeout);
  }
  ss << " pop";
  for (std::uint32_t p : grid.populations) ss << ' ' << p;
  ss << " rounds";
  for (std::uint32_t r : grid.session_rounds) ss << ' ' << r;
  ss << " attack";
  for (attack::attack_kind a : grid.attacks) ss << ' ' << static_cast<int>(a);
  ss << " stream";
  for (workload::stream_backend s : grid.streams)
    ss << ' ' << static_cast<int>(s);
  ss << " outages";
  for (const net::outage& o : grid.fault_outages) {
    ss << ' ' << o.node;
    scope_double(ss, o.start);
    scope_double(ss, o.duration);
  }
  ss << " shared " << grid.message_count;
  scope_double(ss, grid.forward_prob);
  scope_double(ss, grid.latency.base);
  scope_double(ss, grid.latency.jitter);
  scope_double(ss, grid.latency.processing);
  scope_double(ss, grid.identified_threshold);
  ss << ' ' << static_cast<int>(grid.session_receiver_law.kind);
  scope_double(ss, grid.session_receiver_law.exponent);
  ss << " run " << config.replicas << ' ' << config.master_seed << ' '
     << (config.via_trace ? 1 : 0);
  return fnv1a(ss.str());
}

void write_checkpoint_header(std::ostream& os, std::uint64_t scope,
                             std::uint32_t shard_index,
                             std::uint32_t shard_count) {
  ANONPATH_EXPECTS(shard_count >= 1 && shard_index < shard_count);
  os << magic << " v" << checkpoint_file::format_version << '\n';
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, scope);
  os << "scope " << buf << '\n';
  if (shard_count > 1)
    os << "shard " << shard_index << ' ' << shard_count << '\n';
}

void append_checkpoint_cell(std::ostream& os, std::uint64_t index,
                            const campaign_cell& cell) {
  os << "cell " << index << ' ' << cell.replicas << ' ' << cell.submitted
     << ' ' << cell.delivered;
  put_summary(os, cell.delivered_fraction);
  put_summary(os, cell.latency_seconds);
  put_summary(os, cell.hops);
  put_summary(os, cell.entropy_bits);
  put_summary(os, cell.identified_fraction);
  put_summary(os, cell.top1_accuracy);
  put_summary(os, cell.attack_entropy_bits);
  put_summary(os, cell.attack_identified);
  put_summary(os, cell.rounds_to_identify);
  put_summary(os, cell.retransmit_rate);
  if (cell.error.empty()) {
    os << " 0";
  } else {
    // The error text is the line's tail: free-form except for newlines,
    // which would breach the one-record-per-line frame.
    std::string msg = cell.error;
    for (char& ch : msg)
      if (ch == '\n' || ch == '\r') ch = ' ';
    os << " 1 " << msg;
  }
  os << '\n';
}

std::vector<campaign_cell> read_checkpoint(std::istream& is,
                                           std::uint64_t scope,
                                           std::uint64_t max_cells,
                                           std::uint32_t shard_index,
                                           std::uint32_t shard_count) {
  ANONPATH_EXPECTS(shard_count >= 1 && shard_index < shard_count);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(is, line)) lines.push_back(line);
  // Empty file: the writer was killed before the header flushed. Zero
  // progress, not corruption.
  if (lines.empty()) return {};

  // Header line cut mid-write: kill point before any progress.
  if (!parse_magic_line(lines[0])) return {};
  if (lines.size() < 2) return {};
  {
    std::uint64_t file_scope = 0;
    if (!parse_scope_line(lines[1], file_scope)) {
      if (lines.size() == 2) return {};  // scope line is the kill point
      bad(parse_error_kind::malformed, "malformed scope line");
    }
    if (file_scope != scope)
      bad(parse_error_kind::mismatch,
          "checkpoint belongs to a different campaign (scope mismatch)");
  }

  std::size_t first_record = 2;
  if (shard_count > 1) {
    // A shard resume demands the matching shard line; its absence with
    // nothing after it is the kill point, with records after it corruption.
    if (lines.size() < 3) return {};
    std::uint64_t file_index = 0, file_count = 0;
    if (!parse_shard_line(lines[2], file_index, file_count)) {
      if (lines.size() == 3) return {};  // shard line is the kill point
      bad(parse_error_kind::malformed, "malformed shard line");
    }
    if (file_index != shard_index || file_count != shard_count)
      bad(parse_error_kind::mismatch,
          "checkpoint belongs to shard " + std::to_string(file_index) +
              " of " + std::to_string(file_count) + ", not shard " +
              std::to_string(shard_index) + " of " +
              std::to_string(shard_count));
    first_record = 3;
  } else if (lines.size() > 2 && looks_like_shard_line(lines[2])) {
    // An unsharded resume must not silently adopt a shard journal: its
    // records are a strided subset, not the prefix this reader returns.
    bad(parse_error_kind::mismatch,
        "checkpoint is a shard journal; merge shards instead of resuming "
        "unsharded");
  }

  std::vector<campaign_cell> cells;
  for (std::size_t i = first_record; i < lines.size(); ++i) {
    const bool final_record = i + 1 == lines.size();
    // More records than this shard's share of the grid is a foreign or
    // stale journal — loud even on the final line, where a torn record
    // would be forgiven.
    if (cells.size() >= max_cells)
      bad(parse_error_kind::mismatch,
          "checkpoint has more cell records than the campaign grid");
    campaign_cell cell;
    const std::uint64_t expected =
        shard_index + cells.size() * static_cast<std::uint64_t>(shard_count);
    if (!parse_cell_record(lines[i], expected, cell)) {
      // The one legal irregularity: a final record the killed writer never
      // finished. Anything earlier is corruption and must be loud.
      if (final_record) break;
      bad(parse_error_kind::malformed,
          "malformed cell record at shard position " +
              std::to_string(cells.size()));
    }
    cells.push_back(std::move(cell));
  }
  return cells;
}

std::uint64_t shard_cell_count(std::uint64_t cell_total,
                               std::uint32_t shard_index,
                               std::uint32_t shard_count) {
  ANONPATH_EXPECTS(shard_count >= 1 && shard_index < shard_count);
  if (cell_total <= shard_index) return 0;
  return (cell_total - 1 - shard_index) / shard_count + 1;
}

shard_checkpoint read_shard_checkpoint(std::istream& is, std::uint64_t scope,
                                       std::uint64_t cell_total) {
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(is, line)) lines.push_back(line);
  // Merging is strict where resuming is lenient: a shard whose header
  // never made it to disk contributes nothing identifiable and the merge
  // cannot proceed.
  if (lines.empty() || !parse_magic_line(lines[0]))
    bad(parse_error_kind::truncated,
        "shard journal has no complete header line");
  if (lines.size() < 2)
    bad(parse_error_kind::truncated, "shard journal has no scope line");
  std::uint64_t file_scope = 0;
  if (!parse_scope_line(lines[1], file_scope))
    bad(parse_error_kind::malformed, "malformed scope line");
  if (file_scope != scope)
    bad(parse_error_kind::mismatch,
        "shard journal belongs to a different campaign (scope mismatch)");

  shard_checkpoint out;
  std::size_t first_record = 2;
  if (lines.size() > 2 && looks_like_shard_line(lines[2])) {
    std::uint64_t index = 0, count = 0;
    if (!parse_shard_line(lines[2], index, count))
      bad(parse_error_kind::malformed, "malformed shard line");
    if (count < 2 || index >= count || count > 0xFFFFFFFFull)
      bad(parse_error_kind::out_of_range,
          "shard identity " + std::to_string(index) + " of " +
              std::to_string(count) + " is out of range");
    out.shard_index = static_cast<std::uint32_t>(index);
    out.shard_count = static_cast<std::uint32_t>(count);
    first_record = 3;
  }
  // No shard line: an unsharded journal, mergeable as the trivial 1-shard
  // split (out keeps its 0-of-1 defaults).

  const std::uint64_t max_cells =
      shard_cell_count(cell_total, out.shard_index, out.shard_count);
  for (std::size_t i = first_record; i < lines.size(); ++i) {
    const bool final_record = i + 1 == lines.size();
    if (out.cells.size() >= max_cells)
      bad(parse_error_kind::mismatch,
          "shard journal has more cell records than its share of the grid");
    campaign_cell cell;
    const std::uint64_t expected =
        out.shard_index +
        out.cells.size() * static_cast<std::uint64_t>(out.shard_count);
    if (!parse_cell_record(lines[i], expected, cell)) {
      // Drop a torn final record (the kill point); the shard then fails
      // the merge's completeness check, loudly, as an incomplete shard.
      if (final_record) break;
      bad(parse_error_kind::malformed,
          "malformed cell record at shard position " +
              std::to_string(out.cells.size()));
    }
    out.cells.push_back(std::move(cell));
  }
  return out;
}

campaign_result merge_campaign(const campaign_grid& grid,
                               const campaign_config& config,
                               const std::vector<std::string>& shard_paths) {
  ANONPATH_EXPECTS(!shard_paths.empty());
  const std::uint64_t scope = campaign_scope(grid, config);
  const std::vector<scenario> scenarios = expand_grid(grid);
  const std::uint64_t cell_total = scenarios.size();

  std::vector<campaign_cell> cells(cell_total);
  std::vector<char> seen;  // shard indices already merged
  std::uint32_t shard_count = 0;
  for (const std::string& path : shard_paths) {
    std::ifstream in(path);
    if (!in)
      bad(parse_error_kind::io,
          "cannot open shard checkpoint '" + path + "' for reading");
    shard_checkpoint shard;
    try {
      shard = read_shard_checkpoint(in, scope, cell_total);
    } catch (const parse_error& e) {
      // Re-frame with the offending path: a merge reads many files and
      // "scope mismatch" alone does not say which one to go look at.
      std::string detail = e.what();
      const std::string prefix = e.source() + ": ";
      if (detail.rfind(prefix, 0) == 0) detail.erase(0, prefix.size());
      throw parse_error(e.kind(), "checkpoint",
                        detail + " (in '" + path + "')");
    }
    if (shard_count == 0) {
      shard_count = shard.shard_count;
      seen.assign(shard_count, 0);
    } else if (shard.shard_count != shard_count) {
      bad(parse_error_kind::mismatch,
          "'" + path + "' declares " + std::to_string(shard.shard_count) +
              " shards but earlier inputs declared " +
              std::to_string(shard_count));
    }
    if (seen[shard.shard_index])
      bad(parse_error_kind::mismatch,
          "duplicate shard " + std::to_string(shard.shard_index) + " of " +
              std::to_string(shard_count) + " ('" + path + "')");
    seen[shard.shard_index] = 1;
    const std::uint64_t expect =
        shard_cell_count(cell_total, shard.shard_index, shard_count);
    if (shard.cells.size() < expect)
      bad(parse_error_kind::truncated,
          "shard " + std::to_string(shard.shard_index) + " of " +
              std::to_string(shard_count) + " ('" + path + "') is incomplete: " +
              std::to_string(shard.cells.size()) + " of " +
              std::to_string(expect) + " cells");
    for (std::uint64_t k = 0; k < shard.cells.size(); ++k)
      cells[shard.shard_index + k * shard_count] = std::move(shard.cells[k]);
  }
  for (std::uint32_t i = 0; i < shard_count; ++i)
    if (!seen[i])
      bad(parse_error_kind::mismatch,
          "missing shard " + std::to_string(i) + " of " +
              std::to_string(shard_count));

  campaign_result result;
  result.requested_cells = grid.cell_count();
  result.skipped_cells = result.requested_cells - cell_total;
  result.runs = cell_total * config.replicas;
  result.cells = std::move(cells);
  // Shard records carry default scenes, like any checkpoint read; rebind
  // them from the grid so the CSV renders real coordinates.
  for (std::uint64_t i = 0; i < cell_total; ++i)
    result.cells[i].scene = scenarios[i];
  return result;
}

}  // namespace anonpath::sim
