#include "src/sim/fault_plan.hpp"

#include <cmath>
#include <cstdio>

#include "src/stats/contract.hpp"
#include "src/stats/rng.hpp"

namespace anonpath::sim {

bool mix_failure_config::valid() const noexcept {
  if (count == 0) return true;
  return std::isfinite(horizon) && horizon >= 0.0 &&
         std::isfinite(mean_duration) && mean_duration > 0.0;
}

std::string mix_failure_config::label() const {
  if (!enabled()) return "none";
  char buf[64];
  if (horizon > 0.0) {
    std::snprintf(buf, sizeof buf, "mixfail(%u@%g/%g)", count, horizon,
                  mean_duration);
  } else {
    std::snprintf(buf, sizeof buf, "mixfail(%u@auto/%g)", count,
                  mean_duration);
  }
  return buf;
}

bool fault_plan::valid() const noexcept {
  if (!(std::isfinite(drop_probability) && drop_probability >= 0.0 &&
        drop_probability < 1.0))
    return false;
  if (!churn.valid()) return false;
  for (const net::outage& o : outages)
    if (!o.valid()) return false;
  return mix_failures.valid();
}

bool fault_plan::valid_for(std::uint32_t node_count) const noexcept {
  if (!valid()) return false;
  for (const net::outage& o : outages)
    if (o.node >= node_count) return false;
  return true;
}

std::string fault_plan::label() const {
  if (!enabled()) return "none";
  std::string out;
  const auto append = [&out](const std::string& part) {
    if (!out.empty()) out += '+';
    out += part;
  };
  if (drop_probability > 0.0) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "drop(%g)", drop_probability);
    append(buf);
  }
  if (churn.enabled()) append(churn.label());
  if (!outages.empty())
    append("crash(" + std::to_string(outages.size()) + ")");
  if (mix_failures.enabled()) append(mix_failures.label());
  return out;
}

net::outage_schedule fault_plan::materialize(std::uint32_t node_count,
                                             std::uint64_t seed,
                                             double default_horizon) const {
  ANONPATH_EXPECTS(node_count >= 1);
  ANONPATH_EXPECTS(valid_for(node_count));
  std::vector<net::outage> all = outages;
  if (mix_failures.enabled()) {
    const double horizon =
        mix_failures.horizon > 0.0 ? mix_failures.horizon : default_horizon;
    ANONPATH_EXPECTS(horizon > 0.0);
    // A dedicated stream index far outside the per-node churn range, so the
    // episode draw can never collide with any other consumer of `seed`.
    stats::rng gen = stats::rng::stream(seed ^ 0xfa17ed5c4ed01e5ULL, 0);
    for (std::uint32_t i = 0; i < mix_failures.count; ++i) {
      net::outage o;
      o.node = static_cast<node_id>(gen.next_below(node_count));
      o.start = gen.next_double() * horizon;
      // Inverse-CDF exponential; next_double() < 1 keeps the log positive.
      o.duration =
          -std::log(1.0 - gen.next_double()) * mix_failures.mean_duration;
      if (o.duration <= 0.0) o.duration = mix_failures.mean_duration * 1e-9;
      all.push_back(o);
    }
  }
  return net::outage_schedule(node_count, std::move(all));
}

bool retry_policy::valid() const noexcept {
  if (max_retries == 0) return true;
  return std::isfinite(timeout) && timeout > 0.0 && std::isfinite(backoff) &&
         backoff >= 1.0 && std::isfinite(max_timeout) &&
         max_timeout >= timeout;
}

std::string retry_policy::label() const {
  if (!enabled()) return "none";
  char buf[64];
  std::snprintf(buf, sizeof buf, "retry(%ux%g*%g<=%g)", max_retries, timeout,
                backoff, max_timeout);
  return buf;
}

}  // namespace anonpath::sim
