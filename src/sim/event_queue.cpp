#include "src/sim/event_queue.hpp"

#include "src/stats/contract.hpp"

namespace anonpath::sim {

void event_queue::schedule_at(sim_time at, std::function<void()> action) {
  ANONPATH_EXPECTS(at >= now_);
  heap_.push(entry{at, seq_++, std::move(action)});
}

void event_queue::schedule_in(sim_time delay, std::function<void()> action) {
  ANONPATH_EXPECTS(delay >= 0.0);
  schedule_at(now_ + delay, std::move(action));
}

bool event_queue::run_next() {
  if (heap_.empty()) return false;
  // priority_queue::top is const; the entry must be moved out via a copy of
  // the handle before pop. Extract with const_cast-free two-step.
  entry e = heap_.top();
  heap_.pop();
  now_ = e.at;
  ++executed_;
  e.action();
  return true;
}

bool event_queue::run_until_empty(std::uint64_t max_events) {
  std::uint64_t fired = 0;
  while (run_next()) {
    if (++fired >= max_events && !heap_.empty()) return false;
  }
  return true;
}

}  // namespace anonpath::sim
