#include "src/sim/network.hpp"

#include "src/stats/contract.hpp"

namespace anonpath::sim {

network::network(std::uint32_t node_count, latency_params params,
                 std::uint64_t seed, const fault_plan& faults,
                 const net::topology* topology, double fault_horizon)
    : node_count_(node_count),
      latency_(params, stats::rng(seed)),
      drop_probability_(faults.drop_probability),
      drop_rng_(seed ^ 0x5bf03635f0a5b1c5ULL),
      topology_(topology),
      churn_(node_count, faults.churn, seed ^ 0x94d049bb133111ebULL),
      outages_(faults.materialize(node_count, seed, fault_horizon)),
      sinks_(node_count, nullptr) {
  ANONPATH_EXPECTS(node_count >= 2);
  ANONPATH_EXPECTS(faults.valid_for(node_count));
  ANONPATH_EXPECTS(topology == nullptr ||
                   topology->node_count() == node_count);
}

void network::register_node(node_id id, message_sink& sink) {
  ANONPATH_EXPECTS(id < node_count_);
  ANONPATH_EXPECTS(sinks_[id] == nullptr);
  sinks_[id] = &sink;
}

void network::register_receiver(message_sink& sink) {
  ANONPATH_EXPECTS(receiver_sink_ == nullptr);
  receiver_sink_ = &sink;
}

void network::originate(node_id origin, sim_time at, std::uint64_t msg_id) {
  ANONPATH_EXPECTS(origin < node_count_);
  auto& trace = traces_[msg_id];
  trace.origin = origin;
  trace.sent_at = at;
}

void network::send(node_id from, node_id to, wire_message msg) {
  ANONPATH_EXPECTS(from < node_count_);
  ANONPATH_EXPECTS(sinks_[from] != nullptr);  // sender must be registered too
  ANONPATH_EXPECTS(to < node_count_ || to == receiver_node);
  message_sink* sink =
      to == receiver_node ? receiver_sink_ : sinks_[to];
  ANONPATH_EXPECTS(sink != nullptr);
  // A restricted fabric only carries edges of its graph; the receiver is an
  // external party reachable from everywhere.
  if (topology_ != nullptr && to != receiver_node)
    ANONPATH_EXPECTS(topology_->has_edge(from, to));

  // A crashed or churned-down destination strands the message at the dead
  // hop (the sender's transmission is gone; recovery is the *sender's* job
  // via the retry policy, never the fabric's). The receiver never fails.
  // Both availability checks precede the loss coin — the crash schedule is
  // draw-free and a disabled churn model draws nothing — so an inert fault
  // plan leaves the drop rng stream untouched.
  if (to != receiver_node && outages_.enabled() &&
      outages_.is_down(to, queue_.now())) {
    ++crashed_;  // journey ends; the trace stays undelivered
    return;
  }
  if (to != receiver_node && churn_.enabled() &&
      !churn_.is_up(to, queue_.now())) {
    ++stranded_;  // journey ends; the trace stays undelivered
    return;
  }

  if (drop_probability_ > 0.0 && drop_rng_.next_bernoulli(drop_probability_)) {
    ++dropped_;  // journey ends silently; the trace stays undelivered
    return;
  }

  const sim_time delay = latency_.link_delay();
  const std::uint64_t id = msg.id;
  queue_.schedule_in(delay, [this, sink, from, to, id,
                             m = std::move(msg)]() mutable {
    auto& trace = traces_[id];
    if (to == receiver_node) {
      trace.delivered = true;
      trace.delivered_at = queue_.now();
    } else {
      trace.visited.push_back(to);
    }
    sink->on_message(from, std::move(m));
  });
}

}  // namespace anonpath::sim
