#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "src/crypto/onion.hpp"
#include "src/sim/adversary.hpp"
#include "src/sim/network.hpp"

namespace anonpath::sim {

/// The destination endpoint R. Always compromised per the paper's threat
/// model: every delivery is reported to the adversary with the immediate
/// predecessor. Onion payloads are opened (integrity check of the crypto
/// substrate); Crowds payloads arrive in the clear.
class receiver_endpoint final : public message_sink {
 public:
  receiver_endpoint(network& net, const crypto::key_registry& keys,
                    adversary_model* monitor);

  void on_message(node_id from, wire_message msg) override;

  struct delivery {
    node_id predecessor = 0;
    sim_time at = 0.0;
    std::vector<std::byte> payload;
  };

  [[nodiscard]] std::uint64_t delivered_count() const noexcept {
    return deliveries_.size();
  }
  [[nodiscard]] const std::map<std::uint64_t, delivery>& deliveries() const noexcept {
    return deliveries_;
  }

 private:
  network& net_;
  const crypto::key_registry& keys_;
  adversary_model* monitor_;
  std::map<std::uint64_t, delivery> deliveries_;
};

}  // namespace anonpath::sim
