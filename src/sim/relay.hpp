#pragma once

#include "src/crypto/onion.hpp"
#include "src/sim/adversary.hpp"
#include "src/sim/network.hpp"
#include "src/stats/rng.hpp"

namespace anonpath::sim {

/// A source-routed relay (Onion Routing / Freedom / PipeNet style): peels
/// its onion layer, learns only predecessor and successor, forwards after a
/// processing delay. If compromised, its adversary agent files the paper's
/// (t, pred, succ) tuple.
class onion_relay final : public message_sink {
 public:
  onion_relay(node_id self, network& net, const crypto::key_registry& keys,
              double processing_delay, bool compromised,
              adversary_model* monitor);

  void on_message(node_id from, wire_message msg) override;

  [[nodiscard]] node_id id() const noexcept { return self_; }
  [[nodiscard]] std::uint64_t forwarded_count() const noexcept {
    return forwarded_;
  }

 private:
  node_id self_;
  network& net_;
  const crypto::key_registry& keys_;
  double processing_delay_;
  bool compromised_;
  adversary_model* monitor_;
  std::uint64_t forwarded_ = 0;
};

/// A hop-by-hop relay (Crowds / Onion Routing II / Hordes style): flips the
/// forwarding coin carried in the message; forwards to a uniform random
/// other node — or, on a restricted fabric, to a weighted random graph
/// neighbor — or delivers to the receiver. Payload travels unchanged — which
/// is precisely why Crowds messages are trivially correlatable.
class crowds_relay final : public message_sink {
 public:
  /// `topology`, when non-null, restricts forwarding to graph neighbors
  /// (weighted draw); it must outlive the relay. Null keeps the historical
  /// uniform-over-others draw, bit for bit.
  crowds_relay(node_id self, network& net, double processing_delay,
               bool compromised, adversary_model* monitor, stats::rng gen,
               const net::topology* topology = nullptr);

  void on_message(node_id from, wire_message msg) override;

  [[nodiscard]] node_id id() const noexcept { return self_; }

 private:
  node_id self_;
  network& net_;
  double processing_delay_;
  bool compromised_;
  adversary_model* monitor_;
  stats::rng gen_;
  const net::topology* topology_;
};

}  // namespace anonpath::sim
