#include "src/sim/session.hpp"

#include <algorithm>
#include <cstdio>
#include <optional>

#include "src/stats/contract.hpp"
#include "src/stats/discrete_sampler.hpp"
#include "src/stats/rng.hpp"

namespace anonpath::sim {

namespace {
/// Dedicated stream index for destination draws: disjoint from every seed
/// the simulator derives (network, keys, traffic, routing all come from
/// sequential splits of rng(seed), never from rng::stream of it), so
/// enabling a session perturbs no historical draw.
constexpr std::uint64_t session_stream = 0xFFFFFFFF00000011ULL;
}  // namespace

std::string session_config::label() const {
  if (!enabled()) return "off";
  char buf[96];
  std::snprintf(buf, sizeof buf, "rounds=%u;pop=%u;%s", rounds, receiver_count,
                attack::attack_kind_label(attack));
  std::string out = buf;
  // Additive: the exact (historical) backend keeps the historical label.
  if (stream != workload::stream_backend::exact) {
    out += ";stream=";
    out += workload::stream_backend_label(stream);
  }
  return out;
}

std::vector<session_assignment> assign_session_destinations(
    const session_config& session, std::uint64_t seed,
    std::span<const node_id> origins_by_msg) {
  ANONPATH_EXPECTS(session.enabled());
  const auto count = static_cast<std::uint32_t>(origins_by_msg.size());
  ANONPATH_EXPECTS(count >= session.rounds);
  stats::rng gen = stats::rng::stream(seed, session_stream);
  std::optional<stats::discrete_sampler> law;
  if (session.receiver_law.kind != workload::popularity_kind::uniform)
    law.emplace(workload::popularity_pmf(session.receiver_law,
                                         session.receiver_count));
  std::vector<session_assignment> out(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    // Threshold batching by submission order: consecutive equal batches
    // (the Poisson workload assigns ids in arrival order).
    out[i].round = static_cast<std::uint32_t>(
        static_cast<std::uint64_t>(i) * session.rounds / count);
    if (origins_by_msg[i] == session.target_sender) {
      out[i].destination = session.partner;
    } else {
      out[i].destination =
          law ? static_cast<std::uint32_t>(law->sample(gen))
              : static_cast<std::uint32_t>(
                    gen.next_below(session.receiver_count));
    }
  }
  return out;
}

node_id lowest_honest_node(const std::vector<bool>& compromised_flags) {
  const auto it = std::find(compromised_flags.begin(),
                            compromised_flags.end(), false);
  return it == compromised_flags.end()
             ? node_id{0}
             : static_cast<node_id>(it - compromised_flags.begin());
}

}  // namespace anonpath::sim
