#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <vector>

#include "src/sim/adversary.hpp"
#include "src/sim/simulator.hpp"

namespace anonpath::sim {

/// A captured run: everything needed to re-score the adversary's view of a
/// simulation offline, without re-running the discrete-event engine —
/// decoupling simulation cost from inference cost, and letting one
/// captured run be scored by any number of inference engines.
///
/// Contents:
///   * `config`      — the full sim_config that produced the run (seed
///                     included), so a trace is also a reproduction recipe;
///   * `compromised` — the *effective* corrupted set (for partial_coverage
///                     this is the realized Bernoulli draw, not the list in
///                     `config.compromised`), so replay rebuilds the exact
///                     model without re-drawing;
///   * `events`      — every adversary-visible event in arrival order (the
///                     recording tap of detail::run_core);
///   * `truths`      — per-message ground-truth outcomes, which replay uses
///                     for the delivery/latency metrics and top-1 scoring
///                     (they are the evaluator's key, never shown to the
///                     inference engine).
struct message_truth {
  std::uint64_t msg = 0;
  message_outcome outcome;

  friend bool operator==(const message_truth&, const message_truth&) = default;
};

struct sim_trace {
  /// Bump on any change to the serialized layout that alters bytes a v1
  /// writer could have produced; read_trace refuses mismatched versions
  /// (no silent misparse), and the golden-file regression test pins the
  /// committed fixture to the current value. Purely *additive* optional
  /// lines (topology/churn/fault-plan/retry sections, written only for
  /// non-default configs) extend the v1 grammar without a bump: every v1
  /// trace still parses to the same run, every pre-extension config still
  /// serializes byte-identically, and an older reader rejects extended
  /// traces loudly at the unknown keyword rather than misparsing them.
  static constexpr std::uint32_t format_version = 1;

  sim_config config;
  std::vector<node_id> compromised;  ///< effective corrupted set, ascending
  std::vector<adversary_event> events;
  std::vector<message_truth> truths;
  /// Retry attempt id -> original message id (detail::core_result's map),
  /// serialized only when the config enables the retry policy; replay
  /// hands it to scoring so retransmitted observations fuse exactly as
  /// they did inline.
  std::map<std::uint64_t, std::uint64_t> attempts;
};

/// Runs the discrete-event half of `run_simulation(config)` and captures
/// the adversary's event stream plus ground truth. No inference happens
/// here — that is replay's job.
[[nodiscard]] sim_trace capture_trace(const sim_config& config);

/// Re-scores a captured run with the exact posterior engine: rebuilds the
/// adversary model from the trace, feeds it the recorded events, and runs
/// the same aggregation as run_simulation. For any config,
/// replay_trace(capture_trace(cfg)) == run_simulation(cfg) bit for bit.
[[nodiscard]] sim_report replay_trace(const sim_trace& trace);

/// Same, but scores each assembled observation with a caller-supplied
/// inference engine instead of the exact posterior engine.
[[nodiscard]] sim_report replay_trace(const sim_trace& trace,
                                      const posterior_fn& engine);

/// Serializes a trace as versioned, line-oriented text. Deterministic and
/// exact: floating-point fields are written as IEEE-754 bit patterns (hex),
/// so write/read round-trips reproduce every double bit for bit and equal
/// traces render byte-identically. See README for the line grammar.
void write_trace(const sim_trace& trace, std::ostream& os);

/// Parses a serialized trace. The stream is *untrusted input*: any
/// truncation, mangled token, out-of-range value, oversized count, or
/// version mismatch throws anonpath::parse_error (an std::invalid_argument
/// whose kind() classifies the failure and whose message names the
/// offending field) — never a contract violation, crash, or unbounded
/// allocation. A returned trace satisfies every precondition of
/// replay_trace and of run_simulation(trace.config).
[[nodiscard]] sim_trace read_trace(std::istream& is);

}  // namespace anonpath::sim
