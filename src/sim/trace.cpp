#include "src/sim/trace.hpp"

#include <bit>
#include <cinttypes>
#include <cstdio>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

#include "src/stats/contract.hpp"

namespace anonpath::sim {

namespace {

constexpr char magic[] = "anonpath-trace";

/// Doubles travel as IEEE-754 bit patterns: exact round-trip, deterministic
/// rendering, no locale or precision pitfalls.
void put_double(std::ostream& os, double x) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, std::bit_cast<std::uint64_t>(x));
  os << buf;
}

[[noreturn]] void bad(const std::string& what) {
  throw std::invalid_argument("trace: " + what);
}

std::string next_token(std::istream& is, const char* context) {
  std::string tok;
  if (!(is >> tok)) bad(std::string("truncated stream reading ") + context);
  return tok;
}

double get_double(std::istream& is, const char* context) {
  const std::string tok = next_token(is, context);
  if (tok.size() != 16) bad(std::string("malformed double for ") + context);
  std::uint64_t bits = 0;
  for (char c : tok) {
    int digit;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
    else bad(std::string("malformed double for ") + context);
    bits = (bits << 4) | static_cast<std::uint64_t>(digit);
  }
  return std::bit_cast<double>(bits);
}

std::uint64_t get_u64(std::istream& is, const char* context) {
  const std::string tok = next_token(is, context);
  // std::stoull alone would accept "-1"/"+1" with wraparound; a trace that
  // visually says one thing must never silently parse as another.
  if (tok.empty() || tok[0] < '0' || tok[0] > '9')
    bad(std::string("malformed integer for ") + context);
  try {
    std::size_t used = 0;
    const std::uint64_t v = std::stoull(tok, &used);
    if (used != tok.size()) bad(std::string("malformed integer for ") + context);
    return v;
  } catch (const std::invalid_argument&) {
    bad(std::string("malformed integer for ") + context);
  } catch (const std::out_of_range&) {
    bad(std::string("integer out of range for ") + context);
  }
}

std::uint32_t get_u32(std::istream& is, const char* context) {
  const std::uint64_t v = get_u64(is, context);
  if (v > 0xFFFFFFFFull) bad(std::string("integer out of range for ") + context);
  return static_cast<std::uint32_t>(v);
}

void expect_keyword(std::istream& is, const char* keyword) {
  const std::string tok = next_token(is, keyword);
  if (tok != keyword)
    bad("expected '" + std::string(keyword) + "', found '" + tok + "'");
}

/// The format is whitespace-delimited, so free-text fields (the strategy
/// label) must collapse to a single token on the wire.
std::string tokenize_label(const std::string& label) {
  std::string out = label.empty() ? std::string("Custom") : label;
  for (char& c : out)
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') c = '_';
  return out;
}

}  // namespace

void write_trace(const sim_trace& trace, std::ostream& os) {
  const sim_config& c = trace.config;
  os << magic << " v" << sim_trace::format_version << '\n';
  os << "sys " << c.sys.node_count << ' ' << c.sys.compromised_count << '\n';
  os << "compromised-config " << c.compromised.size();
  for (node_id id : c.compromised) os << ' ' << id;
  os << '\n';
  const auto& pmf = c.lengths.dense_pmf();
  os << "dist " << tokenize_label(c.lengths.label()) << ' ' << pmf.size();
  for (double p : pmf) {
    os << ' ';
    put_double(os, p);
  }
  os << '\n';
  os << "mode "
     << (c.mode == routing_mode::source_routed ? "source_routed" : "hop_by_hop")
     << '\n';
  os << "forward ";
  put_double(os, c.forward_prob);
  os << '\n';
  os << "messages " << c.message_count << '\n';
  os << "rate ";
  put_double(os, c.arrival_rate);
  os << '\n';
  os << "latency ";
  put_double(os, c.latency.base);
  os << ' ';
  put_double(os, c.latency.jitter);
  os << ' ';
  put_double(os, c.latency.processing);
  os << '\n';
  os << "drop ";
  put_double(os, c.drop_probability);
  os << '\n';
  os << "seed " << c.seed << '\n';
  os << "adversary " << adversary_kind_label(c.adversary.kind) << ' ';
  put_double(os, c.adversary.coverage_fraction);
  os << ' ' << (c.adversary.receiver_compromised ? 1 : 0) << '\n';
  os << "threshold ";
  put_double(os, c.identified_threshold);
  os << '\n';
  os << "collect " << (c.collect_posteriors ? 1 : 0) << '\n';
  // Session, topology and churn ride as optional extension lines, written
  // only when they differ from the historical defaults: every pre-extension
  // config still serializes byte-identically (the committed golden trace
  // pins this), and absent lines parse back to the defaults.
  if (c.session.enabled()) {
    os << "session " << c.session.rounds << ' ' << c.session.receiver_count
       << ' '
       << (c.session.receiver_law.kind == workload::popularity_kind::uniform
               ? "uniform"
               : "zipf")
       << ' ';
    put_double(os, c.session.receiver_law.exponent);
    os << ' ' << c.session.target_sender << ' ' << c.session.partner << ' '
       << attack::attack_kind_label(c.session.attack) << '\n';
  }
  if (c.topology.kind != net::topology_kind::complete) {
    os << "topology " << topology_kind_name(c.topology.kind) << ' '
       << c.topology.ring_k << ' ' << c.topology.degree << ' '
       << c.topology.graph_seed << ' ' << c.topology.tiers << ' ';
    put_double(os, c.topology.trust_decay);
    os << '\n';
  }
  if (c.churn.enabled()) {
    os << "churn ";
    put_double(os, c.churn.down_rate);
    os << ' ';
    put_double(os, c.churn.mean_downtime);
    os << '\n';
  }
  os << "compromised " << trace.compromised.size();
  for (node_id id : trace.compromised) os << ' ' << id;
  os << '\n';
  os << "events " << trace.events.size() << '\n';
  for (const adversary_event& e : trace.events) {
    switch (e.type) {
      case adversary_event::kind::origin:
        os << "O " << e.msg << ' ' << e.reporter << '\n';
        break;
      case adversary_event::kind::relay:
        os << "T " << e.msg << ' ';
        put_double(os, e.at);
        os << ' ' << e.reporter << ' ' << e.predecessor << ' ' << e.successor
           << '\n';
        break;
      case adversary_event::kind::receipt:
        os << "R " << e.msg << ' ';
        put_double(os, e.at);
        os << ' ' << e.predecessor << '\n';
        break;
    }
  }
  os << "truths " << trace.truths.size() << '\n';
  for (const message_truth& t : trace.truths) {
    os << "G " << t.msg << ' ' << t.outcome.origin << ' ';
    put_double(os, t.outcome.sent_at);
    os << ' ';
    put_double(os, t.outcome.delivered_at);
    os << ' ' << (t.outcome.delivered ? 1 : 0) << ' ' << t.outcome.hops
       << '\n';
  }
  os << "end\n";
}

sim_trace read_trace(std::istream& is) {
  sim_trace trace;
  sim_config& c = trace.config;

  const std::string head = next_token(is, "magic");
  if (head != magic) bad("not an anonpath trace (bad magic '" + head + "')");
  const std::string version = next_token(is, "version");
  const std::string want = "v" + std::to_string(sim_trace::format_version);
  if (version != want)
    bad("format version mismatch: file has '" + version + "', this build reads '" +
        want + "'");

  expect_keyword(is, "sys");
  c.sys.node_count = get_u32(is, "node count");
  c.sys.compromised_count = get_u32(is, "compromised count");

  expect_keyword(is, "compromised-config");
  const std::uint32_t config_comp = get_u32(is, "configured compromised size");
  if (config_comp > c.sys.node_count) bad("configured compromised size > N");
  c.compromised.resize(config_comp);
  for (node_id& id : c.compromised) id = get_u32(is, "configured compromised id");

  expect_keyword(is, "dist");
  const std::string dist_label = next_token(is, "distribution label");
  const std::uint32_t pmf_size = get_u32(is, "pmf size");
  // Support always fits simple paths, so a count past N is corruption, not
  // data — and must not become a giant allocation.
  if (pmf_size == 0) bad("empty length distribution");
  if (pmf_size > c.sys.node_count) bad("pmf size > N");
  std::vector<double> pmf(pmf_size);
  for (double& p : pmf) p = get_double(is, "pmf entry");
  c.lengths = path_length_distribution::from_pmf(std::move(pmf), dist_label);

  expect_keyword(is, "mode");
  const std::string mode = next_token(is, "mode");
  if (mode == "source_routed") c.mode = routing_mode::source_routed;
  else if (mode == "hop_by_hop") c.mode = routing_mode::hop_by_hop;
  else bad("unknown routing mode '" + mode + "'");

  expect_keyword(is, "forward");
  c.forward_prob = get_double(is, "forward probability");
  expect_keyword(is, "messages");
  c.message_count = get_u32(is, "message count");
  expect_keyword(is, "rate");
  c.arrival_rate = get_double(is, "arrival rate");
  expect_keyword(is, "latency");
  c.latency.base = get_double(is, "latency base");
  c.latency.jitter = get_double(is, "latency jitter");
  c.latency.processing = get_double(is, "latency processing");
  expect_keyword(is, "drop");
  c.drop_probability = get_double(is, "drop probability");
  expect_keyword(is, "seed");
  c.seed = get_u64(is, "seed");

  expect_keyword(is, "adversary");
  const std::string kind = next_token(is, "adversary kind");
  if (kind == "full_coalition") c.adversary.kind = adversary_kind::full_coalition;
  else if (kind == "partial_coverage")
    c.adversary.kind = adversary_kind::partial_coverage;
  else if (kind == "timing_correlator")
    c.adversary.kind = adversary_kind::timing_correlator;
  else bad("unknown adversary kind '" + kind + "'");
  c.adversary.coverage_fraction = get_double(is, "coverage fraction");
  c.adversary.receiver_compromised = get_u32(is, "receiver flag") != 0;

  expect_keyword(is, "threshold");
  c.identified_threshold = get_double(is, "identified threshold");
  expect_keyword(is, "collect");
  c.collect_posteriors = get_u32(is, "collect flag") != 0;

  // Optional extension lines (absent = historical defaults). The grammar
  // stays one-to-one with the writer: each section at most once, and the
  // never-written defaults ("topology complete", churn rate 0) are
  // rejected so write(read(t)) is byte-identical to any accepted t.
  bool saw_session = false;
  bool saw_topology = false;
  bool saw_churn = false;
  std::string section = next_token(is, "compromised");
  while (section == "session" || section == "topology" || section == "churn") {
    if (section == "session") {
      if (saw_session) bad("duplicate 'session' section");
      if (saw_topology || saw_churn)
        bad("'session' section must precede 'topology' and 'churn'");
      saw_session = true;
      c.session.rounds = get_u32(is, "session rounds");
      c.session.receiver_count = get_u32(is, "session receiver count");
      const std::string law = next_token(is, "session receiver law");
      if (law == "uniform")
        c.session.receiver_law.kind = workload::popularity_kind::uniform;
      else if (law == "zipf")
        c.session.receiver_law.kind = workload::popularity_kind::zipf;
      else bad("unknown session receiver law '" + law + "'");
      c.session.receiver_law.exponent = get_double(is, "session law exponent");
      c.session.target_sender = get_u32(is, "session target sender");
      c.session.partner = get_u32(is, "session partner");
      const std::string atk = next_token(is, "session attack kind");
      const auto parsed = attack::parse_attack_kind(atk);
      // Canonical labels only (no CLI aliases like "bayes"): the writer
      // emits attack_kind_label, and write(read(t)) must be byte-identical
      // for any accepted t.
      if (!parsed || attack::attack_kind_label(*parsed) != atk)
        bad("unknown session attack kind '" + atk + "'");
      c.session.attack = *parsed;
      // The never-written default (rounds 0) is rejected so write(read(t))
      // stays byte-identical, same as topology/churn.
      if (!c.session.enabled() ||
          !c.session.valid_for(c.sys.node_count, c.message_count))
        bad("session parameters out of range");
      if (c.mode != routing_mode::source_routed)
        bad("session mode requires source_routed routing");
    } else if (section == "topology") {
      if (saw_topology) bad("duplicate 'topology' section");
      if (saw_churn) bad("'topology' section must precede 'churn'");
      saw_topology = true;
      const std::string kind = next_token(is, "topology kind");
      if (kind == "ring") c.topology.kind = net::topology_kind::ring;
      else if (kind == "regular")
        c.topology.kind = net::topology_kind::random_regular;
      else if (kind == "tiered") c.topology.kind = net::topology_kind::tiered;
      else if (kind == "trust")
        c.topology.kind = net::topology_kind::trust_weighted;
      else bad("unknown topology kind '" + kind + "'");
      c.topology.ring_k = get_u32(is, "topology ring_k");
      c.topology.degree = get_u32(is, "topology degree");
      c.topology.graph_seed = get_u64(is, "topology graph seed");
      c.topology.tiers = get_u32(is, "topology tiers");
      c.topology.trust_decay = get_double(is, "topology trust decay");
      if (!c.topology.valid_for(c.sys.node_count))
        bad("topology parameters out of range for N");
    } else {
      if (saw_churn) bad("duplicate 'churn' section");
      saw_churn = true;
      c.churn.down_rate = get_double(is, "churn down rate");
      c.churn.mean_downtime = get_double(is, "churn mean downtime");
      if (!c.churn.valid() || !c.churn.enabled())
        bad("churn parameters out of range");
    }
    section = next_token(is, "compromised");
  }
  if (section != "compromised")
    bad("expected 'compromised', found '" + section + "'");
  // Same combination rule run_core enforces: gapped (timing-correlator)
  // observations have no restricted-path likelihood, so a trace claiming
  // both is invalid input, not an engine-internal contract violation.
  if (c.topology.kind != net::topology_kind::complete &&
      c.adversary.kind == adversary_kind::timing_correlator)
    bad("timing_correlator adversary is not supported on a restricted topology");
  const std::uint32_t effective_comp = get_u32(is, "effective compromised size");
  if (effective_comp > c.sys.node_count) bad("effective compromised size > N");
  trace.compromised.resize(effective_comp);
  for (node_id& id : trace.compromised) {
    id = get_u32(is, "effective compromised id");
    if (id >= c.sys.node_count) bad("compromised id out of range");
  }

  expect_keyword(is, "events");
  const std::uint32_t event_count = get_u32(is, "event count");
  // Grow incrementally: a corrupted count then hits "truncated stream" on
  // the first missing entry instead of pre-allocating gigabytes.
  trace.events.reserve(std::min<std::uint32_t>(event_count, 1u << 20));
  for (std::uint32_t i = 0; i < event_count; ++i) {
    adversary_event e;
    const std::string tag = next_token(is, "event tag");
    e.msg = get_u64(is, "event message id");
    if (tag == "O") {
      e.type = adversary_event::kind::origin;
      e.reporter = get_u32(is, "origin sender");
    } else if (tag == "T") {
      e.type = adversary_event::kind::relay;
      e.at = get_double(is, "relay capture time");
      e.reporter = get_u32(is, "relay reporter");
      e.predecessor = get_u32(is, "relay predecessor");
      e.successor = get_u32(is, "relay successor");
    } else if (tag == "R") {
      e.type = adversary_event::kind::receipt;
      e.at = get_double(is, "receipt time");
      e.predecessor = get_u32(is, "receipt predecessor");
    } else {
      bad("unknown event tag '" + tag + "'");
    }
    trace.events.push_back(e);
  }

  expect_keyword(is, "truths");
  const std::uint32_t truth_count = get_u32(is, "truth count");
  if (truth_count > c.message_count) bad("truth count > message count");
  trace.truths.reserve(truth_count);
  for (std::uint32_t i = 0; i < truth_count; ++i) {
    message_truth t;
    expect_keyword(is, "G");
    t.msg = get_u64(is, "truth message id");
    t.outcome.origin = get_u32(is, "truth origin");
    t.outcome.sent_at = get_double(is, "truth sent time");
    t.outcome.delivered_at = get_double(is, "truth delivery time");
    t.outcome.delivered = get_u32(is, "truth delivered flag") != 0;
    t.outcome.hops = get_u32(is, "truth hops");
    trace.truths.push_back(t);
  }

  expect_keyword(is, "end");
  return trace;
}

sim_trace capture_trace(const sim_config& config) {
  sim_trace trace;
  trace.config = config;
  detail::core_result core = detail::run_core(config, &trace.events);
  trace.compromised = core.model->compromised_ids();
  trace.truths.reserve(core.outcomes.size());
  for (const auto& [id, outcome] : core.outcomes)
    trace.truths.push_back(message_truth{id, outcome});
  return trace;
}

namespace {

/// Rebuilds the adversary model a trace captured and feeds it the recorded
/// event stream: post-run state is reproduced exactly, so scoring sees
/// byte-identical observations.
std::unique_ptr<adversary_model> rebuild_model(const sim_trace& trace) {
  ANONPATH_EXPECTS(trace.config.sys.valid());
  std::vector<bool> flags(trace.config.sys.node_count, false);
  for (node_id id : trace.compromised) {
    ANONPATH_EXPECTS(id < flags.size());
    flags[id] = true;
  }
  auto model = make_adversary_model(trace.config.adversary, std::move(flags),
                                    trace.config.latency);
  for (const adversary_event& e : trace.events) {
    switch (e.type) {
      case adversary_event::kind::origin:
        model->note_origin(e.msg, e.reporter);
        break;
      case adversary_event::kind::relay:
        model->note_relay(e.msg, e.at, e.reporter, e.predecessor, e.successor);
        break;
      case adversary_event::kind::receipt:
        model->note_receipt(e.msg, e.at, e.predecessor);
        break;
    }
  }
  return model;
}

sim_report replay_impl(const sim_trace& trace, const posterior_fn* engine) {
  const auto model = rebuild_model(trace);
  std::map<std::uint64_t, message_outcome> outcomes;
  for (const message_truth& t : trace.truths) outcomes.emplace(t.msg, t.outcome);
  return detail::score_run(trace.config, *model, outcomes, engine);
}

}  // namespace

sim_report replay_trace(const sim_trace& trace) {
  return replay_impl(trace, nullptr);
}

sim_report replay_trace(const sim_trace& trace, const posterior_fn& engine) {
  ANONPATH_EXPECTS(static_cast<bool>(engine));
  return replay_impl(trace, &engine);
}

}  // namespace anonpath::sim
