#include "src/sim/trace.hpp"

#include <bit>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

#include "src/stats/contract.hpp"
#include "src/stats/error.hpp"
#include "src/stats/kahan.hpp"

namespace anonpath::sim {

namespace {

constexpr char magic[] = "anonpath-trace";

/// Doubles travel as IEEE-754 bit patterns: exact round-trip, deterministic
/// rendering, no locale or precision pitfalls.
void put_double(std::ostream& os, double x) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, std::bit_cast<std::uint64_t>(x));
  os << buf;
}

[[noreturn]] void bad(parse_error_kind kind, const std::string& what) {
  throw parse_error(kind, "trace", what);
}

[[noreturn]] void bad(const std::string& what) {
  bad(parse_error_kind::malformed, what);
}

std::string next_token(std::istream& is, const char* context) {
  std::string tok;
  if (!(is >> tok))
    bad(parse_error_kind::truncated,
        std::string("truncated stream reading ") + context);
  return tok;
}

double get_double(std::istream& is, const char* context) {
  const std::string tok = next_token(is, context);
  if (tok.size() != 16) bad(std::string("malformed double for ") + context);
  std::uint64_t bits = 0;
  for (char c : tok) {
    int digit;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
    else bad(std::string("malformed double for ") + context);
    bits = (bits << 4) | static_cast<std::uint64_t>(digit);
  }
  return std::bit_cast<double>(bits);
}

std::uint64_t get_u64(std::istream& is, const char* context) {
  const std::string tok = next_token(is, context);
  // std::stoull alone would accept "-1"/"+1" with wraparound; a trace that
  // visually says one thing must never silently parse as another.
  if (tok.empty() || tok[0] < '0' || tok[0] > '9')
    bad(std::string("malformed integer for ") + context);
  try {
    std::size_t used = 0;
    const std::uint64_t v = std::stoull(tok, &used);
    if (used != tok.size()) bad(std::string("malformed integer for ") + context);
    return v;
  } catch (const parse_error&) {
    throw;
  } catch (const std::invalid_argument&) {
    bad(std::string("malformed integer for ") + context);
  } catch (const std::out_of_range&) {
    bad(parse_error_kind::out_of_range,
        std::string("integer out of range for ") + context);
  }
}

std::uint32_t get_u32(std::istream& is, const char* context) {
  const std::uint64_t v = get_u64(is, context);
  if (v > 0xFFFFFFFFull)
    bad(parse_error_kind::out_of_range,
        std::string("integer out of range for ") + context);
  return static_cast<std::uint32_t>(v);
}

void expect_keyword(std::istream& is, const char* keyword) {
  const std::string tok = next_token(is, keyword);
  if (tok != keyword)
    bad("expected '" + std::string(keyword) + "', found '" + tok + "'");
}

/// Untrusted counts never become allocations: reserve at most this many
/// slots up front and let push_back grow past it — a lying count then hits
/// "truncated stream" on the first missing entry instead of pre-allocating
/// gigabytes.
constexpr std::uint32_t max_reserve = 1u << 20;

/// The format is whitespace-delimited, so free-text fields (the strategy
/// label) must collapse to a single token on the wire.
std::string tokenize_label(const std::string& label) {
  std::string out = label.empty() ? std::string("Custom") : label;
  for (char& c : out)
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') c = '_';
  return out;
}

}  // namespace

void write_trace(const sim_trace& trace, std::ostream& os) {
  const sim_config& c = trace.config;
  os << magic << " v" << sim_trace::format_version << '\n';
  os << "sys " << c.sys.node_count << ' ' << c.sys.compromised_count << '\n';
  os << "compromised-config " << c.compromised.size();
  for (node_id id : c.compromised) os << ' ' << id;
  os << '\n';
  const auto& pmf = c.lengths.dense_pmf();
  os << "dist " << tokenize_label(c.lengths.label()) << ' ' << pmf.size();
  for (double p : pmf) {
    os << ' ';
    put_double(os, p);
  }
  os << '\n';
  os << "mode "
     << (c.mode == routing_mode::source_routed ? "source_routed" : "hop_by_hop")
     << '\n';
  os << "forward ";
  put_double(os, c.forward_prob);
  os << '\n';
  os << "messages " << c.message_count << '\n';
  os << "rate ";
  put_double(os, c.arrival_rate);
  os << '\n';
  os << "latency ";
  put_double(os, c.latency.base);
  os << ' ';
  put_double(os, c.latency.jitter);
  os << ' ';
  put_double(os, c.latency.processing);
  os << '\n';
  os << "drop ";
  put_double(os, c.faults.drop_probability);
  os << '\n';
  os << "seed " << c.seed << '\n';
  os << "adversary " << adversary_kind_label(c.adversary.kind) << ' ';
  put_double(os, c.adversary.coverage_fraction);
  os << ' ' << (c.adversary.receiver_compromised ? 1 : 0) << '\n';
  os << "threshold ";
  put_double(os, c.identified_threshold);
  os << '\n';
  os << "collect " << (c.collect_posteriors ? 1 : 0) << '\n';
  // Session, topology and churn ride as optional extension lines, written
  // only when they differ from the historical defaults: every pre-extension
  // config still serializes byte-identically (the committed golden trace
  // pins this), and absent lines parse back to the defaults.
  if (c.session.enabled()) {
    os << "session " << c.session.rounds << ' ' << c.session.receiver_count
       << ' '
       << (c.session.receiver_law.kind == workload::popularity_kind::uniform
               ? "uniform"
               : "zipf")
       << ' ';
    put_double(os, c.session.receiver_law.exponent);
    os << ' ' << c.session.target_sender << ' ' << c.session.partner << ' '
       << attack::attack_kind_label(c.session.attack) << '\n';
  }
  // Additive: the exact (historical) backend writes no line, so every
  // pre-streaming trace stays byte-identical.
  if (c.session.stream != workload::stream_backend::exact)
    os << "stream " << workload::stream_backend_label(c.session.stream)
       << '\n';
  if (c.topology.kind != net::topology_kind::complete) {
    os << "topology " << topology_kind_name(c.topology.kind) << ' '
       << c.topology.ring_k << ' ' << c.topology.degree << ' '
       << c.topology.graph_seed << ' ' << c.topology.tiers << ' ';
    put_double(os, c.topology.trust_decay);
    os << '\n';
  }
  if (c.faults.churn.enabled()) {
    os << "churn ";
    put_double(os, c.faults.churn.down_rate);
    os << ' ';
    put_double(os, c.faults.churn.mean_downtime);
    os << '\n';
  }
  // Fault-plan and retry extensions, same additive discipline as the
  // sections above: absent for the historical defaults, so every
  // pre-fault-plan config still serializes byte-identically.
  if (!c.faults.outages.empty()) {
    os << "outages " << c.faults.outages.size() << '\n';
    for (const net::outage& o : c.faults.outages) {
      os << "E " << o.node << ' ';
      put_double(os, o.start);
      os << ' ';
      put_double(os, o.duration);
      os << '\n';
    }
  }
  if (c.faults.mix_failures.enabled()) {
    os << "mixfail " << c.faults.mix_failures.count << ' ';
    put_double(os, c.faults.mix_failures.horizon);
    os << ' ';
    put_double(os, c.faults.mix_failures.mean_duration);
    os << '\n';
  }
  if (c.retry.enabled()) {
    os << "retry " << c.retry.max_retries << ' ';
    put_double(os, c.retry.timeout);
    os << ' ';
    put_double(os, c.retry.backoff);
    os << ' ';
    put_double(os, c.retry.max_timeout);
    os << '\n';
  }
  // Planned-routing extension: absent for the default walk model, so every
  // pre-routing config still serializes byte-identically.
  if (c.routing.planned())
    os << "routing kpaths " << c.routing.k << '\n';
  os << "compromised " << trace.compromised.size();
  for (node_id id : trace.compromised) os << ' ' << id;
  os << '\n';
  // Written exactly when the retry policy is on (possibly with zero
  // realized retransmissions), so write(read(t)) stays byte-identical
  // both with and without the section.
  if (c.retry.enabled()) {
    os << "attempts " << trace.attempts.size() << '\n';
    for (const auto& [id, parent] : trace.attempts)
      os << "A " << id << ' ' << parent << '\n';
  }
  os << "events " << trace.events.size() << '\n';
  for (const adversary_event& e : trace.events) {
    switch (e.type) {
      case adversary_event::kind::origin:
        os << "O " << e.msg << ' ' << e.reporter << '\n';
        break;
      case adversary_event::kind::relay:
        os << "T " << e.msg << ' ';
        put_double(os, e.at);
        os << ' ' << e.reporter << ' ' << e.predecessor << ' ' << e.successor
           << '\n';
        break;
      case adversary_event::kind::receipt:
        os << "R " << e.msg << ' ';
        put_double(os, e.at);
        os << ' ' << e.predecessor << '\n';
        break;
    }
  }
  os << "truths " << trace.truths.size() << '\n';
  for (const message_truth& t : trace.truths) {
    os << "G " << t.msg << ' ' << t.outcome.origin << ' ';
    put_double(os, t.outcome.sent_at);
    os << ' ';
    put_double(os, t.outcome.delivered_at);
    os << ' ' << (t.outcome.delivered ? 1 : 0) << ' ' << t.outcome.hops
       << '\n';
  }
  os << "end\n";
}

sim_trace read_trace(std::istream& is) {
  sim_trace trace;
  sim_config& c = trace.config;

  const std::string head = next_token(is, "magic");
  if (head != magic)
    bad(parse_error_kind::mismatch,
        "not an anonpath trace (bad magic '" + head + "')");
  const std::string version = next_token(is, "version");
  const std::string want = "v" + std::to_string(sim_trace::format_version);
  if (version != want)
    bad(parse_error_kind::version_mismatch,
        "format version mismatch: file has '" + version +
            "', this build reads '" + want + "'");

  expect_keyword(is, "sys");
  c.sys.node_count = get_u32(is, "node count");
  c.sys.compromised_count = get_u32(is, "compromised count");
  if (!c.sys.valid())
    bad(parse_error_kind::out_of_range, "system parameters out of range");

  expect_keyword(is, "compromised-config");
  const std::uint32_t config_comp = get_u32(is, "configured compromised size");
  if (config_comp > c.sys.node_count)
    bad(parse_error_kind::out_of_range, "configured compromised size > N");
  if (config_comp != c.sys.compromised_count)
    bad(parse_error_kind::out_of_range,
        "configured compromised size does not match C");
  c.compromised.clear();
  c.compromised.reserve(std::min(config_comp, max_reserve));
  for (std::uint32_t i = 0; i < config_comp; ++i) {
    const node_id id = get_u32(is, "configured compromised id");
    if (id >= c.sys.node_count)
      bad(parse_error_kind::out_of_range,
          "configured compromised id out of range");
    c.compromised.push_back(id);
  }

  expect_keyword(is, "dist");
  const std::string dist_label = next_token(is, "distribution label");
  const std::uint32_t pmf_size = get_u32(is, "pmf size");
  // Support always fits simple paths, so a count past N is corruption, not
  // data — and must not become a giant allocation.
  if (pmf_size == 0) bad("empty length distribution");
  if (pmf_size > c.sys.node_count)
    bad(parse_error_kind::out_of_range, "pmf size > N");
  std::vector<double> pmf;
  pmf.reserve(std::min(pmf_size, max_reserve));
  stats::kahan_sum pmf_sum;  // same accumulator the ctor contract uses
  for (std::uint32_t i = 0; i < pmf_size; ++i) {
    const double p = get_double(is, "pmf entry");
    // Pre-validated here so hostile bytes surface as parse_error, never as
    // the distribution constructor's contract violation.
    if (!(std::isfinite(p) && p >= 0.0))
      bad(parse_error_kind::out_of_range, "pmf entry out of range");
    pmf_sum.add(p);
    pmf.push_back(p);
  }
  if (!(std::fabs(pmf_sum.value() - 1.0) < 1e-9))
    bad(parse_error_kind::out_of_range, "pmf does not sum to 1");
  c.lengths = path_length_distribution::from_pmf(std::move(pmf), dist_label);

  expect_keyword(is, "mode");
  const std::string mode = next_token(is, "mode");
  if (mode == "source_routed") c.mode = routing_mode::source_routed;
  else if (mode == "hop_by_hop") c.mode = routing_mode::hop_by_hop;
  else bad("unknown routing mode '" + mode + "'");

  expect_keyword(is, "forward");
  c.forward_prob = get_double(is, "forward probability");
  if (!(std::isfinite(c.forward_prob) && c.forward_prob >= 0.0 &&
        c.forward_prob <= 1.0))
    bad(parse_error_kind::out_of_range, "forward probability out of range");
  expect_keyword(is, "messages");
  c.message_count = get_u32(is, "message count");
  if (c.message_count == 0)
    bad(parse_error_kind::out_of_range, "message count must be positive");
  expect_keyword(is, "rate");
  c.arrival_rate = get_double(is, "arrival rate");
  if (!(std::isfinite(c.arrival_rate) && c.arrival_rate > 0.0))
    bad(parse_error_kind::out_of_range, "arrival rate out of range");
  expect_keyword(is, "latency");
  c.latency.base = get_double(is, "latency base");
  c.latency.jitter = get_double(is, "latency jitter");
  c.latency.processing = get_double(is, "latency processing");
  if (!c.latency.valid() || !std::isfinite(c.latency.base) ||
      !std::isfinite(c.latency.jitter) || !std::isfinite(c.latency.processing))
    bad(parse_error_kind::out_of_range, "latency parameters out of range");
  expect_keyword(is, "drop");
  c.faults.drop_probability = get_double(is, "drop probability");
  if (!(std::isfinite(c.faults.drop_probability) &&
        c.faults.drop_probability >= 0.0 && c.faults.drop_probability < 1.0))
    bad(parse_error_kind::out_of_range, "drop probability out of range");
  expect_keyword(is, "seed");
  c.seed = get_u64(is, "seed");

  expect_keyword(is, "adversary");
  const std::string kind = next_token(is, "adversary kind");
  if (kind == "full_coalition") c.adversary.kind = adversary_kind::full_coalition;
  else if (kind == "partial_coverage")
    c.adversary.kind = adversary_kind::partial_coverage;
  else if (kind == "timing_correlator")
    c.adversary.kind = adversary_kind::timing_correlator;
  else bad("unknown adversary kind '" + kind + "'");
  c.adversary.coverage_fraction = get_double(is, "coverage fraction");
  c.adversary.receiver_compromised = get_u32(is, "receiver flag") != 0;
  if (!c.adversary.valid() || !std::isfinite(c.adversary.coverage_fraction))
    bad(parse_error_kind::out_of_range, "adversary parameters out of range");

  expect_keyword(is, "threshold");
  c.identified_threshold = get_double(is, "identified threshold");
  if (!(std::isfinite(c.identified_threshold) &&
        c.identified_threshold >= 0.0 && c.identified_threshold <= 1.0))
    bad(parse_error_kind::out_of_range, "identified threshold out of range");
  expect_keyword(is, "collect");
  c.collect_posteriors = get_u32(is, "collect flag") != 0;

  // Optional extension lines (absent = historical defaults). The grammar
  // stays one-to-one with the writer: each section at most once, in writer
  // order, and the never-written defaults ("topology complete", churn rate
  // 0, empty outage list, retry budget 0) are rejected so write(read(t))
  // is byte-identical to any accepted t. Section order is pinned by rank —
  // a duplicate is just a rank that does not increase.
  const auto section_rank = [](const std::string& s) -> int {
    if (s == "session") return 0;
    if (s == "stream") return 1;
    if (s == "topology") return 2;
    if (s == "churn") return 3;
    if (s == "outages") return 4;
    if (s == "mixfail") return 5;
    if (s == "retry") return 6;
    if (s == "routing") return 7;
    return -1;
  };
  int last_rank = -1;
  std::string section = next_token(is, "compromised");
  while (section_rank(section) >= 0) {
    const int rank = section_rank(section);
    if (rank <= last_rank)
      bad("'" + section + "' section is duplicated or out of order");
    last_rank = rank;
    if (section == "session") {
      c.session.rounds = get_u32(is, "session rounds");
      c.session.receiver_count = get_u32(is, "session receiver count");
      const std::string law = next_token(is, "session receiver law");
      if (law == "uniform")
        c.session.receiver_law.kind = workload::popularity_kind::uniform;
      else if (law == "zipf")
        c.session.receiver_law.kind = workload::popularity_kind::zipf;
      else bad("unknown session receiver law '" + law + "'");
      c.session.receiver_law.exponent = get_double(is, "session law exponent");
      c.session.target_sender = get_u32(is, "session target sender");
      c.session.partner = get_u32(is, "session partner");
      const std::string atk = next_token(is, "session attack kind");
      const auto parsed = attack::parse_attack_kind(atk);
      // Canonical labels only (no CLI aliases like "bayes"): the writer
      // emits attack_kind_label, and write(read(t)) must be byte-identical
      // for any accepted t.
      if (!parsed || attack::attack_kind_label(*parsed) != atk)
        bad("unknown session attack kind '" + atk + "'");
      c.session.attack = *parsed;
      // The never-written default (rounds 0) is rejected so write(read(t))
      // stays byte-identical, same as topology/churn.
      if (!c.session.enabled() ||
          !c.session.valid_for(c.sys.node_count, c.message_count))
        bad(parse_error_kind::out_of_range, "session parameters out of range");
      if (c.mode != routing_mode::source_routed)
        bad(parse_error_kind::out_of_range,
            "session mode requires source_routed routing");
    } else if (section == "stream") {
      const std::string backend = next_token(is, "stream backend");
      const auto parsed = workload::parse_stream_backend(backend);
      // The never-written default ("exact") is rejected so write(read(t))
      // stays byte-identical, same as the other extension sections.
      if (!parsed || *parsed == workload::stream_backend::exact)
        bad("unknown stream backend '" + backend + "'");
      c.session.stream = *parsed;
      if (!c.session.valid_for(c.sys.node_count, c.message_count))
        bad(parse_error_kind::out_of_range,
            "stream backend requires an sda session");
    } else if (section == "topology") {
      const std::string kind = next_token(is, "topology kind");
      if (kind == "ring") c.topology.kind = net::topology_kind::ring;
      else if (kind == "regular")
        c.topology.kind = net::topology_kind::random_regular;
      else if (kind == "tiered") c.topology.kind = net::topology_kind::tiered;
      else if (kind == "trust")
        c.topology.kind = net::topology_kind::trust_weighted;
      else bad("unknown topology kind '" + kind + "'");
      c.topology.ring_k = get_u32(is, "topology ring_k");
      c.topology.degree = get_u32(is, "topology degree");
      c.topology.graph_seed = get_u64(is, "topology graph seed");
      c.topology.tiers = get_u32(is, "topology tiers");
      c.topology.trust_decay = get_double(is, "topology trust decay");
      if (!c.topology.valid_for(c.sys.node_count))
        bad(parse_error_kind::out_of_range,
            "topology parameters out of range for N");
    } else if (section == "churn") {
      c.faults.churn.down_rate = get_double(is, "churn down rate");
      c.faults.churn.mean_downtime = get_double(is, "churn mean downtime");
      if (!std::isfinite(c.faults.churn.down_rate) ||
          !std::isfinite(c.faults.churn.mean_downtime) ||
          !c.faults.churn.valid() || !c.faults.churn.enabled())
        bad(parse_error_kind::out_of_range, "churn parameters out of range");
    } else if (section == "outages") {
      const std::uint32_t outage_count = get_u32(is, "outage count");
      if (outage_count == 0)
        bad(parse_error_kind::out_of_range, "empty outages section");
      c.faults.outages.reserve(std::min(outage_count, max_reserve));
      for (std::uint32_t i = 0; i < outage_count; ++i) {
        expect_keyword(is, "E");
        net::outage o;
        o.node = get_u32(is, "outage node");
        o.start = get_double(is, "outage start");
        o.duration = get_double(is, "outage duration");
        if (o.node >= c.sys.node_count)
          bad(parse_error_kind::out_of_range, "outage node out of range");
        if (!o.valid())
          bad(parse_error_kind::out_of_range, "outage interval out of range");
        c.faults.outages.push_back(o);
      }
    } else if (section == "mixfail") {
      c.faults.mix_failures.count = get_u32(is, "mix failure count");
      c.faults.mix_failures.horizon = get_double(is, "mix failure horizon");
      c.faults.mix_failures.mean_duration =
          get_double(is, "mix failure mean duration");
      if (!c.faults.mix_failures.enabled() || !c.faults.mix_failures.valid())
        bad(parse_error_kind::out_of_range,
            "mix failure parameters out of range");
    } else if (section == "retry") {
      c.retry.max_retries = get_u32(is, "retry budget");
      c.retry.timeout = get_double(is, "retry timeout");
      c.retry.backoff = get_double(is, "retry backoff");
      c.retry.max_timeout = get_double(is, "retry timeout cap");
      if (!c.retry.enabled() || !c.retry.valid())
        bad(parse_error_kind::out_of_range, "retry parameters out of range");
    } else {  // routing
      // Only the non-default kind is ever written ("walk" is rejected so
      // write(read(t)) stays byte-identical), and planned routes exist
      // only in source-routed mode.
      const std::string route_kind = next_token(is, "routing kind");
      if (route_kind != "kpaths")
        bad("unknown routing kind '" + route_kind + "'");
      c.routing.kind = net::route_select::kpaths;
      c.routing.k = get_u32(is, "routing k");
      if (!c.routing.valid())
        bad(parse_error_kind::out_of_range, "routing k out of range");
      if (c.mode != routing_mode::source_routed)
        bad(parse_error_kind::out_of_range,
            "planned routing requires source_routed mode");
    }
    section = next_token(is, "compromised");
  }
  if (section != "compromised")
    bad("expected 'compromised', found '" + section + "'");
  // Same combination rule run_core enforces: gapped (timing-correlator)
  // observations have no restricted-path likelihood, so a trace claiming
  // both is invalid input, not an engine-internal contract violation.
  if (c.topology.kind != net::topology_kind::complete &&
      c.adversary.kind == adversary_kind::timing_correlator)
    bad(parse_error_kind::out_of_range,
        "timing_correlator adversary is not supported on a restricted topology");
  if (c.routing.planned() &&
      c.adversary.kind == adversary_kind::timing_correlator)
    bad(parse_error_kind::out_of_range,
        "timing_correlator adversary is not supported with planned routing");
  const std::uint32_t effective_comp = get_u32(is, "effective compromised size");
  if (effective_comp > c.sys.node_count)
    bad(parse_error_kind::out_of_range, "effective compromised size > N");
  trace.compromised.reserve(std::min(effective_comp, max_reserve));
  for (std::uint32_t i = 0; i < effective_comp; ++i) {
    const node_id id = get_u32(is, "effective compromised id");
    if (id >= c.sys.node_count)
      bad(parse_error_kind::out_of_range, "compromised id out of range");
    trace.compromised.push_back(id);
  }

  // The attempt map rides exactly when the retry policy is on: ids are
  // strictly ascending (unique, byte-stable rewrite), live strictly above
  // the original 1..message_count range, and point back into it.
  if (c.retry.enabled()) {
    expect_keyword(is, "attempts");
    const std::uint32_t attempt_count = get_u32(is, "attempt count");
    std::uint64_t last_attempt = c.message_count;
    for (std::uint32_t i = 0; i < attempt_count; ++i) {
      expect_keyword(is, "A");
      const std::uint64_t id = get_u64(is, "attempt id");
      const std::uint64_t parent = get_u64(is, "attempt parent");
      if (id <= last_attempt)
        bad(parse_error_kind::out_of_range,
            "attempt ids must ascend past the message count");
      if (parent < 1 || parent > c.message_count)
        bad(parse_error_kind::out_of_range, "attempt parent out of range");
      last_attempt = id;
      trace.attempts.emplace(id, parent);
    }
  }

  expect_keyword(is, "events");
  const std::uint32_t event_count = get_u32(is, "event count");
  // Grow incrementally: a corrupted count then hits "truncated stream" on
  // the first missing entry instead of pre-allocating gigabytes.
  trace.events.reserve(std::min(event_count, max_reserve));
  // Node ids inside events index posterior-engine arrays of size N during
  // replay, so every one is range-checked here — hostile bytes must never
  // become an out-of-bounds index downstream.
  const auto check_node = [&](node_id v, const char* what) {
    if (v >= c.sys.node_count)
      bad(parse_error_kind::out_of_range, std::string(what) + " out of range");
  };
  const auto check_msg = [&](std::uint64_t msg) {
    if (msg >= 1 && msg <= c.message_count) return;
    if (trace.attempts.find(msg) != trace.attempts.end()) return;
    bad(parse_error_kind::out_of_range, "event message id out of range");
  };
  for (std::uint32_t i = 0; i < event_count; ++i) {
    adversary_event e;
    const std::string tag = next_token(is, "event tag");
    e.msg = get_u64(is, "event message id");
    check_msg(e.msg);
    if (tag == "O") {
      e.type = adversary_event::kind::origin;
      e.reporter = get_u32(is, "origin sender");
      check_node(e.reporter, "origin sender");
    } else if (tag == "T") {
      e.type = adversary_event::kind::relay;
      e.at = get_double(is, "relay capture time");
      e.reporter = get_u32(is, "relay reporter");
      e.predecessor = get_u32(is, "relay predecessor");
      e.successor = get_u32(is, "relay successor");
      check_node(e.reporter, "relay reporter");
      check_node(e.predecessor, "relay predecessor");
      if (e.successor != receiver_node)
        check_node(e.successor, "relay successor");
    } else if (tag == "R") {
      e.type = adversary_event::kind::receipt;
      e.at = get_double(is, "receipt time");
      e.predecessor = get_u32(is, "receipt predecessor");
      check_node(e.predecessor, "receipt predecessor");
    } else {
      bad("unknown event tag '" + tag + "'");
    }
    trace.events.push_back(e);
  }

  expect_keyword(is, "truths");
  const std::uint32_t truth_count = get_u32(is, "truth count");
  if (truth_count > c.message_count)
    bad(parse_error_kind::out_of_range, "truth count > message count");
  // Session-attack scoring consumes exactly one truth per message; accept
  // only traces that satisfy its contract.
  if (c.session.enabled() && c.session.attack != attack::attack_kind::none &&
      truth_count != c.message_count)
    bad(parse_error_kind::out_of_range,
        "session scoring requires one truth per message");
  trace.truths.reserve(std::min(truth_count, max_reserve));
  std::uint64_t last_truth = 0;
  for (std::uint32_t i = 0; i < truth_count; ++i) {
    message_truth t;
    expect_keyword(is, "G");
    t.msg = get_u64(is, "truth message id");
    // Strictly ascending, like the writer emits: rejects duplicates in
    // O(1) and keeps write(read(t)) byte-identical.
    if (t.msg <= last_truth || t.msg > c.message_count)
      bad(parse_error_kind::out_of_range, "truth message id out of range");
    last_truth = t.msg;
    t.outcome.origin = get_u32(is, "truth origin");
    check_node(t.outcome.origin, "truth origin");
    t.outcome.sent_at = get_double(is, "truth sent time");
    t.outcome.delivered_at = get_double(is, "truth delivery time");
    t.outcome.delivered = get_u32(is, "truth delivered flag") != 0;
    t.outcome.hops = get_u32(is, "truth hops");
    trace.truths.push_back(t);
  }

  expect_keyword(is, "end");
  return trace;
}

sim_trace capture_trace(const sim_config& config) {
  sim_trace trace;
  trace.config = config;
  detail::core_result core = detail::run_core(config, &trace.events);
  trace.compromised = core.model->compromised_ids();
  trace.truths.reserve(core.outcomes.size());
  for (const auto& [id, outcome] : core.outcomes)
    trace.truths.push_back(message_truth{id, outcome});
  trace.attempts = std::move(core.attempt_parent);
  return trace;
}

namespace {

/// Rebuilds the adversary model a trace captured and feeds it the recorded
/// event stream: post-run state is reproduced exactly, so scoring sees
/// byte-identical observations.
std::unique_ptr<adversary_model> rebuild_model(const sim_trace& trace) {
  ANONPATH_EXPECTS(trace.config.sys.valid());
  std::vector<bool> flags(trace.config.sys.node_count, false);
  for (node_id id : trace.compromised) {
    ANONPATH_EXPECTS(id < flags.size());
    flags[id] = true;
  }
  auto model = make_adversary_model(trace.config.adversary, std::move(flags),
                                    trace.config.latency);
  for (const adversary_event& e : trace.events) {
    switch (e.type) {
      case adversary_event::kind::origin:
        model->note_origin(e.msg, e.reporter);
        break;
      case adversary_event::kind::relay:
        model->note_relay(e.msg, e.at, e.reporter, e.predecessor, e.successor);
        break;
      case adversary_event::kind::receipt:
        model->note_receipt(e.msg, e.at, e.predecessor);
        break;
    }
  }
  return model;
}

sim_report replay_impl(const sim_trace& trace, const posterior_fn* engine) {
  const auto model = rebuild_model(trace);
  std::map<std::uint64_t, message_outcome> outcomes;
  for (const message_truth& t : trace.truths) outcomes.emplace(t.msg, t.outcome);
  return detail::score_run(trace.config, *model, outcomes, engine, nullptr,
                           &trace.attempts);
}

}  // namespace

sim_report replay_trace(const sim_trace& trace) {
  return replay_impl(trace, nullptr);
}

sim_report replay_trace(const sim_trace& trace, const posterior_fn& engine) {
  ANONPATH_EXPECTS(static_cast<bool>(engine));
  return replay_impl(trace, &engine);
}

}  // namespace anonpath::sim
