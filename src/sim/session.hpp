#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/anonymity/types.hpp"
#include "src/attack/disclosure.hpp"
#include "src/workload/population.hpp"
#include "src/workload/streaming.hpp"

namespace anonpath::sim {

/// Round-batched session mode: opens the time axis inside the simulator.
/// The message workload is partitioned into `rounds` consecutive threshold
/// batches; every message is addressed to a pseudonymous destination in a
/// receiver population of `receiver_count` mailboxes behind the mix exit —
/// background senders draw theirs from `receiver_law`, while the tracked
/// `target_sender` always writes to `partner` (the persistent relationship
/// under attack). Destinations are metadata riding on the existing traffic:
/// routing, latency, and every rng draw of the historical pipeline are
/// untouched, so a disabled session (`rounds == 0`, the default) is
/// byte-identical to pre-session behavior and an enabled one reuses the
/// run's exact per-message adversary observations as fusion evidence.
struct session_config {
  std::uint32_t rounds = 0;          ///< 0 = disabled (historical behavior)
  std::uint32_t receiver_count = 0;  ///< pseudonym population (>= 2 if enabled)
  workload::popularity_law receiver_law{};
  node_id target_sender = 0;         ///< the persistent sender under attack
  std::uint32_t partner = 0;         ///< their fixed destination pseudonym
  /// Longitudinal engine run by scoring; `none` records destinations only.
  attack::attack_kind attack = attack::attack_kind::none;
  /// Engine state backend for the scoring attack. `sketch` (sublinear
  /// memory, count-min + candidate reservoir) is available for the
  /// counting attack (sda) only; `exact` (the default) is byte-identical
  /// to pre-streaming behavior on every surface.
  workload::stream_backend stream = workload::stream_backend::exact;

  [[nodiscard]] bool enabled() const noexcept { return rounds > 0; }

  [[nodiscard]] bool valid_for(std::uint32_t node_count,
                               std::uint32_t message_count) const noexcept {
    if (!enabled())
      return receiver_count == 0 && attack == attack::attack_kind::none &&
             stream == workload::stream_backend::exact;
    return receiver_count >= 2 && partner < receiver_count &&
           target_sender < node_count && rounds <= message_count &&
           receiver_law.valid() &&
           (stream == workload::stream_backend::exact ||
            attack == attack::attack_kind::sda);
  }

  /// "off" or e.g. "rounds=50;pop=20;sda" — stable CSV/CLI label.
  [[nodiscard]] std::string label() const;

  friend bool operator==(const session_config&,
                         const session_config&) = default;
};

/// What session scoring adds to a sim_report (engaged only when the config
/// enables a session with an attack).
struct session_report {
  std::uint32_t rounds = 0;
  std::uint64_t target_messages = 0;  ///< messages the target actually sent
  /// Final posterior summary over the receiver population.
  double entropy_bits = 0.0;
  double top_mass = 0.0;
  std::uint32_t top_receiver = 0;
  bool identified = false;  ///< top_mass > identified_threshold at the end
  bool correct = false;     ///< top_receiver == config partner
  /// First round whose posterior crossed the threshold; 0 = never (rounds
  /// are 1-based in trajectories). A crossing can be transient — later
  /// inconsistent evidence (loss) may collapse the posterior again — so
  /// consumers wanting "identified, and when" must gate on `identified`,
  /// as the campaign's rounds_to_identify column does.
  std::uint32_t identified_round = 0;
  std::vector<attack::trajectory_point> trajectory;  ///< one point per round
};

/// The destination plan: round index and destination pseudonym per message,
/// indexed by message id - 1 (ids are 1-based). A pure function of
/// (session, seed, per-message origins): the draws run on a dedicated rng
/// stream in message-id order, so capture, inline scoring, and trace replay
/// all reconstruct the identical plan without persisting it.
struct session_assignment {
  std::uint32_t round = 0;
  std::uint32_t destination = 0;
};

/// Preconditions: session.enabled(); origins_by_msg[i] is the origin of
/// message id i+1 and covers every message.
[[nodiscard]] std::vector<session_assignment> assign_session_destinations(
    const session_config& session, std::uint64_t seed,
    std::span<const node_id> origins_by_msg);

/// The lowest-id honest node under the run's *effective* corruption flags
/// (for partial_coverage that is the seeded Bernoulli draw, not the
/// configured list) — the canonical session target, since a compromised
/// persistent sender is identified at submission, which would only flatten
/// the longitudinal curves. Shared by the campaign expansion and the CLI
/// so the two surfaces cannot drift. Degenerate case: if every node drew
/// compromised, returns 0 (the session then only strengthens an adversary
/// that already owns everything; never a crash).
[[nodiscard]] node_id lowest_honest_node(
    const std::vector<bool>& compromised_flags);

/// The canonical partner pseudonym for auto-configured sessions: the
/// mid-population id. Never 0 — summarize_posterior breaks argmax ties
/// toward the smallest id, so a partner pinned at 0 would read "correct"
/// off a completely uninformative (uniform) posterior — and never the
/// Zipf head, which would conflate partnership with popularity.
/// Precondition: receiver_count >= 2.
[[nodiscard]] constexpr std::uint32_t canonical_partner(
    std::uint32_t receiver_count) noexcept {
  return receiver_count / 2;
}

}  // namespace anonpath::sim
