#include "src/sim/relay.hpp"

namespace anonpath::sim {

onion_relay::onion_relay(node_id self, network& net,
                         const crypto::key_registry& keys,
                         double processing_delay, bool compromised,
                         adversary_model* monitor)
    : self_(self),
      net_(net),
      keys_(keys),
      processing_delay_(processing_delay),
      compromised_(compromised),
      monitor_(monitor) {}

void onion_relay::on_message(node_id from, wire_message msg) {
  const auto peeled = crypto::peel_onion(self_, msg.envelope, keys_, msg.id);
  if (compromised_ && monitor_ != nullptr) {
    monitor_->note_relay(msg.id, net_.queue().now(), self_, from, peeled.next);
  }
  ++forwarded_;
  wire_message out;
  out.id = msg.id;
  out.kind = transport_kind::onion;
  out.envelope = peeled.inner;
  const node_id next = peeled.next;
  net_.queue().schedule_in(processing_delay_,
                           [this, next, m = std::move(out)]() mutable {
                             net_.send(self_, next, std::move(m));
                           });
}

crowds_relay::crowds_relay(node_id self, network& net, double processing_delay,
                           bool compromised, adversary_model* monitor,
                           stats::rng gen, const net::topology* topology)
    : self_(self),
      net_(net),
      processing_delay_(processing_delay),
      compromised_(compromised),
      monitor_(monitor),
      gen_(gen),
      topology_(topology) {}

void crowds_relay::on_message(node_id from, wire_message msg) {
  // Flip the coin: forward to another node with probability forward_prob,
  // otherwise submit to the receiver.
  node_id next = receiver_node;
  if (gen_.next_bernoulli(msg.forward_prob)) {
    if (topology_ != nullptr) {
      next = topology_->sample_neighbor(self_, gen_);
    } else {
      auto draw = static_cast<node_id>(gen_.next_below(net_.node_count() - 1));
      if (draw >= self_) ++draw;
      next = draw;
    }
  }
  if (compromised_ && monitor_ != nullptr) {
    monitor_->note_relay(msg.id, net_.queue().now(), self_, from, next);
  }
  const node_id target = next;
  net_.queue().schedule_in(processing_delay_,
                           [this, target, m = std::move(msg)]() mutable {
                             net_.send(self_, target, std::move(m));
                           });
}

}  // namespace anonpath::sim
