#include "src/sim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <string>

#include "src/anonymity/entropy.hpp"
#include "src/anonymity/path_sampler.hpp"
#include "src/anonymity/posterior.hpp"
#include "src/crypto/onion.hpp"
#include "src/sim/adversary.hpp"
#include "src/sim/network.hpp"
#include "src/sim/receiver.hpp"
#include "src/sim/relay.hpp"
#include "src/sim/workload.hpp"
#include "src/stats/contract.hpp"

namespace anonpath::sim {

namespace {

std::vector<std::byte> demo_payload(std::uint64_t msg_id) {
  const std::string text = "message-" + std::to_string(msg_id);
  std::vector<std::byte> out;
  out.reserve(text.size());
  for (char c : text) out.push_back(static_cast<std::byte>(c));
  return out;
}

}  // namespace

sim_report run_simulation(const sim_config& config) {
  ANONPATH_EXPECTS(config.sys.valid());
  ANONPATH_EXPECTS(config.compromised.size() == config.sys.compromised_count);
  ANONPATH_EXPECTS(config.message_count > 0);
  ANONPATH_EXPECTS(config.lengths.max_length() <= config.sys.node_count - 1);

  const auto n = config.sys.node_count;
  std::vector<bool> compromised(n, false);
  for (node_id c : config.compromised) {
    ANONPATH_EXPECTS(c < n);
    compromised[c] = true;
  }

  stats::rng master(config.seed);
  network net(n, config.latency, master.next_u64(), config.drop_probability);
  const crypto::key_registry keys(master.next_u64(), n);
  adversary_monitor monitor(compromised);

  // Build the relay fleet.
  std::vector<std::unique_ptr<message_sink>> relays;
  relays.reserve(n);
  for (node_id i = 0; i < n; ++i) {
    if (config.mode == routing_mode::source_routed) {
      relays.push_back(std::make_unique<onion_relay>(
          i, net, keys, config.latency.processing, compromised[i], &monitor));
    } else {
      relays.push_back(std::make_unique<crowds_relay>(
          i, net, config.latency.processing, compromised[i], &monitor,
          master.split()));
    }
    net.register_node(i, *relays.back());
  }
  receiver_endpoint receiver(net, keys, &monitor);
  net.register_receiver(receiver);

  // Schedule the workload.
  stats::rng traffic = master.split();
  stats::rng routing = master.split();
  const auto arrivals =
      poisson_workload(n, config.arrival_rate, config.message_count, traffic);
  for (const arrival& a : arrivals) {
    net.queue().schedule_at(a.at, [&, a]() {
      net.originate(a.sender, a.at, a.msg_id);
      if (compromised[a.sender]) monitor.note_origin(a.msg_id, a.sender);

      wire_message msg;
      msg.id = a.msg_id;
      if (config.mode == routing_mode::source_routed) {
        const path_length l = config.lengths.sample(routing);
        const route r = sample_simple_route(n, a.sender, l, routing);
        msg.kind = transport_kind::onion;
        msg.envelope = crypto::wrap_onion(r, demo_payload(a.msg_id), keys,
                                          a.msg_id);
        const node_id first = r.hops.empty() ? receiver_node : r.hops.front();
        net.send(a.sender, first, std::move(msg));
      } else {
        msg.kind = transport_kind::crowds;
        msg.payload = demo_payload(a.msg_id);
        msg.forward_prob = config.forward_prob;
        // Hop-by-hop: always at least one jondo, chosen uniformly.
        auto draw = static_cast<node_id>(routing.next_below(n - 1));
        if (draw >= a.sender) ++draw;
        net.send(a.sender, draw, std::move(msg));
      }
    });
  }

  const bool drained = net.queue().run_until_empty();
  ANONPATH_ENSURES(drained);

  // Post-process: metrics + adversary inference.
  sim_report report;
  report.submitted = config.message_count;
  for (const auto& [id, trace] : net.traces()) {
    if (!trace.delivered) continue;
    ++report.delivered;
    report.end_to_end_latency.add(trace.delivered_at - trace.sent_at);
    report.realized_hops.add(static_cast<double>(trace.visited.size()));
  }

  if (config.mode == routing_mode::source_routed) {
    const posterior_engine engine(config.sys, config.compromised,
                                  config.lengths);
    stats::running_summary entropy_acc;
    std::uint64_t identified = 0;
    std::uint64_t top1_hits = 0;
    std::uint64_t scored = 0;
    for (const std::uint64_t id : monitor.delivered_messages()) {
      const auto obs = monitor.assemble(id);
      const auto post = engine.sender_posterior(obs);
      entropy_acc.add(entropy_bits(post));
      if (config.collect_posteriors) report.posteriors.push_back(post);
      const auto top =
          std::max_element(post.begin(), post.end()) - post.begin();
      if (post[static_cast<std::size_t>(top)] > 0.99) ++identified;
      if (static_cast<node_id>(top) == net.traces().at(id).origin) ++top1_hits;
      ++scored;
    }
    if (scored == 0) {
      // Nothing delivered => the adversary observed nothing; reporting 0.0
      // here would read as "all senders identified" and poison campaign
      // aggregates, so the inference metrics are absent, not zero.
      report.empirical_entropy_bits = std::numeric_limits<double>::quiet_NaN();
      report.empirical_entropy_stderr =
          std::numeric_limits<double>::quiet_NaN();
      report.identified_fraction = std::numeric_limits<double>::quiet_NaN();
      report.top1_accuracy = std::numeric_limits<double>::quiet_NaN();
    } else {
      report.empirical_entropy_bits = entropy_acc.mean();
      report.empirical_entropy_stderr = entropy_acc.std_error();
      report.identified_fraction =
          static_cast<double>(identified) / static_cast<double>(scored);
      report.top1_accuracy =
          static_cast<double>(top1_hits) / static_cast<double>(scored);
    }
  } else {
    report.empirical_entropy_bits = std::numeric_limits<double>::quiet_NaN();
    report.empirical_entropy_stderr = std::numeric_limits<double>::quiet_NaN();
  }
  return report;
}

}  // namespace anonpath::sim
