#include "src/sim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <utility>

#include <optional>

#include "src/anonymity/entropy.hpp"
#include "src/anonymity/path_sampler.hpp"
#include "src/anonymity/posterior.hpp"
#include "src/attack/noise.hpp"
#include "src/attack/online.hpp"
#include "src/crypto/onion.hpp"
#include "src/net/approx_posterior.hpp"
#include "src/net/topology_posterior.hpp"
#include "src/sim/network.hpp"
#include "src/sim/receiver.hpp"
#include "src/sim/relay.hpp"
#include "src/sim/workload.hpp"
#include "src/stats/contract.hpp"
#include "src/stats/logspace.hpp"

namespace anonpath::sim {

namespace {

std::vector<std::byte> demo_payload(std::uint64_t msg_id) {
  const std::string text = "message-" + std::to_string(msg_id);
  std::vector<std::byte> out;
  out.reserve(text.size());
  for (char c : text) out.push_back(static_cast<std::byte>(c));
  return out;
}

/// Decorator that appends every adversary-visible event to a log, in
/// arrival order, while forwarding to the wrapped model — the tap
/// sim::trace captures through. Replaying the log into a fresh model of
/// the same kind reproduces the wrapped model's post-run state exactly.
class recording_model final : public adversary_model {
 public:
  recording_model(std::unique_ptr<adversary_model> inner,
                  std::vector<adversary_event>& log)
      : adversary_model(inner->compromised()),
        inner_(std::move(inner)),
        log_(log) {}

  void note_origin(std::uint64_t msg, node_id sender) override {
    log_.push_back(adversary_event{adversary_event::kind::origin, msg, 0.0,
                                   sender, 0, 0});
    inner_->note_origin(msg, sender);
  }
  void note_relay(std::uint64_t msg, sim_time at, node_id reporter,
                  node_id predecessor, node_id successor) override {
    log_.push_back(adversary_event{adversary_event::kind::relay, msg, at,
                                   reporter, predecessor, successor});
    inner_->note_relay(msg, at, reporter, predecessor, successor);
  }
  void note_receipt(std::uint64_t msg, sim_time at,
                    node_id predecessor) override {
    log_.push_back(adversary_event{adversary_event::kind::receipt, msg, at, 0,
                                   predecessor, 0});
    inner_->note_receipt(msg, at, predecessor);
  }
  [[nodiscard]] bool complete(std::uint64_t msg) const override {
    return inner_->complete(msg);
  }
  [[nodiscard]] observation assemble(std::uint64_t msg) const override {
    return inner_->assemble(msg);
  }
  [[nodiscard]] std::vector<std::uint64_t> observed_messages() const override {
    return inner_->observed_messages();
  }
  [[nodiscard]] adversary_kind kind() const noexcept override {
    return inner_->kind();
  }

 private:
  std::unique_ptr<adversary_model> inner_;
  std::vector<adversary_event>& log_;
};

/// Normalized pointwise product of independent per-attempt sender
/// posteriors — the evidence fusion behind "every retransmission is one
/// more observation". Computed in log space for numerical safety. A factor
/// that would annihilate the support entirely (possible only for mislinked
/// timing-correlator chains) is skipped, matching the screening policy for
/// unexplainable single observations: contradictory evidence cannot be
/// normalized, so it carries no weight. Precondition: at least one factor,
/// all the same size, each with some positive mass.
std::vector<double> fuse_attempt_posteriors(
    const std::vector<std::vector<double>>& factors) {
  const std::size_t n = factors.front().size();
  std::vector<double> log_post(n, 0.0);
  std::vector<double> candidate(n);
  for (const std::vector<double>& f : factors) {
    bool has_support = false;
    for (std::size_t i = 0; i < n; ++i) {
      candidate[i] =
          f[i] > 0.0 ? log_post[i] + std::log(f[i]) : stats::log_zero();
      has_support = has_support || candidate[i] > stats::log_zero();
    }
    if (has_support) log_post.swap(candidate);
  }
  const double norm = stats::log_sum_exp(log_post);
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = std::exp(log_post[i] - norm);
  return out;
}

}  // namespace

namespace detail {

core_result run_core(const sim_config& config,
                     std::vector<adversary_event>* event_log) {
  ANONPATH_EXPECTS(config.sys.valid());
  ANONPATH_EXPECTS(config.compromised.size() == config.sys.compromised_count);
  ANONPATH_EXPECTS(config.message_count > 0);
  ANONPATH_EXPECTS(config.lengths.max_length() <= config.sys.node_count - 1);
  ANONPATH_EXPECTS(config.adversary.valid());
  ANONPATH_EXPECTS(config.faults.valid_for(config.sys.node_count));
  ANONPATH_EXPECTS(config.retry.valid());
  ANONPATH_EXPECTS(config.arrival_rate > 0.0);
  // Session destinations are metadata on source-routed traffic; hop-by-hop
  // runs have no per-message inference to fuse with, so the combination is
  // rejected rather than silently scored without evidence.
  ANONPATH_EXPECTS(
      config.session.valid_for(config.sys.node_count, config.message_count));
  ANONPATH_EXPECTS(!config.session.enabled() ||
                   config.mode == routing_mode::source_routed);
  // Planned (kpaths) routing picks whole source-routed paths up front; it
  // has no hop-by-hop analogue, and its observations have no gapped
  // (timing-correlator) likelihood — reject both combinations up front.
  ANONPATH_EXPECTS(config.routing.valid());
  const bool planned = config.routing.planned();
  ANONPATH_EXPECTS(!planned || config.mode == routing_mode::source_routed);
  ANONPATH_EXPECTS(!planned ||
                   config.adversary.kind != adversary_kind::timing_correlator);

  const auto n = config.sys.node_count;
  // A restricted topology switches routing to the walk model; `complete`
  // must stay byte-for-byte the historical clique path, so it never even
  // builds a graph object — unless routing is planned, in which case the
  // planner needs a materialized graph even for the clique (the fabric then
  // also asserts every planned hop follows an edge). Gapped
  // (timing-correlator) observations have no restricted-path likelihood —
  // reject the combination up front rather than score garbage.
  const bool restricted = config.topology.kind != net::topology_kind::complete;
  ANONPATH_EXPECTS(config.topology.valid_for(n));
  ANONPATH_EXPECTS(!restricted ||
                   config.adversary.kind != adversary_kind::timing_correlator);
  std::optional<net::topology> topo;
  if (restricted || planned) topo.emplace(net::topology::make(n, config.topology));
  const net::topology* graph = topo ? &*topo : nullptr;
  std::optional<net::route_planner> planner;
  if (planned) planner.emplace(*graph, config.routing);

  const std::vector<bool> compromised = effective_compromised(
      config.adversary, n, config.compromised, config.seed);

  std::unique_ptr<adversary_model> model =
      make_adversary_model(config.adversary, compromised, config.latency);
  if (event_log != nullptr)
    model = std::make_unique<recording_model>(std::move(model), *event_log);
  adversary_model& monitor = *model;

  stats::rng master(config.seed);
  // Auto-horizon for seeded mix-failure episodes: the run's expected
  // traffic span, so incidents land where traffic actually flows.
  const double fault_horizon =
      static_cast<double>(config.message_count) / config.arrival_rate;
  network net(n, config.latency, master.next_u64(), config.faults, graph,
              fault_horizon);
  const crypto::key_registry keys(master.next_u64(), n);

  // Build the relay fleet.
  std::vector<std::unique_ptr<message_sink>> relays;
  relays.reserve(n);
  for (node_id i = 0; i < n; ++i) {
    if (config.mode == routing_mode::source_routed) {
      relays.push_back(std::make_unique<onion_relay>(
          i, net, keys, config.latency.processing, compromised[i], &monitor));
    } else {
      relays.push_back(std::make_unique<crowds_relay>(
          i, net, config.latency.processing, compromised[i], &monitor,
          master.split(), graph));
    }
    net.register_node(i, *relays.back());
  }
  receiver_endpoint receiver(net, keys, &monitor);
  net.register_receiver(receiver);

  // Schedule the workload.
  stats::rng traffic = master.split();
  stats::rng routing = master.split();
  // Retransmissions sample their fresh routes from a dedicated stream split
  // off *after* every historical stream, so enabling retries never perturbs
  // the routes originals take (the frontier sweep compares like with like)
  // and a disabled policy leaves every historical stream byte-identical.
  stats::rng retry_routing = master.split();
  // Planned-route draws (exit choice + k-path pick) come from order-free
  // streams keyed off the seed rather than further master.split() calls, so
  // walk-mode runs never see these streams exist and stay byte-identical;
  // retransmissions again get their own stream so enabling retries leaves
  // original planned routes untouched.
  constexpr std::uint64_t kpaths_stream_tag = 0x6b706174u;  // "kpat"
  stats::rng plan_rng = stats::rng::stream(config.seed, kpaths_stream_tag);
  stats::rng retry_plan_rng =
      stats::rng::stream(config.seed, kpaths_stream_tag + 1);

  // Sender-side recovery state: every message id that ever hit the wire for
  // an original (the original itself plus its retransmissions), and the
  // attempt -> original map handed to scoring. Attempt ids continue past
  // message_count so original ids stay dense.
  std::map<std::uint64_t, std::vector<std::uint64_t>> attempts_of;
  std::map<std::uint64_t, std::uint64_t> attempt_parent;
  std::uint64_t next_attempt_id = config.message_count + 1;

  // One transmission attempt: sample a route for `id` and put it on the
  // wire. Shared by originals (drawing from the historical routing stream)
  // and retransmissions (drawing from retry_routing).
  const auto launch = [&](node_id sender, std::uint64_t id, stats::rng& gen,
                          stats::rng& plan_gen) {
    wire_message msg;
    msg.id = id;
    if (config.mode == routing_mode::source_routed) {
      route r;
      if (planner) {
        r = sample_planned_route(*planner, sender, plan_gen);
      } else {
        const path_length l = config.lengths.sample(gen);
        r = graph != nullptr ? sample_topology_route(*graph, sender, l, gen)
                             : sample_simple_route(n, sender, l, gen);
      }
      msg.kind = transport_kind::onion;
      msg.envelope = crypto::wrap_onion(r, demo_payload(id), keys, id);
      const node_id first = r.hops.empty() ? receiver_node : r.hops.front();
      net.send(sender, first, std::move(msg));
    } else {
      msg.kind = transport_kind::crowds;
      msg.payload = demo_payload(id);
      msg.forward_prob = config.forward_prob;
      if (graph != nullptr) {
        // Hop-by-hop on a graph: first jondo is a weighted neighbor.
        net.send(sender, graph->sample_neighbor(sender, gen), std::move(msg));
      } else {
        // Hop-by-hop: always at least one jondo, chosen uniformly.
        auto draw = static_cast<node_id>(gen.next_below(n - 1));
        if (draw >= sender) ++draw;
        net.send(sender, draw, std::move(msg));
      }
    }
  };

  // Timeout timer for one original: when it fires and no attempt has been
  // delivered, inject a retransmission over a fresh route and re-arm with
  // the backed-off timeout. The retransmission is a full first-class
  // message on the wire — the adversary observes it like any other, which
  // is exactly the anonymity cost this layer exists to measure.
  std::function<void(node_id, std::uint64_t, std::uint32_t, double)> arm_timer =
      [&](node_id sender, std::uint64_t original, std::uint32_t retries_done,
          double timeout) {
        net.queue().schedule_in(timeout, [&, sender, original, retries_done,
                                          timeout]() {
          for (const std::uint64_t id : attempts_of.at(original)) {
            const auto it = net.traces().find(id);
            if (it != net.traces().end() && it->second.delivered)
              return;  // recovered — stand down
          }
          if (retries_done >= config.retry.max_retries) return;  // budget spent
          const std::uint64_t id = next_attempt_id++;
          attempt_parent.emplace(id, original);
          attempts_of.at(original).push_back(id);
          net.originate(sender, net.queue().now(), id);
          if (compromised[sender]) monitor.note_origin(id, sender);
          launch(sender, id, retry_routing, retry_plan_rng);
          arm_timer(sender, original, retries_done + 1,
                    std::min(timeout * config.retry.backoff,
                             config.retry.max_timeout));
        });
      };

  const auto arrivals =
      poisson_workload(n, config.arrival_rate, config.message_count, traffic);
  for (const arrival& a : arrivals) {
    net.queue().schedule_at(a.at, [&, a]() {
      net.originate(a.sender, a.at, a.msg_id);
      if (compromised[a.sender]) monitor.note_origin(a.msg_id, a.sender);
      launch(a.sender, a.msg_id, routing, plan_rng);
      if (config.retry.enabled()) {
        attempts_of.emplace(a.msg_id, std::vector<std::uint64_t>{a.msg_id});
        arm_timer(a.sender, a.msg_id, 0, config.retry.timeout);
      }
    });
  }

  const bool drained = net.queue().run_until_empty();
  ANONPATH_ENSURES(drained);

  core_result result;
  result.events_executed = net.queue().executed();
  result.wire_dropped = net.dropped_count();
  result.wire_stranded = net.stranded_count();
  result.wire_crashed = net.crashed_count();
  result.model = std::move(model);
  // Safe to move out from under `net`'s pointer: the queue has drained, so
  // the fabric sends nothing further.
  result.topology = std::move(topo);
  // Fold attempts into per-original outcomes: delivered if any attempt was,
  // timed from the original submission to the *earliest* delivering attempt
  // (end-to-end latency includes the waits the retry policy imposed), hops
  // from that attempt. Originals come first in the id-ordered walk, so the
  // fold always finds its base outcome.
  for (const auto& [id, trace] : net.traces()) {
    const auto pit = attempt_parent.find(id);
    if (pit == attempt_parent.end()) {
      result.outcomes.emplace(
          id,
          message_outcome{trace.origin, trace.sent_at, trace.delivered_at,
                          trace.delivered,
                          static_cast<std::uint32_t>(trace.visited.size())});
    } else if (trace.delivered) {
      message_outcome& out = result.outcomes.at(pit->second);
      if (!out.delivered || trace.delivered_at < out.delivered_at) {
        out.delivered = true;
        out.delivered_at = trace.delivered_at;
        out.hops = static_cast<std::uint32_t>(trace.visited.size());
      }
    }
  }
  result.attempt_parent = std::move(attempt_parent);
  return result;
}

sim_report score_run(const sim_config& config, const adversary_model& model,
                     const std::map<std::uint64_t, message_outcome>& outcomes,
                     const posterior_fn* engine, const net::topology* graph,
                     const std::map<std::uint64_t, std::uint64_t>* attempt_parent) {
  obs::span score_span(config.tracer, "sim.score");
  sim_report report;
  report.submitted = config.message_count;
  const bool fused = attempt_parent != nullptr && !attempt_parent->empty();
  report.retransmissions = fused ? attempt_parent->size() : 0;
  // Per-message Pr(sender == target) for the sequential-Bayes fusion: the
  // rerouting layer's evidence about who originated each delivery, fed to
  // the longitudinal attack as soft round membership. Indexed by id - 1
  // (ids are dense 1..message_count); 0 = unscored, which downstream reads
  // as "the adversary saw nothing about this delivery".
  const bool want_target_mass =
      config.session.enabled() &&
      config.session.attack == attack::attack_kind::sequential_bayes;
  std::vector<double> target_mass(want_target_mass ? config.message_count : 0,
                                  0.0);
  for (const auto& [id, outcome] : outcomes) {
    if (!outcome.delivered) continue;
    ++report.delivered;
    report.end_to_end_latency.add(outcome.delivered_at - outcome.sent_at);
    report.realized_hops.add(static_cast<double>(outcome.hops));
    if (outcome.hops >= report.hop_histogram.size())
      report.hop_histogram.resize(outcome.hops + 1, 0);
    ++report.hop_histogram[outcome.hops];
  }

  if (config.mode == routing_mode::source_routed) {
    // The exact engine for the run's *effective* compromised set: the
    // configured list for the full coalition (and the timing correlator,
    // which taps the same nodes), the drawn set for partial coverage.
    const std::vector<node_id> effective_ids =
        config.adversary.kind == adversary_kind::partial_coverage
            ? model.compromised_ids()
            : config.compromised;
    const system_params effective_sys{
        config.sys.node_count,
        static_cast<std::uint32_t>(effective_ids.size())};
    // Restricted graphs route walks, so their observations are scored with
    // the restricted-path engine; the clique keeps the historical
    // simple-path engine bit for bit. Planned (kpaths) runs supersede both:
    // their routes are loopless graph paths, scored with the approximate
    // posterior under a diffuse uniform(1, N-1) length prior (the support
    // of every realizable planned route — see approx_topology_posterior for
    // why the mask is full under the uniform exit law). Exactly one of the
    // three is built.
    const bool restricted =
        config.topology.kind != net::topology_kind::complete;
    const bool planned = config.routing.planned();
    std::optional<posterior_engine> exact;
    std::optional<net::topology_posterior_engine> walk;
    std::optional<net::approx_topology_posterior> approx;
    if (planned) {
      // Planned observations are never gapped (the timing correlator is
      // rejected up front), so no screening engine is needed.
      if (engine == nullptr)
        approx.emplace(
            effective_sys, effective_ids,
            path_length_distribution::uniform(1, config.sys.node_count - 1),
            graph != nullptr
                ? *graph
                : net::topology::make(config.sys.node_count, config.topology));
    } else if (restricted) {
      // Only built when it will actually score (a caller-supplied engine
      // supersedes it, and rebuilding the graph is not free on the replay
      // path). Restricted observations are never gapped, so no screening
      // engine is needed either.
      if (engine == nullptr)
        walk.emplace(effective_sys, effective_ids, config.lengths,
                     graph != nullptr ? *graph
                                      : net::topology::make(
                                            config.sys.node_count,
                                            config.topology));
    } else {
      // Needed even under a caller-supplied engine: gapped observations
      // are screened for explainability before any scoring.
      exact.emplace(effective_sys, effective_ids, config.lengths);
    }

    stats::running_summary entropy_acc;
    std::uint64_t identified = 0;
    std::uint64_t top1_hits = 0;
    std::uint64_t scored = 0;
    std::vector<double> walk_post;
    // One observation's sender posterior, with the explainability screen: a
    // mis-linked timing chain can describe no path at all; it carries no
    // usable evidence and is skipped rather than scored as zero. walk_post
    // is consumed by reference — no per-message copy of the N-double
    // posterior in the scoring loop.
    const auto obs_posterior = [&](std::uint64_t id,
                                   std::vector<double>& out) -> bool {
      const auto obs = model.assemble(id);
      if (exact && obs.gapped && !exact->explainable(obs)) return false;
      if (approx && !approx->try_sender_posterior(obs, out)) return false;
      if (walk && !walk->try_sender_posterior(obs, out)) return false;
      if (engine != nullptr) out = (*engine)(obs);
      else if (exact) out = exact->sender_posterior(obs);
      return true;
    };
    const auto score_post = [&](std::uint64_t original,
                                const std::vector<double>& post) {
      entropy_acc.add(entropy_bits(post));
      if (want_target_mass && original >= 1 &&
          original <= config.message_count)
        target_mass[original - 1] = post[config.session.target_sender];
      if (config.collect_posteriors) report.posteriors.push_back(post);
      const auto top =
          std::max_element(post.begin(), post.end()) - post.begin();
      if (post[static_cast<std::size_t>(top)] > config.identified_threshold)
        ++identified;
      const auto oit = outcomes.find(original);
      if (oit != outcomes.end() &&
          static_cast<node_id>(top) == oit->second.origin)
        ++top1_hits;
      ++scored;
    };

    if (!fused) {
      for (const std::uint64_t id : model.observed_messages())
        if (obs_posterior(id, walk_post)) score_post(id, walk_post);
    } else {
      // Retransmissions in play: group observed attempts by their original
      // and score each original once, on the normalized product of its
      // per-attempt posteriors. More attempts observed => sharper product —
      // the measured anonymity cost of the retry policy.
      std::map<std::uint64_t, std::vector<std::vector<double>>> groups;
      for (const std::uint64_t id : model.observed_messages()) {
        if (!obs_posterior(id, walk_post)) continue;
        const auto pit = attempt_parent->find(id);
        groups[pit == attempt_parent->end() ? id : pit->second].push_back(
            walk_post);
      }
      for (const auto& [original, factors] : groups)
        score_post(original, factors.size() == 1
                                 ? factors.front()
                                 : fuse_attempt_posteriors(factors));
    }
    if (scored == 0) {
      // Nothing observed => reporting 0.0 here would read as "all senders
      // identified" and poison campaign aggregates, so the inference
      // metrics are absent, not zero.
      report.empirical_entropy_bits = std::numeric_limits<double>::quiet_NaN();
      report.empirical_entropy_stderr =
          std::numeric_limits<double>::quiet_NaN();
      report.identified_fraction = std::numeric_limits<double>::quiet_NaN();
      report.top1_accuracy = std::numeric_limits<double>::quiet_NaN();
    } else {
      report.empirical_entropy_bits = entropy_acc.mean();
      report.empirical_entropy_stderr = entropy_acc.std_error();
      report.identified_fraction =
          static_cast<double>(identified) / static_cast<double>(scored);
      report.top1_accuracy =
          static_cast<double>(top1_hits) / static_cast<double>(scored);
    }
    if (exact) {
      report.memo_hits = exact->memo_hits();
      report.memo_misses = exact->memo_misses();
    }
  } else {
    report.empirical_entropy_bits = std::numeric_limits<double>::quiet_NaN();
    report.empirical_entropy_stderr = std::numeric_limits<double>::quiet_NaN();
  }

  if (config.session.enabled() &&
      config.session.attack != attack::attack_kind::none) {
    // Reconstruct the destination plan (a pure function of config, seed and
    // origins — identical on the inline and replay paths) and batch the
    // delivered destinations into per-round observations.
    ANONPATH_EXPECTS(outcomes.size() == config.message_count);
    std::vector<node_id> origins(config.message_count);
    for (const auto& [id, outcome] : outcomes) {
      ANONPATH_EXPECTS(id >= 1 && id <= config.message_count);
      origins[id - 1] = outcome.origin;
    }
    const std::vector<session_assignment> plan =
        assign_session_destinations(config.session, config.seed, origins);

    struct round_data {
      bool target_present = false;
      std::vector<node_id> receivers;
      std::vector<double> weights;
    };
    std::vector<round_data> rounds(config.session.rounds);
    std::uint64_t target_messages = 0;
    for (std::uint64_t id = 1; id <= config.message_count; ++id) {
      const session_assignment& a = plan[id - 1];
      round_data& rd = rounds[a.round];
      // Submission membership is public in a batching mix, delivered or not.
      if (origins[id - 1] == config.session.target_sender) {
        rd.target_present = true;
        ++target_messages;
      }
      if (!outcomes.at(id).delivered) continue;
      rd.receivers.push_back(a.destination);
      // Deliveries the adversary never observed (or could not explain)
      // carry weight 0: the residual mass in the Bayes update covers them.
      if (want_target_mass) rd.weights.push_back(target_mass[id - 1]);
    }

    // Two ways a target-present round can lack partner evidence: the
    // target's messages were lost before delivery (every retry attempt
    // dropped), or they were delivered but the collector missed/mislinked
    // them — possible exactly when the adversary is not the full coalition
    // (partial coverage loses reports, the timing correlator mislinks).
    // Either way the Bayes engine needs a noise floor so one such round
    // cannot irreversibly annihilate the true partner — see
    // attack::membership_noise_floor for the loss model.
    const bool lossy_observation =
        config.adversary.kind != adversary_kind::full_coalition;
    attack::online_config ocfg;
    ocfg.kind = config.session.attack;
    ocfg.backend = config.session.stream;
    ocfg.bayes.membership_noise = attack::membership_noise_floor(
        config.faults.drop_probability, config.retry.max_retries,
        lossy_observation);
    ocfg.identified_threshold = config.identified_threshold;
    // The session score is the online session run to the end of the round
    // stream (stride 1) — the same implementation the offline runners use,
    // so inline scoring, replay, and any-round snapshots cannot drift.
    attack::online_attack online(config.session.receiver_count, ocfg);
    session_report sr;
    sr.rounds = config.session.rounds;
    sr.target_messages = target_messages;
    {
      obs::span ingest_span(config.tracer, "attack.ingest");
      attack::round_observation obs;
      for (std::uint32_t r = 0; r < rounds.size(); ++r) {
        obs.target_present = rounds[r].target_present;
        obs.receivers = std::move(rounds[r].receivers);
        obs.target_weight = std::move(rounds[r].weights);
        online.ingest(obs);
      }
    }
    sr.trajectory = online.trajectory();
    sr.identified_round = online.identified_round().value_or(0);
    const attack::trajectory_point& last = sr.trajectory.back();
    sr.entropy_bits = last.entropy_bits;
    sr.top_mass = last.top_mass;
    sr.top_receiver = last.top_receiver;
    sr.identified = last.identified;
    sr.correct = last.top_receiver == config.session.partner;
    report.session = std::move(sr);
  }
  return report;
}

}  // namespace detail

sim_report run_simulation(const sim_config& config) {
  obs::span run_span(config.tracer, "sim.run");
  const detail::core_result core = [&] {
    obs::span core_span(config.tracer, "sim.run_core");
    return detail::run_core(config, nullptr);
  }();
  sim_report report =
      detail::score_run(config, *core.model, core.outcomes, nullptr,
                        core.topology ? &*core.topology : nullptr,
                        &core.attempt_parent);
  report.events_executed = core.events_executed;
  report.wire_dropped = core.wire_dropped;
  report.wire_stranded = core.wire_stranded;
  report.wire_crashed = core.wire_crashed;
  return report;
}

}  // namespace anonpath::sim
