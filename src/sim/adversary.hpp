#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/anonymity/observation.hpp"
#include "src/anonymity/types.hpp"
#include "src/sim/event_queue.hpp"
#include "src/sim/latency.hpp"

namespace anonpath::sim {

/// The threat-model families the simulator can instantiate. The paper's
/// Sec. 4 worst-case observability model is one point in this space:
///   * full_coalition — every configured compromised node reports, the
///     receiver is compromised, and the adversary holds the correlation
///     handle (paper Sec. 4; the historical adversary_monitor).
///   * partial_coverage — each relay is independently corrupted with
///     probability `coverage_fraction` and the receiver may be honest
///     (Ando–Lysyanskaya–Upfal's fractional-corruption setting); reports
///     still correlate by message, but the terminal of the path may be
///     unobserved.
///   * timing_correlator — agents at the configured compromised nodes (and
///     the receiver) observe only link send/receive timestamps and
///     endpoints; captures are linked into per-message chains by latency
///     correlation (crypto::timing_correlation, Zheng's low-latency model),
///     never by a correlation handle. Its observations are `gapped`.
enum class adversary_kind : std::uint8_t {
  full_coalition,
  partial_coverage,
  timing_correlator,
};

/// Stable short label ("full_coalition", ...) for CSV and CLI surfaces.
[[nodiscard]] const char* adversary_kind_label(adversary_kind kind) noexcept;

/// Declarative description of the adversary a run faces.
struct adversary_config {
  adversary_kind kind = adversary_kind::full_coalition;
  /// partial_coverage only: per-relay independent corruption probability.
  double coverage_fraction = 1.0;
  /// partial_coverage only: false models an honest receiver (no terminal
  /// report). full_coalition and timing_correlator always compromise R.
  bool receiver_compromised = true;

  [[nodiscard]] bool valid() const noexcept {
    return coverage_fraction >= 0.0 && coverage_fraction <= 1.0;
  }

  /// Compact human/CSV label, e.g. "full_coalition",
  /// "partial(f=0.25)", "partial(f=0.25;honest_r)", "timing_correlator".
  [[nodiscard]] std::string label() const;

  friend bool operator==(const adversary_config&,
                         const adversary_config&) = default;
};

/// One adversary-visible event, in the order the collection apparatus saw
/// it. This is the unit of the sim::trace capture format: feeding a model
/// the recorded stream reproduces its post-run state exactly.
struct adversary_event {
  enum class kind : std::uint8_t { origin, relay, receipt };
  kind type = kind::relay;
  std::uint64_t msg = 0;
  sim_time at = 0.0;       ///< capture time (0 for origin events)
  node_id reporter = 0;    ///< origin: sender; relay: reporter; receipt: unused
  node_id predecessor = 0; ///< relay/receipt: immediate predecessor
  node_id successor = 0;   ///< relay: immediate successor (may be receiver_node)

  friend bool operator==(const adversary_event&,
                         const adversary_event&) = default;
};

/// The adversary's collection apparatus behind a small virtual interface:
/// agents at compromised nodes report (time, predecessor, successor) for
/// every message they relay, a compromised receiver reports its
/// predecessor, and a compromised *sender* is observed originating. How
/// those reports fuse into `observation` objects — and which of them exist
/// at all — is the threat model, i.e. the concrete subclass.
class adversary_model {
 public:
  virtual ~adversary_model() = default;

  /// Called by a compromised node when it *originates* a message.
  virtual void note_origin(std::uint64_t msg, node_id sender) = 0;

  /// Called by a compromised relay when it forwards a message.
  virtual void note_relay(std::uint64_t msg, sim_time at, node_id reporter,
                          node_id predecessor, node_id successor) = 0;

  /// Called by the receiver on delivery (a model with an honest receiver
  /// ignores it — the hook models what the party *could* leak).
  virtual void note_receipt(std::uint64_t msg, sim_time at,
                            node_id predecessor) = 0;

  /// True once the model holds a scorable observation for the message.
  [[nodiscard]] virtual bool complete(std::uint64_t msg) const = 0;

  /// Reconstructs the observation for a completed message. Throws
  /// std::out_of_range for unknown/incomplete messages.
  [[nodiscard]] virtual observation assemble(std::uint64_t msg) const = 0;

  /// All message ids with a completed observation, ascending.
  [[nodiscard]] virtual std::vector<std::uint64_t> observed_messages()
      const = 0;

  [[nodiscard]] virtual adversary_kind kind() const noexcept = 0;

  /// Historical name for observed_messages() (the full coalition completes
  /// a message exactly on delivery).
  [[nodiscard]] std::vector<std::uint64_t> delivered_messages() const {
    return observed_messages();
  }

  /// The flag vector (indexed by node id) of corrupted relays.
  [[nodiscard]] const std::vector<bool>& compromised() const noexcept {
    return compromised_;
  }

  /// The corrupted relays as a sorted id list (posterior-engine form).
  [[nodiscard]] std::vector<node_id> compromised_ids() const;

 protected:
  /// `compromised` is the flag vector indexed by node id; must be non-empty.
  explicit adversary_model(std::vector<bool> compromised);

  std::vector<bool> compromised_;
};

/// The paper's Sec. 4 worst-case adversary: the monitor fuses reports per
/// message id (the correlation assumption) and reconstructs the exact
/// `observation` objects the inference engines consume, sorting reports by
/// capture time — the simulator never leaks ground-truth order.
class full_coalition_model : public adversary_model {
 public:
  explicit full_coalition_model(std::vector<bool> compromised);

  void note_origin(std::uint64_t msg, node_id sender) override;
  void note_relay(std::uint64_t msg, sim_time at, node_id reporter,
                  node_id predecessor, node_id successor) override;
  void note_receipt(std::uint64_t msg, sim_time at,
                    node_id predecessor) override;
  [[nodiscard]] bool complete(std::uint64_t msg) const override;
  [[nodiscard]] observation assemble(std::uint64_t msg) const override;
  [[nodiscard]] std::vector<std::uint64_t> observed_messages() const override;
  [[nodiscard]] adversary_kind kind() const noexcept override {
    return adversary_kind::full_coalition;
  }

 protected:
  struct capture {
    sim_time at = 0.0;
    hop_report report;
  };
  struct per_message {
    std::optional<node_id> origin;
    std::vector<capture> captures;
    std::optional<node_id> receiver_predecessor;
  };
  std::map<std::uint64_t, per_message> log_;
};

/// Historical name: the pre-refactor monitor *was* the full coalition.
using adversary_monitor = full_coalition_model;

/// Fractional corruption (Ando–Lysyanskaya–Upfal): the compromised set is
/// whatever effective_compromised() drew; corrupted relays report exactly
/// like the full coalition, but when the receiver is honest a message
/// completes as soon as *anything* about it was captured, and the
/// assembled observation carries receiver_observed == false — the posterior
/// engine then marginalizes over the unknown tail of the path.
class partial_coverage_model : public full_coalition_model {
 public:
  partial_coverage_model(std::vector<bool> compromised,
                         bool receiver_compromised);

  void note_receipt(std::uint64_t msg, sim_time at,
                    node_id predecessor) override;
  [[nodiscard]] bool complete(std::uint64_t msg) const override;
  [[nodiscard]] observation assemble(std::uint64_t msg) const override;
  [[nodiscard]] std::vector<std::uint64_t> observed_messages() const override;
  [[nodiscard]] adversary_kind kind() const noexcept override {
    return adversary_kind::partial_coverage;
  }

  [[nodiscard]] bool receiver_compromised() const noexcept {
    return receiver_compromised_;
  }

 private:
  bool receiver_compromised_;
};

/// Zheng-style low-latency traffic analysis: agents at compromised nodes
/// capture (time, predecessor, successor) but have *no* correlation handle,
/// and origination events cannot be tied to deliveries at all. At scoring
/// time captures are greedily linked backwards from each delivery: capture
/// c' precedes capture c when the wire endpoints chain (c'.successor ==
/// c.reporter, c.predecessor == c'.reporter) and
/// crypto::timing_correlation(c'.at, c.at, lo, hi) is positive for the
/// network's per-step delay window [processing + base, processing + base +
/// jitter]; among candidates the highest score (earliest capture on ties)
/// wins and each capture links at most once. The resulting per-delivery
/// chains are emitted as `gapped` observations — reports the correlator
/// failed to link are simply absent, which the posterior engine must (and
/// does) marginalize over.
class timing_correlator_model : public adversary_model {
 public:
  /// `link` describes the network the adversary taps; the linking window is
  /// derived from it (timing analysis presumes known network characteristics).
  timing_correlator_model(std::vector<bool> compromised, latency_params link);

  void note_origin(std::uint64_t msg, node_id sender) override;
  void note_relay(std::uint64_t msg, sim_time at, node_id reporter,
                  node_id predecessor, node_id successor) override;
  void note_receipt(std::uint64_t msg, sim_time at,
                    node_id predecessor) override;
  [[nodiscard]] bool complete(std::uint64_t msg) const override;
  [[nodiscard]] observation assemble(std::uint64_t msg) const override;
  [[nodiscard]] std::vector<std::uint64_t> observed_messages() const override;
  [[nodiscard]] adversary_kind kind() const noexcept override {
    return adversary_kind::timing_correlator;
  }

 private:
  struct capture {
    sim_time at = 0.0;
    node_id reporter = 0;
    node_id predecessor = 0;
    node_id successor = 0;
  };
  struct receipt {
    sim_time at = 0.0;
    node_id predecessor = 0;
    std::uint64_t msg = 0;
  };

  /// Runs the linking pass once, lazily, over the full capture log.
  void link() const;

  latency_params link_;
  std::vector<capture> captures_;   ///< capture order (== time order)
  std::vector<receipt> receipts_;   ///< delivery order
  mutable bool linked_ = false;
  mutable std::map<std::uint64_t, observation> assembled_;
};

/// The compromised flag set an adversary config induces for an N-node run:
/// the explicitly configured set for full_coalition and timing_correlator;
/// an iid Bernoulli(coverage_fraction) draw on a dedicated deterministic
/// rng stream of `seed` for partial_coverage (independent of every other
/// stream the simulator consumes, so enabling the model never perturbs
/// traffic or routing). Preconditions: config.valid(), node_count >= 1,
/// configured ids < node_count.
[[nodiscard]] std::vector<bool> effective_compromised(
    const adversary_config& config, std::uint32_t node_count,
    const std::vector<node_id>& configured, std::uint64_t seed);

/// Instantiates the model for a final flag set (drawn or explicit — the
/// factory never draws, so trace replay can rebuild the exact model that
/// captured a run). `link` is only consulted by the timing correlator.
[[nodiscard]] std::unique_ptr<adversary_model> make_adversary_model(
    const adversary_config& config, std::vector<bool> compromised,
    const latency_params& link);

}  // namespace anonpath::sim
