#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "src/anonymity/observation.hpp"
#include "src/anonymity/types.hpp"
#include "src/sim/event_queue.hpp"

namespace anonpath::sim {

/// The adversary's collection apparatus (paper Sec. 4): agents at
/// compromised nodes report (time, predecessor, successor) for every
/// message they relay; the compromised receiver reports its predecessor;
/// a compromised *sender* is observed originating. The monitor fuses these
/// per message id (the paper's correlation assumption) and reconstructs the
/// exact `observation` objects the inference engines consume, sorting
/// reports by capture time — the simulator never leaks ground-truth order.
class adversary_monitor {
 public:
  /// `compromised` is the flag vector indexed by node id.
  explicit adversary_monitor(std::vector<bool> compromised);

  /// Called by a compromised node when it *originates* a message.
  void note_origin(std::uint64_t msg, node_id sender);

  /// Called by a compromised relay when it forwards a message.
  void note_relay(std::uint64_t msg, sim_time at, node_id reporter,
                  node_id predecessor, node_id successor);

  /// Called by the (always compromised) receiver on delivery.
  void note_receipt(std::uint64_t msg, sim_time at, node_id predecessor);

  /// True once the receiver has reported the message.
  [[nodiscard]] bool complete(std::uint64_t msg) const;

  /// Reconstructs the observation for a delivered message: relay reports
  /// sorted by capture time, then the receiver's predecessor. Throws
  /// std::out_of_range for unknown/incomplete messages.
  [[nodiscard]] observation assemble(std::uint64_t msg) const;

  /// All message ids with a completed observation.
  [[nodiscard]] std::vector<std::uint64_t> delivered_messages() const;

  [[nodiscard]] const std::vector<bool>& compromised() const noexcept {
    return compromised_;
  }

 private:
  struct capture {
    sim_time at = 0.0;
    hop_report report;
  };
  struct per_message {
    std::optional<node_id> origin;
    std::vector<capture> captures;
    std::optional<node_id> receiver_predecessor;
  };
  std::vector<bool> compromised_;
  std::map<std::uint64_t, per_message> log_;
};

}  // namespace anonpath::sim
