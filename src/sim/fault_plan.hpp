#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/net/churn.hpp"
#include "src/net/outage.hpp"

namespace anonpath::sim {

/// Seeded mix-failure episodes: `count` crash/repair incidents drawn over a
/// time horizon, each hitting a uniformly chosen mix for an exponential
/// repair time with mean `mean_duration`. Models the paper-external reality
/// that individual mixes fail as discrete *episodes* (operator reboots,
/// crashes) rather than the memoryless per-node churn process: the same
/// (config, seed) always yields the same incident timetable.
struct mix_failure_config {
  std::uint32_t count = 0;     ///< episodes to draw (0 = none)
  double horizon = 0.0;        ///< start times drawn from [0, horizon); 0 = auto
                               ///< (the run's expected traffic span)
  double mean_duration = 1.0;  ///< mean seconds a failed mix stays down

  [[nodiscard]] bool enabled() const noexcept { return count > 0; }
  [[nodiscard]] bool valid() const noexcept;

  /// "none", or "mixfail(<count>@<horizon|auto>/<mean_duration>)".
  [[nodiscard]] std::string label() const;

  friend bool operator==(const mix_failure_config&,
                         const mix_failure_config&) = default;
};

/// The unified fault model of one simulated run: every way this fabric can
/// lose or delay a message short of an active adversary. Collects the
/// previously ad-hoc knobs (per-link loss, stochastic churn) together with
/// the two new deterministic-schedule mechanisms (explicit crash plans and
/// seeded mix-failure episodes) behind one valve, so simulator, trace,
/// campaign and CLI thread a single object instead of a growing flag list.
///
/// The default plan is entirely inert: it draws from no generator and
/// perturbs no stream, so fault-free configurations remain byte-identical
/// to the pre-fault-plan code.
struct fault_plan {
  /// Independent per-transmission loss probability in [0, 1).
  double drop_probability = 0.0;

  /// Stochastic node availability (seeded renewal process).
  net::churn_config churn{};

  /// Explicit crash/repair intervals (deterministic timetable).
  std::vector<net::outage> outages{};

  /// Seeded random mix-failure episodes.
  mix_failure_config mix_failures{};

  [[nodiscard]] bool enabled() const noexcept {
    return drop_probability > 0.0 || churn.enabled() || !outages.empty() ||
           mix_failures.enabled();
  }

  /// Parameter ranges only (no node bounds): drop in [0,1), churn.valid(),
  /// every outage valid(), mix_failures.valid().
  [[nodiscard]] bool valid() const noexcept;

  /// valid() plus every outage node < node_count.
  [[nodiscard]] bool valid_for(std::uint32_t node_count) const noexcept;

  /// "none", or a '+'-joined summary, e.g. "drop(0.1)+churn(1/2)+crash(3)".
  [[nodiscard]] std::string label() const;

  /// Realizes the crash/repair timetable for a fleet: explicit outages plus
  /// mix-failure episodes drawn from a dedicated deterministic stream of
  /// `seed` (so the episodes depend only on (plan, seed, node_count), never
  /// on any other stream the simulation consumes). `default_horizon`
  /// substitutes for mix_failures.horizon == 0. Preconditions:
  /// valid_for(node_count), node_count >= 1, and default_horizon > 0
  /// whenever it is needed.
  [[nodiscard]] net::outage_schedule materialize(std::uint32_t node_count,
                                                 std::uint64_t seed,
                                                 double default_horizon) const;

  friend bool operator==(const fault_plan&, const fault_plan&) = default;
};

/// Sender-side recovery policy: when a message has not been delivered
/// `timeout` seconds after (re)transmission, the sender re-injects a fresh
/// copy through a newly sampled route, up to `max_retries` times, doubling
/// (by `backoff`) the timeout after each attempt up to `max_timeout`. The
/// paper's model has no retries; this is the deployment-reality extension
/// whose anonymity cost (every retransmission is one more adversary
/// observation of the same sender) the retry-frontier bench measures.
///
/// Disabled by default (max_retries == 0): no timer events are scheduled
/// and no generator is consumed, keeping retry-free runs byte-identical.
struct retry_policy {
  std::uint32_t max_retries = 0;  ///< extra attempts per message (0 = off)
  double timeout = 0.5;           ///< seconds before the first retransmission
  double backoff = 2.0;           ///< timeout multiplier per attempt (>= 1)
  double max_timeout = 30.0;      ///< cap on the grown timeout

  [[nodiscard]] bool enabled() const noexcept { return max_retries > 0; }
  [[nodiscard]] bool valid() const noexcept;

  /// "none", or "retry(<max>x<timeout>*<backoff><=<cap>)".
  [[nodiscard]] std::string label() const;

  friend bool operator==(const retry_policy&, const retry_policy&) = default;
};

}  // namespace anonpath::sim
