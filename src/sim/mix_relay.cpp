#include "src/sim/mix_relay.hpp"

#include "src/stats/contract.hpp"

namespace anonpath::sim {

mix_relay::mix_relay(node_id self, network& net,
                     const crypto::key_registry& keys,
                     std::uint32_t batch_size, sim_time flush_interval,
                     bool compromised, adversary_monitor* monitor,
                     stats::rng gen)
    : self_(self),
      net_(net),
      keys_(keys),
      batch_size_(batch_size),
      flush_interval_(flush_interval),
      compromised_(compromised),
      monitor_(monitor),
      gen_(gen) {
  ANONPATH_EXPECTS(batch_size >= 1);
  ANONPATH_EXPECTS(flush_interval >= 0.0);
}

void mix_relay::on_message(node_id from, wire_message msg) {
  const auto peeled = crypto::peel_onion(self_, msg.envelope, keys_, msg.id);
  if (compromised_ && monitor_ != nullptr) {
    // The agent reports at traversal time, as in the paper's tuple (2); the
    // mix delay only shifts when the *next* hop sees the message.
    monitor_->note_relay(msg.id, net_.queue().now(), self_, from, peeled.next);
  }
  wire_message out;
  out.id = msg.id;
  out.kind = transport_kind::onion;
  out.envelope = peeled.inner;
  pool_.push_back(pending{peeled.next, std::move(out)});

  if (pool_.size() >= batch_size_) {
    flush();
    return;
  }
  if (pool_.size() == 1 && flush_interval_ > 0.0) {
    // Arm the deadline for this batch; epoch guards against firing after an
    // earlier size-triggered flush already emptied the pool.
    const std::uint64_t epoch = timer_epoch_;
    net_.queue().schedule_in(flush_interval_, [this, epoch] {
      if (epoch == timer_epoch_ && !pool_.empty()) flush();
    });
  }
}

void mix_relay::flush() {
  ++timer_epoch_;
  ++batches_;
  // Output order not predictable from input order: Fisher-Yates over the
  // held batch.
  for (std::size_t i = pool_.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(gen_.next_below(i));
    std::swap(pool_[i - 1], pool_[j]);
  }
  for (auto& p : pool_) {
    net_.send(self_, p.next, std::move(p.msg));
  }
  pool_.clear();
}

}  // namespace anonpath::sim
