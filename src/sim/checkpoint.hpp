#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/sim/campaign.hpp"

namespace anonpath::sim {

/// Campaign checkpoint format, versioned like trace v1.
///
/// A checkpoint is the crash-recovery journal of one `run_campaign`
/// invocation: completed cells, in cell-index order, each carrying the
/// exact aggregate state (raw Welford summary words as IEEE-754 bit
/// patterns) needed to render that cell's CSV row bit-identically without
/// re-running it. Layout:
///
///   anonpath-checkpoint v1
///   scope <16-hex fingerprint>
///   [shard <i> <n>]
///   cell <index> <replicas> <submitted> <delivered> \
///        {<count> <mean> <m2> <min> <max>} x10 <errflag> [error text]
///   ...
///
/// One record per line. An unsharded journal has no shard line and its
/// indices run strictly 0,1,2,... (a strict prefix of the grid's cell
/// list — the writer flushes cells only in order). A shard i of n journals
/// exactly the cells whose absolute grid index is congruent to i mod n, in
/// order, under an explicit `shard i n` header line; absolute indices make
/// shard journals mergeable back into the unsharded cell list with no
/// renumbering. The scope line fingerprints everything that defines the
/// cell list and the per-run seeds (grid, replicas, master seed,
/// via_trace) but NOT the shard split — all shards of one campaign share a
/// scope, which is what lets merge_campaign verify they belong together.
/// The scenario itself is not serialized: the grid reconstructs it from
/// the index.
///
/// Recovery contract: the final line of a file whose writer was killed
/// mid-append may be incomplete; read_checkpoint discards a malformed
/// *final* record silently (that is the kill point) but rejects a
/// malformed record followed by further records — that is corruption, not
/// a crash artifact.
struct checkpoint_file {
  /// Bump on any change to the serialized layout; read_checkpoint refuses
  /// mismatched versions rather than misparse. (The optional shard header
  /// line is additive: unsharded journals keep their v1 bytes.)
  static constexpr std::uint32_t format_version = 1;
};

/// Deterministic fingerprint of everything that defines a campaign's cell
/// list and run seeds: FNV-1a over a canonical serialization of the grid
/// (every axis element, every shared setting, the fault outage plan) and
/// the config's replicas/master_seed/via_trace. Two campaigns share a
/// fingerprint iff their checkpoints are interchangeable.
[[nodiscard]] std::uint64_t campaign_scope(const campaign_grid& grid,
                                           const campaign_config& config);

/// Writes the header lines: magic/version, scope, and — only when
/// shard_count > 1, so unsharded journals keep their historical bytes —
/// the `shard <i> <n>` identity line.
void write_checkpoint_header(std::ostream& os, std::uint64_t scope,
                             std::uint32_t shard_index = 0,
                             std::uint32_t shard_count = 1);

/// Appends one completed cell record. Callers must append records in cell
/// order; the index is the cell's ABSOLUTE grid index (for shard i of n:
/// i, i+n, i+2n, ...). `cell.scene` is not serialized.
void append_checkpoint_cell(std::ostream& os, std::uint64_t index,
                            const campaign_cell& cell);

/// Reads the longest usable prefix of completed cells for one known shard
/// (the resume path; the defaults read an unsharded journal unchanged).
/// The stream is untrusted input: a bad magic, version, or scope, a shard
/// line disagreeing with (shard_index, shard_count), or a malformed
/// non-final record, throws anonpath::parse_error (kinds mismatch /
/// version_mismatch / malformed / out_of_range); a malformed or truncated
/// FINAL record is discarded as the kill point. Returned cells have
/// default scenes (the caller rebinds them from the grid) and at most
/// `max_cells` entries — max_cells is the SHARD's cell count, and records
/// past that bound are corruption. An unsharded read refuses a shard
/// journal rather than adopting its (differently indexed) records.
[[nodiscard]] std::vector<campaign_cell> read_checkpoint(
    std::istream& is, std::uint64_t scope, std::uint64_t max_cells,
    std::uint32_t shard_index = 0, std::uint32_t shard_count = 1);

/// One shard journal as read back for merging: the identity it declares
/// plus its completed cells in shard order (cell k holds absolute grid
/// index shard_index + k * shard_count).
struct shard_checkpoint {
  std::uint32_t shard_index = 0;
  std::uint32_t shard_count = 1;
  std::vector<campaign_cell> cells;
};

/// Reads one shard journal whose identity is not known a priori (the merge
/// path). Unlike read_checkpoint this is strict about the header: a
/// journal whose magic/scope/shard lines never finished flushing is a
/// truncated shard, not forgivable zero progress. A torn FINAL cell record
/// is still dropped (the kill point) — the shard then simply fails
/// merge_campaign's completeness check. Throws anonpath::parse_error on
/// any corruption, scope mismatch, or an out-of-range shard identity.
[[nodiscard]] shard_checkpoint read_shard_checkpoint(std::istream& is,
                                                     std::uint64_t scope,
                                                     std::uint64_t cell_total);

/// Number of cells shard `shard_index` of `shard_count` owns in a grid of
/// `cell_total` cells (those with absolute index ≡ shard_index mod
/// shard_count).
[[nodiscard]] std::uint64_t shard_cell_count(std::uint64_t cell_total,
                                             std::uint32_t shard_index,
                                             std::uint32_t shard_count);

/// Merges completed shard journals back into the one campaign_result an
/// unsharded run of (grid, config) would have produced — bit-identical,
/// including the CSV rendering, because every shard ran its cells under
/// absolute-index seeds and journaled bit-exact aggregate state. Every
/// validation failure is loud, via anonpath::parse_error:
///   io        — a shard path that cannot be opened
///   mismatch  — wrong scope, shards disagreeing on the shard count, the
///               same shard supplied twice, or a shard missing entirely
///   truncated — a shard journal whose cell records stop short of its
///               full share (e.g. a killed or still-running shard)
/// config's shard_index/shard_count are ignored: the journals declare
/// their own identities and the merged result is always the whole grid.
[[nodiscard]] campaign_result merge_campaign(
    const campaign_grid& grid, const campaign_config& config,
    const std::vector<std::string>& shard_paths);

}  // namespace anonpath::sim
