#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "src/sim/campaign.hpp"

namespace anonpath::sim {

/// Campaign checkpoint format, versioned like trace v1.
///
/// A checkpoint is the crash-recovery journal of one `run_campaign`
/// invocation: completed cells, in cell-index order, each carrying the
/// exact aggregate state (raw Welford summary words as IEEE-754 bit
/// patterns) needed to render that cell's CSV row bit-identically without
/// re-running it. Layout:
///
///   anonpath-checkpoint v1
///   scope <16-hex fingerprint>
///   cell <index> <replicas> <submitted> <delivered> \
///        {<count> <mean> <m2> <min> <max>} x10 <errflag> [error text]
///   ...
///
/// One record per line, indices strictly 0,1,2,... (a strict prefix of the
/// grid's cell list — the writer flushes cells only in order). The scope
/// line fingerprints everything that defines the cell list and the per-run
/// seeds (grid, replicas, master seed, via_trace), so a checkpoint can
/// never silently resume a different campaign. The scenario itself is not
/// serialized: the grid reconstructs it from the index.
///
/// Recovery contract: the final line of a file whose writer was killed
/// mid-append may be incomplete; read_checkpoint discards a malformed
/// *final* record silently (that is the kill point) but rejects a
/// malformed record followed by further records — that is corruption, not
/// a crash artifact.
struct checkpoint_file {
  /// Bump on any change to the serialized layout; read_checkpoint refuses
  /// mismatched versions rather than misparse.
  static constexpr std::uint32_t format_version = 1;
};

/// Deterministic fingerprint of everything that defines a campaign's cell
/// list and run seeds: FNV-1a over a canonical serialization of the grid
/// (every axis element, every shared setting, the fault outage plan) and
/// the config's replicas/master_seed/via_trace. Two campaigns share a
/// fingerprint iff their checkpoints are interchangeable.
[[nodiscard]] std::uint64_t campaign_scope(const campaign_grid& grid,
                                           const campaign_config& config);

/// Writes the two header lines (magic/version and scope).
void write_checkpoint_header(std::ostream& os, std::uint64_t scope);

/// Appends one completed cell record. Callers must append records in cell
/// order starting at 0; `cell.scene` is not serialized.
void append_checkpoint_cell(std::ostream& os, std::uint64_t index,
                            const campaign_cell& cell);

/// Reads the longest usable prefix of completed cells. The stream is
/// untrusted input: a bad magic, version, or scope, or a malformed
/// non-final record, throws anonpath::parse_error (kinds mismatch /
/// version_mismatch / malformed / out_of_range); a malformed or truncated
/// FINAL record is discarded as the kill point. Returned cells have
/// default scenes (the caller rebinds them from the grid) and at most
/// `max_cells` entries — records past that bound are corruption.
[[nodiscard]] std::vector<campaign_cell> read_checkpoint(
    std::istream& is, std::uint64_t scope, std::uint64_t max_cells);

}  // namespace anonpath::sim
