#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace anonpath::sim {

/// Simulated time in seconds.
using sim_time = double;

/// Minimal discrete-event scheduler: events execute in timestamp order;
/// ties break by insertion order (FIFO), which keeps runs deterministic.
class event_queue {
 public:
  /// Schedules `action` at absolute time `at` (>= now()).
  void schedule_at(sim_time at, std::function<void()> action);

  /// Schedules `action` `delay` seconds from now. Precondition: delay >= 0.
  void schedule_in(sim_time delay, std::function<void()> action);

  /// Executes the earliest pending event, advancing the clock to it.
  /// Returns false when the queue is empty.
  bool run_next();

  /// Drains the queue; stops (and returns false) if `max_events` fire
  /// without exhausting it — a runaway-protocol guard.
  bool run_until_empty(std::uint64_t max_events = 100'000'000);

  [[nodiscard]] sim_time now() const noexcept { return now_; }
  [[nodiscard]] std::size_t pending() const noexcept { return heap_.size(); }

  /// Events executed since construction (deterministic per run; feeds the
  /// `sim.events_executed` metric).
  [[nodiscard]] std::uint64_t executed() const noexcept { return executed_; }

 private:
  struct entry {
    sim_time at;
    std::uint64_t seq;
    std::function<void()> action;
  };
  struct later {
    bool operator()(const entry& a, const entry& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<entry, std::vector<entry>, later> heap_;
  sim_time now_ = 0.0;
  std::uint64_t seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace anonpath::sim
