#pragma once

#include <vector>

#include "src/anonymity/brute_force.hpp"
#include "src/anonymity/length_distribution.hpp"
#include "src/anonymity/types.hpp"
#include "src/net/topology.hpp"

namespace anonpath::net {

/// Ground-truth evaluator for the weighted-walk routing model on an
/// arbitrary topology: enumerates *every* (sender, length, walk) triple
/// with its exact probability (product of per-step normalized edge
/// weights), groups the triples by the adversary's observation, and
/// applies Bayes directly — no factorizations, no transfer matrices. On
/// the complete graph with uniform weights the walk model coincides with
/// the paper's "complicated" paths, so this oracle must (and, per the
/// conformance suite, does) reproduce cyclic_brute_force_analyzer exactly.
///
/// Exponential in max length (sum over degree^l walks); guarded to
/// N <= 10 and max_length <= 8. This is the oracle the restricted-path
/// topology_posterior_engine is pinned against.
class graph_oracle {
 public:
  /// Preconditions: sys.valid(), node_count <= 10, max_length <= 8,
  /// topo.node_count() == sys.node_count, compromised ids distinct and
  /// < N with |compromised| == C.
  graph_oracle(system_params sys, std::vector<node_id> compromised,
               const path_length_distribution& lengths, const topology& topo);

  /// Exact H*(S) in bits under the walk model on this graph.
  [[nodiscard]] double anonymity_degree() const noexcept { return degree_; }

  /// The enumerated event space (same record type as the clique oracles).
  [[nodiscard]] const std::vector<event_record>& events() const noexcept {
    return events_;
  }

  /// Sum of event probabilities (== 1 up to rounding; for tests).
  [[nodiscard]] double total_probability() const noexcept { return total_; }

 private:
  double degree_ = 0.0;
  double total_ = 0.0;
  std::vector<event_record> events_;
};

}  // namespace anonpath::net
