#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/anonymity/types.hpp"
#include "src/stats/rng.hpp"

namespace anonpath::net {

/// Graph families for the rerouting substrate. The paper's Sec. 3.1 model
/// is `complete` — every node can forward to every other node — and that
/// stays the default everywhere. The rest open the topology axis that real
/// deployments live on:
///   * ring(k)          — circulant lattice: u ~ u±1..±k (mod N)
///   * random_regular   — seeded random d-regular graph (circulant base
///                        randomized by degree-preserving double-edge
///                        swaps, retried until connected)
///   * tiered           — Tor-style stratified layout: nodes split into
///                        consecutive tiers (guard/middle/exit at 3) and
///                        only adjacent tiers are linked
///   * trust_weighted   — complete adjacency with per-edge trust weights
///                        decaying geometrically in ring distance
enum class topology_kind : std::uint8_t {
  complete,
  ring,
  random_regular,
  tiered,
  trust_weighted,
};

/// Stable short name ("complete", "ring", ...) for CLI/CSV surfaces.
[[nodiscard]] const char* topology_kind_name(topology_kind kind) noexcept;

/// Declarative description of a topology, independent of N so it can ride
/// in sim_config, sweep over a campaign axis, and serialize into traces.
/// Only the fields of the selected kind are meaningful; the rest keep
/// their defaults so equality and serialization stay canonical.
struct topology_config {
  topology_kind kind = topology_kind::complete;
  std::uint32_t ring_k = 1;      ///< ring: links to the k nearest on each side
  std::uint32_t degree = 4;      ///< random_regular: uniform degree d
  std::uint64_t graph_seed = 1;  ///< random_regular: wiring seed
  std::uint32_t tiers = 3;       ///< tiered: number of layers
  double trust_decay = 0.5;      ///< trust_weighted: per-hop weight decay in (0,1]

  /// Parameter ranges that admit a connected, self-loop-free graph on
  /// `node_count` nodes; infeasible combinations are skipped by the
  /// campaign expander and rejected (loudly) by the CLI and topology::make.
  [[nodiscard]] bool valid_for(std::uint32_t node_count) const noexcept;

  /// Compact label, e.g. "complete", "ring(2)", "regular(4@1)",
  /// "tiered(3)", "trust(0.5)". Deterministic; used in CSV cells.
  [[nodiscard]] std::string label() const;

  friend bool operator==(const topology_config&,
                         const topology_config&) = default;
};

/// One undirected weighted edge, as produced by the per-family generators.
/// Both storage modes of `topology` are built from the same edge list, which
/// is what makes them element-identical per node.
struct weighted_edge {
  node_id u = 0;
  node_id v = 0;
  double w = 1.0;
};

/// A borrowed, non-owning view of one node's sorted adjacency: neighbor
/// ids ascending, the parallel edge weights, and the inclusive cumulative
/// weight table the walk sampler inverts. Valid as long as the owning
/// topology lives; identical contents whichever storage mode backs it.
struct neighbor_view {
  const node_id* ids = nullptr;
  const double* weights = nullptr;
  const double* cum = nullptr;  ///< inclusive prefix sums of `weights`
  std::uint32_t size = 0;
};

/// An immutable weighted rerouting graph over nodes 0..N-1. Undirected,
/// no self-loops, connected (constructors enforce it); the receiver R stays
/// an external party reachable from every node, exactly as in the paper.
///
/// The generative routing model on a topology is the weighted random walk:
/// each forwarding step draws the next hop among the current node's
/// neighbors with probability proportional to edge weight (the paper's
/// "complicated" cycle-allowing model of Sec. 3.2 is precisely this walk on
/// the complete graph, which is how the clique machinery stays a special
/// case — see cyclic_brute_force_analyzer and the conformance suite).
///
/// Two storage modes share this one type:
///   * vector mode (the default, `make` and the named constructors):
///     per-node std::vector adjacency — cheap to build, the right shape for
///     the small/medium-N inference engines, and bit-identical to every
///     release before CSR existed;
///   * CSR mode (`make_csr`): three flat arrays (offsets, neighbors,
///     weights) plus per-node inclusive cumulative-weight sampling tables,
///     built once from the same edge list and immutable after that. One
///     allocation per array instead of one per node, which is what lets
///     million-node graphs fit and route_plan traverse them at memory
///     bandwidth.
/// `adjacency(u)` is the mode-independent accessor; the vector-reference
/// accessors `neighbors`/`neighbor_weights` remain for the small-N engines
/// and contract-fail on a CSR graph rather than materialize copies.
class topology {
 public:
  /// Builds the graph a config describes (vector mode). Preconditions:
  /// node_count >= 2, cfg.valid_for(node_count).
  [[nodiscard]] static topology make(std::uint32_t node_count,
                                     const topology_config& cfg);

  /// Builds the same graph `make` would — same generators, same seeds, an
  /// element-identical adjacency per node — in compressed-sparse-row
  /// storage. Preconditions mirror `make`.
  [[nodiscard]] static topology make_csr(std::uint32_t node_count,
                                         const topology_config& cfg);

  /// The paper's clique: every ordered pair linked, uniform weights.
  [[nodiscard]] static topology complete(std::uint32_t node_count);

  /// Circulant ring: u ~ u±1..±k (mod N). Preconditions: k >= 1,
  /// 2k <= node_count - 1.
  [[nodiscard]] static topology ring(std::uint32_t node_count, std::uint32_t k);

  /// Seeded random d-regular simple connected graph: a connected circulant
  /// base randomized by degree-preserving double-edge swaps, re-attempted
  /// until connected (d == 2 draws a random Hamiltonian cycle instead).
  /// Preconditions: 2 <= d < node_count, N*d even.
  [[nodiscard]] static topology random_regular(std::uint32_t node_count,
                                               std::uint32_t degree,
                                               std::uint64_t seed);

  /// Stratified layout: tier(u) = u*tiers/N; u ~ v iff their tiers are
  /// adjacent. Preconditions: 2 <= tiers <= node_count.
  [[nodiscard]] static topology tiered(std::uint32_t node_count,
                                       std::uint32_t tiers);

  /// Complete adjacency with w(u,v) = decay^(ring_distance(u,v) - 1) — a
  /// smooth interpolation from the uniform clique (decay = 1) toward a
  /// nearest-neighbour ring (decay -> 0). Preconditions: 0 < decay <= 1.
  [[nodiscard]] static topology trust_weighted(std::uint32_t node_count,
                                               double decay);

  [[nodiscard]] std::uint32_t node_count() const noexcept { return n_; }
  [[nodiscard]] const topology_config& config() const noexcept { return cfg_; }
  [[nodiscard]] bool is_complete() const noexcept {
    return cfg_.kind == topology_kind::complete;
  }

  /// True for graphs built by make_csr.
  [[nodiscard]] bool is_csr() const noexcept { return csr_; }

  /// Undirected edge count (each u~v counted once).
  [[nodiscard]] std::uint64_t edge_count() const noexcept {
    return edge_count_;
  }

  /// u's sorted adjacency in either storage mode. The view borrows from
  /// this topology and is invalidated by its destruction.
  [[nodiscard]] neighbor_view adjacency(node_id u) const;

  [[nodiscard]] std::uint32_t degree(node_id u) const;

  /// Neighbors of u, ascending; parallel to neighbor_weights(u).
  /// Vector mode only (the small-N engines); CSR callers use adjacency().
  [[nodiscard]] const std::vector<node_id>& neighbors(node_id u) const;
  [[nodiscard]] const std::vector<double>& neighbor_weights(node_id u) const;

  [[nodiscard]] bool has_edge(node_id u, node_id v) const;

  /// w(u,v); 0 when the edge is absent.
  [[nodiscard]] double edge_weight(node_id u, node_id v) const;

  /// Sum of w(u, .) over u's neighbors (> 0: no isolated nodes).
  [[nodiscard]] double total_weight(node_id u) const;

  /// One walk step: Pr(next = v | at u) = w(u,v) / total_weight(u).
  [[nodiscard]] double transition_prob(node_id u, node_id v) const;

  /// Draws the next hop from u per the walk model. Uniform-weight graphs
  /// use a single next_below draw; weighted graphs invert the per-node
  /// cumulative weight table. Draw-identical across storage modes.
  [[nodiscard]] node_id sample_neighbor(node_id u, stats::rng& gen) const;

  [[nodiscard]] std::uint32_t min_degree() const noexcept { return min_degree_; }
  [[nodiscard]] std::uint32_t max_degree() const noexcept { return max_degree_; }

  /// True when every node reaches every other (constructors guarantee it;
  /// exposed so tests can assert the invariant directly).
  [[nodiscard]] bool connected() const;

 private:
  topology(std::uint32_t n, topology_config cfg, bool csr);

  /// Registers the undirected edge u~v with the given weight (vector mode).
  void add_edge(node_id u, node_id v, double w);

  /// Sorts adjacency, builds cumulative tables, checks invariants.
  void finalize();

  /// Builds the flat CSR arrays from an undirected edge list, then runs
  /// the same invariant checks finalize() does.
  void finalize_csr(const std::vector<weighted_edge>& edges);

  std::uint32_t n_ = 0;
  topology_config cfg_;
  bool csr_ = false;
  bool uniform_weights_ = true;
  std::uint32_t min_degree_ = 0;
  std::uint32_t max_degree_ = 0;
  std::uint64_t edge_count_ = 0;
  std::vector<std::vector<node_id>> adj_;
  std::vector<std::vector<double>> weights_;
  std::vector<std::vector<double>> cum_;    // inclusive cumulative weights
  std::vector<double> total_;
  // CSR mode: adjacency of u lives at [csr_off_[u], csr_off_[u+1]) in the
  // three parallel arrays below; csr_cum_ holds the per-node inclusive
  // cumulative weights (the same table cum_ holds per node).
  std::vector<std::uint64_t> csr_off_;
  std::vector<node_id> csr_nbr_;
  std::vector<double> csr_w_;
  std::vector<double> csr_cum_;
};

}  // namespace anonpath::net
