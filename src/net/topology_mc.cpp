#include "src/net/topology_mc.hpp"

#include <cmath>
#include <string>
#include <unordered_map>

#include "src/anonymity/entropy.hpp"
#include "src/anonymity/observation.hpp"
#include "src/anonymity/path_sampler.hpp"
#include "src/net/topology_posterior.hpp"
#include "src/stats/contract.hpp"
#include "src/stats/kahan.hpp"
#include "src/stats/rng.hpp"
#include "src/stats/thread_pool.hpp"

namespace anonpath::net {

topology_mc_estimate estimate_topology_degree(
    system_params sys, const std::vector<node_id>& compromised,
    const path_length_distribution& lengths, const topology_config& cfg,
    std::uint64_t samples, std::uint64_t seed, unsigned threads,
    std::uint64_t shards) {
  ANONPATH_EXPECTS(samples >= 1);
  if (shards == 0) shards = 64;
  if (shards > samples) shards = samples;

  const topology topo = topology::make(sys.node_count, cfg);
  // One shared engine: sender scoring is const and allocation-local, so
  // every worker can use it concurrently.
  const topology_posterior_engine engine(sys, compromised, lengths, topo);

  struct shard_acc {
    stats::kahan_sum sum;
    stats::kahan_sum sum_sq;
    std::uint64_t count = 0;
  };
  std::vector<shard_acc> accs(shards);

  std::vector<bool> compromised_flag(sys.node_count, false);
  for (node_id c : compromised) compromised_flag[c] = true;

  stats::parallel_for(threads, shards, [&](std::uint64_t shard, unsigned) {
    stats::rng gen = stats::rng::stream(seed, shard);
    const std::uint64_t begin = shard * samples / shards;
    const std::uint64_t end = (shard + 1) * samples / shards;
    shard_acc& acc = accs[shard];
    observation obs;
    std::vector<double> post;
    route r;
    std::string key;
    // Sampled walks collapse onto few distinct observation classes (the
    // same effect the clique MC engine's dedup layer exploits); the
    // posterior entropy depends only on the class, so memoize it per
    // shard and pay the transfer-matrix DP once per class.
    std::unordered_map<std::string, double> entropy_memo;
    for (std::uint64_t i = begin; i < end; ++i) {
      r.sender = static_cast<node_id>(gen.next_below(sys.node_count));
      const path_length l = lengths.sample(gen);
      sample_topology_route_into(topo, r.sender, l, gen, r);
      observe_into(r, compromised_flag, obs);
      obs.key_into(key);
      const auto it = entropy_memo.find(key);
      double h;
      if (it != entropy_memo.end()) {
        h = it->second;
      } else {
        const bool ok = engine.try_sender_posterior(obs, post);
        ANONPATH_ENSURES(ok);  // model-generated observations always explain
        h = entropy_bits(post);
        entropy_memo.emplace(key, h);
      }
      acc.sum.add(h);
      acc.sum_sq.add(h * h);
      ++acc.count;
    }
  });

  // Reduce in shard order: bit-identical for any thread count.
  stats::kahan_sum sum;
  stats::kahan_sum sum_sq;
  std::uint64_t count = 0;
  for (const shard_acc& acc : accs) {
    sum.add(acc.sum.value());
    sum_sq.add(acc.sum_sq.value());
    count += acc.count;
  }

  topology_mc_estimate est;
  est.samples = count;
  est.shards = shards;
  est.degree = sum.value() / static_cast<double>(count);
  if (count > 1) {
    const double var =
        (sum_sq.value() - sum.value() * est.degree) /
        static_cast<double>(count - 1);
    est.std_error = std::sqrt((var > 0.0 ? var : 0.0) /
                              static_cast<double>(count));
  }
  return est;
}

}  // namespace anonpath::net
