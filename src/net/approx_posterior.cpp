#include "src/net/approx_posterior.hpp"

#include <utility>

#include "src/stats/contract.hpp"

namespace anonpath::net {

approx_topology_posterior::approx_topology_posterior(
    system_params sys, std::vector<node_id> compromised,
    path_length_distribution lengths, topology topo)
    : engine_(sys, std::move(compromised), std::move(lengths),
              std::move(topo)) {}

approx_topology_posterior::approx_topology_posterior(
    system_params sys, std::vector<node_id> compromised,
    path_length_distribution lengths, topology topo,
    std::vector<bool> support)
    : engine_(sys, std::move(compromised), std::move(lengths),
              std::move(topo), std::move(support)) {}

namespace {

std::vector<bool> routed_support(const topology& topo,
                                 const routing_config& routing,
                                 const std::vector<node_id>& sources,
                                 const std::vector<node_id>& exits) {
  ANONPATH_EXPECTS(routing.valid() && routing.planned());
  return kpath_support(topo, routing.k, sources, exits);
}

}  // namespace

approx_topology_posterior::approx_topology_posterior(
    system_params sys, std::vector<node_id> compromised,
    path_length_distribution lengths, topology topo,
    const routing_config& routing, const std::vector<node_id>& sources,
    const std::vector<node_id>& exits)
    : engine_(sys, std::move(compromised), std::move(lengths), topo,
              routed_support(topo, routing, sources, exits)) {}

std::uint32_t approx_topology_posterior::support_size() const noexcept {
  const std::vector<bool>& s = engine_.interior_support();
  if (s.empty()) return engine_.graph().node_count();
  std::uint32_t count = 0;
  for (bool b : s) count += b ? 1u : 0u;
  return count;
}

}  // namespace anonpath::net
