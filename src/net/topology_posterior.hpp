#pragma once

#include <vector>

#include "src/anonymity/length_distribution.hpp"
#include "src/anonymity/observation.hpp"
#include "src/anonymity/types.hpp"
#include "src/net/topology.hpp"

namespace anonpath::net {

/// Exact Bayesian sender inference for the weighted-walk routing model on a
/// restricted topology — the graph-aware counterpart of the clique
/// posterior_engine. Where the clique engine's likelihood collapses into
/// closed-form composition counts and falling factorials, no such closed
/// form exists on a general graph; instead the walk model's Markov
/// structure is exploited directly:
///
///   * the observation's chained reports pin contiguous walk segments
///     whose transition probabilities are an s-independent constant;
///   * the unobserved stretches between segments are walks through honest
///     nodes only (full collection: a silent compromised node proves
///     absence), whose probabilities are powers of the transition matrix
///     restricted to honest columns — computed by sparse DP over the
///     adjacency lists, never by materializing an N x N matrix;
///   * gap lengths convolve across segments against the length pmf, and
///     only the first gap (sender -> first observed node) depends on the
///     hypothesis s, so one backward DP scores all N candidates at once.
///
/// Cost per observation is O(max_length * |E| + N * max_length^2) — exact
/// inference at simulation scale, pinned event-by-event against the
/// exhaustive graph_oracle on small graphs by the conformance suite.
///
/// Supports full-coalition and partial-coverage observation shapes
/// (receiver_observed == false marginalizes over the open walk tail).
/// Gapped (timing-correlator) observations are not supported on restricted
/// graphs — the simulator refuses that combination up front.
class topology_posterior_engine {
 public:
  /// Preconditions: sys.valid(); topo.node_count() == sys.node_count;
  /// `compromised` lists distinct ids < N, |compromised| == C.
  ///
  /// `interior_support` optionally prunes the honest-interior state space:
  /// a node outside the mask never occupies a non-sender walk position in
  /// the gap DPs — as an unobserved interior, a gap endpoint, or the open
  /// tail — so hypotheses that need it there get zero weight. (Sender
  /// positions are exempt, and transitions strictly inside observed
  /// fragments are s-independent constants that cancel in normalization,
  /// so the mask never touches them.) Empty (the default) or all-true
  /// masks leave the arithmetic bit-identical to the unmasked engine;
  /// proper subsets make the DP approximate but cheaper, which is what
  /// approx_topology_posterior builds on. When non-empty, its size must
  /// equal sys.node_count.
  topology_posterior_engine(system_params sys,
                            std::vector<node_id> compromised,
                            path_length_distribution lengths, topology topo,
                            std::vector<bool> interior_support = {});

  /// Posterior Pr(S = i | obs) over all N nodes. Precondition: obs is
  /// explainable under the walk model (always true for observations the
  /// model itself generated) and not gapped.
  [[nodiscard]] std::vector<double> sender_posterior(
      const observation& obs) const;

  /// Computes the posterior into `out` (resized to N); returns false —
  /// leaving `out` all-zero — when no sender hypothesis has positive
  /// likelihood (a fuzzed or mis-assembled observation).
  [[nodiscard]] bool try_sender_posterior(const observation& obs,
                                          std::vector<double>& out) const;

  /// True iff sender_posterior(obs) is well defined.
  [[nodiscard]] bool explainable(const observation& obs) const;

  [[nodiscard]] const system_params& system() const noexcept { return sys_; }
  [[nodiscard]] const std::vector<node_id>& compromised() const noexcept {
    return compromised_;
  }
  [[nodiscard]] const path_length_distribution& lengths() const noexcept {
    return lengths_;
  }
  [[nodiscard]] const topology& graph() const noexcept { return topo_; }

  /// The interior-support mask as given (empty = unpruned).
  [[nodiscard]] const std::vector<bool>& interior_support() const noexcept {
    return support_;
  }

 private:
  /// One honest-interior DP step: out[y] = sum_x in[x] * T(x->y) over
  /// honest in-support y (forward == false runs the transpose, for the
  /// sender gap).
  void honest_step(const std::vector<double>& in, std::vector<double>& out,
                   bool forward) const;

  system_params sys_;
  std::vector<node_id> compromised_;
  std::vector<bool> compromised_flag_;
  /// honest_interior_[x]: x may occupy an unobserved interior position —
  /// honest AND inside the support mask (all honest nodes when unmasked).
  std::vector<bool> honest_interior_;
  std::vector<bool> support_;
  path_length_distribution lengths_;
  topology topo_;
};

}  // namespace anonpath::net
