#include "src/net/topology.hpp"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <unordered_set>
#include <utility>

#include "src/stats/contract.hpp"

namespace anonpath::net {

const char* topology_kind_name(topology_kind kind) noexcept {
  switch (kind) {
    case topology_kind::complete: return "complete";
    case topology_kind::ring: return "ring";
    case topology_kind::random_regular: return "regular";
    case topology_kind::tiered: return "tiered";
    case topology_kind::trust_weighted: return "trust";
  }
  return "?";
}

bool topology_config::valid_for(std::uint32_t node_count) const noexcept {
  if (node_count < 2) return false;
  switch (kind) {
    case topology_kind::complete:
      return true;
    case topology_kind::ring:
      return ring_k >= 1 && 2ull * ring_k <= node_count - 1;
    case topology_kind::random_regular:
      return degree >= 2 && degree < node_count &&
             (static_cast<std::uint64_t>(node_count) * degree) % 2 == 0;
    case topology_kind::tiered:
      return tiers >= 2 && tiers <= node_count;
    case topology_kind::trust_weighted:
      return trust_decay > 0.0 && trust_decay <= 1.0;
  }
  return false;
}

std::string topology_config::label() const {
  char buf[64];
  switch (kind) {
    case topology_kind::complete:
      return "complete";
    case topology_kind::ring:
      std::snprintf(buf, sizeof buf, "ring(%u)", ring_k);
      return buf;
    case topology_kind::random_regular:
      std::snprintf(buf, sizeof buf, "regular(%u@%llu)", degree,
                    static_cast<unsigned long long>(graph_seed));
      return buf;
    case topology_kind::tiered:
      std::snprintf(buf, sizeof buf, "tiered(%u)", tiers);
      return buf;
    case topology_kind::trust_weighted:
      std::snprintf(buf, sizeof buf, "trust(%g)", trust_decay);
      return buf;
  }
  return "?";
}

namespace {

/// Symmetric edge key: the same u~v in either orientation.
std::uint64_t edge_key(node_id u, node_id v) {
  const node_id lo = u < v ? u : v;
  const node_id hi = u < v ? v : u;
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

/// Union-find connectivity over an edge list: the same answer a BFS over
/// the built adjacency gives, without materializing it — the per-attempt
/// connectivity check in the random_regular generator runs on the raw edge
/// list this way.
bool edges_connect(std::uint32_t n, const std::vector<weighted_edge>& edges) {
  std::vector<node_id> parent(n);
  std::iota(parent.begin(), parent.end(), 0u);
  const auto find = [&](node_id x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];  // path halving
      x = parent[x];
    }
    return x;
  };
  std::uint32_t components = n;
  for (const weighted_edge& e : edges) {
    const node_id a = find(e.u);
    const node_id b = find(e.v);
    if (a != b) {
      parent[a] = b;
      --components;
    }
  }
  return components == 1;
}

void build_complete_edges(std::uint32_t n, std::vector<weighted_edge>& out) {
  out.reserve(static_cast<std::size_t>(n) * (n - 1) / 2);
  for (node_id u = 0; u < n; ++u)
    for (node_id v = u + 1; v < n; ++v) out.push_back({u, v, 1.0});
}

void build_ring_edges(std::uint32_t n, std::uint32_t k,
                      std::vector<weighted_edge>& out) {
  out.reserve(static_cast<std::size_t>(n) * k);
  for (node_id u = 0; u < n; ++u)
    for (std::uint32_t j = 1; j <= k; ++j)
      out.push_back({u, static_cast<node_id>((u + j) % n), 1.0});
}

void build_random_regular_edges(std::uint32_t n, std::uint32_t degree,
                                std::uint64_t seed,
                                std::vector<weighted_edge>& out) {
  // d == 2 specializes to a seeded random Hamiltonian cycle (double-edge
  // swaps on 2-regular graphs split them into cycle unions almost surely).
  if (degree == 2) {
    stats::rng gen = stats::rng::stream(seed, 0);
    std::vector<node_id> order(n);
    for (node_id u = 0; u < n; ++u) order[u] = u;
    for (std::size_t i = order.size(); i > 1; --i)
      std::swap(order[i - 1], order[gen.next_below(i)]);
    out.reserve(n);
    for (node_id i = 0; i < n; ++i)
      out.push_back({order[i], order[(i + 1) % n], 1.0});
    return;
  }

  // d >= 3: start from a connected circulant d-regular base and randomize
  // with seeded degree-preserving double-edge swaps (the standard Markov
  // chain over d-regular simple graphs). Swaps can in principle disconnect
  // the graph; a random d-regular graph is connected with overwhelming
  // probability for d >= 3, so the per-attempt connectivity check makes a
  // handful of deterministic attempts practically infallible. Edge
  // presence lives in a hash set of symmetric keys — O(N*d) space, where
  // the dense N x N bitmap this replaced made million-node graphs
  // impossible — with the exact same accept/reject decisions and rng draw
  // order, so every (seed, n, d) still wires the identical graph.
  for (std::uint64_t attempt = 0; attempt < 128; ++attempt) {
    stats::rng gen = stats::rng::stream(seed, attempt);

    std::vector<std::pair<node_id, node_id>> edges;
    std::unordered_set<std::uint64_t> have;
    edges.reserve(static_cast<std::size_t>(n) * degree / 2);
    have.reserve(edges.capacity() * 2);
    const auto put = [&](node_id u, node_id v) {
      if (u == v || have.count(edge_key(u, v)) != 0) return false;
      have.insert(edge_key(u, v));
      edges.emplace_back(u, v);
      return true;
    };
    for (std::uint32_t off = 1; off <= degree / 2; ++off)
      for (node_id u = 0; u < n; ++u)
        put(u, static_cast<node_id>((u + off) % n));
    if (degree % 2 == 1)  // n is even here (valid_for: n*d even)
      for (node_id u = 0; u < n / 2; ++u)
        put(u, u + n / 2);

    const std::uint64_t swaps =
        20ull * n * degree;  // well past the chain's mixing regime
    for (std::uint64_t i = 0; i < swaps; ++i) {
      const std::size_t e1 = gen.next_below(edges.size());
      const std::size_t e2 = gen.next_below(edges.size());
      if (e1 == e2) continue;
      auto [a, b] = edges[e1];
      auto [c, d] = edges[e2];
      if (gen.next_below(2) == 1) std::swap(c, d);
      // Rewire (a,b),(c,d) -> (a,c),(b,d) when that keeps the graph simple.
      if (a == c || a == d || b == c || b == d) continue;
      if (have.count(edge_key(a, c)) != 0 || have.count(edge_key(b, d)) != 0)
        continue;
      have.erase(edge_key(a, b));
      have.erase(edge_key(c, d));
      have.insert(edge_key(a, c));
      have.insert(edge_key(b, d));
      edges[e1] = {a, c};
      edges[e2] = {b, d};
    }

    out.clear();
    out.reserve(edges.size());
    for (const auto& [u, v] : edges) out.push_back({u, v, 1.0});
    if (edges_connect(n, out)) return;
  }
  ANONPATH_EXPECTS(!"random_regular: no connected swap-randomized graph");
}

void build_tiered_edges(std::uint32_t n, std::uint32_t tiers,
                        std::vector<weighted_edge>& out) {
  const auto tier_of = [&](node_id u) {
    return static_cast<std::uint32_t>(
        (static_cast<std::uint64_t>(u) * tiers) / n);
  };
  for (node_id u = 0; u < n; ++u)
    for (node_id v = u + 1; v < n; ++v) {
      const std::uint32_t tu = tier_of(u);
      const std::uint32_t tv = tier_of(v);
      if (tu + 1 == tv || tv + 1 == tu) out.push_back({u, v, 1.0});
    }
}

void build_trust_edges(std::uint32_t n, double decay,
                       std::vector<weighted_edge>& out) {
  // decay^(d-1) by ring distance d, tabulated once so construction stays
  // O(N^2) instead of O(N^3).
  std::vector<double> power(n / 2 + 1, 1.0);
  for (std::size_t d = 2; d < power.size(); ++d)
    power[d] = power[d - 1] * decay;
  out.reserve(static_cast<std::size_t>(n) * (n - 1) / 2);
  for (node_id u = 0; u < n; ++u)
    for (node_id v = u + 1; v < n; ++v) {
      const std::uint32_t d = std::min(v - u, n - (v - u));
      out.push_back({u, v, power[d]});
    }
}

/// The one edge-list generator both storage modes consume. Preconditions:
/// cfg.valid_for(n).
void build_edges(std::uint32_t n, const topology_config& cfg,
                 std::vector<weighted_edge>& out) {
  switch (cfg.kind) {
    case topology_kind::complete:
      build_complete_edges(n, out);
      return;
    case topology_kind::ring:
      build_ring_edges(n, cfg.ring_k, out);
      return;
    case topology_kind::random_regular:
      build_random_regular_edges(n, cfg.degree, cfg.graph_seed, out);
      return;
    case topology_kind::tiered:
      build_tiered_edges(n, cfg.tiers, out);
      return;
    case topology_kind::trust_weighted:
      build_trust_edges(n, cfg.trust_decay, out);
      return;
  }
  ANONPATH_EXPECTS(!"unknown topology kind");
}

}  // namespace

topology::topology(std::uint32_t n, topology_config cfg, bool csr)
    : n_(n), cfg_(cfg), csr_(csr), total_(n, 0.0) {
  if (!csr_) {
    adj_.resize(n);
    weights_.resize(n);
    cum_.resize(n);
  }
}

void topology::add_edge(node_id u, node_id v, double w) {
  adj_[u].push_back(v);
  weights_[u].push_back(w);
  adj_[v].push_back(u);
  weights_[v].push_back(w);
}

void topology::finalize() {
  min_degree_ = ~0u;
  max_degree_ = 0;
  std::uint64_t directed = 0;
  for (node_id u = 0; u < n_; ++u) {
    // Sort adjacency ascending, carrying weights along.
    std::vector<std::size_t> order(adj_[u].size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return adj_[u][a] < adj_[u][b];
    });
    std::vector<node_id> nbr(adj_[u].size());
    std::vector<double> w(adj_[u].size());
    for (std::size_t i = 0; i < order.size(); ++i) {
      nbr[i] = adj_[u][order[i]];
      w[i] = weights_[u][order[i]];
    }
    adj_[u] = std::move(nbr);
    weights_[u] = std::move(w);

    cum_[u].resize(adj_[u].size());
    double acc = 0.0;
    for (std::size_t i = 0; i < adj_[u].size(); ++i) {
      ANONPATH_EXPECTS(adj_[u][i] != u);  // no self-loops
      ANONPATH_EXPECTS(i == 0 || adj_[u][i] != adj_[u][i - 1]);  // simple
      ANONPATH_EXPECTS(weights_[u][i] > 0.0);
      acc += weights_[u][i];
      cum_[u][i] = acc;
      if (uniform_weights_ && weights_[u][i] != weights_[u][0])
        uniform_weights_ = false;
    }
    total_[u] = acc;
    const auto deg = static_cast<std::uint32_t>(adj_[u].size());
    directed += deg;
    min_degree_ = std::min(min_degree_, deg);
    max_degree_ = std::max(max_degree_, deg);
  }
  edge_count_ = directed / 2;
  ANONPATH_ENSURES(min_degree_ >= 1);
  ANONPATH_ENSURES(connected());
}

void topology::finalize_csr(const std::vector<weighted_edge>& edges) {
  // Expand each undirected edge into its two directed arcs, sort by
  // (source, target), and lay the result out flat. The per-node segments
  // come out ascending by construction — the same element order
  // finalize()'s per-node sort produces.
  struct arc {
    std::uint64_t key;  // source << 32 | target
    double w;
  };
  std::vector<arc> arcs;
  arcs.reserve(edges.size() * 2);
  for (const weighted_edge& e : edges) {
    ANONPATH_EXPECTS(e.u < n_ && e.v < n_);
    ANONPATH_EXPECTS(e.u != e.v);  // no self-loops
    ANONPATH_EXPECTS(e.w > 0.0);
    arcs.push_back({(static_cast<std::uint64_t>(e.u) << 32) | e.v, e.w});
    arcs.push_back({(static_cast<std::uint64_t>(e.v) << 32) | e.u, e.w});
  }
  std::sort(arcs.begin(), arcs.end(),
            [](const arc& a, const arc& b) { return a.key < b.key; });

  csr_off_.assign(static_cast<std::size_t>(n_) + 1, 0);
  csr_nbr_.resize(arcs.size());
  csr_w_.resize(arcs.size());
  csr_cum_.resize(arcs.size());
  for (std::size_t i = 0; i < arcs.size(); ++i) {
    ANONPATH_EXPECTS(i == 0 || arcs[i].key != arcs[i - 1].key);  // simple
    csr_off_[static_cast<std::size_t>(arcs[i].key >> 32) + 1] += 1;
    csr_nbr_[i] = static_cast<node_id>(arcs[i].key & 0xFFFFFFFFull);
    csr_w_[i] = arcs[i].w;
  }
  for (std::size_t u = 0; u < n_; ++u) csr_off_[u + 1] += csr_off_[u];

  min_degree_ = ~0u;
  max_degree_ = 0;
  for (node_id u = 0; u < n_; ++u) {
    double acc = 0.0;
    for (std::uint64_t i = csr_off_[u]; i < csr_off_[u + 1]; ++i) {
      acc += csr_w_[i];
      csr_cum_[i] = acc;
      // Per-node uniformity, exactly as finalize() detects it: uniform
      // weights within each node's list are what let the sampler take the
      // single next_below draw.
      if (uniform_weights_ && csr_w_[i] != csr_w_[csr_off_[u]])
        uniform_weights_ = false;
    }
    total_[u] = acc;
    const auto deg = static_cast<std::uint32_t>(csr_off_[u + 1] - csr_off_[u]);
    min_degree_ = std::min(min_degree_, deg);
    max_degree_ = std::max(max_degree_, deg);
  }
  edge_count_ = edges.size();
  ANONPATH_ENSURES(min_degree_ >= 1);
  ANONPATH_ENSURES(connected());
}

bool topology::connected() const {
  std::vector<bool> seen(n_, false);
  std::vector<node_id> stack{0};
  seen[0] = true;
  std::uint32_t reached = 1;
  while (!stack.empty()) {
    const node_id u = stack.back();
    stack.pop_back();
    const neighbor_view a = adjacency(u);
    for (std::uint32_t i = 0; i < a.size; ++i) {
      const node_id v = a.ids[i];
      if (!seen[v]) {
        seen[v] = true;
        ++reached;
        stack.push_back(v);
      }
    }
  }
  return reached == n_;
}

topology topology::complete(std::uint32_t node_count) {
  return make(node_count, topology_config{});
}

topology topology::ring(std::uint32_t node_count, std::uint32_t k) {
  topology_config cfg;
  cfg.kind = topology_kind::ring;
  cfg.ring_k = k;
  return make(node_count, cfg);
}

topology topology::random_regular(std::uint32_t node_count,
                                  std::uint32_t degree, std::uint64_t seed) {
  topology_config cfg;
  cfg.kind = topology_kind::random_regular;
  cfg.degree = degree;
  cfg.graph_seed = seed;
  return make(node_count, cfg);
}

topology topology::tiered(std::uint32_t node_count, std::uint32_t tiers) {
  topology_config cfg;
  cfg.kind = topology_kind::tiered;
  cfg.tiers = tiers;
  return make(node_count, cfg);
}

topology topology::trust_weighted(std::uint32_t node_count, double decay) {
  topology_config cfg;
  cfg.kind = topology_kind::trust_weighted;
  cfg.trust_decay = decay;
  return make(node_count, cfg);
}

topology topology::make(std::uint32_t node_count, const topology_config& cfg) {
  ANONPATH_EXPECTS(cfg.valid_for(node_count));
  std::vector<weighted_edge> edges;
  build_edges(node_count, cfg, edges);
  topology t(node_count, cfg, /*csr=*/false);
  for (const weighted_edge& e : edges) t.add_edge(e.u, e.v, e.w);
  t.finalize();
  return t;
}

topology topology::make_csr(std::uint32_t node_count,
                            const topology_config& cfg) {
  ANONPATH_EXPECTS(cfg.valid_for(node_count));
  std::vector<weighted_edge> edges;
  build_edges(node_count, cfg, edges);
  topology t(node_count, cfg, /*csr=*/true);
  t.finalize_csr(edges);
  return t;
}

neighbor_view topology::adjacency(node_id u) const {
  ANONPATH_EXPECTS(u < n_);
  if (csr_) {
    const std::uint64_t b = csr_off_[u];
    const std::uint64_t e = csr_off_[u + 1];
    return {csr_nbr_.data() + b, csr_w_.data() + b, csr_cum_.data() + b,
            static_cast<std::uint32_t>(e - b)};
  }
  return {adj_[u].data(), weights_[u].data(), cum_[u].data(),
          static_cast<std::uint32_t>(adj_[u].size())};
}

std::uint32_t topology::degree(node_id u) const {
  ANONPATH_EXPECTS(u < n_);
  if (csr_) return static_cast<std::uint32_t>(csr_off_[u + 1] - csr_off_[u]);
  return static_cast<std::uint32_t>(adj_[u].size());
}

const std::vector<node_id>& topology::neighbors(node_id u) const {
  ANONPATH_EXPECTS(u < n_);
  ANONPATH_EXPECTS(!csr_);  // vector-mode accessor; CSR uses adjacency()
  return adj_[u];
}

const std::vector<double>& topology::neighbor_weights(node_id u) const {
  ANONPATH_EXPECTS(u < n_);
  ANONPATH_EXPECTS(!csr_);  // vector-mode accessor; CSR uses adjacency()
  return weights_[u];
}

bool topology::has_edge(node_id u, node_id v) const {
  ANONPATH_EXPECTS(u < n_ && v < n_);
  const neighbor_view a = adjacency(u);
  return std::binary_search(a.ids, a.ids + a.size, v);
}

double topology::edge_weight(node_id u, node_id v) const {
  ANONPATH_EXPECTS(u < n_ && v < n_);
  const neighbor_view a = adjacency(u);
  const auto it = std::lower_bound(a.ids, a.ids + a.size, v);
  if (it == a.ids + a.size || *it != v) return 0.0;
  return a.weights[it - a.ids];
}

double topology::total_weight(node_id u) const {
  ANONPATH_EXPECTS(u < n_);
  return total_[u];
}

double topology::transition_prob(node_id u, node_id v) const {
  return edge_weight(u, v) / total_[u];
}

node_id topology::sample_neighbor(node_id u, stats::rng& gen) const {
  ANONPATH_EXPECTS(u < n_);
  const neighbor_view a = adjacency(u);
  if (uniform_weights_)
    return a.ids[static_cast<std::size_t>(gen.next_below(a.size))];
  const double x = gen.next_double() * total_[u];
  auto idx = static_cast<std::size_t>(
      std::upper_bound(a.cum, a.cum + a.size, x) - a.cum);
  if (idx >= a.size) idx = a.size - 1;  // x == total after rounding
  return a.ids[idx];
}

}  // namespace anonpath::net
