#include "src/net/topology.hpp"

#include <algorithm>
#include <cstdio>

#include "src/stats/contract.hpp"

namespace anonpath::net {

const char* topology_kind_name(topology_kind kind) noexcept {
  switch (kind) {
    case topology_kind::complete: return "complete";
    case topology_kind::ring: return "ring";
    case topology_kind::random_regular: return "regular";
    case topology_kind::tiered: return "tiered";
    case topology_kind::trust_weighted: return "trust";
  }
  return "?";
}

bool topology_config::valid_for(std::uint32_t node_count) const noexcept {
  if (node_count < 2) return false;
  switch (kind) {
    case topology_kind::complete:
      return true;
    case topology_kind::ring:
      return ring_k >= 1 && 2ull * ring_k <= node_count - 1;
    case topology_kind::random_regular:
      return degree >= 2 && degree < node_count &&
             (static_cast<std::uint64_t>(node_count) * degree) % 2 == 0;
    case topology_kind::tiered:
      return tiers >= 2 && tiers <= node_count;
    case topology_kind::trust_weighted:
      return trust_decay > 0.0 && trust_decay <= 1.0;
  }
  return false;
}

std::string topology_config::label() const {
  char buf[64];
  switch (kind) {
    case topology_kind::complete:
      return "complete";
    case topology_kind::ring:
      std::snprintf(buf, sizeof buf, "ring(%u)", ring_k);
      return buf;
    case topology_kind::random_regular:
      std::snprintf(buf, sizeof buf, "regular(%u@%llu)", degree,
                    static_cast<unsigned long long>(graph_seed));
      return buf;
    case topology_kind::tiered:
      std::snprintf(buf, sizeof buf, "tiered(%u)", tiers);
      return buf;
    case topology_kind::trust_weighted:
      std::snprintf(buf, sizeof buf, "trust(%g)", trust_decay);
      return buf;
  }
  return "?";
}

topology::topology(std::uint32_t n, topology_config cfg)
    : n_(n),
      cfg_(cfg),
      adj_(n),
      weights_(n),
      cum_(n),
      total_(n, 0.0) {}

void topology::add_edge(node_id u, node_id v, double w) {
  adj_[u].push_back(v);
  weights_[u].push_back(w);
  adj_[v].push_back(u);
  weights_[v].push_back(w);
}

void topology::finalize() {
  min_degree_ = ~0u;
  max_degree_ = 0;
  for (node_id u = 0; u < n_; ++u) {
    // Sort adjacency ascending, carrying weights along.
    std::vector<std::size_t> order(adj_[u].size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return adj_[u][a] < adj_[u][b];
    });
    std::vector<node_id> nbr(adj_[u].size());
    std::vector<double> w(adj_[u].size());
    for (std::size_t i = 0; i < order.size(); ++i) {
      nbr[i] = adj_[u][order[i]];
      w[i] = weights_[u][order[i]];
    }
    adj_[u] = std::move(nbr);
    weights_[u] = std::move(w);

    cum_[u].resize(adj_[u].size());
    double acc = 0.0;
    for (std::size_t i = 0; i < adj_[u].size(); ++i) {
      ANONPATH_EXPECTS(adj_[u][i] != u);  // no self-loops
      ANONPATH_EXPECTS(i == 0 || adj_[u][i] != adj_[u][i - 1]);  // simple
      ANONPATH_EXPECTS(weights_[u][i] > 0.0);
      acc += weights_[u][i];
      cum_[u][i] = acc;
      if (uniform_weights_ && weights_[u][i] != weights_[u][0])
        uniform_weights_ = false;
    }
    total_[u] = acc;
    const auto deg = static_cast<std::uint32_t>(adj_[u].size());
    min_degree_ = std::min(min_degree_, deg);
    max_degree_ = std::max(max_degree_, deg);
  }
  ANONPATH_ENSURES(min_degree_ >= 1);
  ANONPATH_ENSURES(connected());
}

bool topology::connected() const {
  std::vector<bool> seen(n_, false);
  std::vector<node_id> stack{0};
  seen[0] = true;
  std::uint32_t reached = 1;
  while (!stack.empty()) {
    const node_id u = stack.back();
    stack.pop_back();
    for (node_id v : adj_[u]) {
      if (!seen[v]) {
        seen[v] = true;
        ++reached;
        stack.push_back(v);
      }
    }
  }
  return reached == n_;
}

topology topology::complete(std::uint32_t node_count) {
  ANONPATH_EXPECTS(node_count >= 2);
  topology t(node_count, topology_config{});
  for (node_id u = 0; u < node_count; ++u)
    for (node_id v = u + 1; v < node_count; ++v) t.add_edge(u, v, 1.0);
  t.finalize();
  return t;
}

topology topology::ring(std::uint32_t node_count, std::uint32_t k) {
  topology_config cfg;
  cfg.kind = topology_kind::ring;
  cfg.ring_k = k;
  ANONPATH_EXPECTS(cfg.valid_for(node_count));
  topology t(node_count, cfg);
  for (node_id u = 0; u < node_count; ++u)
    for (std::uint32_t j = 1; j <= k; ++j)
      t.add_edge(u, (u + j) % node_count, 1.0);
  t.finalize();
  return t;
}

topology topology::random_regular(std::uint32_t node_count,
                                  std::uint32_t degree, std::uint64_t seed) {
  topology_config cfg;
  cfg.kind = topology_kind::random_regular;
  cfg.degree = degree;
  cfg.graph_seed = seed;
  ANONPATH_EXPECTS(cfg.valid_for(node_count));

  // d == 2 specializes to a seeded random Hamiltonian cycle (double-edge
  // swaps on 2-regular graphs split them into cycle unions almost surely).
  if (degree == 2) {
    stats::rng gen = stats::rng::stream(seed, 0);
    std::vector<node_id> order(node_count);
    for (node_id u = 0; u < node_count; ++u) order[u] = u;
    for (std::size_t i = order.size(); i > 1; --i)
      std::swap(order[i - 1], order[gen.next_below(i)]);
    topology t(node_count, cfg);
    for (node_id i = 0; i < node_count; ++i)
      t.add_edge(order[i], order[(i + 1) % node_count], 1.0);
    t.finalize();
    return t;
  }

  // d >= 3: start from a connected circulant d-regular base and randomize
  // with seeded degree-preserving double-edge swaps (the standard Markov
  // chain over d-regular simple graphs). Swaps can in principle disconnect
  // the graph; a random d-regular graph is connected with overwhelming
  // probability for d >= 3, so the per-attempt connectivity check makes a
  // handful of deterministic attempts practically infallible.
  for (std::uint64_t attempt = 0; attempt < 128; ++attempt) {
    stats::rng gen = stats::rng::stream(seed, attempt);

    std::vector<std::pair<node_id, node_id>> edges;
    std::vector<std::vector<bool>> have(node_count,
                                        std::vector<bool>(node_count, false));
    const auto put = [&](node_id u, node_id v) {
      if (u == v || have[u][v]) return false;
      have[u][v] = have[v][u] = true;
      edges.emplace_back(u, v);
      return true;
    };
    for (std::uint32_t off = 1; off <= degree / 2; ++off)
      for (node_id u = 0; u < node_count; ++u)
        put(u, static_cast<node_id>((u + off) % node_count));
    if (degree % 2 == 1)  // n is even here (valid_for: n*d even)
      for (node_id u = 0; u < node_count / 2; ++u)
        put(u, u + node_count / 2);

    const std::uint64_t swaps =
        20ull * node_count * degree;  // well past the chain's mixing regime
    for (std::uint64_t i = 0; i < swaps; ++i) {
      const std::size_t e1 = gen.next_below(edges.size());
      const std::size_t e2 = gen.next_below(edges.size());
      if (e1 == e2) continue;
      auto [a, b] = edges[e1];
      auto [c, d] = edges[e2];
      if (gen.next_below(2) == 1) std::swap(c, d);
      // Rewire (a,b),(c,d) -> (a,c),(b,d) when that keeps the graph simple.
      if (a == c || a == d || b == c || b == d) continue;
      if (have[a][c] || have[b][d]) continue;
      have[a][b] = have[b][a] = false;
      have[c][d] = have[d][c] = false;
      have[a][c] = have[c][a] = true;
      have[b][d] = have[d][b] = true;
      edges[e1] = {a, c};
      edges[e2] = {b, d};
    }

    topology t(node_count, cfg);
    for (const auto& [u, v] : edges) t.add_edge(u, v, 1.0);
    if (!t.connected()) continue;
    t.finalize();
    return t;
  }
  ANONPATH_EXPECTS(!"random_regular: no connected swap-randomized graph");
  // Unreachable; EXPECTS above throws.
  return complete(node_count);
}

topology topology::tiered(std::uint32_t node_count, std::uint32_t tiers) {
  topology_config cfg;
  cfg.kind = topology_kind::tiered;
  cfg.tiers = tiers;
  ANONPATH_EXPECTS(cfg.valid_for(node_count));
  const auto tier_of = [&](node_id u) {
    return static_cast<std::uint32_t>(
        (static_cast<std::uint64_t>(u) * tiers) / node_count);
  };
  topology t(node_count, cfg);
  for (node_id u = 0; u < node_count; ++u)
    for (node_id v = u + 1; v < node_count; ++v) {
      const std::uint32_t tu = tier_of(u);
      const std::uint32_t tv = tier_of(v);
      if (tu + 1 == tv || tv + 1 == tu) t.add_edge(u, v, 1.0);
    }
  t.finalize();
  return t;
}

topology topology::trust_weighted(std::uint32_t node_count, double decay) {
  topology_config cfg;
  cfg.kind = topology_kind::trust_weighted;
  cfg.trust_decay = decay;
  ANONPATH_EXPECTS(cfg.valid_for(node_count));
  topology t(node_count, cfg);
  // decay^(d-1) by ring distance d, tabulated once so construction stays
  // O(N^2) instead of O(N^3).
  std::vector<double> power(node_count / 2 + 1, 1.0);
  for (std::size_t d = 2; d < power.size(); ++d)
    power[d] = power[d - 1] * decay;
  for (node_id u = 0; u < node_count; ++u)
    for (node_id v = u + 1; v < node_count; ++v) {
      const std::uint32_t d = std::min(v - u, node_count - (v - u));
      t.add_edge(u, v, power[d]);
    }
  t.finalize();
  return t;
}

topology topology::make(std::uint32_t node_count, const topology_config& cfg) {
  ANONPATH_EXPECTS(cfg.valid_for(node_count));
  switch (cfg.kind) {
    case topology_kind::complete:
      return complete(node_count);
    case topology_kind::ring:
      return ring(node_count, cfg.ring_k);
    case topology_kind::random_regular:
      return random_regular(node_count, cfg.degree, cfg.graph_seed);
    case topology_kind::tiered:
      return tiered(node_count, cfg.tiers);
    case topology_kind::trust_weighted:
      return trust_weighted(node_count, cfg.trust_decay);
  }
  ANONPATH_EXPECTS(!"unknown topology kind");
  return complete(node_count);
}

const std::vector<node_id>& topology::neighbors(node_id u) const {
  ANONPATH_EXPECTS(u < n_);
  return adj_[u];
}

const std::vector<double>& topology::neighbor_weights(node_id u) const {
  ANONPATH_EXPECTS(u < n_);
  return weights_[u];
}

bool topology::has_edge(node_id u, node_id v) const {
  ANONPATH_EXPECTS(u < n_ && v < n_);
  const auto& nbr = adj_[u];
  return std::binary_search(nbr.begin(), nbr.end(), v);
}

double topology::edge_weight(node_id u, node_id v) const {
  ANONPATH_EXPECTS(u < n_ && v < n_);
  const auto& nbr = adj_[u];
  const auto it = std::lower_bound(nbr.begin(), nbr.end(), v);
  if (it == nbr.end() || *it != v) return 0.0;
  return weights_[u][static_cast<std::size_t>(it - nbr.begin())];
}

double topology::total_weight(node_id u) const {
  ANONPATH_EXPECTS(u < n_);
  return total_[u];
}

double topology::transition_prob(node_id u, node_id v) const {
  return edge_weight(u, v) / total_[u];
}

node_id topology::sample_neighbor(node_id u, stats::rng& gen) const {
  ANONPATH_EXPECTS(u < n_);
  const auto& nbr = adj_[u];
  if (uniform_weights_)
    return nbr[static_cast<std::size_t>(gen.next_below(nbr.size()))];
  const double x = gen.next_double() * total_[u];
  const auto& cum = cum_[u];
  auto idx = static_cast<std::size_t>(
      std::upper_bound(cum.begin(), cum.end(), x) - cum.begin());
  if (idx >= nbr.size()) idx = nbr.size() - 1;  // x == total after rounding
  return nbr[idx];
}

}  // namespace anonpath::net
