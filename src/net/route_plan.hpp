#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/anonymity/types.hpp"
#include "src/net/topology.hpp"
#include "src/stats/rng.hpp"

namespace anonpath::net {

/// Sentinel for "no vertex" in parent arrays and component labels.
inline constexpr node_id no_vertex = 0xFFFFFFFFu;

/// Traversal cost of an edge: the reciprocal of its trust weight, so
/// heavier (more trusted) links are cheaper and uniform-weight graphs cost
/// exactly the hop count. Strictly positive for every valid edge.
[[nodiscard]] inline double edge_cost(double weight) noexcept {
  return 1.0 / weight;
}

/// One planned source->target path: every node on it, endpoints included,
/// plus its total edge cost. Yen paths are loopless (simple), so
/// `nodes.size() - 1 <= N - 1` edges.
struct planned_path {
  std::vector<node_id> nodes;
  double cost = 0.0;

  friend bool operator==(const planned_path&, const planned_path&) = default;
};

/// Full single-source shortest-path tree. `dist` is +infinity and `parent`
/// is `no_vertex` for unreachable nodes (none exist on a connected
/// topology); the source's parent is `no_vertex` too.
struct shortest_path_tree {
  node_id source = 0;
  std::vector<double> dist;
  std::vector<node_id> parent;
};

/// Work counters for the planning algorithms, for the obs metrics layer.
/// Pure functions of the graph and the query sequence (the algorithms are
/// deterministic), so they are stable metrics — identical across runs,
/// thread counts, and platforms. Passing nullptr (the default everywhere)
/// skips all accounting.
struct plan_counters {
  std::uint64_t dijkstra_runs = 0;   ///< full or early-exit searches started
  std::uint64_t nodes_settled = 0;   ///< heap pops that settled a node
  std::uint64_t edges_scanned = 0;   ///< adjacency entries examined
  std::uint64_t yen_spur_searches = 0;  ///< masked searches inside Yen
};

/// Binary-heap Dijkstra over the whole graph. Deterministic: equal
/// tentative distances pop in ascending node-id order, so the tree (and
/// every path read out of it) is a pure function of the graph. Works in
/// either storage mode; on CSR this is the million-node workhorse.
/// O((V + E) log V). Precondition: source < node_count.
[[nodiscard]] shortest_path_tree dijkstra(const topology& topo,
                                          node_id source,
                                          plan_counters* counters = nullptr);

/// Point-to-point shortest path with early exit once the target settles.
/// nullopt only when the target is unreachable (never on a full topology;
/// the masked variants inside Yen do hit it). Preconditions: s, t <
/// node_count and s != t.
[[nodiscard]] std::optional<planned_path> shortest_path(
    const topology& topo, node_id s, node_id t,
    plan_counters* counters = nullptr);

/// Yen's k shortest loopless paths, best first. Deterministic: candidates
/// order by (cost, lexicographic node sequence). Returns fewer than k
/// entries when the graph has fewer simple s->t paths. Preconditions:
/// s, t < node_count, s != t, k >= 1.
[[nodiscard]] std::vector<planned_path> k_shortest_paths(
    const topology& topo, node_id s, node_id t, std::uint32_t k,
    plan_counters* counters = nullptr);

/// Connected-component labels, 0-based in first-discovery order (node 0's
/// component is 0). A whole topology is one component by construction —
/// the overload below is where this earns its keep.
[[nodiscard]] std::vector<std::uint32_t> connected_components(
    const topology& topo);

/// Component labels of the subgraph induced by the `active` nodes
/// (active.size() == node_count); inactive nodes get `no_vertex`. This is
/// the outage/churn question: which survivors still reach each other when
/// some nodes are down.
[[nodiscard]] std::vector<std::uint32_t> connected_components(
    const topology& topo, const std::vector<bool>& active);

/// Union of nodes on the k shortest paths from every source in `sources`
/// to every distinct exit in `exits` (endpoints included) — the node
/// support planned routes over those pairs can ever touch, derived from
/// config alone so inline scoring and trace replay agree. With exits =
/// all nodes (the kpaths sim model's uniform exit law) this is every node,
/// which is why sim scoring runs the DP unpruned; restricted exit or
/// source sets (guard/exit policies) produce proper subsets worth pruning
/// the approximate posterior to. O(|sources| * |exits|) Yen runs: meant
/// for sim-scale graphs, not million-node planning. Preconditions:
/// k >= 1, every id < node_count.
[[nodiscard]] std::vector<bool> kpath_support(
    const topology& topo, std::uint32_t k,
    const std::vector<node_id>& sources, const std::vector<node_id>& exits);

/// Route-selection model for source-routed traffic over a topology.
///   * walk   — the historical weighted random walk (default; byte-
///              identical to every release before route planning existed)
///   * kpaths — the sender plans the k shortest loopless paths to a
///              uniformly drawn exit node and picks one with probability
///              proportional to 1/cost; the exit delivers to R
enum class route_select : std::uint8_t { walk, kpaths };

struct routing_config {
  route_select kind = route_select::walk;
  std::uint32_t k = 4;  ///< kpaths: planned alternatives per pair, in [1, 64]

  /// True when routes come from the planner rather than the walk.
  [[nodiscard]] bool planned() const noexcept {
    return kind == route_select::kpaths;
  }

  /// k in [1, 64]; the cap bounds Yen's work per pair (and what a hostile
  /// trace can demand).
  [[nodiscard]] bool valid() const noexcept { return k >= 1 && k <= 64; }

  /// "walk" or "kpaths(4)"; deterministic, used in CSV cells and traces.
  [[nodiscard]] std::string label() const;

  friend bool operator==(const routing_config&,
                         const routing_config&) = default;
};

/// Stateful planner: Yen results cached per (source, exit) pair, route
/// draws layered on top. The selection rule is the anonymity-relevant
/// part: exit ~ Uniform(V \ {sender}) (one next_below draw), then one
/// path among the k planned with probability proportional to 1/cost (one
/// next_double draw when k > 1 paths exist) — seeded tie-breaking comes
/// from whatever rng::stream the caller dedicates to planning. Borrows
/// the topology; keep it alive.
class route_planner {
 public:
  /// Preconditions: cfg.valid() and cfg.planned().
  route_planner(const topology& topo, routing_config cfg);

  /// The k (or fewer) best paths s->t, best first, computed once per pair.
  const std::vector<planned_path>& plan(node_id s, node_id t);

  /// Draws one route for `sender`: hops are the planned path's nodes after
  /// the sender (interior relays, then the exit, which forwards to R).
  [[nodiscard]] route sample_route(node_id sender, stats::rng& gen);

  [[nodiscard]] const topology& graph() const noexcept { return *topo_; }
  [[nodiscard]] const routing_config& config() const noexcept { return cfg_; }

  /// Distinct (source, exit) pairs planned so far.
  [[nodiscard]] std::uint64_t planned_pairs() const noexcept {
    return cache_.size();
  }

  /// Accumulated search work across every cache-miss plan() call (cache
  /// hits add nothing — the gap between planned_pairs() growth and route
  /// draws is the planner's own memoization win).
  [[nodiscard]] const plan_counters& counters() const noexcept {
    return counters_;
  }

 private:
  const topology* topo_;
  routing_config cfg_;
  std::unordered_map<std::uint64_t, std::vector<planned_path>> cache_;
  plan_counters counters_;
};

}  // namespace anonpath::net
