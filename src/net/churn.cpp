#include "src/net/churn.hpp"

#include <cmath>
#include <cstdio>

#include "src/stats/contract.hpp"

namespace anonpath::net {

std::string churn_config::label() const {
  if (!enabled()) return "static";
  char buf[48];
  std::snprintf(buf, sizeof buf, "churn(%g/%g)", down_rate, mean_downtime);
  return buf;
}

churn_model::churn_model(std::uint32_t node_count, churn_config config,
                         std::uint64_t seed)
    : config_(config), seed_(seed), nodes_(node_count) {
  ANONPATH_EXPECTS(node_count >= 1);
  ANONPATH_EXPECTS(config_.valid());
}

double churn_model::draw_duration(node_state& s) const {
  const double mean = s.up ? 1.0 / config_.down_rate : config_.mean_downtime;
  // Inverse-CDF exponential; next_double() < 1 keeps the log argument > 0.
  return -std::log(1.0 - s.gen.next_double()) * mean;
}

bool churn_model::is_up(node_id v, double at) {
  if (!config_.enabled()) return true;
  ANONPATH_EXPECTS(v < nodes_.size());
  node_state& s = nodes_[v];
  if (!s.started) {
    // Lazily seeded so a churn model for a large fleet costs nothing for
    // nodes that never receive traffic.
    s.started = true;
    s.gen = stats::rng::stream(seed_, v);
    s.next_toggle = draw_duration(s);
  }
  while (s.next_toggle <= at) {
    s.up = !s.up;
    ++transitions_;
    s.next_toggle += draw_duration(s);
  }
  return s.up;
}

}  // namespace anonpath::net
