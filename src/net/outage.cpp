#include "src/net/outage.hpp"

#include <algorithm>
#include <cmath>

#include "src/stats/contract.hpp"

namespace anonpath::net {

bool outage::valid() const noexcept {
  return std::isfinite(start) && start >= 0.0 && std::isfinite(duration) &&
         duration > 0.0;
}

outage_schedule::outage_schedule(std::uint32_t node_count,
                                 std::vector<outage> outages)
    : nodes_(node_count) {
  for (const outage& o : outages) {
    ANONPATH_EXPECTS(o.valid());
    ANONPATH_EXPECTS(o.node < node_count);
  }
  std::sort(outages.begin(), outages.end(), [](const outage& a, const outage& b) {
    return a.node != b.node ? a.node < b.node : a.start < b.start;
  });
  for (const outage& o : outages) {
    auto& plan = nodes_[o.node].intervals;
    const double end = o.start + o.duration;
    if (!plan.empty() && o.start <= plan.back().end) {
      plan.back().end = std::max(plan.back().end, end);
    } else {
      plan.push_back({o.start, end});
      ++interval_count_;
    }
  }
}

bool outage_schedule::is_down(node_id v, double at) {
  if (!enabled()) return false;
  ANONPATH_EXPECTS(v < nodes_.size());
  node_plan& plan = nodes_[v];
  while (plan.cursor < plan.intervals.size() &&
         plan.intervals[plan.cursor].end <= at)
    ++plan.cursor;
  return plan.cursor < plan.intervals.size() &&
         plan.intervals[plan.cursor].start <= at;
}

}  // namespace anonpath::net
