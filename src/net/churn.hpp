#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/anonymity/types.hpp"
#include "src/stats/rng.hpp"

namespace anonpath::net {

/// Declarative node-availability model: while up, a node fails at rate
/// `down_rate` (exponential up-times with mean 1/down_rate); once down it
/// recovers after an exponential outage with mean `mean_downtime`. The
/// default (rate 0) is the static network every pre-topology experiment ran
/// on — and is required to reproduce those runs bit for bit, so a disabled
/// churn model never draws from any generator.
struct churn_config {
  double down_rate = 0.0;      ///< per-second failure rate while up (0 = static)
  double mean_downtime = 1.0;  ///< mean seconds a node stays down

  [[nodiscard]] bool enabled() const noexcept { return down_rate > 0.0; }
  [[nodiscard]] bool valid() const noexcept {
    return down_rate >= 0.0 && (down_rate == 0.0 || mean_downtime > 0.0);
  }

  /// "static", or "churn(<rate>/<mean_downtime>)".
  [[nodiscard]] std::string label() const;

  friend bool operator==(const churn_config&, const churn_config&) = default;
};

/// Seeded on/off renewal process per node. Every node starts up and owns a
/// dedicated deterministic rng stream (stats::rng::stream(seed, node)), so
/// the realized schedule depends only on (config, seed, node) — never on
/// query order across nodes or on any other stream the simulation consumes.
///
/// Queries must be time-monotone per node (the discrete-event queue's clock
/// is globally monotone, so the network fabric satisfies this for free);
/// is_up advances the node's schedule lazily up to the queried instant.
class churn_model {
 public:
  /// Preconditions: node_count >= 1, config.valid().
  churn_model(std::uint32_t node_count, churn_config config,
              std::uint64_t seed);

  [[nodiscard]] bool enabled() const noexcept { return config_.enabled(); }
  [[nodiscard]] const churn_config& config() const noexcept { return config_; }

  /// Whether node v is up at time `at`. Precondition: v < node_count, and
  /// `at` is >= every earlier query for v.
  [[nodiscard]] bool is_up(node_id v, double at);

  /// Total up->down and down->up transitions realized so far (diagnostics
  /// and tests; 0 forever when disabled).
  [[nodiscard]] std::uint64_t transitions() const noexcept {
    return transitions_;
  }

 private:
  struct node_state {
    bool up = true;
    double next_toggle = 0.0;
    bool started = false;
    stats::rng gen{0};
  };

  [[nodiscard]] double draw_duration(node_state& s) const;

  churn_config config_;
  std::uint64_t seed_;
  std::vector<node_state> nodes_;
  std::uint64_t transitions_ = 0;
};

}  // namespace anonpath::net
