#include "src/net/graph_oracle.hpp"

#include <string>
#include <unordered_map>

#include "src/anonymity/entropy.hpp"
#include "src/anonymity/observation.hpp"
#include "src/stats/contract.hpp"
#include "src/stats/kahan.hpp"

namespace anonpath::net {

namespace {

/// Recursively extends the walk one weighted hop at a time, carrying the
/// running path probability, and emits every completed walk.
template <typename Emit>
void enumerate_walks(const topology& topo, route& r, double prob,
                     path_length remaining, const Emit& emit) {
  if (remaining == 0) {
    emit(r, prob);
    return;
  }
  const node_id cur = r.hops.empty() ? r.sender : r.hops.back();
  const auto& nbr = topo.neighbors(cur);
  const auto& w = topo.neighbor_weights(cur);
  const double total = topo.total_weight(cur);
  for (std::size_t i = 0; i < nbr.size(); ++i) {
    r.hops.push_back(nbr[i]);
    enumerate_walks(topo, r, prob * (w[i] / total), remaining - 1, emit);
    r.hops.pop_back();
  }
}

}  // namespace

graph_oracle::graph_oracle(system_params sys, std::vector<node_id> compromised,
                           const path_length_distribution& lengths,
                           const topology& topo) {
  ANONPATH_EXPECTS(sys.valid());
  ANONPATH_EXPECTS(sys.node_count <= 10);
  ANONPATH_EXPECTS(lengths.max_length() <= 8);
  ANONPATH_EXPECTS(topo.node_count() == sys.node_count);
  ANONPATH_EXPECTS(compromised.size() == sys.compromised_count);

  std::vector<bool> compromised_flag(sys.node_count, false);
  for (node_id c : compromised) {
    ANONPATH_EXPECTS(c < sys.node_count);
    ANONPATH_EXPECTS(!compromised_flag[c]);
    compromised_flag[c] = true;
  }

  const auto n = sys.node_count;

  struct bucket {
    observation obs;
    std::vector<double> mass;
  };
  std::unordered_map<std::string, bucket> buckets;
  buckets.reserve(1024);

  for (node_id s = 0; s < n; ++s) {
    for (path_length l = lengths.min_length(); l <= lengths.max_length(); ++l) {
      const double pl = lengths.pmf(l);
      if (pl <= 0.0) continue;
      route r;
      r.sender = s;
      r.hops.reserve(l);
      const double base = pl / static_cast<double>(n);  // uniform sender
      enumerate_walks(topo, r, base, l, [&](const route& full, double prob) {
        const observation obs = observe(full, compromised_flag);
        auto [it, inserted] = buckets.try_emplace(obs.key());
        if (inserted) {
          it->second.obs = obs;
          it->second.mass.assign(n, 0.0);
        }
        it->second.mass[full.sender] += prob;
      });
    }
  }

  stats::kahan_sum degree_acc;
  stats::kahan_sum total_acc;
  events_.reserve(buckets.size());
  for (auto& [key, b] : buckets) {
    event_record rec;
    rec.obs = std::move(b.obs);
    stats::kahan_sum p_acc;
    for (double m : b.mass) p_acc.add(m);
    rec.probability = p_acc.value();
    rec.posterior.resize(n);
    for (node_id i = 0; i < n; ++i)
      rec.posterior[i] = b.mass[i] / rec.probability;
    rec.entropy_bits = entropy_bits(rec.posterior);
    degree_acc.add(rec.probability * rec.entropy_bits);
    total_acc.add(rec.probability);
    events_.push_back(std::move(rec));
  }
  degree_ = degree_acc.value();
  total_ = total_acc.value();
}

}  // namespace anonpath::net
