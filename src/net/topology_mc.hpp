#pragma once

#include <cstdint>
#include <vector>

#include "src/anonymity/length_distribution.hpp"
#include "src/anonymity/types.hpp"
#include "src/net/topology.hpp"

namespace anonpath::net {

/// Result of a sampled anonymity-degree estimate on a topology.
struct topology_mc_estimate {
  double degree = 0.0;     ///< mean posterior entropy (bits)
  double std_error = 0.0;  ///< standard error of the mean
  std::uint64_t samples = 0;
  std::uint64_t shards = 0;

  [[nodiscard]] double ci95() const noexcept { return 1.96 * std_error; }
};

/// Monte-Carlo H*(S) for the weighted-walk model on an arbitrary topology:
/// samples (sender, length, walk) triples from the generative model,
/// collects each walk's adversary observation, scores it with the exact
/// topology_posterior_engine, and averages the posterior entropy. The
/// graph-oracle analogue of estimate_anonymity_degree for graphs where the
/// clique closed forms do not apply.
///
/// Determinism contract (mirrors mc_config): samples are split over
/// `shards` fixed rng streams (stats::rng::stream(seed, shard)) and shard
/// results reduce in shard order on the calling thread, so the estimate is
/// bit-identical for every `threads` value.
///
/// Preconditions: sys.valid(), cfg.valid_for(node_count), compromised ids
/// distinct and < N with |compromised| == C, samples >= 1. `shards == 0`
/// selects the engine default (64); callers forwarding a user-facing
/// "--shards 0 = default" knob can pass it through verbatim.
[[nodiscard]] topology_mc_estimate estimate_topology_degree(
    system_params sys, const std::vector<node_id>& compromised,
    const path_length_distribution& lengths, const topology_config& cfg,
    std::uint64_t samples, std::uint64_t seed, unsigned threads = 1,
    std::uint64_t shards = 0);

}  // namespace anonpath::net
