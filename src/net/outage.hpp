#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/anonymity/types.hpp"

namespace anonpath::net {

/// One planned crash/repair interval: node `node` is down on
/// [start, start + duration). Closed-open so a repair at t and a
/// transmission at t coexist: the node is back up the instant the
/// interval ends.
struct outage {
  node_id node = 0;
  double start = 0.0;
  double duration = 0.0;

  [[nodiscard]] bool valid() const noexcept;

  friend bool operator==(const outage&, const outage&) = default;
};

/// Deterministic crash/repair timetable for a fleet: the union of a set of
/// outage intervals, queryable as "is node v down at time t". Unlike
/// churn_model (a seeded stochastic renewal process) the schedule is fully
/// declarative — the same intervals produce the same availability on every
/// run regardless of seeds, which is what scripted fault experiments and
/// regression pins need.
///
/// Queries must be time-monotone per node (satisfied for free by the
/// event queue's global clock); each node keeps a cursor over its sorted,
/// merged interval list so a whole run costs O(intervals) total.
class outage_schedule {
 public:
  outage_schedule() = default;

  /// Preconditions: every outage is valid() and names a node < node_count.
  /// Overlapping or adjacent intervals on the same node are merged.
  outage_schedule(std::uint32_t node_count, std::vector<outage> outages);

  [[nodiscard]] bool enabled() const noexcept { return interval_count_ > 0; }

  /// Merged down-intervals across all nodes (after overlap coalescing).
  [[nodiscard]] std::uint64_t interval_count() const noexcept {
    return interval_count_;
  }

  /// Whether node v is down at time `at`. Precondition: v < node_count, and
  /// `at` is >= every earlier query for v.
  [[nodiscard]] bool is_down(node_id v, double at);

 private:
  struct interval {
    double start = 0.0;
    double end = 0.0;
  };
  struct node_plan {
    std::vector<interval> intervals;  ///< sorted, disjoint
    std::size_t cursor = 0;
  };

  std::vector<node_plan> nodes_;
  std::uint64_t interval_count_ = 0;
};

}  // namespace anonpath::net
