#include "src/net/route_plan.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <queue>

#include "src/stats/contract.hpp"

namespace anonpath::net {

namespace {

constexpr double inf = std::numeric_limits<double>::infinity();

/// Directed arc key for the Yen spur bans.
std::uint64_t arc_key(node_id u, node_id v) {
  return (static_cast<std::uint64_t>(u) << 32) | v;
}

struct heap_item {
  double dist;
  node_id node;
};

/// Min-heap order with ascending-id tie-breaking: the smaller node id pops
/// first among equal distances, which pins the settle order (and thus
/// every parent choice) regardless of insertion history.
struct heap_greater {
  bool operator()(const heap_item& a, const heap_item& b) const {
    if (a.dist != b.dist) return a.dist > b.dist;
    return a.node > b.node;
  }
};

using heap =
    std::priority_queue<heap_item, std::vector<heap_item>, heap_greater>;

/// Shared Dijkstra core. Settles nodes until the heap drains or `target`
/// settles (pass no_vertex for a full tree). `banned_nodes` (empty = none)
/// removes nodes entirely; `banned_arcs` (sorted) removes directed
/// traversals — both only ever non-trivial inside Yen's spur searches.
void dijkstra_core(const topology& topo, node_id source, node_id target,
                   const std::vector<char>& banned_nodes,
                   const std::vector<std::uint64_t>& banned_arcs,
                   std::vector<double>& dist, std::vector<node_id>& parent,
                   plan_counters* counters) {
  const std::uint32_t n = topo.node_count();
  dist.assign(n, inf);
  parent.assign(n, no_vertex);
  std::vector<char> settled(n, 0);
  heap pq;
  dist[source] = 0.0;
  pq.push({0.0, source});
  if (counters != nullptr) ++counters->dijkstra_runs;
  while (!pq.empty()) {
    const heap_item top = pq.top();
    pq.pop();
    if (settled[top.node]) continue;  // lazy deletion
    settled[top.node] = 1;
    if (counters != nullptr) ++counters->nodes_settled;
    if (top.node == target) return;
    const neighbor_view a = topo.adjacency(top.node);
    if (counters != nullptr) counters->edges_scanned += a.size;
    for (std::uint32_t i = 0; i < a.size; ++i) {
      const node_id v = a.ids[i];
      if (settled[v]) continue;
      if (!banned_nodes.empty() && banned_nodes[v]) continue;
      if (!banned_arcs.empty() &&
          std::binary_search(banned_arcs.begin(), banned_arcs.end(),
                             arc_key(top.node, v)))
        continue;
      const double nd = top.dist + edge_cost(a.weights[i]);
      if (nd < dist[v]) {
        dist[v] = nd;
        parent[v] = top.node;
        pq.push({nd, v});
      }
    }
  }
}

/// Reads the source->t path out of a parent array; nullopt if unreached.
std::optional<planned_path> extract_path(const std::vector<double>& dist,
                                         const std::vector<node_id>& parent,
                                         node_id source, node_id t) {
  if (dist[t] == inf) return std::nullopt;
  planned_path p;
  p.cost = dist[t];
  for (node_id x = t; x != no_vertex; x = parent[x]) p.nodes.push_back(x);
  std::reverse(p.nodes.begin(), p.nodes.end());
  ANONPATH_ENSURES(!p.nodes.empty() && p.nodes.front() == source);
  return p;
}

std::optional<planned_path> shortest_path_masked(
    const topology& topo, node_id s, node_id t,
    const std::vector<char>& banned_nodes,
    const std::vector<std::uint64_t>& banned_arcs,
    plan_counters* counters) {
  std::vector<double> dist;
  std::vector<node_id> parent;
  dijkstra_core(topo, s, t, banned_nodes, banned_arcs, dist, parent, counters);
  return extract_path(dist, parent, s, t);
}

/// Candidate order inside Yen: cheapest first, ties by lexicographic node
/// sequence — fully deterministic however the candidates were generated.
bool candidate_less(const planned_path& a, const planned_path& b) {
  if (a.cost != b.cost) return a.cost < b.cost;
  return a.nodes < b.nodes;
}

}  // namespace

shortest_path_tree dijkstra(const topology& topo, node_id source,
                            plan_counters* counters) {
  ANONPATH_EXPECTS(source < topo.node_count());
  shortest_path_tree tree;
  tree.source = source;
  dijkstra_core(topo, source, no_vertex, {}, {}, tree.dist, tree.parent,
                counters);
  return tree;
}

std::optional<planned_path> shortest_path(const topology& topo, node_id s,
                                          node_id t, plan_counters* counters) {
  ANONPATH_EXPECTS(s < topo.node_count() && t < topo.node_count() && s != t);
  return shortest_path_masked(topo, s, t, {}, {}, counters);
}

std::vector<planned_path> k_shortest_paths(const topology& topo, node_id s,
                                           node_id t, std::uint32_t k,
                                           plan_counters* counters) {
  ANONPATH_EXPECTS(s < topo.node_count() && t < topo.node_count() && s != t);
  ANONPATH_EXPECTS(k >= 1);
  std::vector<planned_path> A;
  {
    auto first = shortest_path(topo, s, t, counters);
    if (!first) return A;  // unreachable (only under masks/teardown)
    A.push_back(std::move(*first));
  }
  std::vector<planned_path> B;  // candidate pool, candidate_less-sorted
  std::vector<char> banned_nodes(topo.node_count(), 0);
  while (A.size() < k) {
    // Spur off every node of the newest accepted path except the target.
    const planned_path prev = A.back();
    double root_cost = 0.0;
    for (std::size_t j = 0; j + 1 < prev.nodes.size(); ++j) {
      const node_id spur = prev.nodes[j];
      // Ban the next arc of every accepted path sharing this root prefix,
      // so the spur search must deviate here.
      std::vector<std::uint64_t> banned_arcs;
      for (const planned_path& p : A)
        if (p.nodes.size() > j + 1 &&
            std::equal(prev.nodes.begin(), prev.nodes.begin() + j + 1,
                       p.nodes.begin()))
          banned_arcs.push_back(arc_key(p.nodes[j], p.nodes[j + 1]));
      std::sort(banned_arcs.begin(), banned_arcs.end());
      banned_arcs.erase(std::unique(banned_arcs.begin(), banned_arcs.end()),
                        banned_arcs.end());
      // Root nodes before the spur are off limits: keeps candidates simple.
      for (std::size_t i = 0; i < j; ++i) banned_nodes[prev.nodes[i]] = 1;
      if (counters != nullptr) ++counters->yen_spur_searches;
      auto spur_path =
          shortest_path_masked(topo, spur, t, banned_nodes, banned_arcs,
                               counters);
      for (std::size_t i = 0; i < j; ++i) banned_nodes[prev.nodes[i]] = 0;
      if (spur_path) {
        planned_path cand;
        cand.nodes.assign(prev.nodes.begin(),
                          prev.nodes.begin() + static_cast<std::ptrdiff_t>(j));
        cand.nodes.insert(cand.nodes.end(), spur_path->nodes.begin(),
                          spur_path->nodes.end());
        cand.cost = root_cost + spur_path->cost;
        const auto same_nodes = [&](const planned_path& p) {
          return p.nodes == cand.nodes;
        };
        if (std::none_of(A.begin(), A.end(), same_nodes) &&
            std::none_of(B.begin(), B.end(), same_nodes))
          B.insert(std::lower_bound(B.begin(), B.end(), cand, candidate_less),
                   std::move(cand));
      }
      root_cost +=
          edge_cost(topo.edge_weight(prev.nodes[j], prev.nodes[j + 1]));
    }
    if (B.empty()) break;  // the graph has no more simple s->t paths
    A.push_back(std::move(B.front()));
    B.erase(B.begin());
  }
  return A;
}

std::vector<std::uint32_t> connected_components(const topology& topo) {
  std::vector<bool> active(topo.node_count(), true);
  return connected_components(topo, active);
}

std::vector<std::uint32_t> connected_components(
    const topology& topo, const std::vector<bool>& active) {
  const std::uint32_t n = topo.node_count();
  ANONPATH_EXPECTS(active.size() == n);
  std::vector<std::uint32_t> label(n, no_vertex);
  std::vector<node_id> stack;
  std::uint32_t next = 0;
  for (node_id root = 0; root < n; ++root) {
    if (!active[root] || label[root] != no_vertex) continue;
    const std::uint32_t comp = next++;
    label[root] = comp;
    stack.assign(1, root);
    while (!stack.empty()) {
      const node_id u = stack.back();
      stack.pop_back();
      const neighbor_view a = topo.adjacency(u);
      for (std::uint32_t i = 0; i < a.size; ++i) {
        const node_id v = a.ids[i];
        if (!active[v] || label[v] != no_vertex) continue;
        label[v] = comp;
        stack.push_back(v);
      }
    }
  }
  return label;
}

std::vector<bool> kpath_support(const topology& topo, std::uint32_t k,
                                const std::vector<node_id>& sources,
                                const std::vector<node_id>& exits) {
  ANONPATH_EXPECTS(k >= 1);
  std::vector<bool> support(topo.node_count(), false);
  for (node_id s : sources) {
    ANONPATH_EXPECTS(s < topo.node_count());
    for (node_id t : exits) {
      ANONPATH_EXPECTS(t < topo.node_count());
      if (t == s) continue;
      for (const planned_path& p : k_shortest_paths(topo, s, t, k))
        for (node_id x : p.nodes) support[x] = true;
    }
  }
  return support;
}

std::string routing_config::label() const {
  if (kind == route_select::walk) return "walk";
  char buf[32];
  std::snprintf(buf, sizeof buf, "kpaths(%u)", k);
  return buf;
}

route_planner::route_planner(const topology& topo, routing_config cfg)
    : topo_(&topo), cfg_(cfg) {
  ANONPATH_EXPECTS(cfg_.valid() && cfg_.planned());
  ANONPATH_EXPECTS(topo.node_count() >= 2);
}

const std::vector<planned_path>& route_planner::plan(node_id s, node_id t) {
  ANONPATH_EXPECTS(s < topo_->node_count() && t < topo_->node_count() &&
                   s != t);
  const std::uint64_t key = (static_cast<std::uint64_t>(s) << 32) | t;
  const auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;
  return cache_
      .emplace(key, k_shortest_paths(*topo_, s, t, cfg_.k, &counters_))
      .first->second;
}

route route_planner::sample_route(node_id sender, stats::rng& gen) {
  const std::uint32_t n = topo_->node_count();
  ANONPATH_EXPECTS(sender < n);
  // Exit ~ Uniform(V \ {sender}); the planner then picks among the k best
  // sender->exit paths with probability proportional to 1/cost, so cheap
  // (short / trusted) alternatives dominate without starving the rest.
  auto exit_node = static_cast<node_id>(gen.next_below(n - 1));
  if (exit_node >= sender) ++exit_node;
  const std::vector<planned_path>& paths = plan(sender, exit_node);
  ANONPATH_EXPECTS(!paths.empty());  // connected topology: always reachable
  std::size_t pick = 0;
  if (paths.size() > 1) {
    double total = 0.0;
    for (const planned_path& p : paths) total += 1.0 / p.cost;
    const double x = gen.next_double() * total;
    double acc = 0.0;
    for (std::size_t i = 0; i < paths.size(); ++i) {
      acc += 1.0 / paths[i].cost;
      pick = i;
      if (x < acc) break;
    }
  }
  route r;
  r.sender = sender;
  // Hops are everything after the sender: interior relays, then the exit,
  // which forwards to R — so the realized length is the path's edge count.
  r.hops.assign(paths[pick].nodes.begin() + 1, paths[pick].nodes.end());
  return r;
}

}  // namespace anonpath::net
