#include "src/net/topology_posterior.hpp"

#include <cmath>
#include <stdexcept>

#include "src/stats/contract.hpp"

namespace anonpath::net {

topology_posterior_engine::topology_posterior_engine(
    system_params sys, std::vector<node_id> compromised,
    path_length_distribution lengths, topology topo,
    std::vector<bool> interior_support)
    : sys_(sys),
      compromised_(std::move(compromised)),
      support_(std::move(interior_support)),
      lengths_(std::move(lengths)),
      topo_(std::move(topo)) {
  ANONPATH_EXPECTS(sys_.valid());
  ANONPATH_EXPECTS(topo_.node_count() == sys_.node_count);
  ANONPATH_EXPECTS(compromised_.size() == sys_.compromised_count);
  ANONPATH_EXPECTS(support_.empty() || support_.size() == sys_.node_count);
  compromised_flag_.assign(sys_.node_count, false);
  for (node_id c : compromised_) {
    ANONPATH_EXPECTS(c < sys_.node_count);
    ANONPATH_EXPECTS(!compromised_flag_[c]);
    compromised_flag_[c] = true;
  }
  honest_interior_.assign(sys_.node_count, false);
  for (node_id x = 0; x < sys_.node_count; ++x)
    honest_interior_[x] =
        !compromised_flag_[x] && (support_.empty() || support_[x]);
}

void topology_posterior_engine::honest_step(const std::vector<double>& in,
                                            std::vector<double>& out,
                                            bool forward) const {
  out.assign(in.size(), 0.0);
  for (node_id x = 0; x < in.size(); ++x) {
    if (in[x] == 0.0) continue;
    const neighbor_view a = topo_.adjacency(x);
    if (forward) {
      // out[y] += in[x] * T(x->y) for honest in-support y.
      const double inv = in[x] / topo_.total_weight(x);
      for (std::uint32_t i = 0; i < a.size; ++i)
        if (honest_interior_[a.ids[i]]) out[a.ids[i]] += inv * a.weights[i];
    } else {
      // Transpose: out[y] += T(y->x) * in[x]. Here x plays the step-target
      // role, so only honest in-support x may contribute; compromised (or
      // pruned) entries of `in` are start-only values and never feed a
      // later step.
      if (!honest_interior_[x]) continue;
      for (std::uint32_t i = 0; i < a.size; ++i) {
        const node_id y = a.ids[i];
        out[y] += in[x] * (a.weights[i] / topo_.total_weight(y));
      }
    }
  }
}

bool topology_posterior_engine::try_sender_posterior(
    const observation& obs, std::vector<double>& out) const {
  const auto n = sys_.node_count;
  out.assign(n, 0.0);
  if (obs.origin) {
    if (*obs.origin >= n) return false;
    out[*obs.origin] = 1.0;
    return true;
  }
  ANONPATH_EXPECTS(!obs.gapped);

  std::vector<path_fragment> fragments;
  try {
    fragments = assemble_fragments(obs, compromised_flag_);
  } catch (const std::invalid_argument&) {
    return false;
  }
  for (const auto& f : fragments)
    for (node_id x : f.nodes)
      if (x != receiver_node && x >= n) return false;

  const bool pinned =
      !fragments.empty() && fragments.back().nodes.back() == receiver_node;
  const bool v_known = obs.receiver_observed;
  const node_id v = obs.receiver_predecessor;

  // R terminates the walk: it may appear only as the last node of the last
  // fragment. (Real collection never violates this; fuzzed input can.)
  for (std::size_t f = 0; f < fragments.size(); ++f)
    for (std::size_t i = 0; i < fragments[f].nodes.size(); ++i)
      if (fragments[f].nodes[i] == receiver_node &&
          !(f + 1 == fragments.size() && i + 1 == fragments[f].nodes.size()))
        return false;

  if (v_known) {
    if (pinned) {
      // The pinned tail must name v as the receiver's predecessor.
      const auto& last = fragments.back().nodes;
      if (last.size() < 2 || last[last.size() - 2] != v) return false;
    } else {
      // A compromised terminal relay would have reported and pinned the
      // path; an unpinned v must be honest.
      if (v >= n || compromised_flag_[v]) return false;
    }
  } else if (fragments.empty()) {
    return false;  // nothing was observed at all
  }

  // Every reported transition must follow a graph edge (s-independent; a
  // violation zeroes every hypothesis at once).
  for (const auto& f : fragments)
    for (std::size_t i = 0; i + 1 < f.nodes.size(); ++i) {
      if (f.nodes[i + 1] == receiver_node) continue;  // delivery step, prob 1
      if (topo_.transition_prob(f.nodes[i], f.nodes[i + 1]) <= 0.0)
        return false;
    }

  // Block list over the extended walk y_0 = s, y_1..y_l, y_{l+1} = R: the
  // sender block, the fragments, and — unless a pinned fragment already
  // covers it — the terminal [v, R] block (or an open tail when the
  // receiver saw nothing).
  struct block {
    node_id first;
    node_id last;
    std::size_t span;
  };
  std::vector<block> blocks;
  blocks.push_back(block{0, 0, 1});  // sender placeholder; first/last unused
  for (const auto& f : fragments)
    blocks.push_back(block{f.nodes.front(), f.nodes.back(), f.nodes.size()});
  const bool open = !pinned && !v_known;
  if (!pinned && v_known) blocks.push_back(block{v, receiver_node, 2});

  std::size_t intra = 0;  // transitions inside blocks (known probabilities)
  for (const block& b : blocks) intra += b.span - 1;

  const path_length max_l = lengths_.max_length();
  const std::size_t dmax = static_cast<std::size_t>(max_l) + 1;

  // Gap series between consecutive blocks (skipping the sender gap, which
  // is handled for all s at once below): series[t] = probability of
  // crossing from block j's last node to block j+1's first node in t
  // honest-interior steps. The walk model has no global distinctness
  // constraint, so gaps are independent and their series convolve.
  std::vector<double> rest(dmax + 1, 0.0);
  rest[0] = 1.0;
  std::vector<double> cur, next, series, conv;
  const auto fold_into_rest = [&] {
    conv.assign(dmax + 1, 0.0);
    for (std::size_t t = 0; t <= dmax; ++t) {
      if (rest[t] == 0.0) continue;
      for (std::size_t u = 0; t + u <= dmax; ++u)
        conv[t + u] += rest[t] * series[u];
    }
    rest.swap(conv);
  };
  for (std::size_t j = 1; j + 1 < blocks.size(); ++j) {
    const node_id a = blocks[j].last;
    const node_id b = blocks[j + 1].first;
    series.assign(dmax + 1, 0.0);
    series[0] = (a == b) ? 1.0 : 0.0;
    cur.assign(n, 0.0);
    cur[a] = 1.0;
    for (std::size_t t = 1; t <= dmax; ++t) {
      honest_step(cur, next, /*forward=*/true);
      cur.swap(next);
      series[t] = b < n ? cur[b] : 0.0;
    }
    fold_into_rest();
  }
  if (open) {
    // Open tail after the last block: t honest steps ending anywhere.
    const node_id a = blocks.back().last;
    series.assign(dmax + 1, 0.0);
    series[0] = 1.0;
    cur.assign(n, 0.0);
    cur[a] = 1.0;
    for (std::size_t t = 1; t <= dmax; ++t) {
      honest_step(cur, next, /*forward=*/true);
      cur.swap(next);
      double sum = 0.0;
      for (double x : cur) sum += x;
      series[t] = sum;
    }
    fold_into_rest();
  }

  // Sender gap, all hypotheses at once: gs[t][s] = probability that a walk
  // from s reaches the first observed node in t steps, every step landing
  // on an honest node (backward DP from that node).
  const node_id b1 = blocks[1].first;
  std::vector<std::vector<double>> gs(dmax + 1,
                                      std::vector<double>(n, 0.0));
  if (b1 < n) gs[0][b1] = 1.0;
  if (b1 < n && !compromised_flag_[b1]) {
    cur.assign(n, 0.0);
    cur[b1] = 1.0;
    for (std::size_t t = 1; t <= dmax; ++t) {
      honest_step(cur, next, /*forward=*/false);
      cur.swap(next);
      gs[t] = cur;
    }
  }

  // coeff[t] = sum over lengths of pmf(l) * rest[D(l) - t], where D(l) is
  // the total gap budget the length implies; then the per-sender weight is
  // sum_t coeff[t] * gs[t][s]. The s-independent product of in-block
  // transition probabilities cancels in the normalization.
  std::vector<double> coeff(dmax + 1, 0.0);
  for (path_length l = lengths_.min_length(); l <= max_l; ++l) {
    const double pl = lengths_.pmf(l);
    if (pl <= 0.0) continue;
    const long long budget = static_cast<long long>(l) + (open ? 0 : 1) -
                             static_cast<long long>(intra);
    if (budget < 0) continue;
    const auto d = static_cast<std::size_t>(budget);
    for (std::size_t t = 0; t <= d && t <= dmax; ++t)
      if (rest[d - t] != 0.0) coeff[t] += pl * rest[d - t];
  }

  double z = 0.0;
  for (node_id s = 0; s < n; ++s) {
    if (compromised_flag_[s]) continue;  // no origin report => not the sender
    double acc = 0.0;
    for (std::size_t t = 0; t <= dmax; ++t)
      if (coeff[t] != 0.0) acc += coeff[t] * gs[t][s];
    out[s] = acc;
    z += acc;
  }
  if (!(z > 0.0) || !std::isfinite(z)) {
    out.assign(n, 0.0);
    return false;
  }
  for (node_id s = 0; s < n; ++s) out[s] /= z;
  return true;
}

std::vector<double> topology_posterior_engine::sender_posterior(
    const observation& obs) const {
  std::vector<double> out;
  const bool ok = try_sender_posterior(obs, out);
  ANONPATH_ENSURES(ok);
  return out;
}

bool topology_posterior_engine::explainable(const observation& obs) const {
  if (obs.gapped) return false;
  std::vector<double> scratch;
  return try_sender_posterior(obs, scratch);
}

}  // namespace anonpath::net
