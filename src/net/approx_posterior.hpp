#pragma once

#include <cstdint>
#include <vector>

#include "src/anonymity/length_distribution.hpp"
#include "src/anonymity/observation.hpp"
#include "src/anonymity/types.hpp"
#include "src/net/route_plan.hpp"
#include "src/net/topology.hpp"
#include "src/net/topology_posterior.hpp"

namespace anonpath::net {

/// Approximate sender inference for graphs (and routing models) beyond the
/// exact engine's comfortable reach: the same restricted-path transfer-
/// matrix DP as topology_posterior_engine, with the honest-interior state
/// space pruned to a support mask — typically the union of nodes on the
/// planned k-shortest paths (kpath_support). With a full mask the
/// arithmetic is bit-identical to the exact engine (the conformance suite
/// pins this, alongside graph_oracle, on N <= 10); a proper subset trades
/// exactness on walk-model tails for a smaller DP frontier, and zeroes any
/// hypothesis that needs a pruned node at a non-sender position.
///
/// This is also the engine that scores kpaths simulation runs: planned
/// routes are loopless, so a diffuse uniform(1, N-1) length prior covers
/// every realizable route length, and under the model's uniform exit law
/// the planned k-path support spans every node — the mask degenerates to
/// full and the DP runs unpruned (see kpath_support). Restricted exit or
/// source policies are where real pruning pays.
class approx_topology_posterior {
 public:
  /// Full support: exactly topology_posterior_engine, repackaged.
  approx_topology_posterior(system_params sys,
                            std::vector<node_id> compromised,
                            path_length_distribution lengths, topology topo);

  /// Explicit support mask (size N). The scalable path: callers on large
  /// graphs derive the mask themselves (e.g. kpath_support over a
  /// restricted source/exit policy) instead of the O(N^2) all-pairs sweep.
  approx_topology_posterior(system_params sys,
                            std::vector<node_id> compromised,
                            path_length_distribution lengths, topology topo,
                            std::vector<bool> support);

  /// Support derived from a kpaths routing config over explicit
  /// source/exit sets: kpath_support(topo, routing.k, sources, exits).
  /// Preconditions: routing.valid() && routing.planned().
  approx_topology_posterior(system_params sys,
                            std::vector<node_id> compromised,
                            path_length_distribution lengths, topology topo,
                            const routing_config& routing,
                            const std::vector<node_id>& sources,
                            const std::vector<node_id>& exits);

  /// Posterior Pr(S = i | obs); precondition: explainable(obs).
  [[nodiscard]] std::vector<double> sender_posterior(
      const observation& obs) const {
    return engine_.sender_posterior(obs);
  }

  /// False — `out` all-zero — when no hypothesis survives (mis-assembled
  /// input, or an observation whose walk needs a pruned node).
  [[nodiscard]] bool try_sender_posterior(const observation& obs,
                                          std::vector<double>& out) const {
    return engine_.try_sender_posterior(obs, out);
  }

  [[nodiscard]] bool explainable(const observation& obs) const {
    return engine_.explainable(obs);
  }

  [[nodiscard]] const topology_posterior_engine& engine() const noexcept {
    return engine_;
  }
  [[nodiscard]] const topology& graph() const noexcept {
    return engine_.graph();
  }

  /// The effective mask (empty = full support) and its popcount (N when
  /// unmasked).
  [[nodiscard]] const std::vector<bool>& support() const noexcept {
    return engine_.interior_support();
  }
  [[nodiscard]] std::uint32_t support_size() const noexcept;

 private:
  topology_posterior_engine engine_;
};

}  // namespace anonpath::net
