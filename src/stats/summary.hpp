#pragma once

#include <cstdint>

namespace anonpath::stats {

/// Streaming mean/variance accumulator (Welford's algorithm), numerically
/// stable for millions of Monte-Carlo samples. Provides normal-approximation
/// confidence intervals for the mean.
class running_summary {
 public:
  void add(double x) noexcept;

  /// Adds `count` copies of x in O(1) (batch Welford update). Equivalent to
  /// calling add(x) `count` times up to rounding; used by the deduplicating
  /// Monte-Carlo engine to score a whole observation class at once.
  void add_repeated(double x, std::uint64_t count) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }

  /// Unbiased sample variance; 0 when fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;

  /// Standard error of the mean; 0 when fewer than two samples.
  [[nodiscard]] double std_error() const noexcept;

  /// Half-width of the two-sided normal-approximation confidence interval
  /// at the given z value (default z = 1.96 ~ 95%).
  [[nodiscard]] double ci_half_width(double z = 1.96) const noexcept;

  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

  /// Merges another summary (parallel reduction), Chan et al. formula.
  void merge(const running_summary& other) noexcept;

  /// Second central moment sum Σ(x - mean)² — the raw Welford state.
  /// Exposed (with restore) so checkpoints can serialize a summary exactly;
  /// use variance()/stddev() for statistics.
  [[nodiscard]] double m2() const noexcept { return m2_; }

  /// Rebuilds a summary from raw state captured via count()/mean()/m2()/
  /// min()/max() — the checkpoint-resume inverse of that capture, exact to
  /// the bit. Precondition: n == 0 implies the remaining fields are the
  /// defaults of an empty summary.
  [[nodiscard]] static running_summary restore(std::uint64_t n, double mean,
                                               double m2, double min,
                                               double max) noexcept {
    running_summary s;
    s.n_ = n;
    s.mean_ = mean;
    s.m2_ = m2;
    s.min_ = min;
    s.max_ = max;
    return s;
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace anonpath::stats
