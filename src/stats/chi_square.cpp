#include "src/stats/chi_square.hpp"

#include <cmath>
#include <vector>

#include "src/stats/contract.hpp"
#include "src/stats/kahan.hpp"

namespace anonpath::stats {

namespace {

// Regularized lower incomplete gamma P(a, x) by power series (x < a + 1).
double gamma_p_series(double a, double x) {
  double sum = 1.0 / a;
  double term = sum;
  for (int n = 1; n < 500; ++n) {
    term *= x / (a + n);
    sum += term;
    if (std::fabs(term) < std::fabs(sum) * 1e-16) break;
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

// Regularized upper incomplete gamma Q(a, x) by Lentz continued fraction
// (x >= a + 1).
double gamma_q_cont_fraction(double a, double x) {
  const double tiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / tiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i < 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < tiny) d = tiny;
    c = b + an / c;
    if (std::fabs(c) < tiny) c = tiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < 1e-16) break;
  }
  return std::exp(-x + a * std::log(x) - std::lgamma(a)) * h;
}

}  // namespace

double chi_square_upper_tail(double x, int k) {
  ANONPATH_EXPECTS(x >= 0.0);
  ANONPATH_EXPECTS(k >= 1);
  const double a = 0.5 * static_cast<double>(k);
  const double hx = 0.5 * x;
  if (hx == 0.0) return 1.0;
  if (hx < a + 1.0) return 1.0 - gamma_p_series(a, hx);
  return gamma_q_cont_fraction(a, hx);
}

chi_square_result chi_square_goodness_of_fit(
    std::span<const std::uint64_t> observed, std::span<const double> expected_probs,
    double min_expected) {
  ANONPATH_EXPECTS(observed.size() == expected_probs.size());
  ANONPATH_EXPECTS(observed.size() > 1);

  kahan_sum total_count;
  for (auto o : observed) total_count.add(static_cast<double>(o));
  const double n = total_count.value();
  ANONPATH_EXPECTS(n > 0.0);

  // Pool adjacent bins until each pooled bin has enough expected mass.
  std::vector<double> pooled_exp;
  std::vector<double> pooled_obs;
  double acc_exp = 0.0;
  double acc_obs = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    acc_exp += expected_probs[i] * n;
    acc_obs += static_cast<double>(observed[i]);
    if (acc_exp >= min_expected) {
      pooled_exp.push_back(acc_exp);
      pooled_obs.push_back(acc_obs);
      acc_exp = acc_obs = 0.0;
    }
  }
  if (acc_exp > 0.0 || acc_obs > 0.0) {
    if (!pooled_exp.empty()) {
      pooled_exp.back() += acc_exp;
      pooled_obs.back() += acc_obs;
    } else {
      pooled_exp.push_back(acc_exp);
      pooled_obs.push_back(acc_obs);
    }
  }

  chi_square_result result;
  if (pooled_exp.size() < 2) {
    // Degenerate: everything pooled into one bin, nothing to test.
    result.degrees_of_freedom = 0;
    result.p_value = 1.0;
    return result;
  }

  kahan_sum stat;
  for (std::size_t i = 0; i < pooled_exp.size(); ++i) {
    const double d = pooled_obs[i] - pooled_exp[i];
    stat.add(d * d / pooled_exp[i]);
  }
  result.statistic = stat.value();
  result.degrees_of_freedom = static_cast<int>(pooled_exp.size()) - 1;
  result.p_value = chi_square_upper_tail(result.statistic, result.degrees_of_freedom);
  return result;
}

}  // namespace anonpath::stats
