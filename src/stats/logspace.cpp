#include "src/stats/logspace.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/stats/contract.hpp"
#include "src/stats/kahan.hpp"

namespace anonpath::stats {

double log_zero() noexcept { return -std::numeric_limits<double>::infinity(); }

double log_falling_factorial(long long n, long long k) {
  ANONPATH_EXPECTS(n >= 0);
  ANONPATH_EXPECTS(k >= 0 && k <= n);
  if (k == 0) return 0.0;
  // lgamma is exact enough here (n small in this codebase), but direct
  // summation below ~64 terms is both faster and exact to 1 ulp per term.
  if (k <= 64) {
    kahan_sum acc;
    for (long long i = 0; i < k; ++i)
      acc.add(std::log(static_cast<double>(n - i)));
    return acc.value();
  }
  return std::lgamma(static_cast<double>(n) + 1.0) -
         std::lgamma(static_cast<double>(n - k) + 1.0);
}

double log_binomial(long long n, long long k) {
  ANONPATH_EXPECTS(n >= 0);
  ANONPATH_EXPECTS(k >= 0 && k <= n);
  const long long kk = std::min(k, n - k);
  return log_falling_factorial(n, kk) - log_falling_factorial(kk, kk);
}

double log_add_exp(double a, double b) {
  if (std::isinf(a) && a < 0) return b;
  if (std::isinf(b) && b < 0) return a;
  const double hi = std::max(a, b);
  const double lo = std::min(a, b);
  return hi + std::log1p(std::exp(lo - hi));
}

double log_sum_exp(std::span<const double> xs) {
  double hi = log_zero();
  for (double x : xs) hi = std::max(hi, x);
  if (std::isinf(hi) && hi < 0) return log_zero();
  kahan_sum acc;
  for (double x : xs) {
    if (!(std::isinf(x) && x < 0)) acc.add(std::exp(x - hi));
  }
  return hi + std::log(acc.value());
}

}  // namespace anonpath::stats
