#pragma once

#include <span>

namespace anonpath::stats {

/// Natural-log-domain helpers for combinatorial likelihoods whose linear-space
/// values overflow double (falling factorials of ~100 terms and larger).

/// ln of the falling factorial n * (n-1) * ... * (n-k+1) = n!/(n-k)!.
/// Preconditions: n >= 0, 0 <= k <= n. Returns 0 for k == 0.
[[nodiscard]] double log_falling_factorial(long long n, long long k);

/// ln of the binomial coefficient C(n, k). Preconditions: n >= 0, 0 <= k <= n.
[[nodiscard]] double log_binomial(long long n, long long k);

/// Numerically stable ln(sum_i exp(x_i)). Empty input yields -infinity.
/// Entries equal to -infinity are ignored.
[[nodiscard]] double log_sum_exp(std::span<const double> xs);

/// Stable ln(exp(a) + exp(b)); either side may be -infinity.
[[nodiscard]] double log_add_exp(double a, double b);

/// Negative infinity constant used as "log of zero probability".
[[nodiscard]] double log_zero() noexcept;

}  // namespace anonpath::stats
