#include "src/stats/rng.hpp"

#include <algorithm>

#include "src/stats/contract.hpp"

namespace anonpath::stats {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

rng::rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
  // xoshiro256++ requires a not-all-zero state; SplitMix64 cannot produce
  // four consecutive zeros, but keep the guarantee explicit.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[3] = 1;
}

std::uint64_t rng::next_u64() noexcept {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double rng::next_double() noexcept {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::uint64_t rng::next_below(std::uint64_t bound) {
  ANONPATH_EXPECTS(bound > 0);
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (-bound) % bound;
    while (low < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t rng::next_int(std::int64_t lo, std::int64_t hi) {
  ANONPATH_EXPECTS(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  return lo + static_cast<std::int64_t>(next_below(span));
}

bool rng::next_bernoulli(double p) {
  ANONPATH_EXPECTS(p >= 0.0 && p <= 1.0);
  return next_double() < p;
}

std::vector<std::uint32_t> rng::sample_distinct(
    std::uint32_t n, std::uint32_t k, const std::vector<std::uint32_t>& exclude) {
  std::vector<std::uint32_t> pool;
  pool.reserve(n);
  std::vector<bool> banned(n, false);
  for (std::uint32_t e : exclude)
    if (e < n) banned[e] = true;
  for (std::uint32_t v = 0; v < n; ++v)
    if (!banned[v]) pool.push_back(v);
  ANONPATH_EXPECTS(k <= pool.size());
  // Partial Fisher-Yates: after i swaps the prefix is a uniform ordered
  // sample without replacement.
  for (std::uint32_t i = 0; i < k; ++i) {
    const auto j = i + static_cast<std::uint32_t>(next_below(pool.size() - i));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

rng rng::split() noexcept { return rng(next_u64()); }

rng rng::stream(std::uint64_t seed, std::uint64_t stream_index) noexcept {
  // Two SplitMix64 rounds: the first decorrelates the user seed, the second
  // mixes in the stream index via an odd multiplier so that consecutive
  // indices land in unrelated regions of the seed space.
  std::uint64_t s = seed;
  const std::uint64_t base = splitmix64(s);
  std::uint64_t t =
      base ^ (stream_index * 0xd1342543de82ef95ULL + 0x2545f4914f6cdd1dULL);
  return rng(splitmix64(t));
}

}  // namespace anonpath::stats
