#pragma once

#include <cstdint>
#include <span>

namespace anonpath::stats {

/// Result of a chi-square goodness-of-fit test.
struct chi_square_result {
  double statistic = 0.0;   ///< sum (obs - exp)^2 / exp over used bins
  int degrees_of_freedom = 0;
  double p_value = 1.0;     ///< upper-tail probability of the statistic
};

/// Pearson chi-square goodness-of-fit between observed counts and expected
/// probabilities. Bins with expected count below `min_expected` are pooled
/// into the following bin to keep the asymptotic approximation valid.
/// Preconditions: sizes match and are > 1; probabilities sum to ~1.
[[nodiscard]] chi_square_result chi_square_goodness_of_fit(
    std::span<const std::uint64_t> observed, std::span<const double> expected_probs,
    double min_expected = 5.0);

/// Upper-tail probability P(X >= x) for a chi-square distribution with k
/// degrees of freedom, via the regularized incomplete gamma function
/// (series + continued fraction, self-contained). Preconditions: x >= 0, k >= 1.
[[nodiscard]] double chi_square_upper_tail(double x, int k);

}  // namespace anonpath::stats
