#include "src/stats/thread_pool.hpp"

#include <algorithm>

namespace anonpath::stats {

namespace {

unsigned resolve_thread_count(unsigned requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace

thread_pool::thread_pool(unsigned thread_count) {
  const unsigned total = resolve_thread_count(thread_count);
  workers_.reserve(total - 1);
  for (unsigned id = 0; id + 1 < total; ++id) {
    workers_.emplace_back([this, id] { worker_loop(id); });
  }
}

thread_pool::~thread_pool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void thread_pool::run_indices(unsigned worker_id) {
  for (;;) {
    const std::uint64_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= count_) return;
    try {
      (*body_)(i, worker_id);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (!error_) error_ = std::current_exception();
      // Abandon the remaining indices so the job drains quickly.
      next_.store(count_, std::memory_order_relaxed);
      return;
    }
  }
}

void thread_pool::worker_loop(unsigned worker_id) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] {
        return stop_ || generation_ != seen_generation;
      });
      if (stop_) return;
      seen_generation = generation_;
    }
    run_indices(worker_id);
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --active_;
    }
    done_cv_.notify_one();
  }
}

void thread_pool::parallel_for(
    std::uint64_t count,
    const std::function<void(std::uint64_t, unsigned)>& body) {
  if (count == 0) return;
  const unsigned caller_id = static_cast<unsigned>(workers_.size());
  if (workers_.empty() || count == 1) {
    for (std::uint64_t i = 0; i < count; ++i) body(i, caller_id);
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    body_ = &body;
    count_ = count;
    next_.store(0, std::memory_order_relaxed);
    error_ = nullptr;
    active_ = static_cast<unsigned>(workers_.size());
    ++generation_;
  }
  start_cv_.notify_all();
  run_indices(caller_id);  // the calling thread is the last worker
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return active_ == 0; });
    body_ = nullptr;
    if (error_) {
      auto err = error_;
      error_ = nullptr;
      std::rethrow_exception(err);
    }
  }
}

void parallel_for(unsigned threads, std::uint64_t count,
                  const std::function<void(std::uint64_t, unsigned)>& body) {
  const unsigned total = resolve_thread_count(threads);
  if (total <= 1 || count <= 1) {
    for (std::uint64_t i = 0; i < count; ++i) body(i, 0);
    return;
  }
  thread_pool pool(std::min<std::uint64_t>(total, count));
  pool.parallel_for(count, body);
}

}  // namespace anonpath::stats
