#pragma once

#include <stdexcept>
#include <string>

namespace anonpath {

/// What went wrong with an untrusted input. The taxonomy exists so callers
/// (CLI error reporting, fuzz tests, resume logic) can react to the *class*
/// of failure instead of string-matching messages:
///   * io               — the stream/file could not be read at all;
///   * truncated        — the input ended mid-record;
///   * malformed        — a token failed to parse as its declared type;
///   * out_of_range     — a well-formed value violates a documented bound;
///   * version_mismatch — the format version is not the one this build reads;
///   * mismatch         — the input is internally consistent but does not
///                        belong here (e.g. a checkpoint for another grid).
enum class parse_error_kind : std::uint8_t {
  io,
  truncated,
  malformed,
  out_of_range,
  version_mismatch,
  mismatch,
};

/// Stable short label ("truncated", ...) for messages and logs.
[[nodiscard]] constexpr const char* parse_error_kind_label(
    parse_error_kind kind) noexcept {
  switch (kind) {
    case parse_error_kind::io: return "io";
    case parse_error_kind::truncated: return "truncated";
    case parse_error_kind::malformed: return "malformed";
    case parse_error_kind::out_of_range: return "out_of_range";
    case parse_error_kind::version_mismatch: return "version_mismatch";
    case parse_error_kind::mismatch: return "mismatch";
  }
  return "unknown";
}

/// Structured failure on *untrusted input* — trace files, checkpoint files,
/// config strings. Distinct from contract_violation, which flags programming
/// errors on trusted call paths: hostile or corrupt bytes must surface as
/// parse_error (catchable, classified, message names the offending field)
/// and never as an assert, a crash, or a giant allocation.
///
/// Derives from std::invalid_argument so pre-taxonomy call sites that caught
/// the old raw throws keep working unchanged.
class parse_error : public std::invalid_argument {
 public:
  /// `source` names the input ("trace", "checkpoint", ...); `detail` names
  /// the field and failure. what() renders "<source>: <detail>".
  parse_error(parse_error_kind kind, std::string source,
              const std::string& detail)
      : std::invalid_argument(source + ": " + detail),
        kind_(kind),
        source_(std::move(source)) {}

  [[nodiscard]] parse_error_kind kind() const noexcept { return kind_; }

  /// The input family that failed to parse ("trace", "checkpoint", ...).
  [[nodiscard]] const std::string& source() const noexcept { return source_; }

 private:
  parse_error_kind kind_;
  std::string source_;
};

}  // namespace anonpath
