#pragma once

namespace anonpath::stats {

/// Kahan–Neumaier compensated accumulator. Long probability-weighted sums
/// (entropy over thousands of event classes, Monte-Carlo averages) lose
/// precision under naive summation; this keeps the error O(1) ulp.
class kahan_sum {
 public:
  constexpr kahan_sum() noexcept = default;

  constexpr void add(double x) noexcept {
    const double t = sum_ + x;
    if ((sum_ >= 0 ? sum_ : -sum_) >= (x >= 0 ? x : -x)) {
      comp_ += (sum_ - t) + x;
    } else {
      comp_ += (x - t) + sum_;
    }
    sum_ = t;
  }

  constexpr kahan_sum& operator+=(double x) noexcept {
    add(x);
    return *this;
  }

  /// Compensated total.
  [[nodiscard]] constexpr double value() const noexcept { return sum_ + comp_; }

 private:
  double sum_ = 0.0;
  double comp_ = 0.0;
};

}  // namespace anonpath::stats
