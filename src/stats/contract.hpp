#pragma once

#include <stdexcept>
#include <string>

namespace anonpath {

/// Thrown when a precondition or postcondition stated by a public interface
/// is violated. Follows Core Guidelines I.5/I.6: preconditions are stated and
/// checked; a violation is a programming error surfaced as an exception so
/// that tests can assert on it.
class contract_violation : public std::logic_error {
 public:
  explicit contract_violation(const std::string& what_arg)
      : std::logic_error(what_arg) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* cond,
                                       const char* file, int line) {
  throw contract_violation(std::string(kind) + " failed: " + cond + " at " +
                           file + ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace anonpath

/// Precondition check (Core Guidelines I.6). Always on: the checks guard
/// cheap scalar conditions on public API boundaries.
#define ANONPATH_EXPECTS(cond)                                            \
  do {                                                                    \
    if (!(cond))                                                          \
      ::anonpath::detail::contract_fail("precondition", #cond, __FILE__,  \
                                        __LINE__);                        \
  } while (false)

/// Postcondition check (Core Guidelines I.8).
#define ANONPATH_ENSURES(cond)                                            \
  do {                                                                    \
    if (!(cond))                                                          \
      ::anonpath::detail::contract_fail("postcondition", #cond, __FILE__, \
                                        __LINE__);                        \
  } while (false)
