#include "src/stats/summary.hpp"

#include <algorithm>
#include <cmath>

namespace anonpath::stats {

void running_summary::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void running_summary::add_repeated(double x, std::uint64_t count) noexcept {
  if (count == 0) return;
  running_summary batch;
  batch.n_ = count;
  batch.mean_ = x;
  batch.m2_ = 0.0;
  batch.min_ = batch.max_ = x;
  merge(batch);
}

double running_summary::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double running_summary::stddev() const noexcept { return std::sqrt(variance()); }

double running_summary::std_error() const noexcept {
  return n_ < 2 ? 0.0 : stddev() / std::sqrt(static_cast<double>(n_));
}

double running_summary::ci_half_width(double z) const noexcept {
  return z * std_error();
}

void running_summary::merge(const running_summary& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double nab = na + nb;
  mean_ += delta * nb / nab;
  m2_ += other.m2_ + delta * delta * na * nb / nab;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

}  // namespace anonpath::stats
