#include "src/stats/discrete_sampler.hpp"

#include <cmath>

#include "src/stats/contract.hpp"
#include "src/stats/kahan.hpp"

namespace anonpath::stats {

discrete_sampler::discrete_sampler(std::span<const double> weights) {
  ANONPATH_EXPECTS(!weights.empty());
  kahan_sum total;
  for (double w : weights) {
    ANONPATH_EXPECTS(w >= 0.0 && std::isfinite(w));
    total.add(w);
  }
  ANONPATH_EXPECTS(total.value() > 0.0);

  const std::size_t n = weights.size();
  pmf_.resize(n);
  for (std::size_t i = 0; i < n; ++i) pmf_[i] = weights[i] / total.value();

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);

  // Vose's algorithm: split scaled probabilities into "small" (< 1) and
  // "large" (>= 1) worklists, pairing each small column with a large donor.
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) scaled[i] = pmf_[i] * static_cast<double>(n);

  std::vector<std::uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  // Leftovers are 1.0 up to rounding.
  for (std::uint32_t l : large) prob_[l] = 1.0;
  for (std::uint32_t s : small) prob_[s] = 1.0;
}

std::size_t discrete_sampler::sample(rng& gen) const {
  const std::size_t col = static_cast<std::size_t>(gen.next_below(prob_.size()));
  return gen.next_double() < prob_[col] ? col : alias_[col];
}

double discrete_sampler::probability(std::size_t i) const {
  ANONPATH_EXPECTS(i < pmf_.size());
  return pmf_[i];
}

}  // namespace anonpath::stats
