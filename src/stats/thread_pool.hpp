#pragma once

#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>

namespace anonpath::stats {

/// A small reusable fixed-size worker pool for data-parallel loops.
///
/// The pool owns `worker_count() - 1` background threads; the thread that
/// calls `parallel_for` participates as the last worker, so a pool of size T
/// runs loop bodies on exactly T concurrent threads and a pool of size 1
/// degenerates to an inline serial loop with zero synchronization.
///
/// Scheduling is dynamic (workers claim the next index from a shared atomic
/// counter), so callers that need deterministic results must make each index
/// self-contained — e.g. give every index its own rng stream and write to its
/// own output slot — and reduce the slots in index order afterwards. The
/// Monte-Carlo engine follows exactly this pattern to stay bit-identical
/// across thread counts.
class thread_pool {
 public:
  /// Spawns `thread_count - 1` workers; 0 means std::thread::hardware_concurrency().
  explicit thread_pool(unsigned thread_count = 0);
  ~thread_pool();

  thread_pool(const thread_pool&) = delete;
  thread_pool& operator=(const thread_pool&) = delete;

  /// Total concurrency, including the calling thread.
  [[nodiscard]] unsigned worker_count() const noexcept {
    return static_cast<unsigned>(workers_.size()) + 1;
  }

  /// Runs body(index, worker) for every index in [0, count), distributing
  /// indices dynamically over all workers. `worker` is a stable id in
  /// [0, worker_count()) identifying which thread runs the body — use it to
  /// index per-thread scratch state (the same worker id is never active on
  /// two threads at once). Blocks until every index completes; the first
  /// exception thrown by any body is rethrown here (remaining indices are
  /// abandoned). Not reentrant: bodies must not call parallel_for on the
  /// same pool.
  void parallel_for(std::uint64_t count,
                    const std::function<void(std::uint64_t, unsigned)>& body);

 private:
  void worker_loop(unsigned worker_id);
  void run_indices(unsigned worker_id);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::uint64_t, unsigned)>* body_ = nullptr;
  std::uint64_t count_ = 0;
  std::atomic<std::uint64_t> next_{0};
  unsigned active_ = 0;        // background workers still inside the job
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  std::exception_ptr error_;
};

/// One-shot convenience: runs body(index, worker) over [0, count) on up to
/// `threads` threads (0 = hardware concurrency) without keeping a pool
/// around. `threads <= 1` runs inline.
void parallel_for(unsigned threads, std::uint64_t count,
                  const std::function<void(std::uint64_t, unsigned)>& body);

}  // namespace anonpath::stats
