#pragma once

#include <cstdint>
#include <vector>

namespace anonpath::stats {

/// Deterministic, seedable pseudo-random generator built on xoshiro256++
/// (Blackman & Vigna) seeded through SplitMix64. Self-contained so that every
/// experiment in the repository is exactly reproducible across platforms,
/// independent of the standard library's unspecified distributions.
///
/// Satisfies the C++ UniformRandomBitGenerator requirements, so it can also be
/// plugged into <random> machinery where convenient.
class rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four-word state from a single 64-bit seed via SplitMix64,
  /// guaranteeing a non-zero state for any seed.
  explicit rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  /// Next raw 64 bits.
  result_type operator()() noexcept { return next_u64(); }

  /// Next raw 64 bits (xoshiro256++ step).
  std::uint64_t next_u64() noexcept;

  /// Uniform double in [0, 1) with 53 bits of precision.
  double next_double() noexcept;

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  /// Precondition: bound > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with success probability p in [0, 1].
  bool next_bernoulli(double p);

  /// Ordered uniform sample of `k` distinct values from {0, 1, ..., n-1},
  /// excluding every value in `exclude` (which must be sorted not required;
  /// values outside [0, n) are ignored). Sampling is by partial
  /// Fisher-Yates over the allowed pool, so all arrangements are
  /// equally likely. Preconditions: k <= n - |exclude ∩ [0,n)|.
  [[nodiscard]] std::vector<std::uint32_t> sample_distinct(
      std::uint32_t n, std::uint32_t k, const std::vector<std::uint32_t>& exclude);

  /// Splits off an independently seeded generator; useful for giving each
  /// simulation component its own stream.
  [[nodiscard]] rng split() noexcept;

  /// Deterministic per-shard stream: generator number `stream_index` of the
  /// family identified by `seed`. Unlike split(), the result depends only on
  /// (seed, stream_index) — not on how many values any other stream has
  /// produced — so sharded computations are reproducible for any thread
  /// count and any shard execution order. Streams are decorrelated by
  /// running both inputs through SplitMix64 with distinct mixing constants.
  [[nodiscard]] static rng stream(std::uint64_t seed,
                                  std::uint64_t stream_index) noexcept;

 private:
  std::uint64_t state_[4];
};

/// SplitMix64 step; exposed for tests and for seeding other components.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

}  // namespace anonpath::stats
