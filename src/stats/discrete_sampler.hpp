#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/stats/rng.hpp"

namespace anonpath::stats {

/// Draws indices 0..n-1 with given (unnormalized) weights in O(1) per draw
/// using Vose's alias method. Used to sample path lengths from arbitrary
/// distributions (the paper's variable-length strategies) inside the
/// simulator and the Monte-Carlo estimator.
class discrete_sampler {
 public:
  /// Builds the alias table. Preconditions: weights non-empty, all
  /// weights >= 0, at least one weight > 0.
  explicit discrete_sampler(std::span<const double> weights);

  /// Number of categories.
  [[nodiscard]] std::size_t size() const noexcept { return prob_.size(); }

  /// Draws one index with probability proportional to its weight.
  [[nodiscard]] std::size_t sample(rng& gen) const;

  /// Normalized probability of category i (for tests / introspection).
  [[nodiscard]] double probability(std::size_t i) const;

 private:
  std::vector<double> prob_;         // acceptance probability per column
  std::vector<std::uint32_t> alias_; // alias target per column
  std::vector<double> pmf_;          // normalized input, kept for inspection
};

}  // namespace anonpath::stats
