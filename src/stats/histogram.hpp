#pragma once

#include <cstdint>
#include <vector>

namespace anonpath::stats {

/// Dense integer histogram over [0, size). Used to validate path-length
/// samplers against their analytic pmfs and to tabulate simulator traces.
class int_histogram {
 public:
  /// Creates `size` zero-initialized bins. Precondition: size > 0.
  explicit int_histogram(std::size_t size);

  /// Increments the bin for `value`. Precondition: value < size().
  void add(std::size_t value);

  /// Adds `n` occurrences of `value` at once (bulk load for merge paths
  /// and deserialization). Preconditions: value < size(), and the running
  /// total must not overflow (validated by untrusted-input readers before
  /// calling).
  void add(std::size_t value, std::uint64_t n);

  /// Adds `other`'s counts bin-by-bin. Precondition: other.size() == size().
  /// Merge is associative and commutative (integer sums), so any
  /// shard/merge tree over the same additions yields identical counts —
  /// the property the campaign duration histograms rely on.
  void merge(const int_histogram& other);

  /// Smallest bin whose cumulative count reaches a `q` fraction of the
  /// total (the empirical q-quantile of the recorded values).
  /// Preconditions: total() > 0 and 0.0 <= q <= 1.0.
  [[nodiscard]] std::size_t quantile(double q) const;

  [[nodiscard]] std::size_t size() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t count(std::size_t bin) const;
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  /// Empirical probability of a bin (0 when the histogram is empty).
  [[nodiscard]] double frequency(std::size_t bin) const;

  /// Empirical mean of the recorded values (0 when empty).
  [[nodiscard]] double mean() const noexcept;

  /// All counts, bin-indexed.
  [[nodiscard]] const std::vector<std::uint64_t>& counts() const noexcept {
    return counts_;
  }

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace anonpath::stats
