#pragma once

#include <cstdint>
#include <vector>

namespace anonpath::stats {

/// Dense integer histogram over [0, size). Used to validate path-length
/// samplers against their analytic pmfs and to tabulate simulator traces.
class int_histogram {
 public:
  /// Creates `size` zero-initialized bins. Precondition: size > 0.
  explicit int_histogram(std::size_t size);

  /// Increments the bin for `value`. Precondition: value < size().
  void add(std::size_t value);

  [[nodiscard]] std::size_t size() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t count(std::size_t bin) const;
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  /// Empirical probability of a bin (0 when the histogram is empty).
  [[nodiscard]] double frequency(std::size_t bin) const;

  /// Empirical mean of the recorded values (0 when empty).
  [[nodiscard]] double mean() const noexcept;

  /// All counts, bin-indexed.
  [[nodiscard]] const std::vector<std::uint64_t>& counts() const noexcept {
    return counts_;
  }

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace anonpath::stats
