#include "src/stats/histogram.hpp"

#include "src/stats/contract.hpp"

namespace anonpath::stats {

int_histogram::int_histogram(std::size_t size) : counts_(size, 0) {
  ANONPATH_EXPECTS(size > 0);
}

void int_histogram::add(std::size_t value) {
  ANONPATH_EXPECTS(value < counts_.size());
  ++counts_[value];
  ++total_;
}

void int_histogram::add(std::size_t value, std::uint64_t n) {
  ANONPATH_EXPECTS(value < counts_.size());
  counts_[value] += n;
  total_ += n;
}

void int_histogram::merge(const int_histogram& other) {
  ANONPATH_EXPECTS(other.counts_.size() == counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i)
    counts_[i] += other.counts_[i];
  total_ += other.total_;
}

std::size_t int_histogram::quantile(double q) const {
  ANONPATH_EXPECTS(total_ > 0);
  ANONPATH_EXPECTS(q >= 0.0 && q <= 1.0);
  // Rank of the order statistic we want, clamped into [1, total].
  const double scaled = q * static_cast<double>(total_);
  std::uint64_t rank = static_cast<std::uint64_t>(scaled);
  if (static_cast<double>(rank) < scaled) ++rank;  // ceil without FP drift
  if (rank == 0) rank = 1;
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cumulative += counts_[i];
    if (cumulative >= rank) return i;
  }
  return counts_.size() - 1;  // unreachable: cumulative ends at total()
}

std::uint64_t int_histogram::count(std::size_t bin) const {
  ANONPATH_EXPECTS(bin < counts_.size());
  return counts_[bin];
}

double int_histogram::frequency(std::size_t bin) const {
  ANONPATH_EXPECTS(bin < counts_.size());
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_[bin]) / static_cast<double>(total_);
}

double int_histogram::mean() const noexcept {
  if (total_ == 0) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i)
    acc += static_cast<double>(i) * static_cast<double>(counts_[i]);
  return acc / static_cast<double>(total_);
}

}  // namespace anonpath::stats
