#include "src/stats/histogram.hpp"

#include "src/stats/contract.hpp"

namespace anonpath::stats {

int_histogram::int_histogram(std::size_t size) : counts_(size, 0) {
  ANONPATH_EXPECTS(size > 0);
}

void int_histogram::add(std::size_t value) {
  ANONPATH_EXPECTS(value < counts_.size());
  ++counts_[value];
  ++total_;
}

std::uint64_t int_histogram::count(std::size_t bin) const {
  ANONPATH_EXPECTS(bin < counts_.size());
  return counts_[bin];
}

double int_histogram::frequency(std::size_t bin) const {
  ANONPATH_EXPECTS(bin < counts_.size());
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_[bin]) / static_cast<double>(total_);
}

double int_histogram::mean() const noexcept {
  if (total_ == 0) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i)
    acc += static_cast<double>(i) * static_cast<double>(counts_[i]);
  return acc / static_cast<double>(total_);
}

}  // namespace anonpath::stats
