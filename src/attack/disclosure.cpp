#include "src/attack/disclosure.hpp"

#include <algorithm>
#include <cmath>

#include "src/anonymity/entropy.hpp"
#include "src/attack/intersection.hpp"
#include "src/attack/online.hpp"
#include "src/attack/sda.hpp"
#include "src/attack/sequential_bayes.hpp"
#include "src/stats/contract.hpp"

namespace anonpath::attack {

disclosure_attack::disclosure_attack(std::uint32_t receiver_count)
    : receiver_count_(receiver_count) {
  ANONPATH_EXPECTS(receiver_count >= 2);
}

const char* attack_kind_label(attack_kind kind) noexcept {
  switch (kind) {
    case attack_kind::none: return "none";
    case attack_kind::intersection: return "intersection";
    case attack_kind::sda: return "sda";
    case attack_kind::sequential_bayes: return "sequential_bayes";
  }
  return "unknown";
}

std::optional<attack_kind> parse_attack_kind(const std::string& label) {
  if (label == "none") return attack_kind::none;
  if (label == "intersection") return attack_kind::intersection;
  if (label == "sda") return attack_kind::sda;
  if (label == "sequential_bayes" || label == "bayes")
    return attack_kind::sequential_bayes;
  return std::nullopt;
}

std::unique_ptr<disclosure_attack> make_attack(
    attack_kind kind, std::uint32_t receiver_count,
    const sequential_bayes_config& bayes) {
  ANONPATH_EXPECTS(kind != attack_kind::none);
  switch (kind) {
    case attack_kind::intersection:
      return std::make_unique<intersection_attack>(receiver_count);
    case attack_kind::sda:
      return std::make_unique<sda_attack>(receiver_count);
    case attack_kind::sequential_bayes:
      return std::make_unique<sequential_bayes_attack>(receiver_count, bayes);
    case attack_kind::none: break;
  }
  ANONPATH_EXPECTS(false);
  return nullptr;
}

trajectory_point summarize_posterior(const std::vector<double>& posterior,
                                     std::uint32_t round,
                                     double identified_threshold) {
  ANONPATH_EXPECTS(!posterior.empty());
  trajectory_point pt;
  pt.round = round;
  pt.entropy_bits = entropy_bits(posterior);
  const auto top =
      std::max_element(posterior.begin(), posterior.end()) - posterior.begin();
  pt.top_receiver = static_cast<node_id>(top);
  pt.top_mass = posterior[static_cast<std::size_t>(top)];
  pt.identified = pt.top_mass > identified_threshold;
  return pt;
}

double estimated_membership_noise(const workload::population& pop,
                                  std::uint32_t pair_index) {
  ANONPATH_EXPECTS(pair_index < pop.pairs().size());
  const workload::population_config& cfg = pop.config();
  const double rate = cfg.persistent_rate;
  if (rate >= 1.0) return 0.0;
  // Expected background volume per round.
  const double background =
      cfg.mode == workload::round_mode::threshold
          ? static_cast<double>(cfg.round_size)
          : cfg.arrival_rate * cfg.round_interval;
  // The pair sender's per-draw popularity under the sender law.
  const double p_sender =
      workload::popularity_pmf(cfg.sender_law,
                               cfg.user_count)[pop.pairs()[pair_index].sender];
  // P(some background message this round is the target's), then Bayes:
  // P(pair did not emit | target in the sender multiset).
  const double coincidence = 1.0 - std::pow(1.0 - p_sender, background);
  const double present = rate + (1.0 - rate) * coincidence;
  const double noise =
      present > 0.0 ? (1.0 - rate) * coincidence / present : 0.0;
  // rate == 0 makes every marked round coincidental (noise exactly 1, a
  // degenerate "no persistent signal" workload); clamp inside the Bayes
  // config's [0, 1) domain so the engine stays constructible.
  return std::min(noise, 0.99);
}

attack_result run_workload_attack(const workload::population& pop,
                                  std::uint32_t pair_index,
                                  disclosure_attack& attack,
                                  double identified_threshold,
                                  std::uint32_t stride) {
  ANONPATH_EXPECTS(pair_index < pop.pairs().size());
  ANONPATH_EXPECTS(attack.receiver_count() == pop.config().receiver_count);
  const node_id target = pop.pairs()[pair_index].sender;
  const std::uint32_t rounds = pop.config().round_count;

  // The offline post-process IS the online session fed to the end of the
  // stream — one trajectory/identification implementation, so the
  // online == offline bit-identity holds by construction.
  online_attack online(attack, identified_threshold, stride);
  round_observation obs;
  for (std::uint32_t r = 0; r < rounds; ++r) {
    const workload::round_batch batch = pop.round(r);
    obs.target_present =
        std::find(batch.senders.begin(), batch.senders.end(), target) !=
        batch.senders.end();
    obs.receivers = batch.receivers;
    online.ingest(obs);
  }
  return online.result();
}

}  // namespace anonpath::attack
