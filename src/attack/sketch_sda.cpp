#include "src/attack/sketch_sda.hpp"

#include <algorithm>

#include "src/stats/contract.hpp"
#include "src/stats/kahan.hpp"

namespace anonpath::attack {

sketch_sda_attack::sketch_sda_attack(std::uint32_t receiver_count,
                                     workload::sketch_params params)
    : disclosure_attack(receiver_count),
      params_(params),
      global_(params.depth, params.width, params.salt),
      target_(params.depth, params.width, params.salt),
      candidates_(params.candidates, params.salt) {
  ANONPATH_EXPECTS(params.valid());
}

void sketch_sda_attack::observe_round(const round_observation& round) {
  // Stream position advances even for skipped rounds so the reservoir
  // priorities (pure functions of (round, slot)) line up with the sharded
  // accumulator's, which indexes by the batch's own round number.
  const std::uint64_t round_index = rounds_seen_++;
  if (round.receivers.empty()) return;
  for (node_id v : round.receivers) {
    ANONPATH_EXPECTS(v < receiver_count_);
    global_.add(v);
  }
  total_messages_ += round.receivers.size();
  if (!round.target_present) return;
  ++target_rounds_;
  target_messages_ += round.receivers.size();
  for (std::size_t j = 0; j < round.receivers.size(); ++j) {
    target_.add(round.receivers[j]);
    candidates_.offer(round.receivers[j],
                      workload::occurrence_priority(params_.salt, round_index,
                                                    j));
  }
}

std::vector<double> sketch_sda_attack::posterior() const {
  // Candidate-restricted sda_attack::signal(), then the exact engine's
  // normalization loop over the full population (zeros where no candidate)
  // so collision-free instances reproduce sda_attack bit-for-bit.
  std::vector<double> post(receiver_count_, 0.0);
  const std::uint64_t bm = total_messages_ - target_messages_;
  if (target_messages_ > 0) {
    const double mbar = static_cast<double>(target_messages_) /
                        static_cast<double>(target_rounds_);
    for (std::uint64_t key : candidates_.keys()) {
      const node_id v = static_cast<node_id>(key);
      const std::uint64_t tc = target_.estimate(v);
      const std::uint64_t gc = global_.estimate(v);
      // Both estimates overestimate independently, so clamp the implied
      // background complement into its feasible range instead of
      // underflowing — the same invariant from_counts enforces on
      // untrusted exact counts.
      const std::uint64_t bc = std::min(gc > tc ? gc - tc : 0, bm);
      const double p_target = static_cast<double>(tc) /
                              static_cast<double>(target_messages_);
      const double q = bm > 0 ? static_cast<double>(bc) /
                                    static_cast<double>(bm)
                              : 1.0 / static_cast<double>(receiver_count_);
      post[v] = mbar * p_target - (mbar - 1.0) * q;
    }
  }
  stats::kahan_sum z;
  for (double& p : post) {
    if (p < 0.0) p = 0.0;
    z.add(p);
  }
  if (target_messages_ == 0 || z.value() <= 0.0) {
    const double u = 1.0 / static_cast<double>(receiver_count_);
    for (double& p : post) p = u;
    return post;
  }
  for (double& p : post) p /= z.value();
  return post;
}

std::size_t sketch_sda_attack::memory_bytes() const noexcept {
  return sizeof(*this) + global_.memory_bytes() + target_.memory_bytes() +
         candidates_.memory_bytes();
}

std::vector<node_id> sketch_sda_attack::candidates() const {
  std::vector<node_id> out;
  for (std::uint64_t key : candidates_.keys())
    out.push_back(static_cast<node_id>(key));
  return out;
}

std::uint64_t sketch_sda_attack::estimate_target(node_id receiver) const {
  return target_.estimate(receiver);
}

std::uint64_t sketch_sda_attack::estimate_global(node_id receiver) const {
  return global_.estimate(receiver);
}

sketch_sda_attack sketch_sda_attack::from_accumulator(
    const workload::streaming_accumulator& acc, std::uint32_t pair_index,
    std::uint32_t receiver_count) {
  ANONPATH_EXPECTS(acc.config().backend == workload::stream_backend::sketch);
  ANONPATH_EXPECTS(pair_index < acc.pair_senders().size());
  sketch_sda_attack out(receiver_count, acc.config().sketch);
  out.global_ = acc.global_sketch();
  out.target_ = acc.target_sketch(pair_index);
  out.candidates_ = acc.candidate_sample(pair_index);
  out.rounds_seen_ = acc.rounds();
  out.target_rounds_ = acc.target_rounds(pair_index);
  out.target_messages_ = acc.target_messages(pair_index);
  out.total_messages_ = acc.messages();
  return out;
}

}  // namespace anonpath::attack
