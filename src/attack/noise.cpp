#include "src/attack/noise.hpp"

#include <algorithm>
#include <cmath>

namespace anonpath::attack {

double membership_noise_floor(double drop_probability,
                              std::uint32_t max_retries,
                              bool lossy_observation) noexcept {
  double loss = drop_probability;
  if (max_retries > 0 && loss > 0.0)
    loss = std::pow(loss, 1.0 + static_cast<double>(max_retries));
  return std::min(std::max(loss, lossy_observation ? 0.25 : 0.0), 0.9);
}

}  // namespace anonpath::attack
