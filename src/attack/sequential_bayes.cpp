#include "src/attack/sequential_bayes.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/stats/contract.hpp"
#include "src/stats/kahan.hpp"

namespace anonpath::attack {

namespace {
constexpr double neg_inf = -std::numeric_limits<double>::infinity();
}

sequential_bayes_attack::sequential_bayes_attack(
    std::uint32_t receiver_count, sequential_bayes_config config)
    : disclosure_attack(receiver_count),
      config_(std::move(config)),
      log_posterior_(receiver_count, 0.0),
      background_counts_(receiver_count, 0),
      scratch_weight_(receiver_count, 0.0),
      touched_flag_(receiver_count, 0) {
  ANONPATH_EXPECTS(config_.background_pmf.empty() ||
                   config_.background_pmf.size() == receiver_count);
  // Zero-rate receivers would divide the evidence ratio by zero and poison
  // the posterior with NaN; the documented contract is strictly positive
  // entries for any receiver that can appear.
  for (double q : config_.background_pmf) ANONPATH_EXPECTS(q > 0.0);
  ANONPATH_EXPECTS(config_.membership_noise >= 0.0 &&
                   config_.membership_noise < 1.0);
}

double sequential_bayes_attack::background_rate(std::uint32_t r) const {
  if (!config_.background_pmf.empty()) return config_.background_pmf[r];
  // Online Laplace estimate from non-target rounds: strictly positive even
  // for never-seen receivers, so evidence ratios stay finite.
  return (static_cast<double>(background_counts_[r]) + 1.0) /
         (static_cast<double>(background_messages_) +
          static_cast<double>(receiver_count_));
}

void sequential_bayes_attack::observe_round(const round_observation& round) {
  if (!round.target_present) {
    for (node_id v : round.receivers) {
      ANONPATH_EXPECTS(v < receiver_count_);
      ++background_counts_[v];
    }
    background_messages_ += round.receivers.size();
    return;
  }
  if (round.receivers.empty()) return;  // nothing delivered: no evidence
  ++target_rounds_;
  ANONPATH_EXPECTS(round.target_weight.empty() ||
                   round.target_weight.size() == round.receivers.size());

  // Per-receiver evidence mass Σ_j w_j [recv_j = r], sparse via the
  // touched list; uniform w_j = 1/m in crisp mode.
  const double uniform_w = 1.0 / static_cast<double>(round.receivers.size());
  stats::kahan_sum total_w;
  touched_.clear();
  for (std::size_t j = 0; j < round.receivers.size(); ++j) {
    const node_id v = round.receivers[j];
    ANONPATH_EXPECTS(v < receiver_count_);
    const double w =
        round.target_weight.empty() ? uniform_w : round.target_weight[j];
    ANONPATH_EXPECTS(w >= 0.0 && w <= 1.0);
    // Dedup by explicit flag, not by scratch == 0: a zero-weight delivery
    // leaves scratch at 0 and would re-push the receiver, double-applying
    // the round's likelihood ratio in the update loop below.
    if (touched_flag_[v] == 0) {
      touched_flag_[v] = 1;
      touched_.push_back(v);
    }
    scratch_weight_[v] += w;
    total_w.add(w);
  }
  // Residual mass for "the target's message is not among the deliveries"
  // (dropped, or unobserved by a lossy collector). Soft weights can
  // overshoot 1 when several messages look target-like; clamp. Crisp mode
  // is exactly zero by construction — the m * (1/m) float sum may land at
  // 1 - ulp, and a nonzero residual would break the documented
  // support-equals-intersection invariant for those round sizes.
  const double residual =
      round.target_weight.empty() ? 0.0
                                  : std::max(0.0, 1.0 - total_w.value());

  // Mixture over "this round's membership is genuine" (weight 1 - nu) vs
  // "coincidental or lossy" (weight nu, under which the receivers are pure
  // background and carry no partner evidence). nu = 0 keeps absence as
  // hard -inf evidence — the conformance-pinned exact behavior.
  //
  // Every receiver the round did not touch gets the identical evidence
  // c0 = (1-nu)*residual + nu. When c0 > 0 that is a common factor across
  // all live candidates, which cancels in the softmax — so only the
  // touched receivers need updating (by their log-ratio against c0), and
  // the round costs O(deliveries), not O(receiver population). Only the
  // annihilating case (c0 == 0, crisp lossless evidence) must visit the
  // untouched — and then only the still-live candidates, a set the first
  // such round shrinks to at most that round's receiver count.
  const double nu = config_.membership_noise;
  const double c0 = (1.0 - nu) * residual + nu;
  if (c0 > 0.0) {
    const double log_c0 = std::log(c0);
    for (std::uint32_t r : touched_) {
      if (log_posterior_[r] == neg_inf) continue;
      const double evidence =
          (1.0 - nu) * (scratch_weight_[r] / background_rate(r) + residual) +
          nu;
      log_posterior_[r] += std::log(evidence) - log_c0;
    }
  } else {
    if (!live_valid_) {
      // First annihilating round: enumerate the live set once.
      live_.clear();
      for (std::uint32_t r = 0; r < receiver_count_; ++r)
        if (log_posterior_[r] != neg_inf) live_.push_back(r);
      live_valid_ = true;
    }
    next_live_.clear();
    next_live_.reserve(touched_.size());
    for (std::uint32_t r : live_) {
      const double evidence =
          (1.0 - nu) * scratch_weight_[r] / background_rate(r);
      if (evidence > 0.0) {
        log_posterior_[r] += std::log(evidence);
        next_live_.push_back(r);
      } else {
        log_posterior_[r] = neg_inf;
      }
    }
    live_.swap(next_live_);
  }
  for (std::uint32_t v : touched_) {
    scratch_weight_[v] = 0.0;
    touched_flag_[v] = 0;
  }
}

std::vector<double> sequential_bayes_attack::posterior() const {
  const double hi =
      *std::max_element(log_posterior_.begin(), log_posterior_.end());
  std::vector<double> post(receiver_count_, 0.0);
  if (target_rounds_ == 0 || hi == neg_inf) {
    const double u = 1.0 / static_cast<double>(receiver_count_);
    for (double& p : post) p = u;
    return post;
  }
  stats::kahan_sum z;
  for (std::uint32_t r = 0; r < receiver_count_; ++r) {
    post[r] = std::exp(log_posterior_[r] - hi);
    z.add(post[r]);
  }
  for (double& p : post) p /= z.value();
  return post;
}

}  // namespace anonpath::attack
