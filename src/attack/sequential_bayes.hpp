#pragma once

#include <cstdint>
#include <vector>

#include "src/attack/disclosure.hpp"

namespace anonpath::attack {

/// Sequential Bayesian disclosure: maintains a log-posterior over candidate
/// partners and multiplies in one likelihood factor per target round.
/// Marginalizing over which of the round's m messages is the target's,
///
///   Pr(round | partner = r) ∝ Σ_j w_j·[recv_j = r] / q(r) + (1 − Σ_j w_j)
///
/// with w_j = Pr(message j is the target's) and q the background receiver
/// law. Crisp membership (w_j = 1/m) recovers the classic count/q ratio —
/// and a receiver absent from a target round gets factor 0, so on lossless
/// data the support equals the intersection attack's candidate set exactly
/// (the conformance pin). Soft w from the per-message posterior_engine /
/// topology_posterior_engine is the fusion path: rerouting-layer evidence
/// reweights the round-membership evidence, and the residual 1 − Σw keeps a
/// round survivable when the target's message may not have been observed.
class sequential_bayes_attack final : public disclosure_attack {
 public:
  /// With an empty config.background_pmf, q is learned online from
  /// non-target rounds (Laplace-smoothed); otherwise the supplied pmf is
  /// used as-is (size must equal receiver_count, entries > 0 required for
  /// any receiver that can appear).
  sequential_bayes_attack(std::uint32_t receiver_count,
                          sequential_bayes_config config = {});

  void observe_round(const round_observation& round) override;

  /// Softmax of the accumulated log-posterior; uniform before any target
  /// round, and uniform again if every candidate has been annihilated
  /// (possible only on inconsistent/lossy data, mirroring
  /// intersection_attack::consistent()).
  [[nodiscard]] std::vector<double> posterior() const override;

  [[nodiscard]] attack_kind kind() const noexcept override {
    return attack_kind::sequential_bayes;
  }

  [[nodiscard]] std::uint64_t target_rounds() const noexcept {
    return target_rounds_;
  }

  [[nodiscard]] std::size_t memory_bytes() const noexcept override {
    return sizeof(*this) +
           (config_.background_pmf.capacity() + log_posterior_.capacity() +
            scratch_weight_.capacity()) *
               sizeof(double) +
           background_counts_.capacity() * sizeof(std::uint64_t) +
           (touched_.capacity() + live_.capacity() + next_live_.capacity()) *
               sizeof(std::uint32_t) +
           touched_flag_.capacity();
  }

 private:
  /// Background rate q̂(r), from the configured pmf or the online counts.
  [[nodiscard]] double background_rate(std::uint32_t r) const;

  sequential_bayes_config config_;
  std::vector<double> log_posterior_;        // unnormalized, uniform prior
  std::vector<std::uint64_t> background_counts_;
  std::uint64_t background_messages_ = 0;
  std::uint64_t target_rounds_ = 0;
  std::vector<double> scratch_weight_;       // per-receiver Σ w_j [recv_j = r]
  std::vector<std::uint32_t> touched_;       // receivers hit this round, unique
  std::vector<char> touched_flag_;           // membership flags for touched_
  /// Candidates not yet annihilated, maintained from the first hard
  /// (zero-common-evidence) round on so later rounds cost O(live), not
  /// O(receiver population). Invalid (and unused) until then. next_live_
  /// is the double-buffer the survivors compact into — kept as a member so
  /// a long campaign of annihilating rounds allocates twice, not per round.
  std::vector<std::uint32_t> live_;
  std::vector<std::uint32_t> next_live_;
  bool live_valid_ = false;
};

}  // namespace anonpath::attack
