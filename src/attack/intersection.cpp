#include "src/attack/intersection.hpp"

#include <algorithm>
#include <bit>

#include "src/stats/contract.hpp"

namespace anonpath::attack {

intersection_attack::intersection_attack(std::uint32_t receiver_count)
    : disclosure_attack(receiver_count) {}

void intersection_attack::observe_round(const round_observation& round) {
  if (!round.target_present) return;  // background rounds carry no set evidence
  // A target round with zero deliveries is loss, not contradiction: the
  // partner's message was dropped along with everything else, so the round
  // carries no set evidence (mirrors sequential_bayes's empty-round skip).
  if (round.receivers.empty()) return;
  ++target_rounds_;
  if (!consistent_) return;
  std::vector<node_id> seen(round.receivers);
  std::sort(seen.begin(), seen.end());
  seen.erase(std::unique(seen.begin(), seen.end()), seen.end());
  ANONPATH_EXPECTS(seen.empty() || seen.back() < receiver_count_);
  if (target_rounds_ == 1) {
    candidates_ = std::move(seen);
  } else {
    std::vector<node_id> next;
    std::set_intersection(candidates_.begin(), candidates_.end(),
                          seen.begin(), seen.end(), std::back_inserter(next));
    candidates_ = std::move(next);
  }
  if (candidates_.empty()) consistent_ = false;
}

std::vector<double> intersection_attack::posterior() const {
  std::vector<double> post(receiver_count_, 0.0);
  if (target_rounds_ == 0 || !consistent_) {
    const double u = 1.0 / static_cast<double>(receiver_count_);
    for (double& p : post) p = u;
    return post;
  }
  const double u = 1.0 / static_cast<double>(candidates_.size());
  for (node_id c : candidates_) post[c] = u;
  return post;
}

std::vector<node_id> intersection_attack::candidates() const {
  if (target_rounds_ == 0 || !consistent_) {
    std::vector<node_id> all(receiver_count_);
    for (std::uint32_t i = 0; i < receiver_count_; ++i) all[i] = i;
    return all;
  }
  return candidates_;
}

std::vector<std::vector<node_id>> minimum_hitting_sets(
    const std::vector<std::vector<node_id>>& family, std::uint32_t universe) {
  ANONPATH_EXPECTS(universe >= 1 && universe <= 20);
  ANONPATH_EXPECTS(!family.empty());
  std::vector<std::uint32_t> masks;
  masks.reserve(family.size());
  for (const auto& set : family) {
    ANONPATH_EXPECTS(!set.empty());
    std::uint32_t m = 0;
    for (node_id v : set) {
      ANONPATH_EXPECTS(v < universe);
      m |= 1u << v;
    }
    masks.push_back(m);
  }

  std::vector<std::vector<node_id>> best;
  std::uint32_t best_size = universe + 1;
  const std::uint32_t limit = 1u << universe;
  for (std::uint32_t cand = 1; cand < limit; ++cand) {
    const auto size = static_cast<std::uint32_t>(std::popcount(cand));
    if (size > best_size) continue;
    bool hits = true;
    for (std::uint32_t m : masks) {
      if ((m & cand) == 0) {
        hits = false;
        break;
      }
    }
    if (!hits) continue;
    if (size < best_size) {
      best_size = size;
      best.clear();
    }
    std::vector<node_id> set;
    for (std::uint32_t v = 0; v < universe; ++v)
      if ((cand >> v) & 1u) set.push_back(v);
    best.push_back(std::move(set));
  }
  // Mask enumeration order is not lexicographic on the id lists (it sorts
  // low bit first); sort to the documented order.
  std::sort(best.begin(), best.end());
  return best;
}

}  // namespace anonpath::attack
