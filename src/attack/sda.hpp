#pragma once

#include <cstdint>
#include <vector>

#include "src/attack/disclosure.hpp"
#include "src/workload/cooccurrence.hpp"

namespace anonpath::attack {

/// The statistical disclosure attack (Danezis's refinement of the
/// Kesdogan–Agrawal disclosure attack): in a target round of m messages one
/// is the target's and m-1 are background, so the expected receiver
/// frequency is (1/m) * delta_partner + ((m-1)/m) * q with q the background
/// law. Estimating q from non-target rounds and subtracting recovers the
/// target's sending distribution — no combinatorial search, so it scales to
/// populations where the exact attack cannot run, at the price of being a
/// statistical estimate with a confidence, not a proof.
class sda_attack final : public disclosure_attack {
 public:
  explicit sda_attack(std::uint32_t receiver_count);

  /// Crisp membership counting (soft weights are the sequential_bayes
  /// refinement; the classic SDA is defined on membership data).
  void observe_round(const round_observation& round) override;

  /// Normalized positive part of signal(); uniform while no target round
  /// (or no positive signal) has been seen.
  [[nodiscard]] std::vector<double> posterior() const override;

  [[nodiscard]] attack_kind kind() const noexcept override {
    return attack_kind::sda;
  }

  /// Background-subtracted estimate of the target's sending pmf:
  /// m̄·p̂_target − (m̄−1)·q̂ per receiver (may be negative — noise).
  [[nodiscard]] std::vector<double> signal() const;

  /// Per-receiver z-score of the target-round count against the
  /// background-only null (normal approximation with Laplace-smoothed q̂) —
  /// the attack's confidence output. ~N(0,1) for non-partners; grows as
  /// sqrt(target rounds) for the true partner.
  [[nodiscard]] std::vector<double> confidence() const;

  [[nodiscard]] std::uint64_t target_rounds() const noexcept {
    return target_rounds_;
  }

  [[nodiscard]] std::size_t memory_bytes() const noexcept override {
    return sizeof(*this) + (target_counts_.capacity() +
                            background_counts_.capacity()) *
                               sizeof(std::uint64_t);
  }

  /// Seeds an attack from a sharded population accumulation — identical
  /// state to streaming the same rounds through observe_round (the
  /// accumulator's membership rule is the same), so population-scale counts
  /// can be gathered in parallel and scored here. `totals` is treated as
  /// untrusted (merged / replayed / deserialized counts): rows out of the
  /// declared receiver population, non-ascending rows, target counts
  /// exceeding their global complement, target rounds/messages exceeding
  /// the totals, and target messages with zero target rounds all throw
  /// parse_error (source "cooccurrence") instead of underflowing or
  /// dividing by zero downstream. Precondition (trusted caller input):
  /// pair_index < totals.per_pair.size().
  [[nodiscard]] static sda_attack from_counts(
      const workload::cooccurrence_result& totals, std::uint32_t pair_index,
      std::uint32_t receiver_count);

 private:
  std::vector<std::uint64_t> target_counts_;      // per receiver, target rounds
  std::vector<std::uint64_t> background_counts_;  // per receiver, other rounds
  std::uint64_t target_rounds_ = 0;
  std::uint64_t target_messages_ = 0;
  std::uint64_t background_rounds_ = 0;
  std::uint64_t background_messages_ = 0;
};

}  // namespace anonpath::attack
