#pragma once

#include <cstdint>

namespace anonpath::attack {

/// Noise floor for the sequential-Bayes membership update under message
/// loss: the probability that a target-present round shows no partner
/// evidence for benign reasons, so one such round cannot irreversibly
/// annihilate the true partner. Two loss channels feed it:
///
///   * the fabric drops transmissions with `drop_probability`; a sender
///     retrying up to `max_retries` times only loses a message when every
///     attempt is lost, so the surviving loss term is
///     drop_probability^(1 + max_retries);
///   * a non-coalition observer (`lossy_observation`) misses or mislinks
///     delivered messages — a coarse 0.25 stand-in, as the true rate
///     depends on the realized corrupted set per path.
///
/// The result is clamped to [0, 0.9]: a floor of 1 would make rounds
/// carry no evidence at all. With retries disabled this reduces exactly
/// to the historical max(drop, lossy ? 0.25 : 0) formula.
[[nodiscard]] double membership_noise_floor(double drop_probability,
                                            std::uint32_t max_retries,
                                            bool lossy_observation) noexcept;

}  // namespace anonpath::attack
