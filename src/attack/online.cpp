#include "src/attack/online.hpp"

#include "src/attack/sketch_sda.hpp"
#include "src/stats/contract.hpp"

namespace anonpath::attack {

std::unique_ptr<disclosure_attack> make_online_engine(
    std::uint32_t receiver_count, const online_config& cfg) {
  ANONPATH_EXPECTS(cfg.valid());
  if (cfg.backend == workload::stream_backend::sketch)
    return std::make_unique<sketch_sda_attack>(receiver_count, cfg.sketch);
  return make_attack(cfg.kind, receiver_count, cfg.bayes);
}

online_attack::online_attack(std::uint32_t receiver_count, online_config cfg)
    : owned_(make_online_engine(receiver_count, cfg)),
      engine_(owned_.get()),
      identified_threshold_(cfg.identified_threshold),
      stride_(cfg.stride) {}

online_attack::online_attack(disclosure_attack& engine,
                             double identified_threshold, std::uint32_t stride)
    : engine_(&engine),
      identified_threshold_(identified_threshold),
      stride_(stride) {
  ANONPATH_EXPECTS(stride >= 1);
  ANONPATH_EXPECTS(identified_threshold > 0.0 && identified_threshold < 1.0);
}

void online_attack::ingest(const round_observation& obs) {
  engine_->observe_round(obs);
  ++rounds_;
  if (rounds_ % stride_ == 0) {
    const trajectory_point pt = snapshot();
    if (pt.identified && !identified_round_) identified_round_ = pt.round;
    trajectory_.push_back(pt);
  }
}

trajectory_point online_attack::snapshot() const {
  return summarize_posterior(engine_->posterior(), rounds_,
                             identified_threshold_);
}

attack_result online_attack::result() const {
  attack_result res;
  res.rounds = rounds_;
  res.trajectory = trajectory_;
  res.identified_round = identified_round_;
  // The offline runners always close the trajectory at the last round; an
  // online session closes it at the *current* round (including round 0 for
  // an empty stream, where the posterior is the uniform prior).
  if (rounds_ % stride_ != 0 || rounds_ == 0) {
    const trajectory_point pt = snapshot();
    if (pt.identified && !res.identified_round)
      res.identified_round = pt.round;
    res.trajectory.push_back(pt);
  }
  res.final_posterior = engine_->posterior();
  const trajectory_point& last = res.trajectory.back();
  res.top_receiver = last.top_receiver;
  res.top_mass = last.top_mass;
  res.entropy_bits = last.entropy_bits;
  return res;
}

}  // namespace anonpath::attack
