#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "src/attack/disclosure.hpp"
#include "src/workload/streaming.hpp"

namespace anonpath::attack {

/// Configuration of an owning online_attack session.
struct online_config {
  attack_kind kind = attack_kind::sda;
  /// Engine state backend. `sketch` is available for the counting attack
  /// (sda) only — intersection and sequential_bayes keep per-candidate
  /// state a sketch cannot represent.
  workload::stream_backend backend = workload::stream_backend::exact;
  workload::sketch_params sketch{};          ///< sketch backend only
  sequential_bayes_config bayes{};           ///< sequential_bayes only
  double identified_threshold = 0.99;        ///< in (0, 1)
  std::uint32_t stride = 1;                  ///< trajectory sampling stride

  [[nodiscard]] bool valid() const noexcept {
    return kind != attack_kind::none && stride >= 1 &&
           identified_threshold > 0.0 && identified_threshold < 1.0 &&
           sketch.valid() &&
           (backend == workload::stream_backend::exact ||
            kind == attack_kind::sda);
  }
};

/// An online inference session: rounds are ingested as they arrive and the
/// posterior / trajectory can be queried at any stream position — no
/// finished run required. The offline post-processors
/// (run_workload_attack, the simulator's session scoring) are implemented
/// on this type, so "online equals offline" holds by construction: feeding
/// the same observation stream yields bit-identical posteriors and
/// trajectories.
class online_attack {
 public:
  /// Owning session: builds its own engine from `cfg`.
  /// Preconditions: receiver_count >= 2; cfg.valid().
  online_attack(std::uint32_t receiver_count, online_config cfg);

  /// Non-owning session over a caller-supplied engine (the offline
  /// runners' path). Preconditions: stride >= 1; threshold in (0, 1).
  online_attack(disclosure_attack& engine, double identified_threshold,
                std::uint32_t stride = 1);

  /// Consumes the next round of the stream. Samples a trajectory point
  /// every `stride` rounds.
  void ingest(const round_observation& obs);

  [[nodiscard]] std::uint32_t rounds_ingested() const noexcept {
    return rounds_;
  }

  /// Posterior snapshot at the current stream position.
  [[nodiscard]] std::vector<double> posterior() const {
    return engine_->posterior();
  }

  /// Trajectory-point snapshot at the current stream position (computed on
  /// demand; rounds_ingested() == 0 summarizes the uniform prior).
  [[nodiscard]] trajectory_point snapshot() const;

  /// Stride-sampled trajectory so far.
  [[nodiscard]] const std::vector<trajectory_point>& trajectory()
      const noexcept {
    return trajectory_;
  }

  /// First sampled round whose top mass crossed the threshold.
  [[nodiscard]] std::optional<std::uint32_t> identified_round()
      const noexcept {
    return identified_round_;
  }

  /// The completed-run view at the current position: the stride-sampled
  /// trajectory (always including a final point at the current round, even
  /// for an empty stream), final posterior, and summary fields — exactly
  /// what the offline post-process returns on the same stream.
  [[nodiscard]] attack_result result() const;

  [[nodiscard]] const disclosure_attack& engine() const noexcept {
    return *engine_;
  }

  /// Resident engine state (the trajectory buffer excluded).
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return engine_->memory_bytes();
  }

 private:
  std::unique_ptr<disclosure_attack> owned_;  ///< null in non-owning mode
  disclosure_attack* engine_;
  double identified_threshold_;
  std::uint32_t stride_;
  std::uint32_t rounds_ = 0;
  std::vector<trajectory_point> trajectory_;
  std::optional<std::uint32_t> identified_round_;
};

/// Engine factory over (kind, backend): the online analogue of
/// make_attack, returning sketch_sda_attack for (sda, sketch).
/// Preconditions: cfg.valid(); receiver_count >= 2.
[[nodiscard]] std::unique_ptr<disclosure_attack> make_online_engine(
    std::uint32_t receiver_count, const online_config& cfg);

}  // namespace anonpath::attack
