#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/anonymity/types.hpp"
#include "src/workload/population.hpp"

namespace anonpath::attack {

/// Longitudinal disclosure attacks: a persistent sender ("the target") keeps
/// re-communicating with the same receiver across mix rounds; each round the
/// adversary learns only *membership* — who submitted into the batch and
/// which receivers got messages, never the bijection. That is provably
/// enough: the target's partner is in every round she participates in, so
/// set intersection (exact), receiver-frequency subtraction (statistical
/// disclosure), and sequential Bayesian fusion all converge on the partner
/// as rounds accumulate. Mirrors the sim::adversary_model pattern: one
/// virtual family, concrete subclasses per inference style.

enum class attack_kind : std::uint8_t {
  none,              ///< placeholder for "no longitudinal attack" axes
  intersection,      ///< exact candidate-set intersection (hitting set k=1)
  sda,               ///< statistical disclosure (background subtraction)
  sequential_bayes,  ///< per-round Bayesian evidence fusion
};

/// Stable short label ("none", "intersection", "sda", "sequential_bayes").
[[nodiscard]] const char* attack_kind_label(attack_kind kind) noexcept;

/// Parses a label (or the CLI alias "bayes"); nullopt on unknown input.
[[nodiscard]] std::optional<attack_kind> parse_attack_kind(
    const std::string& label);

/// One mix round as the adversary sees it.
struct round_observation {
  /// True iff the target appears in the round's sender multiset (mix input
  /// membership is public in a batching mix).
  bool target_present = false;
  /// Receiver of every message delivered this round (multiset; order
  /// carries no information).
  std::vector<node_id> receivers;
  /// Optional soft sender evidence, parallel to `receivers`:
  /// target_weight[j] = Pr(message j originates from the target), as scored
  /// by a per-message inference engine (posterior_engine /
  /// topology_posterior_engine) on the rerouting layer under the mix. Empty
  /// means crisp membership: each of the m messages is the target's with
  /// probability 1/m when target_present. This is the fusion seam between
  /// the repo's per-message posteriors and the longitudinal evidence.
  std::vector<double> target_weight;
};

/// The family interface. Implementations consume rounds one at a time
/// (streaming — population-scale runs never hold more than one round) and
/// expose a posterior over the receiver population for "is r the target's
/// persistent partner".
class disclosure_attack {
 public:
  explicit disclosure_attack(std::uint32_t receiver_count);
  virtual ~disclosure_attack() = default;

  /// Consumes one round. Rounds without the target still carry information
  /// (they calibrate the background) and must be fed too, in round order.
  /// Precondition: receiver ids < receiver_count(); target_weight empty or
  /// sized like receivers with entries in [0, 1].
  virtual void observe_round(const round_observation& round) = 0;

  /// Current posterior over the receiver population; normalized, uniform
  /// before any evidence arrives.
  [[nodiscard]] virtual std::vector<double> posterior() const = 0;

  [[nodiscard]] virtual attack_kind kind() const noexcept = 0;

  /// Approximate resident engine state, for the memory accounting of
  /// streaming runs: exact engines grow with the receiver population,
  /// sketch-backed engines stay sublinear.
  [[nodiscard]] virtual std::size_t memory_bytes() const noexcept {
    return sizeof(*this);
  }

  [[nodiscard]] std::uint32_t receiver_count() const noexcept {
    return receiver_count_;
  }

 protected:
  std::uint32_t receiver_count_;
};

/// One point of an attack's per-round trajectory.
struct trajectory_point {
  std::uint32_t round = 0;      ///< rounds consumed when sampled (1-based)
  double entropy_bits = 0.0;    ///< H(posterior)
  double top_mass = 0.0;        ///< max posterior entry
  node_id top_receiver = 0;     ///< argmax (smallest id on ties)
  bool identified = false;      ///< top_mass > identified_threshold
};

/// A completed longitudinal run: the entropy/identified trajectory plus the
/// final state. `identified_round` is the first sampled round whose top
/// mass exceeded the threshold (nullopt if never).
struct attack_result {
  std::vector<trajectory_point> trajectory;
  std::vector<double> final_posterior;
  std::uint32_t rounds = 0;
  std::optional<std::uint32_t> identified_round;
  node_id top_receiver = 0;
  double top_mass = 0.0;
  double entropy_bits = 0.0;
};

/// Configuration for sequential_bayes (ignored by the other kinds).
struct sequential_bayes_config {
  /// Known background receiver pmf (size = receiver population). Empty =
  /// learn it online from non-target rounds with Laplace smoothing.
  std::vector<double> background_pmf;
  /// Probability that a target-present round carries no partner delivery:
  /// membership was coincidental (a background send from the same user) or
  /// the target's message was lost before delivery. 0 (the default) makes
  /// absence hard evidence — maximal sharpness, and the exact
  /// support-equals-intersection conformance contract — but one
  /// mis-attributed round then annihilates the true partner irreversibly.
  /// Any positive value turns that -inf into a log(noise) penalty the
  /// partner recovers from as clean rounds accumulate. Must be in [0, 1).
  double membership_noise = 0.0;
};

/// Factory over the family. Precondition: kind != none; receiver_count >= 2.
[[nodiscard]] std::unique_ptr<disclosure_attack> make_attack(
    attack_kind kind, std::uint32_t receiver_count,
    const sequential_bayes_config& bayes = {});

/// Summarizes a posterior into a trajectory point (shared by the runners
/// and the simulator integration).
[[nodiscard]] trajectory_point summarize_posterior(
    const std::vector<double>& posterior, std::uint32_t round,
    double identified_threshold);

/// Streams every round of `pop` into `attack`, tracking persistent pair
/// `pair_index`, with a trajectory point every `stride` rounds (and always
/// at the last round). Crisp membership (no per-message weights — the mix
/// rounds themselves are the evidence). Preconditions: pair_index <
/// pop.pairs().size(); attack.receiver_count() == pop receiver_count;
/// stride >= 1; threshold in (0, 1).
[[nodiscard]] attack_result run_workload_attack(
    const workload::population& pop, std::uint32_t pair_index,
    disclosure_attack& attack, double identified_threshold,
    std::uint32_t stride = 1);

/// The principled membership_noise for a workload pair: the probability
/// that a round marked target-present is actually a coincidental
/// background send (the pair did not emit), from the configured send rate,
/// the pair sender's popularity under the sender law, and the expected
/// background volume per round. Exactly 0 at persistent_rate == 1 (every
/// marked round really contains the partner), so default-rate workloads
/// keep the sharp conformance behavior. Precondition: pair_index <
/// pop.pairs().size().
[[nodiscard]] double estimated_membership_noise(
    const workload::population& pop, std::uint32_t pair_index);

}  // namespace anonpath::attack
