#pragma once

#include <cstdint>
#include <vector>

#include "src/attack/disclosure.hpp"
#include "src/workload/sketch.hpp"
#include "src/workload/streaming.hpp"

namespace anonpath::attack {

/// The statistical disclosure attack on sketched counts: identical
/// background-subtraction math to sda_attack, but the per-receiver counts
/// live in two count-min sketches (all deliveries; target-round deliveries)
/// and the scoring is restricted to a weighted bottom-k candidate reservoir
/// of target-round receivers — so resident state is
/// O(depth*width + candidates), independent of the receiver population.
///
/// Conformance contract: on instances where the sketches are collision-free
/// and the reservoir is unsaturated, posterior() is bit-identical to
/// sda_attack on the same stream (the normalization replays the exact
/// engine's loop shape). In general, estimates never underestimate the true
/// counts and overestimate by more than error_bound() with probability at
/// most 2^-depth per key.
class sketch_sda_attack final : public disclosure_attack {
 public:
  /// Preconditions: receiver_count >= 2; params.valid().
  sketch_sda_attack(std::uint32_t receiver_count,
                    workload::sketch_params params = {});

  /// Crisp membership counting, mirroring sda_attack: zero deliveries is
  /// loss, not evidence (but still advances the stream position that the
  /// reservoir priorities hash, so online ingestion and the sharded
  /// accumulator draw identical priorities for identical deliveries).
  void observe_round(const round_observation& round) override;

  /// Normalized positive part of the candidate-restricted signal; uniform
  /// while no target round (or no positive signal) has been seen.
  [[nodiscard]] std::vector<double> posterior() const override;

  [[nodiscard]] attack_kind kind() const noexcept override {
    return attack_kind::sda;
  }

  [[nodiscard]] std::size_t memory_bytes() const noexcept override;

  /// Candidate receivers currently retained, ascending.
  [[nodiscard]] std::vector<node_id> candidates() const;

  /// True once the reservoir dropped a distinct target-round receiver.
  [[nodiscard]] bool candidates_saturated() const noexcept {
    return candidates_.saturated();
  }

  /// Count-min point estimates (never below the true count).
  [[nodiscard]] std::uint64_t estimate_target(node_id receiver) const;
  [[nodiscard]] std::uint64_t estimate_global(node_id receiver) const;

  /// Per-key overestimate bound for estimate_global (the larger of the two
  /// sketches' bounds; estimate_target's own bound is tighter).
  [[nodiscard]] std::uint64_t error_bound() const noexcept {
    return global_.error_bound();
  }

  [[nodiscard]] std::uint64_t target_rounds() const noexcept {
    return target_rounds_;
  }
  /// Reservoir displacements so far — ingest-order-dependent telemetry
  /// (see workload::bottom_k_sample::evictions); feeds the obs layer only,
  /// never a correctness contract.
  [[nodiscard]] std::uint64_t reservoir_evictions() const noexcept {
    return candidates_.evictions();
  }

  /// Non-zero cells across both count-min sketches — the occupancy gauge
  /// (order- and shard-invariant, unlike the eviction count).
  [[nodiscard]] std::uint64_t occupied_cells() const noexcept {
    return global_.occupied_cells() + target_.occupied_cells();
  }

  [[nodiscard]] const workload::sketch_params& params() const noexcept {
    return params_;
  }

  /// Seeds an attack from a sketch-backend streaming accumulation: the
  /// sketches are copied cell-for-cell, so the result is bit-identical to
  /// streaming the same rounds through observe_round in round order — the
  /// sketch analogue of sda_attack::from_counts, enabling parallel sharded
  /// gathering at population scale. Preconditions: acc uses the sketch
  /// backend; pair_index < acc.pair_senders().size().
  [[nodiscard]] static sketch_sda_attack from_accumulator(
      const workload::streaming_accumulator& acc, std::uint32_t pair_index,
      std::uint32_t receiver_count);

 private:
  workload::sketch_params params_;
  workload::count_min_sketch global_;  ///< every delivery, all rounds
  workload::count_min_sketch target_;  ///< deliveries in target rounds
  workload::bottom_k_sample candidates_;
  std::uint64_t rounds_seen_ = 0;  ///< stream position (incl. empty rounds)
  std::uint64_t target_rounds_ = 0;
  std::uint64_t target_messages_ = 0;
  std::uint64_t total_messages_ = 0;
};

}  // namespace anonpath::attack
