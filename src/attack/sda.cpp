#include "src/attack/sda.hpp"

#include <cmath>
#include <string>

#include "src/stats/contract.hpp"
#include "src/stats/error.hpp"
#include "src/stats/kahan.hpp"

namespace anonpath::attack {

sda_attack::sda_attack(std::uint32_t receiver_count)
    : disclosure_attack(receiver_count),
      target_counts_(receiver_count, 0),
      background_counts_(receiver_count, 0) {}

void sda_attack::observe_round(const round_observation& round) {
  // Zero deliveries is loss, not evidence (family-wide rule, see
  // intersection_attack): counting such a round would dilute the mean
  // batch size m-bar that the background subtraction scales by.
  if (round.receivers.empty()) return;
  auto& counts = round.target_present ? target_counts_ : background_counts_;
  for (node_id v : round.receivers) {
    ANONPATH_EXPECTS(v < receiver_count_);
    ++counts[v];
  }
  if (round.target_present) {
    ++target_rounds_;
    target_messages_ += round.receivers.size();
  } else {
    ++background_rounds_;
    background_messages_ += round.receivers.size();
  }
}

std::vector<double> sda_attack::signal() const {
  std::vector<double> out(receiver_count_, 0.0);
  if (target_messages_ == 0) return out;
  const double mbar = static_cast<double>(target_messages_) /
                      static_cast<double>(target_rounds_);
  for (std::uint32_t r = 0; r < receiver_count_; ++r) {
    const double p_target = static_cast<double>(target_counts_[r]) /
                            static_cast<double>(target_messages_);
    // No background rounds yet: fall back to the uniform prior for q̂ (the
    // subtraction then just recenters; evidence still ranks receivers).
    const double q = background_messages_ > 0
                         ? static_cast<double>(background_counts_[r]) /
                               static_cast<double>(background_messages_)
                         : 1.0 / static_cast<double>(receiver_count_);
    out[r] = mbar * p_target - (mbar - 1.0) * q;
  }
  return out;
}

std::vector<double> sda_attack::confidence() const {
  std::vector<double> out(receiver_count_, 0.0);
  if (target_messages_ == 0) return out;
  const double n = static_cast<double>(target_messages_);
  for (std::uint32_t r = 0; r < receiver_count_; ++r) {
    // Laplace-smoothed background rate keeps the null variance positive for
    // receivers the background never touched.
    const double q = (static_cast<double>(background_counts_[r]) + 1.0) /
                     (static_cast<double>(background_messages_) +
                      static_cast<double>(receiver_count_));
    const double expected = n * q;
    // The smoothed q can still round to exactly 1.0 when the background is
    // fully concentrated on r at huge counts; the null then has zero
    // variance and no z-score is defined. Degenerate evidence, not NaN: a
    // receiver the null predicts with certainty carries no surprise.
    const double variance = n * q * (1.0 - q);
    out[r] = variance > 0.0
                 ? (static_cast<double>(target_counts_[r]) - expected) /
                       std::sqrt(variance)
                 : 0.0;
  }
  return out;
}

std::vector<double> sda_attack::posterior() const {
  std::vector<double> post = signal();
  stats::kahan_sum z;
  for (double& p : post) {
    if (p < 0.0) p = 0.0;
    z.add(p);
  }
  if (target_messages_ == 0 || z.value() <= 0.0) {
    const double u = 1.0 / static_cast<double>(receiver_count_);
    for (double& p : post) p = u;
    return post;
  }
  for (double& p : post) p /= z.value();
  return post;
}

namespace {

[[noreturn]] void reject_counts(parse_error_kind kind,
                                const std::string& detail) {
  throw parse_error(kind, "cooccurrence", detail);
}

/// Rejects a sparse count row that is not strictly ascending by receiver or
/// that names a receiver outside the declared population.
void check_rows(const workload::receiver_counts& rows,
                std::uint32_t receiver_count, const char* what) {
  const workload::receiver_counts::value_type* prev = nullptr;
  for (const auto& row : rows) {
    if (row.first >= receiver_count)
      reject_counts(parse_error_kind::out_of_range,
                    std::string(what) + " receiver id " +
                        std::to_string(row.first) +
                        " >= receiver population " +
                        std::to_string(receiver_count));
    if (prev != nullptr && prev->first >= row.first)
      reject_counts(parse_error_kind::malformed,
                    std::string(what) +
                        " receiver counts not strictly ascending at id " +
                        std::to_string(row.first));
    prev = &row;
  }
}

}  // namespace

sda_attack sda_attack::from_counts(const workload::cooccurrence_result& totals,
                                   std::uint32_t pair_index,
                                   std::uint32_t receiver_count) {
  ANONPATH_EXPECTS(pair_index < totals.per_pair.size());
  const workload::pair_counts& pc = totals.per_pair[pair_index];
  // `totals` is untrusted — it may be merged, replayed, or deserialized from
  // a corrupt shard — so every complement computed below is validated before
  // the unsigned subtraction that would otherwise underflow, and the
  // m-bar = target_messages / target_rounds divisor is pinned non-zero.
  check_rows(totals.global_receiver_counts, receiver_count, "global");
  check_rows(pc.target_receiver_counts, receiver_count, "target");
  if (pc.target_rounds > totals.rounds)
    reject_counts(parse_error_kind::mismatch,
                  "target rounds " + std::to_string(pc.target_rounds) +
                      " exceed total rounds " + std::to_string(totals.rounds));
  if (pc.target_messages > totals.messages)
    reject_counts(parse_error_kind::mismatch,
                  "target messages " + std::to_string(pc.target_messages) +
                      " exceed total messages " +
                      std::to_string(totals.messages));
  if (pc.target_messages > 0 && pc.target_rounds == 0)
    reject_counts(parse_error_kind::mismatch,
                  std::to_string(pc.target_messages) +
                      " target messages with zero target rounds");
  sda_attack out(receiver_count);
  // Background is the exact complement of the target rounds within the
  // global accumulation: one linear pass over both ascending sparse rows,
  // rejecting any target count its global row cannot cover.
  auto t = pc.target_receiver_counts.begin();
  const auto t_end = pc.target_receiver_counts.end();
  for (const auto& [r, c] : totals.global_receiver_counts) {
    if (t != t_end && t->first < r) break;  // reported after the loop
    std::uint64_t tc = 0;
    if (t != t_end && t->first == r) tc = (t++)->second;
    if (tc > c)
      reject_counts(parse_error_kind::mismatch,
                    "target count " + std::to_string(tc) +
                        " exceeds global count " + std::to_string(c) +
                        " for receiver " + std::to_string(r));
    out.target_counts_[r] = tc;
    out.background_counts_[r] = c - tc;
  }
  if (t != t_end)
    reject_counts(parse_error_kind::mismatch,
                  "target receiver " + std::to_string(t->first) +
                      " absent from the global counts");
  out.target_rounds_ = pc.target_rounds;
  out.target_messages_ = pc.target_messages;
  out.background_rounds_ = totals.rounds - pc.target_rounds;
  out.background_messages_ = totals.messages - pc.target_messages;
  return out;
}

}  // namespace anonpath::attack
