#include "src/attack/sda.hpp"

#include <cmath>

#include "src/stats/contract.hpp"
#include "src/stats/kahan.hpp"

namespace anonpath::attack {

sda_attack::sda_attack(std::uint32_t receiver_count)
    : disclosure_attack(receiver_count),
      target_counts_(receiver_count, 0),
      background_counts_(receiver_count, 0) {}

void sda_attack::observe_round(const round_observation& round) {
  // Zero deliveries is loss, not evidence (family-wide rule, see
  // intersection_attack): counting such a round would dilute the mean
  // batch size m-bar that the background subtraction scales by.
  if (round.receivers.empty()) return;
  auto& counts = round.target_present ? target_counts_ : background_counts_;
  for (node_id v : round.receivers) {
    ANONPATH_EXPECTS(v < receiver_count_);
    ++counts[v];
  }
  if (round.target_present) {
    ++target_rounds_;
    target_messages_ += round.receivers.size();
  } else {
    ++background_rounds_;
    background_messages_ += round.receivers.size();
  }
}

std::vector<double> sda_attack::signal() const {
  std::vector<double> out(receiver_count_, 0.0);
  if (target_messages_ == 0) return out;
  const double mbar = static_cast<double>(target_messages_) /
                      static_cast<double>(target_rounds_);
  for (std::uint32_t r = 0; r < receiver_count_; ++r) {
    const double p_target = static_cast<double>(target_counts_[r]) /
                            static_cast<double>(target_messages_);
    // No background rounds yet: fall back to the uniform prior for q̂ (the
    // subtraction then just recenters; evidence still ranks receivers).
    const double q = background_messages_ > 0
                         ? static_cast<double>(background_counts_[r]) /
                               static_cast<double>(background_messages_)
                         : 1.0 / static_cast<double>(receiver_count_);
    out[r] = mbar * p_target - (mbar - 1.0) * q;
  }
  return out;
}

std::vector<double> sda_attack::confidence() const {
  std::vector<double> out(receiver_count_, 0.0);
  if (target_messages_ == 0) return out;
  const double n = static_cast<double>(target_messages_);
  for (std::uint32_t r = 0; r < receiver_count_; ++r) {
    // Laplace-smoothed background rate keeps the null variance positive for
    // receivers the background never touched.
    const double q = (static_cast<double>(background_counts_[r]) + 1.0) /
                     (static_cast<double>(background_messages_) +
                      static_cast<double>(receiver_count_));
    const double expected = n * q;
    const double sd = std::sqrt(n * q * (1.0 - q));
    out[r] = (static_cast<double>(target_counts_[r]) - expected) / sd;
  }
  return out;
}

std::vector<double> sda_attack::posterior() const {
  std::vector<double> post = signal();
  stats::kahan_sum z;
  for (double& p : post) {
    if (p < 0.0) p = 0.0;
    z.add(p);
  }
  if (target_messages_ == 0 || z.value() <= 0.0) {
    const double u = 1.0 / static_cast<double>(receiver_count_);
    for (double& p : post) p = u;
    return post;
  }
  for (double& p : post) p /= z.value();
  return post;
}

sda_attack sda_attack::from_counts(const workload::cooccurrence_result& totals,
                                   std::uint32_t pair_index,
                                   std::uint32_t receiver_count) {
  ANONPATH_EXPECTS(pair_index < totals.per_pair.size());
  const workload::pair_counts& pc = totals.per_pair[pair_index];
  sda_attack out(receiver_count);
  for (const auto& [r, c] : pc.target_receiver_counts) {
    ANONPATH_EXPECTS(r < receiver_count);
    out.target_counts_[r] = c;
  }
  // Background is the exact complement of the target rounds within the
  // global accumulation.
  for (const auto& [r, c] : totals.global_receiver_counts) {
    ANONPATH_EXPECTS(r < receiver_count);
    out.background_counts_[r] = c - out.target_counts_[r];
  }
  out.target_rounds_ = pc.target_rounds;
  out.target_messages_ = pc.target_messages;
  out.background_rounds_ = totals.rounds - pc.target_rounds;
  out.background_messages_ = totals.messages - pc.target_messages;
  return out;
}

}  // namespace anonpath::attack
