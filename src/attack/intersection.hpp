#pragma once

#include <cstdint>
#include <vector>

#include "src/attack/disclosure.hpp"

namespace anonpath::attack {

/// The exact (set-theoretic) disclosure attack: the partner is in every
/// round the target participates in, so the candidate set is the running
/// intersection of those rounds' receiver sets. On lossless membership data
/// this is the information-theoretic optimum for "which single receiver is
/// consistent with everything seen" — the oracle the statistical attacks
/// are conformance-pinned against.
class intersection_attack final : public disclosure_attack {
 public:
  explicit intersection_attack(std::uint32_t receiver_count);

  void observe_round(const round_observation& round) override;

  /// Uniform over the surviving candidates; uniform over everyone before
  /// the first target round — or after inconsistent evidence (see
  /// consistent()).
  [[nodiscard]] std::vector<double> posterior() const override;

  [[nodiscard]] attack_kind kind() const noexcept override {
    return attack_kind::intersection;
  }

  /// Surviving candidates, ascending. Everyone before the first target
  /// round.
  [[nodiscard]] std::vector<node_id> candidates() const;

  /// False once the intersection emptied — possible only on lossy or
  /// mis-attributed data (e.g. the target's message was dropped before
  /// delivery), where the exact attack's premise fails. The posterior then
  /// degrades to uniform rather than asserting certainty about nothing.
  [[nodiscard]] bool consistent() const noexcept { return consistent_; }

  [[nodiscard]] std::uint64_t target_rounds() const noexcept {
    return target_rounds_;
  }

  [[nodiscard]] std::size_t memory_bytes() const noexcept override {
    return sizeof(*this) + candidates_.capacity() * sizeof(node_id);
  }

 private:
  std::vector<node_id> candidates_;  // ascending; empty before first round
  std::uint64_t target_rounds_ = 0;
  bool consistent_ = true;
};

/// Exact minimum-hitting-set oracle for small instances: all hitting sets
/// of minimum cardinality for `family` over universe {0..universe-1}, each
/// ascending, in lexicographic order. Generalizes the single-partner
/// intersection (a singleton hitting set) to targets with several
/// persistent partners. Exponential enumeration — the conformance fixture
/// tool, not a production path. Preconditions: universe in [1, 20]; family
/// non-empty; every set non-empty with ids < universe.
[[nodiscard]] std::vector<std::vector<node_id>> minimum_hitting_sets(
    const std::vector<std::vector<node_id>>& family, std::uint32_t universe);

}  // namespace anonpath::attack
