#include "src/obs/metrics.hpp"

#include "src/stats/contract.hpp"

namespace anonpath::obs {

bool is_timing_metric(std::string_view name) noexcept {
  const auto ends_with = [&](std::string_view suffix) {
    return name.size() >= suffix.size() &&
           name.substr(name.size() - suffix.size()) == suffix;
  };
  return ends_with("_ms") || ends_with("_us") || ends_with("_ns");
}

log_histogram log_histogram::from_counts(
    const std::vector<std::uint64_t>& counts) {
  ANONPATH_EXPECTS(counts.size() == bucket_count);
  log_histogram out;
  for (std::size_t i = 0; i < counts.size(); ++i)
    if (counts[i] != 0) out.bins_.add(i, counts[i]);
  return out;
}

void metrics_registry::ensure_shards(unsigned worker_count) {
  ANONPATH_EXPECTS(worker_count >= 1);
  if (worker_count > slabs_.size()) slabs_.resize(worker_count);
}

void metrics_registry::add_counter(unsigned worker, std::string_view name,
                                   std::uint64_t delta) {
  ANONPATH_EXPECTS(worker < slabs_.size());
  auto& counters = slabs_[worker].counters;
  auto it = counters.find(name);
  if (it == counters.end())
    counters.emplace(std::string(name), delta);
  else
    it->second += delta;
}

void metrics_registry::observe(unsigned worker, std::string_view name,
                               std::uint64_t value) {
  ANONPATH_EXPECTS(worker < slabs_.size());
  auto& histograms = slabs_[worker].histograms;
  auto it = histograms.find(name);
  if (it == histograms.end())
    it = histograms.emplace(std::string(name), log_histogram{}).first;
  it->second.add(value);
}

void metrics_registry::set_gauge(std::string_view name, double value) {
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    gauges_.emplace(std::string(name), value);
  else
    it->second = value;
}

metrics_snapshot metrics_registry::snapshot() const {
  metrics_snapshot snap;
  for (const slab& s : slabs_) {
    for (const auto& [name, value] : s.counters) snap.counters[name] += value;
    for (const auto& [name, hist] : s.histograms) {
      auto it = snap.histograms.find(name);
      if (it == snap.histograms.end())
        snap.histograms.emplace(name, hist);
      else
        it->second.merge(hist);
    }
  }
  for (const auto& [name, value] : gauges_) snap.gauges[name] = value;
  return snap;
}

metrics_snapshot merge_snapshots(const metrics_snapshot& a,
                                 const metrics_snapshot& b) {
  metrics_snapshot out = a;
  for (const auto& [name, value] : b.counters) out.counters[name] += value;
  for (const auto& [name, value] : b.gauges) {
    auto it = out.gauges.find(name);
    if (it == out.gauges.end() || it->second < value) out.gauges[name] = value;
  }
  for (const auto& [name, hist] : b.histograms) {
    auto it = out.histograms.find(name);
    if (it == out.histograms.end())
      out.histograms.emplace(name, hist);
    else
      it->second.merge(hist);
  }
  return out;
}

}  // namespace anonpath::obs
