#include "src/obs/progress.hpp"

#include <cstdio>
#include <iostream>

namespace anonpath::obs {

progress_meter::progress_meter(std::string label, std::uint64_t total,
                               bool enabled, double min_interval_seconds)
    : label_(std::move(label)),
      total_(total),
      enabled_(enabled),
      min_interval_seconds_(min_interval_seconds),
      start_(std::chrono::steady_clock::now()),
      last_print_(start_) {}

void progress_meter::advance(std::uint64_t done) {
  if (!enabled_) return;
  const auto now = std::chrono::steady_clock::now();
  const bool final = done >= total_;
  const double since_print =
      std::chrono::duration<double>(now - last_print_).count();
  if (!final && printed_any_ && since_print < min_interval_seconds_) return;
  const double elapsed = std::chrono::duration<double>(now - start_).count();
  const double fraction =
      total_ == 0 ? 1.0
                  : static_cast<double>(done) / static_cast<double>(total_);
  char line[256];
  if (done == 0 || final) {
    std::snprintf(line, sizeof(line),
                  "# progress: %s %llu/%llu (%.1f%%) elapsed %.1fs\n",
                  label_.c_str(), static_cast<unsigned long long>(done),
                  static_cast<unsigned long long>(total_), 100.0 * fraction,
                  elapsed);
  } else {
    const double eta = elapsed / static_cast<double>(done) *
                       static_cast<double>(total_ - done);
    std::snprintf(line, sizeof(line),
                  "# progress: %s %llu/%llu (%.1f%%) elapsed %.1fs eta %.1fs\n",
                  label_.c_str(), static_cast<unsigned long long>(done),
                  static_cast<unsigned long long>(total_), 100.0 * fraction,
                  elapsed, eta);
  }
  std::cerr << line;  // diagnostic stream: best-effort, never checked
  std::cerr.flush();
  last_print_ = now;
  printed_any_ = true;
}

void progress_meter::note(std::string_view message) {
  if (!enabled_) return;
  const double elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start_)
                             .count();
  std::cerr << "# progress: " << label_ << ' ' << message << " elapsed ";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1fs\n", elapsed);
  std::cerr << buf;
  std::cerr.flush();
}

}  // namespace anonpath::obs
