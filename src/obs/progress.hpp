#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>

namespace anonpath::obs {

/// Rate-limited `# progress:` heartbeat on stderr with an ETA, for the
/// multi-minute campaigns that otherwise emit nothing until the final CSV.
///
/// Semantics: `advance(done)` reports monotone completion out of `total`;
/// a line is printed at most every `min_interval` seconds — except the
/// final line (done == total), which always prints so scripts can grep for
/// completion. ETA is the naive linear extrapolation
/// elapsed / done * (total - done), honest for the homogeneous cells of a
/// campaign grid and clearly approximate otherwise. Disabled meters are
/// inert; stderr is diagnostic, so writes are best-effort and never throw
/// or fail the run (unlike `--metrics` file writes, which are checked).
///
/// Thread discipline: call sites serialize externally (the campaign calls
/// advance() under the same mutex that orders cell flushes).
class progress_meter {
 public:
  /// An inert meter (progress off).
  progress_meter() = default;

  /// `label` names the unit stream ("campaign cells", "rounds", ...).
  progress_meter(std::string label, std::uint64_t total, bool enabled,
                 double min_interval_seconds = 0.2);

  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  /// Reports that `done` of the total units are complete.
  void advance(std::uint64_t done);

  /// Prints one unconditional `# progress:` line (phase boundaries of
  /// commands without a natural unit count). No-op when disabled.
  void note(std::string_view message);

 private:
  std::string label_;
  std::uint64_t total_ = 0;
  bool enabled_ = false;
  double min_interval_seconds_ = 0.2;
  std::chrono::steady_clock::time_point start_;
  std::chrono::steady_clock::time_point last_print_;
  bool printed_any_ = false;
};

}  // namespace anonpath::obs
