#include "src/obs/span.hpp"

#include "src/stats/contract.hpp"

namespace anonpath::obs {

std::uint64_t tracer::open(std::string_view name) {
  span_record record;
  record.id = static_cast<std::uint64_t>(records_.size()) + 1;
  record.parent = open_stack_.empty() ? 0 : open_stack_.back();
  record.name.assign(name);
  records_.push_back(std::move(record));
  open_stack_.push_back(records_.back().id);
  return records_.back().id;
}

void tracer::close(std::uint64_t id, double duration_ms) {
  ANONPATH_EXPECTS(!open_stack_.empty() && open_stack_.back() == id);
  records_[id - 1].duration_ms = duration_ms;
  open_stack_.pop_back();
}

}  // namespace anonpath::obs
