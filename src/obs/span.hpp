#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace anonpath::obs {

/// One closed span in a trace tree. Ids are assigned in creation order
/// (1-based; parent 0 means root), never derived from wall-clock time, so
/// the tree *structure* (id, parent, name) is deterministic for a given
/// code path — only `duration_ms` is real telemetry. Determinism tests
/// compare structure and ignore durations (see is_timing_metric's
/// convention in metrics.hpp).
struct span_record {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;
  std::string name;
  double duration_ms = 0.0;
};

/// Collects spans from one thread of execution. Open spans form a stack,
/// so nested `obs::span` locals record a parent/child tree. Single-threaded
/// by design: instrument the orchestration path (CLI roots, campaign
/// phases, single-run scoring), not the worker fan-out — worker-side
/// telemetry belongs in metrics_registry slabs.
class tracer {
 public:
  /// Opens a span under the currently open span (or as a root) and returns
  /// its id.
  std::uint64_t open(std::string_view name);

  /// Closes the most recently opened span. Precondition: `id` is that
  /// span's id (enforces stack discipline).
  void close(std::uint64_t id, double duration_ms);

  /// Every closed span, in id order (records of still-open spans carry
  /// duration 0 until closed).
  [[nodiscard]] const std::vector<span_record>& spans() const noexcept {
    return records_;
  }

 private:
  std::vector<span_record> records_;
  std::vector<std::uint64_t> open_stack_;
};

/// RAII scoped timer: opens a tracer span on construction, closes it with
/// the elapsed wall time on destruction. A null tracer makes the span
/// inert (two branches total), so call sites stay unconditional.
class span {
 public:
  span(tracer* t, std::string_view name)
      : tracer_(t),
        id_(t != nullptr ? t->open(name) : 0),
        start_(std::chrono::steady_clock::now()) {}

  span(const span&) = delete;
  span& operator=(const span&) = delete;

  ~span() {
    if (tracer_ == nullptr) return;
    const std::chrono::duration<double, std::milli> elapsed =
        std::chrono::steady_clock::now() - start_;
    tracer_->close(id_, elapsed.count());
  }

 private:
  tracer* tracer_;
  std::uint64_t id_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace anonpath::obs
