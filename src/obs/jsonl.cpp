#include "src/obs/jsonl.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <ostream>
#include <sstream>

#include "src/stats/error.hpp"

namespace anonpath::obs {

namespace {

constexpr const char* source_label = "metrics";

[[noreturn]] void fail(parse_error_kind kind, const std::string& detail) {
  throw parse_error(kind, source_label, detail);
}

std::string escape_json(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string format_double(double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

/// Strict scanner over one JSONL line. Every helper classifies its own
/// failure: hitting end-of-line mid-token is `truncated`, a wrong byte is
/// `malformed`, a well-formed but impossible value is `out_of_range`.
struct cursor {
  const char* p;
  const char* end;
  std::size_t line_no;

  [[nodiscard]] std::string where() const {
    return "line " + std::to_string(line_no);
  }

  void expect(std::string_view literal) {
    for (const char c : literal) {
      if (p == end)
        fail(parse_error_kind::truncated,
             where() + ": record ended while expecting '" +
                 std::string(literal) + "'");
      if (*p != c)
        fail(parse_error_kind::malformed,
             where() + ": expected '" + std::string(literal) + "'");
      ++p;
    }
  }

  [[nodiscard]] bool peek(char c) const { return p != end && *p == c; }

  std::uint64_t parse_u64() {
    if (p == end)
      fail(parse_error_kind::truncated,
           where() + ": record ended while expecting an integer");
    if (*p < '0' || *p > '9')
      fail(parse_error_kind::malformed, where() + ": expected an integer");
    std::uint64_t value = 0;
    while (p != end && *p >= '0' && *p <= '9') {
      const std::uint64_t digit = static_cast<std::uint64_t>(*p - '0');
      if (value > (UINT64_MAX - digit) / 10)
        fail(parse_error_kind::out_of_range,
             where() + ": integer overflows 64 bits");
      value = value * 10 + digit;
      ++p;
    }
    return value;
  }

  double parse_double() {
    if (p == end)
      fail(parse_error_kind::truncated,
           where() + ": record ended while expecting a number");
    char* parsed_end = nullptr;
    const double value = std::strtod(p, &parsed_end);
    if (parsed_end == p)
      fail(parse_error_kind::malformed, where() + ": expected a number");
    if (parsed_end > end)
      fail(parse_error_kind::truncated,
           where() + ": record ended inside a number");
    if (!std::isfinite(value))
      fail(parse_error_kind::out_of_range,
           where() + ": number is not finite");
    p = parsed_end;
    return value;
  }

  std::string parse_string() {
    expect("\"");
    std::string out;
    for (;;) {
      if (p == end)
        fail(parse_error_kind::truncated,
             where() + ": record ended inside a string");
      const char c = *p++;
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail(parse_error_kind::malformed,
             where() + ": raw control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (p == end)
        fail(parse_error_kind::truncated,
             where() + ": record ended inside an escape");
      const char esc = *p++;
      if (esc == '"' || esc == '\\') {
        out.push_back(esc);
      } else if (esc == 'u') {
        unsigned code = 0;
        for (int i = 0; i < 4; ++i) {
          if (p == end)
            fail(parse_error_kind::truncated,
                 where() + ": record ended inside a \\u escape");
          const char h = *p++;
          unsigned nibble = 0;
          if (h >= '0' && h <= '9') {
            nibble = static_cast<unsigned>(h - '0');
          } else if (h >= 'a' && h <= 'f') {
            nibble = static_cast<unsigned>(h - 'a') + 10;
          } else {
            fail(parse_error_kind::malformed,
                 where() + ": bad hex digit in \\u escape");
          }
          code = code * 16 + nibble;
        }
        if (code >= 0x20)
          fail(parse_error_kind::malformed,
               where() + ": \\u escape outside the control range");
        out.push_back(static_cast<char>(code));
      } else {
        fail(parse_error_kind::malformed,
             where() + ": unsupported escape in string");
      }
    }
  }

  void expect_line_end() {
    if (p != end)
      fail(parse_error_kind::malformed,
           where() + ": trailing bytes after record");
  }
};

}  // namespace

void write_metrics_jsonl(std::ostream& out, const metrics_snapshot& snapshot,
                         const std::vector<span_record>& spans) {
  out << "{\"format\":\"anonpath-metrics\",\"version\":"
      << metrics_format_version << "}\n";
  for (const auto& [name, value] : snapshot.counters)
    out << "{\"kind\":\"counter\",\"name\":\"" << escape_json(name)
        << "\",\"value\":" << value << "}\n";
  for (const auto& [name, value] : snapshot.gauges)
    out << "{\"kind\":\"gauge\",\"name\":\"" << escape_json(name)
        << "\",\"value\":" << format_double(value) << "}\n";
  for (const auto& [name, hist] : snapshot.histograms) {
    out << "{\"kind\":\"histogram\",\"name\":\"" << escape_json(name)
        << "\",\"total\":" << hist.total() << ",\"buckets\":[";
    bool first = true;
    const auto& counts = hist.counts();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (counts[i] == 0) continue;
      if (!first) out << ',';
      first = false;
      out << '[' << i << ',' << counts[i] << ']';
    }
    out << "]}\n";
  }
  for (const span_record& s : spans)
    out << "{\"kind\":\"span\",\"id\":" << s.id << ",\"parent\":" << s.parent
        << ",\"name\":\"" << escape_json(s.name)
        << "\",\"ms\":" << format_double(s.duration_ms) << "}\n";
}

void write_metrics_file(const std::string& path,
                        const metrics_snapshot& snapshot,
                        const std::vector<span_record>& spans) {
  std::ofstream out(path);
  if (!out)
    fail(parse_error_kind::io, "cannot open '" + path + "' for writing");
  write_metrics_jsonl(out, snapshot, spans);
  out.flush();
  if (!out)
    fail(parse_error_kind::io,
         "write to '" + path + "' failed (disk full or I/O error)");
}

metrics_document read_metrics_jsonl(std::istream& in) {
  metrics_document doc;
  std::string line;
  std::size_t line_no = 0;
  bool have_header = false;
  while (std::getline(in, line)) {
    ++line_no;
    cursor cur{line.data(), line.data() + line.size(), line_no};
    if (!have_header) {
      cur.expect("{\"format\":\"anonpath-metrics\",\"version\":");
      const std::uint64_t version = cur.parse_u64();
      cur.expect("}");
      cur.expect_line_end();
      if (version != metrics_format_version)
        fail(parse_error_kind::version_mismatch,
             "header declares version " + std::to_string(version) +
                 "; this build reads version " +
                 std::to_string(metrics_format_version));
      have_header = true;
      continue;
    }
    cur.expect("{\"kind\":\"");
    std::string kind;
    while (cur.p != cur.end && *cur.p != '"') kind.push_back(*cur.p++);
    cur.expect("\"");
    if (kind == "counter") {
      cur.expect(",\"name\":");
      const std::string name = cur.parse_string();
      cur.expect(",\"value\":");
      const std::uint64_t value = cur.parse_u64();
      cur.expect("}");
      cur.expect_line_end();
      if (!doc.metrics.counters.emplace(name, value).second)
        fail(parse_error_kind::malformed,
             cur.where() + ": duplicate counter '" + name + "'");
    } else if (kind == "gauge") {
      cur.expect(",\"name\":");
      const std::string name = cur.parse_string();
      cur.expect(",\"value\":");
      const double value = cur.parse_double();
      cur.expect("}");
      cur.expect_line_end();
      if (!doc.metrics.gauges.emplace(name, value).second)
        fail(parse_error_kind::malformed,
             cur.where() + ": duplicate gauge '" + name + "'");
    } else if (kind == "histogram") {
      cur.expect(",\"name\":");
      const std::string name = cur.parse_string();
      cur.expect(",\"total\":");
      const std::uint64_t total = cur.parse_u64();
      cur.expect(",\"buckets\":[");
      std::vector<std::uint64_t> counts(log_histogram::bucket_count, 0);
      std::uint64_t sum = 0;
      bool first = true;
      bool last_index_set = false;
      std::uint64_t last_index = 0;
      while (!cur.peek(']')) {
        if (!first) cur.expect(",");
        first = false;
        cur.expect("[");
        const std::uint64_t index = cur.parse_u64();
        cur.expect(",");
        const std::uint64_t count = cur.parse_u64();
        cur.expect("]");
        if (index >= log_histogram::bucket_count)
          fail(parse_error_kind::out_of_range,
               cur.where() + ": bucket index " + std::to_string(index) +
                   " >= " + std::to_string(log_histogram::bucket_count));
        if (last_index_set && index <= last_index)
          fail(parse_error_kind::malformed,
               cur.where() + ": bucket indexes must be strictly ascending");
        if (count == 0)
          fail(parse_error_kind::malformed,
               cur.where() + ": zero-count bucket must be omitted");
        if (count > UINT64_MAX - sum)
          fail(parse_error_kind::out_of_range,
               cur.where() + ": bucket counts overflow 64 bits");
        sum += count;
        counts[index] = count;
        last_index = index;
        last_index_set = true;
      }
      cur.expect("]}");
      cur.expect_line_end();
      if (sum != total)
        fail(parse_error_kind::malformed,
             cur.where() + ": bucket counts sum to " + std::to_string(sum) +
                 " but total declares " + std::to_string(total));
      if (!doc.metrics.histograms
               .emplace(name, log_histogram::from_counts(counts))
               .second)
        fail(parse_error_kind::malformed,
             cur.where() + ": duplicate histogram '" + name + "'");
    } else if (kind == "span") {
      cur.expect(",\"id\":");
      const std::uint64_t id = cur.parse_u64();
      cur.expect(",\"parent\":");
      const std::uint64_t parent = cur.parse_u64();
      cur.expect(",\"name\":");
      std::string name = cur.parse_string();
      cur.expect(",\"ms\":");
      const double ms = cur.parse_double();
      cur.expect("}");
      cur.expect_line_end();
      if (id != doc.spans.size() + 1)
        fail(parse_error_kind::malformed,
             cur.where() + ": span ids must be consecutive from 1");
      if (parent >= id)
        fail(parse_error_kind::out_of_range,
             cur.where() + ": span parent must precede the span");
      if (ms < 0.0)
        fail(parse_error_kind::out_of_range,
             cur.where() + ": span duration is negative");
      doc.spans.push_back(span_record{id, parent, std::move(name), ms});
    } else {
      fail(parse_error_kind::malformed,
           cur.where() + ": unknown record kind '" + kind + "'");
    }
  }
  if (in.bad()) fail(parse_error_kind::io, "stream failed while reading");
  if (!have_header)
    fail(parse_error_kind::truncated, "empty input: missing header line");
  return doc;
}

metrics_document read_metrics_file(const std::string& path) {
  std::ifstream in(path);
  if (!in)
    fail(parse_error_kind::io, "cannot open '" + path + "' for reading");
  return read_metrics_jsonl(in);
}

std::string stable_text(const metrics_snapshot& snapshot,
                        const std::vector<span_record>& spans) {
  std::ostringstream out;
  for (const auto& [name, value] : snapshot.counters)
    out << "counter " << name << ' ' << value << '\n';
  for (const auto& [name, value] : snapshot.gauges)
    out << "gauge " << name << ' ' << format_double(value) << '\n';
  for (const auto& [name, hist] : snapshot.histograms) {
    out << "hist " << name << " total " << hist.total();
    if (!is_timing_metric(name)) {
      const auto& counts = hist.counts();
      for (std::size_t i = 0; i < counts.size(); ++i)
        if (counts[i] != 0) out << ' ' << i << ':' << counts[i];
    }
    out << '\n';
  }
  for (const span_record& s : spans)
    out << "span " << s.id << ' ' << s.parent << ' ' << s.name << '\n';
  return out.str();
}

void stderr_summary_sink::publish(const metrics_snapshot& snapshot,
                                  const std::vector<span_record>& spans) {
  std::cerr << "# metrics summary\n";
  for (const auto& [name, value] : snapshot.counters)
    std::cerr << "#   counter " << name << " = " << value << '\n';
  for (const auto& [name, value] : snapshot.gauges)
    std::cerr << "#   gauge " << name << " = " << format_double(value)
              << '\n';
  for (const auto& [name, hist] : snapshot.histograms) {
    std::cerr << "#   hist " << name << " total=" << hist.total();
    if (hist.total() > 0)
      std::cerr << " p50>=" << hist.quantile_floor(0.5)
                << " p99>=" << hist.quantile_floor(0.99);
    std::cerr << '\n';
  }
  for (const span_record& s : spans)
    std::cerr << "#   span " << s.id << " parent=" << s.parent << ' '
              << s.name << ' ' << format_double(s.duration_ms) << "ms\n";
  std::cerr.flush();
}

}  // namespace anonpath::obs
