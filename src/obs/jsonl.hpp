#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "src/obs/metrics.hpp"
#include "src/obs/span.hpp"

namespace anonpath::obs {

/// Current on-disk metrics format: "anonpath-metrics v1" JSONL. One JSON
/// object per line — a header `{"format":"anonpath-metrics","version":1}`,
/// then counters, gauges, and histograms (each group name-sorted), then
/// spans in id order. Histogram buckets are sparse `[index,count]` pairs
/// with strictly ascending indexes. The reader is strict: any deviation is
/// an anonpath::parse_error (source "metrics"), classified per the
/// repo-wide taxonomy — never a crash or a contract violation, no matter
/// how corrupt the bytes.
inline constexpr std::uint32_t metrics_format_version = 1;

/// A parsed metrics file: the snapshot plus the span tree it carried.
struct metrics_document {
  metrics_snapshot metrics;
  std::vector<span_record> spans;
};

/// Serializes snapshot + spans as metrics JSONL v1. Does not flush or
/// verify the stream — callers own the stream-check (write_metrics_file
/// below does it for files).
void write_metrics_jsonl(std::ostream& out, const metrics_snapshot& snapshot,
                         const std::vector<span_record>& spans);

/// Writes a metrics JSONL v1 file, flushes, and verifies the stream,
/// throwing parse_error{io} on open or write failure (full disk, closed
/// pipe) per the repo's result-bearing-write rules.
void write_metrics_file(const std::string& path,
                        const metrics_snapshot& snapshot,
                        const std::vector<span_record>& spans);

/// Parses metrics JSONL v1. Throws parse_error on any defect:
/// io (stream failed mid-read), truncated (empty input or a line ending
/// mid-token), malformed (bad token, wrong key order, duplicate name,
/// out-of-order span ids), out_of_range (bucket index >= 65, count
/// overflow, non-finite gauge), version_mismatch (wrong header version).
[[nodiscard]] metrics_document read_metrics_jsonl(std::istream& in);

/// read_metrics_jsonl over a file; unopenable files are parse_error{io}.
[[nodiscard]] metrics_document read_metrics_file(const std::string& path);

/// Deterministic rendering of the *stable* portion of a document: counter
/// values, gauges, histogram bucket placements for deterministic metrics,
/// totals only for timing metrics (is_timing_metric), and span structure
/// (id, parent, name) without durations. Two runs of the same logical work
/// must render identically regardless of thread count or shard split —
/// this is the string the determinism tests compare.
[[nodiscard]] std::string stable_text(const metrics_snapshot& snapshot,
                                      const std::vector<span_record>& spans);

/// Where a finished run publishes its telemetry. Implementations must
/// treat the snapshot as read-only; file-backed sinks follow the checked
/// write rules (throw parse_error{io} on failure), diagnostic sinks
/// (stderr) are best-effort and never throw.
class sink {
 public:
  virtual ~sink() = default;
  virtual void publish(const metrics_snapshot& snapshot,
                       const std::vector<span_record>& spans) = 0;
};

/// Discards everything — the explicit "telemetry off" terminal.
class null_sink final : public sink {
 public:
  void publish(const metrics_snapshot&,
               const std::vector<span_record>&) override {}
};

/// Writes metrics JSONL v1 to a file on every publish (checked writes).
class jsonl_file_sink final : public sink {
 public:
  explicit jsonl_file_sink(std::string path) : path_(std::move(path)) {}
  void publish(const metrics_snapshot& snapshot,
               const std::vector<span_record>& spans) override {
    write_metrics_file(path_, snapshot, spans);
  }

 private:
  std::string path_;
};

/// Renders a human-oriented summary table (counters, gauges, histogram
/// totals with p50/p99 bucket floors, root spans) to stderr. Best-effort:
/// stderr failures are ignored, matching the progress heartbeat.
class stderr_summary_sink final : public sink {
 public:
  void publish(const metrics_snapshot& snapshot,
               const std::vector<span_record>& spans) override;
};

}  // namespace anonpath::obs
