#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/stats/histogram.hpp"

namespace anonpath::obs {

/// Log-scale histogram of unsigned values: bucket `i` holds the values of
/// bit-width `i`, i.e. bucket 0 counts exact zeros and bucket i >= 1 counts
/// 2^(i-1) <= v < 2^i. 65 buckets cover the full uint64 range, every add is
/// one bit-width and one increment, and merge/quantile are inherited from
/// stats::int_histogram (integer sums — associative, commutative, and so
/// bit-identical under any shard/merge order).
class log_histogram {
 public:
  static constexpr std::size_t bucket_count = 65;

  log_histogram() : bins_(bucket_count) {}

  /// Index of the bucket `value` lands in (its bit-width).
  [[nodiscard]] static std::size_t bucket_of(std::uint64_t value) noexcept {
    std::size_t width = 0;
    while (value != 0) {
      ++width;
      value >>= 1;
    }
    return width;
  }

  /// Smallest value that lands in bucket `i` (0 for bucket 0).
  [[nodiscard]] static std::uint64_t bucket_floor(std::size_t i) noexcept {
    return i == 0 ? 0 : std::uint64_t{1} << (i - 1);
  }

  void add(std::uint64_t value) { bins_.add(bucket_of(value)); }

  void merge(const log_histogram& other) { bins_.merge(other.bins_); }

  /// Rebuilds a histogram from dense per-bucket counts (deserialization).
  /// Preconditions: counts.size() == bucket_count and the sum fits uint64
  /// (untrusted readers validate both before calling).
  [[nodiscard]] static log_histogram from_counts(
      const std::vector<std::uint64_t>& counts);

  [[nodiscard]] std::uint64_t total() const noexcept { return bins_.total(); }
  [[nodiscard]] std::uint64_t count(std::size_t bucket) const {
    return bins_.count(bucket);
  }

  /// Lower bound of the bucket holding the empirical q-quantile.
  /// Preconditions as stats::int_histogram::quantile.
  [[nodiscard]] std::uint64_t quantile_floor(double q) const {
    return bucket_floor(bins_.quantile(q));
  }

  [[nodiscard]] const std::vector<std::uint64_t>& counts() const noexcept {
    return bins_.counts();
  }

 private:
  stats::int_histogram bins_;
};

/// One merged, name-sorted view of every metric a registry has recorded.
/// Counters and histograms are pure integer sums, so a snapshot taken after
/// the same logical work is bit-identical regardless of how many workers
/// recorded it or in which order the slabs merged. Gauges are last-write
/// point samples set on the reducing thread.
struct metrics_snapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, log_histogram> histograms;
};

/// Names ending in `_ms` / `_us` / `_ns` record wall-clock durations. They
/// are real telemetry but not reproducible; determinism tests and the
/// stable rendering below keep only their totals (how many events were
/// timed — deterministic) and drop the bucket placement.
[[nodiscard]] bool is_timing_metric(std::string_view name) noexcept;

/// Named counters, gauges, and log-scale histograms with thread-sharded
/// storage. Each stats::thread_pool worker writes its own slab (the pool
/// guarantees a worker id is never active on two threads at once, so slab
/// access needs no locks); snapshot() merges the slabs in fixed index
/// order. Because counters and histogram bins are integer sums, the merged
/// snapshot is bit-identical for every thread count — the repo-wide
/// determinism contract.
///
/// Cost model: a registry only exists when the user asked for telemetry
/// (`--metrics` / `--progress`); instrumented layers hold a non-owning
/// `metrics_registry*` that defaults to nullptr and skip every recording
/// under a single branch, so default runs pay one predictable-not-taken
/// test per harvest point and allocate nothing.
class metrics_registry {
 public:
  /// Starts with a single slab (shard 0) for single-threaded use.
  metrics_registry() : slabs_(1) {}

  metrics_registry(const metrics_registry&) = delete;
  metrics_registry& operator=(const metrics_registry&) = delete;

  /// Grows the slab set to `worker_count` shards. Must be called on a
  /// single thread before any parallel section that records with worker
  /// ids >= 1 (growing while workers write would race).
  /// Precondition: worker_count >= 1.
  void ensure_shards(unsigned worker_count);

  [[nodiscard]] unsigned shard_count() const noexcept {
    return static_cast<unsigned>(slabs_.size());
  }

  /// Adds `delta` to the named counter on `worker`'s slab.
  /// Precondition: worker < shard_count().
  void add_counter(unsigned worker, std::string_view name,
                   std::uint64_t delta);
  void add_counter(std::string_view name, std::uint64_t delta) {
    add_counter(0, name, delta);
  }

  /// Records `value` into the named log-scale histogram on `worker`'s slab.
  /// Precondition: worker < shard_count().
  void observe(unsigned worker, std::string_view name, std::uint64_t value);
  void observe(std::string_view name, std::uint64_t value) {
    observe(0, name, value);
  }

  /// Sets a point-sample gauge. Gauges are not sharded: set them from the
  /// thread that owns the reduction (single-threaded sections only).
  void set_gauge(std::string_view name, double value);

  /// Merges every slab in fixed index order into one name-sorted view.
  /// Call from a single thread (no recording in flight).
  [[nodiscard]] metrics_snapshot snapshot() const;

 private:
  struct slab {
    std::map<std::string, std::uint64_t, std::less<>> counters;
    std::map<std::string, log_histogram, std::less<>> histograms;
  };

  std::vector<slab> slabs_;
  std::map<std::string, double, std::less<>> gauges_;
};

/// Pointwise combination of two snapshots: counters and histogram bins add
/// (associative/commutative — a sharded campaign's merged counters equal
/// the unsharded run's), gauges keep the maximum (the only order-free
/// choice for point samples like peak memory).
[[nodiscard]] metrics_snapshot merge_snapshots(const metrics_snapshot& a,
                                               const metrics_snapshot& b);

}  // namespace anonpath::obs
