#pragma once

#include "src/anonymity/length_distribution.hpp"
#include "src/anonymity/types.hpp"
#include "src/stats/rng.hpp"

namespace anonpath {

/// Path models of paper Sec. 3.2: simple paths (no node reused; what the
/// analytic machinery assumes) and "complicated" paths (cycles allowed,
/// Crowds-style hop-by-hop forwarding where only immediate self-loops are
/// excluded).
enum class path_model {
  simple,       ///< intermediates are distinct and differ from the sender
  complicated,  ///< each hop uniform over all nodes except the current one
};

/// Draws a uniformly random simple route of the given length from `sender`:
/// an ordered sample of `length` distinct intermediates from V \ {sender}.
/// Preconditions: sender < node_count, length <= node_count - 1.
[[nodiscard]] route sample_simple_route(std::uint32_t node_count, node_id sender,
                                        path_length length, stats::rng& gen);

/// Draws a complicated (cycle-allowing) route: x_1 != sender, and each
/// subsequent hop uniform over V \ {previous}. Precondition: node_count >= 2.
[[nodiscard]] route sample_complicated_route(std::uint32_t node_count,
                                             node_id sender, path_length length,
                                             stats::rng& gen);

/// Draws a full (sender, length, route) triple from the generative model:
/// sender uniform over V, length from `lengths`, route per `model`.
[[nodiscard]] route sample_route(std::uint32_t node_count,
                                 const path_length_distribution& lengths,
                                 path_model model, stats::rng& gen);

}  // namespace anonpath
