#pragma once

#include "src/anonymity/length_distribution.hpp"
#include "src/anonymity/types.hpp"
#include "src/net/route_plan.hpp"
#include "src/net/topology.hpp"
#include "src/stats/rng.hpp"

namespace anonpath {

/// Path models of paper Sec. 3.2: simple paths (no node reused; what the
/// analytic machinery assumes) and "complicated" paths (cycles allowed,
/// Crowds-style hop-by-hop forwarding where only immediate self-loops are
/// excluded).
enum class path_model {
  simple,       ///< intermediates are distinct and differ from the sender
  complicated,  ///< each hop uniform over all nodes except the current one
};

/// Draws a uniformly random simple route of the given length from `sender`:
/// an ordered sample of `length` distinct intermediates from V \ {sender}.
/// Preconditions: sender < node_count, length <= node_count - 1.
[[nodiscard]] route sample_simple_route(std::uint32_t node_count, node_id sender,
                                        path_length length, stats::rng& gen);

/// Draws a complicated (cycle-allowing) route: x_1 != sender, and each
/// subsequent hop uniform over V \ {previous}. Precondition: node_count >= 2.
[[nodiscard]] route sample_complicated_route(std::uint32_t node_count,
                                             node_id sender, path_length length,
                                             stats::rng& gen);

/// Draws a full (sender, length, route) triple from the generative model:
/// sender uniform over V, length from `lengths`, route per `model`.
[[nodiscard]] route sample_route(std::uint32_t node_count,
                                 const path_length_distribution& lengths,
                                 path_model model, stats::rng& gen);

/// Draws a topology-respecting route of the given length from `sender`:
/// each hop is a weighted draw among the current node's neighbors (the
/// walk model — net::topology documents why the clique instance coincides
/// with `complicated` paths). Every consecutive pair of the result is a
/// graph edge. Precondition: sender < topo.node_count().
[[nodiscard]] route sample_topology_route(const net::topology& topo,
                                          node_id sender, path_length length,
                                          stats::rng& gen);

/// In-place variant: fills `out`, reusing its hop buffer, so steady-state
/// sampling (the topology Monte-Carlo loop) allocates nothing.
void sample_topology_route_into(const net::topology& topo, node_id sender,
                                path_length length, stats::rng& gen,
                                route& out);

/// Draws a planned route from `sender` under the kpaths model: the planner
/// picks a uniform exit and one of its k best paths (see
/// net::route_planner::sample_route — this wrapper is the sampler-layer
/// entry point the simulator calls, parallel to sample_topology_route).
/// Unlike the walk samplers the length is data-driven, not a parameter:
/// planned paths are loopless, so lengths land in [1, N-1].
[[nodiscard]] route sample_planned_route(net::route_planner& planner,
                                         node_id sender, stats::rng& gen);

/// In-place variant, mirroring sample_topology_route_into.
void sample_planned_route_into(net::route_planner& planner, node_id sender,
                               stats::rng& gen, route& out);

/// Allocation-free bulk sampler for the hot Monte-Carlo loop: draws the same
/// (sender, length, route) triples as sample_route but reuses internal
/// buffers, so steady-state sampling performs zero heap allocations.
///
/// For the simple model it exploits that a uniform (sender, ordered
/// l-sample of V \ {sender}) pair is exactly a uniform (l+1)-prefix of a
/// random permutation of V: one partial Fisher-Yates pass over a persistent
/// permutation buffer yields sender and hops together. (Fisher-Yates is
/// uniform from any starting permutation, so the buffer is never re-sorted.)
///
/// The draw sequence differs from sample_route's, so the two produce
/// different — equally distributed — streams for the same generator state.
class route_sampler {
 public:
  /// Preconditions: node_count >= 2; for the simple model the length support
  /// must fit simple paths (lengths.max_length() <= node_count - 1).
  route_sampler(std::uint32_t node_count, path_length_distribution lengths,
                path_model model);

  /// Draws the next route into the internal buffer and returns a reference
  /// to it; valid until the next call.
  const route& next(stats::rng& gen);

 private:
  std::uint32_t node_count_;
  path_length_distribution lengths_;
  path_model model_;
  std::vector<node_id> pool_;  // persistent permutation of V (simple model)
  route r_;
};

}  // namespace anonpath
