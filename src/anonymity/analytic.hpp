#pragma once

#include "src/anonymity/length_distribution.hpp"
#include "src/anonymity/moments.hpp"
#include "src/anonymity/types.hpp"

namespace anonpath {

/// Per-event-class decomposition of the anonymity degree for a system with
/// exactly one compromised node (C = 1) plus the compromised receiver
/// (derivation in DESIGN.md Sec. 2.1). Every adversary observation falls in
/// one of five classes; the table gives each class's probability and the
/// conditional sender entropy H(X | e) in bits.
struct degree_breakdown {
  double p_sender_compromised = 0.0;  ///< c == S: sender identified, H = 0
  double p_absent = 0.0;              ///< c not on the path
  double h_absent = 0.0;
  double p_last = 0.0;                ///< c == x_l (delivers to R)
  double h_last = 0.0;
  double p_penultimate = 0.0;         ///< c == x_{l-1} (feeds the last hop)
  double h_penultimate = 0.0;
  double p_mid = 0.0;                 ///< c == x_i, i <= l-2 (position ambiguous)
  double h_mid = 0.0;
  double degree = 0.0;                ///< H*(S) = sum of p * h over classes

  /// Sum of the class probabilities (== 1 up to rounding; used in tests).
  [[nodiscard]] double total_probability() const noexcept {
    return p_sender_compromised + p_absent + p_last + p_penultimate + p_mid;
  }
};

/// Exact anonymity degree H*(S) in bits for a C = 1 system under simple
/// (cycle-free) rerouting paths, evaluated in closed form from the moment
/// signature — O(1) given the moments, O(max length) from a pmf.
///
/// Preconditions: sys.valid(), sys.compromised_count == 1,
/// sys.node_count >= 5, and the distribution's support fits a simple path
/// (max_length <= N - 1).
[[nodiscard]] double anonymity_degree(const system_params& sys,
                                      const path_length_distribution& lengths);

/// As anonymity_degree, but evaluated directly from a moment signature
/// (the signature must be feasible for support [0, N-1]).
[[nodiscard]] double anonymity_degree_from_moments(const system_params& sys,
                                                   const moment_signature& sig);

/// Full per-class decomposition (probabilities and conditional entropies).
[[nodiscard]] degree_breakdown anonymity_breakdown(
    const system_params& sys, const path_length_distribution& lengths);

/// Decomposition from a moment signature.
[[nodiscard]] degree_breakdown anonymity_breakdown_from_moments(
    const system_params& sys, const moment_signature& sig);

/// The theoretical ceiling log2(N): no adversary information at all
/// (paper Sec. 5.1 / conclusion 4).
[[nodiscard]] double max_anonymity_degree(const system_params& sys);

}  // namespace anonpath
