#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/anonymity/length_distribution.hpp"
#include "src/anonymity/types.hpp"

namespace anonpath {

/// Cross-message sender inference — the degradation scenario the paper cites
/// as [23] (Wright et al., NDSS 2002): a sender who keeps communicating with
/// the same receiver under per-message rerouting hands the adversary
/// independent observations whose posteriors multiply. Crowds instead pins
/// one path per (sender, receiver) pair for 24h — repeated use of the same
/// path yields the *same* observation and no extra information.

/// Fuses independent per-message posteriors over the same unknown sender:
/// Pr(S=s | e_1..e_k) ∝ Π_i Pr(S=s | e_i) under a uniform prior.
/// Preconditions: all posteriors non-empty, same size, entries >= 0, and at
/// least one candidate with positive mass in every factor's product.
[[nodiscard]] std::vector<double> combine_posteriors(
    std::span<const std::vector<double>> posteriors);

/// Result of a multi-message degradation experiment.
struct degradation_point {
  std::uint32_t messages = 0;       ///< messages sent by the tracked sender
  double mean_entropy_bits = 0.0;   ///< E[H(posterior after k messages)]
  double std_error = 0.0;
  double identified_fraction = 0.0; ///< runs where posterior max > threshold
};

/// Simulates the attack: a fixed (honest) sender emits `max_messages`
/// messages, each over a fresh simple path drawn from `lengths`; after every
/// message the adversary refines its fused posterior. Averaged over
/// `trials` independent runs (sender redrawn uniformly among honest nodes).
/// Returns one point per message count 1..max_messages.
///
/// When `reroute_per_message` is false the first path is reused for all
/// messages (Crowds-style static path): observations repeat and the fused
/// posterior equals the single-message one — the baseline that shows *why*
/// static paths resist the attack.
///
/// A run counts as "identified" after k messages when the fused posterior
/// puts strictly more than `identified_threshold` mass on one node (the
/// paper-style 0.99 by default, matching sim_config::identified_threshold).
///
/// Preconditions: as posterior_engine; trials > 0; max_messages > 0.
[[nodiscard]] std::vector<degradation_point> simulate_degradation(
    const system_params& sys, const std::vector<node_id>& compromised,
    const path_length_distribution& lengths, std::uint32_t max_messages,
    std::uint32_t trials, bool reroute_per_message, std::uint64_t seed,
    double identified_threshold = 0.99);

}  // namespace anonpath
