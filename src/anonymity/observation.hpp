#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/anonymity/types.hpp"

namespace anonpath {

/// One tuple reported by an adversary agent at a compromised node on the
/// path (paper Sec. 4, formula (2)): the node saw the message arrive from
/// `predecessor` and forwarded it to `successor` (`receiver_node` when the
/// next stop is R). Reports are kept in traversal (time) order.
struct hop_report {
  node_id reporter = 0;     ///< the compromised node
  node_id predecessor = 0;  ///< immediate predecessor on the path
  node_id successor = 0;    ///< immediate successor (may be receiver_node)

  friend bool operator==(const hop_report&, const hop_report&) = default;
};

/// Everything the adversary learns about one message: the time-ordered hop
/// reports from compromised nodes, the receiver's own report of its
/// predecessor, and — when the sender itself is compromised — the origin.
/// Compromised nodes that saw nothing report so implicitly (the adversary
/// knows the compromised set).
///
/// Two completeness flags extend the paper's full-coalition shape to the
/// weaker threat models of sim::adversary:
///   * receiver_observed == false means the receiver is honest: there is no
///     terminal report and `receiver_predecessor` is meaningless; inference
///     must marginalize over the unknown tail of the path.
///   * gapped == true means compromised-node reports may be missing (e.g. a
///     timing correlator that failed to link a capture): unobserved path
///     slots may hold compromised nodes, and silent compromised nodes are
///     not evidence of absence.
/// The defaults describe the paper's worst-case adversary exactly.
struct observation {
  std::optional<node_id> origin;       ///< set iff the sender is compromised
  std::vector<hop_report> reports;     ///< time-ordered
  node_id receiver_predecessor = 0;    ///< v = x_l (== sender when l == 0)
  bool receiver_observed = true;       ///< false: honest receiver, no v report
  bool gapped = false;                 ///< true: compromised reports may be missing

  friend bool operator==(const observation&, const observation&) = default;

  /// Canonical string key for grouping identical observations (used by the
  /// brute-force analyzer to build the exact event space and by the
  /// Monte-Carlo dedup layer to aggregate sampled observation classes).
  [[nodiscard]] std::string key() const;

  /// Writes the canonical key into `out` (replacing its contents), reusing
  /// the string's capacity — the allocation-free form for hot loops.
  void key_into(std::string& out) const;
};

/// Simulates the adversary's collection step: given the ground-truth route
/// and the sorted flag-vector of compromised nodes, produces exactly the
/// observation the paper's threat model grants the adversary.
/// `compromised` is indexed by node id (size >= N).
[[nodiscard]] observation observe(const route& r,
                                  const std::vector<bool>& compromised);

/// In-place variant of observe(): fills `out`, reusing its report buffer so
/// repeated collection steps (the Monte-Carlo sampling loop) allocate
/// nothing in steady state.
void observe_into(const route& r, const std::vector<bool>& compromised,
                  observation& out);

/// A maximal known-contiguous stretch of the path assembled from chained
/// reports: [pred, d_1, ..., d_k, succ] where the d_i are compromised
/// reporters at consecutive positions. `nodes.back()` may be receiver_node.
struct path_fragment {
  std::vector<node_id> nodes;
};

/// Chains time-ordered hop reports into fragments. Throws
/// std::invalid_argument if the reports are mutually inconsistent (e.g. a
/// report's successor is compromised but the chained report is missing) —
/// observations produced by `observe` are always consistent.
///
/// For gapped observations (obs.gapped == true) the full-coalition
/// consistency rules do not apply: a missing chained report simply closes
/// the fragment at the compromised successor, and a compromised silent
/// predecessor is legal. Gapped assembly never throws.
[[nodiscard]] std::vector<path_fragment> assemble_fragments(
    const observation& obs, const std::vector<bool>& compromised);

}  // namespace anonpath
