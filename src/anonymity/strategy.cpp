#include "src/anonymity/strategy.hpp"

namespace anonpath::protocols {

protocol_spec anonymizer() {
  return {"Anonymizer", path_length_distribution::fixed(1),
          routing_mode::source_routed};
}

protocol_spec lpwa() {
  return {"LPWA", path_length_distribution::fixed(1),
          routing_mode::source_routed};
}

protocol_spec freedom() {
  return {"Freedom", path_length_distribution::fixed(3),
          routing_mode::source_routed};
}

protocol_spec onion_routing_v1() {
  return {"OnionRouting-I", path_length_distribution::fixed(5),
          routing_mode::source_routed};
}

protocol_spec onion_routing_v2(double forward_prob, path_length max_len) {
  return {"OnionRouting-II",
          path_length_distribution::geometric(forward_prob, 1, max_len),
          routing_mode::hop_by_hop};
}

protocol_spec crowds(double forward_prob, path_length max_len) {
  return {"Crowds", path_length_distribution::geometric(forward_prob, 1, max_len),
          routing_mode::hop_by_hop};
}

protocol_spec hordes(double forward_prob, path_length max_len) {
  return {"Hordes", path_length_distribution::geometric(forward_prob, 1, max_len),
          routing_mode::hop_by_hop};
}

protocol_spec pipenet() {
  return {"PipeNet", path_length_distribution::uniform(3, 4),
          routing_mode::source_routed};
}

std::vector<protocol_spec> survey(path_length max_len) {
  return {anonymizer(),
          lpwa(),
          freedom(),
          onion_routing_v1(),
          onion_routing_v2(0.75, max_len),
          crowds(0.75, max_len),
          hordes(0.75, max_len),
          pipenet()};
}

}  // namespace anonpath::protocols
