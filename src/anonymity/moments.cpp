#include "src/anonymity/moments.hpp"

#include <cmath>

#include "src/stats/contract.hpp"

namespace anonpath {

bool moment_signature::feasible(double max_len, double tol) const noexcept {
  if (p0 < -tol || p1 < -tol || p2 < -tol) return false;
  const double tail = m3();
  if (tail < -tol) return false;
  const double tail_weight = mean - p1 - 2.0 * p2;  // = sum_{l>=3} p_l * l
  if (tail <= tol) {
    // No >=3 mass: the mean must be fully explained by lengths 0..2.
    return std::fabs(tail_weight) <= tol;
  }
  const double tail_mean = tail_weight / tail;
  return tail_mean >= 3.0 - tol && tail_mean <= max_len + tol;
}

moment_signature signature_of(const path_length_distribution& d) {
  return moment_signature{d.pmf(0), d.pmf(1), d.pmf(2), d.mean()};
}

path_length_distribution realize_signature(const moment_signature& sig,
                                           path_length max_len) {
  ANONPATH_EXPECTS(sig.feasible(max_len));
  std::vector<double> pmf(static_cast<std::size_t>(max_len) + 1, 0.0);
  pmf[0] = std::max(0.0, sig.p0);
  if (max_len >= 1) pmf[1] = std::max(0.0, sig.p1);
  if (max_len >= 2) pmf[2] = std::max(0.0, sig.p2);
  const double tail = std::max(0.0, sig.m3());
  if (tail > 0.0) {
    const double tail_mean = (sig.mean - sig.p1 - 2.0 * sig.p2) / tail;
    auto lo = static_cast<path_length>(std::floor(tail_mean));
    lo = std::max<path_length>(3, std::min<path_length>(lo, max_len));
    path_length hi = std::min<path_length>(static_cast<path_length>(lo + 1), max_len);
    if (hi == lo) {
      pmf[lo] += tail;
    } else {
      // Split so the tail's conditional mean is preserved exactly.
      const double frac_hi = tail_mean - static_cast<double>(lo);
      pmf[hi] += tail * std::min(1.0, std::max(0.0, frac_hi));
      pmf[lo] += tail * std::min(1.0, std::max(0.0, 1.0 - frac_hi));
    }
  }
  return path_length_distribution::from_pmf(std::move(pmf));
}

}  // namespace anonpath
