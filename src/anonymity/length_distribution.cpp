#include "src/anonymity/length_distribution.hpp"

#include <algorithm>
#include <cmath>

#include "src/stats/contract.hpp"
#include "src/stats/kahan.hpp"

namespace anonpath {

namespace {
std::string format_double(double x) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", x);
  return buf;
}
}  // namespace

path_length_distribution::path_length_distribution(std::vector<double> pmf,
                                                   std::string label)
    : pmf_(std::move(pmf)), label_(std::move(label)) {
  ANONPATH_EXPECTS(!pmf_.empty());
  stats::kahan_sum total;
  for (double p : pmf_) {
    ANONPATH_EXPECTS(p >= 0.0 && std::isfinite(p));
    total.add(p);
  }
  const double z = total.value();
  ANONPATH_EXPECTS(std::fabs(z - 1.0) < 1e-9);
  for (double& p : pmf_) p /= z;  // exact renormalization

  // Trim trailing zero mass so max_length() is tight; keep leading zeros so
  // indices stay equal to lengths.
  while (pmf_.size() > 1 && pmf_.back() == 0.0) pmf_.pop_back();

  min_ = 0;
  while (min_ + 1 < pmf_.size() && pmf_[min_] == 0.0) ++min_;
  max_ = static_cast<path_length>(pmf_.size() - 1);

  stats::kahan_sum mean_acc;
  for (std::size_t l = 0; l < pmf_.size(); ++l)
    mean_acc.add(static_cast<double>(l) * pmf_[l]);
  mean_ = mean_acc.value();

  stats::kahan_sum var_acc;
  for (std::size_t l = 0; l < pmf_.size(); ++l) {
    const double d = static_cast<double>(l) - mean_;
    var_acc.add(d * d * pmf_[l]);
  }
  variance_ = var_acc.value();

  cdf_.resize(pmf_.size());
  stats::kahan_sum cum;
  for (std::size_t l = 0; l < pmf_.size(); ++l) {
    cum.add(pmf_[l]);
    cdf_[l] = cum.value();
  }
  cdf_.back() = 1.0;
}

path_length_distribution path_length_distribution::fixed(path_length l) {
  std::vector<double> pmf(static_cast<std::size_t>(l) + 1, 0.0);
  pmf[l] = 1.0;
  return path_length_distribution(std::move(pmf),
                                  "F(" + std::to_string(l) + ")");
}

path_length_distribution path_length_distribution::uniform(path_length a,
                                                           path_length b) {
  ANONPATH_EXPECTS(a <= b);
  std::vector<double> pmf(static_cast<std::size_t>(b) + 1, 0.0);
  const double p = 1.0 / static_cast<double>(b - a + 1);
  for (path_length l = a; l <= b; ++l) pmf[l] = p;
  return path_length_distribution(
      std::move(pmf), "U(" + std::to_string(a) + "," + std::to_string(b) + ")");
}

path_length_distribution path_length_distribution::geometric(
    double forward_prob, path_length min_len, path_length max_len) {
  ANONPATH_EXPECTS(forward_prob >= 0.0 && forward_prob < 1.0);
  ANONPATH_EXPECTS(min_len <= max_len);
  std::vector<double> pmf(static_cast<std::size_t>(max_len) + 1, 0.0);
  double w = 1.0;
  stats::kahan_sum z;
  for (path_length l = min_len; l <= max_len; ++l) {
    pmf[l] = w;
    z.add(w);
    w *= forward_prob;
  }
  for (double& p : pmf) p /= z.value();
  return path_length_distribution(std::move(pmf),
                                  "Geom(" + format_double(forward_prob) + "," +
                                      std::to_string(min_len) + ")");
}

path_length_distribution path_length_distribution::two_point(path_length a,
                                                             double weight_a,
                                                             path_length b) {
  ANONPATH_EXPECTS(weight_a >= 0.0 && weight_a <= 1.0);
  const path_length hi = std::max(a, b);
  std::vector<double> pmf(static_cast<std::size_t>(hi) + 1, 0.0);
  pmf[a] += weight_a;
  pmf[b] += 1.0 - weight_a;
  return path_length_distribution(std::move(pmf),
                                  "TwoPoint(" + std::to_string(a) + ":" +
                                      format_double(weight_a) + "," +
                                      std::to_string(b) + ")");
}

path_length_distribution path_length_distribution::poisson(double lambda,
                                                           path_length max_len) {
  ANONPATH_EXPECTS(lambda > 0.0);
  std::vector<double> pmf(static_cast<std::size_t>(max_len) + 1, 0.0);
  double w = std::exp(-lambda);
  stats::kahan_sum z;
  for (path_length l = 0; l <= max_len; ++l) {
    pmf[l] = w;
    z.add(w);
    w *= lambda / static_cast<double>(l + 1);
  }
  for (double& p : pmf) p /= z.value();
  return path_length_distribution(std::move(pmf),
                                  "Poisson(" + format_double(lambda) + ")");
}

path_length_distribution path_length_distribution::from_pmf(
    std::vector<double> pmf, std::string label) {
  return path_length_distribution(std::move(pmf), std::move(label));
}

double path_length_distribution::pmf(path_length l) const noexcept {
  return l < pmf_.size() ? pmf_[l] : 0.0;
}

double path_length_distribution::tail_mass(path_length l) const noexcept {
  if (l == 0) return 1.0;
  if (l >= pmf_.size()) return 0.0;
  return 1.0 - cdf_[l - 1];
}

path_length path_length_distribution::sample(stats::rng& gen) const {
  const double u = gen.next_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<path_length>(it == cdf_.end() ? cdf_.size() - 1
                                                   : it - cdf_.begin());
}

}  // namespace anonpath
