#include "src/anonymity/closed_forms.hpp"

#include <cmath>

#include "src/anonymity/analytic.hpp"
#include "src/stats/contract.hpp"

namespace anonpath {

double theorem1_fixed_length(std::uint32_t node_count, path_length l) {
  ANONPATH_EXPECTS(node_count >= 5);
  ANONPATH_EXPECTS(l <= node_count - 1);
  const double n = node_count;
  if (l == 0) return 0.0;
  if (l == 1 || l == 2) return (n - 2.0) / n * std::log2(n - 2.0);
  if (l == 3)
    return (n - 3.0) / n * std::log2(n - 2.0) + 1.0 / n * std::log2(n - 3.0);
  const double ld = l;
  const double h_mid =
      std::log2(ld - 2.0) / (ld - 2.0) +
      (ld - 3.0) / (ld - 2.0) *
          std::log2((n - 4.0) * (ld - 2.0) / (ld - 3.0));
  return (n - ld) / n * std::log2(n - 2.0) + 1.0 / n * std::log2(n - 3.0) +
         (ld - 2.0) / n * h_mid;
}

double theorem2_geometric(std::uint32_t node_count, double forward_prob) {
  ANONPATH_EXPECTS(node_count >= 5);
  ANONPATH_EXPECTS(forward_prob >= 0.0 && forward_prob < 1.0);
  const double q = 1.0 - forward_prob;  // stop probability
  moment_signature sig;
  sig.p0 = 0.0;
  sig.p1 = q;
  sig.p2 = q * forward_prob;
  sig.mean = 1.0 / q;
  const system_params sys{node_count, 1};
  return anonymity_degree_from_moments(sys, sig);
}

double fixed_length_continued(std::uint32_t node_count, double mean) {
  ANONPATH_EXPECTS(node_count >= 5);
  ANONPATH_EXPECTS(mean >= 3.0 && mean <= static_cast<double>(node_count) - 1.0);
  moment_signature sig;
  sig.p0 = sig.p1 = sig.p2 = 0.0;
  sig.mean = mean;
  const system_params sys{node_count, 1};
  return anonymity_degree_from_moments(sys, sig);
}

double theorem3_uniform(std::uint32_t node_count, path_length a, path_length b) {
  ANONPATH_EXPECTS(node_count >= 5);
  ANONPATH_EXPECTS(a <= b);
  ANONPATH_EXPECTS(b <= node_count - 1);
  if (a >= 3) {
    // Theorem 3 proper: only the mean matters once no mass sits below 3.
    return fixed_length_continued(node_count,
                                  0.5 * (static_cast<double>(a) + b));
  }
  const system_params sys{node_count, 1};
  return anonymity_degree(sys, path_length_distribution::uniform(a, b));
}

}  // namespace anonpath
