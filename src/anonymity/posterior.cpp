#include "src/anonymity/posterior.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/stats/contract.hpp"
#include "src/stats/kahan.hpp"
#include "src/stats/logspace.hpp"

namespace anonpath {

posterior_engine::posterior_engine(system_params sys,
                                   std::vector<node_id> compromised,
                                   path_length_distribution lengths)
    : sys_(sys),
      compromised_(std::move(compromised)),
      lengths_(std::move(lengths)) {
  ANONPATH_EXPECTS(sys_.valid());
  ANONPATH_EXPECTS(compromised_.size() == sys_.compromised_count);
  ANONPATH_EXPECTS(lengths_.max_length() <= sys_.node_count - 1);
  compromised_flag_.assign(sys_.node_count, false);
  for (node_id c : compromised_) {
    ANONPATH_EXPECTS(c < sys_.node_count);
    ANONPATH_EXPECTS(!compromised_flag_[c]);
    compromised_flag_[c] = true;
  }
  const auto max_l = lengths_.max_length();

  // ln i! table sized for every argument the likelihood can present: falling
  // factorials of the honest pool (<= N) and binomials over T + g - 1 slots
  // (<= max_l + 2 + C + 1). Built with a compensated running sum so table
  // lookups match the seed's per-call Kahan summation to ~1 ulp.
  const std::size_t fact_max =
      std::max<std::size_t>(sys_.node_count,
                            static_cast<std::size_t>(max_l) + 3 +
                                sys_.compromised_count) +
      1;
  log_fact_.resize(fact_max + 1);
  stats::kahan_sum fact_acc;
  log_fact_[0] = 0.0;
  for (std::size_t i = 1; i <= fact_max; ++i) {
    fact_acc.add(std::log(static_cast<double>(i)));
    log_fact_[i] = fact_acc.value();
  }

  log_pl_.resize(max_l + 1);
  log_paths_per_len_.resize(max_l + 1);
  for (path_length l = 0; l <= max_l; ++l) {
    const double p = lengths_.pmf(l);
    log_pl_[l] = p > 0.0 ? std::log(p) : stats::log_zero();
    log_paths_per_len_[l] = table_log_falling_factorial(sys_.node_count - 1, l);
  }

  // Consistent layouts satisfy span <= l + 2 and gaps <= C + 1; anything
  // outside these bounds evaluates to zero likelihood without caching.
  span_cache_max_ = static_cast<long long>(max_l) + 2;
  gap_cache_max_ = static_cast<long long>(sys_.compromised_count) + 1;
  const std::size_t cache_size =
      static_cast<std::size_t>(span_cache_max_ + 1) *
      static_cast<std::size_t>(gap_cache_max_ + 1) *
      static_cast<std::size_t>(sys_.node_count + 1);
  likelihood_cache_.assign(cache_size,
                           std::numeric_limits<double>::quiet_NaN());
  seen_stamp_.assign(sys_.node_count, 0);
}

posterior_engine::block_layout posterior_engine::layout_for(
    const std::vector<path_fragment>& fragments, node_id v, bool v_known,
    bool gapped, node_id s) const {
  block_layout lay;
  if (s >= sys_.node_count) return lay;  // inconsistent
  // Without gaps a compromised sender would have filed an origin report;
  // with gaps its silence proves nothing, so it stays a candidate.
  if (!gapped && compromised_flag_[s]) return lay;

  // Whether the observation already pins the end of the path: the last
  // fragment's reporter saw itself forward to R.
  const bool pinned =
      !fragments.empty() && fragments.back().nodes.back() == receiver_node;

  if (v_known) {
    const bool v_compromised = v < sys_.node_count && compromised_flag_[v];
    if (!gapped && v_compromised && !pinned) {
      // Full collection: a compromised terminal relay must have reported.
      return lay;
    }
    if (pinned) {
      // The pinned tail must name v as the receiver's predecessor (for an
      // honest v this can never hold — the reporter in that slot is
      // compromised — which reproduces the historical consistency rule).
      const auto& last = fragments.back().nodes;
      if (last.size() < 2 || last[last.size() - 2] != v) return lay;
    }
  }
  // R may only terminate the path: any earlier fragment claiming to reach R
  // describes no simple path at all. (Only the new observation shapes can
  // present such inputs; full-coalition assembly cannot produce them.)
  if (gapped || !v_known) {
    for (std::size_t f = 0; f + 1 < fragments.size(); ++f)
      if (fragments[f].nodes.back() == receiver_node) return lay;
    for (const auto& frag : fragments)
      for (std::size_t i = 0; i + 1 < frag.nodes.size(); ++i)
        if (frag.nodes[i] == receiver_node) return lay;
  }

  // Stream over the conceptual block list — [s], fragments..., terminal
  // block — merging blocks whose boundary nodes coincide (same occurrence on
  // a simple path) and checking node distinctness with the stamp array; no
  // per-call allocation.
  if (++stamp_ == 0) {  // generation wrap: reset lazily, once per ~4e9 calls
    std::fill(seen_stamp_.begin(), seen_stamp_.end(), 0u);
    stamp_ = 1;
  }
  long long span = 0;
  long long honest_observed = 0;
  long long distinct_observed = 0;
  long long merged_blocks = 0;
  bool first = true;
  bool ok = true;
  node_id prev_back = receiver_node;
  const auto visit = [&](const node_id* nodes, std::size_t len) {
    std::size_t start = 0;
    if (!first && prev_back != receiver_node && prev_back == nodes[0]) {
      start = 1;  // merged with the previous block; shared node already seen
    } else {
      ++merged_blocks;
    }
    first = false;
    for (std::size_t i = start; i < len; ++i) {
      const node_id x = nodes[i];
      ++span;
      if (x == receiver_node) continue;
      if (x >= sys_.node_count || seen_stamp_[x] == stamp_) {
        ok = false;
        return;
      }
      seen_stamp_[x] = stamp_;
      ++distinct_observed;
      if (!compromised_flag_[x]) ++honest_observed;
    }
    prev_back = nodes[len - 1];
  };

  visit(&s, 1);
  for (const auto& f : fragments) {
    if (!ok) return lay;
    visit(f.nodes.data(), f.nodes.size());
  }
  // Terminal block, unless the observation already pinned the path end:
  // [v, R] when the receiver reported, a lone [R] when it is honest (v is
  // then just one more unobserved slot in the final gap).
  if (!pinned && ok) {
    if (v_known) {
      const node_id terminal[2] = {v, receiver_node};
      visit(terminal, 2);
    } else {
      const node_id terminal[1] = {receiver_node};
      visit(terminal, 1);
    }
  }
  if (!ok) return lay;

  lay.consistent = true;
  lay.span_total = span;
  lay.gap_count = merged_blocks - 1;
  // Unobserved slots draw from the honest unobserved pool under full
  // collection; a lossy collector cannot exclude its silent compromised
  // peers, so there the pool is every node not pinned to an observed slot.
  lay.pool_size =
      gapped ? static_cast<long long>(sys_.node_count) - distinct_observed
             : static_cast<long long>(sys_.node_count) -
                   static_cast<long long>(sys_.compromised_count) -
                   honest_observed;
  return lay;
}

double posterior_engine::log_likelihood_from_layout_uncached(
    const block_layout& lay) const {
  if (!lay.consistent) return stats::log_zero();
  double acc = stats::log_zero();
  const auto max_l = lengths_.max_length();
  for (path_length l = lengths_.min_length(); l <= max_l; ++l) {
    if (log_pl_[l] == stats::log_zero()) continue;
    const long long t = static_cast<long long>(l) + 2 - lay.span_total;
    if (t < 0) continue;
    if (lay.gap_count == 0 && t != 0) continue;
    if (t > lay.pool_size) continue;
    double log_count = table_log_falling_factorial(lay.pool_size, t);
    if (lay.gap_count >= 1)
      log_count += table_log_binomial(t + lay.gap_count - 1, lay.gap_count - 1);
    acc = stats::log_add_exp(acc,
                             log_pl_[l] + log_count - log_paths_per_len_[l]);
  }
  return acc;
}

double posterior_engine::log_likelihood_from_layout(
    const block_layout& lay) const {
  if (!lay.consistent) return stats::log_zero();
  if (lay.span_total > span_cache_max_ || lay.gap_count > gap_cache_max_ ||
      lay.pool_size < 0 ||
      lay.pool_size > static_cast<long long>(sys_.node_count)) {
    ++memo_misses_;
    return log_likelihood_from_layout_uncached(lay);
  }
  const std::size_t idx =
      (static_cast<std::size_t>(lay.span_total) *
           static_cast<std::size_t>(gap_cache_max_ + 1) +
       static_cast<std::size_t>(lay.gap_count)) *
          static_cast<std::size_t>(sys_.node_count + 1) +
      static_cast<std::size_t>(lay.pool_size);
  double& slot = likelihood_cache_[idx];
  if (std::isnan(slot)) {
    ++memo_misses_;
    slot = log_likelihood_from_layout_uncached(lay);
  } else {
    ++memo_hits_;
  }
  return slot;
}

double posterior_engine::log_likelihood(const observation& obs,
                                        node_id s) const {
  if (obs.origin) {
    // A compromised sender is observed directly; only that hypothesis has
    // positive likelihood (magnitude does not matter for the posterior).
    return s == *obs.origin ? 0.0 : stats::log_zero();
  }
  const auto fragments = assemble_fragments(obs, compromised_flag_);
  return log_likelihood_from_layout(layout_for(
      fragments, obs.receiver_predecessor, obs.receiver_observed, obs.gapped,
      s));
}

bool posterior_engine::explainable(const observation& obs) const {
  if (obs.origin) return *obs.origin < sys_.node_count;
  std::vector<path_fragment> fragments;
  try {
    fragments = assemble_fragments(obs, compromised_flag_);
  } catch (const std::invalid_argument&) {
    return false;
  }
  for (node_id s = 0; s < sys_.node_count; ++s) {
    const double ll = log_likelihood_from_layout(
        layout_for(fragments, obs.receiver_predecessor, obs.receiver_observed,
                   obs.gapped, s));
    if (ll != stats::log_zero()) return true;
  }
  return false;
}

std::vector<double> posterior_engine::sender_posterior_reference(
    const observation& obs) const {
  const auto n = sys_.node_count;
  std::vector<double> post(n, 0.0);
  if (obs.origin) {
    post[*obs.origin] = 1.0;
    return post;
  }
  const auto fragments = assemble_fragments(obs, compromised_flag_);
  std::vector<double> logw(n, stats::log_zero());
  for (node_id s = 0; s < n; ++s) {
    // Deliberately bypasses the memo so tests can pit the cached fast path
    // against a from-scratch evaluation.
    logw[s] = log_likelihood_from_layout_uncached(
        layout_for(fragments, obs.receiver_predecessor, obs.receiver_observed,
                   obs.gapped, s));
  }
  const double z = stats::log_sum_exp(logw);
  ANONPATH_ENSURES(std::isfinite(z));
  for (node_id s = 0; s < n; ++s) post[s] = std::exp(logw[s] - z);
  return post;
}

std::vector<double> posterior_engine::sender_posterior(
    const observation& obs) const {
  const auto n = sys_.node_count;
  std::vector<double> post(n, 0.0);
  if (obs.origin) {
    post[*obs.origin] = 1.0;
    return post;
  }
  const auto fragments = assemble_fragments(obs, compromised_flag_);
  const node_id v = obs.receiver_predecessor;
  const bool v_known = obs.receiver_observed;

  // Likelihood classes: (a) the first fragment's predecessor (may be the
  // sender at position 0); (b) v itself (direct-send hypothesis); (c) any
  // node appearing in a block (zero — duplicate occurrence); (d) all other
  // unobserved candidates share one generic likelihood. Under full
  // collection compromised nodes are special (excluded without an origin
  // report); under gapped collection an unobserved compromised node is as
  // generic as any other candidate.
  class_scratch_.assign(n, 0);
  std::vector<char>& special = class_scratch_;
  if (!obs.gapped)
    for (node_id c : compromised_) special[c] = 1;
  for (const auto& f : fragments)
    for (node_id x : f.nodes)
      if (x != receiver_node && x < n) special[x] = 1;
  if (v_known && v < n) special[v] = 1;

  logw_scratch_.assign(n, stats::log_zero());
  std::vector<double>& logw = logw_scratch_;
  double generic = stats::log_zero();
  bool generic_done = false;
  for (node_id s = 0; s < n; ++s) {
    if (special[s]) continue;
    if (!generic_done) {
      generic = log_likelihood_from_layout(
          layout_for(fragments, v, v_known, obs.gapped, s));
      generic_done = true;
    }
    logw[s] = generic;
  }
  // Special candidates evaluated individually (first-fragment predecessor,
  // v, and observed nodes which come out inconsistent).
  for (node_id s = 0; s < n; ++s) {
    if (!special[s]) continue;
    if (!obs.gapped && compromised_flag_[s])
      continue;  // no origin report => not the sender
    logw[s] = log_likelihood_from_layout(
        layout_for(fragments, v, v_known, obs.gapped, s));
  }

  const double z = stats::log_sum_exp(logw);
  ANONPATH_ENSURES(std::isfinite(z));
  for (node_id s = 0; s < n; ++s) post[s] = std::exp(logw[s] - z);
  return post;
}

}  // namespace anonpath
