#include "src/anonymity/posterior.hpp"

#include <algorithm>
#include <cmath>

#include "src/stats/contract.hpp"
#include "src/stats/logspace.hpp"

namespace anonpath {

posterior_engine::posterior_engine(system_params sys,
                                   std::vector<node_id> compromised,
                                   path_length_distribution lengths)
    : sys_(sys),
      compromised_(std::move(compromised)),
      lengths_(std::move(lengths)) {
  ANONPATH_EXPECTS(sys_.valid());
  ANONPATH_EXPECTS(compromised_.size() == sys_.compromised_count);
  ANONPATH_EXPECTS(lengths_.max_length() <= sys_.node_count - 1);
  compromised_flag_.assign(sys_.node_count, false);
  for (node_id c : compromised_) {
    ANONPATH_EXPECTS(c < sys_.node_count);
    ANONPATH_EXPECTS(!compromised_flag_[c]);
    compromised_flag_[c] = true;
  }
  const auto max_l = lengths_.max_length();
  log_pl_.resize(max_l + 1);
  log_paths_per_len_.resize(max_l + 1);
  for (path_length l = 0; l <= max_l; ++l) {
    const double p = lengths_.pmf(l);
    log_pl_[l] = p > 0.0 ? std::log(p) : stats::log_zero();
    log_paths_per_len_[l] =
        stats::log_falling_factorial(sys_.node_count - 1, l);
  }
}

posterior_engine::block_layout posterior_engine::layout_for(
    const std::vector<path_fragment>& fragments, node_id v, node_id s) const {
  block_layout lay;
  if (s >= sys_.node_count || compromised_flag_[s]) return lay;  // inconsistent

  // Assemble the ordered block list: [s], fragments..., terminal block.
  std::vector<std::vector<node_id>> blocks;
  blocks.push_back({s});
  for (const auto& f : fragments) blocks.push_back(f.nodes);

  const bool v_compromised = v < sys_.node_count && compromised_flag_[v];
  if (v_compromised) {
    // The receiver's predecessor reported; its fragment must already end the
    // path: last fragment = [..., v, receiver_node].
    if (fragments.empty()) return lay;
    const auto& last = fragments.back().nodes;
    if (last.size() < 2 || last.back() != receiver_node ||
        last[last.size() - 2] != v)
      return lay;
  } else {
    // No fragment may claim to end the path when v is honest.
    if (!fragments.empty() && fragments.back().nodes.back() == receiver_node)
      return lay;
    blocks.push_back({v, receiver_node});
  }

  // Forced merges: equal boundary nodes are the same path occurrence on a
  // simple path.
  std::vector<std::vector<node_id>> merged;
  merged.push_back(blocks.front());
  for (std::size_t i = 1; i < blocks.size(); ++i) {
    auto& prev = merged.back();
    const auto& cur = blocks[i];
    if (prev.back() != receiver_node && prev.back() == cur.front()) {
      prev.insert(prev.end(), cur.begin() + 1, cur.end());
    } else {
      merged.push_back(cur);
    }
  }

  // Distinctness across all block nodes (simple path); count honest
  // observed nodes for the pool size.
  std::vector<node_id> seen;
  long long honest_observed = 0;
  long long span = 0;
  for (const auto& b : merged) {
    for (node_id x : b) {
      ++span;
      if (x == receiver_node) continue;
      if (x >= sys_.node_count) return lay;
      if (std::find(seen.begin(), seen.end(), x) != seen.end()) return lay;
      seen.push_back(x);
      if (!compromised_flag_[x]) ++honest_observed;
    }
  }

  lay.consistent = true;
  lay.span_total = span;
  lay.gap_count = static_cast<long long>(merged.size()) - 1;
  lay.pool_size = static_cast<long long>(sys_.node_count) -
                  static_cast<long long>(sys_.compromised_count) -
                  honest_observed;
  return lay;
}

double posterior_engine::log_likelihood_from_layout(
    const block_layout& lay) const {
  if (!lay.consistent) return stats::log_zero();
  double acc = stats::log_zero();
  const auto max_l = lengths_.max_length();
  for (path_length l = lengths_.min_length(); l <= max_l; ++l) {
    if (log_pl_[l] == stats::log_zero()) continue;
    const long long t = static_cast<long long>(l) + 2 - lay.span_total;
    if (t < 0) continue;
    if (lay.gap_count == 0 && t != 0) continue;
    if (t > lay.pool_size) continue;
    double log_count = stats::log_falling_factorial(lay.pool_size, t);
    if (lay.gap_count >= 1)
      log_count += stats::log_binomial(t + lay.gap_count - 1, lay.gap_count - 1);
    acc = stats::log_add_exp(acc,
                             log_pl_[l] + log_count - log_paths_per_len_[l]);
  }
  return acc;
}

double posterior_engine::log_likelihood(const observation& obs,
                                        node_id s) const {
  if (obs.origin) {
    // A compromised sender is observed directly; only that hypothesis has
    // positive likelihood (magnitude does not matter for the posterior).
    return s == *obs.origin ? 0.0 : stats::log_zero();
  }
  const auto fragments = assemble_fragments(obs, compromised_flag_);
  return log_likelihood_from_layout(
      layout_for(fragments, obs.receiver_predecessor, s));
}

std::vector<double> posterior_engine::sender_posterior_reference(
    const observation& obs) const {
  const auto n = sys_.node_count;
  std::vector<double> post(n, 0.0);
  if (obs.origin) {
    post[*obs.origin] = 1.0;
    return post;
  }
  const auto fragments = assemble_fragments(obs, compromised_flag_);
  std::vector<double> logw(n, stats::log_zero());
  for (node_id s = 0; s < n; ++s) {
    logw[s] = log_likelihood_from_layout(
        layout_for(fragments, obs.receiver_predecessor, s));
  }
  const double z = stats::log_sum_exp(logw);
  ANONPATH_ENSURES(std::isfinite(z));
  for (node_id s = 0; s < n; ++s) post[s] = std::exp(logw[s] - z);
  return post;
}

std::vector<double> posterior_engine::sender_posterior(
    const observation& obs) const {
  const auto n = sys_.node_count;
  std::vector<double> post(n, 0.0);
  if (obs.origin) {
    post[*obs.origin] = 1.0;
    return post;
  }
  const auto fragments = assemble_fragments(obs, compromised_flag_);
  const node_id v = obs.receiver_predecessor;

  // Likelihood classes: (a) the first fragment's predecessor (may be the
  // sender at position 0); (b) v itself (direct-send hypothesis); (c) any
  // node appearing in a block (zero — duplicate occurrence); (d) all other
  // honest nodes share one generic likelihood.
  std::vector<char> special(n, 0);
  for (node_id c : compromised_) special[c] = 1;
  for (const auto& f : fragments)
    for (node_id x : f.nodes)
      if (x != receiver_node && x < n) special[x] = 1;
  if (v < n) special[v] = 1;

  std::vector<double> logw(n, stats::log_zero());
  double generic = stats::log_zero();
  bool generic_done = false;
  for (node_id s = 0; s < n; ++s) {
    if (special[s]) continue;
    if (!generic_done) {
      generic = log_likelihood_from_layout(layout_for(fragments, v, s));
      generic_done = true;
    }
    logw[s] = generic;
  }
  // Special candidates evaluated individually (first-fragment predecessor,
  // v, and observed nodes which come out inconsistent).
  for (node_id s = 0; s < n; ++s) {
    if (!special[s]) continue;
    if (compromised_flag_[s]) continue;  // no origin report => not the sender
    logw[s] = log_likelihood_from_layout(layout_for(fragments, v, s));
  }

  const double z = stats::log_sum_exp(logw);
  ANONPATH_ENSURES(std::isfinite(z));
  for (node_id s = 0; s < n; ++s) post[s] = std::exp(logw[s] - z);
  return post;
}

}  // namespace anonpath
