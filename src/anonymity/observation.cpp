#include "src/anonymity/observation.hpp"

#include <stdexcept>

#include "src/stats/contract.hpp"

namespace anonpath {

std::string observation::key() const {
  std::string out;
  out.reserve(reports.size() * 16 + 32);
  if (origin) {
    out += "O";
    out += std::to_string(*origin);
  }
  for (const auto& r : reports) {
    out += "|";
    out += std::to_string(r.reporter);
    out += ",";
    out += std::to_string(r.predecessor);
    out += ",";
    out += std::to_string(r.successor);
  }
  out += "|R";
  out += std::to_string(receiver_predecessor);
  return out;
}

observation observe(const route& r, const std::vector<bool>& compromised) {
  ANONPATH_EXPECTS(r.sender < compromised.size());
  observation obs;
  if (compromised[r.sender]) obs.origin = r.sender;
  const auto l = r.length();
  for (path_length i = 0; i < l; ++i) {
    const node_id here = r.hops[i];
    ANONPATH_EXPECTS(here < compromised.size());
    if (compromised[here]) {
      hop_report rep;
      rep.reporter = here;
      rep.predecessor = (i == 0) ? r.sender : r.hops[i - 1];
      rep.successor = (i + 1 == l) ? receiver_node : r.hops[i + 1];
      obs.reports.push_back(rep);
    }
  }
  obs.receiver_predecessor = (l == 0) ? r.sender : r.hops[l - 1];
  return obs;
}

std::vector<path_fragment> assemble_fragments(
    const observation& obs, const std::vector<bool>& compromised) {
  const auto is_compromised = [&](node_id v) {
    return v != receiver_node && v < compromised.size() && compromised[v];
  };

  std::vector<path_fragment> fragments;
  std::size_t i = 0;
  while (i < obs.reports.size()) {
    path_fragment frag;
    frag.nodes.push_back(obs.reports[i].predecessor);
    // Extend through consecutive compromised positions: when report i's
    // successor is itself compromised, the very next report (time order)
    // must be that node observing reporter i as its predecessor.
    for (;;) {
      const auto& rep = obs.reports[i];
      frag.nodes.push_back(rep.reporter);
      if (!is_compromised(rep.successor)) {
        frag.nodes.push_back(rep.successor);
        ++i;
        break;
      }
      if (i + 1 >= obs.reports.size())
        throw std::invalid_argument(
            "observation: successor is compromised but its report is missing");
      const auto& next = obs.reports[i + 1];
      if (next.reporter != rep.successor || next.predecessor != rep.reporter)
        throw std::invalid_argument(
            "observation: reports do not chain consistently");
      ++i;
    }
    // The interior boundary (pred of the first compromised stretch) must be
    // honest: a compromised predecessor would itself have reported and been
    // chained into the previous fragment.
    if (is_compromised(frag.nodes.front()) &&
        !(fragments.empty() && obs.origin &&
          frag.nodes.front() == *obs.origin))
      throw std::invalid_argument(
          "observation: fragment predecessor is compromised but silent");
    fragments.push_back(std::move(frag));
  }
  return fragments;
}

}  // namespace anonpath
