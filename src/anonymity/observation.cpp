#include "src/anonymity/observation.hpp"

#include <charconv>
#include <stdexcept>

#include "src/stats/contract.hpp"

namespace anonpath {

namespace {

/// Appends the decimal form of v without the temporary std::to_string makes.
void append_number(std::string& out, node_id v) {
  char buf[12];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, res.ptr);
}

}  // namespace

void observation::key_into(std::string& out) const {
  out.clear();
  if (origin) {
    out += 'O';
    append_number(out, *origin);
  }
  for (const auto& r : reports) {
    out += '|';
    append_number(out, r.reporter);
    out += ',';
    append_number(out, r.predecessor);
    out += ',';
    append_number(out, r.successor);
  }
  out += '|';
  out += 'R';
  // Full-coalition observations keep their historical key byte-for-byte;
  // the weaker shapes get distinguishing suffixes so dedup layers never
  // conflate observations of different information content.
  if (receiver_observed) {
    append_number(out, receiver_predecessor);
  } else {
    out += '?';
  }
  if (gapped) out += "|G";
}

std::string observation::key() const {
  std::string out;
  out.reserve(reports.size() * 16 + 32);
  key_into(out);
  return out;
}

void observe_into(const route& r, const std::vector<bool>& compromised,
                  observation& out) {
  ANONPATH_EXPECTS(r.sender < compromised.size());
  out.origin.reset();
  out.reports.clear();
  if (compromised[r.sender]) out.origin = r.sender;
  const auto l = r.length();
  for (path_length i = 0; i < l; ++i) {
    const node_id here = r.hops[i];
    ANONPATH_EXPECTS(here < compromised.size());
    if (compromised[here]) {
      hop_report rep;
      rep.reporter = here;
      rep.predecessor = (i == 0) ? r.sender : r.hops[i - 1];
      rep.successor = (i + 1 == l) ? receiver_node : r.hops[i + 1];
      out.reports.push_back(rep);
    }
  }
  out.receiver_predecessor = (l == 0) ? r.sender : r.hops[l - 1];
}

observation observe(const route& r, const std::vector<bool>& compromised) {
  observation obs;
  observe_into(r, compromised, obs);
  return obs;
}

std::vector<path_fragment> assemble_fragments(
    const observation& obs, const std::vector<bool>& compromised) {
  const auto is_compromised = [&](node_id v) {
    return v != receiver_node && v < compromised.size() && compromised[v];
  };

  std::vector<path_fragment> fragments;
  std::size_t i = 0;
  while (i < obs.reports.size()) {
    path_fragment frag;
    frag.nodes.push_back(obs.reports[i].predecessor);
    // Extend through consecutive compromised positions: when report i's
    // successor is itself compromised, the very next report (time order)
    // must be that node observing reporter i as its predecessor.
    for (;;) {
      const auto& rep = obs.reports[i];
      frag.nodes.push_back(rep.reporter);
      if (!is_compromised(rep.successor)) {
        frag.nodes.push_back(rep.successor);
        ++i;
        break;
      }
      const bool chains = i + 1 < obs.reports.size() &&
                          obs.reports[i + 1].reporter == rep.successor &&
                          obs.reports[i + 1].predecessor == rep.reporter;
      if (!chains) {
        // Gapped collection: the successor's own report never arrived (or
        // never linked); the fragment still ends with a known boundary.
        if (obs.gapped) {
          frag.nodes.push_back(rep.successor);
          ++i;
          break;
        }
        if (i + 1 >= obs.reports.size())
          throw std::invalid_argument(
              "observation: successor is compromised but its report is missing");
        throw std::invalid_argument(
            "observation: reports do not chain consistently");
      }
      ++i;
    }
    // The interior boundary (pred of the first compromised stretch) must be
    // honest: a compromised predecessor would itself have reported and been
    // chained into the previous fragment. A gapped observation carries no
    // such guarantee — silence is not evidence there.
    if (!obs.gapped && is_compromised(frag.nodes.front()) &&
        !(fragments.empty() && obs.origin &&
          frag.nodes.front() == *obs.origin))
      throw std::invalid_argument(
          "observation: fragment predecessor is compromised but silent");
    fragments.push_back(std::move(frag));
  }
  return fragments;
}

}  // namespace anonpath
