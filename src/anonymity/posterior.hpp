#pragma once

#include <cstdint>
#include <vector>

#include "src/anonymity/length_distribution.hpp"
#include "src/anonymity/observation.hpp"
#include "src/anonymity/types.hpp"

namespace anonpath {

/// Exact Bayesian sender inference for an arbitrary number of compromised
/// nodes (paper Sec. 4, Eq. (3)/(7)/(8)), for simple (cycle-free) rerouting
/// paths on a clique.
///
/// The adversary's reports chain into path fragments; for a hypothesis
/// (sender s, length l) the number of consistent paths factorizes into a
/// composition count for the unobserved gaps times a falling factorial for
/// their contents (DESIGN.md Sec. 2.2), evaluated in log space:
///
///   count(s, l) = C(T + g - 1, g - 1) * (|U|)_T
///
/// with T unobserved slots, g gaps between merged observation blocks, and U
/// the pool of unobserved honest nodes.
///
/// Hot-path engineering: the constructor precomputes a log-factorial table
/// covering every falling factorial / binomial the likelihood can touch, and
/// likelihoods are memoized by their (span, gaps, pool) layout signature —
/// distinct observations overwhelmingly collapse onto few layouts, so the
/// combinatorial sum runs once per layout class. The memo and the scratch
/// buffers behind layout_for make a single engine instance NOT safe for
/// concurrent use; give each thread its own (cheap) copy, as the
/// Monte-Carlo engine does.
class posterior_engine {
 public:
  /// Preconditions: sys.valid(); `compromised` lists distinct node ids
  /// < node_count, |compromised| == sys.compromised_count; distribution
  /// support fits simple paths (max_length <= N-1).
  posterior_engine(system_params sys, std::vector<node_id> compromised,
                   path_length_distribution lengths);

  /// Posterior Pr(S = i | obs) over all N nodes. Uses the class-collapsed
  /// fast path (identical likelihood for all unobserved candidates).
  [[nodiscard]] std::vector<double> sender_posterior(
      const observation& obs) const;

  /// Slow reference implementation evaluating every candidate from scratch;
  /// used by tests to validate the fast path.
  [[nodiscard]] std::vector<double> sender_posterior_reference(
      const observation& obs) const;

  /// ln Pr(obs | S = s); -infinity when inconsistent. Exact (no dropped
  /// s-independent factors), so values are comparable across observations.
  [[nodiscard]] double log_likelihood(const observation& obs, node_id s) const;

  [[nodiscard]] const system_params& system() const noexcept { return sys_; }
  [[nodiscard]] const std::vector<node_id>& compromised() const noexcept {
    return compromised_;
  }
  [[nodiscard]] const path_length_distribution& lengths() const noexcept {
    return lengths_;
  }

 private:
  system_params sys_;
  std::vector<node_id> compromised_;
  std::vector<bool> compromised_flag_;
  path_length_distribution lengths_;
  std::vector<double> log_pl_;              // ln pmf per length
  std::vector<double> log_paths_per_len_;   // ln (N-1)_l per length
  std::vector<double> log_fact_;            // ln i!, compensated cumulative

  struct block_layout {
    bool consistent = false;
    long long span_total = 0;   // occupied extended-path slots
    long long gap_count = 0;    // number of gaps between blocks
    long long pool_size = 0;    // |U| unobserved honest nodes
  };

  // Likelihood memo keyed by (span_total, gap_count, pool_size); NaN marks
  // an empty slot (-inf is a legitimate cached value). Mutable scratch for
  // layout_for's distinctness scan: a node is "seen" iff its stamp equals
  // the current generation, so resetting is a single counter increment.
  long long span_cache_max_ = 0;
  long long gap_cache_max_ = 0;
  mutable std::vector<double> likelihood_cache_;
  mutable std::vector<std::uint32_t> seen_stamp_;
  mutable std::uint32_t stamp_ = 0;

  /// ln n!/(n-k)! and ln C(n, k) from the precomputed table.
  [[nodiscard]] double table_log_falling_factorial(long long n,
                                                   long long k) const {
    return log_fact_[static_cast<std::size_t>(n)] -
           log_fact_[static_cast<std::size_t>(n - k)];
  }
  [[nodiscard]] double table_log_binomial(long long n, long long k) const {
    return log_fact_[static_cast<std::size_t>(n)] -
           log_fact_[static_cast<std::size_t>(k)] -
           log_fact_[static_cast<std::size_t>(n - k)];
  }

  /// Builds the merged block layout for hypothesis sender `s`.
  [[nodiscard]] block_layout layout_for(
      const std::vector<path_fragment>& fragments, node_id v, node_id s) const;

  /// ln Pr(obs | s) given a prebuilt layout; memoized on the layout key.
  [[nodiscard]] double log_likelihood_from_layout(const block_layout& lay) const;

  /// The memo's backing computation (also used directly by the reference
  /// path so tests exercise the memo against an uncached evaluation).
  [[nodiscard]] double log_likelihood_from_layout_uncached(
      const block_layout& lay) const;
};

}  // namespace anonpath
