#pragma once

/// \file api.hpp
/// Umbrella header for the anonpath core library — everything a downstream
/// user needs to score, compare, optimize, and attack rerouting-based
/// anonymous communication strategies (Guan et al., ICDCS 2002).
///
/// Layering (low to high):
///   types            node ids, system parameters, routes
///   entropy          Shannon machinery on posteriors
///   length_distribution / moments   the strategy space and its 4-scalar
///                                   sufficient statistic
///   analytic / closed_forms         exact C=1 anonymity degree (all paper
///                                   figures) and Theorems 1-3
///   observation / posterior         the threat model and general-C exact
///                                   Bayesian sender inference
///   brute_force / cyclic            exhaustive oracles (simple and
///                                   cycle-allowing paths)
///   path_sampler / monte_carlo      sampled estimation at scale
///   multi_message                   cross-message degradation attacks
///   optimizer                       the paper's Sec. 5.4 optimal strategy
///   strategy                        presets for every surveyed protocol
///
/// The topology axis lives in src/net: net::topology is a weighted
/// rerouting graph (complete — the paper's clique and the default
/// everywhere — plus ring, random_regular, tiered, trust_weighted) with a
/// net::churn_model taking nodes down/up on seeded renewal processes.
/// Routing on a graph is the weighted random walk (the paper's
/// "complicated" path model is exactly the clique instance);
/// net::graph_oracle enumerates it exhaustively on small graphs,
/// net::topology_posterior_engine performs exact restricted-path sender
/// inference at simulation scale (transfer-matrix DP over honest-interior
/// walk segments), and net::estimate_topology_degree is the walk-model
/// Monte-Carlo H* estimator. The conformance suite pins oracle and engine
/// to each other, and the clique instance to cyclic_brute_force_analyzer.
/// For large graphs, net::topology::make_csr builds the same graph in flat
/// compressed-sparse-row arrays (adjacency views are element-identical
/// across storage modes; million-node construction is sub-second), and
/// src/net/route_plan.hpp adds planning on top of the views: binary-heap
/// Dijkstra, Yen k-shortest loopless paths, connected components (whole
/// and masked), and net::route_planner — the source-routed kpaths model
/// (exit uniform, path ~ 1/cost among the k best) whose scoring uses
/// net::approx_topology_posterior, the restricted-path DP pruned to the
/// k-path support and pinned to the exact engine when the support is full.
///
/// The longitudinal axis lives in src/workload and src/attack: a
/// workload::population is a seeded, population-scale traffic model — M
/// persistent (sender -> receiver) pairs embedded in background traffic
/// drawn from uniform/Zipf popularity laws, emitted in threshold or timed
/// mix rounds, each round a pure function of (seed, index) via
/// stats::rng::stream so generation is thread-safe, order-free, and never
/// materialized in full (1e5 users x 1e4 rounds streams in well under a
/// second). workload::accumulate_cooccurrence shards the rounds over a
/// stats::thread_pool and merges in fixed shard order — bit-identical for
/// every thread count. attack::disclosure_attack is the inference family
/// over those rounds (mirroring sim::adversary_model):
/// attack::intersection_attack (exact candidate-set intersection, plus the
/// minimum_hitting_sets oracle the statistical attacks are
/// conformance-pinned against), attack::sda_attack (background-subtracted
/// receiver-frequency estimation with z-score confidence, seedable from the
/// parallel accumulator), and attack::sequential_bayes_attack (per-round
/// Bayesian fusion whose soft-weight mode consumes per-message
/// posterior_engine / topology_posterior_engine scores — the seam between
/// the paper's per-message analysis and long-term disclosure). All report
/// entropy / identified trajectories per round.
///
/// Disclosure inference is *online*: attack::online_attack
/// (src/attack/online.hpp) ingests rounds as they arrive and exposes the
/// posterior, a stride-sampled trajectory, and the identified round at any
/// stream position — the offline post-processors (run_workload_attack, the
/// simulator's session scoring) are implemented on it, so online equals
/// offline bit for bit by construction. Its state backend is selectable:
/// `exact` keeps the dense engines above; `sketch`
/// (attack::sketch_sda_attack, for the counting attack) replaces the dense
/// per-receiver counters with count-min sketches plus a weighted bottom-k
/// candidate reservoir (src/workload/sketch.hpp), making session memory
/// independent of the receiver population (~300 KB at 1e6 receivers vs 16
/// MB dense) while the posterior stays conformance-pinned to the exact
/// engine — bit-identical when the sketches are collision-free, and
/// count-min estimates never undercount with overestimates bounded by
/// 2*total/width per key w.p. >= 1 - 2^-depth. The same split lives in the
/// accumulation layer: workload::streaming_accumulator
/// (src/workload/streaming.hpp) ingests rounds incrementally under either
/// backend, treats empty/partial streams as first-class, and merges across
/// disjoint round ranges bit-identically for every thread/shard split
/// (accumulate_cooccurrence is now a thin wrapper over it).
/// sda_attack::from_counts treats accumulated totals as untrusted input —
/// merged, replayed, or deserialized counts are validated against the
/// parse_error taxonomy (out-of-range receivers, non-ascending rows,
/// target/global mismatches) before any unsigned subtraction or division
/// can corrupt the posterior.
///
/// The discrete-event simulator lives in src/sim (include
/// "src/sim/simulator.hpp"). Its threat model is pluggable
/// (src/sim/adversary.hpp): full_coalition (the paper's Sec. 4 worst
/// case), partial_coverage (iid fractional corruption, optionally honest
/// receiver — observations with receiver_observed == false), and
/// timing_correlator (timestamp-only linking via crypto::timing_correlation
/// — gapped observations); the posterior engine marginalizes over both
/// weakened observation shapes. sim::trace (src/sim/trace.hpp) captures a
/// run's adversary-visible events into a versioned, exactly-serializable
/// trace and replays it through any inference engine offline, bit-for-bit
/// equal to inline scoring. sim::session_config (src/sim/session.hpp)
/// opens the time axis inside the simulator: the workload batches into mix
/// rounds, every message carries a pseudonymous destination (the tracked
/// sender always writes to their partner), and scoring runs a longitudinal
/// attack whose sequential-Bayes mode fuses the run's own per-message
/// posteriors — disabled sessions are byte-identical to pre-session
/// behavior, and enabled ones ride trace v1 as an optional line.
///
/// The fault axis is sim::fault_plan (src/sim/fault_plan.hpp), one seeded
/// valve over every way the fabric degrades: per-link drop probability,
/// stochastic churn (net::churn_config), explicit crash/repair intervals
/// (net::outage, compiled by net::outage_schedule into merged closed-open
/// downtime), and seeded mix-failure episodes that crash random mixes on a
/// deterministic timetable. The inert default draws from no generator, so
/// fault-free runs are bit-identical to the pre-fault engine and default
/// traces/CSVs keep their historical bytes; enabled plans ride trace v1 as
/// optional lines. Recovery is sim::retry_policy: sender-side timeout and
/// re-injection over a fresh route with capped exponential backoff
/// (timeout, x backoff, <= max_timeout, at most max_retries attempts).
/// Every retransmission is a new adversary observation of the same sender
/// that scoring fuses into the per-message posterior — the policy buys
/// delivery with anonymity, the frontier bench/ext_retry_frontier maps.
///
/// On top sits the scenario-campaign engine (src/sim/campaign.hpp) — a
/// declarative grid over (N, C, strategy, routing mode, drop rate, arrival
/// rate, adversary model, topology, churn, mix failures, retry policy,
/// session population/rounds/attack) whose cells fan out over a
/// stats::thread_pool with deterministic per-run rng streams and aggregate
/// into per-cell summaries, bit-identical for every thread count under a
/// fixed master seed (the same contract as mc_config). A cell that throws
/// becomes an error row in the CSV instead of killing the sweep, and the
/// whole campaign is crash-resumable: src/sim/checkpoint.hpp journals
/// finished cells to an append-only "anonpath-checkpoint v1" file (scope
/// fingerprint + one bit-exact record per cell, versioned like trace v1),
/// and a resumed run replays the journal and re-renders byte-identical
/// output at any thread count. The same contract extends across machines:
/// campaign_config{shard_index, shard_count} runs one residue class of the
/// grid's cells (seeds derive from absolute run indices), each shard
/// journals under its shard identity, and sim::merge_campaign recombines
/// the journals into a result bit-identical to an unsharded run — refusing
/// scope mismatches, duplicate/missing shards, and incomplete journals.
/// Parsers for both untrusted formats (trace, checkpoint) reject
/// corruption with the structured anonpath::parse_error taxonomy
/// (src/stats/error.hpp) — never a contract_violation, never a crash; and
/// every result-bearing write path (CSV/trace/figure streams, checkpoint
/// appends, benchmark JSON) is verified, so a full disk or a closed pipe
/// is a loud nonzero exit, not a silently dropped result. The hot
/// inference loops (posterior_engine, attack::sequential_bayes_attack)
/// run allocation-free on member scratch and sit under a CI
/// perf-regression gate (bench/BENCH_baseline.json + bench/perf_diff.py).
/// The figure generators live in src/repro.
///
/// Observability is src/obs, an opt-in tap over all of the above:
/// obs::metrics_registry holds named counters, gauges, and 65-bucket
/// log-scale histograms (obs::log_histogram) in thread-sharded slabs — one
/// per stats::thread_pool worker, merged in fixed index order, so a
/// snapshot of the same logical work is bit-identical for every thread
/// count; obs::merge_snapshots recombines sharded campaigns' telemetry
/// (counters/bins sum, gauges keep the max) to equal the unsharded run's.
/// obs::span is an RAII scoped timer feeding an obs::tracer whose
/// parent/child tree carries explicit creation-order ids (never wall-clock
/// keys), so trace *structure* is deterministic and only durations are
/// real telemetry — the `_ms`/`_us`/`_ns` naming convention
/// (obs::is_timing_metric) marks which histograms determinism comparisons
/// reduce to totals (obs::stable_text). Snapshots and spans serialize as
/// versioned "anonpath-metrics v1" JSONL through the obs::sink family
/// (jsonl_file_sink with checked writes, stderr_summary_sink, null_sink);
/// the reader rejects corruption with the same parse_error taxonomy as
/// trace/checkpoint. Instrumented layers hold non-owning registry/tracer
/// pointers defaulting to nullptr — no `--metrics`/`--progress`, no
/// allocation, byte-identical outputs. obs::progress_meter is the
/// rate-limited `# progress:` stderr heartbeat with a linear ETA.

#include "src/anonymity/analytic.hpp"
#include "src/anonymity/brute_force.hpp"
#include "src/anonymity/closed_forms.hpp"
#include "src/anonymity/cyclic.hpp"
#include "src/anonymity/entropy.hpp"
#include "src/anonymity/length_distribution.hpp"
#include "src/anonymity/moments.hpp"
#include "src/anonymity/monte_carlo.hpp"
#include "src/anonymity/multi_message.hpp"
#include "src/anonymity/observation.hpp"
#include "src/anonymity/optimizer.hpp"
#include "src/anonymity/path_sampler.hpp"
#include "src/anonymity/posterior.hpp"
#include "src/anonymity/strategy.hpp"
#include "src/anonymity/types.hpp"
#include "src/net/churn.hpp"
#include "src/net/graph_oracle.hpp"
#include "src/net/topology.hpp"
#include "src/net/topology_mc.hpp"
#include "src/net/topology_posterior.hpp"
