#pragma once

#include <vector>

#include "src/anonymity/length_distribution.hpp"
#include "src/anonymity/observation.hpp"
#include "src/anonymity/types.hpp"

namespace anonpath {

/// One adversary-observable event class with its exact probability and
/// sender posterior, as enumerated by the brute-force analyzer.
struct event_record {
  observation obs;
  double probability = 0.0;           ///< Pr(e)
  std::vector<double> posterior;      ///< Pr(S = i | e), size N
  double entropy_bits = 0.0;          ///< H(X | e)
};

/// Ground-truth evaluator: enumerates *every* (sender, length, path) triple
/// of the generative model, groups them by the adversary's observation, and
/// applies Bayes directly — no combinatorial shortcuts. Exponential in N;
/// guarded to N <= 10. This is the oracle every other engine is tested
/// against (analytic C=1, the general posterior engine, Monte Carlo, and
/// the end-to-end simulator).
class brute_force_analyzer {
 public:
  /// Preconditions: sys.valid(), node_count <= 10, compromised ids distinct
  /// and < N with |compromised| == C, support <= N-1.
  brute_force_analyzer(system_params sys, std::vector<node_id> compromised,
                       const path_length_distribution& lengths);

  /// Exact H*(S) in bits.
  [[nodiscard]] double anonymity_degree() const noexcept { return degree_; }

  /// The full enumerated event space.
  [[nodiscard]] const std::vector<event_record>& events() const noexcept {
    return events_;
  }

  /// Sum of event probabilities (== 1 up to rounding; for tests).
  [[nodiscard]] double total_probability() const noexcept { return total_; }

 private:
  double degree_ = 0.0;
  double total_ = 0.0;
  std::vector<event_record> events_;
};

}  // namespace anonpath
