#pragma once

#include "src/anonymity/analytic.hpp"
#include "src/anonymity/length_distribution.hpp"
#include "src/anonymity/moments.hpp"
#include "src/anonymity/types.hpp"
#include "src/stats/rng.hpp"

namespace anonpath {

/// Solution of the paper's optimization problem (Sec. 5.4, formulas
/// (15)-(17)): a path-length distribution maximizing the anonymity degree.
struct optimization_result {
  moment_signature signature;            ///< optimal (p0, p1, p2, mean)
  path_length_distribution distribution; ///< a concrete realization
  double degree = 0.0;                   ///< H*(S) achieved, bits
};

/// Maximizes H*(S) over ALL length distributions supported on [0, max_len]
/// with E[L] == mean_target (the Fig-6 "Optimization" curve). Exploits the
/// structural reduction (DESIGN.md Sec. 2.1): H* depends on the
/// distribution only through (p0, p1, p2, mean), so the search is an exact
/// 3-dimensional grid + pattern-search refinement rather than a
/// high-dimensional simplex program.
///
/// Preconditions: sys C=1 analytic preconditions; 0 <= mean_target <=
/// max_len <= N-1; grid >= 8.
[[nodiscard]] optimization_result optimize_for_mean(const system_params& sys,
                                                    double mean_target,
                                                    path_length max_len,
                                                    int grid = 48);

/// Maximizes H*(S) with the mean left free (support [0, max_len]).
[[nodiscard]] optimization_result optimize_unconstrained(
    const system_params& sys, path_length max_len);

/// Best uniform strategy U(a, b) with (a+b)/2 == mean_target (the family the
/// paper compares against). Requires 2*mean_target to be integral.
[[nodiscard]] optimization_result best_uniform_for_mean(
    const system_params& sys, double mean_target, path_length max_len);

/// Best fixed-length strategy F(l), l in [0, max_len].
[[nodiscard]] optimization_result best_fixed(const system_params& sys,
                                             path_length max_len);

/// Draws a random neighbor of `d` by a three-point mass move that preserves
/// both normalization and the mean exactly (clamped to keep the pmf
/// non-negative). Used by property tests to verify that no explicit pmf
/// beats the moment-space optimum. `step` bounds the moved mass.
[[nodiscard]] path_length_distribution random_mean_preserving_neighbor(
    const path_length_distribution& d, stats::rng& gen, double step);

}  // namespace anonpath
