#include "src/anonymity/optimizer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/stats/contract.hpp"

namespace anonpath {

namespace {

/// Objective wrapper: H* of a signature, -inf when infeasible.
double objective(const system_params& sys, const moment_signature& sig,
                 double max_len) {
  if (!sig.feasible(max_len)) return -std::numeric_limits<double>::infinity();
  return anonymity_degree_from_moments(sys, sig);
}

/// Coordinate pattern search over (p0, p1, p2) at fixed mean, shrinking the
/// step until convergence. Robust for this small smooth problem.
moment_signature refine(const system_params& sys, moment_signature best,
                        double mean, double max_len, double step) {
  double best_val = objective(sys, best, max_len);
  while (step > 1e-10) {
    bool improved = false;
    for (int dim = 0; dim < 3; ++dim) {
      for (double dir : {+1.0, -1.0}) {
        moment_signature cand = best;
        double* coord = dim == 0 ? &cand.p0 : dim == 1 ? &cand.p1 : &cand.p2;
        *coord = std::clamp(*coord + dir * step, 0.0, 1.0);
        cand.mean = mean;
        const double val = objective(sys, cand, max_len);
        if (val > best_val) {
          best = cand;
          best_val = val;
          improved = true;
        }
      }
    }
    if (!improved) step *= 0.5;
  }
  return best;
}

}  // namespace

optimization_result optimize_for_mean(const system_params& sys,
                                      double mean_target, path_length max_len,
                                      int grid) {
  ANONPATH_EXPECTS(grid >= 8);
  ANONPATH_EXPECTS(mean_target >= 0.0);
  ANONPATH_EXPECTS(mean_target <= static_cast<double>(max_len));
  ANONPATH_EXPECTS(max_len <= sys.node_count - 1);

  const double ml = static_cast<double>(max_len);
  moment_signature best;
  double best_val = -std::numeric_limits<double>::infinity();

  // Coarse grid over the (p0, p1, p2) simplex.
  for (int i0 = 0; i0 <= grid; ++i0) {
    const double p0 = static_cast<double>(i0) / grid;
    for (int i1 = 0; i0 + i1 <= grid; ++i1) {
      const double p1 = static_cast<double>(i1) / grid;
      for (int i2 = 0; i0 + i1 + i2 <= grid; ++i2) {
        const double p2 = static_cast<double>(i2) / grid;
        const moment_signature sig{p0, p1, p2, mean_target};
        const double val = objective(sys, sig, ml);
        if (val > best_val) {
          best_val = val;
          best = sig;
        }
      }
    }
  }
  // Degenerate targets (e.g. mean 0) may only be feasible at corners missed
  // by the grid; seed explicitly.
  for (const moment_signature seed :
       {moment_signature{1.0, 0.0, 0.0, mean_target},
        moment_signature{0.0, 1.0, 0.0, mean_target},
        moment_signature{0.0, 0.0, 1.0, mean_target},
        moment_signature{0.0, 0.0, 0.0, mean_target}}) {
    const double val = objective(sys, seed, ml);
    if (val > best_val) {
      best_val = val;
      best = seed;
    }
  }
  ANONPATH_ENSURES(std::isfinite(best_val));

  best = refine(sys, best, mean_target, ml, 1.0 / grid);

  optimization_result out{best, realize_signature(best, max_len),
                          objective(sys, best, ml)};
  return out;
}

optimization_result optimize_unconstrained(const system_params& sys,
                                           path_length max_len) {
  ANONPATH_EXPECTS(max_len <= sys.node_count - 1);
  optimization_result best{
      moment_signature{}, path_length_distribution::fixed(0),
      -std::numeric_limits<double>::infinity()};
  // The objective is smooth in the mean; sweep integer means then refine
  // the winner's neighborhood at finer mean resolution.
  for (path_length m = 0; m <= max_len; ++m) {
    auto cand = optimize_for_mean(sys, static_cast<double>(m), max_len, 24);
    if (cand.degree > best.degree) best = std::move(cand);
  }
  const double center = best.signature.mean;
  for (double dm = -0.9; dm <= 0.9; dm += 0.1) {
    const double mean = center + dm;
    if (mean < 0.0 || mean > static_cast<double>(max_len)) continue;
    auto cand = optimize_for_mean(sys, mean, max_len, 24);
    if (cand.degree > best.degree) best = std::move(cand);
  }
  return best;
}

optimization_result best_uniform_for_mean(const system_params& sys,
                                          double mean_target,
                                          path_length max_len) {
  const auto twice = static_cast<long long>(std::llround(2.0 * mean_target));
  ANONPATH_EXPECTS(std::fabs(2.0 * mean_target - static_cast<double>(twice)) <
                   1e-9);
  optimization_result best{
      moment_signature{}, path_length_distribution::fixed(0),
      -std::numeric_limits<double>::infinity()};
  for (long long a = 0; a <= twice / 2; ++a) {
    const long long b = twice - a;
    if (b > static_cast<long long>(max_len)) continue;
    auto d = path_length_distribution::uniform(static_cast<path_length>(a),
                                               static_cast<path_length>(b));
    const double val = anonymity_degree(sys, d);
    if (val > best.degree) {
      best.signature = signature_of(d);
      best.distribution = std::move(d);
      best.degree = val;
    }
  }
  ANONPATH_ENSURES(std::isfinite(best.degree));
  return best;
}

optimization_result best_fixed(const system_params& sys, path_length max_len) {
  ANONPATH_EXPECTS(max_len <= sys.node_count - 1);
  optimization_result best{
      moment_signature{}, path_length_distribution::fixed(0),
      -std::numeric_limits<double>::infinity()};
  for (path_length l = 0; l <= max_len; ++l) {
    auto d = path_length_distribution::fixed(l);
    const double val = anonymity_degree(sys, d);
    if (val > best.degree) {
      best.signature = signature_of(d);
      best.distribution = std::move(d);
      best.degree = val;
    }
  }
  return best;
}

path_length_distribution random_mean_preserving_neighbor(
    const path_length_distribution& d, stats::rng& gen, double step) {
  ANONPATH_EXPECTS(step > 0.0);
  auto pmf = d.dense_pmf();
  const auto size = pmf.size();
  if (size < 3) return d;
  // Pick three distinct support points a < b < c. The move
  //   (da, db, dc) = t * (c-b, -(c-a), b-a)
  // preserves both total mass and mean for any t.
  const auto a = static_cast<std::size_t>(gen.next_below(size - 2));
  const auto b = a + 1 + static_cast<std::size_t>(gen.next_below(size - a - 2));
  const auto c = b + 1 + static_cast<std::size_t>(gen.next_below(size - b - 1));
  const double ca = static_cast<double>(c - a);
  const double cb = static_cast<double>(c - b);
  const double ba = static_cast<double>(b - a);
  double t = (gen.next_double() * 2.0 - 1.0) * step;
  // Clamp so all three entries stay non-negative.
  if (t > 0.0) {
    t = std::min(t, pmf[b] / ca);
  } else {
    t = std::max({t, -pmf[a] / cb, -pmf[c] / ba});
  }
  pmf[a] += t * cb;
  pmf[b] -= t * ca;
  pmf[c] += t * ba;
  for (double& p : pmf) p = std::max(0.0, p);
  return path_length_distribution::from_pmf(std::move(pmf));
}

}  // namespace anonpath
