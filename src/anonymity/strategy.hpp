#pragma once

#include <string>
#include <vector>

#include "src/anonymity/length_distribution.hpp"
#include "src/anonymity/types.hpp"

namespace anonpath {

/// How the rerouting path is constructed at run time (paper Sec. 2):
/// source-routed systems (Onion Routing I, Freedom, PipeNet) have the sender
/// pick the whole path; hop-by-hop systems (Crowds, Onion Routing II,
/// Hordes) let each intermediate flip the coin.
enum class routing_mode {
  source_routed,
  hop_by_hop,
};

/// A named path-selection strategy: the paper's abstraction of a deployed
/// anonymous communication system.
struct protocol_spec {
  std::string name;
  path_length_distribution lengths;
  routing_mode mode = routing_mode::source_routed;
};

/// Factory functions for every system surveyed in paper Sec. 2, with the
/// path-length behaviour documented there.
namespace protocols {

/// Anonymizer / LPWA: one proxy hop, always.
[[nodiscard]] protocol_spec anonymizer();

/// Lucent Personalized Web Assistant: single intermediate, like Anonymizer.
[[nodiscard]] protocol_spec lpwa();

/// Freedom: sender-chosen path of exactly three intermediate nodes.
[[nodiscard]] protocol_spec freedom();

/// Onion Routing I: fixed five-hop routes (the NRL prototype).
[[nodiscard]] protocol_spec onion_routing_v1();

/// Onion Routing II: Crowds-style coin with forwarding probability pf;
/// route length geometric starting at 1, truncated to max_len.
[[nodiscard]] protocol_spec onion_routing_v2(double forward_prob,
                                             path_length max_len);

/// Crowds: jondo chain with forwarding probability pf (>= 1 jondo).
[[nodiscard]] protocol_spec crowds(double forward_prob, path_length max_len);

/// Hordes: Crowds-like forward path (multicast reverse path does not change
/// the sender-anonymity analysis).
[[nodiscard]] protocol_spec hordes(double forward_prob, path_length max_len);

/// PipeNet: three or four intermediates, equiprobable.
[[nodiscard]] protocol_spec pipenet();

/// All of the above with default parameters, for comparison sweeps
/// (pf = 0.75 as in the Crowds paper, truncation at max_len).
[[nodiscard]] std::vector<protocol_spec> survey(path_length max_len);

}  // namespace protocols

}  // namespace anonpath
