#include "src/anonymity/path_sampler.hpp"

#include "src/stats/contract.hpp"

namespace anonpath {

route sample_simple_route(std::uint32_t node_count, node_id sender,
                          path_length length, stats::rng& gen) {
  ANONPATH_EXPECTS(sender < node_count);
  ANONPATH_EXPECTS(length <= node_count - 1);
  route r;
  r.sender = sender;
  r.hops = gen.sample_distinct(node_count, length, {sender});
  return r;
}

route sample_complicated_route(std::uint32_t node_count, node_id sender,
                               path_length length, stats::rng& gen) {
  ANONPATH_EXPECTS(node_count >= 2);
  ANONPATH_EXPECTS(sender < node_count);
  route r;
  r.sender = sender;
  r.hops.reserve(length);
  node_id prev = sender;
  for (path_length i = 0; i < length; ++i) {
    // Uniform over V \ {prev}: draw from N-1 values and skip past prev.
    auto draw = static_cast<node_id>(gen.next_below(node_count - 1));
    if (draw >= prev) ++draw;
    r.hops.push_back(draw);
    prev = draw;
  }
  return r;
}

route sample_route(std::uint32_t node_count,
                   const path_length_distribution& lengths, path_model model,
                   stats::rng& gen) {
  const auto sender = static_cast<node_id>(gen.next_below(node_count));
  const path_length l = lengths.sample(gen);
  return model == path_model::simple
             ? sample_simple_route(node_count, sender, l, gen)
             : sample_complicated_route(node_count, sender, l, gen);
}

}  // namespace anonpath
