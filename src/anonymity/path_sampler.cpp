#include "src/anonymity/path_sampler.hpp"

#include <utility>

#include "src/stats/contract.hpp"

namespace anonpath {

route sample_simple_route(std::uint32_t node_count, node_id sender,
                          path_length length, stats::rng& gen) {
  ANONPATH_EXPECTS(sender < node_count);
  ANONPATH_EXPECTS(length <= node_count - 1);
  route r;
  r.sender = sender;
  r.hops = gen.sample_distinct(node_count, length, {sender});
  return r;
}

route sample_complicated_route(std::uint32_t node_count, node_id sender,
                               path_length length, stats::rng& gen) {
  ANONPATH_EXPECTS(node_count >= 2);
  ANONPATH_EXPECTS(sender < node_count);
  route r;
  r.sender = sender;
  r.hops.reserve(length);
  node_id prev = sender;
  for (path_length i = 0; i < length; ++i) {
    // Uniform over V \ {prev}: draw from N-1 values and skip past prev.
    auto draw = static_cast<node_id>(gen.next_below(node_count - 1));
    if (draw >= prev) ++draw;
    r.hops.push_back(draw);
    prev = draw;
  }
  return r;
}

route sample_route(std::uint32_t node_count,
                   const path_length_distribution& lengths, path_model model,
                   stats::rng& gen) {
  const auto sender = static_cast<node_id>(gen.next_below(node_count));
  const path_length l = lengths.sample(gen);
  return model == path_model::simple
             ? sample_simple_route(node_count, sender, l, gen)
             : sample_complicated_route(node_count, sender, l, gen);
}

void sample_topology_route_into(const net::topology& topo, node_id sender,
                                path_length length, stats::rng& gen,
                                route& out) {
  ANONPATH_EXPECTS(sender < topo.node_count());
  out.sender = sender;
  out.hops.clear();
  out.hops.reserve(length);
  node_id cur = sender;
  for (path_length i = 0; i < length; ++i) {
    cur = topo.sample_neighbor(cur, gen);
    out.hops.push_back(cur);
  }
}

route sample_topology_route(const net::topology& topo, node_id sender,
                            path_length length, stats::rng& gen) {
  route r;
  sample_topology_route_into(topo, sender, length, gen, r);
  return r;
}

route sample_planned_route(net::route_planner& planner, node_id sender,
                           stats::rng& gen) {
  return planner.sample_route(sender, gen);
}

void sample_planned_route_into(net::route_planner& planner, node_id sender,
                               stats::rng& gen, route& out) {
  out = planner.sample_route(sender, gen);
}

route_sampler::route_sampler(std::uint32_t node_count,
                             path_length_distribution lengths,
                             path_model model)
    : node_count_(node_count),
      lengths_(std::move(lengths)),
      model_(model) {
  ANONPATH_EXPECTS(node_count_ >= 2);
  if (model_ == path_model::simple) {
    ANONPATH_EXPECTS(lengths_.max_length() <= node_count_ - 1);
    pool_.resize(node_count_);
    for (node_id v = 0; v < node_count_; ++v) pool_[v] = v;
  }
  r_.hops.reserve(lengths_.max_length());
}

const route& route_sampler::next(stats::rng& gen) {
  const path_length l = lengths_.sample(gen);
  if (model_ == path_model::simple) {
    // Partial Fisher-Yates: pool_[0 .. l] becomes a uniform ordered
    // (l+1)-sample of V; slot 0 is the sender, slots 1..l the hops.
    for (path_length i = 0; i <= l; ++i) {
      const auto j =
          i + static_cast<std::uint32_t>(gen.next_below(node_count_ - i));
      std::swap(pool_[i], pool_[j]);
    }
    r_.sender = pool_[0];
    r_.hops.assign(pool_.begin() + 1, pool_.begin() + 1 + l);
  } else {
    r_.sender = static_cast<node_id>(gen.next_below(node_count_));
    r_.hops.clear();
    node_id prev = r_.sender;
    for (path_length i = 0; i < l; ++i) {
      auto draw = static_cast<node_id>(gen.next_below(node_count_ - 1));
      if (draw >= prev) ++draw;
      r_.hops.push_back(draw);
      prev = draw;
    }
  }
  return r_;
}

}  // namespace anonpath
