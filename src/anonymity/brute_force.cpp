#include "src/anonymity/brute_force.hpp"

#include <string>
#include <unordered_map>

#include "src/anonymity/entropy.hpp"
#include "src/stats/contract.hpp"
#include "src/stats/kahan.hpp"

namespace anonpath {

namespace {

/// Recursively enumerates ordered arrangements of `remaining` distinct
/// intermediates and invokes `emit(route)` for each completed path.
template <typename Emit>
void enumerate_paths(route& r, std::vector<bool>& used, path_length remaining,
                     std::uint32_t node_count, const Emit& emit) {
  if (remaining == 0) {
    emit(r);
    return;
  }
  for (node_id x = 0; x < node_count; ++x) {
    if (used[x]) continue;
    used[x] = true;
    r.hops.push_back(x);
    enumerate_paths(r, used, remaining - 1, node_count, emit);
    r.hops.pop_back();
    used[x] = false;
  }
}

double falling_factorial(std::uint32_t n, std::uint32_t k) {
  double acc = 1.0;
  for (std::uint32_t i = 0; i < k; ++i) acc *= static_cast<double>(n - i);
  return acc;
}

}  // namespace

brute_force_analyzer::brute_force_analyzer(
    system_params sys, std::vector<node_id> compromised,
    const path_length_distribution& lengths) {
  ANONPATH_EXPECTS(sys.valid());
  ANONPATH_EXPECTS(sys.node_count <= 10);
  ANONPATH_EXPECTS(compromised.size() == sys.compromised_count);
  ANONPATH_EXPECTS(lengths.max_length() <= sys.node_count - 1);

  std::vector<bool> compromised_flag(sys.node_count, false);
  for (node_id c : compromised) {
    ANONPATH_EXPECTS(c < sys.node_count);
    ANONPATH_EXPECTS(!compromised_flag[c]);
    compromised_flag[c] = true;
  }

  const auto n = sys.node_count;

  // key -> (observation, per-sender probability mass). Hashed, not ordered:
  // the enumeration touches every bucket once per path, and event order is
  // irrelevant to the expectation (summed with compensated accumulators).
  struct bucket {
    observation obs;
    std::vector<double> mass;
  };
  std::unordered_map<std::string, bucket> buckets;
  buckets.reserve(1024);

  for (node_id s = 0; s < n; ++s) {
    for (path_length l = lengths.min_length(); l <= lengths.max_length(); ++l) {
      const double pl = lengths.pmf(l);
      if (pl <= 0.0) continue;
      const double path_prob =
          pl / (static_cast<double>(n) * falling_factorial(n - 1, l));
      route r;
      r.sender = s;
      std::vector<bool> used(n, false);
      used[s] = true;
      enumerate_paths(r, used, l, n, [&](const route& full) {
        const observation obs = observe(full, compromised_flag);
        auto [it, inserted] = buckets.try_emplace(obs.key());
        if (inserted) {
          it->second.obs = obs;
          it->second.mass.assign(n, 0.0);
        }
        it->second.mass[full.sender] += path_prob;
      });
    }
  }

  stats::kahan_sum degree_acc;
  stats::kahan_sum total_acc;
  events_.reserve(buckets.size());
  for (auto& [key, b] : buckets) {
    event_record rec;
    rec.obs = std::move(b.obs);
    stats::kahan_sum p_acc;
    for (double m : b.mass) p_acc.add(m);
    rec.probability = p_acc.value();
    rec.posterior.resize(n);
    for (node_id i = 0; i < n; ++i)
      rec.posterior[i] = b.mass[i] / rec.probability;
    rec.entropy_bits = entropy_bits(rec.posterior);
    degree_acc.add(rec.probability * rec.entropy_bits);
    total_acc.add(rec.probability);
    events_.push_back(std::move(rec));
  }
  degree_ = degree_acc.value();
  total_ = total_acc.value();
}

}  // namespace anonpath
