#pragma once

#include <span>

namespace anonpath {

/// Shannon entropy in bits of a probability vector. Zero entries contribute
/// zero (lim p->0 of -p log p). Precondition: entries non-negative; the
/// vector need not be normalized — it is normalized internally so callers
/// can pass unnormalized posterior weights.
[[nodiscard]] double entropy_bits(std::span<const double> probabilities);

/// Entropy in bits of the "one special candidate vs k exchangeable others"
/// posterior that every adversary event class of the C=1 analysis reduces
/// to: one candidate with unnormalized weight `special_weight` and `k`
/// candidates each with weight `other_weight_each`.
///
/// Handles all degenerate corners: k == 0 or other weight 0 -> 0 bits
/// (sender pinned); special weight 0 -> log2(k) bits (uniform over others).
/// Preconditions: weights non-negative, k >= 0, and not everything zero
/// unless the event itself has zero probability (then the value is unused;
/// 0 is returned).
[[nodiscard]] double two_level_entropy_bits(double special_weight,
                                            double other_weight_each,
                                            unsigned k);

/// log2 helper guarded against zero/negative input (returns 0 for x <= 0,
/// matching the -p log p convention at p == 0).
[[nodiscard]] double safe_log2(double x) noexcept;

}  // namespace anonpath
