#include "src/anonymity/multi_message.hpp"

#include <algorithm>
#include <cmath>

#include "src/anonymity/entropy.hpp"
#include "src/anonymity/observation.hpp"
#include "src/anonymity/path_sampler.hpp"
#include "src/anonymity/posterior.hpp"
#include "src/stats/contract.hpp"
#include "src/stats/kahan.hpp"
#include "src/stats/rng.hpp"
#include "src/stats/summary.hpp"

namespace anonpath {

std::vector<double> combine_posteriors(
    std::span<const std::vector<double>> posteriors) {
  ANONPATH_EXPECTS(!posteriors.empty());
  const std::size_t n = posteriors.front().size();
  ANONPATH_EXPECTS(n > 0);
  // Work in log space: long products of small probabilities underflow.
  std::vector<double> logw(n, 0.0);
  for (const auto& p : posteriors) {
    ANONPATH_EXPECTS(p.size() == n);
    for (std::size_t i = 0; i < n; ++i) {
      ANONPATH_EXPECTS(p[i] >= 0.0);
      logw[i] += p[i] > 0.0 ? std::log(p[i])
                            : -std::numeric_limits<double>::infinity();
    }
  }
  const double hi = *std::max_element(logw.begin(), logw.end());
  ANONPATH_EXPECTS(std::isfinite(hi));
  stats::kahan_sum z;
  std::vector<double> out(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = std::exp(logw[i] - hi);
    z.add(out[i]);
  }
  for (double& x : out) x /= z.value();
  return out;
}

std::vector<degradation_point> simulate_degradation(
    const system_params& sys, const std::vector<node_id>& compromised,
    const path_length_distribution& lengths, std::uint32_t max_messages,
    std::uint32_t trials, bool reroute_per_message, std::uint64_t seed,
    double identified_threshold) {
  ANONPATH_EXPECTS(trials > 0);
  ANONPATH_EXPECTS(max_messages > 0);
  const posterior_engine engine(sys, compromised, lengths);
  std::vector<bool> flags(sys.node_count, false);
  for (node_id c : compromised) flags[c] = true;

  struct accumulator {
    stats::running_summary entropy;
    std::uint64_t identified = 0;
  };
  std::vector<accumulator> acc(max_messages);

  stats::rng gen(seed);
  for (std::uint32_t t = 0; t < trials; ++t) {
    // Track an *honest* sender: a compromised sender is identified at the
    // first message, which would only dilute the curve.
    node_id sender;
    do {
      sender = static_cast<node_id>(gen.next_below(sys.node_count));
    } while (flags[sender]);

    std::vector<std::vector<double>> posteriors;
    posteriors.reserve(max_messages);
    route fixed_route;  // used when reroute_per_message is false
    for (std::uint32_t k = 0; k < max_messages; ++k) {
      if (reroute_per_message || k == 0) {
        const path_length l = lengths.sample(gen);
        fixed_route = sample_simple_route(sys.node_count, sender, l, gen);
        const observation obs = observe(fixed_route, flags);
        posteriors.push_back(engine.sender_posterior(obs));
      }
      // Static-path mode: later messages deterministically repeat the first
      // observation. A repeat carries no evidence (Pr(e,e|s) = Pr(e|s)), so
      // the factor list simply does not grow — multiplying the duplicate in
      // would wrongly sharpen the posterior. Fresh routes *are* independent
      // draws, so every factor multiplies (even coincidental repeats).
      const auto fused = combine_posteriors(posteriors);
      acc[k].entropy.add(entropy_bits(fused));
      if (*std::max_element(fused.begin(), fused.end()) > identified_threshold)
        ++acc[k].identified;
    }
  }

  std::vector<degradation_point> out;
  out.reserve(max_messages);
  for (std::uint32_t k = 0; k < max_messages; ++k) {
    degradation_point p;
    p.messages = k + 1;
    p.mean_entropy_bits = acc[k].entropy.mean();
    p.std_error = acc[k].entropy.std_error();
    p.identified_fraction =
        static_cast<double>(acc[k].identified) / static_cast<double>(trials);
    out.push_back(p);
  }
  return out;
}

}  // namespace anonpath
