#pragma once

#include "src/anonymity/types.hpp"

namespace anonpath {

/// Closed-form anonymity degrees for the paper's three special cases
/// (Sec. 5.3, Theorems 1-3), re-derived from first principles (the published
/// scan's formulas are OCR-corrupted; see DESIGN.md Sec. 2). All values are
/// for C = 1 compromised node plus the compromised receiver, simple paths,
/// N >= 5 nodes, in bits.

/// Theorem 1 — fixed-length strategy F(l):
///   l == 0            : 0 (sender handed straight to the receiver)
///   l == 1 or l == 2  : ((N-2)/N) log2(N-2)      (the paper's "lengths 1 and
///                       2 are identical" observation)
///   l == 3            : ((N-3)/N) log2(N-2) + (1/N) log2(N-3)
///   l >= 4            : ((N-l)/N) log2(N-2) + (1/N) log2(N-3)
///                       + ((l-2)/N) H_mid(l)  with position ambiguity term
///   H_mid(l) = log2(l-2)/(l-2) + ((l-3)/(l-2)) log2((N-4)(l-2)/(l-3)).
/// Preconditions: N >= 5, l <= N-1.
[[nodiscard]] double theorem1_fixed_length(std::uint32_t node_count,
                                           path_length l);

/// Theorem 2 — Crowds/Onion-Routing-II coin-flip lengths,
/// Pr[L = l] = (1-pf) pf^(l-1) for l >= 1 (idealized untruncated tail; exact
/// when the truncation mass beyond N-1 is negligible):
///   moments p0 = 0, p1 = 1-pf, p2 = pf(1-pf), mean = 1/(1-pf).
/// Preconditions: N >= 5, 0 <= pf < 1.
[[nodiscard]] double theorem2_geometric(std::uint32_t node_count,
                                        double forward_prob);

/// Theorem 3 — uniform lengths U(a, b) with a >= 3: the degree depends only
/// on the mean (a+b)/2 and equals the fixed-length value continued to real
/// arguments. Also evaluates a < 3 exactly (general uniform).
/// Preconditions: N >= 5, a <= b <= N-1.
[[nodiscard]] double theorem3_uniform(std::uint32_t node_count, path_length a,
                                      path_length b);

/// Continuous-mean extension of Theorem 1 used by Theorem 3: the anonymity
/// degree of *any* distribution with no mass below length 3 and mean `mean`.
/// Preconditions: N >= 5, 3 <= mean <= N-1.
[[nodiscard]] double fixed_length_continued(std::uint32_t node_count,
                                            double mean);

}  // namespace anonpath
