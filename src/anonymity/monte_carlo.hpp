#pragma once

#include <cstdint>
#include <vector>

#include "src/anonymity/length_distribution.hpp"
#include "src/anonymity/path_sampler.hpp"
#include "src/anonymity/types.hpp"

namespace anonpath {

/// A Monte-Carlo estimate of the anonymity degree with sampling error.
struct mc_estimate {
  double degree = 0.0;      ///< estimated H*(S), bits
  double std_error = 0.0;   ///< standard error of the estimate
  std::uint64_t samples = 0;

  /// Half-width of the ~95% confidence interval.
  [[nodiscard]] double ci95() const noexcept { return 1.96 * std_error; }
};

/// Estimates H*(S) = E_e[ H(X|e) ] for an arbitrary compromised set by
/// sampling routes from the generative model, running the adversary's
/// collection step, and scoring the exact posterior entropy of each sampled
/// observation with the general posterior engine. Deterministic under a
/// fixed seed.
///
/// This is the tool the analytic C=1 engine cannot replace: it handles any
/// C and is validated against brute force at small N.
///
/// Preconditions: as posterior_engine; samples > 0.
[[nodiscard]] mc_estimate estimate_anonymity_degree(
    const system_params& sys, const std::vector<node_id>& compromised,
    const path_length_distribution& lengths, std::uint64_t samples,
    std::uint64_t seed);

}  // namespace anonpath
