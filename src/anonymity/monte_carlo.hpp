#pragma once

#include <cstdint>
#include <vector>

#include "src/anonymity/length_distribution.hpp"
#include "src/anonymity/path_sampler.hpp"
#include "src/anonymity/types.hpp"

namespace anonpath {

/// A Monte-Carlo estimate of the anonymity degree with sampling error.
struct mc_estimate {
  double degree = 0.0;      ///< estimated H*(S), bits
  double std_error = 0.0;   ///< standard error of the estimate
  std::uint64_t samples = 0;
  std::uint64_t distinct_observations = 0;  ///< dedup classes scored (== samples when dedup is off)
  std::uint64_t shards = 0;                 ///< rng streams the estimate was split over

  /// Half-width of the ~95% confidence interval.
  [[nodiscard]] double ci95() const noexcept { return 1.96 * std_error; }
};

/// Tuning knobs for the batched Monte-Carlo estimation engine.
///
/// Determinism contract: for fixed (seed, samples, shards, dedup,
/// batch_size) the estimate is bit-identical for EVERY value of `threads`.
/// Each shard owns an independent rng stream (stats::rng::stream) and a
/// private accumulator; shard results are reduced in shard order on the
/// calling thread, so the schedule never leaks into the arithmetic.
struct mc_config {
  /// Worker threads; 0 = hardware concurrency, 1 = serial.
  unsigned threads = 1;
  /// Independent sampling streams; 0 = default (16, clamped to `samples`).
  /// Changing the shard count changes which routes are drawn (a different
  /// but equally valid estimate); changing `threads` never does.
  std::uint64_t shards = 0;
  /// Canonicalize sampled observations (observation::key()) and score the
  /// posterior once per distinct observation class instead of once per
  /// sample. Short paths collapse onto few classes, so this is the main
  /// single-thread throughput lever. Affects only rounding (weighted vs
  /// sequential accumulation), not the sampled routes.
  bool dedup = true;
  /// Samples per dedup-index window within a shard; 0 = the whole shard in
  /// one window. The per-shard hash index is cleared every `batch_size`
  /// samples, bounding its size on very large runs; classes split across
  /// windows are re-folded by the global merge, so estimates are unaffected
  /// except for weighted-accumulation rounding.
  std::uint64_t batch_size = 0;
};

/// Estimates H*(S) = E_e[ H(X|e) ] for an arbitrary compromised set by
/// sampling routes from the generative model, running the adversary's
/// collection step, and scoring the exact posterior entropy of each sampled
/// observation with the general posterior engine. Deterministic under a
/// fixed seed and config (see mc_config for the thread-invariance
/// guarantee).
///
/// This is the tool the analytic C=1 engine cannot replace: it handles any
/// C and is validated against brute force at small N.
///
/// Preconditions: as posterior_engine; samples > 0.
[[nodiscard]] mc_estimate estimate_anonymity_degree(
    const system_params& sys, const std::vector<node_id>& compromised,
    const path_length_distribution& lengths, std::uint64_t samples,
    std::uint64_t seed, const mc_config& config);

/// Single-threaded convenience wrapper with the default config (dedup on,
/// default shard count).
[[nodiscard]] mc_estimate estimate_anonymity_degree(
    const system_params& sys, const std::vector<node_id>& compromised,
    const path_length_distribution& lengths, std::uint64_t samples,
    std::uint64_t seed);

}  // namespace anonpath
