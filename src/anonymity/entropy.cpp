#include "src/anonymity/entropy.hpp"

#include <cmath>

#include "src/stats/contract.hpp"
#include "src/stats/kahan.hpp"

namespace anonpath {

double safe_log2(double x) noexcept { return x > 0.0 ? std::log2(x) : 0.0; }

double entropy_bits(std::span<const double> probabilities) {
  stats::kahan_sum total;
  for (double p : probabilities) {
    ANONPATH_EXPECTS(p >= 0.0);
    total.add(p);
  }
  const double z = total.value();
  if (z <= 0.0) return 0.0;
  stats::kahan_sum h;
  for (double p : probabilities) {
    if (p > 0.0) {
      const double q = p / z;
      h.add(-q * std::log2(q));
    }
  }
  return h.value();
}

double two_level_entropy_bits(double special_weight, double other_weight_each,
                              unsigned k) {
  ANONPATH_EXPECTS(special_weight >= 0.0);
  ANONPATH_EXPECTS(other_weight_each >= 0.0);
  if (k == 0 || other_weight_each == 0.0) return 0.0;
  const double kd = static_cast<double>(k);
  if (special_weight == 0.0) return std::log2(kd);
  const double total = special_weight + kd * other_weight_each;
  const double pu = special_weight / total;
  const double ps = other_weight_each / total;
  return -pu * std::log2(pu) - kd * ps * std::log2(ps);
}

}  // namespace anonpath
