#pragma once

#include <string>
#include <vector>

#include "src/anonymity/types.hpp"
#include "src/stats/rng.hpp"

namespace anonpath {

/// A probability distribution over rerouting-path lengths (paper Sec. 3.2,
/// the "Pr[L = l], A <= l <= B" object the whole study optimizes over).
/// Immutable after construction; invariant: pmf entries non-negative and
/// summing to 1 within 1e-9.
///
/// Factories cover every strategy family the paper discusses:
///   * fixed(l)            — Onion Routing I (l=5), Freedom (l=3), Anonymizer (l=1)
///   * uniform(a, b)       — the U(A,B) family of Sec. 6
///   * geometric(...)      — Crowds / Onion Routing II coin-flip forwarding
///   * two_point / custom  — building blocks the optimizer emits
class path_length_distribution {
 public:
  /// Degenerate distribution: always exactly `l` intermediate nodes.
  [[nodiscard]] static path_length_distribution fixed(path_length l);

  /// Uniform over the integer interval [a, b] (paper's U(A,B)).
  /// Precondition: a <= b.
  [[nodiscard]] static path_length_distribution uniform(path_length a,
                                                        path_length b);

  /// Crowds-style coin-flip lengths: starting at `min_len`, each additional
  /// hop happens with probability `forward_prob`, truncated at `max_len`
  /// and renormalized. Pr[L = min_len + k] ∝ forward_prob^k.
  /// Preconditions: 0 <= forward_prob < 1, min_len <= max_len.
  [[nodiscard]] static path_length_distribution geometric(double forward_prob,
                                                          path_length min_len,
                                                          path_length max_len);

  /// Two-point distribution: P(a) = weight_a, P(b) = 1 - weight_a.
  /// Preconditions: 0 <= weight_a <= 1. a and b may be equal.
  [[nodiscard]] static path_length_distribution two_point(path_length a,
                                                          double weight_a,
                                                          path_length b);

  /// Poisson(lambda) truncated to [0, max_len] and renormalized; a natural
  /// "concentrated variable-length" comparator for the ablation benches.
  /// Preconditions: lambda > 0.
  [[nodiscard]] static path_length_distribution poisson(double lambda,
                                                        path_length max_len);

  /// Arbitrary pmf with implicit support {0, 1, ..., pmf.size()-1}. Entries
  /// must be non-negative and sum to 1 within 1e-9 (renormalized exactly).
  /// `label` carries the human-readable name through round-trips (e.g. the
  /// trace serializer restoring a "U(1,8)" it captured).
  [[nodiscard]] static path_length_distribution from_pmf(
      std::vector<double> pmf, std::string label = "Custom");

  /// Pr[L = l]; zero outside the stored support.
  [[nodiscard]] double pmf(path_length l) const noexcept;

  /// Smallest / largest length with positive probability.
  [[nodiscard]] path_length min_length() const noexcept { return min_; }
  [[nodiscard]] path_length max_length() const noexcept { return max_; }

  /// E[L].
  [[nodiscard]] double mean() const noexcept { return mean_; }

  /// Var[L].
  [[nodiscard]] double variance() const noexcept { return variance_; }

  /// P(L >= l).
  [[nodiscard]] double tail_mass(path_length l) const noexcept;

  /// Draws one length.
  [[nodiscard]] path_length sample(stats::rng& gen) const;

  /// The dense pmf vector over 0..max_length().
  [[nodiscard]] const std::vector<double>& dense_pmf() const noexcept {
    return pmf_;
  }

  /// Human-readable label, e.g. "F(5)", "U(2,8)", "Geom(0.75,1)".
  [[nodiscard]] const std::string& label() const noexcept { return label_; }

 private:
  path_length_distribution(std::vector<double> pmf, std::string label);

  std::vector<double> pmf_;   // index = length, dense from 0
  std::vector<double> cdf_;   // inclusive cumulative sums for sampling
  path_length min_ = 0;
  path_length max_ = 0;
  double mean_ = 0.0;
  double variance_ = 0.0;
  std::string label_;
};

}  // namespace anonpath
