#include "src/anonymity/analytic.hpp"

#include <cmath>

#include "src/anonymity/entropy.hpp"
#include "src/stats/contract.hpp"

namespace anonpath {

namespace {

void check_system(const system_params& sys) {
  ANONPATH_EXPECTS(sys.valid());
  ANONPATH_EXPECTS(sys.compromised_count == 1);
  // N >= 5 keeps every event class's "other candidates" count positive;
  // smaller systems are covered exactly by the brute-force analyzer.
  ANONPATH_EXPECTS(sys.node_count >= 5);
}

/// Derived weights like kappa = mean - p1 - 2 p2 - 3 m3 can come out slightly
/// negative for signatures at the feasibility boundary: feasible() admits a
/// tail mass up to 1e-9 treated as zero, which propagates to kappa as much as
/// -(3 + 1)e-9. Clamp within that slack; keep real negativity (a genuinely
/// infeasible signature) loud.
double clamp_weight(double w) {
  ANONPATH_EXPECTS(w > -5e-9);
  return w < 0.0 ? 0.0 : w;
}

}  // namespace

degree_breakdown anonymity_breakdown_from_moments(const system_params& sys,
                                                  const moment_signature& sig) {
  check_system(sys);
  const double n = static_cast<double>(sys.node_count);
  ANONPATH_EXPECTS(sig.feasible(n - 1.0));

  const double p0 = clamp_weight(sig.p0);
  const double p1 = clamp_weight(sig.p1);
  const double p2 = clamp_weight(sig.p2);
  const double mu = clamp_weight(sig.mean);
  const double m1 = clamp_weight(sig.m1());
  const double m2 = clamp_weight(sig.m2());
  const double m3 = clamp_weight(sig.m3());
  const double kappa = clamp_weight(sig.kappa());

  degree_breakdown out;

  // Event class 1: the compromised node is the sender itself (the paper's
  // local-eavesdropper case). The adversary sees the message originate.
  out.p_sender_compromised = 1.0 / n;

  // Event class 2: c is not on the path at all. The adversary sees only the
  // receiver's predecessor v. Candidates: v itself (only via a length-0
  // path) against the N-2 nodes other than {c, v}. The likelihood of each
  // generic candidate collapses to ((N-1)m1 - mu) / ((N-1)(N-2)); we use
  // weights scaled by (N-1)(N-2).
  out.p_absent = (n - 1.0 - mu) / n;
  if (out.p_absent > 1e-15) {
    const double w_direct = p0 * (n - 1.0) * (n - 2.0);
    const double w_other = clamp_weight((n - 1.0) * m1 - mu);
    out.h_absent = two_level_entropy_bits(w_direct, w_other,
                                          sys.node_count - 2);
  }

  // Event class 3: c == x_l (its successor is R). Its predecessor u is the
  // sender exactly when l == 1. Weights scaled by (N-1)(N-2).
  out.p_last = m1 / n;
  if (out.p_last > 1e-15) {
    out.h_last = two_level_entropy_bits(p1 * (n - 2.0), m2,
                                        sys.node_count - 2);
  }

  // Event class 4: c == x_{l-1} (its successor equals the receiver's
  // predecessor v). Its predecessor u is the sender exactly when l == 2.
  // Candidates other than u exclude {u, c, v}. Weights scaled by
  // (N-1)(N-2)(N-3).
  out.p_penultimate = m2 / n;
  if (out.p_penultimate > 1e-15) {
    out.h_penultimate = two_level_entropy_bits(p2 * (n - 3.0), m3,
                                               sys.node_count - 3);
  }

  // Event class 5: c == x_i with i <= l-2; the adversary cannot tell
  // position 1 (pred == sender) from positions 2..l-2. Weights scaled by
  // (N-1)(N-2)(N-3)(N-4).
  out.p_mid = (kappa + m3) / n;
  if (out.p_mid > 1e-15) {
    out.h_mid = two_level_entropy_bits(m3 * (n - 4.0), kappa,
                                       sys.node_count - 4);
  }

  out.degree = out.p_absent * out.h_absent + out.p_last * out.h_last +
               out.p_penultimate * out.h_penultimate + out.p_mid * out.h_mid;
  return out;
}

degree_breakdown anonymity_breakdown(const system_params& sys,
                                     const path_length_distribution& lengths) {
  ANONPATH_EXPECTS(lengths.max_length() <= sys.node_count - 1);
  return anonymity_breakdown_from_moments(sys, signature_of(lengths));
}

double anonymity_degree_from_moments(const system_params& sys,
                                     const moment_signature& sig) {
  return anonymity_breakdown_from_moments(sys, sig).degree;
}

double anonymity_degree(const system_params& sys,
                        const path_length_distribution& lengths) {
  return anonymity_breakdown(sys, lengths).degree;
}

double max_anonymity_degree(const system_params& sys) {
  ANONPATH_EXPECTS(sys.valid());
  return std::log2(static_cast<double>(sys.node_count));
}

}  // namespace anonpath
