#pragma once

#include <cstdint>
#include <vector>

namespace anonpath {

/// Identifier of a participant node. Nodes are 0 .. N-1; the receiver is an
/// external party (the paper keeps it outside the N collaborating nodes) and
/// is denoted by the sentinel `receiver_node`.
using node_id = std::uint32_t;

/// Sentinel id for the (always-compromised) receiver R.
inline constexpr node_id receiver_node = 0xFFFFFFFFu;

/// Path length = number of intermediate nodes between sender and receiver
/// (paper Sec. 3.1). Length 0 means the sender delivers directly to R.
using path_length = std::uint32_t;

/// Static parameters of a rerouting-based anonymous communication system
/// (paper Sec. 3.1 / Sec. 4): N collaborating nodes of which C are
/// compromised; the receiver is compromised in addition.
struct system_params {
  std::uint32_t node_count = 0;        ///< N, total nodes (receiver excluded)
  std::uint32_t compromised_count = 0; ///< C, compromised among the N

  [[nodiscard]] constexpr bool valid() const noexcept {
    return node_count >= 2 && compromised_count <= node_count;
  }
};

/// Evenly spreads `c` distinct compromised node ids over {0, ..., n-1}; the
/// canonical placement used by the CLI, sweeps, and examples so experiments
/// agree on what "C compromised nodes" means. Precondition: c <= n.
[[nodiscard]] inline std::vector<node_id> spread_compromised(std::uint32_t n,
                                                             std::uint32_t c) {
  std::vector<node_id> out;
  out.reserve(c);
  for (std::uint32_t i = 0; i < c; ++i)
    out.push_back(static_cast<node_id>((static_cast<std::uint64_t>(i) * n) / c));
  return out;
}

/// A rerouting path: sender, then the ordered intermediate nodes. The
/// receiver is implicit at the end.
struct route {
  node_id sender = 0;
  std::vector<node_id> hops;  ///< x_1 .. x_l, possibly empty (direct send)

  [[nodiscard]] path_length length() const noexcept {
    return static_cast<path_length>(hops.size());
  }
};

}  // namespace anonpath
