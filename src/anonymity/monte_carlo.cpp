#include "src/anonymity/monte_carlo.hpp"

#include "src/anonymity/entropy.hpp"
#include "src/anonymity/observation.hpp"
#include "src/anonymity/posterior.hpp"
#include "src/stats/contract.hpp"
#include "src/stats/rng.hpp"
#include "src/stats/summary.hpp"

namespace anonpath {

mc_estimate estimate_anonymity_degree(const system_params& sys,
                                      const std::vector<node_id>& compromised,
                                      const path_length_distribution& lengths,
                                      std::uint64_t samples,
                                      std::uint64_t seed) {
  ANONPATH_EXPECTS(samples > 0);
  const posterior_engine engine(sys, compromised, lengths);
  std::vector<bool> flags(sys.node_count, false);
  for (node_id c : compromised) flags[c] = true;

  stats::rng gen(seed);
  stats::running_summary acc;
  for (std::uint64_t i = 0; i < samples; ++i) {
    const route r = sample_route(sys.node_count, lengths, path_model::simple, gen);
    const observation obs = observe(r, flags);
    const auto post = engine.sender_posterior(obs);
    acc.add(entropy_bits(post));
  }

  mc_estimate out;
  out.degree = acc.mean();
  out.std_error = acc.std_error();
  out.samples = samples;
  return out;
}

}  // namespace anonpath
