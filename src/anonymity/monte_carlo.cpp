#include "src/anonymity/monte_carlo.hpp"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/anonymity/entropy.hpp"
#include "src/anonymity/observation.hpp"
#include "src/anonymity/posterior.hpp"
#include "src/stats/contract.hpp"
#include "src/stats/rng.hpp"
#include "src/stats/summary.hpp"
#include "src/stats/thread_pool.hpp"

namespace anonpath {

namespace {

constexpr std::uint64_t default_shard_count = 16;

/// One canonicalized observation class with its sample multiplicity.
struct obs_class {
  std::string key;
  observation obs;
  std::uint64_t count = 0;
};

/// Phase 1 (dedup mode): sample `count` routes from one rng stream and
/// aggregate them into observation classes, in first-occurrence order —
/// deterministic regardless of the hash table's internal ordering. No
/// posterior work happens here; classes from all shards are merged globally
/// and scored once each. `batch_size` bounds the hash index: the index is
/// cleared every `batch_size` samples (duplicate classes across batches are
/// folded by the global merge).
std::vector<obs_class> collect_shard(std::uint32_t node_count,
                                     const std::vector<bool>& compromised_flags,
                                     const path_length_distribution& lengths,
                                     std::uint64_t count, stats::rng gen,
                                     std::uint64_t batch_size) {
  route_sampler sampler(node_count, lengths, path_model::simple);
  observation obs;
  std::string key;
  std::unordered_map<std::string, std::size_t> index;
  std::vector<obs_class> classes;
  const std::uint64_t batch = batch_size == 0 ? count : batch_size;
  std::uint64_t in_batch = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    observe_into(sampler.next(gen), compromised_flags, obs);
    obs.key_into(key);
    const auto [it, inserted] = index.try_emplace(key, classes.size());
    if (inserted) {
      classes.push_back({key, obs, 1});  // copies: obs/key are reused buffers
    } else {
      ++classes[it->second].count;
    }
    if (++in_batch == batch) {
      index.clear();
      in_batch = 0;
    }
  }
  return classes;
}

/// Non-dedup mode: score every sample individually (the seed's behavior,
/// modulo sharded streams), one summary per shard.
stats::running_summary score_shard(const posterior_engine& engine,
                                   const std::vector<bool>& compromised_flags,
                                   const path_length_distribution& lengths,
                                   std::uint64_t count, stats::rng gen) {
  route_sampler sampler(engine.system().node_count, lengths,
                        path_model::simple);
  observation obs;
  stats::running_summary summary;
  for (std::uint64_t i = 0; i < count; ++i) {
    observe_into(sampler.next(gen), compromised_flags, obs);
    summary.add(entropy_bits(engine.sender_posterior(obs)));
  }
  return summary;
}

}  // namespace

mc_estimate estimate_anonymity_degree(const system_params& sys,
                                      const std::vector<node_id>& compromised,
                                      const path_length_distribution& lengths,
                                      std::uint64_t samples, std::uint64_t seed,
                                      const mc_config& config) {
  ANONPATH_EXPECTS(samples > 0);
  // Validates sys/compromised/lengths; also the template every worker copies
  // so the memo tables are built exactly once.
  const posterior_engine base_engine(sys, compromised, lengths);
  std::vector<bool> flags(sys.node_count, false);
  for (node_id c : compromised) flags[c] = true;

  const std::uint64_t shards = std::min(
      samples, config.shards == 0 ? default_shard_count : config.shards);
  const std::uint64_t per_shard = samples / shards;
  const std::uint64_t remainder = samples % shards;
  const auto shard_samples = [&](std::uint64_t shard) {
    return per_shard + (shard < remainder ? 1 : 0);
  };

  // Worker threads are an implementation resource, not a sampling knob:
  // clamp runaway requests (e.g. a wrapped negative) to a sane ceiling. The
  // pool is sized by the thread request, not the shard count — the sampling
  // phase is naturally bounded by its shard items, while the scoring phase
  // fans out over distinct observation classes, which can far exceed the
  // shards. A pool of size 1 degenerates to inline serial loops.
  constexpr unsigned max_threads = 256;
  const unsigned threads = std::min(
      config.threads == 0 ? std::max(1u, std::thread::hardware_concurrency())
                          : config.threads,
      max_threads);
  stats::thread_pool pool(threads);

  mc_estimate out;
  out.samples = samples;
  out.shards = shards;
  stats::running_summary acc;

  if (config.dedup) {
    // Phase 1: parallel per-shard sampling + local dedup (no posteriors).
    std::vector<std::vector<obs_class>> shard_classes(shards);
    pool.parallel_for(shards, [&](std::uint64_t shard, unsigned) {
      shard_classes[shard] =
          collect_shard(sys.node_count, flags, lengths, shard_samples(shard),
                        stats::rng::stream(seed, shard), config.batch_size);
    });

    // Phase 2: serial global merge in shard order — the class list and all
    // downstream arithmetic are independent of the worker schedule.
    std::unordered_map<std::string, std::size_t> global_index;
    std::vector<obs_class> global;
    for (auto& classes : shard_classes) {
      for (auto& cls : classes) {
        const auto [it, inserted] =
            global_index.try_emplace(cls.key, global.size());
        if (inserted) {
          global.push_back(std::move(cls));
        } else {
          global[it->second].count += cls.count;
        }
      }
      classes.clear();
      classes.shrink_to_fit();
    }

    // Phase 3: parallel scoring, one exact posterior per distinct class.
    // Each worker owns a private engine copy: the posterior memo and layout
    // scratch are mutable, so sharing one instance across threads would
    // race. (Memo state affects speed only, never values.)
    std::vector<posterior_engine> engines(pool.worker_count(), base_engine);
    std::vector<double> entropy(global.size());
    pool.parallel_for(global.size(), [&](std::uint64_t i, unsigned worker) {
      entropy[i] =
          entropy_bits(engines[worker].sender_posterior(global[i].obs));
    });

    // Phase 4: weighted reduction in class order.
    for (std::size_t i = 0; i < global.size(); ++i) {
      acc.add_repeated(entropy[i], global[i].count);
    }
    out.distinct_observations = global.size();
  } else {
    std::vector<posterior_engine> engines(pool.worker_count(), base_engine);
    std::vector<stats::running_summary> summaries(shards);
    pool.parallel_for(shards, [&](std::uint64_t shard, unsigned worker) {
      summaries[shard] =
          score_shard(engines[worker], flags, lengths, shard_samples(shard),
                      stats::rng::stream(seed, shard));
    });
    for (const auto& s : summaries) acc.merge(s);
    out.distinct_observations = samples;
  }

  out.degree = acc.mean();
  out.std_error = acc.std_error();
  return out;
}

mc_estimate estimate_anonymity_degree(const system_params& sys,
                                      const std::vector<node_id>& compromised,
                                      const path_length_distribution& lengths,
                                      std::uint64_t samples,
                                      std::uint64_t seed) {
  return estimate_anonymity_degree(sys, compromised, lengths, samples, seed,
                                   mc_config{});
}

}  // namespace anonpath
