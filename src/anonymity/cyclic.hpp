#pragma once

#include <vector>

#include "src/anonymity/brute_force.hpp"
#include "src/anonymity/length_distribution.hpp"
#include "src/anonymity/types.hpp"

namespace anonpath {

/// Exact anonymity analysis for the paper's *complicated* paths (Sec. 3.2:
/// cycles allowed). Path model: x_1 uniform over V \ {S}; each subsequent
/// hop uniform over V \ {previous}; nodes may repeat (Crowds-style
/// hop-by-hop forwarding), so the sender itself can reappear as an
/// intermediate and a compromised node can report several times for one
/// message.
///
/// Exhaustive: enumerates every no-immediate-repeat walk, groups by the
/// adversary's observation, applies Bayes directly. Cost grows as
/// (N-1)^l — guarded to N <= 8 and max length <= 8. This is the oracle for
/// the simple-vs-complicated ablation (bench/ext_cyclic) and for validating
/// any faster cyclic engine.
class cyclic_brute_force_analyzer {
 public:
  /// Preconditions: sys.valid(), node_count <= 8, max_length <= 8,
  /// compromised ids distinct and < N with |compromised| == C.
  cyclic_brute_force_analyzer(system_params sys,
                              std::vector<node_id> compromised,
                              const path_length_distribution& lengths);

  /// Exact H*(S) in bits under the cyclic path model.
  [[nodiscard]] double anonymity_degree() const noexcept { return degree_; }

  /// The enumerated event space (same record type as the simple-path
  /// brute-force analyzer).
  [[nodiscard]] const std::vector<event_record>& events() const noexcept {
    return events_;
  }

  /// Sum of event probabilities (== 1 up to rounding; for tests).
  [[nodiscard]] double total_probability() const noexcept { return total_; }

 private:
  double degree_ = 0.0;
  double total_ = 0.0;
  std::vector<event_record> events_;
};

}  // namespace anonpath
