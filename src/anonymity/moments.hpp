#pragma once

#include "src/anonymity/length_distribution.hpp"

namespace anonpath {

/// The four scalars through which — and only through which — the anonymity
/// degree of a C=1 system depends on the path-length distribution (the
/// structural reduction derived in DESIGN.md Sec. 2.1):
///
///   p0 = Pr[L=0], p1 = Pr[L=1], p2 = Pr[L=2], mean = E[L].
///
/// The derived tail masses m1, m2, m3 and the mid-path weight
/// kappa = sum_{l>=3} Pr[L=l](l-3) are functions of these four. This is what
/// proves the paper's Theorem-3 observation (uniform with lower bound >= 3
/// behaves exactly like a fixed length at the same mean) and what collapses
/// the path-length optimization (paper Sec. 5.4) to three dimensions.
struct moment_signature {
  double p0 = 0.0;    ///< Pr[L = 0]
  double p1 = 0.0;    ///< Pr[L = 1]
  double p2 = 0.0;    ///< Pr[L = 2]
  double mean = 0.0;  ///< E[L]

  /// P(L >= 1).
  [[nodiscard]] double m1() const noexcept { return 1.0 - p0; }
  /// P(L >= 2).
  [[nodiscard]] double m2() const noexcept { return 1.0 - p0 - p1; }
  /// P(L >= 3).
  [[nodiscard]] double m3() const noexcept { return 1.0 - p0 - p1 - p2; }
  /// sum_{l>=3} Pr[L=l] (l-3)  =  mean - p1 - 2 p2 - 3 m3().
  [[nodiscard]] double kappa() const noexcept {
    return mean - p1 - 2.0 * p2 - 3.0 * m3();
  }

  /// True when the signature is realizable by a distribution supported on
  /// [0, max_len]: probabilities in range and the >=3 tail mean within
  /// [3, max_len] (up to `tol`).
  [[nodiscard]] bool feasible(double max_len, double tol = 1e-9) const noexcept;
};

/// Extracts the signature of a concrete distribution.
[[nodiscard]] moment_signature signature_of(const path_length_distribution& d);

/// Constructs a concrete distribution realizing a feasible signature: the
/// >=3 tail mass is placed on the two integers bracketing its conditional
/// mean. Preconditions: sig.feasible(max_len).
[[nodiscard]] path_length_distribution realize_signature(
    const moment_signature& sig, path_length max_len);

}  // namespace anonpath
