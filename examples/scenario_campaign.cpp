// Scenario campaign walkthrough: declare a parameter grid, fan it out over
// all cores, and read the aggregated anonymity/latency/delivery surface —
// the programmatic form of `anonpath campaign`.
//
// Build & run:  ./build/example_scenario_campaign

#include <cstdio>
#include <sstream>

#include "src/sim/campaign.hpp"

int main() {
  using namespace anonpath;

  // The grid is the cartesian product of its axes: here 2 system sizes x
  // 3 compromised-set sizes x 2 strategies x 2 drop rates = 24 scenarios,
  // each run 4 times with independent deterministic seeds.
  sim::campaign_grid grid;
  grid.node_counts = {30, 60};
  grid.compromised_counts = {1, 4, 8};
  grid.lengths = {path_length_distribution::fixed(3),
                  path_length_distribution::uniform(1, 8)};
  grid.drop_probabilities = {0.0, 0.05};
  grid.message_count = 300;

  sim::campaign_config cfg;
  cfg.replicas = 4;
  cfg.master_seed = 42;
  cfg.threads = 0;  // all cores

  const auto result = sim::run_campaign(grid, cfg);
  std::printf("campaign: %zu cells x %u replicas = %llu simulator runs\n\n",
              result.cells.size(), cfg.replicas,
              static_cast<unsigned long long>(result.runs));

  std::printf("%4s %3s %-8s %6s | %9s %12s %14s\n", "N", "C", "strategy",
              "drop", "delivered", "latency(ms)", "H* (bits)");
  for (const auto& cell : result.cells) {
    std::printf("%4u %3u %-8s %6.2f | %8.1f%% %12.1f %8.3f +/- %.3f\n",
                cell.scene.node_count, cell.scene.compromised_count,
                cell.scene.lengths.label().c_str(),
                cell.scene.drop_probability,
                100.0 * cell.delivered_fraction.mean(),
                cell.latency_seconds.mean() * 1000.0,
                cell.entropy_bits.mean(),
                cell.entropy_bits.ci_half_width());
  }

  // The determinism contract: the same grid + master seed aggregates to the
  // same bytes no matter how many worker threads ran it.
  std::ostringstream a, b;
  sim::write_csv(result, a);
  cfg.threads = 1;
  sim::write_csv(sim::run_campaign(grid, cfg), b);
  std::printf("\nthreads=0 vs threads=1 CSV byte-identical: %s\n",
              a.str() == b.str() ? "yes" : "NO (bug!)");
  return 0;
}
