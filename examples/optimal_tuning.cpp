// Walks an operator through tuning a rerouting system with the optimizer:
// sweep the latency budget (expected path length), compare strategy
// families, and print the exact distribution to deploy — the workflow the
// paper's Sec. 5.4 optimization enables.
//
// Build & run:  ./build/examples/optimal_tuning [N]

#include <cstdio>
#include <cstdlib>

#include "src/anonymity/analytic.hpp"
#include "src/anonymity/closed_forms.hpp"
#include "src/anonymity/optimizer.hpp"

int main(int argc, char** argv) {
  using namespace anonpath;

  const std::uint32_t n =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 100;
  const system_params sys{n, 1};
  const auto cap = static_cast<path_length>(n - 1);

  std::printf("Tuning a %u-node system (C=1). Ceiling: %.4f bits.\n\n", n,
              max_anonymity_degree(sys));

  // 1. Sweep the cost budget.
  std::printf("%6s %10s %10s %10s %12s\n", "budget", "F(mean)", "best U",
              "optimal", "gain vs F");
  for (path_length mean : {1u, 2u, 3u, 5u, 8u, 12u, 20u, 30u}) {
    if (mean > cap) break;
    const double h_fixed = theorem1_fixed_length(n, mean);
    const double h_uni = best_uniform_for_mean(sys, mean, cap).degree;
    const auto opt = optimize_for_mean(sys, mean, cap);
    std::printf("%6u %10.4f %10.4f %10.4f %12.4f\n", mean, h_fixed, h_uni,
                opt.degree, opt.degree - h_fixed);
  }

  // 2. Show the deployable artifact for one budget.
  const double budget = 5.0;
  const auto opt = optimize_for_mean(sys, budget, cap);
  std::printf("\nDeployable distribution for budget E[L] = %.1f:\n", budget);
  const auto& pmf = opt.distribution.dense_pmf();
  for (path_length l = 0; l < pmf.size(); ++l) {
    if (pmf[l] > 1e-9) std::printf("  Pr[L = %3u] = %.6f\n", l, pmf[l]);
  }
  std::printf("  H* = %.4f bits (vs fixed %.4f, ceiling %.4f)\n", opt.degree,
              theorem1_fixed_length(n, static_cast<path_length>(budget)),
              max_anonymity_degree(sys));

  // 3. The unconstrained best, if latency is no object.
  const auto best = optimize_unconstrained(sys, cap);
  std::printf("\nIf latency were free: H* = %.4f bits at mean length %.1f "
              "(best fixed: %.4f at its peak)\n",
              best.degree, best.signature.mean,
              best_fixed(sys, cap).degree);
  return 0;
}
