// Fault-tolerance walkthrough: what the fault-injection layer does to a
// mix cascade, and what recovering from it costs in anonymity.
//
//   1. degrade one fabric three ways — random link loss, an explicit
//      crash/repair plan for a named mix, and seeded mix-failure
//      episodes — and compare delivery;
//   2. arm retransmission-with-backoff and watch delivery recover while
//      the adversary's per-message uncertainty (measured over ALL
//      messages, unobserved ones at the prior) shrinks: reliability is
//      bought with observations.
//
// Build: cmake --build build --target example_fault_tolerance

#include <cmath>
#include <cstdio>

#include "src/sim/simulator.hpp"

using namespace anonpath;

namespace {

constexpr std::uint32_t n = 30;
constexpr std::uint32_t c = 3;

sim::sim_config base_config() {
  sim::sim_config cfg;
  cfg.sys = {n, c};
  cfg.compromised = spread_compromised(n, c);
  cfg.lengths = path_length_distribution::uniform(1, 6);
  cfg.message_count = 600;
  cfg.arrival_rate = 100.0;
  cfg.seed = 11;
  return cfg;
}

void report_row(const char* label, const sim::sim_config& cfg) {
  const auto r = sim::run_simulation(cfg);
  std::printf("  %-28s %5.1f%%  %6llu lost   %.3fs mean latency\n", label,
              100.0 * static_cast<double>(r.delivered) /
                  static_cast<double>(r.submitted),
              static_cast<unsigned long long>(r.submitted - r.delivered),
              r.end_to_end_latency.mean());
}

double all_message_entropy(const sim::sim_report& r,
                           std::uint32_t message_count) {
  double bits = std::log2(static_cast<double>(n - c)) *
                static_cast<double>(message_count - r.posteriors.size());
  for (const auto& post : r.posteriors)
    for (double p : post)
      if (p > 0.0) bits -= p * std::log2(p);
  return bits / static_cast<double>(message_count);
}

}  // namespace

int main() {
  std::printf("Fault injection on one fabric (N=%u, C=%u, U(1,6), 600 msgs)\n",
              n, c);
  std::printf("  %-28s %-7s %-13s %s\n", "fault plan", "deliv", "undelivered",
              "latency");

  sim::sim_config cfg = base_config();
  report_row("none", cfg);

  cfg = base_config();
  cfg.faults.drop_probability = 0.15;
  report_row(cfg.faults.label().c_str(), cfg);

  cfg = base_config();
  cfg.faults.outages = {{4, 0.0, 3.0}, {7, 2.0, 2.0}};  // crash/repair plan
  report_row(cfg.faults.label().c_str(), cfg);

  cfg = base_config();
  cfg.faults.mix_failures = {6, 0.0, 0.8};  // seeded episodes, auto horizon
  report_row(cfg.faults.label().c_str(), cfg);

  std::printf(
      "\nRecovery at drop 0.25: retransmission-with-backoff "
      "(timeout 0.3s, x2, cap 30s)\n");
  std::printf("  %-8s %-10s %-14s %s\n", "budget", "delivered",
              "retrans/msg", "per-msg entropy (bits, all msgs)");
  for (const std::uint32_t budget : {0u, 1u, 2u, 4u}) {
    sim::sim_config run = base_config();
    run.faults.drop_probability = 0.25;
    run.retry.max_retries = budget;
    run.retry.timeout = 0.3;
    run.collect_posteriors = true;
    const auto r = sim::run_simulation(run);
    std::printf("  %-8u %8.1f%% %11.2f    %.3f\n", budget,
                100.0 * static_cast<double>(r.delivered) /
                    static_cast<double>(r.submitted),
                static_cast<double>(r.retransmissions) /
                    static_cast<double>(r.submitted),
                all_message_entropy(r, run.message_count));
  }
  std::printf(
      "\nEvery retransmission re-walks a fresh path: delivery climbs, but\n"
      "each extra walk is another observation the coalition fuses into its\n"
      "posterior — the anonymity bill for reliability.\n");
  return 0;
}
