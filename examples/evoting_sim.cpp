// E-voting scenario (the paper's Sec. 1 motivating application): ballots
// must not be traceable to voters. Runs the full simulated onion network —
// layered encryption, per-hop peeling, a passive adversary with agents at
// compromised nodes and at the (compromised) tally server — and reports how
// well each routing policy protects the voters, against the analytic
// prediction.
//
// Build & run:  ./build/examples/evoting_sim

#include <cstdio>

#include "src/anonymity/analytic.hpp"
#include "src/anonymity/optimizer.hpp"
#include "src/sim/simulator.hpp"

int main() {
  using namespace anonpath;

  // 60 voters, 2 colluding compromised relays, tally server compromised.
  sim::sim_config cfg;
  cfg.sys = {60, 2};
  cfg.compromised = {11, 42};
  cfg.message_count = 3000;  // ballots
  cfg.arrival_rate = 120.0;
  cfg.seed = 1789;

  std::printf("E-voting: 60 voters, 2 compromised relays + compromised tally "
              "server, 3000 ballots\n");
  std::printf("ceiling log2(60) = %.4f bits\n\n", max_anonymity_degree(cfg.sys));
  std::printf("%-22s %10s %12s %12s %12s %10s\n", "routing policy", "mean len",
              "latency ms", "H* empirical", "identified", "top1-acc");

  const auto policies = {
      path_length_distribution::fixed(0),   // naive direct submission
      path_length_distribution::fixed(1),   // Anonymizer-style proxy
      path_length_distribution::fixed(3),   // Freedom-style
      path_length_distribution::fixed(5),   // Onion-Routing-I-style
      path_length_distribution::uniform(2, 14),
      optimize_for_mean(cfg.sys, 8.0, 59).distribution,
  };
  for (const auto& policy : policies) {
    cfg.lengths = policy;
    const auto r = sim::run_simulation(cfg);
    std::printf("%-22s %10.2f %12.2f %12.4f %11.1f%% %9.1f%%\n",
                policy.label().c_str(), policy.mean(),
                r.end_to_end_latency.mean() * 1000.0,
                r.empirical_entropy_bits, 100.0 * r.identified_fraction,
                100.0 * r.top1_accuracy);
  }

  std::printf(
      "\n'identified' = ballots whose sender the adversary pins with >99%%\n"
      "posterior confidence; 'top1-acc' = how often the adversary's best\n"
      "guess is the true voter. Direct submission exposes every ballot;\n"
      "the optimized variable-length policy costs ~8 hops of latency and\n"
      "keeps the posterior near the ceiling.\n");
  return 0;
}
