// Threat-model walkthrough: run the same traffic against the three
// adversary models, then show the trace pipeline — capture once, re-score
// offline, including under a deliberately weaker "drop-in" inference
// engine — the workflow that decouples simulation cost from inference cost.
//
// Build & run:  ./build/example_adversary_models

#include <cstdio>
#include <sstream>

#include "src/anonymity/entropy.hpp"
#include "src/sim/simulator.hpp"
#include "src/sim/trace.hpp"

int main() {
  using namespace anonpath;
  using namespace anonpath::sim;

  sim_config base;
  base.sys = {50, 4};
  base.compromised = spread_compromised(50, 4);
  base.lengths = path_length_distribution::uniform(1, 8);
  base.message_count = 500;
  base.seed = 2026;

  std::printf("same traffic (N=50, C=4, U(1,8), 500 msgs), three threat "
              "models:\n\n");
  std::printf("%-22s %10s %12s %8s\n", "adversary", "H* (bits)", "identified",
              "top-1");

  const adversary_config models[] = {
      {},  // full coalition — the paper's Sec. 4 worst case
      {adversary_kind::partial_coverage, 0.08, true},
      {adversary_kind::partial_coverage, 0.08, false},
      {adversary_kind::timing_correlator, 1.0, true},
  };
  for (const adversary_config& adv : models) {
    sim_config cfg = base;
    cfg.adversary = adv;
    const sim_report r = run_simulation(cfg);
    std::printf("%-22s %10.4f %11.1f%% %7.1f%%\n", adv.label().c_str(),
                r.empirical_entropy_bits, 100.0 * r.identified_fraction,
                100.0 * r.top1_accuracy);
  }

  // Trace reuse: capture the run once, then score it under two engines
  // without touching the event-driven simulator again.
  const sim_trace trace = capture_trace(base);
  std::ostringstream serialized;
  write_trace(trace, serialized);
  std::printf("\ncaptured %zu adversary events (%zu bytes serialized)\n",
              trace.events.size(), serialized.str().size());

  const sim_report exact = replay_trace(trace);
  std::printf("replay, exact engine:      H* = %.4f bits (inline match: %s)\n",
              exact.empirical_entropy_bits,
              exact.empirical_entropy_bits ==
                      run_simulation(base).empirical_entropy_bits
                  ? "yes"
                  : "NO");

  // A degenerate engine that ignores the evidence entirely: the uniform
  // posterior over all nodes. Its H* is the ceiling log2(N) — the distance
  // to the exact engine's number is what Bayesian inference buys.
  const posterior_fn uniform_engine = [&](const observation&) {
    return std::vector<double>(base.sys.node_count,
                               1.0 / base.sys.node_count);
  };
  const sim_report blind = replay_trace(trace, uniform_engine);
  std::printf("replay, evidence-blind:    H* = %.4f bits (= log2(N))\n",
              blind.empirical_entropy_bits);
  return 0;
}
