// Long-term disclosure attacks: why per-message anonymity is not enough.
//
// A population of users communicates through a threshold mix in batched
// rounds. One persistent pair (Alice -> Bob) re-communicates across rounds;
// everything else is background traffic from a Zipf receiver law. Each
// round the adversary only learns *membership* — who submitted and which
// receivers got mail — yet all three longitudinal attacks converge on Bob:
// the exact intersection in a handful of rounds, sequential Bayes almost as
// fast, and the statistical disclosure estimator more slowly but at scales
// where the exact attack is infeasible.
//
// The second half runs the same story end to end through the discrete-event
// simulator: the rerouting layer (the paper's per-message defense) is live,
// the adversary's per-message posteriors feed the sequential-Bayes fusion,
// and the persistent pair still falls.

#include <cstdio>

#include "src/attack/disclosure.hpp"
#include "src/attack/intersection.hpp"
#include "src/sim/simulator.hpp"
#include "src/workload/population.hpp"

using namespace anonpath;

namespace {

void run_pure_workload() {
  workload::population_config cfg;
  cfg.seed = 2026;
  cfg.user_count = 2000;
  cfg.receiver_count = 2000;
  cfg.round_count = 600;
  cfg.persistent_pairs = 1;
  cfg.persistent_rate = 0.8;
  cfg.round_size = 12;
  cfg.receiver_law = {workload::popularity_kind::zipf, 1.0};
  const workload::population pop(cfg);
  const workload::persistent_pair truth = pop.pairs().front();
  std::printf("workload %s\n", cfg.label().c_str());
  std::printf("ground truth: user %u persistently writes to receiver %u\n\n",
              truth.sender, truth.receiver);

  for (const attack::attack_kind kind :
       {attack::attack_kind::intersection, attack::attack_kind::sda,
        attack::attack_kind::sequential_bayes}) {
    const double threshold = kind == attack::attack_kind::sda ? 0.2 : 0.99;
    auto engine = attack::make_attack(kind, cfg.receiver_count);
    const auto result =
        attack::run_workload_attack(pop, 0, *engine, threshold, 25);
    std::printf("%-16s: ", attack::attack_kind_label(kind));
    if (result.identified_round)
      std::printf("identified receiver %u at round %u (%s, mass %.3f)\n",
                  result.top_receiver, *result.identified_round,
                  result.top_receiver == truth.receiver ? "correct" : "wrong",
                  result.top_mass);
    else
      std::printf("not identified in %u rounds (top %u, mass %.3f, H=%.2f)\n",
                  result.rounds, result.top_receiver, result.top_mass,
                  result.entropy_bits);
    std::printf("                  entropy trajectory (bits):");
    for (std::size_t i = 0; i < result.trajectory.size(); i += 6)
      std::printf(" %.2f", result.trajectory[i].entropy_bits);
    std::printf("\n");
  }
}

void run_sim_session() {
  sim::sim_config cfg;
  cfg.sys = {40, 4};
  cfg.compromised = spread_compromised(40, 4);
  cfg.lengths = path_length_distribution::uniform(1, 6);
  cfg.message_count = 4000;
  cfg.arrival_rate = 200.0;
  cfg.seed = 7;
  cfg.session.rounds = 100;
  cfg.session.receiver_count = 25;
  cfg.session.receiver_law = {workload::popularity_kind::zipf, 1.0};
  cfg.session.target_sender = 1;  // node 0 is compromised
  cfg.session.partner = 3;
  cfg.session.attack = attack::attack_kind::sequential_bayes;
  const sim::sim_report report = sim::run_simulation(cfg);

  std::printf("\nsimulator session: N=%u, C=%u, %u msgs in %u rounds, "
              "%u pseudonymous receivers\n",
              cfg.sys.node_count, cfg.sys.compromised_count,
              cfg.message_count, cfg.session.rounds,
              cfg.session.receiver_count);
  std::printf("per-message view:  H* = %.3f bits, identified %.1f%%\n",
              report.empirical_entropy_bits,
              100.0 * report.identified_fraction);
  const sim::session_report& s = *report.session;
  std::printf("longitudinal view: sequential Bayes over %u rounds -> "
              "receiver %u (mass %.3f, %s)\n",
              s.rounds, s.top_receiver, s.top_mass,
              s.correct ? "correct" : "wrong");
  if (s.identified_round > 0)
    std::printf("                   partner pinned at round %u despite the "
                "rerouting layer\n",
                s.identified_round);
}

}  // namespace

int main() {
  run_pure_workload();
  run_sim_session();
  return 0;
}
