// Ranks the anonymous communication systems surveyed in the paper's Sec. 2
// (Anonymizer, LPWA, Freedom, Onion Routing I/II, Crowds, Hordes, PipeNet)
// by anonymity degree on the same system, and shows what each would gain by
// switching to the optimal length distribution at the same rerouting cost —
// the paper's concluding recommendation, made concrete.
//
// Build & run:  ./build/examples/protocol_comparison [N] [C-position]

#include <algorithm>
#include <cstdio>
#include <cmath>
#include <cstdlib>
#include <vector>

#include "src/anonymity/analytic.hpp"
#include "src/anonymity/optimizer.hpp"
#include "src/anonymity/strategy.hpp"

int main(int argc, char** argv) {
  using namespace anonpath;

  const std::uint32_t n =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 100;
  const system_params sys{n, 1};
  const auto cap = static_cast<path_length>(n - 1);

  struct row {
    std::string name;
    double mean;
    double degree;
    double optimal;
  };
  std::vector<row> rows;
  for (const auto& p : protocols::survey(cap)) {
    const double h = anonymity_degree(sys, p.lengths);
    const double target = std::min<double>(cap, std::round(p.lengths.mean()));
    const double h_opt = optimize_for_mean(sys, target, cap).degree;
    rows.push_back({p.name, p.lengths.mean(), h, h_opt});
  }
  std::sort(rows.begin(), rows.end(),
            [](const row& a, const row& b) { return a.degree > b.degree; });

  std::printf("Protocol ranking on N=%u nodes, C=1 compromised "
              "(ceiling log2(N) = %.4f bits)\n\n",
              n, max_anonymity_degree(sys));
  std::printf("%-18s %10s %12s %14s %10s\n", "protocol", "mean len",
              "H* (bits)", "optimal@mean", "headroom");
  for (const auto& r : rows) {
    std::printf("%-18s %10.2f %12.4f %14.4f %10.4f\n", r.name.c_str(), r.mean,
                r.degree, r.optimal, r.optimal - r.degree);
  }

  std::printf(
      "\nReading: 'headroom' is the anonymity the protocol leaves on the\n"
      "table versus the optimal length distribution at the same expected\n"
      "rerouting cost (paper Sec. 5.4). Single-hop proxies (Anonymizer,\n"
      "LPWA) and short fixed routes (Freedom) leave the most.\n");
  return 0;
}
