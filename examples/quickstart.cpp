// Quickstart: score a rerouting strategy's anonymity, compare a few
// classics, and ask the optimizer for the best length distribution.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "src/anonymity/analytic.hpp"
#include "src/anonymity/length_distribution.hpp"
#include "src/anonymity/optimizer.hpp"
#include "src/anonymity/strategy.hpp"

int main() {
  using namespace anonpath;

  // A 100-node system with one compromised node (plus the compromised
  // receiver) — the configuration of the paper's evaluation.
  const system_params sys{100, 1};

  std::printf("System: N=%u nodes, C=%u compromised, ceiling log2(N)=%.4f bits\n\n",
              sys.node_count, sys.compromised_count, max_anonymity_degree(sys));

  // 1. Score any strategy with one call.
  const auto freedom = path_length_distribution::fixed(3);
  std::printf("Freedom-style F(3):            H* = %.4f bits\n",
              anonymity_degree(sys, freedom));

  // 2. Variable-length strategies are first-class.
  const auto crowds = path_length_distribution::geometric(0.75, 1, 99);
  std::printf("Crowds (pf=0.75), mean %.2f:   H* = %.4f bits\n", crowds.mean(),
              anonymity_degree(sys, crowds));

  // 3. Inspect *why* via the event breakdown.
  const auto b = anonymity_breakdown(sys, freedom);
  std::printf("\nF(3) event breakdown:\n");
  std::printf("  sender compromised: p=%.4f (H=0)\n", b.p_sender_compromised);
  std::printf("  c absent:           p=%.4f H=%.4f\n", b.p_absent, b.h_absent);
  std::printf("  c last hop:         p=%.4f H=%.4f\n", b.p_last, b.h_last);
  std::printf("  c penultimate:      p=%.4f H=%.4f\n", b.p_penultimate,
              b.h_penultimate);
  std::printf("  c mid-path:         p=%.4f H=%.4f\n", b.p_mid, b.h_mid);

  // 4. The paper's optimum: best length distribution at a given mean cost.
  const double mean_budget = 5.0;
  const auto opt = optimize_for_mean(sys, mean_budget, 99);
  std::printf("\nOptimal strategy at mean length %.1f: H* = %.4f bits\n",
              mean_budget, opt.degree);
  std::printf("  signature: p0=%.4f p1=%.4f p2=%.4f mean=%.2f\n",
              opt.signature.p0, opt.signature.p1, opt.signature.p2,
              opt.signature.mean);
  std::printf("  vs best fixed at same mean F(5): %.4f bits\n",
              anonymity_degree(sys, path_length_distribution::fixed(5)));
  return 0;
}
