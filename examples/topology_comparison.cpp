// Topology comparison walkthrough: how much sender anonymity does the
// rerouting substrate itself buy or cost? The paper's model assumes a
// clique (every node forwards to every other node); this example holds
// N, C, and the length strategy fixed and swaps only the graph:
//
//   1. score each topology's exact walk-model H* by Monte Carlo
//      (net::estimate_topology_degree, pinned to the graph oracle by the
//      conformance suite);
//   2. run the full discrete-event simulator on the same graphs and
//      compare the adversary's empirical view;
//   3. turn on churn and watch messages strand at dead hops.
//
// Build: cmake --build build --target example_topology_comparison

#include <cmath>
#include <cstdio>
#include <vector>

#include "src/net/topology.hpp"
#include "src/net/topology_mc.hpp"
#include "src/sim/simulator.hpp"

using namespace anonpath;

namespace {

constexpr std::uint32_t n = 30;
constexpr std::uint32_t c = 3;

std::vector<net::topology_config> lineup() {
  std::vector<net::topology_config> out;
  out.push_back(net::topology_config{});  // the paper's clique
  net::topology_config cfg;
  cfg.kind = net::topology_kind::ring;
  cfg.ring_k = 2;
  out.push_back(cfg);
  cfg = net::topology_config{};
  cfg.kind = net::topology_kind::random_regular;
  cfg.degree = 6;
  out.push_back(cfg);
  cfg = net::topology_config{};
  cfg.kind = net::topology_kind::tiered;
  cfg.tiers = 3;
  out.push_back(cfg);
  cfg = net::topology_config{};
  cfg.kind = net::topology_kind::trust_weighted;
  cfg.trust_decay = 0.4;
  out.push_back(cfg);
  return out;
}

}  // namespace

int main() {
  const auto d = path_length_distribution::uniform(1, 6);
  const auto compromised = spread_compromised(n, c);

  std::printf("Walk-model H* by topology (N=%u, C=%u, %s; ceiling %.3f bits)\n",
              n, c, d.label().c_str(),
              std::log2(static_cast<double>(n)));
  std::printf("  %-14s %10s %10s %8s\n", "topology", "H* (bits)", "+/-95%",
              "degree");
  for (const auto& cfg : lineup()) {
    const auto est = net::estimate_topology_degree({n, c}, compromised, d,
                                                   cfg, 40000, 7, 0);
    const auto topo = net::topology::make(n, cfg);
    std::printf("  %-14s %10.4f %10.4f %5u-%u\n", cfg.label().c_str(),
                est.degree, est.ci95(), topo.min_degree(),
                topo.max_degree());
  }

  std::printf("\nSimulated adversary view (2000 msgs each)\n");
  std::printf("  %-14s %10s %12s %10s\n", "topology", "H* (bits)",
              "identified%", "top1%");
  for (const auto& cfg : lineup()) {
    sim::sim_config sc;
    sc.sys = {n, c};
    sc.compromised = compromised;
    sc.lengths = d;
    sc.message_count = 2000;
    sc.arrival_rate = 200.0;
    sc.seed = 9;
    sc.topology = cfg;
    const auto r = sim::run_simulation(sc);
    std::printf("  %-14s %10.4f %11.1f%% %9.1f%%\n", cfg.label().c_str(),
                r.empirical_entropy_bits, 100.0 * r.identified_fraction,
                100.0 * r.top1_accuracy);
  }

  std::printf("\nChurn on the tiered graph (rate/s : mean downtime s)\n");
  std::printf("  %-14s %10s %10s\n", "churn", "delivered", "latency ms");
  for (const auto& churn :
       {net::churn_config{}, net::churn_config{0.2, 0.5},
        net::churn_config{1.0, 0.5}, net::churn_config{2.0, 1.0}}) {
    sim::sim_config sc;
    sc.sys = {n, c};
    sc.compromised = compromised;
    sc.lengths = d;
    sc.message_count = 2000;
    sc.arrival_rate = 200.0;
    sc.seed = 9;
    sc.topology.kind = net::topology_kind::tiered;
    sc.topology.tiers = 3;
    sc.faults.churn = churn;
    const auto r = sim::run_simulation(sc);
    std::printf("  %-14s %9.1f%% %10.1f\n", churn.label().c_str(),
                100.0 * static_cast<double>(r.delivered) /
                    static_cast<double>(r.submitted),
                r.end_to_end_latency.mean() * 1000.0);
  }
  return 0;
}
