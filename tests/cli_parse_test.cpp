// Negative-parse matrix for the anonpath CLI's numeric flags. Every value
// below used to slip through atoi/atoll (garbage parsing as 0, "4x" as 4)
// or strtod without an end check; the checked parsers must refuse each with
// a nonzero exit and a diagnostic on stderr. Runs the real binary — the
// build exports its path via ANONPATH_CLI_BINARY; without it (library-only
// builds) the suite skips.

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

std::string cli_binary() {
#ifdef ANONPATH_CLI_BINARY
  return ANONPATH_CLI_BINARY;
#else
  return {};
#endif
}

struct run_result {
  int exit_code = -1;
  std::string stderr_text;
};

/// Runs the CLI with the given argument string, stdout discarded, stderr
/// captured to a temp file. The file name carries the pid and a counter:
/// ctest runs the CliParse cases as concurrent processes sharing TempDir,
/// and a shared name would let one case clobber another's capture.
run_result run_cli(const std::string& args) {
  static int serial = 0;
  const std::string err_path = ::testing::TempDir() + "anonpath_cli_stderr." +
                               std::to_string(::getpid()) + "." +
                               std::to_string(serial++) + ".txt";
  const std::string cmd =
      "'" + cli_binary() + "' " + args + " >/dev/null 2>'" + err_path + "'";
  const int status = std::system(cmd.c_str());
  run_result r;
  r.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  std::ifstream err(err_path);
  std::ostringstream text;
  text << err.rdbuf();
  r.stderr_text = text.str();
  std::remove(err_path.c_str());
  return r;
}

class CliParse : public ::testing::Test {
 protected:
  void SetUp() override {
    if (cli_binary().empty())
      GTEST_SKIP() << "ANONPATH_CLI_BINARY not set (CLI not built)";
  }
};

TEST_F(CliParse, NumericFlagMatrixRejectsBadValues) {
  // Every numeric flag x {garbage, trailing junk, negative, overflow}.
  // The command does not matter — values are checked at flag-parse time,
  // before command dispatch — but each flag rides a command that accepts
  // it so a future parse-order change cannot quietly skip the check.
  struct flag_case {
    const char* command;  // command line up to the flag under test
    const char* flag;
  };
  const std::vector<flag_case> flags = {
      {"simulate --n 20 --c 2", "--messages"},
      {"simulate --n 20 --c 2", "--seed"},
      {"campaign --n 20 --c 2", "--replicas"},
      {"campaign --n 20 --c 2", "--threads"},
      {"estimate --n 50 --c 2", "--samples"},
      {"estimate --n 50 --c 2", "--shards"},
      {"plan --n 100", "--source"},
      {"plan --n 100", "--routes"},
      {"estimate --c 2", "--n"},
      {"estimate --n 50", "--c"},
  };
  const std::vector<const char*> bad_values = {
      "foo",                     // pure garbage (atoi returned 0)
      "4x",                      // trailing junk (atoi returned 4)
      "-1",                      // negative into an unsigned flag
      "99999999999999999999999"  // out of range for every width
  };
  for (const auto& f : flags) {
    for (const char* value : bad_values) {
      const std::string args = std::string(f.command) + " " + f.flag + " '" +
                               value + "'";
      const run_result r = run_cli(args);
      EXPECT_NE(r.exit_code, 0) << "accepted: anonpath " << args;
      EXPECT_FALSE(r.stderr_text.empty())
          << "no stderr diagnostic: anonpath " << args;
    }
  }
}

TEST_F(CliParse, FloatFlagsRejectJunkTails) {
  // strtod parses a numeric prefix; the end-pointer check must refuse what
  // it leaves behind, plus overflow and non-finite spellings.
  for (const char* value : {"foo", "2.5x", "1e", ".", "1e999", "inf", "nan"}) {
    const run_result r =
        run_cli(std::string("optimize --n 100 --mean '") + value + "'");
    EXPECT_NE(r.exit_code, 0) << "--mean accepted '" << value << "'";
    EXPECT_FALSE(r.stderr_text.empty());
  }
  // --rate is a comma-list axis with its own per-element end check.
  for (const char* value : {"foo", "50x", "50,"}) {
    const run_result r = run_cli(
        std::string("simulate --n 20 --c 2 --rate '") + value + "'");
    EXPECT_NE(r.exit_code, 0) << "--rate accepted '" << value << "'";
    EXPECT_FALSE(r.stderr_text.empty());
  }
}

TEST_F(CliParse, ZeroWhereItIsMeaningless) {
  // 0 parses fine but is rejected by the range checks — the old atoi bug
  // made garbage indistinguishable from an explicit 0, so both must fail.
  for (const char* args :
       {"simulate --n 20 --c 2 --messages 0",
        "campaign --n 20 --c 2 --replicas 0",
        "optimize --n 50 --c 2 --samples 0", "plan --n 100 --routes 0"}) {
    const run_result r = run_cli(args);
    EXPECT_NE(r.exit_code, 0) << "accepted: anonpath " << args;
    EXPECT_FALSE(r.stderr_text.empty());
  }
}

TEST_F(CliParse, RoutingFlagValidation) {
  for (const char* args :
       {"simulate --n 20 --c 2 --routing bogus",
        "simulate --n 20 --c 2 --routing kpaths:0",
        "simulate --n 20 --c 2 --routing kpaths:65",
        "simulate --n 20 --c 2 --routing kpaths:4x",
        // kpaths needs source routing and a non-timing adversary.
        "simulate --n 20 --c 2 --mode hop_by_hop --routing kpaths",
        "simulate --n 20 --c 2 --adversary timing --routing kpaths",
        // estimate/replay are clique-analytic surfaces: no planned routes.
        "estimate --n 50 --c 2 --routing kpaths"}) {
    const run_result r = run_cli(args);
    EXPECT_NE(r.exit_code, 0) << "accepted: anonpath " << args;
    EXPECT_FALSE(r.stderr_text.empty());
  }
}

TEST_F(CliParse, PositiveControls) {
  // The matrix proves rejection; these prove the runner and the happy path
  // still work, so a binary that exits nonzero on everything cannot pass.
  EXPECT_EQ(run_cli("estimate --n 50 --c 2 --samples 20000").exit_code, 0);
  EXPECT_EQ(
      run_cli("simulate --n 12 --c 2 --messages 20 --seed 3").exit_code, 0);
  EXPECT_EQ(run_cli("plan --n 200 --topology regular:4 --csr --routes 10 "
                    "--routing kpaths:2")
                .exit_code,
            0);
}

}  // namespace
