// Negative-parse matrix for the anonpath CLI's numeric flags. Every value
// below used to slip through atoi/atoll (garbage parsing as 0, "4x" as 4)
// or strtod without an end check; the checked parsers must refuse each with
// a nonzero exit and a diagnostic on stderr. Runs the real binary — the
// build exports its path via ANONPATH_CLI_BINARY; without it (library-only
// builds) the suite skips.

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

std::string cli_binary() {
#ifdef ANONPATH_CLI_BINARY
  return ANONPATH_CLI_BINARY;
#else
  return {};
#endif
}

struct run_result {
  int exit_code = -1;
  std::string stderr_text;
};

/// Runs the CLI with the given argument string, stdout discarded, stderr
/// captured to a temp file. The file name carries the pid and a counter:
/// ctest runs the CliParse cases as concurrent processes sharing TempDir,
/// and a shared name would let one case clobber another's capture.
run_result run_cli(const std::string& args) {
  static int serial = 0;
  const std::string err_path = ::testing::TempDir() + "anonpath_cli_stderr." +
                               std::to_string(::getpid()) + "." +
                               std::to_string(serial++) + ".txt";
  const std::string cmd =
      "'" + cli_binary() + "' " + args + " >/dev/null 2>'" + err_path + "'";
  const int status = std::system(cmd.c_str());
  run_result r;
  r.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  std::ifstream err(err_path);
  std::ostringstream text;
  text << err.rdbuf();
  r.stderr_text = text.str();
  std::remove(err_path.c_str());
  return r;
}

class CliParse : public ::testing::Test {
 protected:
  void SetUp() override {
    if (cli_binary().empty())
      GTEST_SKIP() << "ANONPATH_CLI_BINARY not set (CLI not built)";
  }
};

TEST_F(CliParse, NumericFlagMatrixRejectsBadValues) {
  // Every numeric flag x {garbage, trailing junk, negative, overflow}.
  // The command does not matter — values are checked at flag-parse time,
  // before command dispatch — but each flag rides a command that accepts
  // it so a future parse-order change cannot quietly skip the check.
  struct flag_case {
    const char* command;  // command line up to the flag under test
    const char* flag;
  };
  const std::vector<flag_case> flags = {
      {"simulate --n 20 --c 2", "--messages"},
      {"simulate --n 20 --c 2", "--seed"},
      {"campaign --n 20 --c 2", "--replicas"},
      {"campaign --n 20 --c 2", "--threads"},
      {"estimate --n 50 --c 2", "--samples"},
      {"estimate --n 50 --c 2", "--shards"},
      {"plan --n 100", "--source"},
      {"plan --n 100", "--routes"},
      {"estimate --c 2", "--n"},
      {"estimate --n 50", "--c"},
  };
  const std::vector<const char*> bad_values = {
      "foo",                     // pure garbage (atoi returned 0)
      "4x",                      // trailing junk (atoi returned 4)
      "-1",                      // negative into an unsigned flag
      "99999999999999999999999"  // out of range for every width
  };
  for (const auto& f : flags) {
    for (const char* value : bad_values) {
      const std::string args = std::string(f.command) + " " + f.flag + " '" +
                               value + "'";
      const run_result r = run_cli(args);
      EXPECT_NE(r.exit_code, 0) << "accepted: anonpath " << args;
      EXPECT_FALSE(r.stderr_text.empty())
          << "no stderr diagnostic: anonpath " << args;
    }
  }
}

TEST_F(CliParse, FloatFlagsRejectJunkTails) {
  // strtod parses a numeric prefix; the end-pointer check must refuse what
  // it leaves behind, plus overflow and non-finite spellings.
  for (const char* value : {"foo", "2.5x", "1e", ".", "1e999", "inf", "nan"}) {
    const run_result r =
        run_cli(std::string("optimize --n 100 --mean '") + value + "'");
    EXPECT_NE(r.exit_code, 0) << "--mean accepted '" << value << "'";
    EXPECT_FALSE(r.stderr_text.empty());
  }
  // --rate is a comma-list axis with its own per-element end check.
  for (const char* value : {"foo", "50x", "50,"}) {
    const run_result r = run_cli(
        std::string("simulate --n 20 --c 2 --rate '") + value + "'");
    EXPECT_NE(r.exit_code, 0) << "--rate accepted '" << value << "'";
    EXPECT_FALSE(r.stderr_text.empty());
  }
}

TEST_F(CliParse, ZeroWhereItIsMeaningless) {
  // 0 parses fine but is rejected by the range checks — the old atoi bug
  // made garbage indistinguishable from an explicit 0, so both must fail.
  for (const char* args :
       {"simulate --n 20 --c 2 --messages 0",
        "campaign --n 20 --c 2 --replicas 0",
        "optimize --n 50 --c 2 --samples 0", "plan --n 100 --routes 0"}) {
    const run_result r = run_cli(args);
    EXPECT_NE(r.exit_code, 0) << "accepted: anonpath " << args;
    EXPECT_FALSE(r.stderr_text.empty());
  }
}

TEST_F(CliParse, RoutingFlagValidation) {
  for (const char* args :
       {"simulate --n 20 --c 2 --routing bogus",
        "simulate --n 20 --c 2 --routing kpaths:0",
        "simulate --n 20 --c 2 --routing kpaths:65",
        "simulate --n 20 --c 2 --routing kpaths:4x",
        // kpaths needs source routing and a non-timing adversary.
        "simulate --n 20 --c 2 --mode hop_by_hop --routing kpaths",
        "simulate --n 20 --c 2 --adversary timing --routing kpaths",
        // estimate/replay are clique-analytic surfaces: no planned routes.
        "estimate --n 50 --c 2 --routing kpaths"}) {
    const run_result r = run_cli(args);
    EXPECT_NE(r.exit_code, 0) << "accepted: anonpath " << args;
    EXPECT_FALSE(r.stderr_text.empty());
  }
}

TEST_F(CliParse, StreamFlagValidation) {
  for (const char* args : {
           // unknown backend label
           "simulate --n 20 --c 2 --stream dense",
           "attack --users 200 --rounds 30 --attack sda --stream dense",
           // sketch state exists for the counting attack (sda) only
           "attack --users 200 --rounds 30 --attack bayes --stream sketch",
           "attack --users 200 --rounds 30 --attack intersection "
           "--stream sketch",
           "simulate --n 20 --c 2 --messages 30 --population 100 --rounds 30 "
           "--attack intersection --stream sketch",
           // simulate/attack take one backend, not an axis list
           "simulate --n 20 --c 2 --messages 30 --population 100 --rounds 30 "
           "--attack sda --stream exact,sketch",
           "attack --users 200 --rounds 30 --attack sda --stream exact,sketch",
           // --stream without a session to back it
           "simulate --n 20 --c 2 --messages 30 --stream sketch",
           // a sketch axis needs sda on the --attack axis
           "campaign --n 16 --c 1 --messages 30 --replicas 1 --population 100 "
           "--rounds 30 --attack intersection --stream sketch",
           // commands with no disclosure accumulator at all
           "estimate --n 50 --c 2 --stream exact",
           "plan --n 100 --stream sketch",
       }) {
    const run_result r = run_cli(args);
    EXPECT_NE(r.exit_code, 0) << "accepted: anonpath " << args;
    EXPECT_FALSE(r.stderr_text.empty())
        << "no stderr diagnostic: anonpath " << args;
  }
  // Positive controls: the sketch backend on its intended surfaces.
  EXPECT_EQ(run_cli("attack --users 200 --rounds 30 --attack sda "
                    "--stream sketch")
                .exit_code,
            0);
  EXPECT_EQ(run_cli("simulate --n 20 --c 2 --messages 30 --population 100 "
                    "--rounds 30 --attack sda --stream sketch --seed 5")
                .exit_code,
            0);
}

TEST_F(CliParse, ShardAndMergeFlagValidation) {
  const std::string grid = "--n 16,24 --c 1,2 --messages 40 --replicas 1";
  const std::vector<std::string> cases = {
           // --shard spec must be i/n with i < n, n >= 1.
           "campaign " + grid + " --checkpoint /tmp/x.ckpt --shard foo",
           "campaign " + grid + " --checkpoint /tmp/x.ckpt --shard 3",
           "campaign " + grid + " --checkpoint /tmp/x.ckpt --shard 3/3",
           "campaign " + grid + " --checkpoint /tmp/x.ckpt --shard 1/0",
           "campaign " + grid + " --checkpoint /tmp/x.ckpt --shard 1/2x",
           // a shard run without a journal has no output to merge.
           "campaign " + grid + " --shard 0/2",
           // more shards than cells: some shards would be empty.
           "campaign " + grid + " --checkpoint /tmp/x.ckpt --shard 0/64",
           // --shard/--input belong to campaign/merge only.
           "simulate --n 20 --c 2 --shard 0/2",
           "estimate --n 50 --c 2 --input /tmp/x.ckpt",
           "merge " + grid,  // no --input
           "merge " + grid + " --input /tmp/x.ckpt --shard 0/2",
           "merge " + grid + " --input /tmp/x.ckpt --resume",
       };
  for (const std::string& args : cases) {
    const run_result r = run_cli(args);
    EXPECT_NE(r.exit_code, 0) << "accepted: anonpath " << args;
    EXPECT_FALSE(r.stderr_text.empty())
        << "no stderr diagnostic: anonpath " << args;
  }
}

TEST_F(CliParse, ShardedCampaignMergesToUnshardedCsv) {
  // End-to-end through the real binary: 3 shard runs + merge reproduce the
  // unsharded CSV byte for byte, and a merge missing a shard exits nonzero.
  const std::string dir = ::testing::TempDir();
  const std::string grid =
      "--n 16,24 --c 1,2 --messages 40 --replicas 1 --seed 11";
  const std::string clean_csv = dir + "anonpath_cli_clean.csv";
  ASSERT_EQ(std::system(("'" + cli_binary() + "' campaign " + grid + " > '" +
                         clean_csv + "' 2>/dev/null")
                            .c_str()),
            0);
  std::string inputs;
  for (int i = 0; i < 3; ++i) {
    const std::string ckpt =
        dir + "anonpath_cli_shard" + std::to_string(i) + ".ckpt";
    inputs += " --input '" + ckpt + "'";
    EXPECT_EQ(run_cli("campaign " + grid + " --shard " + std::to_string(i) +
                      "/3 --checkpoint '" + ckpt + "'")
                  .exit_code,
              0);
  }
  const std::string merged_csv = dir + "anonpath_cli_merged.csv";
  ASSERT_EQ(std::system(("'" + cli_binary() + "' merge " + grid + inputs +
                         " > '" + merged_csv + "' 2>/dev/null")
                            .c_str()),
            0);
  std::ifstream a(clean_csv), b(merged_csv);
  std::ostringstream sa, sb;
  sa << a.rdbuf();
  sb << b.rdbuf();
  EXPECT_FALSE(sa.str().empty());
  EXPECT_EQ(sa.str(), sb.str());
  // Drop shard 1 from the input list: the merge must refuse, not emit a
  // CSV with silently absent cells.
  const run_result partial = run_cli(
      "merge " + grid + " --input '" + dir + "anonpath_cli_shard0.ckpt' " +
      "--input '" + dir + "anonpath_cli_shard2.ckpt'");
  EXPECT_NE(partial.exit_code, 0);
  EXPECT_NE(partial.stderr_text.find("missing shard"), std::string::npos)
      << partial.stderr_text;
  for (int i = 0; i < 3; ++i)
    std::remove(
        (dir + "anonpath_cli_shard" + std::to_string(i) + ".ckpt").c_str());
  std::remove(clean_csv.c_str());
  std::remove(merged_csv.c_str());
}

TEST_F(CliParse, ObsFlagValidation) {
  for (const char* args : {
           // --metrics/--progress instrument the run-shaped commands only;
           // the pure-analytic and trace surfaces must refuse loudly.
           "degree --n 50 --c 2 --metrics /tmp/m.jsonl",
           "estimate --n 50 --c 2 --metrics /tmp/m.jsonl",
           "optimize --n 50 --progress",
           "figures --progress",
           "capture --n 16 --c 1 --messages 10 --metrics /tmp/m.jsonl",
           "replay --in /tmp/x.trace --progress",
           // a value is required, and an empty one is an empty path.
           "simulate --n 20 --c 2 --metrics",
           "simulate --n 20 --c 2 --metrics=",
       }) {
    const run_result r = run_cli(args);
    EXPECT_NE(r.exit_code, 0) << "accepted: anonpath " << args;
    EXPECT_FALSE(r.stderr_text.empty())
        << "no stderr diagnostic: anonpath " << args;
  }
  // Positive controls: both spellings write a parseable snapshot, and
  // --progress emits its greppable heartbeat on stderr.
  const std::string dir = ::testing::TempDir();
  const std::string metrics = dir + "anonpath_cli_metrics.jsonl";
  std::remove(metrics.c_str());
  EXPECT_EQ(run_cli("simulate --n 12 --c 2 --messages 20 --seed 3 "
                    "--metrics '" + metrics + "'")
                .exit_code,
            0);
  {
    std::ifstream in(metrics);
    std::string header;
    ASSERT_TRUE(std::getline(in, header)) << "metrics file missing or empty";
    EXPECT_NE(header.find("\"format\":\"anonpath-metrics\""),
              std::string::npos)
        << header;
  }
  std::remove(metrics.c_str());
  const run_result progress = run_cli(
      "campaign --n 16 --c 1 --messages 20 --replicas 2 --progress "
      "--metrics='" + metrics + "'");
  EXPECT_EQ(progress.exit_code, 0);
  EXPECT_NE(progress.stderr_text.find("# progress: campaign cells"),
            std::string::npos)
      << progress.stderr_text;
  std::remove(metrics.c_str());
}

TEST_F(CliParse, WriteFailuresExitNonzeroWithDiagnostic) {
  // Output that cannot land must never yield exit 0. /dev/full accepts the
  // open and fails the flush (ENOSPC); a pipe whose reader is gone raises
  // EPIPE. Both are checked at exit via the stream/stdout state. Skip where
  // /dev/full does not fail writes (non-Linux).
  if (std::system("sh -c 'echo x > /dev/full' 2>/dev/null") == 0)
    GTEST_SKIP() << "/dev/full does not reject writes here";
  struct io_case {
    const char* tag;
    std::string cmd;
  };
  const std::string base =
      "'" + cli_binary() + "' campaign --n 16 --c 1 --messages 30";
  const std::vector<io_case> cases = {
      {"csv to full disk", base + " > /dev/full"},
      // The trace (~160K) overflows the 64K pipe buffer, so the writer is
      // guaranteed to hit EPIPE once `true` exits — a short CSV piped to a
      // fast-exiting reader can legitimately land in the buffer and win.
      {"closed pipe",
       "set -o pipefail; '" + cli_binary() +
           "' capture --n 16 --c 1 --messages 2000 | true"},
      {"checkpoint on full disk", base + " --checkpoint /dev/full >/dev/null"},
      {"trace on full disk",
       "'" + cli_binary() +
           "' capture --n 16 --c 1 --messages 30 --out /dev/full >/dev/null"},
      // --metrics writes are checked like any result-bearing output: a
      // snapshot that cannot land must fail the run, not vanish quietly.
      {"metrics on full disk", base + " --metrics /dev/full >/dev/null"},
      {"simulate metrics on full disk",
       "'" + cli_binary() +
           "' simulate --n 16 --c 1 --messages 30 --metrics /dev/full "
           ">/dev/null"},
      {"metrics to unwritable dir",
       base + " --metrics /nonexistent-dir/m.jsonl >/dev/null"},
  };
  for (const auto& c : cases) {
    static int serial = 0;
    const std::string err_path = ::testing::TempDir() +
                                 "anonpath_cli_io_stderr." +
                                 std::to_string(serial++) + ".txt";
    const std::string cmd =
        "bash -c \"" + c.cmd + "\" 2>'" + err_path + "'";
    const int status = std::system(cmd.c_str());
    const int rc = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    EXPECT_NE(rc, 0) << c.tag << " exited 0";
    std::ifstream err(err_path);
    std::ostringstream text;
    text << err.rdbuf();
    EXPECT_NE(text.str().find("error"), std::string::npos)
        << c.tag << ": no stderr diagnostic, got: " << text.str();
    std::remove(err_path.c_str());
  }
}

TEST_F(CliParse, PositiveControls) {
  // The matrix proves rejection; these prove the runner and the happy path
  // still work, so a binary that exits nonzero on everything cannot pass.
  EXPECT_EQ(run_cli("estimate --n 50 --c 2 --samples 20000").exit_code, 0);
  EXPECT_EQ(
      run_cli("simulate --n 12 --c 2 --messages 20 --seed 3").exit_code, 0);
  EXPECT_EQ(run_cli("plan --n 200 --topology regular:4 --csr --routes 10 "
                    "--routing kpaths:2")
                .exit_code,
            0);
}

}  // namespace
