// Conformance pins for the statistical disclosure attacks: on every small
// (N <= 8 receivers) fixture family the exact hitting-set oracle defines
// ground truth, and attack::sda / attack::sequential_bayes must agree with
// it — their top-ranked receiver lies in the union of minimum hitting sets,
// and when the oracle resolves a unique singleton both must rank exactly
// that receiver first. Fixtures are deterministic (constructed and seeded),
// so a scoring regression in either estimator fails loudly, not flakily.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "src/attack/disclosure.hpp"
#include "src/attack/intersection.hpp"
#include "src/attack/sda.hpp"
#include "src/attack/sequential_bayes.hpp"
#include "src/attack/sketch_sda.hpp"
#include "src/stats/rng.hpp"

namespace anonpath::attack {
namespace {

/// One fixture: the target-round receiver sets (the hitting-set family)
/// plus background rounds calibrating the statistical estimators.
struct fixture {
  std::string name;
  std::uint32_t receivers = 0;
  std::vector<std::vector<node_id>> target_rounds;
  std::vector<std::vector<node_id>> background_rounds;
};

/// Constructed families for every N in [2, 8]: the partner (id N-1) is in
/// all of T = 3*(N-1) target rounds; round i's background is every other
/// receiver EXCEPT (i mod (N-1)), so each non-partner is eliminated
/// (absent) at least three times yet remains frequent enough to make the
/// statistical ranking non-trivial. Background rounds rotate uniformly.
fixture constructed_fixture(std::uint32_t n) {
  fixture f;
  f.name = "constructed N=" + std::to_string(n);
  f.receivers = n;
  const node_id partner = n - 1;
  const std::uint32_t rounds = 3 * (n - 1);
  for (std::uint32_t i = 0; i < rounds; ++i) {
    std::vector<node_id> recv{partner};
    for (node_id r = 0; r + 1 < n; ++r)
      if (r != i % (n - 1)) recv.push_back(r);
    f.target_rounds.push_back(std::move(recv));
    f.background_rounds.push_back(
        {static_cast<node_id>(i % n), static_cast<node_id>((i + 1) % n)});
  }
  return f;
}

/// Seeded generative families: partner always present, 2 background draws
/// per round from the whole population. Deterministic via stats::rng.
fixture seeded_fixture(std::uint32_t n, std::uint64_t seed) {
  fixture f;
  f.name = "seeded N=" + std::to_string(n) + " seed=" + std::to_string(seed);
  f.receivers = n;
  const node_id partner = static_cast<node_id>(seed % n);
  stats::rng gen(seed);
  for (std::uint32_t i = 0; i < 40; ++i) {
    f.target_rounds.push_back(
        {partner, static_cast<node_id>(gen.next_below(n)),
         static_cast<node_id>(gen.next_below(n))});
    f.background_rounds.push_back(
        {static_cast<node_id>(gen.next_below(n)),
         static_cast<node_id>(gen.next_below(n)),
         static_cast<node_id>(gen.next_below(n))});
  }
  return f;
}

std::vector<fixture> fixtures() {
  std::vector<fixture> out;
  for (std::uint32_t n = 2; n <= 8; ++n) {
    out.push_back(constructed_fixture(n));
    out.push_back(seeded_fixture(n, 100 + n));
    out.push_back(seeded_fixture(n, 1000 + n));
  }
  return out;
}

/// Runs a streaming attack over the fixture, interleaving background and
/// target rounds (order must not matter for the verdicts).
std::vector<double> run_fixture(const fixture& f, disclosure_attack& atk) {
  const std::size_t rounds =
      std::max(f.target_rounds.size(), f.background_rounds.size());
  for (std::size_t i = 0; i < rounds; ++i) {
    if (i < f.background_rounds.size()) {
      round_observation obs;
      obs.target_present = false;
      obs.receivers = f.background_rounds[i];
      atk.observe_round(obs);
    }
    if (i < f.target_rounds.size()) {
      round_observation obs;
      obs.target_present = true;
      obs.receivers = f.target_rounds[i];
      atk.observe_round(obs);
    }
  }
  return atk.posterior();
}

TEST(AttackConformance, StatisticalAttacksAgreeWithHittingSetOracle) {
  for (const fixture& f : fixtures()) {
    const auto oracle = minimum_hitting_sets(f.target_rounds, f.receivers);
    ASSERT_FALSE(oracle.empty()) << f.name;
    // Union of minimum hitting sets = every receiver the exact analysis
    // keeps in play.
    std::vector<node_id> allowed;
    for (const auto& set : oracle)
      allowed.insert(allowed.end(), set.begin(), set.end());
    std::sort(allowed.begin(), allowed.end());
    allowed.erase(std::unique(allowed.begin(), allowed.end()), allowed.end());

    // The intersection attack must compute exactly the singleton-consistent
    // candidates when a singleton hitting set exists.
    intersection_attack inter(f.receivers);
    run_fixture(f, inter);
    if (oracle.front().size() == 1) {
      std::vector<node_id> singles;
      for (const auto& set : oracle) singles.push_back(set.front());
      EXPECT_EQ(inter.candidates(), singles) << f.name;
    }

    for (const attack_kind kind :
         {attack_kind::sda, attack_kind::sequential_bayes}) {
      auto atk = make_attack(kind, f.receivers);
      const std::vector<double> post = run_fixture(f, *atk);
      const auto top = static_cast<node_id>(
          std::max_element(post.begin(), post.end()) - post.begin());
      EXPECT_TRUE(std::binary_search(allowed.begin(), allowed.end(), top))
          << f.name << ": " << attack_kind_label(kind) << " top receiver "
          << top << " is outside the oracle's minimum hitting sets";
      // A uniquely-resolved singleton must be the statistical argmax too.
      if (oracle.size() == 1 && oracle.front().size() == 1) {
        EXPECT_EQ(top, oracle.front().front())
            << f.name << ": " << attack_kind_label(kind);
      }
    }
  }
}

TEST(AttackConformance, ConstructedFamiliesResolveUniquely) {
  // The constructed fixtures are built to eliminate every non-partner, so
  // the oracle must resolve to exactly {partner} — guarding the fixtures
  // themselves against silently becoming vacuous.
  for (std::uint32_t n = 2; n <= 8; ++n) {
    const fixture f = constructed_fixture(n);
    const auto oracle = minimum_hitting_sets(f.target_rounds, f.receivers);
    ASSERT_EQ(oracle.size(), 1u) << f.name;
    EXPECT_EQ(oracle.front(), std::vector<node_id>{n - 1}) << f.name;
  }
}

TEST(AttackConformance, SketchSdaMatchesExactSdaOnEveryFixtureFamily) {
  // The sketch backend's conformance pin: on every N <= 8 fixture the
  // default-width sketches are collision-free and the candidate reservoir
  // never saturates, so the sketched posterior must be bit-identical to the
  // exact sda on the same stream — and every count-min estimate must cover
  // the exact count without exceeding its error bound.
  for (const fixture& f : fixtures()) {
    sda_attack exact(f.receivers);
    run_fixture(f, exact);
    sketch_sda_attack sketched(f.receivers);
    const std::vector<double> post = run_fixture(f, sketched);
    ASSERT_FALSE(sketched.candidates_saturated()) << f.name;
    EXPECT_EQ(post, exact.posterior()) << f.name;

    std::vector<std::uint64_t> global(f.receivers, 0);
    std::vector<std::uint64_t> target(f.receivers, 0);
    for (const auto& round : f.target_rounds)
      for (node_id r : round) ++global[r], ++target[r];
    for (const auto& round : f.background_rounds)
      for (node_id r : round) ++global[r];
    for (node_id r = 0; r < f.receivers; ++r) {
      EXPECT_GE(sketched.estimate_global(r), global[r]) << f.name;
      EXPECT_LE(sketched.estimate_global(r), global[r] + sketched.error_bound())
          << f.name;
      EXPECT_GE(sketched.estimate_target(r), target[r]) << f.name;
    }
  }
}

TEST(AttackConformance, BayesSupportEqualsIntersectionOnCrispData) {
  // On lossless membership data the sequential-Bayes support (nonzero
  // posterior entries) must equal the intersection candidates exactly —
  // the per-receiver elimination rule is the same zero-count test.
  for (const fixture& f : fixtures()) {
    intersection_attack inter(f.receivers);
    run_fixture(f, inter);
    sequential_bayes_attack bayes(f.receivers);
    const std::vector<double> post = run_fixture(f, bayes);
    std::vector<node_id> support;
    for (node_id r = 0; r < f.receivers; ++r)
      if (post[r] > 0.0) support.push_back(r);
    EXPECT_EQ(support, inter.candidates()) << f.name;
  }
}

}  // namespace
}  // namespace anonpath::attack
