// Unit layer for the net::topology subsystem: constructor invariants
// (degree, symmetry, connectivity, weights), parameter validation, labels,
// the make() dispatch, walk-step sampling membership, and the churn
// renewal process (determinism, rate-0 inertness, realized transitions).

#include <gtest/gtest.h>

#include "src/net/churn.hpp"
#include "src/net/topology.hpp"
#include "src/stats/contract.hpp"
#include "src/stats/rng.hpp"

namespace anonpath::net {
namespace {

void check_invariants(const topology& t) {
  const std::uint32_t n = t.node_count();
  EXPECT_TRUE(t.connected());
  EXPECT_GE(t.min_degree(), 1u);
  for (node_id u = 0; u < n; ++u) {
    const auto& nbr = t.neighbors(u);
    const auto& w = t.neighbor_weights(u);
    ASSERT_EQ(nbr.size(), w.size());
    double total = 0.0;
    double prob = 0.0;
    for (std::size_t i = 0; i < nbr.size(); ++i) {
      EXPECT_NE(nbr[i], u) << "self-loop at " << u;
      if (i > 0) EXPECT_LT(nbr[i - 1], nbr[i]) << "unsorted adjacency";
      EXPECT_GT(w[i], 0.0);
      // Undirected: same edge, same weight, both directions.
      EXPECT_TRUE(t.has_edge(nbr[i], u));
      EXPECT_DOUBLE_EQ(t.edge_weight(nbr[i], u), w[i]);
      total += w[i];
      prob += t.transition_prob(u, nbr[i]);
    }
    EXPECT_DOUBLE_EQ(t.total_weight(u), total);
    EXPECT_NEAR(prob, 1.0, 1e-12) << "walk step not a distribution at " << u;
  }
}

TEST(Topology, CompleteHasAllEdges) {
  const auto t = topology::complete(8);
  check_invariants(t);
  EXPECT_EQ(t.min_degree(), 7u);
  EXPECT_EQ(t.max_degree(), 7u);
  EXPECT_TRUE(t.is_complete());
  for (node_id u = 0; u < 8; ++u)
    for (node_id v = 0; v < 8; ++v)
      EXPECT_EQ(t.has_edge(u, v), u != v);
}

TEST(Topology, RingDegreeAndLocality) {
  const auto t = topology::ring(10, 2);
  check_invariants(t);
  EXPECT_EQ(t.min_degree(), 4u);
  EXPECT_EQ(t.max_degree(), 4u);
  EXPECT_TRUE(t.has_edge(0, 1));
  EXPECT_TRUE(t.has_edge(0, 2));
  EXPECT_TRUE(t.has_edge(0, 9));
  EXPECT_TRUE(t.has_edge(0, 8));
  EXPECT_FALSE(t.has_edge(0, 3));
  EXPECT_FALSE(t.has_edge(0, 5));
}

TEST(Topology, RandomRegularIsRegularAndSeedDeterministic) {
  const auto a = topology::random_regular(20, 4, 7);
  const auto b = topology::random_regular(20, 4, 7);
  check_invariants(a);
  EXPECT_EQ(a.min_degree(), 4u);
  EXPECT_EQ(a.max_degree(), 4u);
  for (node_id u = 0; u < 20; ++u)
    EXPECT_EQ(a.neighbors(u), b.neighbors(u)) << "same seed, same graph";
  // Another seed almost surely wires differently somewhere.
  const auto c = topology::random_regular(20, 4, 8);
  bool differs = false;
  for (node_id u = 0; u < 20; ++u)
    if (a.neighbors(u) != c.neighbors(u)) differs = true;
  EXPECT_TRUE(differs);
}

TEST(Topology, TieredLinksOnlyAdjacentTiers) {
  const auto t = topology::tiered(9, 3);  // tiers {0,1,2} x 3 nodes
  check_invariants(t);
  const auto tier = [](node_id u) { return u / 3; };
  for (node_id u = 0; u < 9; ++u)
    for (node_id v = 0; v < 9; ++v) {
      if (u == v) continue;
      const bool adjacent_tier =
          tier(u) + 1 == tier(v) || tier(v) + 1 == tier(u);
      EXPECT_EQ(t.has_edge(u, v), adjacent_tier) << u << "~" << v;
    }
}

TEST(Topology, TrustWeightsDecayWithRingDistance) {
  const auto t = topology::trust_weighted(10, 0.5);
  check_invariants(t);
  EXPECT_EQ(t.min_degree(), 9u);  // complete adjacency, weighted
  EXPECT_DOUBLE_EQ(t.edge_weight(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(t.edge_weight(0, 2), 0.5);
  EXPECT_DOUBLE_EQ(t.edge_weight(0, 3), 0.25);
  EXPECT_DOUBLE_EQ(t.edge_weight(0, 5), 0.0625);  // distance 5
  EXPECT_DOUBLE_EQ(t.edge_weight(0, 9), 1.0);     // wraps: distance 1
  EXPECT_DOUBLE_EQ(t.edge_weight(0, 8), 0.5);
}

TEST(Topology, TrustDecayOneIsTheUniformClique) {
  const auto t = topology::trust_weighted(8, 1.0);
  for (node_id u = 0; u < 8; ++u)
    for (node_id v = 0; v < 8; ++v)
      if (u != v) EXPECT_DOUBLE_EQ(t.transition_prob(u, v), 1.0 / 7.0);
}

TEST(Topology, ConfigValidation) {
  topology_config cfg;
  EXPECT_TRUE(cfg.valid_for(2));
  EXPECT_FALSE(cfg.valid_for(1));

  cfg.kind = topology_kind::ring;
  cfg.ring_k = 0;
  EXPECT_FALSE(cfg.valid_for(10));
  cfg.ring_k = 4;
  EXPECT_TRUE(cfg.valid_for(10));  // 2k = 9 - 1
  cfg.ring_k = 5;
  EXPECT_FALSE(cfg.valid_for(10));  // 2k > n - 1

  cfg = topology_config{};
  cfg.kind = topology_kind::random_regular;
  cfg.degree = 1;
  EXPECT_FALSE(cfg.valid_for(10));
  cfg.degree = 3;
  EXPECT_TRUE(cfg.valid_for(10));   // n*d even
  EXPECT_FALSE(cfg.valid_for(9));   // n*d odd
  cfg.degree = 10;
  EXPECT_FALSE(cfg.valid_for(10));  // d >= n

  cfg = topology_config{};
  cfg.kind = topology_kind::tiered;
  cfg.tiers = 1;
  EXPECT_FALSE(cfg.valid_for(10));
  cfg.tiers = 3;
  EXPECT_TRUE(cfg.valid_for(10));
  EXPECT_FALSE(cfg.valid_for(2));  // tiers > n

  cfg = topology_config{};
  cfg.kind = topology_kind::trust_weighted;
  cfg.trust_decay = 0.0;
  EXPECT_FALSE(cfg.valid_for(10));
  cfg.trust_decay = 1.5;
  EXPECT_FALSE(cfg.valid_for(10));
  cfg.trust_decay = 0.3;
  EXPECT_TRUE(cfg.valid_for(10));
}

TEST(Topology, MakeRejectsInvalidConfigLoudly) {
  topology_config cfg;
  cfg.kind = topology_kind::ring;
  cfg.ring_k = 20;
  EXPECT_THROW((void)topology::make(10, cfg), contract_violation);
}

TEST(Topology, MakeDispatchesEveryKind) {
  for (const topology_kind kind :
       {topology_kind::complete, topology_kind::ring,
        topology_kind::random_regular, topology_kind::tiered,
        topology_kind::trust_weighted}) {
    topology_config cfg;
    cfg.kind = kind;
    cfg.ring_k = 2;
    cfg.degree = 4;
    cfg.tiers = 3;
    cfg.trust_decay = 0.5;
    const auto t = topology::make(12, cfg);
    EXPECT_EQ(t.config().kind, kind);
    EXPECT_EQ(t.node_count(), 12u);
    check_invariants(t);
  }
}

TEST(Topology, Labels) {
  EXPECT_EQ(topology_config{}.label(), "complete");
  topology_config cfg;
  cfg.kind = topology_kind::ring;
  cfg.ring_k = 2;
  EXPECT_EQ(cfg.label(), "ring(2)");
  cfg.kind = topology_kind::random_regular;
  cfg.degree = 4;
  cfg.graph_seed = 7;
  EXPECT_EQ(cfg.label(), "regular(4@7)");
  cfg.kind = topology_kind::tiered;
  cfg.tiers = 3;
  EXPECT_EQ(cfg.label(), "tiered(3)");
  cfg.kind = topology_kind::trust_weighted;
  cfg.trust_decay = 0.25;
  EXPECT_EQ(cfg.label(), "trust(0.25)");
}

TEST(Topology, SampleNeighborStaysOnEdges) {
  stats::rng gen(3);
  for (const auto& t : {topology::ring(12, 2), topology::tiered(12, 3),
                        topology::trust_weighted(12, 0.4)}) {
    for (int i = 0; i < 500; ++i) {
      const node_id u = static_cast<node_id>(gen.next_below(12));
      const node_id v = t.sample_neighbor(u, gen);
      EXPECT_TRUE(t.has_edge(u, v));
    }
  }
}

TEST(Churn, RateZeroIsInertAndDrawsNothing) {
  churn_model churn(50, churn_config{}, 42);
  EXPECT_FALSE(churn.enabled());
  for (double t : {0.0, 5.0, 1e6}) EXPECT_TRUE(churn.is_up(7, t));
  EXPECT_EQ(churn.transitions(), 0u);
}

TEST(Churn, SameSeedSameSchedule) {
  const churn_config cfg{2.0, 0.3};
  churn_model a(20, cfg, 9);
  churn_model b(20, cfg, 9);
  for (int i = 0; i <= 200; ++i) {
    const double t = 0.05 * i;
    for (node_id v = 0; v < 20; ++v) EXPECT_EQ(a.is_up(v, t), b.is_up(v, t));
  }
  EXPECT_EQ(a.transitions(), b.transitions());
  EXPECT_GT(a.transitions(), 0u);  // rate 2/s over 10s across 20 nodes
}

TEST(Churn, QueryOrderAcrossNodesDoesNotMatter) {
  const churn_config cfg{1.0, 0.5};
  churn_model fwd(5, cfg, 4);
  churn_model rev(5, cfg, 4);
  std::vector<std::vector<bool>> seen_fwd, seen_rev;
  for (int i = 0; i <= 100; ++i) {
    const double t = 0.1 * i;
    std::vector<bool> f, r;
    for (node_id v = 0; v < 5; ++v) f.push_back(fwd.is_up(v, t));
    for (node_id v = 5; v-- > 0;) r.push_back(rev.is_up(v, t));
    seen_fwd.push_back(f);
    for (std::size_t k = 0; k < r.size(); ++k)
      EXPECT_EQ(r[r.size() - 1 - k], f[k]) << "node " << k << " t=" << t;
  }
}

TEST(Churn, NodesGoDownAndComeBack) {
  churn_model churn(1, churn_config{5.0, 0.2}, 1);
  bool saw_down = false;
  bool recovered = false;
  bool was_down = false;
  for (int i = 0; i <= 2000; ++i) {
    const bool up = churn.is_up(0, 0.01 * i);
    if (!up) saw_down = was_down = true;
    if (up && was_down) recovered = true;
  }
  EXPECT_TRUE(saw_down);
  EXPECT_TRUE(recovered);
}

}  // namespace
}  // namespace anonpath::net
