#include "src/sim/mix_relay.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "src/sim/receiver.hpp"
#include "src/stats/contract.hpp"

namespace anonpath::sim {
namespace {

struct mix_fixture {
  network net{4, latency_params{0.001, 0.0, 0.0}, 7};
  crypto::key_registry keys{5, 4};
  adversary_monitor monitor{std::vector<bool>{false, true, false, false}};
  receiver_endpoint recv{net, keys, &monitor};
  std::vector<std::unique_ptr<mix_relay>> relays;

  explicit mix_fixture(std::uint32_t batch, sim_time interval) {
    net.register_receiver(recv);
    for (node_id i = 0; i < 4; ++i) {
      relays.push_back(std::make_unique<mix_relay>(
          i, net, keys, batch, interval, i == 1, &monitor, stats::rng(i)));
      net.register_node(i, *relays[i]);
    }
  }

  void submit(std::uint64_t id, const route& r) {
    wire_message msg;
    msg.id = id;
    msg.envelope = crypto::wrap_onion(r, {}, keys, id);
    net.originate(r.sender, net.queue().now(), id);
    net.send(r.sender, r.hops.front(), std::move(msg));
  }
};

TEST(MixRelay, SingleMessageFlushesOnTimer) {
  mix_fixture f(/*batch=*/10, /*interval=*/0.5);
  f.submit(1, route{2, {0, 3}});
  EXPECT_TRUE(f.net.queue().run_until_empty());
  EXPECT_EQ(f.recv.delivered_count(), 1u);
  // Two mix dwell times of 0.5s dominate the latency.
  EXPECT_GT(f.recv.deliveries().at(1).at, 1.0);
}

TEST(MixRelay, FullBatchFlushesImmediately) {
  mix_fixture f(/*batch=*/2, /*interval=*/100.0);
  f.submit(1, route{2, {0}});
  f.submit(2, route{3, {0}});
  EXPECT_TRUE(f.net.queue().run_until_empty());
  EXPECT_EQ(f.recv.delivered_count(), 2u);
  // Far earlier than the 100s deadline: size-triggered flush.
  EXPECT_LT(f.recv.deliveries().at(1).at, 1.0);
  EXPECT_EQ(f.relays[0]->flushed_batches(), 1u);
  EXPECT_EQ(f.relays[0]->held(), 0u);
}

TEST(MixRelay, StaleTimerDoesNotDoubleFlush) {
  // Fill a batch (immediate flush), then a fresh message: the old timer
  // must not flush the new batch early.
  mix_fixture f(/*batch=*/2, /*interval=*/0.3);
  f.submit(1, route{2, {0}});
  f.submit(2, route{3, {0}});
  f.net.queue().run_until_empty();
  f.submit(3, route{2, {0}});
  EXPECT_TRUE(f.net.queue().run_until_empty());
  EXPECT_EQ(f.recv.delivered_count(), 3u);
  EXPECT_EQ(f.relays[0]->flushed_batches(), 2u);
}

TEST(MixRelay, CompromisedMixStillReportsTuples) {
  mix_fixture f(/*batch=*/1, /*interval=*/0.0);
  f.submit(9, route{2, {1, 3}});  // through compromised mix 1
  f.net.queue().run_until_empty();
  const auto obs = f.monitor.assemble(9);
  ASSERT_EQ(obs.reports.size(), 1u);
  EXPECT_EQ(obs.reports[0].reporter, 1u);
  EXPECT_EQ(obs.reports[0].predecessor, 2u);
  EXPECT_EQ(obs.reports[0].successor, 3u);
}

TEST(MixRelay, BatchOutputIsAPermutationOfInputs) {
  mix_fixture f(/*batch=*/3, /*interval=*/100.0);
  f.submit(1, route{2, {0}});
  f.submit(2, route{3, {0}});
  f.submit(3, route{2, {0}});
  EXPECT_TRUE(f.net.queue().run_until_empty());
  EXPECT_EQ(f.recv.delivered_count(), 3u);
  for (std::uint64_t id : {1u, 2u, 3u})
    EXPECT_TRUE(f.recv.deliveries().contains(id));
}

TEST(MixRelay, ValidatesParameters) {
  network net(4, {}, 1);
  const crypto::key_registry keys(1, 4);
  EXPECT_THROW(mix_relay(0, net, keys, 0, 1.0, false, nullptr, stats::rng(1)),
               contract_violation);
  EXPECT_THROW(mix_relay(0, net, keys, 1, -1.0, false, nullptr, stats::rng(1)),
               contract_violation);
}

}  // namespace
}  // namespace anonpath::sim
