// The trace subsystem's contracts: replay(capture(cfg)) reproduces inline
// run_simulation bit for bit for every preset and adversary model, the
// serialized form round-trips byte- and bit-exactly, version mismatches are
// refused, and the committed golden trace keeps both the format and the
// replay semantics honest across refactors.
//
// Regenerate the golden fixture (after an *intentional* format change only)
// with:
//   ./build/anonpath capture --n 16 --c 2 --dist U:1,5 --messages 40 \
//     --seed 5 --out tests/golden/trace_v1.trace

#include "src/sim/trace.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <fstream>
#include <sstream>

#include "src/anonymity/entropy.hpp"

namespace anonpath::sim {
namespace {

#ifndef ANONPATH_TEST_DATA_DIR
#error "ANONPATH_TEST_DATA_DIR must point at the tests/ source directory"
#endif

/// Bitwise report equality: NaN == NaN, -0.0 != 0.0 — exactly "same run".
bool bit_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof a) == 0;
}

void expect_reports_identical(const sim_report& a, const sim_report& b) {
  EXPECT_EQ(a.submitted, b.submitted);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.hop_histogram, b.hop_histogram);
  EXPECT_TRUE(bit_equal(a.end_to_end_latency.mean(),
                        b.end_to_end_latency.mean()));
  EXPECT_TRUE(bit_equal(a.realized_hops.mean(), b.realized_hops.mean()));
  EXPECT_TRUE(bit_equal(a.empirical_entropy_bits, b.empirical_entropy_bits));
  EXPECT_TRUE(
      bit_equal(a.empirical_entropy_stderr, b.empirical_entropy_stderr));
  EXPECT_TRUE(bit_equal(a.identified_fraction, b.identified_fraction));
  EXPECT_TRUE(bit_equal(a.top1_accuracy, b.top1_accuracy));
  EXPECT_EQ(a.posteriors, b.posteriors);
}

std::vector<sim_config> preset_configs() {
  std::vector<sim_config> out;
  const path_length_distribution presets[] = {
      path_length_distribution::fixed(3),
      path_length_distribution::uniform(1, 8),
      path_length_distribution::geometric(0.75, 1, 10),
  };
  std::uint64_t seed = 100;
  for (const auto& lengths : presets) {
    for (int kind = 0; kind < 3; ++kind) {
      sim_config cfg;
      cfg.sys = {25, 3};
      cfg.compromised = spread_compromised(25, 3);
      cfg.lengths = lengths;
      cfg.message_count = 120;
      cfg.seed = ++seed;
      cfg.adversary.kind = static_cast<adversary_kind>(kind);
      if (cfg.adversary.kind == adversary_kind::partial_coverage)
        cfg.adversary.coverage_fraction = 0.3;
      out.push_back(cfg);
    }
  }
  // Honest receiver, lossy links, posterior collection, crowds mode.
  sim_config honest = out[3];
  honest.adversary.receiver_compromised = false;
  honest.collect_posteriors = true;
  out.push_back(honest);
  sim_config lossy = out[0];
  lossy.faults.drop_probability = 0.08;
  out.push_back(lossy);
  sim_config crowds = out[0];
  crowds.mode = routing_mode::hop_by_hop;
  out.push_back(crowds);
  return out;
}

TEST(TraceReplay, EqualsInlineSimulationBitForBitOnEveryPreset) {
  for (const sim_config& cfg : preset_configs()) {
    const sim_report inline_report = run_simulation(cfg);
    const sim_trace trace = capture_trace(cfg);
    const sim_report replayed = replay_trace(trace);
    SCOPED_TRACE("preset " + cfg.lengths.label() + " adversary " +
                 cfg.adversary.label());
    expect_reports_identical(inline_report, replayed);
  }
}

TEST(TraceReplay, SerializationRoundTripsByteAndBitExactly) {
  for (const sim_config& cfg : preset_configs()) {
    const sim_trace trace = capture_trace(cfg);
    std::ostringstream first;
    write_trace(trace, first);
    std::istringstream in(first.str());
    const sim_trace reread = read_trace(in);
    std::ostringstream second;
    write_trace(reread, second);
    SCOPED_TRACE("preset " + cfg.lengths.label() + " adversary " +
                 cfg.adversary.label());
    EXPECT_EQ(first.str(), second.str());
    expect_reports_identical(replay_trace(trace), replay_trace(reread));
  }
}

TEST(TraceReplay, CustomEngineSeesTheSameObservations) {
  sim_config cfg;
  cfg.sys = {20, 2};
  cfg.compromised = spread_compromised(20, 2);
  cfg.lengths = path_length_distribution::uniform(1, 6);
  cfg.message_count = 100;
  cfg.seed = 9;
  const sim_trace trace = capture_trace(cfg);

  // An evidence-blind engine: uniform over all nodes. Every scored message
  // then contributes exactly log2(N) bits.
  std::size_t calls = 0;
  const posterior_fn uniform = [&](const observation&) {
    ++calls;
    return std::vector<double>(20, 0.05);
  };
  const sim_report blind = replay_trace(trace, uniform);
  EXPECT_GT(calls, 0u);
  EXPECT_NEAR(blind.empirical_entropy_bits, std::log2(20.0), 1e-12);
  EXPECT_DOUBLE_EQ(blind.empirical_entropy_stderr, 0.0);
  // Same observation stream, different scoring: physics metrics agree with
  // the exact-engine replay.
  const sim_report exact = replay_trace(trace);
  EXPECT_EQ(blind.delivered, exact.delivered);
  EXPECT_EQ(blind.hop_histogram, exact.hop_histogram);
}

TEST(TraceFormat, RejectsVersionMismatch) {
  const sim_trace trace = capture_trace(preset_configs()[0]);
  std::ostringstream os;
  write_trace(trace, os);
  std::string text = os.str();
  const auto pos = text.find(" v1\n");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 4, " v999\n");
  std::istringstream in(text);
  try {
    (void)read_trace(in);
    FAIL() << "v999 must be refused";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("v999"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("v1"), std::string::npos);
  }
}

TEST(TraceFormat, RejectsGarbageAndTruncation) {
  std::istringstream not_a_trace("definitely,not,a,trace");
  EXPECT_THROW((void)read_trace(not_a_trace), std::invalid_argument);

  const sim_trace trace = capture_trace(preset_configs()[0]);
  std::ostringstream os;
  write_trace(trace, os);
  const std::string text = os.str();
  std::istringstream truncated(text.substr(0, text.size() / 2));
  EXPECT_THROW((void)read_trace(truncated), std::invalid_argument);
  std::istringstream mangled("anonpath-trace v1\nsys nonsense 2\n");
  EXPECT_THROW((void)read_trace(mangled), std::invalid_argument);

  // Signed tokens must not wrap around into huge unsigned values.
  std::string negative_seed = text;
  const auto seed_pos = negative_seed.find("seed ");
  ASSERT_NE(seed_pos, std::string::npos);
  negative_seed.replace(seed_pos, 6, "seed -");
  std::istringstream neg(negative_seed);
  EXPECT_THROW((void)read_trace(neg), std::invalid_argument);

  // A corrupted event count must fail as truncation, not as a
  // multi-gigabyte allocation.
  std::string bombed = text;
  const auto ev_pos = bombed.find("events ");
  ASSERT_NE(ev_pos, std::string::npos);
  const auto ev_end = bombed.find('\n', ev_pos);
  bombed.replace(ev_pos, ev_end - ev_pos, "events 4000000000");
  std::istringstream bomb(bombed);
  EXPECT_THROW((void)read_trace(bomb), std::invalid_argument);
}

TEST(TraceFormat, WhitespaceLabelsStayParseable) {
  // from_pmf accepts arbitrary labels; the wire format is token-based, so
  // whitespace must be collapsed at write time rather than corrupting the
  // stream.
  sim_config cfg = preset_configs()[0];
  cfg.lengths = path_length_distribution::from_pmf(
      cfg.lengths.dense_pmf(), "my odd label");
  const sim_trace trace = capture_trace(cfg);
  std::ostringstream os;
  write_trace(trace, os);
  std::istringstream in(os.str());
  const sim_trace reread = read_trace(in);
  EXPECT_EQ(reread.config.lengths.label(), "my_odd_label");
  expect_reports_identical(replay_trace(trace), replay_trace(reread));
}

/// The golden fixture: a committed v1 trace. Reading it pins the format
/// version (a bump without regenerating the file fails here — that is the
/// version-bump regression test), re-serializing pins the byte layout, and
/// replaying pins the semantics against the live simulator.
TEST(TraceGolden, CommittedTraceParsesReplaysAndRoundTrips) {
  const std::string path =
      std::string(ANONPATH_TEST_DATA_DIR) + "/golden/trace_v1.trace";
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file: " << path;
  std::ostringstream buffered;
  buffered << in.rdbuf();
  const std::string golden_text = buffered.str();

  // Format-version pin: the file must declare exactly this build's version.
  const std::string expected_header =
      "anonpath-trace v" + std::to_string(sim_trace::format_version) + "\n";
  ASSERT_EQ(golden_text.substr(0, expected_header.size()), expected_header)
      << "format_version changed without regenerating the golden trace";

  std::istringstream is(golden_text);
  const sim_trace trace = read_trace(is);
  std::ostringstream rewritten;
  write_trace(trace, rewritten);
  EXPECT_EQ(rewritten.str(), golden_text)
      << "serialization layout drifted from the committed v1 fixture";

  // Semantics: the trace's embedded config re-simulates to the same report
  // the captured events replay to.
  expect_reports_identical(run_simulation(trace.config), replay_trace(trace));

  // And the numbers are sane for the recorded scenario.
  const sim_report report = replay_trace(trace);
  EXPECT_EQ(report.submitted, trace.config.message_count);
  EXPECT_GT(report.delivered, 0u);
  EXPECT_TRUE(std::isfinite(report.empirical_entropy_bits));
}

}  // namespace
}  // namespace anonpath::sim
