// Cross-cutting invariants checked over broad parameter grids — the
// property-test layer on top of the per-module unit tests.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "src/anonymity/api.hpp"
#include "src/stats/rng.hpp"

namespace anonpath {
namespace {

TEST(ApiUmbrella, PullsInTheWholeCoreSurface) {
  // Compile-and-run smoke over the umbrella header's layers.
  const system_params sys{100, 1};
  const auto d = path_length_distribution::fixed(5);
  EXPECT_GT(anonymity_degree(sys, d), 0.0);
  EXPECT_GT(theorem1_fixed_length(100, 5), 0.0);
  EXPECT_EQ(protocols::survey(99).size(), 8u);
}

TEST(Invariance, CompromisedIdentityIrrelevantExactly) {
  // By clique symmetry the brute-force degree cannot depend on *which*
  // node is compromised — for any C.
  const auto d = path_length_distribution::uniform(0, 3);
  const system_params sys{6, 2};
  const brute_force_analyzer a(sys, {0, 1}, d);
  const brute_force_analyzer b(sys, {3, 5}, d);
  EXPECT_NEAR(a.anonymity_degree(), b.anonymity_degree(), 1e-12);
}

TEST(Monotonicity, AddingACompromisedNodeNeverHelps) {
  // Conditioning on more observations cannot increase expected posterior
  // entropy: H*(D) >= H*(D ∪ {d}), exactly, via brute force.
  const auto d = path_length_distribution::uniform(1, 4);
  const system_params sys1{7, 1};
  const system_params sys2{7, 2};
  const system_params sys3{7, 3};
  const double h1 = brute_force_analyzer(sys1, {2}, d).anonymity_degree();
  const double h2 = brute_force_analyzer(sys2, {2, 5}, d).anonymity_degree();
  const double h3 =
      brute_force_analyzer(sys3, {2, 5, 0}, d).anonymity_degree();
  EXPECT_GE(h1, h2 - 1e-12);
  EXPECT_GE(h2, h3 - 1e-12);
  EXPECT_GT(h1, h3 + 1e-6);  // and strictly overall
}

TEST(Monotonicity, DegreeGrowsWithSystemSize) {
  // More nodes, same single compromised node: more candidates to hide
  // among at every event, so H* rises with N for a fixed strategy.
  const auto d = path_length_distribution::fixed(5);
  double prev = 0.0;
  for (std::uint32_t n : {10u, 20u, 50u, 100u, 200u, 400u}) {
    const double h = anonymity_degree(system_params{n, 1}, d);
    EXPECT_GT(h, prev) << "N=" << n;
    prev = h;
  }
}

TEST(MomentSufficiency, RandomDistributionsCollapseToSignature) {
  // Any pmf and its two-point realization share H* exactly — across a
  // randomized zoo of distributions.
  const system_params sys{100, 1};
  stats::rng gen(2024);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> pmf(30, 0.0);
    double total = 0.0;
    for (double& p : pmf) {
      p = gen.next_double();
      total += p;
    }
    for (double& p : pmf) p /= total;
    const auto d = path_length_distribution::from_pmf(pmf);
    const auto sig = signature_of(d);
    const auto realized = realize_signature(sig, 99);
    EXPECT_NEAR(anonymity_degree(sys, d), anonymity_degree(sys, realized),
                1e-9)
        << "trial " << trial;
  }
}

TEST(Continuity, UniformShrinksToFixed) {
  const system_params sys{100, 1};
  for (path_length l : {1u, 5u, 30u, 80u}) {
    EXPECT_NEAR(
        anonymity_degree(sys, path_length_distribution::uniform(l, l)),
        anonymity_degree(sys, path_length_distribution::fixed(l)), 1e-12);
  }
}

TEST(Numerics, LargeSystemLongSupportStaysFinite) {
  // N = 250 with support to 249 stresses the falling-factorial log-space
  // path end to end.
  const system_params sys{250, 1};
  const auto d = path_length_distribution::uniform(0, 249);
  const double h = anonymity_degree(sys, d);
  EXPECT_TRUE(std::isfinite(h));
  EXPECT_GT(h, 7.5);
  EXPECT_LT(h, std::log2(250.0));

  const posterior_engine engine(sys, {17}, d);
  std::vector<bool> flags(250, false);
  flags[17] = true;
  stats::rng gen(3);
  for (int i = 0; i < 50; ++i) {
    const auto r = sample_route(250, d, path_model::simple, gen);
    const auto post = engine.sender_posterior(observe(r, flags));
    const double total = std::accumulate(post.begin(), post.end(), 0.0);
    ASSERT_NEAR(total, 1.0, 1e-9);
    for (double p : post) ASSERT_TRUE(std::isfinite(p));
  }
}

TEST(Consistency, BreakdownMatchesBruteForceEventClassesAtC1) {
  // The five analytic event-class probabilities must match the brute-force
  // event space grouped the same way (N=7, F(4)).
  const system_params sys{7, 1};
  const node_id c = 3;
  const auto d = path_length_distribution::fixed(4);
  const auto bd = anonymity_breakdown(sys, d);
  const brute_force_analyzer bf(sys, {c}, d);

  double p_sender = 0, p_absent = 0, p_last = 0, p_penult = 0, p_mid = 0;
  for (const auto& e : bf.events()) {
    if (e.obs.origin) {
      p_sender += e.probability;
    } else if (e.obs.reports.empty()) {
      p_absent += e.probability;
    } else if (e.obs.reports[0].successor == receiver_node) {
      p_last += e.probability;
    } else if (e.obs.reports[0].successor == e.obs.receiver_predecessor) {
      p_penult += e.probability;
    } else {
      p_mid += e.probability;
    }
  }
  EXPECT_NEAR(p_sender, bd.p_sender_compromised, 1e-12);
  EXPECT_NEAR(p_absent, bd.p_absent, 1e-12);
  EXPECT_NEAR(p_last, bd.p_last, 1e-12);
  EXPECT_NEAR(p_penult, bd.p_penultimate, 1e-12);
  EXPECT_NEAR(p_mid, bd.p_mid, 1e-12);
}

// Parameterized: Monte-Carlo agrees with the analytic engine across a grid
// of (N, strategy) cells, each within its own confidence interval.
struct mc_grid_case {
  std::uint32_t n;
  const char* label;
  path_length_distribution (*make)(std::uint32_t n);
};

class McAnalyticGrid : public ::testing::TestWithParam<mc_grid_case> {};

TEST_P(McAnalyticGrid, Agrees) {
  const auto& param = GetParam();
  const system_params sys{param.n, 1};
  const auto d = param.make(param.n);
  const double exact = anonymity_degree(sys, d);
  const auto est = estimate_anonymity_degree(sys, {param.n / 2}, d, 8000,
                                             777 + param.n);
  EXPECT_NEAR(est.degree, exact, 5.0 * est.std_error + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, McAnalyticGrid,
    ::testing::Values(
        mc_grid_case{25, "fixed3",
                     [](std::uint32_t) {
                       return path_length_distribution::fixed(3);
                     }},
        mc_grid_case{60, "uniform",
                     [](std::uint32_t) {
                       return path_length_distribution::uniform(0, 12);
                     }},
        mc_grid_case{120, "geometric",
                     [](std::uint32_t n) {
                       return path_length_distribution::geometric(0.8, 1,
                                                                  n - 1);
                     }},
        mc_grid_case{40, "longfixed",
                     [](std::uint32_t n) {
                       return path_length_distribution::fixed(n / 2);
                     }}),
    [](const ::testing::TestParamInfo<mc_grid_case>& info) {
      return std::string(info.param.label) + "_N" +
             std::to_string(info.param.n);
    });

}  // namespace
}  // namespace anonpath
