#include "src/anonymity/optimizer.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/anonymity/closed_forms.hpp"
#include "src/stats/contract.hpp"
#include "src/stats/rng.hpp"

namespace anonpath {
namespace {

constexpr system_params paper_system{100, 1};

TEST(Optimizer, MeanConstraintSatisfied) {
  for (double mean : {1.0, 2.0, 5.0, 10.0, 25.0, 50.0}) {
    const auto r = optimize_for_mean(paper_system, mean, 99);
    EXPECT_NEAR(r.distribution.mean(), mean, 1e-6) << "mean=" << mean;
    EXPECT_NEAR(r.signature.mean, mean, 1e-12);
  }
}

TEST(Optimizer, RealizedDistributionAchievesReportedDegree) {
  for (double mean : {3.0, 8.0, 30.0}) {
    const auto r = optimize_for_mean(paper_system, mean, 99);
    EXPECT_NEAR(anonymity_degree(paper_system, r.distribution), r.degree, 1e-9);
  }
}

TEST(Optimizer, DominatesFixedAndUniformAtSameMean) {
  // The Fig-6 claim: the optimized distribution beats (or ties) F(L) and
  // every U(a, 2L-a) at the same mean.
  for (path_length mean : {2u, 5u, 10u, 20u, 40u}) {
    const auto opt = optimize_for_mean(paper_system, mean, 99);
    const double fixed = theorem1_fixed_length(100, mean);
    EXPECT_GE(opt.degree, fixed - 1e-9) << "mean=" << mean;
    const auto best_u = best_uniform_for_mean(paper_system, mean, 99);
    EXPECT_GE(opt.degree, best_u.degree - 1e-9) << "mean=" << mean;
  }
}

TEST(Optimizer, StrictImprovementAtSmallMeans) {
  // At mean 2, F(2) suffers the short-path effect; mixing lengths must win
  // strictly (the paper's headline: variable beats fixed).
  const auto opt = optimize_for_mean(paper_system, 2.0, 99);
  EXPECT_GT(opt.degree, theorem1_fixed_length(100, 2) + 1e-4);
}

TEST(Optimizer, SprinkleOfShortLengthsBeatsPureTailAtLargeMeans) {
  // A genuine finding of the exact solver (consistent with the paper's
  // Sec. 6.4 observation that U(0, 2l) is near-optimal at large means):
  // the optimum keeps a *small* positive mass on lengths 0..2. That mass
  // makes the absent/last-hop/penultimate observations ambiguous about
  // whether the observed predecessor was the sender, raising entropy.
  const auto opt = optimize_for_mean(paper_system, 40.0, 99);
  const double short_mass =
      opt.signature.p0 + opt.signature.p1 + opt.signature.p2;
  EXPECT_GT(short_mass, 1e-4);
  EXPECT_LT(short_mass, 0.15);
  EXPECT_GT(opt.degree, fixed_length_continued(100, 40.0) + 1e-3);
  // ...and it beats the paper's suggested near-optimal family U(0, 2l).
  EXPECT_GE(opt.degree,
            anonymity_degree(paper_system,
                             path_length_distribution::uniform(0, 80)) -
                1e-9);
}

TEST(Optimizer, UnconstrainedBeatsBestFixedStrictly) {
  // With the mean free, the optimum strictly beats the best fixed length
  // (the paper's conclusion 4: optimized variable-length wins) and stays
  // below the log2(N) ceiling. Note the optimal mean (~33 at N=100) is well
  // below the fixed-length peak l=51: ambiguity mass shifts the optimum.
  const auto opt = optimize_unconstrained(paper_system, 99);
  const auto fixed = best_fixed(paper_system, 99);
  EXPECT_GT(opt.degree, fixed.degree + 1e-4);
  EXPECT_LT(opt.degree, std::log2(100.0));
  EXPECT_GT(opt.signature.mean, 10.0);
  EXPECT_LT(opt.signature.mean, 60.0);
}

TEST(Optimizer, BestFixedIs51ForPaperSystem) {
  const auto r = best_fixed(paper_system, 99);
  EXPECT_DOUBLE_EQ(r.distribution.mean(), 51.0);
  EXPECT_NEAR(r.degree, 6.5384, 5e-4);
}

TEST(Optimizer, BestUniformRequiresIntegralDoubleMean) {
  EXPECT_THROW((void)best_uniform_for_mean(paper_system, 2.25, 99),
               contract_violation);
  EXPECT_NO_THROW((void)best_uniform_for_mean(paper_system, 2.5, 99));
}

TEST(Optimizer, MeanZeroForcesDirectSend) {
  // Mean 0 leaves only the all-direct-send distribution (up to solver
  // tolerance dust on the feasibility boundary).
  const auto r = optimize_for_mean(paper_system, 0.0, 99);
  EXPECT_NEAR(r.signature.p0, 1.0, 1e-6);
  EXPECT_NEAR(r.degree, 0.0, 1e-6);
}

TEST(Optimizer, ValidatesArguments) {
  EXPECT_THROW((void)optimize_for_mean(paper_system, -1.0, 99),
               contract_violation);
  EXPECT_THROW((void)optimize_for_mean(paper_system, 100.0, 99),
               contract_violation);
  EXPECT_THROW((void)optimize_for_mean(paper_system, 5.0, 120),
               contract_violation);
  EXPECT_THROW((void)optimize_for_mean(paper_system, 5.0, 99, 2),
               contract_violation);
}

// Property test: no explicit pmf reachable by random mean-preserving
// perturbations beats the moment-space optimum.
class OptimalityProperty : public ::testing::TestWithParam<double> {};

TEST_P(OptimalityProperty, RandomPerturbationsNeverBeatOptimum) {
  const double mean = GetParam();
  const auto opt = optimize_for_mean(paper_system, mean, 99);
  stats::rng gen(static_cast<std::uint64_t>(mean * 1000) + 17);
  path_length_distribution current = opt.distribution;
  for (int i = 0; i < 400; ++i) {
    current = random_mean_preserving_neighbor(current, gen, 0.05);
    ASSERT_NEAR(current.mean(), mean, 1e-6);
    EXPECT_LE(anonymity_degree(paper_system, current), opt.degree + 1e-9)
        << "perturbation " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Means, OptimalityProperty,
                         ::testing::Values(2.0, 5.0, 12.0, 30.0));

TEST(Perturbation, PreservesMassAndMean) {
  stats::rng gen(77);
  auto d = path_length_distribution::uniform(2, 10);
  const double mean = d.mean();
  for (int i = 0; i < 200; ++i) {
    d = random_mean_preserving_neighbor(d, gen, 0.1);
    double total = 0;
    for (path_length l = 0; l <= d.max_length(); ++l) total += d.pmf(l);
    ASSERT_NEAR(total, 1.0, 1e-9);
    ASSERT_NEAR(d.mean(), mean, 1e-9);
  }
}

}  // namespace
}  // namespace anonpath
