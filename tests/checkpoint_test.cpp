// Campaign checkpoint/resume: the harness-recovery half of the fault layer.
// The pinned contract is bit-identity — a campaign killed at ANY point and
// resumed from its journal renders the exact CSV bytes of an uninterrupted
// run, at any thread count — plus loud scope/corruption rejection and the
// per-cell error isolation that keeps one bad cell from killing a sweep.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "src/sim/campaign.hpp"
#include "src/sim/checkpoint.hpp"
#include "src/stats/error.hpp"

namespace anonpath {
namespace {

sim::campaign_grid small_grid() {
  sim::campaign_grid grid;
  grid.node_counts = {16, 24};
  grid.compromised_counts = {1, 2};
  grid.lengths = {path_length_distribution::fixed(3)};
  grid.drop_probabilities = {0.0, 0.15};
  grid.retries = {sim::retry_policy{}, sim::retry_policy{2, 0.2, 2.0, 5.0}};
  grid.message_count = 120;
  return grid;  // 16 cells
}

std::string render(const sim::campaign_result& result) {
  std::ostringstream os;
  sim::write_csv(result, os);
  return os.str();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// A scratch file path unique to the current test.
std::string scratch_path(const char* tag) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  return ::testing::TempDir() + "anonpath_" + info->name() + "_" + tag +
         ".ckpt";
}

TEST(CampaignScope, FingerprintsEveryRelevantKnob) {
  const sim::campaign_grid grid = small_grid();
  sim::campaign_config config;
  config.replicas = 2;
  const std::uint64_t base = sim::campaign_scope(grid, config);
  EXPECT_EQ(base, sim::campaign_scope(grid, config));  // deterministic

  sim::campaign_config other = config;
  other.master_seed = 2;
  EXPECT_NE(base, sim::campaign_scope(grid, other));
  other = config;
  other.replicas = 3;
  EXPECT_NE(base, sim::campaign_scope(grid, other));
  other = config;
  other.via_trace = true;
  EXPECT_NE(base, sim::campaign_scope(grid, other));

  sim::campaign_grid changed = small_grid();
  changed.drop_probabilities = {0.0, 0.151};
  EXPECT_NE(base, sim::campaign_scope(changed, config));
  changed = small_grid();
  changed.retries[1].max_retries = 3;
  EXPECT_NE(base, sim::campaign_scope(changed, config));
  changed = small_grid();
  changed.fault_outages = {{0, 1.0, 2.0}};
  EXPECT_NE(base, sim::campaign_scope(changed, config));
  changed = small_grid();
  changed.mix_failures = {sim::mix_failure_config{3, 0.0, 1.0}};
  EXPECT_NE(base, sim::campaign_scope(changed, config));
}

TEST(Checkpoint, CellRecordsRoundTripBitExactly) {
  sim::campaign_cell cell;
  cell.replicas = 4;
  cell.submitted = 480;
  cell.delivered = 399;
  cell.delivered_fraction.add(0.831);
  cell.delivered_fraction.add(0.8315);
  cell.latency_seconds.add(0.1234567891234);
  cell.entropy_bits.add(3.0);
  cell.entropy_bits.add(3.5);
  cell.retransmit_rate.add(0.25);

  sim::campaign_cell errored;
  errored.replicas = 4;
  errored.error = "precondition failed: something, with a comma";

  std::ostringstream os;
  sim::write_checkpoint_header(os, 0xdeadbeefcafef00dULL);
  sim::append_checkpoint_cell(os, 0, cell);
  sim::append_checkpoint_cell(os, 1, errored);

  std::istringstream is(os.str());
  const auto cells = sim::read_checkpoint(is, 0xdeadbeefcafef00dULL, 10);
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0].submitted, cell.submitted);
  EXPECT_EQ(cells[0].delivered, cell.delivered);
  EXPECT_EQ(cells[0].delivered_fraction.count(), 2u);
  EXPECT_EQ(cells[0].delivered_fraction.mean(),
            cell.delivered_fraction.mean());
  EXPECT_EQ(cells[0].delivered_fraction.std_error(),
            cell.delivered_fraction.std_error());
  EXPECT_EQ(cells[0].latency_seconds.mean(), cell.latency_seconds.mean());
  EXPECT_EQ(cells[0].entropy_bits.m2(), cell.entropy_bits.m2());
  EXPECT_EQ(cells[0].retransmit_rate.mean(), 0.25);
  EXPECT_TRUE(cells[0].error.empty());
  EXPECT_EQ(cells[1].error, errored.error);
}

TEST(Checkpoint, RejectsForeignAndCorruptJournals) {
  std::ostringstream os;
  sim::write_checkpoint_header(os, 1);
  sim::append_checkpoint_cell(os, 0, sim::campaign_cell{});
  sim::append_checkpoint_cell(os, 1, sim::campaign_cell{});
  const std::string text = os.str();

  {
    std::istringstream is(text);
    EXPECT_THROW(sim::read_checkpoint(is, 2, 10), parse_error);  // scope
  }
  {
    std::istringstream is("anonpath-trace v1\n");
    EXPECT_THROW(sim::read_checkpoint(is, 1, 10), parse_error);  // magic
  }
  {
    std::istringstream is("anonpath-checkpoint v9\nscope whatever\n");
    EXPECT_THROW(sim::read_checkpoint(is, 1, 10), parse_error);  // version
  }
  {
    // A mangled NON-final record is corruption, not a kill point.
    std::string mangled = text;
    mangled.replace(mangled.find("cell 0"), 6, "cell x");
    std::istringstream is(mangled);
    EXPECT_THROW(sim::read_checkpoint(is, 1, 10), parse_error);
  }
  {
    // More records than the grid has cells: a foreign or stale journal.
    std::istringstream is(text);
    EXPECT_THROW(sim::read_checkpoint(is, 1, 1), parse_error);
  }
  {
    // Empty stream = killed before the header: zero progress, no error.
    std::istringstream is("");
    EXPECT_TRUE(sim::read_checkpoint(is, 1, 10).empty());
  }
}

TEST(Checkpoint, KillPointSweepResumesBitIdentically) {
  const sim::campaign_grid grid = small_grid();
  sim::campaign_config config;
  config.replicas = 3;
  config.master_seed = 77;
  config.threads = 1;
  config.checkpoint_path = scratch_path("clean");

  const auto clean = sim::run_campaign(grid, config);
  const std::string clean_csv = render(clean);
  const std::string journal = slurp(config.checkpoint_path);
  ASSERT_EQ(clean.cells.size(), 16u);

  // Kill points: before any cell, after the first, mid-grid, mid-append of
  // the final record, and after everything. Each truncated journal must
  // resume to the same CSV bytes — on one thread and on eight.
  std::size_t header_end = journal.find('\n');
  header_end = journal.find('\n', header_end + 1) + 1;
  std::vector<std::size_t> kill_points = {header_end};
  std::size_t pos = header_end;
  for (int cells = 0; cells < 15; ++cells) pos = journal.find('\n', pos) + 1;
  kill_points.push_back(journal.find('\n', header_end) + 1);   // cell 0 done
  kill_points.push_back(pos);                                  // 15 of 16
  kill_points.push_back(journal.size() - 7);                   // torn record
  kill_points.push_back(journal.size());                       // complete

  int tag = 0;
  for (std::size_t kill : kill_points) {
    for (unsigned threads : {1u, 8u}) {
      sim::campaign_config resume_config = config;
      resume_config.threads = threads;
      resume_config.resume = true;
      resume_config.checkpoint_path =
          scratch_path(("k" + std::to_string(tag++)).c_str());
      {
        std::ofstream out(resume_config.checkpoint_path, std::ios::binary);
        out << journal.substr(0, kill);
      }
      const auto resumed = sim::run_campaign(grid, resume_config);
      EXPECT_EQ(render(resumed), clean_csv)
          << "kill at byte " << kill << ", " << threads << " thread(s)";
      // And the rewritten journal is complete again: a second resume does
      // zero work and still reproduces the bytes.
      sim::campaign_config again = resume_config;
      again.threads = 1;
      EXPECT_EQ(render(sim::run_campaign(grid, again)), clean_csv);
      std::remove(resume_config.checkpoint_path.c_str());
    }
  }
  std::remove(config.checkpoint_path.c_str());
}

TEST(Checkpoint, ThreadCountInvarianceWithoutJournal) {
  const sim::campaign_grid grid = small_grid();
  sim::campaign_config config;
  config.replicas = 2;
  config.master_seed = 5;
  config.threads = 1;
  const std::string serial = render(sim::run_campaign(grid, config));
  config.threads = 8;
  EXPECT_EQ(render(sim::run_campaign(grid, config)), serial);
}

TEST(Checkpoint, MissingJournalDegradesToFreshStart) {
  const sim::campaign_grid grid = small_grid();
  sim::campaign_config config;
  config.replicas = 1;
  config.checkpoint_path = scratch_path("absent");
  config.resume = true;
  std::remove(config.checkpoint_path.c_str());
  const auto result = sim::run_campaign(grid, config);
  EXPECT_EQ(result.cells.size(), 16u);
  std::remove(config.checkpoint_path.c_str());
}

TEST(Checkpoint, ErrorCellsSurviveTheJournal) {
  // A fault plan naming node 20 fails every N=16 cell but none of the
  // N=24 cells; the error rows must flow through checkpoint + resume into
  // byte-identical CSV (error column included).
  sim::campaign_grid grid = small_grid();
  grid.fault_outages = {{20, 0.0, 5.0}};
  sim::campaign_config config;
  config.replicas = 2;
  config.checkpoint_path = scratch_path("err");

  const auto clean = sim::run_campaign(grid, config);
  const std::string clean_csv = render(clean);
  std::size_t errored = 0;
  for (const auto& cell : clean.cells)
    if (!cell.error.empty()) ++errored;
  EXPECT_EQ(errored, 8u);  // every N=16 cell
  EXPECT_NE(clean_csv.find(",error"), std::string::npos);

  const std::string journal = slurp(config.checkpoint_path);
  sim::campaign_config resumed = config;
  resumed.resume = true;
  {  // keep half the journal: 2 header lines + 5 records
    std::size_t pos = 0;
    for (int lines = 0; lines < 7; ++lines) pos = journal.find('\n', pos) + 1;
    std::ofstream out(config.checkpoint_path, std::ios::binary);
    out << journal.substr(0, pos);
  }
  EXPECT_EQ(render(sim::run_campaign(grid, resumed)), clean_csv);
  std::remove(config.checkpoint_path.c_str());
}

}  // namespace
}  // namespace anonpath
