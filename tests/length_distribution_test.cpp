#include "src/anonymity/length_distribution.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/anonymity/moments.hpp"
#include "src/stats/chi_square.hpp"
#include "src/stats/contract.hpp"
#include "src/stats/histogram.hpp"
#include "src/stats/rng.hpp"

namespace anonpath {
namespace {

TEST(LengthDistribution, FixedBasics) {
  const auto d = path_length_distribution::fixed(5);
  EXPECT_DOUBLE_EQ(d.pmf(5), 1.0);
  EXPECT_DOUBLE_EQ(d.pmf(4), 0.0);
  EXPECT_DOUBLE_EQ(d.pmf(6), 0.0);
  EXPECT_EQ(d.min_length(), 5u);
  EXPECT_EQ(d.max_length(), 5u);
  EXPECT_DOUBLE_EQ(d.mean(), 5.0);
  EXPECT_DOUBLE_EQ(d.variance(), 0.0);
  EXPECT_EQ(d.label(), "F(5)");
}

TEST(LengthDistribution, FixedZero) {
  const auto d = path_length_distribution::fixed(0);
  EXPECT_DOUBLE_EQ(d.pmf(0), 1.0);
  EXPECT_DOUBLE_EQ(d.mean(), 0.0);
  EXPECT_EQ(d.max_length(), 0u);
}

TEST(LengthDistribution, UniformMoments) {
  const auto d = path_length_distribution::uniform(2, 8);
  for (path_length l = 2; l <= 8; ++l) EXPECT_NEAR(d.pmf(l), 1.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(d.pmf(1), 0.0);
  EXPECT_DOUBLE_EQ(d.pmf(9), 0.0);
  EXPECT_NEAR(d.mean(), 5.0, 1e-12);
  // Discrete uniform on [a,b]: variance ((b-a+1)^2 - 1)/12 = 4.
  EXPECT_NEAR(d.variance(), 4.0, 1e-12);
}

TEST(LengthDistribution, UniformSinglePointEqualsFixed) {
  const auto u = path_length_distribution::uniform(4, 4);
  EXPECT_DOUBLE_EQ(u.pmf(4), 1.0);
  EXPECT_DOUBLE_EQ(u.mean(), 4.0);
}

TEST(LengthDistribution, UniformRejectsInvertedBounds) {
  EXPECT_THROW((void)path_length_distribution::uniform(5, 4), contract_violation);
}

TEST(LengthDistribution, GeometricRatioAndMean) {
  const double pf = 0.75;
  const auto d = path_length_distribution::geometric(pf, 1, 200);
  // Successive ratio = pf.
  for (path_length l = 1; l < 30; ++l)
    EXPECT_NEAR(d.pmf(l + 1) / d.pmf(l), pf, 1e-9);
  // Untruncated mean would be 1/(1-pf) = 4; truncation at 200 is negligible.
  EXPECT_NEAR(d.mean(), 4.0, 1e-6);
  EXPECT_DOUBLE_EQ(d.pmf(0), 0.0);
}

TEST(LengthDistribution, GeometricDegenerate) {
  const auto d = path_length_distribution::geometric(0.0, 3, 10);
  EXPECT_DOUBLE_EQ(d.pmf(3), 1.0);
  EXPECT_DOUBLE_EQ(d.mean(), 3.0);
}

TEST(LengthDistribution, TwoPointMean) {
  const auto d = path_length_distribution::two_point(2, 0.25, 10);
  EXPECT_DOUBLE_EQ(d.pmf(2), 0.25);
  EXPECT_DOUBLE_EQ(d.pmf(10), 0.75);
  EXPECT_NEAR(d.mean(), 0.25 * 2 + 0.75 * 10, 1e-12);
}

TEST(LengthDistribution, TwoPointSamePoint) {
  const auto d = path_length_distribution::two_point(4, 0.5, 4);
  EXPECT_DOUBLE_EQ(d.pmf(4), 1.0);
}

TEST(LengthDistribution, PoissonMassAndMean) {
  const auto d = path_length_distribution::poisson(3.0, 60);
  EXPECT_NEAR(d.mean(), 3.0, 1e-6);
  // pmf ratio check: p(l+1)/p(l) = lambda/(l+1).
  EXPECT_NEAR(d.pmf(4) / d.pmf(3), 3.0 / 4.0, 1e-9);
}

TEST(LengthDistribution, FromPmfRenormalizesWithinTolerance) {
  const auto d = path_length_distribution::from_pmf({0.25, 0.25, 0.5 + 1e-10});
  double total = 0;
  for (path_length l = 0; l <= d.max_length(); ++l) total += d.pmf(l);
  EXPECT_NEAR(total, 1.0, 1e-15);
}

TEST(LengthDistribution, FromPmfRejectsBadInput) {
  EXPECT_THROW((void)path_length_distribution::from_pmf({0.5, 0.4}),
               contract_violation);
  EXPECT_THROW((void)path_length_distribution::from_pmf({1.5, -0.5}),
               contract_violation);
  EXPECT_THROW((void)path_length_distribution::from_pmf({}), contract_violation);
}

TEST(LengthDistribution, TailMass) {
  const auto d = path_length_distribution::uniform(0, 3);
  EXPECT_DOUBLE_EQ(d.tail_mass(0), 1.0);
  EXPECT_NEAR(d.tail_mass(1), 0.75, 1e-12);
  EXPECT_NEAR(d.tail_mass(3), 0.25, 1e-12);
  EXPECT_DOUBLE_EQ(d.tail_mass(4), 0.0);
}

TEST(LengthDistribution, SamplingMatchesPmfChiSquare) {
  const auto d = path_length_distribution::uniform(1, 6);
  stats::rng g(31337);
  stats::int_histogram h(d.max_length() + 1);
  constexpr int n = 120000;
  for (int i = 0; i < n; ++i) h.add(d.sample(g));
  const auto r = stats::chi_square_goodness_of_fit(h.counts(), d.dense_pmf());
  EXPECT_GT(r.p_value, 1e-4);
}

TEST(LengthDistribution, GeometricSamplingMatchesPmf) {
  const auto d = path_length_distribution::geometric(0.6, 1, 40);
  stats::rng g(555);
  stats::int_histogram h(d.max_length() + 1);
  for (int i = 0; i < 100000; ++i) h.add(d.sample(g));
  const auto r = stats::chi_square_goodness_of_fit(h.counts(), d.dense_pmf());
  EXPECT_GT(r.p_value, 1e-4);
}

TEST(MomentSignature, OfUniform) {
  const auto d = path_length_distribution::uniform(0, 4);
  const auto sig = signature_of(d);
  EXPECT_NEAR(sig.p0, 0.2, 1e-12);
  EXPECT_NEAR(sig.p1, 0.2, 1e-12);
  EXPECT_NEAR(sig.p2, 0.2, 1e-12);
  EXPECT_NEAR(sig.mean, 2.0, 1e-12);
  EXPECT_NEAR(sig.m3(), 0.4, 1e-12);
  // kappa = sum_{l>=3} p_l (l-3) = 0.2*0 + 0.2*1 = 0.2.
  EXPECT_NEAR(sig.kappa(), 0.2, 1e-12);
}

TEST(MomentSignature, FeasibilityChecks) {
  // Fixed 5 on support up to 10.
  moment_signature ok{0.0, 0.0, 0.0, 5.0};
  EXPECT_TRUE(ok.feasible(10.0));
  // Mean too large for the tail cap.
  moment_signature too_long{0.0, 0.0, 0.0, 12.0};
  EXPECT_FALSE(too_long.feasible(10.0));
  // All mass below 3 but mean says otherwise.
  moment_signature contradictory{1.0, 0.0, 0.0, 2.0};
  EXPECT_FALSE(contradictory.feasible(10.0));
  // Tail mean below 3 impossible.
  moment_signature low_tail{0.0, 0.5, 0.0, 1.5};  // tail mass .5, tail mean 2
  EXPECT_FALSE(low_tail.feasible(10.0));
}

TEST(MomentSignature, RealizeRoundTrip) {
  const moment_signature sig{0.1, 0.2, 0.15, 4.7};
  const auto d = realize_signature(sig, 20);
  const auto back = signature_of(d);
  EXPECT_NEAR(back.p0, sig.p0, 1e-12);
  EXPECT_NEAR(back.p1, sig.p1, 1e-12);
  EXPECT_NEAR(back.p2, sig.p2, 1e-12);
  EXPECT_NEAR(back.mean, sig.mean, 1e-9);
}

TEST(MomentSignature, RealizeIntegerTailMean) {
  // Tail mean exactly integral: single support point.
  const moment_signature sig{0.0, 0.0, 0.0, 7.0};
  const auto d = realize_signature(sig, 20);
  EXPECT_DOUBLE_EQ(d.pmf(7), 1.0);
}

}  // namespace
}  // namespace anonpath
