// The observability layer's contracts: log-scale bucket math, the
// merge-associativity property the shard/merge metrics path rests on,
// slab-order-invariant registry snapshots, deterministic span trees, a
// lossless JSONL v1 roundtrip, and — because metrics files are untrusted
// input like any other — a corruption matrix asserting the reader always
// classifies damage as parse_error, never a crash or contract violation.

#include "src/obs/jsonl.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/span.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <limits>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "src/stats/error.hpp"
#include "src/stats/histogram.hpp"

namespace anonpath::obs {
namespace {

TEST(LogHistogram, BucketOfIsBitWidth) {
  EXPECT_EQ(log_histogram::bucket_of(0), 0u);
  EXPECT_EQ(log_histogram::bucket_of(1), 1u);
  EXPECT_EQ(log_histogram::bucket_of(2), 2u);
  EXPECT_EQ(log_histogram::bucket_of(3), 2u);
  EXPECT_EQ(log_histogram::bucket_of(4), 3u);
  for (std::size_t k = 0; k < 64; ++k) {
    const std::uint64_t power = std::uint64_t{1} << k;
    EXPECT_EQ(log_histogram::bucket_of(power), k + 1) << k;
    EXPECT_EQ(log_histogram::bucket_of(power - 1), k) << k;
  }
  EXPECT_EQ(log_histogram::bucket_of(std::numeric_limits<std::uint64_t>::max()),
            64u);
}

TEST(LogHistogram, BucketFloorInvertsBucketOf) {
  EXPECT_EQ(log_histogram::bucket_floor(0), 0u);
  for (std::size_t i = 0; i < log_histogram::bucket_count; ++i) {
    const std::uint64_t floor = log_histogram::bucket_floor(i);
    EXPECT_EQ(log_histogram::bucket_of(floor), i) << i;
  }
  // Every value is at or above the floor of its own bucket.
  for (std::uint64_t v : {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{7},
                          std::uint64_t{1000}, std::uint64_t{1} << 40,
                          std::numeric_limits<std::uint64_t>::max()})
    EXPECT_LE(log_histogram::bucket_floor(log_histogram::bucket_of(v)), v);
}

TEST(LogHistogram, QuantileFloorAndFromCountsRoundtrip) {
  log_histogram h;
  for (std::uint64_t v = 0; v < 100; ++v) h.add(v);
  EXPECT_EQ(h.total(), 100u);
  // Values 64..99 (36 of 100) live in bucket 7 (floor 64), so the median
  // sits in bucket 7's predecessor range: ranks 1..64 fill buckets 0..6.
  EXPECT_EQ(h.quantile_floor(0.5), 32u);
  EXPECT_EQ(h.quantile_floor(0.99), 64u);
  EXPECT_EQ(h.quantile_floor(0.0), 0u);

  const log_histogram rebuilt = log_histogram::from_counts(h.counts());
  EXPECT_EQ(rebuilt.total(), h.total());
  EXPECT_EQ(rebuilt.counts(), h.counts());
}

// Satellite pin: int_histogram::merge is associative and add-order free —
// the exact property that makes sharded campaign histograms bit-identical
// to the unsharded run no matter how the merge tree is shaped.
TEST(IntHistogram, MergeAssociativityProperty) {
  std::mt19937_64 rng(20020712);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t bins = 1 + static_cast<std::size_t>(rng() % 64);
    const std::size_t n = 1 + static_cast<std::size_t>(rng() % 400);
    std::vector<std::size_t> values(n);
    for (auto& v : values) v = static_cast<std::size_t>(rng() % bins);

    // Random 3-way partition of the same additions.
    stats::int_histogram a(bins), b(bins), c(bins), sequential(bins);
    for (const std::size_t v : values) {
      sequential.add(v);
      switch (rng() % 3) {
        case 0: a.add(v); break;
        case 1: b.add(v); break;
        default: c.add(v); break;
      }
    }

    stats::int_histogram left = a;   // (a + b) + c
    left.merge(b);
    left.merge(c);
    stats::int_histogram bc = b;     // a + (b + c)
    bc.merge(c);
    stats::int_histogram right = a;
    right.merge(bc);

    ASSERT_EQ(left.counts(), right.counts()) << "trial " << trial;
    ASSERT_EQ(left.counts(), sequential.counts()) << "trial " << trial;
    ASSERT_EQ(left.total(), sequential.total());

    // Quantile agrees with a naive rank scan over the merged counts.
    for (const double q : {0.0, 0.25, 0.5, 0.9, 1.0}) {
      const double scaled = q * static_cast<double>(sequential.total());
      auto rank = static_cast<std::uint64_t>(scaled);
      if (static_cast<double>(rank) < scaled) ++rank;
      if (rank == 0) rank = 1;
      std::uint64_t cumulative = 0;
      std::size_t expected = bins - 1;
      for (std::size_t i = 0; i < bins; ++i) {
        cumulative += sequential.count(i);
        if (cumulative >= rank) {
          expected = i;
          break;
        }
      }
      EXPECT_EQ(left.quantile(q), expected) << "trial " << trial << " q " << q;
    }
  }
}

TEST(MetricsRegistry, SnapshotInvariantUnderSlabDistribution) {
  // The same logical recordings, once on a single slab and once scattered
  // over eight worker slabs, must merge to the same snapshot.
  metrics_registry single;
  metrics_registry sharded;
  sharded.ensure_shards(8);
  ASSERT_EQ(sharded.shard_count(), 8u);
  std::mt19937_64 rng(7);
  for (int i = 0; i < 500; ++i) {
    const auto worker = static_cast<unsigned>(rng() % 8);
    const std::uint64_t delta = rng() % 1000;
    single.add_counter("campaign.runs_completed", delta);
    sharded.add_counter(worker, "campaign.runs_completed", delta);
    single.observe("sim.hops", delta);
    sharded.observe(worker, "sim.hops", delta);
  }
  single.set_gauge("stream.memory_bytes", 4096.0);
  sharded.set_gauge("stream.memory_bytes", 4096.0);

  const metrics_snapshot a = single.snapshot();
  const metrics_snapshot b = sharded.snapshot();
  EXPECT_EQ(a.counters, b.counters);
  EXPECT_EQ(a.gauges, b.gauges);
  ASSERT_EQ(a.histograms.size(), b.histograms.size());
  EXPECT_EQ(a.histograms.at("sim.hops").counts(),
            b.histograms.at("sim.hops").counts());
  EXPECT_EQ(stable_text(a, {}), stable_text(b, {}));
}

TEST(MetricsRegistry, MergeSnapshotsSumsCountersAndKeepsMaxGauge) {
  metrics_registry r1, r2;
  r1.add_counter("runs", 3);
  r1.add_counter("only_a", 1);
  r1.observe("hops", 5);
  r1.set_gauge("mem", 100.0);
  r2.add_counter("runs", 4);
  r2.observe("hops", 5);
  r2.observe("hops", 900);
  r2.set_gauge("mem", 60.0);
  r2.set_gauge("only_b", -2.5);

  const metrics_snapshot merged = merge_snapshots(r1.snapshot(), r2.snapshot());
  EXPECT_EQ(merged.counters.at("runs"), 7u);
  EXPECT_EQ(merged.counters.at("only_a"), 1u);
  EXPECT_EQ(merged.gauges.at("mem"), 100.0);  // max, not sum or last-write
  EXPECT_EQ(merged.gauges.at("only_b"), -2.5);
  EXPECT_EQ(merged.histograms.at("hops").total(), 3u);
  EXPECT_EQ(merged.histograms.at("hops").count(log_histogram::bucket_of(5)),
            2u);

  // Associativity: ((1+2)+2) == (1+(2+2)) — the merge tree shape is free.
  const metrics_snapshot s1 = r1.snapshot();
  const metrics_snapshot s2 = r2.snapshot();
  const metrics_snapshot left = merge_snapshots(merge_snapshots(s1, s2), s2);
  const metrics_snapshot right = merge_snapshots(s1, merge_snapshots(s2, s2));
  EXPECT_EQ(stable_text(left, {}), stable_text(right, {}));
}

TEST(Tracer, NestedSpansFormParentChildTree) {
  tracer t;
  {
    span root(&t, "cmd.run");
    {
      span child(&t, "cmd.load");
    }
    {
      span child(&t, "cmd.score");
      span grandchild(&t, "cmd.score_inner");
    }
  }
  const auto& spans = t.spans();
  ASSERT_EQ(spans.size(), 4u);
  // Ids are creation order, 1-based; parent 0 is root.
  EXPECT_EQ(spans[0].id, 1u);
  EXPECT_EQ(spans[0].parent, 0u);
  EXPECT_EQ(spans[0].name, "cmd.run");
  EXPECT_EQ(spans[1].id, 2u);
  EXPECT_EQ(spans[1].parent, 1u);
  EXPECT_EQ(spans[1].name, "cmd.load");
  EXPECT_EQ(spans[2].id, 3u);
  EXPECT_EQ(spans[2].parent, 1u);
  EXPECT_EQ(spans[3].id, 4u);
  EXPECT_EQ(spans[3].parent, 3u);
  for (const span_record& s : spans) {
    EXPECT_LT(s.parent, s.id);
    EXPECT_GE(s.duration_ms, 0.0);
  }
}

TEST(Tracer, NullTracerMakesSpansInert) {
  span inert(nullptr, "nothing");  // must not dereference anything
  SUCCEED();
}

metrics_snapshot sample_snapshot() {
  metrics_registry reg;
  reg.add_counter("sim.events_executed", 12345);
  reg.add_counter("attack.memo_hits", 0);
  reg.set_gauge("stream.memory_bytes", 123456789.5);
  reg.set_gauge("calib.offset", -3.25e-7);
  reg.observe("campaign.run_us", 1500);
  reg.observe("campaign.run_us", 90);
  reg.observe("sim.hops", 0);
  reg.observe("sim.hops", std::numeric_limits<std::uint64_t>::max());
  return reg.snapshot();
}

std::vector<span_record> sample_spans() {
  return {span_record{1, 0, "sim.run", 10.5},
          span_record{2, 1, "sim.run_core", 8.0},
          span_record{3, 1, "sim.score", 0.0}};
}

TEST(MetricsJsonl, WriteReadRoundtripIsLossless) {
  const metrics_snapshot snap = sample_snapshot();
  const std::vector<span_record> spans = sample_spans();
  std::ostringstream out;
  write_metrics_jsonl(out, snap, spans);

  std::istringstream in(out.str());
  const metrics_document doc = read_metrics_jsonl(in);
  EXPECT_EQ(doc.metrics.counters, snap.counters);
  EXPECT_EQ(doc.metrics.gauges, snap.gauges);
  ASSERT_EQ(doc.metrics.histograms.size(), snap.histograms.size());
  for (const auto& [name, hist] : snap.histograms)
    EXPECT_EQ(doc.metrics.histograms.at(name).counts(), hist.counts()) << name;
  ASSERT_EQ(doc.spans.size(), spans.size());
  for (std::size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(doc.spans[i].id, spans[i].id);
    EXPECT_EQ(doc.spans[i].parent, spans[i].parent);
    EXPECT_EQ(doc.spans[i].name, spans[i].name);
    EXPECT_EQ(doc.spans[i].duration_ms, spans[i].duration_ms);
  }
  // The stable rendering survives a serialize/parse cycle bit-for-bit.
  EXPECT_EQ(stable_text(doc.metrics, doc.spans), stable_text(snap, spans));
}

TEST(MetricsJsonl, StringEscapingRoundtrips) {
  metrics_registry reg;
  reg.add_counter("weird \"name\" \\ with\tcontrol", 7);
  std::ostringstream out;
  write_metrics_jsonl(out, reg.snapshot(), {});
  std::istringstream in(out.str());
  const metrics_document doc = read_metrics_jsonl(in);
  EXPECT_EQ(doc.metrics.counters.at("weird \"name\" \\ with\tcontrol"), 7u);
}

TEST(MetricsJsonl, StableTextDropsTimingBucketsKeepsTotals) {
  EXPECT_TRUE(is_timing_metric("campaign.run_us"));
  EXPECT_TRUE(is_timing_metric("x_ms"));
  EXPECT_TRUE(is_timing_metric("y_ns"));
  EXPECT_FALSE(is_timing_metric("sim.hops"));
  EXPECT_FALSE(is_timing_metric("radius"));  // "us" suffix without the '_'
  EXPECT_FALSE(is_timing_metric("_m"));

  metrics_registry reg;
  reg.observe("campaign.run_us", 1000);
  reg.observe("sim.hops", 1000);
  const std::string text = stable_text(reg.snapshot(), sample_spans());
  // The timing histogram appears total-only; the deterministic one keeps
  // its bucket placement; spans appear structurally without durations.
  EXPECT_NE(text.find("hist campaign.run_us total 1\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("hist sim.hops total 1 10:1\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("span 1 0 sim.run\n"), std::string::npos) << text;
  EXPECT_EQ(text.find("10.5"), std::string::npos) << text;
}

TEST(MetricsJsonl, SinksPublishWithoutSurprises) {
  const metrics_snapshot snap = sample_snapshot();
  const std::vector<span_record> spans = sample_spans();

  null_sink quiet;
  quiet.publish(snap, spans);  // must be a no-op

  stderr_summary_sink table;
  table.publish(snap, spans);  // best-effort; must not throw

  const std::string path = ::testing::TempDir() + "obs_sink_roundtrip.jsonl";
  jsonl_file_sink file(path);
  file.publish(snap, spans);
  const metrics_document doc = read_metrics_file(path);
  EXPECT_EQ(stable_text(doc.metrics, doc.spans), stable_text(snap, spans));
  std::remove(path.c_str());

  jsonl_file_sink unwritable("/nonexistent-dir/metrics.jsonl");
  try {
    unwritable.publish(snap, spans);
    FAIL() << "publish to an unopenable path must throw";
  } catch (const parse_error& e) {
    EXPECT_EQ(e.kind(), parse_error_kind::io);
  }
}

// ---- corrupted-input matrix -------------------------------------------

/// Feeds `text` to the reader and requires the classified-failure
/// contract: success or parse_error. Anything else (contract_violation,
/// std::bad_alloc, a raw crash) propagates and fails the test.
void parse_must_classify(const std::string& text) {
  std::istringstream in(text);
  try {
    (void)read_metrics_jsonl(in);
  } catch (const parse_error&) {
    // Classified rejection — exactly what corrupt bytes must produce.
  }
}

parse_error_kind kind_of(const std::string& text) {
  std::istringstream in(text);
  try {
    (void)read_metrics_jsonl(in);
  } catch (const parse_error& e) {
    EXPECT_EQ(e.source(), "metrics");
    return e.kind();
  }
  ADD_FAILURE() << "expected parse_error for: " << text;
  return parse_error_kind::io;
}

std::string valid_document() {
  std::ostringstream out;
  write_metrics_jsonl(out, sample_snapshot(), sample_spans());
  return out.str();
}

TEST(MetricsJsonlFuzz, TargetedCorruptionsClassifyCorrectly) {
  const std::string header = "{\"format\":\"anonpath-metrics\",\"version\":1}\n";
  EXPECT_EQ(kind_of(""), parse_error_kind::truncated);
  EXPECT_EQ(kind_of("{\"format\":\"anonpath-metrics\",\"version\":2}\n"),
            parse_error_kind::version_mismatch);
  EXPECT_EQ(kind_of("{\"format\":\"other\",\"version\":1}\n"),
            parse_error_kind::malformed);
  EXPECT_EQ(kind_of("{\"format\":\"anonpath-metrics\",\"version\":"),
            parse_error_kind::truncated);
  EXPECT_EQ(kind_of(header + "{\"kind\":\"counter\",\"name\":\"a\","
                             "\"value\":1}extra\n"),
            parse_error_kind::malformed);
  EXPECT_EQ(kind_of(header + "{\"kind\":\"counter\",\"name\":\"a\","
                             "\"value\":1}\n"
                             "{\"kind\":\"counter\",\"name\":\"a\","
                             "\"value\":2}\n"),
            parse_error_kind::malformed);
  EXPECT_EQ(kind_of(header + "{\"kind\":\"counter\",\"name\":\"a\","
                             "\"value\":99999999999999999999}\n"),
            parse_error_kind::out_of_range);
  EXPECT_EQ(kind_of(header + "{\"kind\":\"gauge\",\"name\":\"g\","
                             "\"value\":inf}\n"),
            parse_error_kind::out_of_range);
  EXPECT_EQ(kind_of(header + "{\"kind\":\"histogram\",\"name\":\"h\","
                             "\"total\":1,\"buckets\":[[65,1]]}\n"),
            parse_error_kind::out_of_range);
  EXPECT_EQ(kind_of(header + "{\"kind\":\"histogram\",\"name\":\"h\","
                             "\"total\":2,\"buckets\":[[3,1],[3,1]]}\n"),
            parse_error_kind::malformed);
  EXPECT_EQ(kind_of(header + "{\"kind\":\"histogram\",\"name\":\"h\","
                             "\"total\":1,\"buckets\":[[3,0]]}\n"),
            parse_error_kind::malformed);
  EXPECT_EQ(kind_of(header + "{\"kind\":\"histogram\",\"name\":\"h\","
                             "\"total\":5,\"buckets\":[[3,1]]}\n"),
            parse_error_kind::malformed);
  EXPECT_EQ(kind_of(header + "{\"kind\":\"span\",\"id\":2,\"parent\":0,"
                             "\"name\":\"s\",\"ms\":1.0}\n"),
            parse_error_kind::malformed);
  EXPECT_EQ(kind_of(header + "{\"kind\":\"span\",\"id\":1,\"parent\":1,"
                             "\"name\":\"s\",\"ms\":1.0}\n"),
            parse_error_kind::out_of_range);
  EXPECT_EQ(kind_of(header + "{\"kind\":\"span\",\"id\":1,\"parent\":0,"
                             "\"name\":\"s\",\"ms\":-1.0}\n"),
            parse_error_kind::out_of_range);
  EXPECT_EQ(kind_of(header + "{\"kind\":\"mystery\",\"name\":\"x\"}\n"),
            parse_error_kind::malformed);
  EXPECT_EQ(kind_of(header + "{\"kind\":\"counter\",\"name\":\"a"),
            parse_error_kind::truncated);
  EXPECT_EQ(kind_of(header + std::string("{\"kind\":\"counter\",\"name\":\"a")
                        + '\x01' + "\",\"value\":1}\n"),
            parse_error_kind::malformed);
}

TEST(MetricsJsonlFuzz, TruncationsNeverEscapeTheTaxonomy) {
  const std::string doc = valid_document();
  // Every prefix of a valid document parses or raises a classified error.
  for (std::size_t len = 0; len <= doc.size(); ++len)
    parse_must_classify(doc.substr(0, len));
}

TEST(MetricsJsonlFuzz, ByteMutationsNeverEscapeTheTaxonomy) {
  const std::string doc = valid_document();
  std::mt19937_64 rng(42);
  // Single-byte overwrite at every position with a handful of adversarial
  // replacement bytes, plus random two-byte swaps.
  const char replacements[] = {'\0', '\n', '"', '\\', '{', ']', '9',
                               'x',  ' ',  static_cast<char>(0xff)};
  for (std::size_t pos = 0; pos < doc.size(); ++pos) {
    for (const char r : replacements) {
      std::string corrupt = doc;
      corrupt[pos] = r;
      parse_must_classify(corrupt);
    }
  }
  for (int trial = 0; trial < 2000; ++trial) {
    std::string corrupt = doc;
    const std::size_t i = rng() % corrupt.size();
    const std::size_t j = rng() % corrupt.size();
    std::swap(corrupt[i], corrupt[j]);
    parse_must_classify(corrupt);
  }
}

TEST(MetricsJsonlFuzz, MissingFileIsIoError) {
  try {
    (void)read_metrics_file("/nonexistent-dir/metrics.jsonl");
    FAIL() << "reading a missing file must throw";
  } catch (const parse_error& e) {
    EXPECT_EQ(e.kind(), parse_error_kind::io);
  }
}

}  // namespace
}  // namespace anonpath::obs
