// Golden-file regression for the topology/churn axes: a 2-topology x
// 2-churn campaign CSV pinned byte for byte (any drift in routing,
// scoring, churn scheduling, aggregation, or CSV rendering trips it), and
// the trace-format contract — captured traces on a tiered graph round-trip
// through write/read and replay to the inline run exactly, while
// default-config traces keep the historical v1 byte layout (no extension
// lines).

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "src/sim/campaign.hpp"
#include "src/sim/trace.hpp"

namespace anonpath::sim {
namespace {

/// The pinned grid: complete + tiered(3), static + churn(0.8/0.4).
campaign_grid golden_grid() {
  campaign_grid grid;
  grid.node_counts = {16};
  grid.compromised_counts = {2};
  grid.lengths = {path_length_distribution::uniform(1, 4)};
  grid.message_count = 120;
  net::topology_config tiered;
  tiered.kind = net::topology_kind::tiered;
  tiered.tiers = 3;
  grid.topologies = {net::topology_config{}, tiered};
  grid.churns = {net::churn_config{}, net::churn_config{0.8, 0.4}};
  return grid;
}

TEST(TopologyGolden, CampaignCsvMatchesCommittedFixture) {
  campaign_config cfg;
  cfg.replicas = 2;
  cfg.master_seed = 11;
  cfg.threads = 2;
  const auto result = run_campaign(golden_grid(), cfg);
  ASSERT_EQ(result.cells.size(), 4u);

  std::ostringstream os;
  write_csv(result, os);

  const std::string path =
      std::string(ANONPATH_TEST_DATA_DIR) + "/golden/campaign_topology.csv";
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden fixture " << path;
  std::ostringstream want;
  want << in.rdbuf();
  EXPECT_EQ(os.str(), want.str())
      << "topology campaign drifted from the committed golden; if the "
         "change is intended, regenerate tests/golden/campaign_topology.csv";
}

sim_config tiered_config() {
  sim_config cfg;
  cfg.sys = {18, 3};
  cfg.compromised = spread_compromised(18, 3);
  cfg.lengths = path_length_distribution::uniform(1, 5);
  cfg.message_count = 200;
  cfg.seed = 23;
  cfg.topology.kind = net::topology_kind::tiered;
  cfg.topology.tiers = 3;
  cfg.faults.churn = net::churn_config{0.5, 0.3};
  return cfg;
}

TEST(TopologyGolden, TieredTraceRoundTripsAndReplaysUnchanged) {
  const sim_config cfg = tiered_config();
  const sim_trace captured = capture_trace(cfg);

  std::stringstream wire;
  write_trace(captured, wire);
  const sim_trace parsed = read_trace(wire);

  // Config (topology and churn included), effective set, events, and
  // ground truth all survive the wire exactly.
  EXPECT_EQ(parsed.config.topology, cfg.topology);
  EXPECT_EQ(parsed.config.faults.churn, cfg.faults.churn);
  EXPECT_EQ(parsed.compromised, captured.compromised);
  EXPECT_EQ(parsed.events, captured.events);
  EXPECT_EQ(parsed.truths, captured.truths);

  // Serialization is canonical: re-writing the parsed trace is
  // byte-identical.
  std::stringstream rewire;
  write_trace(parsed, rewire);
  EXPECT_EQ(wire.str(), rewire.str());

  // Replaying the parsed trace reproduces the inline run bit for bit.
  const sim_report inline_report = run_simulation(cfg);
  const sim_report replayed = replay_trace(parsed);
  EXPECT_EQ(replayed.submitted, inline_report.submitted);
  EXPECT_EQ(replayed.delivered, inline_report.delivered);
  EXPECT_EQ(replayed.end_to_end_latency.mean(),
            inline_report.end_to_end_latency.mean());
  EXPECT_EQ(replayed.empirical_entropy_bits,
            inline_report.empirical_entropy_bits);
  EXPECT_EQ(replayed.identified_fraction, inline_report.identified_fraction);
  EXPECT_EQ(replayed.top1_accuracy, inline_report.top1_accuracy);
  EXPECT_EQ(replayed.hop_histogram, inline_report.hop_histogram);
}

TEST(TopologyGolden, ExtensionLinesAppearOnlyForNonDefaultConfigs) {
  // The v1 byte-compat contract: a default (clique, static) config writes
  // no topology/churn lines — its serialization is what a pre-topology
  // build produced — while restricted configs carry them.
  sim_config plain;
  plain.sys = {12, 1};
  plain.compromised = {0};
  plain.lengths = path_length_distribution::fixed(2);
  plain.message_count = 20;
  plain.seed = 3;
  std::ostringstream plain_os;
  write_trace(capture_trace(plain), plain_os);
  EXPECT_EQ(plain_os.str().find("topology"), std::string::npos);
  EXPECT_EQ(plain_os.str().find("churn"), std::string::npos);

  std::ostringstream rich_os;
  write_trace(capture_trace(tiered_config()), rich_os);
  EXPECT_NE(rich_os.str().find("topology tiered 1 4 1 3 "),
            std::string::npos);
  EXPECT_NE(rich_os.str().find("churn "), std::string::npos);
}

}  // namespace
}  // namespace anonpath::sim
